GO ?= go

.PHONY: check vet build test race racepar race-fleet race-sim cover-fleet bench bench-check fuzz fuzz-smoke replay-smoke trace-smoke fleet-smoke fleet-fault-smoke placement-smoke tilevmd-smoke tier-smoke linkcheck

# The full gate: what CI (and a pre-commit) should run.
check: vet build test racepar

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator hands control between tile-kernel goroutines through
# channels, so the race detector checks the one-runnable-process
# invariant for free. Slower; -short skips the long figure sweeps.
race:
	$(GO) test -race -short ./...

# The parallel-harness determinism gate on its own: the quick figure
# suite rendered serially and with an 8-worker pool must be
# byte-identical, and -race must see no shared mutable state between
# concurrent core.Run/pentium.Run jobs. Also part of `check`.
racepar:
	$(GO) test -race -short -run TestParallelDeterminism ./internal/bench

# Fleet scheduler under the race detector: the N-guest placement,
# admission, vmSwitch handoff, and fleet-wide lending tests, plus the
# invariance battery, on core and bench.
race-fleet:
	$(GO) test -race -timeout 1200s -run 'TestFleet|TestCarve|TestMultiVM|TestPairMatches|TestRunFleet|TestElastic|TestPlan|TestSplitRoles|TestNoFit' ./internal/core
	$(GO) test -race -run 'TestFleetSweepQuick|TestFleetFaultSweepQuick' ./internal/bench

# Sharded event loop under the race detector: the fleet invariance
# battery (bit-identical FleetResult at workers 2, 4, and 8 — the
# tests iterate the worker counts internally) plus the sim-level
# cross-shard battery (delivery order, lookahead tripwire, fence
# ordering, stop/limit/deadlock parity, heap compaction). The race
# detector checks the conservative-lookahead synchronization for free:
# any unfenced cross-shard access is a reported race. Generous timeout
# — race mode is 10-20x slower and CI hosts are oversubscribed.
race-sim:
	$(GO) test -race -timeout 1500s -run TestFleetParallel ./internal/core
	$(GO) test -race -timeout 900s -run 'TestCrossShard|TestFence|TestSharded|TestCompact' ./internal/sim

# Coverage summary for the fleet/placement layer (the code this PR's
# test battery is aimed at).
cover-fleet:
	$(GO) test -run 'TestFleet|TestCarve|TestMultiVM|TestPairMatches|TestRunFleet|TestElastic|TestPlan|TestSplitRoles|TestNoFit|FuzzCarveFabric|FuzzPlanFabric|FuzzQuarantineRecarve' \
	  -coverprofile=/tmp/tilevm-fleet-cover.out ./internal/core
	$(GO) tool cover -func=/tmp/tilevm-fleet-cover.out | \
	  grep -E 'fleet\.go|fleetpolicy\.go|placement\.go|planner\.go|multivm\.go|total:'
	rm -f /tmp/tilevm-fleet-cover.out

# Perf trajectory: the microbenchmarks in bench_test.go plus the
# end-to-end figure-suite timing, and a machine-readable snapshot of
# the same numbers in BENCH_sim.json via cmd/simbench.
bench:
	$(GO) test -run - -bench . -benchmem .
	$(GO) test -run - -bench 'BenchmarkEventDispatch|BenchmarkAdvanceRecvRoundTrip' -benchmem ./internal/sim
	$(GO) test -run - -bench BenchmarkInnerLoop -benchmem ./internal/rawexec
	$(GO) run ./cmd/simbench -o BENCH_sim.json

# Perf-regression gate: re-measure the headline benchmarks and fail if
# they regress beyond tolerance of the recorded BENCH_sim.json
# trajectory (generous tolerances — see internal/tools/benchcheck).
bench-check:
	$(GO) run ./internal/tools/benchcheck

fuzz:
	$(GO) test ./internal/x86 -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzCheckpointDecode -fuzztime 30s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzRecordDecode -fuzztime 30s
	$(GO) test ./internal/core -run - -fuzz FuzzCarveFabric -fuzztime 30s
	$(GO) test ./internal/core -run - -fuzz FuzzPlanFabric -fuzztime 30s
	$(GO) test ./internal/core -run - -fuzz FuzzQuarantineRecarve -fuzztime 30s

# Quick fuzz pass for CI: enough to catch a codec regression, short
# enough to run on every push.
fuzz-smoke:
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzCheckpointDecode -fuzztime 10s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzRecordDecode -fuzztime 10s
	$(GO) test ./internal/core -run - -fuzz FuzzCarveFabric -fuzztime 10s
	$(GO) test ./internal/core -run - -fuzz FuzzPlanFabric -fuzztime 10s
	$(GO) test ./internal/core -run - -fuzz FuzzQuarantineRecarve -fuzztime 10s

# End-to-end record/replay smoke: record a faulted rollback run, then
# verify a full replay reproduces it bit for bit (tilevm exits non-zero
# on divergence).
replay-smoke:
	$(GO) run ./cmd/tilevm -workload 181.mcf \
	  -fault-plan 'fail:7@150000,fail:14@300000,fail:2@450000' \
	  -recovery rollback -record /tmp/tilevm-replay-smoke.tvrc >/dev/null
	$(GO) run ./cmd/tilevm -replay /tmp/tilevm-replay-smoke.tvrc
	rm -f /tmp/tilevm-replay-smoke.tvrc

# End-to-end tracing smoke: capture a traced run, then validate that
# the Chrome trace JSON parses, shows the tiled layout, and that the
# sampler CSV has data rows.
trace-smoke:
	$(GO) run ./cmd/tilevm -workload 164.gzip \
	  -trace /tmp/tilevm-trace-smoke.json -trace-interval 10000
	$(GO) run ./internal/tools/tracecheck \
	  /tmp/tilevm-trace-smoke.json /tmp/tilevm-trace-smoke.csv
	rm -f /tmp/tilevm-trace-smoke.json /tmp/tilevm-trace-smoke.csv

# End-to-end fleet smoke: four guests on an 8×8 fabric through the CLI,
# exercising carving, admission, and the fleet report.
fleet-smoke:
	$(GO) run ./cmd/tilevm -guests 164.gzip,181.mcf,164.gzip,181.mcf -grid 8x8

# Placement-planner smoke: the quick (8×8) slot-capped oversubscribed
# sweep — deterministic across repeats, and the cost-model planner must
# beat the fixed 4×2 carver on makespan or utilization. Also drives one
# planner+elastic fleet through the CLI so the flags stay wired.
placement-smoke:
	$(GO) test -run TestPlacementSmoke -count=1 ./internal/bench
	$(GO) run ./cmd/tilevm -guests 164.gzip,181.mcf,164.gzip,181.mcf -grid 8x8 -planner -elastic

# End-to-end fleet fault-tolerance smoke: a seeded fail-stop fault
# quarantines a slot mid-run on an oversubscribed fleet with per-guest
# deadlines; the run must engage the policy layer (a slot actually
# quarantined) and two runs at the same seed must produce byte-identical
# reports — goodput, SLO, and per-guest outcomes included.
fleet-fault-smoke:
	$(GO) run ./cmd/tilevm -guests 164.gzip,181.mcf,164.gzip \
	  -fault-plan 'fail:5@500000' -fault-seed 7 -deadline 8000000 -v \
	  > /tmp/tilevm-fleet-fault-a.txt
	$(GO) run ./cmd/tilevm -guests 164.gzip,181.mcf,164.gzip \
	  -fault-plan 'fail:5@500000' -fault-seed 7 -deadline 8000000 -v \
	  > /tmp/tilevm-fleet-fault-b.txt
	cmp /tmp/tilevm-fleet-fault-a.txt /tmp/tilevm-fleet-fault-b.txt
	grep -q 'quarantined' /tmp/tilevm-fleet-fault-a.txt
	rm -f /tmp/tilevm-fleet-fault-a.txt /tmp/tilevm-fleet-fault-b.txt

# End-to-end daemon smoke: start tilevmd on an ephemeral port, submit
# two guests over HTTP, poll them to completion, scrape /metrics, then
# SIGTERM and assert a graceful drain with exit 0.
tilevmd-smoke:
	$(GO) build -o /tmp/tilevmd-smoke-bin ./cmd/tilevmd
	$(GO) run ./internal/tools/servicesmoke -bin /tmp/tilevmd-smoke-bin
	rm -f /tmp/tilevmd-smoke-bin

# End-to-end tiered-translation smoke: the tracing example's workload
# (164.gzip) with the template tier on at a low promotion threshold, in
# the paper's non-speculative base configuration so tier-0 carries the
# whole cold path. At least one hot block must be promoted, and the
# guest's architectural outcome — stdout, exit code, final state hash —
# must be identical to the optimizing-only run.
tier-smoke:
	$(GO) run ./cmd/tilevm -workload 164.gzip -speculate=false -v \
	  > /tmp/tilevm-tier-smoke-base.txt
	$(GO) run ./cmd/tilevm -workload 164.gzip -speculate=false \
	  -tier0 -tier-up-threshold 2000 -v \
	  > /tmp/tilevm-tier-smoke-t0.txt
	grep -Eq '[1-9][0-9]* promotions' /tmp/tilevm-tier-smoke-t0.txt
	sed -n '/^exit code/q;p' /tmp/tilevm-tier-smoke-base.txt > /tmp/tilevm-tier-smoke-base-out.txt
	sed -n '/^exit code/q;p' /tmp/tilevm-tier-smoke-t0.txt > /tmp/tilevm-tier-smoke-t0-out.txt
	cmp /tmp/tilevm-tier-smoke-base-out.txt /tmp/tilevm-tier-smoke-t0-out.txt
	[ "$$(grep '^exit code' /tmp/tilevm-tier-smoke-base.txt)" = "$$(grep '^exit code' /tmp/tilevm-tier-smoke-t0.txt)" ]
	[ "$$(grep '^state hash' /tmp/tilevm-tier-smoke-base.txt)" = "$$(grep '^state hash' /tmp/tilevm-tier-smoke-t0.txt)" ]
	rm -f /tmp/tilevm-tier-smoke-*.txt

# Verify that every relative link in the markdown docs points at a file
# that exists.
linkcheck:
	$(GO) run ./internal/tools/linkcheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs
