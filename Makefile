GO ?= go

.PHONY: check vet build test race fuzz

# The full gate: what CI (and a pre-commit) should run.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator hands control between tile-kernel goroutines through
# channels, so the race detector checks the one-runnable-process
# invariant for free. Slower; -short skips the long figure sweeps.
race:
	$(GO) test -race -short ./...

fuzz:
	$(GO) test ./internal/x86 -fuzz FuzzDecode -fuzztime 30s
