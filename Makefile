GO ?= go

.PHONY: check vet build test race racepar bench fuzz

# The full gate: what CI (and a pre-commit) should run.
check: vet build test racepar

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator hands control between tile-kernel goroutines through
# channels, so the race detector checks the one-runnable-process
# invariant for free. Slower; -short skips the long figure sweeps.
race:
	$(GO) test -race -short ./...

# The parallel-harness determinism gate on its own: the quick figure
# suite rendered serially and with an 8-worker pool must be
# byte-identical, and -race must see no shared mutable state between
# concurrent core.Run/pentium.Run jobs. Also part of `check`.
racepar:
	$(GO) test -race -short -run TestParallelDeterminism ./internal/bench

# Perf trajectory: the microbenchmarks in bench_test.go plus the
# end-to-end figure-suite timing, and a machine-readable snapshot of
# the same numbers in BENCH_sim.json via cmd/simbench.
bench:
	$(GO) test -run - -bench . -benchmem .
	$(GO) test -run - -bench 'BenchmarkEventDispatch|BenchmarkAdvanceRecvRoundTrip' -benchmem ./internal/sim
	$(GO) test -run - -bench BenchmarkInnerLoop -benchmem ./internal/rawexec
	$(GO) run ./cmd/simbench -o BENCH_sim.json

fuzz:
	$(GO) test ./internal/x86 -fuzz FuzzDecode -fuzztime 30s
