GO ?= go

.PHONY: check vet build test race racepar bench fuzz fuzz-smoke replay-smoke trace-smoke linkcheck

# The full gate: what CI (and a pre-commit) should run.
check: vet build test racepar

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator hands control between tile-kernel goroutines through
# channels, so the race detector checks the one-runnable-process
# invariant for free. Slower; -short skips the long figure sweeps.
race:
	$(GO) test -race -short ./...

# The parallel-harness determinism gate on its own: the quick figure
# suite rendered serially and with an 8-worker pool must be
# byte-identical, and -race must see no shared mutable state between
# concurrent core.Run/pentium.Run jobs. Also part of `check`.
racepar:
	$(GO) test -race -short -run TestParallelDeterminism ./internal/bench

# Perf trajectory: the microbenchmarks in bench_test.go plus the
# end-to-end figure-suite timing, and a machine-readable snapshot of
# the same numbers in BENCH_sim.json via cmd/simbench.
bench:
	$(GO) test -run - -bench . -benchmem .
	$(GO) test -run - -bench 'BenchmarkEventDispatch|BenchmarkAdvanceRecvRoundTrip' -benchmem ./internal/sim
	$(GO) test -run - -bench BenchmarkInnerLoop -benchmem ./internal/rawexec
	$(GO) run ./cmd/simbench -o BENCH_sim.json

fuzz:
	$(GO) test ./internal/x86 -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzCheckpointDecode -fuzztime 30s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzRecordDecode -fuzztime 30s

# Quick fuzz pass for CI: enough to catch a codec regression, short
# enough to run on every push.
fuzz-smoke:
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzCheckpointDecode -fuzztime 10s
	$(GO) test ./internal/checkpoint -run - -fuzz FuzzRecordDecode -fuzztime 10s

# End-to-end record/replay smoke: record a faulted rollback run, then
# verify a full replay reproduces it bit for bit (tilevm exits non-zero
# on divergence).
replay-smoke:
	$(GO) run ./cmd/tilevm -workload 181.mcf \
	  -fault-plan 'fail:7@150000,fail:14@300000,fail:2@450000' \
	  -recovery rollback -record /tmp/tilevm-replay-smoke.tvrc >/dev/null
	$(GO) run ./cmd/tilevm -replay /tmp/tilevm-replay-smoke.tvrc
	rm -f /tmp/tilevm-replay-smoke.tvrc

# End-to-end tracing smoke: capture a traced run, then validate that
# the Chrome trace JSON parses, shows the tiled layout, and that the
# sampler CSV has data rows.
trace-smoke:
	$(GO) run ./cmd/tilevm -workload 164.gzip \
	  -trace /tmp/tilevm-trace-smoke.json -trace-interval 10000
	$(GO) run ./internal/tools/tracecheck \
	  /tmp/tilevm-trace-smoke.json /tmp/tilevm-trace-smoke.csv
	rm -f /tmp/tilevm-trace-smoke.json /tmp/tilevm-trace-smoke.csv

# Verify that every relative link in the markdown docs points at a file
# that exists.
linkcheck:
	$(GO) run ./internal/tools/linkcheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs
