// Benchmarks for the tilevm reproduction. One benchmark per paper
// table/figure regenerates that experiment (over the quick 3-benchmark
// subset; run cmd/figures for the full 11-benchmark suite), plus
// microbenchmarks of the main components: the x86 decoder, the
// translation pipeline, the reference interpreter, the DES kernel, and
// a full machine run.
package tilevm_test

import (
	"testing"

	"tilevm/internal/bench"
	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/pentium"
	"tilevm/internal/sim"
	"tilevm/internal/translate"
	"tilevm/internal/workload"
	"tilevm/internal/x86"
	"tilevm/internal/x86interp"
)

// --- Component microbenchmarks ---

func gzipImage() *guest.Image {
	p, _ := workload.ByName("164.gzip")
	return p.Build()
}

// BenchmarkDecodeX86 measures raw decoder throughput over the gzip
// workload's code section.
func BenchmarkDecodeX86(b *testing.B) {
	img := gzipImage()
	code := img.Code
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		pc := uint32(0)
		for int(pc) < len(code)-16 {
			in, err := x86.Decode(code[pc:], img.CodeBase+pc)
			if err != nil {
				pc++
				continue
			}
			pc += uint32(in.Len)
			insts++
		}
	}
	b.ReportMetric(float64(insts)/float64(b.N), "insts/op")
}

// BenchmarkTranslateBlock measures the full translation pipeline
// (discover, flag liveness, lower, optimize, register-allocate).
func BenchmarkTranslateBlock(b *testing.B) {
	img := gzipImage()
	proc := guest.Load(img)
	tr := translate.New(translate.Options{Optimize: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TranslateFinal(proc.Mem, img.Entry); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures the reference interpreter in guest
// instructions per second.
func BenchmarkInterpreter(b *testing.B) {
	img := gzipImage()
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		proc := guest.Load(img)
		it := x86interp.New(proc)
		if _, err := it.Run(0); err != nil {
			b.Fatal(err)
		}
		steps += it.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "guest-insts/op")
}

// BenchmarkSimKernel measures discrete-event scheduling throughput.
func BenchmarkSimKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		pt := s.NewPort("ch")
		s.Spawn("producer", func(p *sim.Proc) {
			for j := 0; j < 10000; j++ {
				p.Advance(3)
				pt.Send(p.ID(), j, p.Now()+5)
			}
		})
		s.Spawn("consumer", func(p *sim.Proc) {
			for j := 0; j < 10000; j++ {
				p.Recv(pt)
				p.Tick(2)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineRunGzip measures a complete machine simulation of
// the gzip workload under the default configuration.
func BenchmarkMachineRunGzip(b *testing.B) {
	img := gzipImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(img, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineRunGzipTraced is BenchmarkMachineRunGzip with the
// virtual-time tracer attached (full event timeline plus 10k-cycle
// interval sampling) — the delta between the two is the cost of
// *enabled* tracing. The disabled path is what BenchmarkMachineRunGzip
// itself measures: with no Tracer in the config every emission site is
// a nil check, allocation-free by internal/trace's TestNilTracerSafe,
// and must stay within noise (<2%) of the pre-tracing simulator.
func BenchmarkMachineRunGzipTraced(b *testing.B) {
	img := gzipImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Tracer = core.NewTracer(10_000)
		if _, err := core.Run(img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPentiumBaseline measures the baseline model run.
func BenchmarkPentiumBaseline(b *testing.B) {
	img := gzipImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pentium.Run(img, pentium.DefaultParams(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure/table regeneration benchmarks ---
//
// Each runs its experiment over the quick subset (gzip, gcc, mcf: one
// benchmark from each slowdown band) and reports the headline numbers
// as metrics. The full-suite equivalents are `cmd/figures -fig N`.

func quickSuite() *bench.Suite {
	s := bench.NewSuite()
	s.Quick = true
	return s
}

func BenchmarkFigure4CodeCacheSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Values[1], "gcc-slowdown-noL15")
		b.ReportMetric(f.Series[2].Values[1], "gcc-slowdown-2banks")
	}
}

func BenchmarkFigure5TranslatorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Values[1], "gcc-conservative")
		b.ReportMetric(f.Series[4].Values[1], "gcc-6translators")
	}
}

func BenchmarkFigure6L2CodeAccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[4].Values[1]*1e6, "gcc-accesses-per-Mcycle")
	}
}

func BenchmarkFigure7L2CodeMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[1].Values[1], "gcc-missrate-1spec")
		b.ReportMetric(f.Series[5].Values[1], "gcc-missrate-9spec")
	}
}

func BenchmarkFigure8Optimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Values[0], "gzip-noopt")
		b.ReportMetric(f.Series[1].Values[0], "gzip-opt")
	}
}

func BenchmarkFigure9Reconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Values[2], "mcf-1mem9trans")
		b.ReportMetric(f.Series[1].Values[2], "mcf-4mem6trans")
	}
}

func BenchmarkFigure10RelativeMorph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := quickSuite().Figure10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Values[2], "mcf-pct-faster-4mem")
	}
}

func BenchmarkFigure11Intrinsics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quickSuite().Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Rows[0].MeasuredLat, "L1hit-lat")
		b.ReportMetric(tab.Rows[1].MeasuredLat, "L2hit-lat")
		b.ReportMetric(tab.Rows[2].MeasuredLat, "L2miss-lat")
	}
}

func BenchmarkHeadlineSlowdownBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := quickSuite().Headline(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end figure-suite timing ---
//
// These measure the wall-clock cost of regenerating Figures 4-10 plus
// the headline over the quick subset, serial vs the RunParallel worker
// pool — the perf-trajectory numbers recorded in BENCH_sim.json.

func runFigureSuite(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		s.Workers = workers
		figs := []func() (*bench.Figure, error){
			s.Figure4, s.Figure5, s.Figure6, s.Figure7,
			s.Figure8, s.Figure9, s.Figure10,
		}
		for _, f := range figs {
			if _, err := f(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Headline(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureSuiteSerial(b *testing.B) { runFigureSuite(b, 1) }

func BenchmarkFigureSuiteParallel(b *testing.B) { runFigureSuite(b, 8) }
