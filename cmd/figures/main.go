// Command figures regenerates the paper's evaluation: every figure and
// table of §4, plus the headline slowdown band, the §4.5 loss analysis,
// and the beyond-the-paper ablations.
//
//	figures                 # everything (several minutes)
//	figures -fig 4          # one figure
//	figures -quick          # 3-benchmark smoke subset
//	figures -progress       # narrate runs as they complete
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"tilevm/internal/bench"
	"tilevm/internal/core"
	"tilevm/internal/workload"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (4-11; 0 = all)")
		quick      = flag.Bool("quick", false, "run a 3-benchmark subset")
		progress   = flag.Bool("progress", false, "print each run as it completes")
		ablation   = flag.Bool("ablations", false, "also run design-choice ablations")
		whatif     = flag.Bool("whatif", false, "also run the §4.5 hardware-assist what-if analysis")
		util       = flag.String("utilization", "", "print per-tile utilization for a benchmark (e.g. 176.gcc)")
		multivm    = flag.Bool("multivm", false, "also run the §5 two-VM fabric-sharing experiment")
		fleet      = flag.Bool("fleet", false, "also run the N-guest fleet scheduler sweep (4x4/8x8/16x16 fabrics; fixed, lending, and planner placement)")
		fleetFault = flag.Bool("fleetfault", false, "also run the fleet fault-tolerance sweep (quarantine/retry/deadline policies)")
		faultsw    = flag.Bool("faultsweep", false, "also run the graceful-degradation fault sweep")
		warmup     = flag.Bool("warmup", false, "also run the tier-0 cold-start benchmark (arrival to first 10k retired instructions)")
		tier0      = flag.Bool("tier0", false, "tier-0 template translation for the -trace run")
		tierUpThr  = flag.Uint64("tier-up-threshold", 0, "tier-up promotion threshold for the -trace run (0 = default; requires -tier0)")
		recovery   = flag.String("recovery", "excise", "fault-sweep recovery mode: excise or rollback")
		asJSON     = flag.Bool("json", false, "emit figures as JSON instead of text tables")
		tracePath  = flag.String("trace", "", "instead of figures, write a Chrome trace_event JSON timeline of one default-config run to this file")
		traceEvery = flag.Uint64("trace-interval", 0, "also sample hit rates and per-tile occupancy every N cycles into <trace>.csv (requires -trace)")
		traceWl    = flag.String("trace-workload", "164.gzip", "workload for the -trace run")
		workers    = flag.Int("j", runtime.NumCPU(), "worker pool width for independent simulations (1 = serial)")
		simWorkers = flag.Int("sim-workers", 1, "event-loop workers inside each fleet simulation (bit-identical at any value; serial fallback when slots are coupled)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Fail fast on a bad invocation — one line, non-zero exit — before
	// any simulation starts.
	if *fig != 0 && (*fig < 4 || *fig > 11) {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d (want 4-11)\n", *fig)
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "figures: -j %d: want at least one worker\n", *workers)
		os.Exit(2)
	}
	recMode, err := core.ParseRecoveryMode(*recovery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	if *traceEvery != 0 && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "figures: -trace-interval requires -trace (the sampler writes next to the trace file)")
		os.Exit(2)
	}
	if *tierUpThr != 0 && !*tier0 {
		fmt.Fprintln(os.Stderr, "figures: -tier-up-threshold requires -tier0")
		os.Exit(2)
	}
	if *tier0 && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "figures: -tier0 applies to the -trace run (use -warmup for the tier-0 benchmark)")
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
		}()
	}

	if *tracePath != "" {
		if err := traceRun(*traceWl, *tracePath, *traceEvery, *tier0, *tierUpThr); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}

	s := bench.NewSuite()
	s.Quick = *quick
	s.Workers = *workers
	s.SimWorkers = *simWorkers
	if *progress {
		s.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	type job struct {
		n   int
		run func() (fmt.Stringer, error)
	}
	jobs := []job{
		{4, func() (fmt.Stringer, error) { return s.Figure4() }},
		{5, func() (fmt.Stringer, error) { return s.Figure5() }},
		{6, func() (fmt.Stringer, error) { return s.Figure6() }},
		{7, func() (fmt.Stringer, error) { return s.Figure7() }},
		{8, func() (fmt.Stringer, error) { return s.Figure8() }},
		{9, func() (fmt.Stringer, error) { return s.Figure9() }},
		{10, func() (fmt.Stringer, error) { return s.Figure10() }},
		{11, func() (fmt.Stringer, error) { return s.Figure11() }},
	}

	collected := map[string]any{}
	for _, j := range jobs {
		if *fig != 0 && *fig != j.n {
			continue
		}
		out, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: figure %d: %v\n", j.n, err)
			os.Exit(1)
		}
		if *asJSON {
			collected[fmt.Sprintf("figure%d", j.n)] = out
		} else {
			fmt.Println(out.String())
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == 0 {
		head, err := s.Headline()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(head)
		loss, err := s.LossAnalysis()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(loss)
	}
	if *ablation {
		ab, err := s.Ablations()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(ab.String())
	}
	if *whatif {
		f, err := s.HardwareWhatIf()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(f.String())
	}
	if *multivm {
		out, err := s.MultiVM()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *fleet {
		out, err := s.FleetSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *fleetFault {
		out, err := s.FleetFaultSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *faultsw {
		f, err := s.FaultSweepMode(recMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(f.String())
	}
	if *util != "" {
		out, err := s.Utilization(*util)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *warmup {
		w, err := s.WarmupBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("warmup — %s, arrival to first %d retired host instructions\n", w.Workload, w.Insts)
		fmt.Printf("  speculative   : tier-0 %8d cycles, optimizing-only %8d (%.3fx)\n",
			w.Tier0Cycles, w.OptCycles, w.Speedup)
		fmt.Printf("  no speculation: tier-0 %8d cycles, optimizing-only %8d (%.3fx)\n",
			w.Tier0CyclesNoSpec, w.OptCyclesNoSpec, w.SpeedupNoSpec)
	}
}

// traceRun executes one default-config run of the named workload with
// the virtual-time tracer attached and writes the Chrome trace JSON
// (and, when interval sampling is on, the CSV time series next to it).
// With tier0 the run uses the template tier, so the timeline shows
// tier_up/promote instants.
func traceRun(wlName, path string, interval uint64, tier0 bool, tierUpThr uint64) error {
	p, ok := workload.ByName(wlName)
	if !ok {
		return fmt.Errorf("unknown workload %q (known: %v)", wlName, workload.Names())
	}
	trc := core.NewTracer(interval)
	cfg := core.DefaultConfig()
	cfg.Tracer = trc
	cfg.Tier0 = tier0
	cfg.TierUpThreshold = tierUpThr
	res, err := core.Run(p.Build(), cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace     : %s (%d events, %d cycles)\n", path, trc.Len(), res.Cycles)
	if !trc.Sampling() {
		return nil
	}
	csvPath := strings.TrimSuffix(path, ".json") + ".csv"
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := trc.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	fmt.Printf("samples   : %s (%d windows of %d cycles)\n", csvPath, trc.Windows(), interval)
	return nil
}
