// Command simbench records the simulator's performance trajectory: it
// re-measures the hot-path microbenchmarks (DES event dispatch, the
// Advance/Recv round trip, the rawexec inner loop, a full machine run)
// and the end-to-end quick figure suite (serial and through the
// RunParallel worker pool), then writes BENCH_sim.json so this and
// future perf PRs have a recorded, comparable baseline.
//
//	simbench                  # writes BENCH_sim.json in the cwd
//	simbench -o out.json -j 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tilevm/internal/bench"
	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/rawexec"
	"tilevm/internal/rawisa"
	"tilevm/internal/sim"
	"tilevm/internal/workload"
)

// microResult is one testing.Benchmark measurement.
type microResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	Seconds     float64 `json:"seconds"`
}

type suiteResult struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// HostCPUs pins the CPU count the entry was measured on: a speedup
	// figure is meaningless without it (a 1-CPU host cannot exceed 1x).
	HostCPUs int `json:"host_cpus"`
}

type output struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Micro map[string]microResult `json:"micro"`

	// QuickSuite is the wall clock of regenerating Figures 4-10 plus
	// the headline over the 3-benchmark quick subset. FleetFault is the
	// quick fleet fault-tolerance sweep (quarantine/retry/deadline
	// policies), measured separately because it runs whole fleets.
	QuickSuite struct {
		Serial     suiteResult `json:"serial"`
		Parallel   suiteResult `json:"parallel"`
		Speedup    float64     `json:"speedup"`
		FleetFault suiteResult `json:"fleet_fault"`
	} `json:"quick_suite"`

	// ServiceThroughput is the daemon-layer benchmark: a closed-loop
	// run of gzip jobs through internal/service (admission queue →
	// batch scheduler → core.RunFleet), reporting wall seconds per
	// finished job. Wall-clock, so benchcheck gates it with the
	// generous time tolerance.
	ServiceThroughput struct {
		Jobs          int     `json:"jobs"`
		SecondsPerJob float64 `json:"seconds_per_job"`
		Seconds       float64 `json:"seconds"`
		HostCPUs      int     `json:"host_cpus"`
	} `json:"service_throughput"`

	// Warmup is the tiered-translation cold-start benchmark: virtual
	// cycles from guest arrival to the first 10k retired host
	// instructions, with the tier-0 template translator on vs. the
	// optimizing pipeline alone. Deterministic virtual cycles — host
	// noise cannot move these numbers.
	Warmup *bench.WarmupResult `json:"warmup"`

	// ParallelSim is the sharded-event-loop benchmark: one
	// oversubscribed 12-guest fleet on an 8×8 fabric, run on the serial
	// loop and on the sharded engine. Identical must always be true —
	// that is the engine's bit-for-bit contract; Speedup only means
	// anything when host_cpus > 1.
	ParallelSim *bench.FleetParallelResult `json:"parallel_sim"`

	// PlacementSweep is the cost-model placement benchmark: fixed-shape
	// carving vs the planner (and planner+elastic morphing) on
	// oversubscribed slot-capped 8×8 and 16×16 fleets. All figures are
	// virtual cycles, so they are exact on any host; Identical must
	// always be true, and the planner must strictly beat the fixed
	// carver on makespan or utilization on every grid.
	PlacementSweep *bench.PlacementSweepResult `json:"placement_sweep"`

	// PrePR pins the numbers measured at the commit before the perf PR
	// (serial harness, container/heap event queue, arena-walking
	// rawexec, no message pooling) on this same host class, so the
	// deltas in this file are meaningful without digging through git.
	PrePR struct {
		SimKernelNsPerOp        int64   `json:"sim_kernel_ns_per_op"`
		SimKernelAllocsPerOp    int64   `json:"sim_kernel_allocs_per_op"`
		MachineGzipNsPerOp      int64   `json:"machine_gzip_ns_per_op"`
		MachineGzipAllocsPerOp  int64   `json:"machine_gzip_allocs_per_op"`
		QuickSuiteSerialSeconds float64 `json:"quick_suite_serial_seconds"`
	} `json:"pre_pr_baseline"`

	Notes string `json:"notes"`
}

func bmark(f func(b *testing.B)) microResult {
	r := testing.Benchmark(f)
	return microResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
		Seconds:     r.T.Seconds(),
	}
}

func benchEventDispatch(b *testing.B) {
	s := sim.New()
	s.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchAdvanceRecv(b *testing.B) {
	s := sim.New()
	pt := s.NewPort("bench")
	payload := &struct{ n int }{}
	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
			pt.Send(0, payload, p.Now())
		}
	})
	s.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Recv(pt)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

type countClockEnv struct{}

func (countClockEnv) GuestLoad(addr uint32, size uint8, signed bool) (uint32, uint64) { return 0, 0 }
func (countClockEnv) GuestStore(addr uint32, val uint32, size uint8)                  {}
func (countClockEnv) Syscall(cpu *rawexec.CPU)                                        {}
func (countClockEnv) Assist(guestPC uint32, cpu *rawexec.CPU) error                   { return nil }
func (countClockEnv) Stopped() bool                                                   { return false }
func (countClockEnv) Interrupted() bool                                               { return false }

func benchRawexecInnerLoop(b *testing.B) {
	var p rawexec.Program
	p.Sync([]rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 1, Imm: -1},
		{Op: rawisa.BNE, Rs: 1, Rt: 0, Imm: -2},
		{Op: rawisa.EXITI, Target: 0xdead},
	})
	cpu := &rawexec.CPU{}
	cpu.R[1] = uint32(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := p.Exec(cpu, 0, &rawexec.CountClock{}, countClockEnv{}, 0); err != nil {
		b.Fatal(err)
	}
}

func benchMachineGzip(img *guest.Image) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(img, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func runQuickSuite(workers int) (float64, error) {
	s := bench.NewSuite()
	s.Quick = true
	s.Workers = workers
	start := time.Now()
	figs := []func() (*bench.Figure, error){
		s.Figure4, s.Figure5, s.Figure6, s.Figure7,
		s.Figure8, s.Figure9, s.Figure10,
	}
	for _, f := range figs {
		if _, err := f(); err != nil {
			return 0, err
		}
	}
	if _, err := s.Headline(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func main() {
	var (
		outPath = flag.String("o", "BENCH_sim.json", "output file")
		workers = flag.Int("j", runtime.NumCPU(), "worker pool width for the parallel suite measurement")
	)
	flag.Parse()

	var out output
	out.Date = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = runtime.Version()
	out.HostCPUs = runtime.NumCPU()
	out.GOMAXPROCS = runtime.GOMAXPROCS(0)

	gz, ok := workload.ByName("164.gzip")
	if !ok {
		fmt.Fprintln(os.Stderr, "simbench: workload 164.gzip missing")
		os.Exit(1)
	}
	img := gz.Build()

	fmt.Fprintln(os.Stderr, "simbench: microbenchmarks...")
	out.Micro = map[string]microResult{
		"sim_event_dispatch": bmark(benchEventDispatch),
		"sim_advance_recv":   bmark(benchAdvanceRecv),
		"rawexec_inner_loop": bmark(benchRawexecInnerLoop),
		"machine_run_gzip":   bmark(benchMachineGzip(img)),
	}

	fmt.Fprintln(os.Stderr, "simbench: quick figure suite, serial...")
	serial, err := runQuickSuite(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simbench: quick figure suite, %d workers...\n", *workers)
	par, err := runQuickSuite(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	cpus := runtime.NumCPU()
	out.QuickSuite.Serial = suiteResult{Workers: 1, Seconds: serial, HostCPUs: cpus}
	out.QuickSuite.Parallel = suiteResult{Workers: *workers, Seconds: par, HostCPUs: cpus}
	out.QuickSuite.Speedup = serial / par

	fmt.Fprintln(os.Stderr, "simbench: quick fleet fault-tolerance sweep...")
	ffStart := time.Now()
	ffSuite := bench.NewSuite()
	ffSuite.Quick = true
	if _, err := ffSuite.FleetFaultSweep(); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	out.QuickSuite.FleetFault = suiteResult{Workers: 1, Seconds: time.Since(ffStart).Seconds(), HostCPUs: cpus}

	fmt.Fprintln(os.Stderr, "simbench: service throughput (closed-loop daemon layer)...")
	const svcJobs = 8
	secPerJob, svcRes, err := bench.ServiceThroughputBench(svcJobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	out.ServiceThroughput.Jobs = svcJobs
	out.ServiceThroughput.SecondsPerJob = secPerJob
	out.ServiceThroughput.Seconds = svcRes.Wall.Seconds()
	out.ServiceThroughput.HostCPUs = cpus

	fmt.Fprintln(os.Stderr, "simbench: tier-0 warmup (cold-start cycles)...")
	wres, err := bench.NewSuite().WarmupBench()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	out.Warmup = wres

	simW := *workers
	if simW < 2 {
		simW = 2 // determinism check still runs on 1-CPU hosts
	}
	fmt.Fprintf(os.Stderr, "simbench: sharded fleet (parallel_sim), %d sim workers...\n", simW)
	fp, err := bench.FleetParallelBench(simW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	if !fp.Identical {
		fmt.Fprintln(os.Stderr, "simbench: parallel_sim: sharded fleet result DIVERGED from serial — the engine's bit-for-bit contract is broken")
		os.Exit(1)
	}
	out.ParallelSim = fp

	fmt.Fprintln(os.Stderr, "simbench: placement sweep (planner vs fixed, oversubscribed fleets)...")
	ps, err := bench.PlacementSweepBench(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	if !ps.Identical {
		fmt.Fprintln(os.Stderr, "simbench: placement_sweep: repeated runs DIVERGED — planner/elastic placement broke determinism")
		os.Exit(1)
	}
	for _, g := range ps.Grids {
		if !g.PlannerWins {
			fmt.Fprintf(os.Stderr, "simbench: placement_sweep: planner does not strictly beat fixed shapes on %s (makespan %d vs %d, utilization %.4f vs %.4f)\n",
				g.Grid, g.Planner.Makespan, g.Fixed.Makespan, g.Planner.Utilization, g.Fixed.Utilization)
			os.Exit(1)
		}
	}
	out.PlacementSweep = ps

	out.PrePR.SimKernelNsPerOp = 19_700_000
	out.PrePR.SimKernelAllocsPerOp = 89_763
	out.PrePR.MachineGzipNsPerOp = 21_200_000
	out.PrePR.MachineGzipAllocsPerOp = 29_993
	out.PrePR.QuickSuiteSerialSeconds = 11.66
	out.Notes = "pre_pr_baseline measured at the commit before the perf PR on the same host; " +
		"parallel speedup is bounded by host_cpus (a single-core host cannot exceed 1x " +
		"regardless of worker count — the parallel path is then validated for determinism, " +
		"not speed); machine_run_gzip is a single-VM serial run, so the cross-shard send " +
		"pooling added with the sharded engine does not move its allocs/op — the pooled " +
		"path only exists in sharded fleet runs (parallel_sim)"

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	fmt.Printf("simbench: wrote %s (quick suite %.2fs serial, %.2fs with %d workers on %d CPU(s))\n",
		*outPath, serial, par, *workers, out.HostCPUs)
	fmt.Printf("simbench: parallel_sim %.2fs serial, %.2fs sharded ×%d (%.2fx, identical=%v)\n",
		fp.SerialSeconds, fp.ShardedSeconds, fp.Workers, fp.Speedup, fp.Identical)
	fmt.Printf("simbench: service_throughput %.3fs/job over %d closed-loop jobs\n",
		secPerJob, svcJobs)
	for _, g := range ps.Grids {
		fmt.Printf("simbench: placement_sweep %s cap %d: makespan fixed %d → planner %d (elastic %d, %d grows)\n",
			g.Grid, g.MaxSlots, g.Fixed.Makespan, g.Planner.Makespan, g.Elastic.Makespan, g.Elastic.ElasticGrows)
	}
	fmt.Printf("simbench: warmup tier0 %d vs opt %d cycles (%.3fx; no-spec %.3fx)\n",
		wres.Tier0Cycles, wres.OptCycles, wres.Speedup, wres.SpeedupNoSpec)
}
