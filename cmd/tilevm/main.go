// Command tilevm runs an x86 guest program on the simulated Raw tiled
// processor through the parallel dynamic binary translation engine.
//
// The guest is either a TVMI image file (see cmd/wlgen) or a named
// synthetic SpecInt workload:
//
//	tilevm -workload 176.gcc
//	tilevm -image prog.tvmi -slaves 9 -membanks 1
//	tilevm -workload 181.mcf -morph -threshold 5 -v
//	tilevm -workload 164.gzip -fault-plan 'fail:7@150000,drop:0.001' -fault-seed 42 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
	"tilevm/internal/translate"
	"tilevm/internal/workload"
)

func main() {
	var (
		imagePath = flag.String("image", "", "TVMI guest image to run")
		wlName    = flag.String("workload", "", "named synthetic workload (e.g. 176.gcc)")
		slaves    = flag.Int("slaves", 6, "translation slave tiles (1-9)")
		spec      = flag.Bool("speculate", true, "speculative parallel translation")
		l15       = flag.Int("l15", 2, "L1.5 code cache banks (0-2)")
		membanks  = flag.Int("membanks", 4, "L2 data cache bank tiles (1 or 4)")
		optimize  = flag.Bool("opt", true, "optimize translated blocks")
		morph     = flag.Bool("morph", false, "dynamic virtual architecture reconfiguration")
		threshold = flag.Int("threshold", 5, "morphing queue-length threshold")
		maxCycles = flag.Uint64("maxcycles", 0, "simulation watchdog (0 = default)")
		faultPlan = flag.String("fault-plan", "", "fault plan, e.g. 'fail:7@150000,drop:0.01,delay:0.02+400,corrupt:0.01,dram:0.05,stall:6@30000+5000'")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for the fault plan's probabilistic clauses")
		noRecover = flag.Bool("fault-norecover", false, "disable fault recovery (a fault then deadlocks with a diagnostic)")
		verbose   = flag.Bool("v", false, "print detailed metrics")
		dump      = flag.String("dump", "", "disassemble the translation of the block at this guest PC (hex; 'entry' for the entry point) and exit")
		trace     = flag.Int("trace", 0, "log the first N dispatch-loop iterations to stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tilevm:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tilevm:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tilevm:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tilevm:", err)
			}
		}()
	}

	img, err := loadGuest(*imagePath, *wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tilevm:", err)
		os.Exit(1)
	}

	if *dump != "" {
		if err := dumpBlock(img, *dump, *optimize); err != nil {
			fmt.Fprintln(os.Stderr, "tilevm:", err)
			os.Exit(1)
		}
		return
	}

	cfg := core.DefaultConfig()
	cfg.Slaves = *slaves
	cfg.Speculative = *spec
	cfg.L15Banks = *l15
	cfg.MemBanks = *membanks
	cfg.Optimize = *optimize
	cfg.ConservativeFlags = !*optimize
	cfg.Morph = *morph
	cfg.MorphThreshold = *threshold
	if *maxCycles != 0 {
		cfg.MaxCycles = *maxCycles
	}
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tilevm:", err)
			os.Exit(1)
		}
		plan.Seed = *faultSeed
		cfg.Fault = plan
		cfg.FaultRecovery = !*noRecover
	}
	if *trace > 0 {
		cfg.Trace = os.Stderr
		cfg.TraceLimit = *trace
	}

	res, err := core.Run(img, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tilevm:", err)
		os.Exit(1)
	}
	os.Stdout.WriteString(res.Stdout)
	fmt.Printf("exit code : %d\n", res.ExitCode)
	fmt.Printf("cycles    : %d\n", res.Cycles)
	if *verbose {
		m := res.M
		fmt.Printf("dispatches        : %d\n", m.BlockDispatches)
		fmt.Printf("host instructions : %d\n", m.HostInsts)
		fmt.Printf("translations      : %d (%d guest insts)\n", m.Translations, m.TransGuestInsts)
		fmt.Printf("demand misses     : %d\n", m.DemandMisses)
		fmt.Printf("spec wasted       : %d\n", m.SpecWasted)
		fmt.Printf("L1 code           : %d lookups, %.3f hit, %d flushes, %d chains\n",
			m.L1CLookups, float64(m.L1CHits)/float64(max(m.L1CLookups, 1)), m.L1CFlushes, m.Chains)
		fmt.Printf("L1.5 code         : %d lookups, %.3f hit\n", m.L15Lookups, m.L15HitRate())
		fmt.Printf("L2 code           : %d accesses (%.2e/cycle), %.3f miss\n",
			m.L2CAccess, m.L2CAccessesPerCycle(), m.L2CMissRate())
		fmt.Printf("data L1           : %d accesses, %.4f miss\n", m.DL1Accesses, m.DL1MissRate())
		fmt.Printf("L2 data banks     : %d requests, %d misses\n", m.L2DRequests, m.L2DMisses)
		fmt.Printf("TLB misses        : %d\n", m.TLBMisses)
		fmt.Printf("syscalls/assists  : %d/%d\n", m.Syscalls, m.Assists)
		fmt.Printf("reconfigurations  : %d (%d lines flushed)\n", m.Reconfigs, m.MorphFlushLines)
		fmt.Printf("SMC invalidations : %d\n", m.SMCInvalidations)
		if m.FaultsInjected > 0 || m.Timeouts > 0 {
			fmt.Printf("faults injected   : %d (%d drops, %d delays, %d corruptions, %d DRAM, %d fails, %d stalls)\n",
				m.FaultsInjected, m.MsgsDropped, m.MsgsDelayed, m.MsgsCorrupted,
				m.DRAMErrors, m.TileFails, m.TileStalls)
			fmt.Printf("recovery          : %d timeouts, %d retries, %d role remaps, %d writebacks lost, %d recovery cycles\n",
				m.Timeouts, m.Retries, m.RoleRemaps, m.WritebacksLost, m.RecoveryCycles)
		}
	}
}

// dumpBlock prints the guest basic block at the given PC and its
// translation to host code.
func dumpBlock(img *guest.Image, at string, optimize bool) error {
	pc := img.Entry
	if at != "entry" {
		v, err := strconv.ParseUint(strings.TrimPrefix(at, "0x"), 16, 32)
		if err != nil {
			return fmt.Errorf("bad -dump address %q: %w", at, err)
		}
		pc = uint32(v)
	}
	p := guest.Load(img)
	insts, err := translate.DiscoverBlock(p.Mem, pc)
	if err != nil {
		return err
	}
	fmt.Printf("guest basic block at %#x (%d instructions):\n", pc, len(insts))
	for _, in := range insts {
		fmt.Printf("  %08x: %s\n", in.Addr, in.String())
	}
	tr := translate.New(translate.Options{Optimize: optimize, ConservativeFlags: !optimize})
	res, err := tr.TranslateFinal(p.Mem, pc)
	if err != nil {
		return err
	}
	fmt.Printf("\ntranslated host code (%d instructions, %d bytes, optimize=%v):\n",
		len(res.Code), res.CodeBytes, optimize)
	fmt.Print(rawisa.Disassemble(res.Code))
	fmt.Printf("\nexit kind %v, target %#x, fallthrough %#x\n",
		res.Kind, res.Target, res.FallTarget)
	return nil
}

func loadGuest(imagePath, wlName string) (*guest.Image, error) {
	switch {
	case imagePath != "" && wlName != "":
		return nil, fmt.Errorf("use either -image or -workload, not both")
	case imagePath != "":
		return loadImageAuto(imagePath)
	case wlName != "":
		p, ok := workload.ByName(wlName)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (known: %v)", wlName, workload.Names())
		}
		return p.Build(), nil
	default:
		return nil, fmt.Errorf("specify -image or -workload")
	}
}

// loadImageAuto sniffs the file format: ELF32 executable or TVMI image.
func loadImageAuto(path string) (*guest.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, err = f.Read(magic[:])
	f.Close()
	if err == nil && string(magic[:]) == "\x7fELF" {
		return guest.LoadELFFile(path)
	}
	return guest.LoadImageFile(path)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
