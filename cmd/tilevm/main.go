// Command tilevm runs an x86 guest program on the simulated Raw tiled
// processor through the parallel dynamic binary translation engine.
//
// The guest is either a TVMI image file (see cmd/wlgen) or a named
// synthetic SpecInt workload:
//
//	tilevm -workload 176.gcc
//	tilevm -image prog.tvmi -slaves 9 -membanks 1
//	tilevm -workload 181.mcf -morph -threshold 5 -v
//	tilevm -workload 164.gzip -fault-plan 'fail:7@150000,drop:0.001' -fault-seed 42 -v
//
// Faulted runs can recover by rolling back to a periodic checkpoint
// instead of excising the dead tile in place, and any run can be
// recorded to a replayable file:
//
//	tilevm -workload 181.mcf -fault-plan 'fail:7@150000' -recovery rollback -v
//	tilevm -workload 181.mcf -fault-plan 'fail:7@150000' -recovery rollback -record run.tvrc
//	tilevm -replay run.tvrc
//	tilevm -replay run.tvrc -replay-to-cycle 500000
//	tilevm -replay-diff run.tvrc
//
// Fleet mode runs N guests as virtual machines sharing one fabric,
// carving the grid into 8-tile VM slots, queueing guests beyond the
// slot count, and (with -lend) lending idle translation slaves to the
// most backed-up VM:
//
//	tilevm -guests 164.gzip,181.mcf,176.gcc,164.gzip -grid 8x8
//	tilevm -guests 164.gzip,181.mcf -lend=false -v
//
// Fleet runs compose with fail-stop fault plans: a fault that kills a
// slot tile quarantines the whole slot, and its guest is retried on the
// survivors (with deterministic backoff), restored from the latest
// checkpoint when -recovery rollback is on, until -max-attempts or its
// -deadline runs out:
//
//	tilevm -guests 164.gzip,181.mcf,164.gzip -grid 8x8 -fault-plan 'fail:9@500000'
//	tilevm -guests 181.mcf,164.gzip -fault-plan 'fail:12@1000000' -recovery rollback -v
//	tilevm -guests 164.gzip,181.mcf -deadline 8000000 -max-attempts 2 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tilevm/internal/bench"
	"tilevm/internal/checkpoint"
	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
	"tilevm/internal/trace"
	"tilevm/internal/translate"
	"tilevm/internal/workload"
)

func main() {
	var (
		imagePath  = flag.String("image", "", "TVMI or ELF32 guest image to run")
		wlName     = flag.String("workload", "", "named synthetic workload (e.g. 176.gcc)")
		guests     = flag.String("guests", "", "comma-separated workload names to run as a fleet of VMs (e.g. 164.gzip,181.mcf)")
		grid       = flag.String("grid", "4x4", "fabric size WxH for fleet mode (requires -guests)")
		lendFlag   = flag.Bool("lend", true, "fleet mode: lend idle translation slaves to the most backed-up VM (auto-off under -elastic)")
		planner    = flag.Bool("planner", false, "fleet mode: cost-model placement planner — grow slots on undersubscribed fabrics and split tiles between translation slaves and cache banks per guest profile")
		elastic    = flag.Bool("elastic", false, "fleet mode: elastic morphing — idle slots donate their tiles to running VMs and reclaim them when a queued guest arrives (forces the serial event loop)")
		deadline   = flag.Uint64("deadline", 0, "fleet mode: per-guest virtual-cycle deadline; guests still running at the deadline are cancelled (0 = none)")
		maxAtt     = flag.Int("max-attempts", 0, "fleet mode: admission attempts per guest before it is aborted (0 = default)")
		retryBack  = flag.Uint64("retry-backoff", 0, "fleet mode: base virtual-cycle backoff before re-admitting a quarantined guest (0 = default)")
		retrySeed  = flag.Uint64("retry-seed", 0, "fleet mode: seed for the deterministic retry-backoff jitter")
		slaves     = flag.Int("slaves", 6, "translation slave tiles (1-9)")
		spec       = flag.Bool("speculate", true, "speculative parallel translation")
		l15        = flag.Int("l15", 2, "L1.5 code cache banks (0-2)")
		membanks   = flag.Int("membanks", 4, "L2 data cache bank tiles (1 or 4)")
		optimize   = flag.Bool("opt", true, "optimize translated blocks")
		tier0      = flag.Bool("tier0", false, "tier-0 template translation for demand misses, with hotness-driven re-translation by the optimizing tier")
		tierUpThr  = flag.Uint64("tier-up-threshold", 0, "retired instructions before a hot tier-0 block is promoted to the optimizing tier (0 = default; requires -tier0)")
		morph      = flag.Bool("morph", false, "dynamic virtual architecture reconfiguration")
		threshold  = flag.Int("threshold", 5, "morphing queue-length threshold")
		maxCycles  = flag.Uint64("maxcycles", 0, "simulation watchdog (0 = default)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run; an expired run is interrupted and exits non-zero (0 = none; composes with -deadline, which is virtual cycles)")
		simWorkers = flag.Int("sim-workers", 1, "simulation event-loop workers; >1 shards fleet runs by VM slot with bit-identical results (serial fallback when slots are coupled by lending, faults, or tracing)")
		faultPlan  = flag.String("fault-plan", "", "fault plan, e.g. 'fail:7@150000,drop:0.01,delay:0.02+400,corrupt:0.01,dram:0.05,stall:6@30000+5000'")
		faultSeed  = flag.Uint64("fault-seed", 0, "seed for the fault plan's probabilistic clauses")
		noRecover  = flag.Bool("fault-norecover", false, "disable fault recovery (a fault then deadlocks with a diagnostic)")
		recovery   = flag.String("recovery", "excise", "fail-stop recovery mode: excise (morph around the dead tile in place) or rollback (restore the last checkpoint when excision would lose writebacks)")
		ckEvery    = flag.Uint64("checkpoint-interval", 0, "cycles between whole-machine checkpoints (0 = default when -recovery rollback, else off)")
		recordPath = flag.String("record", "", "write a deterministic record of the run to this file")
		replayPath = flag.String("replay", "", "replay a recorded run and verify it reproduces")
		replayTo   = flag.Uint64("replay-to-cycle", 0, "halt the replay at this virtual cycle (requires -replay)")
		diffPath   = flag.String("replay-diff", "", "replay a recorded run and bisect to the first divergent event")
		verbose    = flag.Bool("v", false, "print detailed metrics")
		dump       = flag.String("dump", "", "disassemble the translation of the block at this guest PC (hex; 'entry' for the entry point) and exit")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file (load in Perfetto or chrome://tracing)")
		traceEvery = flag.Uint64("trace-interval", 0, "also sample hit rates, queue depth, and per-tile occupancy every N cycles into <trace>.csv (requires -trace)")
		dispTrace  = flag.Int("dispatch-trace", 0, "log the first N dispatch-loop iterations to stderr")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Validate every fault / checkpoint / replay flag before touching the
	// guest or the simulator, so a bad invocation dies with one line and a
	// non-zero exit instead of a mid-run panic or a silent misconfiguration.
	recMode, err := core.ParseRecoveryMode(*recovery)
	if err != nil {
		die(err)
	}
	if *faultPlan != "" {
		if _, err := fault.ParsePlan(*faultPlan); err != nil {
			die(err)
		}
	} else if *faultSeed != 0 {
		die(fmt.Errorf("-fault-seed is meaningless without -fault-plan"))
	}
	if *noRecover && recMode == core.RecoverRollback {
		die(fmt.Errorf("-fault-norecover conflicts with -recovery rollback (rollback is a recovery mode)"))
	}
	replaying := *replayPath != "" || *diffPath != ""
	if *replayPath != "" && *diffPath != "" {
		die(fmt.Errorf("use either -replay or -replay-diff, not both"))
	}
	if replaying && *recordPath != "" {
		die(fmt.Errorf("-record conflicts with -replay/-replay-diff (a replay re-runs the recorded inputs)"))
	}
	if *replayTo != 0 && *replayPath == "" {
		die(fmt.Errorf("-replay-to-cycle requires -replay"))
	}
	if replaying && (*imagePath != "" || *wlName != "" || *faultPlan != "" || *dump != "") {
		die(fmt.Errorf("-replay/-replay-diff take the guest and fault plan from the record; drop -image/-workload/-fault-plan/-dump"))
	}
	if *traceEvery != 0 && *tracePath == "" {
		die(fmt.Errorf("-trace-interval requires -trace (the sampler writes next to the trace file)"))
	}
	if *tracePath != "" && (replaying || *recordPath != "") {
		die(fmt.Errorf("-trace conflicts with -record/-replay/-replay-diff (recorded runs are driven by the bench harness)"))
	}
	if *timeout < 0 {
		die(fmt.Errorf("-timeout must be non-negative"))
	}
	if *timeout != 0 && (replaying || *recordPath != "" || *dump != "") {
		die(fmt.Errorf("-timeout conflicts with -record/-replay/-replay-diff/-dump (a wall-clock limit cutting a run short would make the artifact non-reproducible)"))
	}
	if *tierUpThr != 0 && !*tier0 {
		die(fmt.Errorf("-tier-up-threshold requires -tier0"))
	}
	if *tier0 && (replaying || *recordPath != "") {
		die(fmt.Errorf("-tier0 conflicts with -record/-replay/-replay-diff (the tier is not part of the record format)"))
	}

	// Fleet mode: validate the whole invocation — flag conflicts, the
	// grid shape, whether the fabric fits any VM slot, and every guest
	// name — before building a single guest image.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, fleetOnly := range []string{
		"grid", "lend", "planner", "elastic", "deadline", "max-attempts", "retry-backoff", "retry-seed",
	} {
		if set[fleetOnly] && *guests == "" {
			die(fmt.Errorf("-%s requires -guests (fleet mode)", fleetOnly))
		}
	}
	if *elastic {
		// Both features move slaves between VMs; they cannot share a
		// fabric. -lend defaults on, so only an explicit -lend conflicts.
		if set["lend"] && *lendFlag {
			die(fmt.Errorf("-elastic and -lend are mutually exclusive (both move slaves between VMs)"))
		}
		*lendFlag = false
	}
	var fleetNames []string
	var fleetSlots int
	fleetCfg := core.DefaultConfig()
	if *guests != "" {
		// -fault-plan, -fault-seed, -recovery, and -checkpoint-interval
		// compose with fleet mode: fail-stop plans drive slot quarantine,
		// and rollback mode restores retried guests from their latest
		// checkpoint. Everything that fixes per-VM resources or wraps the
		// run in the record/replay harness stays single-machine-only.
		for _, conflict := range []string{
			"image", "workload", "slaves", "l15", "membanks", "morph", "threshold",
			"fault-norecover", "record", "replay", "replay-diff", "dump",
			"dispatch-trace",
		} {
			if set[conflict] {
				die(fmt.Errorf("-%s does not apply in fleet mode (per-VM resources are fixed by the 8-tile slot shape)", conflict))
			}
		}
		w, h, err := parseGrid(*grid)
		if err != nil {
			die(err)
		}
		fleetCfg.Params.Width, fleetCfg.Params.Height = w, h
		fleetCfg.SimWorkers = *simWorkers
		fleetCfg.Optimize = *optimize
		fleetCfg.ConservativeFlags = !*optimize
		fleetCfg.Speculative = *spec
		fleetCfg.Tier0 = *tier0
		fleetCfg.TierUpThreshold = *tierUpThr
		fleetCfg.Recovery = recMode
		fleetCfg.CheckpointInterval = *ckEvery
		if *maxCycles != 0 {
			fleetCfg.MaxCycles = *maxCycles
		}
		if *faultPlan != "" {
			plan, err := fault.ParsePlan(*faultPlan) // syntax validated above
			if err != nil {
				die(err)
			}
			plan.Seed = *faultSeed
			fleetCfg.Fault = plan
		}
		fleetSlots, err = core.FleetSlots(fleetCfg.Params)
		if err != nil {
			die(err)
		}
		for _, n := range strings.Split(*guests, ",") {
			n = strings.TrimSpace(n)
			if _, ok := workload.ByName(n); !ok {
				die(fmt.Errorf("unknown workload %q (known: %v)", n, workload.Names()))
			}
			fleetNames = append(fleetNames, n)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tilevm:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tilevm:", err)
			}
		}()
	}

	if replaying {
		path, bisect := *replayPath, false
		if *diffPath != "" {
			path, bisect = *diffPath, true
		}
		if err := replay(path, *replayTo, bisect, *simWorkers); err != nil {
			die(err)
		}
		return
	}

	if *guests != "" {
		imgs := make([]*guest.Image, len(fleetNames))
		for i, n := range fleetNames {
			p, _ := workload.ByName(n) // validated above
			imgs[i] = p.Build()
		}
		var trc *trace.Tracer
		if *tracePath != "" {
			trc = core.NewTracerFor(fleetCfg.Params, *traceEvery)
			fleetCfg.Tracer = trc
		}
		intr, stopTimer := armTimeout(*timeout)
		fleetCfg.Interrupt = intr
		defer stopTimer()
		fc := core.FleetConfig{
			Lend:         *lendFlag,
			Planner:      *planner,
			Elastic:      *elastic,
			MaxAttempts:  *maxAtt,
			RetryBackoff: *retryBack,
			RetrySeed:    *retrySeed,
			Deadline:     *deadline,
		}
		if *planner {
			fc.Profiles = make([]core.GuestProfile, len(fleetNames))
			for i, n := range fleetNames {
				p, _ := workload.ByName(n) // validated above
				fc.Profiles[i] = core.ProfileFromWorkload(p)
			}
		}
		res, err := core.RunFleet(imgs, fleetCfg, fc)
		if trc != nil && res != nil {
			if werr := writeTrace(trc, *tracePath); werr != nil {
				die(werr)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "trace     : %s (%d events)\n", *tracePath, trc.Len())
			}
		}
		if err != nil {
			if core.Interrupted(err) {
				die(fmt.Errorf("wall-clock timeout %v exceeded (%v)", *timeout, err))
			}
			die(err)
		}
		reportFleet(res, fleetNames, fleetSlots, *verbose)
		return
	}

	img, err := loadGuest(*imagePath, *wlName)
	if err != nil {
		die(err)
	}

	if *dump != "" {
		if err := dumpBlock(img, *dump, *optimize, *tier0); err != nil {
			die(err)
		}
		return
	}

	if *recordPath != "" {
		rc := checkpoint.RecordConfig{
			Workload:           *wlName,
			ImagePath:          *imagePath,
			Slaves:             *slaves,
			Speculative:        *spec,
			L15Banks:           *l15,
			MemBanks:           *membanks,
			Optimize:           *optimize,
			Morph:              *morph,
			MorphThreshold:     *threshold,
			MaxCycles:          *maxCycles,
			FaultPlan:          *faultPlan,
			FaultSeed:          *faultSeed,
			FaultRecovery:      !*noRecover,
			Recovery:           uint8(recMode),
			CheckpointInterval: *ckEvery,
		}
		res, rec, err := bench.RunRecorded(rc)
		if err != nil {
			die(err)
		}
		if err := checkpoint.WriteRecordFile(*recordPath, rec); err != nil {
			die(err)
		}
		report(res, *verbose)
		fmt.Printf("recorded  : %s (%d events)\n", *recordPath, len(rec.Events))
		return
	}

	cfg := core.DefaultConfig()
	cfg.SimWorkers = *simWorkers
	cfg.Slaves = *slaves
	cfg.Speculative = *spec
	cfg.L15Banks = *l15
	cfg.MemBanks = *membanks
	cfg.Optimize = *optimize
	cfg.ConservativeFlags = !*optimize
	cfg.Tier0 = *tier0
	cfg.TierUpThreshold = *tierUpThr
	cfg.Morph = *morph
	cfg.MorphThreshold = *threshold
	cfg.Recovery = recMode
	cfg.CheckpointInterval = *ckEvery
	if *maxCycles != 0 {
		cfg.MaxCycles = *maxCycles
	}
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			die(err)
		}
		plan.Seed = *faultSeed
		cfg.Fault = plan
		cfg.FaultRecovery = !*noRecover
	}
	if *dispTrace > 0 {
		cfg.DispatchLog = os.Stderr
		cfg.DispatchLogLimit = *dispTrace
	}
	var trc *trace.Tracer
	if *tracePath != "" {
		trc = core.NewTracer(*traceEvery)
		cfg.Tracer = trc
	}
	intr, stopTimer := armTimeout(*timeout)
	cfg.Interrupt = intr
	defer stopTimer()

	res, err := core.Run(img, cfg)
	// Write the trace even when the run failed: a timeline of a run that
	// hit the watchdog or a guest fault is exactly when you want one.
	if trc != nil {
		if werr := writeTrace(trc, *tracePath); werr != nil {
			die(werr)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "trace     : %s (%d events)\n", *tracePath, trc.Len())
			if trc.Sampling() {
				fmt.Fprintf(os.Stderr, "samples   : %s (%d windows)\n", csvPathFor(*tracePath), trc.Windows())
			}
		}
	}
	if err != nil {
		if core.Interrupted(err) {
			die(fmt.Errorf("wall-clock timeout %v exceeded (%v)", *timeout, err))
		}
		die(err)
	}
	report(res, *verbose)
}

// armTimeout arms a wall-clock interrupt for the run: after d the
// simulation is stopped from outside virtual time. d == 0 returns a
// nil handle (core treats it as absent) and a no-op stop.
func armTimeout(d time.Duration) (*core.InterruptHandle, func()) {
	if d == 0 {
		return nil, func() {}
	}
	h := core.NewInterruptHandle()
	t := time.AfterFunc(d, h.Interrupt)
	return h, func() { t.Stop() }
}

// writeTrace writes the Chrome trace JSON and, when interval sampling
// is on, the CSV time series next to it (run.json → run.csv).
func writeTrace(t *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !t.Sampling() {
		return nil
	}
	cf, err := os.Create(csvPathFor(path))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// csvPathFor derives the sampler CSV path from the trace path.
func csvPathFor(path string) string {
	return strings.TrimSuffix(path, ".json") + ".csv"
}

// parseGrid parses a WxH fabric size like "8x8".
func parseGrid(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) == 2 {
		w, errW := strconv.Atoi(parts[0])
		h, errH := strconv.Atoi(parts[1])
		if errW == nil && errH == nil {
			return w, h, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -grid %q, want WxH (e.g. 8x8)", s)
}

// reportFleet prints the fleet run outcome: one line per guest in
// admission order, then the fleet totals. capacity is how many slots
// the fabric could carve (res.Slots is capped at the guest count).
// With -v each guest's stdout follows, labeled.
func reportFleet(res *core.FleetResult, names []string, capacity int, verbose bool) {
	for gi, g := range res.Guests {
		switch {
		case g.Status == core.GuestFinished && g.Result != nil:
			attempts := ""
			if g.Attempts > 1 {
				attempts = fmt.Sprintf("  attempts %d", g.Attempts)
			}
			fmt.Printf("guest %-2d  : %-12s slot %d  admitted %12d  finished %12d  exit %d%s\n",
				gi, names[gi], g.Slot, g.Admitted, g.Finished, g.ExitCode, attempts)
		case g.Err != nil:
			fmt.Printf("guest %-2d  : %-12s %s: %v\n", gi, names[gi], g.Status, g.Err)
		default:
			fmt.Printf("guest %-2d  : %-12s %s\n", gi, names[gi], g.Status)
		}
	}
	fmt.Printf("fleet     : %d guests on %d slots (fabric fits %d), makespan %d cycles, utilization %.1f%%\n",
		len(res.Guests), res.Slots, capacity, res.Makespan, 100*res.Utilization)
	f := &res.Fleet
	if f.SlotsQuarantined > 0 || f.GuestsRetried > 0 || f.GuestsAborted > 0 || f.DeadlineTotal > 0 {
		fmt.Printf("policy    : %d slots quarantined, %d retries, %d aborted, %d deadline-exceeded\n",
			f.SlotsQuarantined, f.GuestsRetried, f.GuestsAborted, f.GuestsDeadlineExceeded)
		fmt.Printf("goodput   : %.3f insts/cycle, SLO attainment %.0f%% (%d/%d deadlines met)\n",
			f.Goodput(res.Makespan), 100*f.SLOAttainment(), f.DeadlineMet, f.DeadlineTotal)
	}
	if f.ElasticGrows > 0 || f.ElasticShrinks > 0 {
		fmt.Printf("elastic   : %d grows, %d shrinks\n", f.ElasticGrows, f.ElasticShrinks)
	}
	if !verbose {
		return
	}
	for gi, g := range res.Guests {
		if g.Result == nil || g.Stdout == "" {
			continue
		}
		fmt.Printf("--- guest %d (%s) stdout ---\n%s", gi, names[gi], g.Stdout)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "tilevm:", err)
	os.Exit(1)
}

// replay re-runs a recorded run and verifies it reproduces. With bisect
// the full replay is followed, on divergence, by a truncated re-replay
// to the last matching event's cycle, confirming the divergence point.
// Exits non-zero when the replay does not reproduce the record.
func replay(path string, toCycle uint64, bisect bool, simWorkers int) error {
	rec, err := checkpoint.ReadRecordFile(path)
	if err != nil {
		return err
	}
	rep, err := bench.ReplayWorkers(rec, toCycle, simWorkers)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Match && rep.FirstDivergent < 0 {
		return nil
	}
	if bisect && rep.FirstDivergent > 0 && rep.RefEvent != nil {
		// Confirm the bisection: everything before the divergent event
		// replays cleanly.
		last := rec.Events[rep.FirstDivergent-1]
		pre, err := bench.ReplayWorkers(rec, last.Cycle, simWorkers)
		if err != nil {
			return err
		}
		if pre.FirstDivergent < 0 {
			fmt.Printf("  prefix: clean through event #%d (cycle %d)\n",
				rep.FirstDivergent-1, last.Cycle)
		} else {
			fmt.Printf("  prefix: diverges earlier, at event #%d\n", pre.FirstDivergent)
		}
	}
	os.Exit(2)
	return nil
}

// report prints the run outcome, matching the historical tilevm output.
func report(res *core.Result, verbose bool) {
	os.Stdout.WriteString(res.Stdout)
	fmt.Printf("exit code : %d\n", res.ExitCode)
	fmt.Printf("cycles    : %d\n", res.Cycles)
	if !verbose {
		return
	}
	m := res.M
	fmt.Printf("state hash        : %016x\n", res.StateHash)
	fmt.Printf("dispatches        : %d\n", m.BlockDispatches)
	fmt.Printf("host instructions : %d\n", m.HostInsts)
	fmt.Printf("translations      : %d (%d guest insts)\n", m.Translations, m.TransGuestInsts)
	if m.Tier0Installs > 0 || m.Promotions > 0 {
		fmt.Printf("tiered            : %d tier-0 installs, %d tier-1 installs, %d promotions\n",
			m.Tier0Installs, m.Tier1Installs, m.Promotions)
	}
	if m.WarmupCycles > 0 {
		fmt.Printf("warmup            : cycle %d\n", m.WarmupCycles)
	}
	fmt.Printf("demand misses     : %d\n", m.DemandMisses)
	fmt.Printf("spec wasted       : %d\n", m.SpecWasted)
	fmt.Printf("L1 code           : %d lookups, %.3f hit, %d flushes, %d chains\n",
		m.L1CLookups, float64(m.L1CHits)/float64(max(m.L1CLookups, 1)), m.L1CFlushes, m.Chains)
	fmt.Printf("L1.5 code         : %d lookups, %.3f hit\n", m.L15Lookups, m.L15HitRate())
	fmt.Printf("L2 code           : %d accesses (%.2e/cycle), %.3f miss\n",
		m.L2CAccess, m.L2CAccessesPerCycle(), m.L2CMissRate())
	fmt.Printf("data L1           : %d accesses, %.4f miss\n", m.DL1Accesses, m.DL1MissRate())
	fmt.Printf("L2 data banks     : %d requests, %d misses\n", m.L2DRequests, m.L2DMisses)
	fmt.Printf("TLB misses        : %d\n", m.TLBMisses)
	fmt.Printf("syscalls/assists  : %d/%d\n", m.Syscalls, m.Assists)
	fmt.Printf("reconfigurations  : %d (%d lines flushed)\n", m.Reconfigs, m.MorphFlushLines)
	fmt.Printf("SMC invalidations : %d\n", m.SMCInvalidations)
	if m.FaultsInjected > 0 || m.Timeouts > 0 {
		fmt.Printf("faults injected   : %d (%d drops, %d delays, %d corruptions, %d DRAM, %d fails, %d stalls)\n",
			m.FaultsInjected, m.MsgsDropped, m.MsgsDelayed, m.MsgsCorrupted,
			m.DRAMErrors, m.TileFails, m.TileStalls)
		fmt.Printf("recovery          : %d timeouts, %d retries, %d role remaps, %d writebacks lost, %d recovery cycles\n",
			m.Timeouts, m.Retries, m.RoleRemaps, m.WritebacksLost, m.RecoveryCycles)
		fmt.Printf("fault msgs recycled: %d\n", m.FaultMsgsRecycled)
	}
	if m.Checkpoints > 0 || m.Rollbacks > 0 {
		fmt.Printf("checkpoints       : %d\n", m.Checkpoints)
		fmt.Printf("rollbacks         : %d (%d re-executed cycles, %d restore-penalty cycles)\n",
			m.Rollbacks, m.ReexecCycles, m.RollbackCycles)
	}
}

// dumpBlock prints the guest basic block at the given PC and its
// translation to host code. With tier0 the block goes through the
// template tier instead (falling back like the slaves do if some
// instruction has no template), so the two tiers' output can be
// compared side by side.
func dumpBlock(img *guest.Image, at string, optimize, tier0 bool) error {
	pc := img.Entry
	if at != "entry" {
		v, err := strconv.ParseUint(strings.TrimPrefix(at, "0x"), 16, 32)
		if err != nil {
			return fmt.Errorf("bad -dump address %q: %w", at, err)
		}
		pc = uint32(v)
	}
	p := guest.Load(img)
	insts, err := translate.DiscoverBlock(p.Mem, pc)
	if err != nil {
		return err
	}
	fmt.Printf("guest basic block at %#x (%d instructions):\n", pc, len(insts))
	for _, in := range insts {
		fmt.Printf("  %08x: %s\n", in.Addr, in.String())
	}
	tr := translate.New(translate.Options{Optimize: optimize, ConservativeFlags: !optimize})
	res, err := tr.TranslateTier(p.Mem, pc, tier0)
	if err != nil {
		return err
	}
	tierName := "optimizing"
	if res.Tier == translate.TierTemplate {
		tierName = "tier-0 template"
	}
	fmt.Printf("\ntranslated host code (%d instructions, %d bytes, tier=%s, optimize=%v):\n",
		len(res.Code), res.CodeBytes, tierName, optimize)
	fmt.Print(rawisa.Disassemble(res.Code))
	fmt.Printf("\nexit kind %v, target %#x, fallthrough %#x\n",
		res.Kind, res.Target, res.FallTarget)
	return nil
}

func loadGuest(imagePath, wlName string) (*guest.Image, error) {
	switch {
	case imagePath != "" && wlName != "":
		return nil, fmt.Errorf("use either -image or -workload, not both")
	case imagePath != "":
		return guest.LoadAutoFile(imagePath)
	case wlName != "":
		p, ok := workload.ByName(wlName)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (known: %v)", wlName, workload.Names())
		}
		return p.Build(), nil
	default:
		return nil, fmt.Errorf("specify -image or -workload")
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
