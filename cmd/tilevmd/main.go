// Command tilevmd is the long-lived fleet daemon: an HTTP/JSON front
// end over the deterministic fleet engine. Clients submit named
// workloads as jobs into a bounded, priority-classed admission queue;
// a scheduler goroutine packs them into VM-slot batches and runs each
// batch through core.RunFleet. Overload sheds instead of growing
// memory, every failure mode (panic, timeout, deadline, cancel)
// surfaces as a structured terminal job state, and SIGTERM drains
// gracefully: admission closes, in-flight and queued jobs finish, the
// process exits 0.
//
//	tilevmd -addr 127.0.0.1:8642 -grid 8x8 -queue-cap 64
//
// Endpoints:
//
//	POST /api/v1/jobs             submit {"workload":..., "class":..., "timeout_ms":..., "deadline_cycles":...}
//	GET  /api/v1/jobs             list retained jobs
//	GET  /api/v1/jobs/{id}        one job
//	POST /api/v1/jobs/{id}/cancel cancel (queued or running)
//	GET  /metrics                 Prometheus text format
//	GET  /healthz, /readyz        liveness / readiness (readyz flips 503 on drain)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tilevm/internal/service"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "tilevmd:", err)
	os.Exit(1)
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8642", "listen address (host:port; :0 picks a free port)")
		grid         = flag.String("grid", "8x8", "fabric size WxH; each VM slot takes 8 tiles")
		queueCap     = flag.Int("queue-cap", 64, "admission queue capacity; beyond it arrivals shed lower-class jobs or get a structured 429")
		retain       = flag.Int("retain", 1024, "terminal jobs kept queryable before aging out oldest-first")
		lend         = flag.Bool("lend", true, "lend idle translation slaves across VMs within a batch (auto-off under -elastic)")
		planner      = flag.Bool("planner", false, "cost-model placement planner: grow slots on undersubscribed fabrics and split tiles per guest profile")
		elastic      = flag.Bool("elastic", false, "elastic morphing: oversubscribe batches when the queue backs up, with idle slots donating tiles to running VMs")
		simWorkers   = flag.Int("sim-workers", 1, "per-batch simulation event-loop workers (see tilevm -sim-workers)")
		maxCycles    = flag.Uint64("maxcycles", 0, "per-batch virtual-cycle watchdog (0 = default)")
		maxAttempts  = flag.Int("max-attempts", 0, "batches a job may be admitted to before it fails (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "graceful-drain budget after SIGTERM; the queue is abandoned and the batch interrupted when it expires")
		verbose      = flag.Bool("v", false, "print each retained job's final state at drain")
	)
	flag.Parse()

	w, h, err := parseGrid(*grid)
	if err != nil {
		die(err)
	}
	if *queueCap <= 0 {
		die(fmt.Errorf("-queue-cap must be positive"))
	}
	if *retain <= 0 {
		die(fmt.Errorf("-retain must be positive"))
	}
	if *maxAttempts < 0 {
		die(fmt.Errorf("-max-attempts must be non-negative"))
	}
	if *drainTimeout <= 0 {
		die(fmt.Errorf("-drain-timeout must be positive"))
	}
	if *elastic {
		// -lend defaults on, so only an explicitly-set -lend conflicts;
		// otherwise elastic simply takes over the idle-capacity role.
		explicitLend := false
		flag.Visit(func(f *flag.Flag) { explicitLend = explicitLend || f.Name == "lend" })
		if explicitLend && *lend {
			die(fmt.Errorf("-elastic and -lend are mutually exclusive (both move slaves between VMs)"))
		}
		*lend = false
	}

	svc, err := service.New(service.Config{
		Width:          w,
		Height:         h,
		QueueCap:       *queueCap,
		Retain:         *retain,
		MaxJobAttempts: *maxAttempts,
		Lend:           *lend,
		Planner:        *planner,
		Elastic:        *elastic,
		SimWorkers:     *simWorkers,
		MaxCycles:      *maxCycles,
	})
	if err != nil {
		die(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	// The resolved address matters when -addr ends in :0; the smoke
	// harness parses this line to find the port.
	fmt.Printf("tilevmd: listening on %s (%d VM slots, queue cap %d)\n",
		ln.Addr(), svc.Slots(), *queueCap)

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigs:
		fmt.Printf("tilevmd: %v, draining (timeout %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "tilevmd: drain deadline hit, remaining jobs canceled (%v)\n", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		srv.Shutdown(shutCtx)
		if *verbose {
			for _, v := range svc.List() {
				fmt.Printf("tilevmd: job %s %s (%s)\n", v.ID, v.State, v.Error)
			}
		}
		fmt.Println("tilevmd: drained, exiting")
	case err := <-serveErr:
		die(fmt.Errorf("http server: %w", err))
	}
}

// parseGrid parses "WxH" (mirrors cmd/tilevm).
func parseGrid(s string) (w, h int, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -grid %q (want WxH, e.g. 8x8)", s)
	}
	w, err = strconv.Atoi(parts[0])
	if err == nil {
		h, err = strconv.Atoi(parts[1])
	}
	if err != nil || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("bad -grid %q (want WxH with positive dimensions)", s)
	}
	return w, h, nil
}
