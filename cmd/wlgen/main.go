// Command wlgen emits synthetic SpecInt workload images as TVMI files
// for use with cmd/tilevm and cmd/x86run.
//
//	wlgen -list
//	wlgen -workload 176.gcc -o gcc.tvmi
//	wlgen -all -dir ./images
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available workloads")
		name  = flag.String("workload", "", "workload to emit")
		out   = flag.String("o", "", "output file (default <name>.tvmi)")
		all   = flag.Bool("all", false, "emit every workload")
		dir   = flag.String("dir", ".", "output directory for -all")
		asELF = flag.Bool("elf", false, "emit statically linked ELF32 executables instead of TVMI images")
	)
	flag.Parse()

	switch {
	case *list:
		for _, p := range workload.Profiles() {
			img := p.Build()
			fmt.Printf("%-12s  code %6d bytes, data %7d bytes\n",
				p.Name, len(img.Code), segBytes(img))
		}
	case *all:
		for _, p := range workload.Profiles() {
			path := filepath.Join(*dir, strings.ReplaceAll(p.Name, ".", "_")+ext(*asELF))
			if err := save(p.Build(), path, *asELF); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *name != "":
		p, ok := workload.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (known: %v)", *name, workload.Names()))
		}
		path := *out
		if path == "" {
			path = strings.ReplaceAll(p.Name, ".", "_") + ext(*asELF)
		}
		if err := save(p.Build(), path, *asELF); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// ext picks the output extension for the chosen format.
func ext(elf bool) string {
	if elf {
		return ""
	}
	return ".tvmi"
}

// save writes the image in the chosen format.
func save(img *guest.Image, path string, elf bool) error {
	if elf {
		return guest.SaveELF(img, path)
	}
	return guest.SaveImage(img, path)
}

func segBytes(img *guest.Image) int {
	n := 0
	for _, s := range img.Segments {
		n += len(s.Data)
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlgen:", err)
	os.Exit(1)
}
