// Command x86run executes a guest program on the reference x86
// interpreter with the Pentium III baseline timing model — the
// denominator of every slowdown figure.
//
//	x86run -workload 164.gzip
//	x86run -image prog.tvmi
package main

import (
	"flag"
	"fmt"
	"os"

	"tilevm/internal/guest"
	"tilevm/internal/pentium"
	"tilevm/internal/workload"
)

// loadImageAuto sniffs the file format: ELF32 executable or TVMI image.
func loadImageAuto(path string) (*guest.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, err = f.Read(magic[:])
	f.Close()
	if err == nil && string(magic[:]) == "\x7fELF" {
		return guest.LoadELFFile(path)
	}
	return guest.LoadImageFile(path)
}

func main() {
	var (
		imagePath = flag.String("image", "", "TVMI guest image to run")
		wlName    = flag.String("workload", "", "named synthetic workload")
		maxSteps  = flag.Uint64("maxsteps", 0, "instruction budget (0 = default)")
	)
	flag.Parse()

	var img *guest.Image
	var err error
	switch {
	case *imagePath != "":
		img, err = loadImageAuto(*imagePath)
	case *wlName != "":
		p, ok := workload.ByName(*wlName)
		if !ok {
			err = fmt.Errorf("unknown workload %q (known: %v)", *wlName, workload.Names())
		} else {
			img = p.Build()
		}
	default:
		err = fmt.Errorf("specify -image or -workload")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "x86run:", err)
		os.Exit(1)
	}

	res, err := pentium.Run(img, pentium.DefaultParams(), *maxSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "x86run:", err)
		os.Exit(1)
	}
	os.Stdout.WriteString(res.Stdout)
	fmt.Printf("exit code    : %d\n", res.ExitCode)
	fmt.Printf("instructions : %d\n", res.Insts)
	fmt.Printf("P3 cycles    : %d (CPI %.2f)\n", res.Cycles, float64(res.Cycles)/float64(res.Insts))
	fmt.Printf("memory       : %d accesses, %d L1 misses, %d L2 misses\n",
		res.MemAccs, res.L1Misses, res.L2Misses)
}
