// Codecache: the L1.5 code cache trade-off (paper Figure 4). A
// benchmark whose translated working set dwarfs the 32KB L1 code cache
// (255.vortex) is run with zero, one, and two L1.5 bank tiles —
// parallel resources "that were not otherwise being productively used
// reallocated to act as caches" — against one that fits (164.gzip).
package main

import (
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/pentium"
	"tilevm/internal/workload"
)

func main() {
	for _, wl := range []string{"164.gzip", "255.vortex"} {
		p, ok := workload.ByName(wl)
		if !ok {
			log.Fatalf("unknown workload %s", wl)
		}
		img := p.Build()
		base, err := pentium.Run(img, pentium.DefaultParams(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (x86 code %d KB)\n", wl, len(img.Code)/1024)
		for banks := 0; banks <= 2; banks++ {
			cfg := core.DefaultConfig()
			cfg.L15Banks = banks
			res, err := core.Run(img, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %d L1.5 banks (%3d KB): %9d cycles, slowdown %5.1fx, L1.5 hit %.2f\n",
				banks, banks*64, res.Cycles,
				float64(res.Cycles)/float64(base.Cycles), res.M.L15HitRate())
		}
		fmt.Println()
	}
}
