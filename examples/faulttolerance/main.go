// Faulttolerance: morphing around failed tiles (beyond the paper).
// Runs a workload four ways: fault-free; with a bank and a slave tile
// fail-stopping mid-run while the manager excises them and continues
// at reduced width; under probabilistic message drop/corruption that
// the retry protocol absorbs; and with recovery disabled, where the
// same bank death deadlocks — terminated by the simulator with a
// per-tile diagnostic instead of hanging. Every surviving run is
// checked against the fault-free architectural result.
package main

import (
	"errors"
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/sim"
	"tilevm/internal/workload"
)

func main() {
	p, ok := workload.ByName("181.mcf")
	if !ok {
		log.Fatal("unknown workload 181.mcf")
	}
	img := p.Build()

	clean, err := core.Run(img, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free        %9d cycles  exit %d\n", clean.Cycles, clean.ExitCode)

	// A translation slave dies, then an L2 data bank. The manager
	// notices the missed heartbeats, re-queues the slave's in-flight
	// translation, and re-interleaves the surviving banks.
	cfg := core.DefaultConfig()
	cfg.Fault = &fault.Plan{Fails: []fault.TileFail{
		{Tile: 8, Cycle: 100_000},
		{Tile: 7, Cycle: 220_000},
	}}
	res, err := core.Run(img, cfg)
	if err != nil {
		log.Fatal(err)
	}
	check(clean, res)
	fmt.Printf("slave+bank killed %9d cycles  (+%.0f%%)  remaps %d  retries %d  recovery %d cycles\n",
		res.Cycles, 100*(float64(res.Cycles)/float64(clean.Cycles)-1),
		res.M.RoleRemaps, res.M.Retries, res.M.RecoveryCycles)

	// A lossy network: 1% of messages dropped, 1% corrupted. Watchdog
	// timeouts and sequence-numbered retries make each loss cost time
	// instead of correctness.
	cfg = core.DefaultConfig()
	cfg.Fault = &fault.Plan{Seed: 42, DropProb: 0.01, CorruptProb: 0.01}
	res, err = core.Run(img, cfg)
	if err != nil {
		log.Fatal(err)
	}
	check(clean, res)
	fmt.Printf("lossy network     %9d cycles  (+%.0f%%)  dropped %d  corrupted %d  retries %d\n",
		res.Cycles, 100*(float64(res.Cycles)/float64(clean.Cycles)-1),
		res.M.MsgsDropped, res.M.MsgsCorrupted, res.M.Retries)

	// The same bank death with recovery disabled: the machine wedges,
	// and the simulator diagnoses the deadlock instead of hanging.
	cfg = core.DefaultConfig()
	cfg.Speculative = false
	cfg.FaultRecovery = false
	cfg.Fault = &fault.Plan{Fails: []fault.TileFail{{Tile: 7, Cycle: 150_000}}}
	_, err = core.Run(img, cfg)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		log.Fatalf("expected a deadlock without recovery, got %v", err)
	}
	fmt.Printf("recovery disabled: deadlock at cycle %d, %d tiles blocked (first: %s on %s)\n",
		dl.Now, len(dl.Blocked), dl.Blocked[0].Proc, dl.Blocked[0].Port)
	fmt.Println("\nthe same homogeneity that lets tiles swap roles lets the machine morph around dead ones.")
}

// check verifies a faulted run against the fault-free architectural
// result.
func check(want, got *core.Result) {
	if got.ExitCode != want.ExitCode || got.Stdout != want.Stdout {
		log.Fatalf("faulted run diverged: exit %d vs %d", got.ExitCode, want.ExitCode)
	}
}
