// Multivm: the paper's §5 vision — "a large tiled fabric running many
// virtual x86's all at the same time", with reconfiguration applied
// *between* virtual processors. Two complete virtual machines share
// the 4×4 fabric (8 tiles each); with lending enabled, a manager whose
// translation queues are drained hands idle slave tiles to its peer,
// and when one guest exits its tiles keep serving the survivor.
package main

import (
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/workload"
)

func main() {
	pa, _ := workload.ByName("164.gzip") // small, finishes early
	pb, _ := workload.ByName("176.gcc")  // translation-bound
	imgA, imgB := pa.Build(), pb.Build()

	cfg := core.DefaultConfig()

	fmt.Println("two virtual x86 processors on one 4x4 Raw fabric")
	fmt.Printf("  VM A: %s, VM B: %s\n\n", pa.Name, pb.Name)

	for _, lend := range []bool{false, true} {
		res, err := core.RunPair(imgA, imgB, cfg, lend)
		if err != nil {
			log.Fatal(err)
		}
		mode := "isolated halves     "
		if lend {
			mode = "with slave lending  "
		}
		fmt.Printf("%s  A: %9d cycles   B: %9d cycles   makespan: %9d\n",
			mode, res.A.Cycles, res.B.Cycles, res.Makespan)
		fmt.Printf("                      B demand misses: %d, B translations: %d\n",
			res.B.M.DemandMisses, res.B.M.Translations)
	}
	fmt.Println("\nlending lets the finished VM's translation tiles keep working")
	fmt.Println("for the busy one — the inter-VM morphing of the paper's §5.")
}
