// Multivm: the paper's §5 vision — "a large tiled fabric running many
// virtual x86's all at the same time", with reconfiguration applied
// *between* virtual processors. Two complete virtual machines share
// the 4×4 fabric (8 tiles each); with lending enabled, a manager whose
// translation queues are drained hands idle slave tiles to its peer,
// and when one guest exits its tiles keep serving the survivor.
//
// The second half scales the same idea up with the fleet scheduler:
// six guests on an 8×8 fabric carved into eight VM slots, admitted as
// slots free up, with fleet-wide lending steering idle slaves to the
// most backed-up VM.
package main

import (
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

func main() {
	pa, _ := workload.ByName("164.gzip") // small, finishes early
	pb, _ := workload.ByName("176.gcc")  // translation-bound
	imgA, imgB := pa.Build(), pb.Build()

	cfg := core.DefaultConfig()

	fmt.Println("two virtual x86 processors on one 4x4 Raw fabric")
	fmt.Printf("  VM A: %s, VM B: %s\n\n", pa.Name, pb.Name)

	for _, lend := range []bool{false, true} {
		res, err := core.RunPair(imgA, imgB, cfg, lend)
		if err != nil {
			log.Fatal(err)
		}
		mode := "isolated halves     "
		if lend {
			mode = "with slave lending  "
		}
		fmt.Printf("%s  A: %9d cycles   B: %9d cycles   makespan: %9d\n",
			mode, res.A.Cycles, res.B.Cycles, res.Makespan)
		fmt.Printf("                      B demand misses: %d, B translations: %d\n",
			res.B.M.DemandMisses, res.B.M.Translations)
	}
	fmt.Println("\nlending lets the finished VM's translation tiles keep working")
	fmt.Println("for the busy one — the inter-VM morphing of the paper's §5.")

	// Fleet mode: the same protocol generalized to N guests on an
	// arbitrary fabric. Two slots are deliberately left uncarved
	// (MaxSlots) so two guests queue and are admitted mid-run when a
	// slot's previous guest exits.
	names := []string{"164.gzip", "181.mcf", "176.gcc", "164.gzip", "181.mcf", "164.gzip"}
	imgs := make([]*guest.Image, len(names))
	for i, n := range names {
		p, _ := workload.ByName(n)
		imgs[i] = p.Build()
	}
	fcfg := core.DefaultConfig()
	fcfg.Params.Width, fcfg.Params.Height = 8, 8
	fmt.Printf("\nfleet: %d guests on an 8x8 fabric, capped at 4 VM slots\n", len(names))
	res, err := core.RunFleet(imgs, fcfg, core.FleetConfig{Lend: true, MaxSlots: 4})
	if err != nil {
		log.Fatal(err)
	}
	for gi, g := range res.Guests {
		queued := ""
		if g.Admitted > 0 {
			queued = "  (queued, admitted mid-run)"
		}
		fmt.Printf("  guest %d %-10s %-9s slot %d  admitted %9d  finished %9d%s\n",
			gi, names[gi], g.Status, g.Slot, g.Admitted, g.Finished, queued)
	}
	fmt.Printf("  makespan %d cycles, fabric utilization %.1f%%\n",
		res.Makespan, 100*res.Utilization)
	fmt.Println("\neach guest's final state hash is identical to its solo run —")
	fmt.Println("scheduling, queueing, and lending never leak into a guest.")

	// Fleet fault tolerance: a fail-stop fault on a slot's exec tile
	// quarantines the whole slot; its guest re-enters the admission
	// queue after a deterministic backoff and reruns on a survivor.
	// GuestResult reports the outcome explicitly — Status and Attempts —
	// instead of a nil Result the caller must interpret.
	fmt.Println("\nfleet fault tolerance: killing slot 0's exec tile mid-run")
	layout, err := core.FleetSlotLayout(cfg.Params) // default 4x4, two slots
	if err != nil {
		log.Fatal(err)
	}
	fcfg = core.DefaultConfig()
	fcfg.Fault = &fault.Plan{Seed: 1, Fails: []fault.TileFail{
		{Tile: layout[0].Exec, Cycle: 500_000},
	}}
	res, err = core.RunFleet(imgs[:3], fcfg, core.FleetConfig{Lend: true})
	if err != nil {
		log.Fatal(err)
	}
	for gi, g := range res.Guests {
		fmt.Printf("  guest %d %-10s %-9s attempts %d", gi, names[gi], g.Status, g.Attempts)
		if g.Err != nil {
			fmt.Printf("  (%v)", g.Err)
		}
		fmt.Println()
	}
	fmt.Printf("  %d slot quarantined, %d guest retried, goodput %.3f insts/cycle\n",
		res.Fleet.SlotsQuarantined, res.Fleet.GuestsRetried, res.Fleet.Goodput(res.Makespan))
	fmt.Println("\nthe retried guest converges to the same final state as its solo")
	fmt.Println("run — recovery changes when work happens, never what it computes.")
}
