// Pipeline: spatial pipeline parallelism on the raw tile fabric (paper
// §2.2). The tiled processor is treated as an ASIC-like substrate: a
// four-stage virtual pipeline (fetch → decode → execute → retire) is
// laid out across four neighboring tiles and fed a stream of work
// units. Against a single tile performing all four stages serially,
// the spatial pipeline's throughput approaches one unit per
// slowest-stage occupancy — the same principle the translation system
// uses for its memory system and code cache hierarchy, and the seed of
// the paper's §5 vision of a full virtual out-of-order superscalar
// spread across tiles.
package main

import (
	"fmt"
	"log"

	"tilevm/internal/raw"
)

const (
	units     = 2000 // work units pushed through
	fetchOcc  = 4    // per-stage occupancies in cycles
	decodeOcc = 6
	execOcc   = 8
	retireOcc = 3
)

// serial runs all four stages on one tile.
func serial() uint64 {
	m := raw.NewMachine(raw.DefaultParams())
	var done uint64
	m.SpawnTile(5, "serial", func(c *raw.TileCtx) {
		for i := 0; i < units; i++ {
			c.Tick(fetchOcc + decodeOcc + execOcc + retireOcc)
		}
		c.Sync()
		done = c.Now()
		c.Stop()
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return done
}

// spatial lays the stages out on tiles 4→5→6→7 (one row of the grid),
// passing each unit along the dynamic network.
func spatial() uint64 {
	m := raw.NewMachine(raw.DefaultParams())
	var done uint64

	stage := func(tile, next int, occ uint64, last bool) {
		m.SpawnTile(tile, "stage", func(c *raw.TileCtx) {
			for n := 0; n < units; n++ {
				msg := c.Recv()
				c.Tick(occ)
				if last {
					if n == units-1 {
						c.Sync()
						done = c.Now()
						c.Stop()
					}
					continue
				}
				c.Send(next, msg.Payload, 1)
			}
		})
	}
	// Fetch generates the stream.
	m.SpawnTile(4, "fetch", func(c *raw.TileCtx) {
		for i := 0; i < units; i++ {
			c.Tick(fetchOcc)
			c.Send(5, i, 1)
		}
	})
	stage(5, 6, decodeOcc, false) // decode
	stage(6, 7, execOcc, false)   // execute
	stage(7, 0, retireOcc, true)  // retire
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return done
}

func main() {
	s := serial()
	p := spatial()
	fmt.Printf("work units                   : %d\n", units)
	fmt.Printf("serial, one tile             : %d cycles (%.1f cycles/unit)\n",
		s, float64(s)/units)
	fmt.Printf("spatial pipeline, four tiles : %d cycles (%.1f cycles/unit)\n",
		p, float64(p)/units)
	fmt.Printf("speedup                      : %.2fx (ideal for these stages: %.2fx)\n",
		float64(s)/float64(p),
		float64(fetchOcc+decodeOcc+execOcc+retireOcc)/float64(execOcc))
	fmt.Println("\nthroughput is set by the slowest stage plus wire delay —")
	fmt.Println("the same spatial pipelining the DBT uses for MMU→bank memory")
	fmt.Println("accesses and the L1→L1.5→L2 code cache path.")
}
