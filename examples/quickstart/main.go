// Quickstart: assemble a small x86 guest program by hand, run it on
// the simulated Raw machine through the parallel dynamic binary
// translation engine, and compare against the Pentium III baseline
// model — the whole pipeline in one file.
package main

import (
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/pentium"
	"tilevm/internal/x86"
)

// buildGuest assembles an x86 program that prints a message and
// computes 10! by recursion, returning its low byte as the exit code.
func buildGuest() *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	msgAddr := uint32(guest.DefaultHeapBase)
	msg := "hello from translated x86\n"

	// write(1, msg, len(msg))
	a.MovRegImm(x86.EAX, 4)
	a.MovRegImm(x86.EBX, 1)
	a.MovRegImm(x86.ECX, msgAddr)
	a.MovRegImm(x86.EDX, uint32(len(msg)))
	a.Int(0x80)

	// eax = fact(10)
	a.PushImm(10)
	a.Call("fact")
	a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
	a.MovRegReg(x86.EBX, x86.EAX)
	a.ALU(x86.AND, x86.RegOp(x86.EBX, 4), x86.ImmOp(0xff, 4))

	// exit(ebx)
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)

	a.Label("fact")
	a.Push(x86.EBP)
	a.MovRegReg(x86.EBP, x86.ESP)
	a.MovRegMem(x86.EAX, x86.Mem(x86.EBP, 8))
	a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(1, 4))
	a.Jcc(x86.CondLE, "base")
	a.DecReg(x86.EAX)
	a.Push(x86.EAX)
	a.Call("fact")
	a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
	a.IMulRegRM(x86.EAX, x86.Mem(x86.EBP, 8))
	a.Jmp("done")
	a.Label("base")
	a.MovRegImm(x86.EAX, 1)
	a.Label("done")
	a.Pop(x86.EBP)
	a.Ret()

	return &guest.Image{
		Name:     "quickstart",
		Entry:    guest.DefaultCodeBase,
		CodeBase: guest.DefaultCodeBase,
		Code:     a.Bytes(),
		Segments: []guest.Segment{{Addr: msgAddr, Data: []byte(msg)}},
	}
}

func main() {
	img := buildGuest()

	// The virtual architecture: 6 speculative translation tiles, a
	// 2-bank L1.5 code cache, 4 L2 data cache banks (the paper's
	// headline configuration).
	res, err := core.Run(img, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Stdout)
	fmt.Printf("guest exit code: %d (10! mod 256)\n", res.ExitCode)
	fmt.Printf("simulated Raw cycles: %d\n", res.Cycles)
	fmt.Printf("blocks translated: %d, chained branches: %d\n",
		res.M.Translations, res.M.Chains)

	base, err := pentium.Run(img, pentium.DefaultParams(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pentium III model cycles: %d\n", base.Cycles)
	fmt.Printf("clock-for-clock slowdown: %.1fx\n",
		float64(res.Cycles)/float64(base.Cycles))
}
