// Reconfig: static and dynamic virtual architecture reconfiguration
// (paper §2.3, §4.4). Runs a memory-bound workload (181.mcf) and a
// translation-bound one (176.gcc) under both static tile allocations —
// 1 memory bank / 9 translators vs 4 banks / 6 translators — and under
// the introspective morphing controller, showing that different
// programs want different silicon splits and that morphing tracks the
// right one at runtime.
package main

import (
	"fmt"
	"log"

	"tilevm/internal/core"
	"tilevm/internal/pentium"
	"tilevm/internal/workload"
)

func main() {
	configs := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"1 mem / 9 trans ", func(c *core.Config) { c.Slaves = 9; c.MemBanks = 1 }},
		{"4 mem / 6 trans ", func(c *core.Config) { c.Slaves = 6; c.MemBanks = 4 }},
		{"morph (thresh 5)", func(c *core.Config) { c.Morph = true; c.MorphThreshold = 5 }},
	}

	for _, wl := range []string{"181.mcf", "176.gcc"} {
		p, ok := workload.ByName(wl)
		if !ok {
			log.Fatalf("unknown workload %s", wl)
		}
		img := p.Build()
		base, err := pentium.Run(img, pentium.DefaultParams(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d guest instructions)\n", wl, base.Insts)
		for _, c := range configs {
			cfg := core.DefaultConfig()
			c.mut(&cfg)
			res, err := core.Run(img, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s  %9d cycles  slowdown %5.1fx  reconfigs %d\n",
				c.name, res.Cycles,
				float64(res.Cycles)/float64(base.Cycles), res.M.Reconfigs)
		}
		fmt.Println()
	}
	fmt.Println("mcf wants cache tiles; gcc wants translators; morphing decides at runtime.")
}
