// Superscalar: the paper's §5 proposal — "there is potential to
// construct an out-of-order superscalar as a virtual architecture
// across an array of tiled processors. Sets of tiles can be dedicated
// to each of the functions that are typically employed in out-of-order
// superscalars such as register renaming, multiple functional units,
// instruction scheduling, and a reorder buffer."
//
// This example builds that virtual microarchitecture on the raw
// fabric: a fetch/rename tile streams a synthetic instruction window
// with real data dependences to a reservation-station tile, which
// issues ready instructions out of order to N execution-unit tiles; a
// reorder-buffer tile retires in program order. Throughput (IPC) is
// measured against the number of virtual functional units — the
// "spatial superscalar" exploiting tile parallelism for a sequential
// stream.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tilevm/internal/raw"
)

const (
	numInsts   = 4000
	execLat    = 24 // functional-unit latency per instruction
	issueOcc   = 2  // reservation-station handling per instruction
	renameOcc  = 1
	retireOcc  = 1
	windowSize = 16
)

// uop is one synthetic instruction: it depends on up to two earlier
// instructions (by sequence number).
type uop struct {
	seq  int
	dep1 int // -1 if none
	dep2 int
}

// genStream builds a dependence stream with the given average
// dependence distance; short distances serialize, long ones expose ILP.
func genStream(r *rand.Rand, depDist int) []uop {
	out := make([]uop, numInsts)
	for i := range out {
		d1, d2 := -1, -1
		if i > 0 {
			d1 = i - 1 - r.Intn(min(i, depDist))
		}
		if i > 1 && r.Intn(2) == 0 {
			d2 = i - 1 - r.Intn(min(i, depDist))
		}
		out[i] = uop{seq: i, dep1: d1, dep2: d2}
	}
	return out
}

type execDone struct {
	seq  int
	unit int
}

// run lays out the virtual superscalar: tile 4 = fetch/rename,
// tile 5 = reservation stations, tiles 6.. = execution units,
// tile 1 = reorder buffer.
func run(units int, stream []uop) float64 {
	m := raw.NewMachine(raw.DefaultParams())
	rsTile, robTile := 5, 1
	execTiles := make([]int, units)
	for i := range execTiles {
		execTiles[i] = 6 + i
	}

	// Fetch/rename: streams the window into the reservation station.
	m.SpawnTile(4, "fetch", func(c *raw.TileCtx) {
		for i := range stream {
			c.Tick(renameOcc)
			c.Send(rsTile, stream[i], 2)
		}
	})

	// Reservation station: wakeup/select. Instructions wait for their
	// dependences to complete, then issue to a free unit.
	m.SpawnTile(rsTile, "rs", func(c *raw.TileCtx) {
		type slot struct {
			u      uop
			issued bool
		}
		var window []slot
		done := map[int]bool{}
		freeUnits := append([]int(nil), execTiles...)
		received := 0
		completed := 0
		for completed < numInsts {
			// Issue every ready instruction while units are free.
			progress := true
			for progress {
				progress = false
				for i := range window {
					s := &window[i]
					if s.issued || len(freeUnits) == 0 {
						continue
					}
					if (s.u.dep1 >= 0 && !done[s.u.dep1]) || (s.u.dep2 >= 0 && !done[s.u.dep2]) {
						continue
					}
					unit := freeUnits[0]
					freeUnits = freeUnits[1:]
					c.Tick(issueOcc)
					c.Send(unit, s.u, 2)
					s.issued = true
					progress = true
				}
			}
			msg := c.Recv()
			switch v := msg.Payload.(type) {
			case uop:
				if received < len(stream) {
					received++
				}
				window = append(window, slot{u: v})
			case execDone:
				done[v.seq] = true
				completed++
				freeUnits = append(freeUnits, v.unit)
				c.Send(robTile, v.seq, 1)
				// Compact retired entries off the window head.
				for len(window) > 0 && window[0].issued && done[window[0].u.seq] {
					window = window[1:]
				}
			}
		}
	})

	// Execution units: fixed-latency functional units.
	for _, tile := range execTiles {
		tile := tile
		m.SpawnTile(tile, "fu", func(c *raw.TileCtx) {
			for {
				msg := c.Recv()
				u := msg.Payload.(uop)
				c.Tick(execLat)
				c.Send(rsTile, execDone{seq: u.seq, unit: tile}, 1)
			}
		})
	}

	// Reorder buffer: retires in program order and measures IPC.
	var cycles uint64
	m.SpawnTile(robTile, "rob", func(c *raw.TileCtx) {
		pending := map[int]bool{}
		next := 0
		for next < numInsts {
			msg := c.Recv()
			pending[msg.Payload.(int)] = true
			for pending[next] {
				c.Tick(retireOcc)
				delete(pending, next)
				next++
			}
		}
		c.Sync()
		cycles = c.Now()
		c.Stop()
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return float64(numInsts) / float64(cycles)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	fmt.Println("a virtual out-of-order superscalar spread across raw tiles (§5)")
	fmt.Printf("%d instructions, functional-unit latency %d cycles\n\n", numInsts, execLat)
	for _, depDist := range []int{2, 8, 32} {
		stream := genStream(rand.New(rand.NewSource(1)), depDist)
		fmt.Printf("dependence distance ~%d:\n", depDist)
		base := 0.0
		for _, units := range []int{1, 2, 4} {
			ipc := run(units, stream)
			if units == 1 {
				base = ipc
			}
			fmt.Printf("  %d execution-unit tiles: IPC %.3f (%.2fx)\n", units, ipc, ipc/base)
		}
	}
	fmt.Println("\nwide dependence distance + more virtual functional units = ILP")
	fmt.Println("extracted spatially, the way §5 sketches scaling past one tile.")
}
