// Tracing: run a workload with the virtual-time tracer attached, write
// a Chrome trace_event timeline plus an interval-sampled CSV, and then
// read a few things back out of the trace programmatically — per-tile
// activity, translation spans, and the sampler's hit-rate windows.
//
// The JSON written here loads directly in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing; docs/observability.md is the field guide to what
// you will see there.
package main

import (
	"fmt"
	"log"
	"os"

	"tilevm/internal/core"
	"tilevm/internal/trace"
	"tilevm/internal/workload"
)

func main() {
	p, ok := workload.ByName("164.gzip")
	if !ok {
		log.Fatal("workload 164.gzip not registered")
	}
	img := p.Build()

	// Attach a tracer to an otherwise-default run. core.NewTracer wires
	// the engine's sampler schema (hit-rate ratios, translation-queue
	// gauge, per-tile occupancy); the argument is the sampling window in
	// virtual cycles — 0 would record the event timeline only.
	trc := core.NewTracer(10_000)
	cfg := core.DefaultConfig()
	cfg.Tracer = trc

	res, err := core.Run(img, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d cycles, %d events traced, %d sample windows\n",
		res.Cycles, trc.Len(), trc.Windows())

	// 1. The Chrome trace. Every event carries a virtual-cycle
	// timestamp and the tile it happened on (pid = tile id), so the
	// viewer shows one row per tile of the 4x4 grid.
	f, err := os.Create("tracing.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := trc.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote tracing.json — load it at https://ui.perfetto.dev")

	// 2. The interval CSV: one row per 10k-cycle window with event
	// counts, derived hit rates, queue-depth maxima, and per-tile
	// occupancy percentages.
	cf, err := os.Create("tracing.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := trc.WriteCSV(cf); err != nil {
		log.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote tracing.csv — graph any column against window_start")

	// 3. The same data is available in memory. Count translation spans
	// per tile: each one ran on a slave tile of the virtual
	// architecture, so this is the translation load balance.
	perTile := map[int32]int{}
	var translated uint64
	for _, ev := range trc.Events() {
		if ev.Name == "translate" && ev.Ph == 'X' {
			perTile[ev.PID]++
			translated++
		}
	}
	fmt.Printf("\n%d translation spans by slave tile:\n", translated)
	for tile := int32(0); tile < 16; tile++ {
		if n := perTile[tile]; n > 0 {
			fmt.Printf("  tile %2d: %s\n", tile, bar(n))
		}
	}

	// 4. Sampler totals are exact: window sums equal the end-of-run
	// metrics, so the CSV can stand in for the aggregate counters.
	fmt.Printf("\nsampler cross-check: %d dispatches sampled, %d in metrics\n",
		sumWindows(trc), res.M.BlockDispatches)
}

// bar renders a small ASCII histogram bar.
func bar(n int) string {
	s := ""
	for i := 0; i < n && i < 60; i++ {
		s += "#"
	}
	return fmt.Sprintf("%-60s %d", s, n)
}

// sumWindows totals the "dispatches" count series across all windows
// via the exported per-series totals.
func sumWindows(t *trace.Tracer) uint64 {
	return t.CountTotal(0) // series 0 is dispatches in core's schema
}
