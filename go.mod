module tilevm

go 1.22
