// Package bench regenerates every table and figure of the paper's
// evaluation (§4): it runs the synthetic SpecInt workloads through the
// parallel translator under each virtual-architecture configuration and
// through the Pentium III baseline model, and reports slowdown series
// in the paper's format. Results are cached within a Suite so figures
// sharing configurations do not re-run.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/pentium"
	"tilevm/internal/workload"
)

// Suite runs and caches experiments.
type Suite struct {
	profiles []workload.Profile
	images   map[string]*guest.Image
	base     map[string]*pentium.Result
	runs     map[string]*core.Result
	// Quick subsamples the benchmark list (for smoke tests).
	Quick bool
	// Workers is the worker-pool width for RunParallel prefetches;
	// values <= 1 keep every run on the serial path.
	Workers int
	// SimWorkers shards individual fleet simulations across host cores
	// (core.Config.SimWorkers). Orthogonal to Workers: Workers runs
	// whole simulations concurrently, SimWorkers parallelizes inside
	// one fleet run. Results are bit-identical at any value.
	SimWorkers int
	// Progress, if set, receives one line per fresh run.
	Progress func(string)
}

// NewSuite builds a suite over all 11 profiles.
func NewSuite() *Suite {
	return &Suite{
		profiles: workload.Profiles(),
		images:   map[string]*guest.Image{},
		base:     map[string]*pentium.Result{},
		runs:     map[string]*core.Result{},
	}
}

// Benchmarks returns the benchmark names the suite runs over.
func (s *Suite) Benchmarks() []string {
	names := workload.Names()
	if s.Quick {
		return []string{"164.gzip", "176.gcc", "181.mcf"}
	}
	return names
}

func (s *Suite) image(name string) *guest.Image {
	img, ok := s.images[name]
	if !ok {
		p, found := workload.ByName(name)
		if !found {
			panic("bench: unknown benchmark " + name)
		}
		img = p.Build()
		s.images[name] = img
	}
	return img
}

// Baseline returns the Pentium III model result for a benchmark.
func (s *Suite) Baseline(name string) (*pentium.Result, error) {
	if r, ok := s.base[name]; ok {
		return r, nil
	}
	r, err := pentium.Run(s.image(name), pentium.DefaultParams(), 0)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", name, err)
	}
	s.base[name] = r
	return r, nil
}

// Run executes a benchmark under a configuration (cached by id).
func (s *Suite) Run(name, cfgID string, cfg core.Config) (*core.Result, error) {
	key := name + "|" + cfgID
	if r, ok := s.runs[key]; ok {
		return r, nil
	}
	r, err := core.Run(s.image(name), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", name, cfgID, err)
	}
	// Cross-check functional correctness against the baseline run.
	b, err := s.Baseline(name)
	if err != nil {
		return nil, err
	}
	if r.ExitCode != b.ExitCode || r.Stdout != b.Stdout {
		return nil, fmt.Errorf("%s under %s: translator output diverged (exit %d vs %d)",
			name, cfgID, r.ExitCode, b.ExitCode)
	}
	s.runs[key] = r
	if s.Progress != nil {
		s.Progress(fmt.Sprintf("%-12s %-22s %12d cycles", name, cfgID, r.Cycles))
	}
	return r, nil
}

// Slowdown returns CyclesOnTranslator / CyclesOnPentiumIII.
func (s *Suite) Slowdown(name, cfgID string, cfg core.Config) (float64, error) {
	r, err := s.Run(name, cfgID, cfg)
	if err != nil {
		return 0, err
	}
	b, err := s.Baseline(name)
	if err != nil {
		return 0, err
	}
	return float64(r.Cycles) / float64(b.Cycles), nil
}

// Series is one labeled line/bar group of a figure.
type Series struct {
	Label  string
	Values []float64 // aligned with Figure.Benchmarks
}

// Figure is a regenerated table/figure.
type Figure struct {
	Name       string
	Title      string
	Metric     string
	Benchmarks []string
	Series     []Series
	Notes      string
}

// String renders the figure as an aligned text table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "metric: %s\n", f.Metric)
	width := 12
	for _, s := range f.Series {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%12s", shortName(name))
	}
	fmt.Fprintln(&b)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s", width+2, s.Label)
		for _, v := range s.Values {
			switch {
			case v == 0:
				fmt.Fprintf(&b, "%12s", "-")
			case v < 0.01:
				fmt.Fprintf(&b, "%12.2e", v)
			default:
				fmt.Fprintf(&b, "%12.2f", v)
			}
		}
		fmt.Fprintln(&b)
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

func shortName(full string) string {
	if i := strings.IndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// sweep runs a set of configurations over all benchmarks and collects
// one value per (config, benchmark).
func (s *Suite) sweep(configs []namedConfig, metric func(*core.Result, *pentium.Result) float64) ([]Series, error) {
	benches := s.Benchmarks()
	jobs := make([]RunJob, 0, len(configs)*len(benches))
	for _, nc := range configs {
		for _, bench := range benches {
			jobs = append(jobs, RunJob{Bench: bench, CfgID: nc.label, Cfg: nc.cfg})
		}
	}
	if err := s.RunParallel(jobs); err != nil {
		return nil, err
	}
	out := make([]Series, len(configs))
	for ci, nc := range configs {
		out[ci].Label = nc.label
		out[ci].Values = make([]float64, len(benches))
		for bi, bench := range benches {
			r, err := s.Run(bench, nc.label, nc.cfg)
			if err != nil {
				return nil, err
			}
			b, err := s.Baseline(bench)
			if err != nil {
				return nil, err
			}
			out[ci].Values[bi] = metric(r, b)
		}
	}
	return out, nil
}

type namedConfig struct {
	label string
	cfg   core.Config
}

func slowdownMetric(r *core.Result, b *pentium.Result) float64 {
	return float64(r.Cycles) / float64(b.Cycles)
}

// sortedKeys is a test helper exposing cached run keys.
func (s *Suite) sortedKeys() []string {
	keys := make([]string, 0, len(s.runs))
	for k := range s.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
