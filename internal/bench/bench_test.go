package bench

import (
	"testing"

	"tilevm/internal/core"
)

func TestHeadlineQuick(t *testing.T) {
	s := NewSuite()
	s.Quick = true
	out, err := s.Headline()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(out)
}

func TestFigure11Intrinsics(t *testing.T) {
	s := NewSuite()
	tab, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	rows := map[string]IntrinsicsRow{}
	for _, r := range tab.Rows {
		rows[r.Name] = r
	}
	l1 := rows["L1 cache hit"]
	if l1.MeasuredLat < 4 || l1.MeasuredLat > 10 {
		t.Errorf("L1 hit latency %f out of band (paper: 6)", l1.MeasuredLat)
	}
	l2 := rows["L2 cache hit"]
	if l2.MeasuredLat < 50 || l2.MeasuredLat > 130 {
		t.Errorf("L2 hit latency %f out of band (paper: 87)", l2.MeasuredLat)
	}
	miss := rows["L2 cache miss"]
	if miss.MeasuredLat < 110 || miss.MeasuredLat > 210 {
		t.Errorf("L2 miss latency %f out of band (paper: 151)", miss.MeasuredLat)
	}
	if !(l1.MeasuredLat < l2.MeasuredLat && l2.MeasuredLat < miss.MeasuredLat) {
		t.Error("latency ordering violated")
	}
}

func TestLossAnalysis(t *testing.T) {
	s := NewSuite()
	out, err := s.LossAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
}

// TestCalibrationSlowdowns logs all per-benchmark slowdowns under the
// default configuration (the calibration worksheet; assertions are
// deliberately loose — EXPERIMENTS.md records the detailed bands).
func TestCalibrationSlowdowns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	s := NewSuite()
	cfg := core.DefaultConfig()
	lo, hi := 1e9, 0.0
	for _, bench := range s.Benchmarks() {
		sd, err := s.Slowdown(bench, "default", cfg)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		b, _ := s.Baseline(bench)
		r, _ := s.Run(bench, "default", cfg)
		t.Logf("%-12s slowdown %6.1fx  (raw %10d cy, p3 %9d cy, %7d guest insts, trans %5d, l2c-acc/cyc %.2e)",
			bench, sd, r.Cycles, b.Cycles, b.Insts, r.M.Translations, r.M.L2CAccessesPerCycle())
		if sd < lo {
			lo = sd
		}
		if sd > hi {
			hi = sd
		}
	}
	t.Logf("band: %.1fx - %.1fx (paper: ~7x-110x)", lo, hi)
	if lo < 3 || lo > 25 {
		t.Errorf("low end %f out of plausible band", lo)
	}
	if hi < 40 || hi > 250 {
		t.Errorf("high end %f out of plausible band", hi)
	}
}
