package bench

import (
	"fmt"

	"tilevm/internal/core"
	"tilevm/internal/fault"
)

// FaultSweep measures graceful degradation under fail-stop tile faults
// with the default in-place excision recovery. See FaultSweepMode.
func (s *Suite) FaultSweep() (*Figure, error) {
	return s.FaultSweepMode(core.RecoverExcise)
}

// FaultSweepMode measures graceful degradation under fail-stop tile
// faults (beyond the paper): each configuration kills a growing prefix
// of worker tiles mid-run and the machine recovers per mode — excision
// morphs around the failure in place (a dead bank's dirty lines are
// lost writebacks), rollback restores the last whole-machine checkpoint
// and re-executes on the surviving topology whenever excision would
// lose writebacks. Values are cycles relative to the fault-free run of
// the same benchmark, so 1.0 means unharmed and larger means the
// recovered machine ran slower. Suite.Run's cross-check against the
// Pentium III baseline doubles as the correctness witness; in rollback
// mode the sweep additionally verifies the recovered run is *lossless*:
// final guest state bit-identical to the fault-free run (StateHash) and
// zero writebacks lost.
func (s *Suite) FaultSweepMode(mode core.RecoveryMode) (*Figure, error) {
	// The schedule kills L2 data banks: each death monotonically shrinks
	// cache capacity and adds recovery cost, so slowdown grows with the
	// failed-tile count. (Killing a translation slave instead can
	// *speed up* the congestion-bound benchmarks — fewer speculative
	// translators relieve the manager, the Figure 5 effect — which is
	// interesting but not a degradation curve.)
	kills := []struct {
		label string
		fail  fault.TileFail
	}{
		{"1 dead bank", fault.TileFail{Tile: 7, Cycle: 150_000}},
		{"2 dead banks", fault.TileFail{Tile: 14, Cycle: 300_000}},
		{"3 dead banks", fault.TileFail{Tile: 2, Cycle: 450_000}},
	}
	modeTag := ""
	if mode == core.RecoverRollback {
		modeTag = " rollback"
	}
	type row struct {
		label string
		id    string // Run cache key; "default" shares the fault-free runs
		cfg   core.Config
	}
	rows := []row{{"no faults", "default", with()}}
	for k := 1; k <= len(kills); k++ {
		plan := &fault.Plan{}
		for _, kill := range kills[:k] {
			plan.Fails = append(plan.Fails, kill.fail)
		}
		label := kills[k-1].label
		rows = append(rows, row{label, "fault" + modeTag + " " + label,
			with(func(c *core.Config) { c.Fault = plan; c.Recovery = mode })})
	}

	benches := s.Benchmarks()
	jobs := make([]RunJob, 0, len(benches)*len(rows))
	for _, bench := range benches {
		for ci := range rows {
			jobs = append(jobs, RunJob{Bench: bench, CfgID: rows[ci].id, Cfg: rows[ci].cfg})
		}
	}
	if err := s.RunParallel(jobs); err != nil {
		return nil, err
	}
	series := make([]Series, len(rows))
	for ci := range rows {
		series[ci] = Series{Label: rows[ci].label, Values: make([]float64, len(benches))}
	}
	for bi, bench := range benches {
		var ref *core.Result
		for ci := range rows {
			r, err := s.Run(bench, rows[ci].id, rows[ci].cfg)
			if err != nil {
				return nil, err
			}
			if ci == 0 {
				ref = r
			} else if mode == core.RecoverRollback {
				if r.StateHash != ref.StateHash {
					return nil, fmt.Errorf(
						"rollback recovery not lossless: %s %q final state %#x != fault-free %#x",
						bench, rows[ci].label, r.StateHash, ref.StateHash)
				}
				if r.M.WritebacksLost != 0 {
					return nil, fmt.Errorf("rollback recovery lost %d writebacks: %s %q",
						r.M.WritebacksLost, bench, rows[ci].label)
				}
			}
			series[ci].Values[bi] = float64(r.Cycles) / float64(ref.Cycles)
		}
	}
	name := "FaultSweep"
	notes := "kill schedule: bank tile 7 @150k cycles, then bank 14 @300k, then bank 2 @450k " +
		"(one of the four banks survives); every faulted run is still checked for the " +
		"architecturally correct result"
	if mode == core.RecoverRollback {
		name = "FaultSweep (rollback)"
		notes += "; rollback runs additionally verified bit-identical to the fault-free " +
			"final state with zero writebacks lost"
	}
	return &Figure{
		Name:       name,
		Title:      "Graceful degradation under fail-stop tile faults (beyond the paper)",
		Metric:     "cycles relative to the fault-free run (higher is worse)",
		Benchmarks: benches,
		Series:     series,
		Notes:      notes,
	}, nil
}
