package bench

import (
	"testing"

	"tilevm/internal/core"
)

// TestFaultSweepDegradesGracefully: slowdown must grow (weakly
// monotonically) with the number of failed tiles, and losing three
// worker tiles must cost measurably more than losing none — while
// every run still produces the correct architectural result (enforced
// inside Suite.Run).
func TestFaultSweepDegradesGracefully(t *testing.T) {
	s := NewSuite()
	s.Quick = true
	f, err := s.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	mean := make([]float64, len(f.Series))
	for si, ser := range f.Series {
		for bi, bench := range f.Benchmarks {
			v := ser.Values[bi]
			mean[si] += v / float64(len(f.Benchmarks))
			// Per benchmark: allow sub-1% jitter, but the trend must
			// not reverse.
			if si > 0 && v < f.Series[si-1].Values[bi]*0.99 {
				t.Errorf("%s: slowdown decreased with more failures (%s: %.4f after %.4f)",
					bench, ser.Label, v, f.Series[si-1].Values[bi])
			}
		}
	}
	for si := 1; si < len(mean); si++ {
		if mean[si] <= mean[si-1] {
			t.Errorf("mean slowdown not monotone: %.4f after %.4f (%s)",
				mean[si], mean[si-1], f.Series[si].Label)
		}
	}
	first, last := f.Series[0], f.Series[len(f.Series)-1]
	for bi, bench := range f.Benchmarks {
		if last.Values[bi] <= first.Values[bi] {
			t.Errorf("%s: killing 3 bank tiles did not slow the machine (%.4f -> %.4f)",
				bench, first.Values[bi], last.Values[bi])
		}
	}
}

// TestFaultSweepRollbackLossless pins the rollback-recovery guarantees:
// every faulted run's final guest state is bit-identical to the
// fault-free run (StateHash equality, checked inside FaultSweepMode),
// zero writebacks are lost, and the sweep actually exercises the
// rollback path (at least one run rolled back rather than excising a
// dirty bank in place).
func TestFaultSweepRollbackLossless(t *testing.T) {
	s := NewSuite()
	s.Quick = true
	f, err := s.FaultSweepMode(core.RecoverRollback)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	var rollbacks uint64
	for _, bench := range f.Benchmarks {
		for _, label := range []string{"1 dead bank", "2 dead banks", "3 dead banks"} {
			// Cache hit on the runs FaultSweepMode just did; the config
			// argument is unused for cached keys.
			r, err := s.Run(bench, "fault rollback "+label, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rollbacks += r.M.Rollbacks
			if r.M.WritebacksLost != 0 {
				t.Errorf("%s %q: lost %d writebacks under rollback recovery",
					bench, label, r.M.WritebacksLost)
			}
		}
	}
	if rollbacks == 0 {
		t.Error("no run ever rolled back; the sweep is not exercising the rollback path")
	}
}
