package bench

import "testing"

// TestFaultSweepDegradesGracefully: slowdown must grow (weakly
// monotonically) with the number of failed tiles, and losing three
// worker tiles must cost measurably more than losing none — while
// every run still produces the correct architectural result (enforced
// inside Suite.Run).
func TestFaultSweepDegradesGracefully(t *testing.T) {
	s := NewSuite()
	s.Quick = true
	f, err := s.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	mean := make([]float64, len(f.Series))
	for si, ser := range f.Series {
		for bi, bench := range f.Benchmarks {
			v := ser.Values[bi]
			mean[si] += v / float64(len(f.Benchmarks))
			// Per benchmark: allow sub-1% jitter, but the trend must
			// not reverse.
			if si > 0 && v < f.Series[si-1].Values[bi]*0.99 {
				t.Errorf("%s: slowdown decreased with more failures (%s: %.4f after %.4f)",
					bench, ser.Label, v, f.Series[si-1].Values[bi])
			}
		}
	}
	for si := 1; si < len(mean); si++ {
		if mean[si] <= mean[si-1] {
			t.Errorf("mean slowdown not monotone: %.4f after %.4f (%s)",
				mean[si], mean[si-1], f.Series[si].Label)
		}
	}
	first, last := f.Series[0], f.Series[len(f.Series)-1]
	for bi, bench := range f.Benchmarks {
		if last.Values[bi] <= first.Values[bi] {
			t.Errorf("%s: killing 3 bank tiles did not slow the machine (%.4f -> %.4f)",
				bench, first.Values[bi], last.Values[bi])
		}
	}
}
