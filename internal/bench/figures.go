package bench

import (
	"fmt"

	"tilevm/internal/core"
	"tilevm/internal/pentium"
)

// base returns the default configuration used as the starting point of
// every sweep.
func base() core.Config { return core.DefaultConfig() }

// Figure4 — sensitivity to L1.5 code cache size: none, one 64KB bank,
// two banks (128KB). Slowdown vs the Pentium III baseline.
func (s *Suite) Figure4() (*Figure, error) {
	configs := []namedConfig{
		{"no L1.5", with(func(c *core.Config) { c.L15Banks = 0 })},
		{"64KB 1 bank", with(func(c *core.Config) { c.L15Banks = 1 })},
		{"128KB 2 banks", with(func(c *core.Config) { c.L15Banks = 2 })},
	}
	series, err := s.sweep(configs, slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 4",
		Title:      "Comparison of L1.5 Code Cache Sizes",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
		Notes: "benchmarks whose translated working set exceeds the 32KB L1 " +
			"code cache (vpr, gcc, crafty, perlbmk, gap, vortex, twolf) improve with the L1.5",
	}, nil
}

// translatorSweep is the configuration set shared by Figures 5-7.
func translatorSweep() []namedConfig {
	return []namedConfig{
		{"1 conservative", with(func(c *core.Config) { c.Slaves = 1; c.Speculative = false })},
		{"1 speculative", with(func(c *core.Config) { c.Slaves = 1 })},
		{"2 speculative", with(func(c *core.Config) { c.Slaves = 2 })},
		{"4 speculative", with(func(c *core.Config) { c.Slaves = 4 })},
		{"6 speculative", with(func(c *core.Config) { c.Slaves = 6 })},
		{"9 speculative", with(func(c *core.Config) { c.Slaves = 9; c.MemBanks = 1 })},
	}
}

// Figure5 — speculative parallel translation with differing numbers of
// translation tiles. The 9-translator point trades three L2 data cache
// tiles for translators, as in the paper.
func (s *Suite) Figure5() (*Figure, error) {
	series, err := s.sweep(translatorSweep(), slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 5",
		Title:      "Comparison with Differing Numbers of Translation Tiles",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
	}, nil
}

// Figure6 — L2 code cache accesses per cycle (log-scale quantity).
func (s *Suite) Figure6() (*Figure, error) {
	series, err := s.sweep(translatorSweep(), func(r *core.Result, _ *pentium.Result) float64 {
		return r.M.L2CAccessesPerCycle()
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 6",
		Title:      "Number of L2 Code Cache Accesses per Cycle",
		Metric:     "accesses/cycle (spans decades; see paper's log scale)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
		Notes:      "vpr, gcc, crafty (and vortex) show the highest rates — the congestion cases",
	}, nil
}

// Figure7 — L2 code cache misses per L2 access.
func (s *Suite) Figure7() (*Figure, error) {
	series, err := s.sweep(translatorSweep(), func(r *core.Result, _ *pentium.Result) float64 {
		return r.M.L2CMissRate()
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 7",
		Title:      "Number of L2 Code Cache Misses per L2 Code Cache Access",
		Metric:     "miss rate (decreases as speculative translators are added)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
	}, nil
}

// Figure8 — code optimization on vs off, under the dynamically
// reconfiguring (6→9 translator) configuration, as in the paper.
func (s *Suite) Figure8() (*Figure, error) {
	morph := func(c *core.Config) {
		c.Morph = true
		c.MorphThreshold = 5
	}
	configs := []namedConfig{
		{"without optimization", with(morph, func(c *core.Config) {
			c.Optimize = false
			c.ConservativeFlags = true
		})},
		{"with optimization", with(morph)},
	}
	series, err := s.sweep(configs, slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 8",
		Title:      "Comparison of No Code Optimization versus Code Optimization",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Notes:      "optimization off also disables cross-block dead-flag elimination",
		Series:     series,
	}, nil
}

// reconfigSweep is the configuration set of Figures 9 and 10.
func reconfigSweep() []namedConfig {
	morph := func(thr int) func(*core.Config) {
		return func(c *core.Config) {
			c.Morph = true
			c.MorphThreshold = thr
		}
	}
	return []namedConfig{
		{"1 mem / 9 trans", with(func(c *core.Config) { c.Slaves = 9; c.MemBanks = 1 })},
		{"4 mem / 6 trans", with(func(c *core.Config) { c.Slaves = 6; c.MemBanks = 4 })},
		{"morph thresh 15", with(morph(15))},
		{"morph thresh 0", with(morph(0))},
		{"morph thresh 5", with(morph(5))},
	}
}

// Figure9 — trading silicon between L2 data cache and translation,
// statically and dynamically.
func (s *Suite) Figure9() (*Figure, error) {
	series, err := s.sweep(reconfigSweep(), slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Figure 9",
		Title:      "Trading Silicon Resources Between L2 Data Cache and Translation",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
	}, nil
}

// Figure10 — Figure 9 normalized to the 1 mem / 9 trans configuration,
// as percentage faster (higher is better).
func (s *Suite) Figure10() (*Figure, error) {
	f9, err := s.Figure9()
	if err != nil {
		return nil, err
	}
	ref := f9.Series[0]
	out := &Figure{
		Name:       "Figure 10",
		Title:      "Relative Comparison of Performance for Differing Configurations",
		Metric:     "% faster than 1 mem / 9 trans (higher is better)",
		Benchmarks: f9.Benchmarks,
		Notes:      "paper: dynamic reconfiguration beats the best static config on gzip, mcf, parser, bzip2",
	}
	for _, ser := range f9.Series[1:] {
		vals := make([]float64, len(ser.Values))
		for i := range ser.Values {
			vals[i] = (ref.Values[i]/ser.Values[i] - 1) * 100
		}
		out.Series = append(out.Series, Series{Label: ser.Label, Values: vals})
	}
	return out, nil
}

// Headline reports the paper's §1 summary: the slowdown band across
// SpecInt under the default configuration.
func (s *Suite) Headline() (string, error) {
	cfg := base()
	jobs := make([]RunJob, 0, len(s.Benchmarks()))
	for _, bench := range s.Benchmarks() {
		jobs = append(jobs, RunJob{Bench: bench, CfgID: "default", Cfg: cfg})
	}
	if err := s.RunParallel(jobs); err != nil {
		return "", err
	}
	lo, hi := 0.0, 0.0
	var loName, hiName string
	for _, bench := range s.Benchmarks() {
		sd, err := s.Slowdown(bench, "default", cfg)
		if err != nil {
			return "", err
		}
		if lo == 0 || sd < lo {
			lo, loName = sd, bench
		}
		if sd > hi {
			hi, hiName = sd, bench
		}
	}
	return fmt.Sprintf(
		"Headline: slowdown band %.0fx (%s) to %.0fx (%s) vs Pentium III\n"+
			"paper: approximately 7x-110x across SpecInt 2000\n",
		lo, loName, hi, hiName), nil
}

// with clones the default config and applies mutations.
func with(muts ...func(*core.Config)) core.Config {
	c := base()
	for _, m := range muts {
		m(&c)
	}
	return c
}

// Ablations measures design choices the paper calls out but does not
// sweep: chaining, the return predictor, and prioritized speculation
// queues, each disabled against the default configuration.
func (s *Suite) Ablations() (*Figure, error) {
	configs := []namedConfig{
		{"default", with()},
		{"no chaining", with(func(c *core.Config) { c.NoChain = true })},
		{"no return predictor", with(func(c *core.Config) { c.NoReturnPredictor = true })},
		{"FIFO spec queues", with(func(c *core.Config) { c.FIFOSpec = true })},
		{"conservative flags", with(func(c *core.Config) { c.ConservativeFlags = true })},
	}
	series, err := s.sweep(configs, slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "Ablations",
		Title:      "Design-choice ablations (beyond the paper)",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
	}, nil
}
