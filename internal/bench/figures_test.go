package bench

import (
	"testing"
)

// idx finds a benchmark's column.
func idx(f *Figure, bench string) int {
	for i, b := range f.Benchmarks {
		if b == bench {
			return i
		}
	}
	return -1
}

func series(f *Figure, label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// The figure tests share one suite so runs are cached across tests.
var shared = NewSuite()

func TestFigure4Shape(t *testing.T) {
	f, err := shared.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	no := series(f, "no L1.5")
	two := series(f, "128KB 2 banks")
	// Benchmarks with big code working sets must improve with the
	// L1.5; small-working-set ones should be roughly unaffected.
	for _, b := range []string{"176.gcc", "186.crafty", "255.vortex", "175.vpr"} {
		i := idx(f, b)
		if two.Values[i] >= no.Values[i] {
			t.Errorf("%s: L1.5 did not help (%.1f -> %.1f)", b, no.Values[i], two.Values[i])
		}
	}
	for _, b := range []string{"164.gzip", "181.mcf", "256.bzip2"} {
		i := idx(f, b)
		ratio := no.Values[i] / two.Values[i]
		if ratio > 1.25 {
			t.Errorf("%s: small benchmark unexpectedly L1.5-sensitive (ratio %.2f)", b, ratio)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	f, err := shared.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	s1 := series(f, "1 speculative")
	s6 := series(f, "6 speculative")
	// Overall trend: more translation resources help on most
	// benchmarks (paper: all but vpr/gcc/crafty improve).
	improved := 0
	for i := range f.Benchmarks {
		if s6.Values[i] < s1.Values[i]*1.02 {
			improved++
		}
	}
	if improved < len(f.Benchmarks)/2 {
		t.Errorf("only %d/%d benchmarks improved from 1 to 6 translators", improved, len(f.Benchmarks))
	}
}

func TestFigure7MissRateDeclines(t *testing.T) {
	f, err := shared.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	s1 := series(f, "1 speculative")
	s9 := series(f, "9 speculative")
	declined := 0
	for i := range f.Benchmarks {
		if s9.Values[i] <= s1.Values[i] {
			declined++
		}
	}
	if declined < len(f.Benchmarks)*2/3 {
		t.Errorf("L2 code miss rate declined on only %d/%d benchmarks", declined, len(f.Benchmarks))
	}
}

func TestFigure6RatesSpread(t *testing.T) {
	f, err := shared.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	s6 := series(f, "6 speculative")
	lo, hi := 1.0, 0.0
	for _, v := range s6.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 4 {
		t.Errorf("L2 code access rates too uniform: %.2e .. %.2e", lo, hi)
	}
	// gcc, crafty, vortex must be at the top (the congestion cases).
	top := (series(f, "6 speculative").Values[idx(f, "176.gcc")] +
		s6.Values[idx(f, "255.vortex")]) / 2
	if s6.Values[idx(f, "164.gzip")] > top {
		t.Error("gzip should access the L2 code cache far less than gcc/vortex")
	}
}

func TestFigure8OptimizationWins(t *testing.T) {
	f, err := shared.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	noopt := series(f, "without optimization")
	opt := series(f, "with optimization")
	for i, b := range f.Benchmarks {
		if opt.Values[i] >= noopt.Values[i] {
			t.Errorf("%s: optimization did not pay (%.1f -> %.1f)", b, noopt.Values[i], opt.Values[i])
		}
	}
}

func TestFigure9And10Shape(t *testing.T) {
	f9, err := shared.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f9.String())
	f10, err := shared.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f10.String())

	mem1 := series(f9, "1 mem / 9 trans")
	mem4 := series(f9, "4 mem / 6 trans")
	// mcf (data-bound, 96KB working set) must prefer the 4-bank
	// configuration; a big-code benchmark should prefer translators.
	i := idx(f9, "181.mcf")
	if mem4.Values[i] >= mem1.Values[i] {
		t.Errorf("mcf: 4 banks (%.2f) should beat 1 bank (%.2f)", mem4.Values[i], mem1.Values[i])
	}
	g := idx(f9, "176.gcc")
	if mem1.Values[g] >= mem4.Values[g]*1.10 {
		t.Errorf("gcc: 9 translators (%.2f) should be at least competitive with 6 (%.2f)",
			mem1.Values[g], mem4.Values[g])
	}
	// Dynamic reconfiguration should land between or beat the statics
	// on most benchmarks (paper: beats best static on gzip, mcf,
	// parser, bzip2; loses on others).
	dyn := series(f9, "morph thresh 5")
	reasonable := 0
	for i := range f9.Benchmarks {
		best := mem1.Values[i]
		if mem4.Values[i] < best {
			best = mem4.Values[i]
		}
		worst := mem1.Values[i]
		if mem4.Values[i] > worst {
			worst = mem4.Values[i]
		}
		if dyn.Values[i] <= worst*1.15 {
			reasonable++
		}
		_ = best
	}
	if reasonable < len(f9.Benchmarks)-2 {
		t.Errorf("morphing unreasonable on %d benchmarks", len(f9.Benchmarks)-reasonable)
	}
}

func TestHeadlineBand(t *testing.T) {
	out, err := shared.Headline()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	f, err := shared.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	def := series(f, "default")
	noChain := series(f, "no chaining")
	worse := 0
	for i := range f.Benchmarks {
		if noChain.Values[i] > def.Values[i] {
			worse++
		}
	}
	if worse < len(f.Benchmarks)/2 {
		t.Errorf("disabling chaining hurt only %d/%d benchmarks", worse, len(f.Benchmarks))
	}
}

func TestHardwareWhatIf(t *testing.T) {
	if testing.Short() {
		t.Skip("what-if in -short mode")
	}
	f, err := shared.HardwareWhatIf()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	sw := series(f, "all software (paper)")
	mmu := series(f, "+ hardware MMU")
	ic := series(f, "+ hardware I-cache")
	both := series(f, "+ both")
	// The MMU must help the memory-bound benchmarks most; the I-cache
	// must help the code-bound ones most; both must beat either.
	iMcf, iGcc := idx(f, "181.mcf"), idx(f, "176.gcc")
	if mmu.Values[iMcf] >= sw.Values[iMcf] {
		t.Error("hardware MMU did not help mcf")
	}
	if ic.Values[iGcc] >= sw.Values[iGcc]*0.9 {
		t.Errorf("hardware I-cache did not substantially help gcc (%.1f -> %.1f)",
			sw.Values[iGcc], ic.Values[iGcc])
	}
	for i, b := range f.Benchmarks {
		if both.Values[i] > sw.Values[i]*1.02 {
			t.Errorf("%s: both assists made things worse (%.1f -> %.1f)",
				b, sw.Values[i], both.Values[i])
		}
	}
}

func TestUtilizationReport(t *testing.T) {
	out, err := shared.Utilization("176.gcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
}
