package bench

import (
	"strings"
	"testing"
)

// TestFleetSweepQuick exercises the fleet table end to end on the
// quick rotation and checks its shape: every grid×count×mode point
// present, utilization within (0, 100], and deterministic output
// (byte-identical on a second run from a fresh suite).
func TestFleetSweepQuick(t *testing.T) {
	run := func() string {
		s := NewSuite()
		s.Quick = true
		out, err := s.FleetSweep()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header (2 lines) + 2 grids × 2 counts × 3 placement modes.
	if len(lines) != 2+12 {
		t.Fatalf("got %d lines, want 14:\n%s", len(lines), out)
	}
	for _, l := range lines[2:] {
		if !strings.Contains(l, "%") {
			t.Errorf("data row missing utilization: %q", l)
		}
		if strings.Contains(l, " 0.0%") {
			t.Errorf("zero utilization in %q", l)
		}
	}
	for _, point := range []string{"4x4", "8x8", "fixed", "lend", "planner"} {
		if !strings.Contains(out, point) {
			t.Errorf("sweep output missing %q:\n%s", point, out)
		}
	}
	if again := run(); again != out {
		t.Error("FleetSweep output not deterministic across fresh suites")
	}
}
