package bench

import (
	"fmt"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
)

// FleetFaultSweep measures fleet-level fault tolerance: an
// oversubscribed gzip/mcf fleet on an 8×8 fabric (8 VM slots), with
// fail-stop faults quarantining 0–3 slots mid-run, crossed with three
// recovery policies — abort on first fault (MaxAttempts 1), retry with
// backoff (the default ×3), and retry restoring from the latest
// checkpoint (rollback mode). Every guest carries the same absolute
// deadline, so the table reports SLO attainment alongside goodput
// (useful host instructions per makespan cycle: work from killed
// attempts counts for nothing). These are the numbers behind the
// fleet fault-tolerance table in EXPERIMENTS.md.
func (s *Suite) FleetFaultSweep() (string, error) {
	grid, nGuests := [2]int{8, 8}, 12
	rotation := []string{"164.gzip", "181.mcf"}
	faultCounts := []int{0, 1, 2, 3}
	const deadline = 8_000_000
	if s.Quick {
		grid, nGuests = [2]int{4, 4}, 4
		faultCounts = []int{0, 1}
	}

	// Fault schedule: the k-th point kills one service tile in each of k
	// distinct slots, rotating through the roles whose loss is fatal to a
	// slot (manager, translation slave, exec), at cycles that land inside
	// the gzip/mcf runtimes so every kill strikes a running guest.
	cfg0 := core.DefaultConfig()
	cfg0.Params.Width, cfg0.Params.Height = grid[0], grid[1]
	layout, err := core.FleetSlotLayout(cfg0.Params)
	if err != nil {
		return "", fmt.Errorf("fleet-fault layout %dx%d: %w", grid[0], grid[1], err)
	}
	roles := []struct {
		tile  func(core.FleetSlot) int
		cycle uint64
	}{
		{func(sl core.FleetSlot) int { return sl.Manager }, 500_000},
		{func(sl core.FleetSlot) int { return sl.Slaves[0] }, 700_000},
		{func(sl core.FleetSlot) int { return sl.Exec }, 2_500_000},
	}
	policies := []struct {
		name        string
		maxAttempts int
		rollback    bool
	}{
		{"abort", 1, false},
		{"retry", core.DefaultMaxAttempts, false},
		{"retry+rollback", core.DefaultMaxAttempts, true},
	}

	imgs := make([]*guest.Image, nGuests)
	for i := range imgs {
		imgs[i] = s.image(rotation[i%len(rotation)])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Fleet fault tolerance — %d guests on %dx%d, deadline %d cycles/guest\n",
		nGuests, grid[0], grid[1], uint64(deadline))
	fmt.Fprintf(&b, "%6s %-15s %9s %8s %8s %8s %5s %7s %9s %14s\n",
		"faults", "policy", "finished", "retried", "aborted", "dl-miss", "quar", "SLO", "goodput", "makespan")
	for _, k := range faultCounts {
		for _, pol := range policies {
			cfg := core.DefaultConfig()
			cfg.Params.Width, cfg.Params.Height = grid[0], grid[1]
			cfg.SimWorkers = s.SimWorkers // serial fallback under lending/faults, but always safe
			if k > 0 {
				plan := &fault.Plan{Seed: 7}
				for i := 0; i < k; i++ {
					sl := layout[(2*i+1)%len(layout)]
					plan.Fails = append(plan.Fails,
						fault.TileFail{Tile: roles[i%len(roles)].tile(sl), Cycle: roles[i%len(roles)].cycle})
				}
				cfg.Fault = plan
			}
			if pol.rollback {
				cfg.Recovery = core.RecoverRollback
			}
			res, err := core.RunFleet(imgs, cfg, core.FleetConfig{
				Lend:        true,
				MaxAttempts: pol.maxAttempts,
				Deadline:    deadline,
			})
			if err != nil {
				return "", fmt.Errorf("fleet-fault %dx%d faults=%d policy=%s: %w",
					grid[0], grid[1], k, pol.name, err)
			}
			f := &res.Fleet
			fmt.Fprintf(&b, "%6d %-15s %9d %8d %8d %8d %5d %6.0f%% %9.3f %14d\n",
				k, pol.name, f.GuestsFinished, f.GuestsRetried, f.GuestsAborted,
				f.GuestsDeadlineExceeded, f.SlotsQuarantined,
				100*f.SLOAttainment(), f.Goodput(res.Makespan), res.Makespan)
		}
	}
	return b.String(), nil
}
