package bench

import (
	"strings"
	"testing"
)

// TestFleetFaultSweepQuick exercises the fleet fault-tolerance table
// end to end on the quick matrix and checks its shape: every
// faults×policy point present, the faulty points actually quarantine a
// slot, and the output byte-identical on a second run from a fresh
// suite.
func TestFleetFaultSweepQuick(t *testing.T) {
	run := func() string {
		s := NewSuite()
		s.Quick = true
		out, err := s.FleetFaultSweep()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header (2 lines) + 2 fault counts × 3 policies.
	if len(lines) != 2+6 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), out)
	}
	for _, policy := range []string{"abort", "retry", "retry+rollback"} {
		if !strings.Contains(out, policy) {
			t.Errorf("sweep output missing policy %q:\n%s", policy, out)
		}
	}
	for _, l := range lines[2:] {
		fields := strings.Fields(l)
		faults, quar := fields[0], fields[6]
		if faults == "0" && quar != "0" {
			t.Errorf("fault-free row quarantined a slot: %q", l)
		}
		if faults != "0" && quar == "0" {
			t.Errorf("faulty row quarantined nothing: %q", l)
		}
	}
	if again := run(); again != out {
		t.Error("FleetFaultSweep output not deterministic across fresh suites")
	}
}
