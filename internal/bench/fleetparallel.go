package bench

import (
	"fmt"
	"reflect"
	"time"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

// fleetParallelGuests is the oversubscribed gzip/mcf mix the parallel
// benchmark admits: more guests than the 8×8 fabric's 8 slots, so the
// run exercises fenced re-admissions as well as steady-state sharding.
const fleetParallelGuests = 12

// FleetParallelResult records the parallel-engine benchmark: the same
// oversubscribed fleet run on the serial event loop and on the sharded
// engine, with the identity check the engine promises.
type FleetParallelResult struct {
	Guests  int `json:"guests"`
	Slots   int `json:"slots"`
	Workers int `json:"workers"`

	SerialSeconds  float64 `json:"serial_seconds"`
	ShardedSeconds float64 `json:"sharded_seconds"`
	Speedup        float64 `json:"speedup"`

	// Identical is the determinism gate: the sharded FleetResult —
	// per-guest cycles, exit codes, state hashes, per-tile counters,
	// fleet counters — compared whole against the serial run's.
	Identical bool `json:"identical"`
}

// FleetParallelBench runs a 12-guest gzip/mcf fleet on an 8×8 fabric
// (8 VM slots, lending off so the sharded engine engages) once with
// the serial loop and once with the given worker count. It reports
// both wall clocks and whether the two results are identical. This is
// the parallel_sim entry simbench records and benchcheck gates on.
func FleetParallelBench(workers int) (*FleetParallelResult, error) {
	if workers < 2 {
		return nil, fmt.Errorf("fleet-parallel bench: want workers >= 2, got %d", workers)
	}
	rotation := []string{"164.gzip", "181.mcf"}
	imgs := make([]*guest.Image, fleetParallelGuests)
	for i := range imgs {
		p, ok := workload.ByName(rotation[i%len(rotation)])
		if !ok {
			return nil, fmt.Errorf("fleet-parallel bench: workload %s missing", rotation[i%len(rotation)])
		}
		imgs[i] = p.Build()
	}
	run := func(simWorkers int) (*core.FleetResult, float64, error) {
		cfg := core.DefaultConfig()
		cfg.Params.Width, cfg.Params.Height = 8, 8
		cfg.SimWorkers = simWorkers
		start := time.Now()
		res, err := core.RunFleet(imgs, cfg, core.FleetConfig{})
		if err != nil {
			return nil, 0, fmt.Errorf("fleet-parallel bench: workers=%d: %w", simWorkers, err)
		}
		return res, time.Since(start).Seconds(), nil
	}
	serialRes, serialSecs, err := run(1)
	if err != nil {
		return nil, err
	}
	shardedRes, shardedSecs, err := run(workers)
	if err != nil {
		return nil, err
	}
	return &FleetParallelResult{
		Guests:         fleetParallelGuests,
		Slots:          serialRes.Slots,
		Workers:        workers,
		SerialSeconds:  serialSecs,
		ShardedSeconds: shardedSecs,
		Speedup:        serialSecs / shardedSecs,
		Identical:      reflect.DeepEqual(serialRes, shardedRes),
	}, nil
}
