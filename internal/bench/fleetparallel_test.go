package bench

import "testing"

// TestFleetParallelBench runs the parallel_sim benchmark once at two
// workers and checks the contract simbench and benchcheck rely on:
// the sharded run exists, the identity gate holds, and the recorded
// shape is sane. Wall-clock fields are measured, not asserted — this
// is a correctness test, not a perf test.
func TestFleetParallelBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full 12-guest fleets")
	}
	fp, err := FleetParallelBench(2)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Identical {
		t.Fatal("sharded fleet result diverged from serial — bit-for-bit contract broken")
	}
	if fp.Guests != fleetParallelGuests || fp.Slots != 8 || fp.Workers != 2 {
		t.Fatalf("unexpected shape: %+v", fp)
	}
	if fp.SerialSeconds <= 0 || fp.ShardedSeconds <= 0 {
		t.Fatalf("unmeasured wall clocks: %+v", fp)
	}
}

// TestFleetParallelBenchRejectsSerial pins the argument contract.
func TestFleetParallelBenchRejectsSerial(t *testing.T) {
	if _, err := FleetParallelBench(1); err == nil {
		t.Fatal("want error for workers < 2")
	}
}
