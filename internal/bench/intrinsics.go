package bench

import (
	"fmt"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// Figure 11 — architecture intrinsics. The emulator column is measured
// on the simulated machine with pointer-chase microbenchmarks at three
// working-set sizes (tile D-cache hit, L2 bank hit, DRAM); the paper's
// published numbers are printed alongside.

// IntrinsicsRow is one line of the Figure 11 table.
type IntrinsicsRow struct {
	Name        string
	MeasuredLat float64
	MeasuredOcc float64
	PaperLat    float64
	PaperOcc    float64
	PIIILat     float64
	PIIIOcc     float64
}

// Intrinsics holds the regenerated Figure 11.
type Intrinsics struct {
	Rows      []IntrinsicsRow
	ExecUnits int
	PIIIUnits int
}

// String renders the table.
func (t *Intrinsics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — Architecture Intrinsics\n")
	fmt.Fprintf(&b, "%-14s %26s %26s %20s\n", "", "Raw emulator (measured)", "Raw emulator (paper)", "Pentium III (model)")
	fmt.Fprintf(&b, "%-14s %13s %12s %13s %12s %10s %9s\n",
		"intrinsic", "lat", "occ", "lat", "occ", "lat", "occ")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %13.1f %12.1f %13.1f %12.1f %10.1f %9.1f\n",
			r.Name, r.MeasuredLat, r.MeasuredOcc, r.PaperLat, r.PaperOcc, r.PIIILat, r.PIIIOcc)
	}
	fmt.Fprintf(&b, "%-14s %26d %26d %20d\n", "exec units", t.ExecUnits, 1, t.PIIIUnits)
	return b.String()
}

// chaseImage builds a dependent pointer-chase microbenchmark over a
// ring of the given size, with `iters` trips over an unrolled body of
// `unroll` chase steps.
func chaseImage(ringBytes int, iters uint32, unroll int) *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	base := uint32(guest.DefaultHeapBase)
	a.MovRegImm(x86.EDI, base)
	a.MovRegImm(x86.ESI, iters)
	a.Label("loop")
	for i := 0; i < unroll; i++ {
		a.MovRegMem(x86.EDI, x86.Mem(x86.EDI, 0))
	}
	a.DecReg(x86.ESI)
	a.Jcc(x86.CondNE, "loop")
	a.MovRegImm(x86.EBX, 0)
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)

	nodes := ringBytes / 64
	data := make([]byte, ringBytes)
	// Deterministic Sattolo shuffle: a single n-cycle, so the chase
	// really touches the whole ring with no spatial locality.
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := nodes - 1; i > 0; i-- {
		seed = seed*6364136223846793005 + 1442695040888963407
		j := int(seed>>33) % i
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < nodes; i++ {
		off := perm[i] * 64
		next := perm[(i+1)%nodes]
		addr := base + uint32(next*64)
		data[off] = byte(addr)
		data[off+1] = byte(addr >> 8)
		data[off+2] = byte(addr >> 16)
		data[off+3] = byte(addr >> 24)
	}
	return &guest.Image{
		Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase,
		Code: a.Bytes(), Segments: []guest.Segment{{Addr: base, Data: data}},
	}
}

// independentImage builds a microbenchmark of independent loads
// sweeping a working set, to expose issue occupancy rather than
// latency.
func independentImage(spanBytes int, iters uint32, unroll int) *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	base := uint32(guest.DefaultHeapBase)
	a.MovRegImm(x86.EDI, base)
	a.MovRegImm(x86.ESI, iters)
	a.MovRegImm(x86.EDX, 0)
	a.Label("loop")
	for i := 0; i < unroll; i++ {
		off := int32((i * 68) &^ 3 % spanBytes)
		a.MovRegMem(x86.EAX, x86.MemIdx(x86.EDI, x86.EDX, 1, off))
	}
	a.ALU(x86.ADD, x86.RegOp(x86.EDX, 4), x86.ImmOp(64, 4))
	a.ALU(x86.AND, x86.RegOp(x86.EDX, 4), x86.ImmOp(int32(spanBytes-1), 4))
	a.DecReg(x86.ESI)
	a.Jcc(x86.CondNE, "loop")
	a.MovRegImm(x86.EBX, 0)
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
	return &guest.Image{
		Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase,
		Code: a.Bytes(),
	}
}

// measure runs an image builder at two iteration counts and returns
// cycles per unit of the differential work.
func measure(build func(iters uint32) *guest.Image, unitsPerIter float64, cfg core.Config) (float64, error) {
	const t1, t2 = 400, 2400
	r1, err := core.Run(build(t1), cfg)
	if err != nil {
		return 0, err
	}
	r2, err := core.Run(build(t2), cfg)
	if err != nil {
		return 0, err
	}
	return float64(r2.Cycles-r1.Cycles) / (float64(t2-t1) * unitsPerIter), nil
}

// Figure11 regenerates the intrinsics table.
func (s *Suite) Figure11() (*Intrinsics, error) {
	cfg := core.DefaultConfig()
	const unroll = 32

	type probe struct {
		name               string
		ring               int
		paperLat, paperOcc float64
		p3Lat, p3Occ       float64
	}
	probes := []probe{
		{"L1 cache hit", 4 * 1024, 6, 4, 3, 1},
		{"L2 cache hit", 64 * 1024, 87, 87, 7, 1},
		{"L2 cache miss", 1024 * 1024, 151, 87, 79, 1},
	}

	out := &Intrinsics{ExecUnits: cfg.Params.ExecUnits, PIIIUnits: 3}
	for _, p := range probes {
		p := p
		lat, err := measure(func(iters uint32) *guest.Image {
			return chaseImage(p.ring, iters, unroll)
		}, unroll, cfg)
		if err != nil {
			return nil, fmt.Errorf("latency probe %s: %w", p.name, err)
		}
		occ, err := measure(func(iters uint32) *guest.Image {
			return independentImage(p.ring, iters, unroll)
		}, unroll, cfg)
		if err != nil {
			return nil, fmt.Errorf("occupancy probe %s: %w", p.name, err)
		}
		out.Rows = append(out.Rows, IntrinsicsRow{
			Name:        p.name,
			MeasuredLat: lat, MeasuredOcc: occ,
			PaperLat: p.paperLat, PaperOcc: p.paperOcc,
			PIIILat: p.p3Lat, PIIIOcc: p.p3Occ,
		})
	}
	return out, nil
}

// LossAnalysis reproduces §4.5: the analytic decomposition of the
// low-end slowdown into a memory-system factor, an ILP factor, and a
// condition-code factor, using the paper's CPI formula with miss rates
// measured from the baseline run of a low-slowdown benchmark.
func (s *Suite) LossAnalysis() (string, error) {
	b, err := s.Baseline("164.gzip")
	if err != nil {
		return "", err
	}
	memRate := float64(b.MemAccs) / float64(b.Insts)
	l1Miss := float64(b.L1Misses) / float64(b.MemAccs)
	l2Miss := 0.0
	if b.L1Misses > 0 {
		l2Miss = float64(b.L2Misses) / float64(b.L1Misses)
	}

	cpi := func(l1occ, l2occ, missocc, nonmem float64) float64 {
		return memRate*((1-l1Miss)*l1occ+l1Miss*((1-l2Miss)*l2occ+l2Miss*missocc)) +
			(1-memRate)*nonmem
	}
	// Occupancies from Figure 11 (emulator vs Pentium III).
	emulCPI := cpi(4, 87, 87, 1)
	p3CPI := cpi(1, 1, 1, 1)
	memFactor := emulCPI / p3CPI
	const ilpFactor = 1.3 // SpecInt ILP on a P6-class core (paper §4.5)
	const flagFactor = 1.1
	total := memFactor * ilpFactor * flagFactor

	var sb strings.Builder
	fmt.Fprintf(&sb, "§4.5 analysis of performance loss (measured on 164.gzip baseline)\n")
	fmt.Fprintf(&sb, "memory access rate      %.3f per instruction\n", memRate)
	fmt.Fprintf(&sb, "L1 miss rate            %.4f\n", l1Miss)
	fmt.Fprintf(&sb, "L2 miss rate            %.4f\n", l2Miss)
	fmt.Fprintf(&sb, "emulator memory CPI     %.2f   (paper: 3.9)\n", emulCPI)
	fmt.Fprintf(&sb, "Pentium III CPI         %.2f   (paper: 1)\n", p3CPI)
	fmt.Fprintf(&sb, "memory factor           %.2fx\n", memFactor)
	fmt.Fprintf(&sb, "ILP factor              %.2fx  (paper: 1.3)\n", ilpFactor)
	fmt.Fprintf(&sb, "condition-code factor   %.2fx  (paper: 1.1)\n", flagFactor)
	fmt.Fprintf(&sb, "expected minimum        %.1fx  (paper: 5.5)\n", total)
	return sb.String(), nil
}
