package bench

import (
	"fmt"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/workload"
)

// MultiVM measures the §5 scenario: pairs of guests sharing one
// fabric, with and without cross-VM translation-tile lending. It
// reports per-guest cycles and the makespan for a small/large pairing
// and a symmetric pairing.
func (s *Suite) MultiVM() (string, error) {
	pairs := [][2]string{
		{"164.gzip", "176.gcc"},
		{"181.mcf", "255.vortex"},
		{"176.gcc", "255.vortex"},
	}
	cfg := core.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-VM — two virtual x86 processors sharing the fabric (§5)\n")
	fmt.Fprintf(&b, "%-24s %-10s %14s %14s %14s %12s\n",
		"pair", "lending", "A cycles", "B cycles", "makespan", "B demand-miss")
	for _, pr := range pairs {
		pa, okA := workload.ByName(pr[0])
		pb, okB := workload.ByName(pr[1])
		if !okA || !okB {
			return "", fmt.Errorf("bench: unknown pair %v", pr)
		}
		imgA, imgB := pa.Build(), pb.Build()
		for _, lend := range []bool{false, true} {
			res, err := core.RunPair(imgA, imgB, cfg, lend)
			if err != nil {
				return "", fmt.Errorf("pair %v lend=%v: %w", pr, lend, err)
			}
			mode := "off"
			if lend {
				mode = "on"
			}
			fmt.Fprintf(&b, "%-24s %-10s %14d %14d %14d %12d\n",
				pr[0]+" + "+pr[1], mode,
				res.A.Cycles, res.B.Cycles, res.Makespan, res.B.M.DemandMisses)
		}
	}
	return b.String(), nil
}
