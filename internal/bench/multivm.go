package bench

import (
	"fmt"
	"strings"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

// MultiVM measures the §5 scenario: pairs of guests sharing one
// fabric, with and without cross-VM translation-tile lending. It
// reports per-guest cycles and the makespan for a small/large pairing
// and a symmetric pairing.
func (s *Suite) MultiVM() (string, error) {
	pairs := [][2]string{
		{"164.gzip", "176.gcc"},
		{"181.mcf", "255.vortex"},
		{"176.gcc", "255.vortex"},
	}
	cfg := core.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-VM — two virtual x86 processors sharing the fabric (§5)\n")
	fmt.Fprintf(&b, "%-24s %-10s %14s %14s %14s %12s\n",
		"pair", "lending", "A cycles", "B cycles", "makespan", "B demand-miss")
	for _, pr := range pairs {
		pa, okA := workload.ByName(pr[0])
		pb, okB := workload.ByName(pr[1])
		if !okA || !okB {
			return "", fmt.Errorf("bench: unknown pair %v", pr)
		}
		imgA, imgB := pa.Build(), pb.Build()
		for _, lend := range []bool{false, true} {
			res, err := core.RunPair(imgA, imgB, cfg, lend)
			if err != nil {
				return "", fmt.Errorf("pair %v lend=%v: %w", pr, lend, err)
			}
			mode := "off"
			if lend {
				mode = "on"
			}
			fmt.Fprintf(&b, "%-24s %-10s %14d %14d %14d %12d\n",
				pr[0]+" + "+pr[1], mode,
				res.A.Cycles, res.B.Cycles, res.Makespan, res.B.M.DemandMisses)
		}
	}
	return b.String(), nil
}

// fleetRotation is the workload mix FleetSweep admits, repeated as
// needed to reach the requested guest count.
var fleetRotation = []string{"164.gzip", "181.mcf", "176.gcc", "164.gzip"}

// FleetSweep measures the N-guest fleet scheduler: guest counts from
// pair-sized to oversubscribed, on the default 4×4 fabric (2 VM slots),
// an 8×8 fabric (8 slots), and a 16×16 fabric (32 slots), each with
// fixed-shape carving, slave lending, and cost-model planner placement.
// For each point it reports the carved slot count, the makespan, mean
// guest turnaround (finish − admission, averaged), and fabric
// utilization — the numbers behind the fleet-utilization table in
// EXPERIMENTS.md. The full sweep appends the oversubscribed
// slot-capped placement comparison (the placement_sweep entry in
// BENCH_sim.json), where the planner must strictly beat the fixed
// carver.
func (s *Suite) FleetSweep() (string, error) {
	rotation := fleetRotation
	counts := []int{2, 4, 8}
	grids := [][2]int{{4, 4}, {8, 8}, {16, 16}}
	if s.Quick {
		rotation = []string{"164.gzip", "181.mcf"}
		counts = []int{2, 4}
		grids = grids[:2]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Fleet — N virtual x86 processors sharing one fabric (§5 at scale)\n")
	fmt.Fprintf(&b, "%-8s %7s %6s %-8s %14s %16s %12s\n",
		"grid", "guests", "slots", "mode", "makespan", "mean turnaround", "utilization")
	for _, g := range grids {
		for _, n := range counts {
			imgs := make([]*guest.Image, n)
			profiles := make([]core.GuestProfile, n)
			for i := range imgs {
				name := rotation[i%len(rotation)]
				imgs[i] = s.image(name)
				p, ok := workload.ByName(name)
				if !ok {
					return "", fmt.Errorf("fleet sweep: workload %s missing", name)
				}
				profiles[i] = core.ProfileFromWorkload(p)
			}
			for _, mode := range []string{"fixed", "lend", "planner"} {
				fc := core.FleetConfig{}
				switch mode {
				case "lend":
					fc.Lend = true
				case "planner":
					fc.Planner = true
					fc.Profiles = profiles
				}
				cfg := core.DefaultConfig()
				cfg.Params.Width, cfg.Params.Height = g[0], g[1]
				cfg.SimWorkers = s.SimWorkers
				res, err := core.RunFleet(imgs, cfg, fc)
				if err != nil {
					return "", fmt.Errorf("fleet %dx%d n=%d %s: %w", g[0], g[1], n, mode, err)
				}
				var turnaround uint64
				for _, gr := range res.Guests {
					turnaround += gr.Finished - gr.Admitted
				}
				fmt.Fprintf(&b, "%-8s %7d %6d %-8s %14d %16d %11.1f%%\n",
					fmt.Sprintf("%dx%d", g[0], g[1]), n, res.Slots, mode,
					res.Makespan, turnaround/uint64(n), 100*res.Utilization)
			}
		}
	}
	if !s.Quick {
		ps, err := PlacementSweepBench(false)
		if err != nil {
			return "", err
		}
		b.WriteString("\n")
		b.WriteString(ps.Table())
	}
	return b.String(), nil
}
