package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tilevm/internal/core"
	"tilevm/internal/pentium"
)

// RunJob names one (benchmark, configuration) simulation for
// RunParallel. CfgID is the Run cache key, so a job and a later serial
// Run with the same id share the result.
type RunJob struct {
	Bench string
	CfgID string
	Cfg   core.Config
}

// RunParallel executes the given jobs across Suite.Workers OS threads
// and fills the run cache, so subsequent Run/Slowdown calls for the
// same keys are hits. Every simulation is an isolated engine over a
// read-only guest image, which makes concurrent runs race-free; the
// suite's own caches are only written here, from the coordinating
// goroutine, in job order — so cache contents, cross-check outcomes,
// Progress lines, and the first reported error are all identical to
// running the jobs serially. With Workers <= 1 it is a no-op (the
// serial path computes on demand).
func (s *Suite) RunParallel(jobs []RunJob) error {
	if s.Workers <= 1 || len(jobs) == 0 {
		return nil
	}
	// Drop cached and duplicate jobs, preserving first-appearance order.
	pending := make([]RunJob, 0, len(jobs))
	seen := map[string]bool{}
	for _, j := range jobs {
		key := j.Bench + "|" + j.CfgID
		if _, ok := s.runs[key]; ok || seen[key] {
			continue
		}
		seen[key] = true
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return nil
	}

	// Build guest images up front (serially: the image cache is shared
	// mutable state). Afterwards images are read-only — guest.Load
	// copies them into each engine's fresh memory.
	var needBase []string
	baseSeen := map[string]bool{}
	for _, j := range pending {
		s.image(j.Bench)
		if _, ok := s.base[j.Bench]; !ok && !baseSeen[j.Bench] {
			baseSeen[j.Bench] = true
			needBase = append(needBase, j.Bench)
		}
	}

	// pool fans f over n items with an atomic work counter; items are
	// claimed in index order but may complete in any order.
	pool := func(n int, f func(i int)) {
		w := s.Workers
		if w > n {
			w = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					f(i)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: missing Pentium III baselines, one per unique benchmark.
	baseRes := make([]*pentium.Result, len(needBase))
	baseErr := make([]error, len(needBase))
	pool(len(needBase), func(i int) {
		baseRes[i], baseErr[i] = pentium.Run(s.images[needBase[i]], pentium.DefaultParams(), 0)
	})
	for i, name := range needBase {
		if baseErr[i] != nil {
			return fmt.Errorf("baseline %s: %w", name, baseErr[i])
		}
		s.base[name] = baseRes[i]
	}

	// Phase 2: the translator runs.
	res := make([]*core.Result, len(pending))
	errs := make([]error, len(pending))
	pool(len(pending), func(i int) {
		res[i], errs[i] = core.Run(s.images[pending[i].Bench], pending[i].Cfg)
	})

	// Deterministic assembly: merge in job order, mirroring Run.
	for i, j := range pending {
		if errs[i] != nil {
			return fmt.Errorf("%s under %s: %w", j.Bench, j.CfgID, errs[i])
		}
		r, b := res[i], s.base[j.Bench]
		if r.ExitCode != b.ExitCode || r.Stdout != b.Stdout {
			return fmt.Errorf("%s under %s: translator output diverged (exit %d vs %d)",
				j.Bench, j.CfgID, r.ExitCode, b.ExitCode)
		}
		s.runs[j.Bench+"|"+j.CfgID] = r
		if s.Progress != nil {
			s.Progress(fmt.Sprintf("%-12s %-22s %12d cycles", j.Bench, j.CfgID, r.Cycles))
		}
	}
	return nil
}
