package bench

import (
	"strings"
	"testing"
)

// renderQuick regenerates a deterministic slice of the quick figure
// suite with the given worker count and returns the concatenated
// rendered text. short restricts to the cheapest figures so the -race
// variant of this test stays affordable.
func renderQuick(t *testing.T, workers int, short bool) string {
	t.Helper()
	s := NewSuite()
	s.Quick = true
	s.Workers = workers
	var b strings.Builder
	var progress []string
	s.Progress = func(line string) { progress = append(progress, line) }

	figs := []func() (*Figure, error){s.Figure4, s.FaultSweep}
	if !short {
		figs = []func() (*Figure, error){
			s.Figure4, s.Figure5, s.Figure6, s.Figure7,
			s.Figure8, s.Figure9, s.Figure10, s.FaultSweep,
		}
	}
	for _, f := range figs {
		fig, err := f()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b.WriteString(fig.String())
	}
	head, err := s.Headline()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	b.WriteString(head)
	// Progress lines are part of the determinism contract: the parallel
	// merge must announce fresh runs in the same order as serial
	// execution.
	b.WriteString(strings.Join(progress, "\n"))
	return b.String()
}

// TestParallelDeterminism pins the tentpole guarantee: the figure suite
// rendered with an 8-worker pool is byte-identical to the serial path,
// including the order of progress lines. Under -race this also checks
// that concurrent core.Run/pentium.Run executions share no mutable
// state.
func TestParallelDeterminism(t *testing.T) {
	serial := renderQuick(t, 1, testing.Short())
	parallel := renderQuick(t, 8, testing.Short())
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel (8 workers) ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Figure 4") {
		t.Fatalf("suspicious rendered output:\n%s", serial)
	}
}
