package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

// placementGuests is the oversubscribed admission count the placement
// sweep uses: 12 guests of the gzip/mcf mix (the same mix parallel_sim
// oversubscribes) against slot-capped fabrics, so every configuration
// runs multiple admission waves and the elastic variant has a tail for
// idle slots to donate into.
const placementGuests = 12

// placementRotation deliberately pairs a short translation-bound guest
// with a long memory-bound one: the fixed 4×2 carve leaves the capped
// fabric's spare tiles idle, while the planner grows every slot and the
// memory-bound guests convert the extra bank tiles into shorter chains.
var placementRotation = []string{"164.gzip", "181.mcf"}

// PlacementPoint is one scheduling configuration's outcome on one
// grid. All figures are virtual — deterministic on any host.
type PlacementPoint struct {
	Mode           string  `json:"mode"`
	Slots          int     `json:"slots"`
	Makespan       uint64  `json:"makespan_cycles"`
	MeanTurnaround uint64  `json:"mean_turnaround_cycles"`
	Utilization    float64 `json:"utilization"`
	ElasticGrows   uint64  `json:"elastic_grows,omitempty"`
	ElasticShrinks uint64  `json:"elastic_shrinks,omitempty"`
}

// PlacementGridResult compares fixed-shape scheduling against the
// cost-model planner (and planner+elastic morphing) on one fabric.
type PlacementGridResult struct {
	Grid   string `json:"grid"`
	Guests int    `json:"guests"`
	// MaxSlots caps the carve below the fabric's capacity (an admission
	// policy cap, as tilevmd applies per batch) so the planner has idle
	// fabric to grow slots into while the fleet stays oversubscribed.
	MaxSlots int             `json:"max_slots,omitempty"`
	Fixed    PlacementPoint  `json:"fixed"`
	Planner  PlacementPoint  `json:"planner"`
	Elastic  PlacementPoint  `json:"planner_elastic"`
	// PlannerWins is the headline gate: the planner alone (no elastic)
	// strictly beats fixed-shape scheduling on makespan or utilization.
	PlannerWins bool `json:"planner_wins"`
	// ElasticWins: planner+elastic strictly beats fixed the same way.
	ElasticWins bool `json:"elastic_wins"`
}

// PlacementSweepResult is the placement_sweep entry simbench records
// and benchcheck gates on.
type PlacementSweepResult struct {
	Grids []PlacementGridResult `json:"grids"`
	// Identical is the determinism gate: every configuration repeated
	// byte-identically, and the elastic runs additionally reproduced
	// under a multi-worker request (the serial-fallback contract).
	Identical bool    `json:"identical"`
	Seconds   float64 `json:"seconds"`
}

// Table renders the sweep as the text section FleetSweep appends.
func (r *PlacementSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement — oversubscribed slot-capped fleets, fixed carver vs cost-model planner\n")
	fmt.Fprintf(&b, "%-8s %7s %5s %-16s %14s %16s %12s %14s\n",
		"grid", "guests", "cap", "mode", "makespan", "mean turnaround", "utilization", "grow/shrink")
	for _, g := range r.Grids {
		for _, p := range []PlacementPoint{g.Fixed, g.Planner, g.Elastic} {
			fmt.Fprintf(&b, "%-8s %7d %5d %-16s %14d %16d %11.2f%% %8d/%d\n",
				g.Grid, g.Guests, g.MaxSlots, p.Mode, p.Makespan, p.MeanTurnaround,
				100*p.Utilization, p.ElasticGrows, p.ElasticShrinks)
		}
		fmt.Fprintf(&b, "%-8s planner wins: %v, planner+elastic wins: %v\n", g.Grid, g.PlannerWins, g.ElasticWins)
	}
	return b.String()
}

// placementImgs builds the oversubscribed guest mix plus the planner
// profiles matching it.
func placementImgs() ([]*guest.Image, []core.GuestProfile, error) {
	imgs := make([]*guest.Image, placementGuests)
	profiles := make([]core.GuestProfile, placementGuests)
	for i := range imgs {
		name := placementRotation[i%len(placementRotation)]
		p, ok := workload.ByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("placement sweep: workload %s missing", name)
		}
		imgs[i] = p.Build()
		profiles[i] = core.ProfileFromWorkload(p)
	}
	return imgs, profiles, nil
}

// PlacementSweepBench measures cost-model placement against the fixed
// 4×2 carver on oversubscribed fleets: an 8×8 fabric capped at 4 VM
// slots and a 16×16 fabric capped at 8, both admitting 12 guests. The
// fixed carver covers half of each capped fabric with 4×2 slots; the
// planner's budget search grows every slot to 4×4, and the extra bank
// tiles cut the memory-bound guests' runtimes — strictly better
// makespan on both grids. Every configuration is run twice and
// compared whole for determinism; the elastic runs are repeated under
// SimWorkers=4 to pin the serial fallback. quick restricts the sweep
// to the 8×8 grid — that is the placement-smoke configuration.
func PlacementSweepBench(quick bool) (*PlacementSweepResult, error) {
	imgs, profiles, err := placementImgs()
	if err != nil {
		return nil, err
	}
	grids := []struct {
		w, h, maxSlots int
	}{
		{8, 8, 4},
		{16, 16, 8},
	}
	if quick {
		grids = grids[:1]
	}

	start := time.Now()
	out := &PlacementSweepResult{Identical: true}
	for _, g := range grids {
		run := func(fc core.FleetConfig, simWorkers int) (*core.FleetResult, error) {
			cfg := core.DefaultConfig()
			cfg.Params.Width, cfg.Params.Height = g.w, g.h
			cfg.SimWorkers = simWorkers
			fc.MaxSlots = g.maxSlots
			res, err := core.RunFleet(imgs, cfg, fc)
			if err != nil {
				return nil, fmt.Errorf("placement sweep: %dx%d %+v: %w", g.w, g.h, fc, err)
			}
			return res, nil
		}
		point := func(mode string, fc core.FleetConfig, parity bool) (PlacementPoint, error) {
			res, err := run(fc, 1)
			if err != nil {
				return PlacementPoint{}, err
			}
			again, err := run(fc, 1)
			if err != nil {
				return PlacementPoint{}, err
			}
			if !reflect.DeepEqual(res, again) {
				out.Identical = false
			}
			if parity {
				sharded, err := run(fc, 4)
				if err != nil {
					return PlacementPoint{}, err
				}
				if !reflect.DeepEqual(res, sharded) {
					out.Identical = false
				}
			}
			var turnaround uint64
			for _, gr := range res.Guests {
				turnaround += gr.Finished - gr.Admitted
			}
			return PlacementPoint{
				Mode:           mode,
				Slots:          res.Slots,
				Makespan:       res.Makespan,
				MeanTurnaround: turnaround / uint64(len(res.Guests)),
				Utilization:    res.Utilization,
				ElasticGrows:   res.Fleet.ElasticGrows,
				ElasticShrinks: res.Fleet.ElasticShrinks,
			}, nil
		}

		gr := PlacementGridResult{
			Grid:     fmt.Sprintf("%dx%d", g.w, g.h),
			Guests:   placementGuests,
			MaxSlots: g.maxSlots,
		}
		if gr.Fixed, err = point("fixed", core.FleetConfig{}, false); err != nil {
			return nil, err
		}
		if gr.Planner, err = point("planner", core.FleetConfig{
			Planner: true, Profiles: profiles,
		}, false); err != nil {
			return nil, err
		}
		if gr.Elastic, err = point("planner+elastic", core.FleetConfig{
			Planner: true, Profiles: profiles, Elastic: true,
		}, true); err != nil {
			return nil, err
		}
		beats := func(p PlacementPoint) bool {
			return p.Makespan < gr.Fixed.Makespan || p.Utilization > gr.Fixed.Utilization
		}
		gr.PlannerWins = beats(gr.Planner)
		gr.ElasticWins = beats(gr.Elastic)
		out.Grids = append(out.Grids, gr)
	}
	out.Seconds = time.Since(start).Seconds()
	return out, nil
}
