package bench

import "testing"

// TestPlacementSmoke is the `make placement-smoke` CI gate: the quick
// (8×8-only) placement sweep must run deterministically and the
// cost-model planner must beat the fixed carver — strictly here, since
// the capped 8×8 configuration wins on makespan and utilization, and
// both figures are virtual cycles that cannot wobble with host load.
func TestPlacementSmoke(t *testing.T) {
	r, err := PlacementSweepBench(true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("placement sweep runs diverged — planner/elastic placement broke determinism")
	}
	if len(r.Grids) != 1 || r.Grids[0].Grid != "8x8" {
		t.Fatalf("quick sweep covered %+v, want the single 8x8 grid", r.Grids)
	}
	g := r.Grids[0]
	if !g.PlannerWins {
		t.Errorf("planner does not beat fixed shapes: makespan %d vs %d, utilization %.4f vs %.4f",
			g.Planner.Makespan, g.Fixed.Makespan, g.Planner.Utilization, g.Fixed.Utilization)
	}
	if !g.ElasticWins {
		t.Errorf("planner+elastic does not beat fixed shapes: makespan %d vs %d, utilization %.4f vs %.4f",
			g.Elastic.Makespan, g.Fixed.Makespan, g.Elastic.Utilization, g.Fixed.Utilization)
	}
	if g.Elastic.ElasticGrows == 0 {
		t.Error("elastic configuration recorded no grows — the morph path went unexercised")
	}
}
