package bench

import (
	"fmt"

	"tilevm/internal/checkpoint"
	"tilevm/internal/core"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/workload"
)

// RunRecorded executes the run a RecordConfig describes, journaling the
// deterministic event stream, and returns the result plus the finished
// Record. The simulation is deterministic given the config, so the
// Record is a complete reproduction recipe: replaying re-runs the
// simulation from the same inputs and compares outcomes.
func RunRecorded(rc checkpoint.RecordConfig) (*core.Result, *checkpoint.Record, error) {
	img, err := recordImage(rc)
	if err != nil {
		return nil, nil, err
	}
	cfg, j, err := recordConfig(rc)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Run(img, cfg)
	if err != nil {
		return res, nil, err
	}
	rec := &checkpoint.Record{
		Config: rc,
		Events: j.Events,
		Final: checkpoint.RecordFinal{
			Cycles:    res.Cycles,
			ExitCode:  res.ExitCode,
			StateHash: res.StateHash,
		},
	}
	return res, rec, nil
}

// ReplayReport is the outcome of replaying a Record.
type ReplayReport struct {
	Match bool // cycles, exit code, and state hash all reproduced

	CyclesRef, CyclesGot uint64
	ExitRef, ExitGot     int32
	HashRef, HashGot     uint64

	// FirstDivergent is the index of the first journal event that
	// differs between the recorded run and the replay (-1 when the
	// streams are identical). RefEvent/GotEvent are the events at that
	// index; nil when one stream ended first.
	FirstDivergent     int
	RefEvent, GotEvent *checkpoint.Event
}

// String formats the report as the one-line-per-fact verdict tilevm
// prints.
func (r *ReplayReport) String() string {
	if r.Match && r.FirstDivergent < 0 {
		return fmt.Sprintf("replay: identical (%d cycles, exit %d, state %#x)",
			r.CyclesGot, r.ExitGot, r.HashGot)
	}
	s := fmt.Sprintf("replay: DIVERGED\n  cycles: recorded %d, replayed %d\n  exit:   recorded %d, replayed %d\n  state:  recorded %#x, replayed %#x",
		r.CyclesRef, r.CyclesGot, r.ExitRef, r.ExitGot, r.HashRef, r.HashGot)
	if r.FirstDivergent >= 0 {
		s += fmt.Sprintf("\n  first divergent event: #%d", r.FirstDivergent)
		if r.RefEvent != nil {
			s += fmt.Sprintf("\n    recorded: cycle %d %s a=%#x b=%#x",
				r.RefEvent.Cycle, r.RefEvent.Kind, r.RefEvent.A, r.RefEvent.B)
		} else {
			s += "\n    recorded: (stream ended)"
		}
		if r.GotEvent != nil {
			s += fmt.Sprintf("\n    replayed: cycle %d %s a=%#x b=%#x",
				r.GotEvent.Cycle, r.GotEvent.Kind, r.GotEvent.A, r.GotEvent.B)
		} else {
			s += "\n    replayed: (stream ended)"
		}
	}
	return s
}

// Replay re-executes a recorded run and compares it against the record:
// final cycle count, exit code, and guest state hash, plus a bisection
// to the first divergent journal event when anything differs. With
// toCycle > 0 the replay halts the simulation at that virtual cycle
// instead of running to completion (the journal prefix up to the halt
// is still compared, which localizes a divergence in time).
func Replay(rec *checkpoint.Record, toCycle uint64) (*ReplayReport, error) {
	return ReplayWorkers(rec, toCycle, 0)
}

// ReplayWorkers is Replay with an explicit simulation worker count.
// The worker count is deliberately not part of the record: the
// parallel engine is bit-identical to the serial loop, so a journal
// recorded at any -sim-workers value replays cleanly at any other.
// (Recorded runs are single-VM and run the serial loop regardless;
// the knob is plumbed so fleet-capable front ends can pass their
// setting through unconditionally.)
func ReplayWorkers(rec *checkpoint.Record, toCycle uint64, simWorkers int) (*ReplayReport, error) {
	rc := rec.Config
	partial := toCycle > 0
	if partial {
		rc.MaxCycles = toCycle
	}
	img, err := recordImage(rc)
	if err != nil {
		return nil, err
	}
	cfg, j, err := recordConfig(rc)
	if err != nil {
		return nil, err
	}
	cfg.SimWorkers = simWorkers
	res, err := core.Run(img, cfg)
	if err != nil && !partial {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("replay: no result: %w", err)
	}

	rep := &ReplayReport{
		CyclesRef: rec.Final.Cycles, CyclesGot: res.Cycles,
		ExitRef: rec.Final.ExitCode, ExitGot: res.ExitCode,
		HashRef: rec.Final.StateHash, HashGot: res.StateHash,
	}
	refEvents, gotEvents := rec.Events, j.Events
	if partial {
		// Compare only the journal prefix both sides could have
		// produced: events past the halt cycle on the recorded side,
		// and the halted replay's own artificial final event, are both
		// artifacts of the truncation, not divergence.
		n := 0
		for n < len(refEvents) && refEvents[n].Cycle <= res.Cycles {
			n++
		}
		refEvents = refEvents[:n]
		if len(gotEvents) < len(refEvents) {
			refEvents = refEvents[:len(gotEvents)]
		} else {
			gotEvents = gotEvents[:len(refEvents)]
		}
		rep.Match = true
	} else {
		rep.Match = res.Cycles == rec.Final.Cycles &&
			res.ExitCode == rec.Final.ExitCode &&
			res.StateHash == rec.Final.StateHash
	}
	rep.FirstDivergent = checkpoint.FirstDivergence(refEvents, gotEvents)
	if rep.FirstDivergent >= 0 {
		rep.Match = false
		if rep.FirstDivergent < len(refEvents) {
			rep.RefEvent = &refEvents[rep.FirstDivergent]
		}
		if rep.FirstDivergent < len(gotEvents) {
			rep.GotEvent = &gotEvents[rep.FirstDivergent]
		}
	}
	return rep, nil
}

// recordImage resolves the guest image a RecordConfig names.
func recordImage(rc checkpoint.RecordConfig) (*guest.Image, error) {
	switch {
	case rc.Workload != "" && rc.ImagePath != "":
		return nil, fmt.Errorf("record names both a workload and an image path")
	case rc.Workload != "":
		p, ok := workload.ByName(rc.Workload)
		if !ok {
			return nil, fmt.Errorf("record names unknown workload %q", rc.Workload)
		}
		return p.Build(), nil
	case rc.ImagePath != "":
		return guest.LoadAutoFile(rc.ImagePath)
	}
	return nil, fmt.Errorf("record names neither a workload nor an image path")
}

// recordConfig builds the engine config a RecordConfig describes, with
// a fresh journal attached.
func recordConfig(rc checkpoint.RecordConfig) (core.Config, *checkpoint.Journal, error) {
	cfg := core.DefaultConfig()
	cfg.Slaves = rc.Slaves
	cfg.Speculative = rc.Speculative
	cfg.L15Banks = rc.L15Banks
	cfg.MemBanks = rc.MemBanks
	cfg.Optimize = rc.Optimize
	cfg.ConservativeFlags = !rc.Optimize
	cfg.Morph = rc.Morph
	cfg.MorphThreshold = rc.MorphThreshold
	cfg.MaxCycles = rc.MaxCycles
	if rc.FaultPlan != "" {
		plan, err := fault.ParsePlan(rc.FaultPlan)
		if err != nil {
			return cfg, nil, fmt.Errorf("record carries a bad fault plan: %w", err)
		}
		plan.Seed = rc.FaultSeed
		cfg.Fault = plan
		cfg.FaultRecovery = rc.FaultRecovery
	}
	cfg.Recovery = core.RecoveryMode(rc.Recovery)
	cfg.CheckpointInterval = rc.CheckpointInterval
	j := &checkpoint.Journal{}
	cfg.Journal = j
	return cfg, j, nil
}
