package bench

import (
	"path/filepath"
	"testing"

	"tilevm/internal/checkpoint"
	"tilevm/internal/core"
)

// recordedRun is the faulted rollback run the record-replay tests
// exercise: a fail-stop bank fault whose excision would lose
// writebacks, so the run checkpoints, rolls back, and re-executes.
func recordedRun() checkpoint.RecordConfig {
	return checkpoint.RecordConfig{
		Workload:           "181.mcf",
		Slaves:             6,
		Speculative:        true,
		L15Banks:           2,
		MemBanks:           4,
		Optimize:           true,
		MorphThreshold:     5,
		FaultPlan:          "fail:7@150000,fail:14@300000,fail:2@450000",
		FaultSeed:          42,
		FaultRecovery:      true,
		Recovery:           uint8(core.RecoverRollback),
		CheckpointInterval: core.DefaultCheckpointInterval,
	}
}

// TestRecordReplayIdenticalCycles pins the determinism contract: a
// recorded run (including a fault, a checkpoint restore, and
// re-execution) replays to the exact cycle count, exit code, state
// hash, and event-for-event journal — surviving a trip through the
// record file encoding.
func TestRecordReplayIdenticalCycles(t *testing.T) {
	res, rec, err := RunRecorded(recordedRun())
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Rollbacks == 0 {
		t.Fatal("the recorded run did not roll back; the test scenario no longer exercises recovery")
	}
	if len(rec.Events) == 0 {
		t.Fatal("recorded run journaled no events")
	}

	path := filepath.Join(t.TempDir(), "run.tvrc")
	if err := checkpoint.WriteRecordFile(path, rec); err != nil {
		t.Fatal(err)
	}
	rec2, err := checkpoint.ReadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Replay(rec2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match || rep.FirstDivergent != -1 {
		t.Fatalf("replay diverged:\n%s", rep)
	}
	if rep.CyclesGot != res.Cycles {
		t.Fatalf("replay cycles %d != recorded %d", rep.CyclesGot, res.Cycles)
	}
}

// TestReplayToCycle: a truncated replay halts at the requested cycle
// and still matches the recorded journal prefix.
func TestReplayToCycle(t *testing.T) {
	_, rec, err := RunRecorded(recordedRun())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(rec, rec.Final.Cycles/2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergent != -1 {
		t.Fatalf("truncated replay diverged from the recorded prefix:\n%s", rep)
	}
	if rep.CyclesGot >= rec.Final.Cycles {
		t.Fatalf("replay-to-cycle did not truncate: ran %d of %d cycles",
			rep.CyclesGot, rec.Final.Cycles)
	}
}

// TestReplayDetectsDivergence: corrupting one journal event in the
// record makes the replay bisect to exactly that event.
func TestReplayDetectsDivergence(t *testing.T) {
	_, rec, err := RunRecorded(recordedRun())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) < 4 {
		t.Fatalf("journal too short to corrupt (%d events)", len(rec.Events))
	}
	victim := len(rec.Events) / 2
	rec.Events[victim].B ^= 1
	rep, err := Replay(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match {
		t.Fatal("replay matched a corrupted record")
	}
	if rep.FirstDivergent != victim {
		t.Fatalf("bisection found event %d, corrupted event %d", rep.FirstDivergent, victim)
	}
}
