package bench

import (
	"testing"

	"tilevm/internal/checkpoint"
)

// TestReplayWorkerCountIndependent pins the -sim-workers/record-replay
// contract: a journal recorded under the default (serial, workers=1)
// engine must replay to an identical verdict with any worker count
// requested, because worker count is never part of recorded semantics —
// the parallel engine is bit-identical and single-VM replays run the
// serial loop regardless. A divergence here would mean the worker knob
// leaked into simulation behavior.
func TestReplayWorkerCountIndependent(t *testing.T) {
	rc := checkpoint.RecordConfig{
		Workload: "164.gzip",
		Slaves:   6, Speculative: true, L15Banks: 2, MemBanks: 4,
		Optimize: true,
	}
	_, rec, err := RunRecorded(rc)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the codec so the on-disk format is what
	// replays, exactly as the CLI path does.
	rec2, err := checkpoint.DecodeRecord(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		rep, err := ReplayWorkers(rec2, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Match || rep.FirstDivergent >= 0 {
			t.Fatalf("workers=%d: replay diverged:\n%s", workers, rep)
		}
	}
}
