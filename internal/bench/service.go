package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"tilevm/internal/service"
)

// TrafficSpec describes a synthetic load against the fleet daemon's
// Service layer. Two generator shapes share it:
//
//   - open loop (Rate > 0): arrivals follow a seeded Poisson process
//     at Rate jobs/sec, independent of completions — the generator
//     never waits, so an overloaded service must shed rather than
//     exert backpressure on the arrival process. BurstFactor > 1
//     overlays on/off burstiness: every BurstEvery arrivals, the next
//     BurstLen arrivals come at Rate*BurstFactor.
//   - closed loop (Rate == 0): Closed workers each keep exactly one
//     job in flight, submitting the next the moment the previous
//     reaches a terminal state. This measures sustainable service
//     capacity with zero queueing pressure beyond the worker count.
//
// All randomness (inter-arrival gaps, workload and class picks) is
// drawn up front from Seed, so the submission *sequence* is
// deterministic even though wall-clock interleaving is not.
type TrafficSpec struct {
	Seed int64
	Jobs int

	// Open-loop knobs.
	Rate        float64 // mean arrivals per second; 0 selects closed loop
	BurstFactor float64 // burst rate multiplier (values <= 1 disable bursts)
	BurstEvery  int     // arrivals between burst onsets
	BurstLen    int     // arrivals per burst

	// Closed-loop knob.
	Closed int // concurrent workers (default 2×slots)

	// Job shape. Workloads are picked uniformly (default 164.gzip);
	// Mix picks the class uniformly (default normal).
	Timeout        time.Duration
	DeadlineCycles uint64
	Workloads      []string
	Mix            []service.Class
}

// LoadResult aggregates one traffic run. Percentiles are exact
// (nearest-rank over the sorted terminal latencies), not estimated
// from histogram buckets.
type LoadResult struct {
	Submitted    int            // submission attempts
	Accepted     int            // admitted to the queue
	RejectedFull int            // structured queue-full rejections
	States       map[string]int // terminal state name -> count (includes "shed")
	Finished     int            // jobs reaching StateFinished

	Wall          time.Duration // first submission to last terminal state
	P50, P95, P99 time.Duration // submit-to-terminal latency over all admitted jobs
	Throughput    float64       // finished jobs per wall-clock second
	HostInsts     uint64        // goodput numerator summed over finished jobs
}

// jobPick is one pre-drawn submission: the deterministic part of an
// arrival, independent of when it lands.
type jobPick struct {
	id       string
	workload string
	class    service.Class
	gap      time.Duration // open loop: wait before submitting
}

// drawPicks materializes the full deterministic submission sequence.
func drawPicks(spec TrafficSpec) []jobPick {
	rng := rand.New(rand.NewSource(spec.Seed))
	workloads := spec.Workloads
	if len(workloads) == 0 {
		workloads = []string{"164.gzip"}
	}
	picks := make([]jobPick, spec.Jobs)
	burstLeft := 0
	for i := range picks {
		rate := spec.Rate
		if spec.BurstFactor > 1 && spec.BurstEvery > 0 {
			if burstLeft > 0 {
				rate *= spec.BurstFactor
				burstLeft--
			} else if i > 0 && i%spec.BurstEvery == 0 {
				burstLeft = spec.BurstLen
			}
		}
		var gap time.Duration
		if rate > 0 {
			gap = time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		}
		class := service.ClassNormal
		if len(spec.Mix) > 0 {
			class = spec.Mix[rng.Intn(len(spec.Mix))]
		}
		picks[i] = jobPick{
			id:       fmt.Sprintf("load-%04d", i),
			workload: workloads[rng.Intn(len(workloads))],
			class:    class,
			gap:      gap,
		}
	}
	return picks
}

// RunServiceLoad drives one traffic run against a fresh Service built
// from cfg and returns the aggregate. The service is drained before
// returning, so every admitted job is terminal in the result. Retain
// is raised to cover the run if the caller left it too small — the
// aggregation reads every job back via List.
func RunServiceLoad(cfg service.Config, spec TrafficSpec) (*LoadResult, error) {
	if spec.Jobs <= 0 {
		return nil, fmt.Errorf("bench: TrafficSpec.Jobs must be positive")
	}
	if cfg.Retain < spec.Jobs {
		cfg.Retain = spec.Jobs
	}
	svc, err := service.New(cfg)
	if err != nil {
		return nil, err
	}

	picks := drawPicks(spec)
	res := &LoadResult{States: map[string]int{}}
	accepted := make([]string, 0, spec.Jobs)

	start := time.Now()
	if spec.Rate > 0 {
		acc, rej, err := runOpenLoop(svc, picks, spec)
		if err != nil {
			return nil, err
		}
		accepted, res.RejectedFull = acc, rej
	} else {
		acc, err := runClosedLoop(svc, picks, spec)
		if err != nil {
			return nil, err
		}
		accepted = acc
	}
	res.Submitted = spec.Jobs
	res.Accepted = len(accepted)

	// Every admitted job reaches a terminal state (finish, fail,
	// timeout, deadline, or shed by a later arrival) — wait for all.
	for _, id := range accepted {
		done, err := svc.Done(id)
		if err != nil {
			return nil, fmt.Errorf("bench: lost track of admitted job %s: %w", id, err)
		}
		<-done
	}
	res.Wall = time.Since(start)
	if err := svc.Drain(context.Background()); err != nil {
		return nil, fmt.Errorf("bench: drain: %w", err)
	}

	lats := make([]time.Duration, 0, len(accepted))
	for _, id := range accepted {
		v, err := svc.Get(id)
		if err != nil {
			return nil, fmt.Errorf("bench: job %s evicted before aggregation: %w", id, err)
		}
		res.States[v.State]++
		if v.FinishedAt != nil {
			lats = append(lats, v.FinishedAt.Sub(v.SubmittedAt))
		}
		if v.State == service.StateFinished.String() {
			res.Finished++
			if v.Result != nil {
				res.HostInsts += v.Result.HostInsts
			}
		}
	}
	res.P50 = percentile(lats, 0.50)
	res.P95 = percentile(lats, 0.95)
	res.P99 = percentile(lats, 0.99)
	if secs := res.Wall.Seconds(); secs > 0 {
		res.Throughput = float64(res.Finished) / secs
	}
	return res, nil
}

// runOpenLoop submits every pick at its scheduled arrival time,
// never waiting for completions. Queue-full rejections are counted;
// any other submission error aborts the run.
func runOpenLoop(svc *service.Service, picks []jobPick, spec TrafficSpec) (accepted []string, rejected int, err error) {
	for _, p := range picks {
		if p.gap > 0 {
			time.Sleep(p.gap)
		}
		_, err := svc.Submit(service.Spec{
			ID:             p.id,
			Workload:       p.workload,
			Class:          p.class,
			Timeout:        spec.Timeout,
			DeadlineCycles: spec.DeadlineCycles,
		})
		switch {
		case err == nil:
			accepted = append(accepted, p.id)
		case isQueueFull(err):
			rejected++
		default:
			return nil, 0, fmt.Errorf("bench: submit %s: %w", p.id, err)
		}
	}
	return accepted, rejected, nil
}

// runClosedLoop keeps Closed jobs in flight: each worker claims the
// next pick, submits it, and blocks on its terminal state before
// claiming another. Submission order across workers is racy, but the
// pick sequence itself is fixed, and a closed loop can never overflow
// a queue deeper than the worker count.
func runClosedLoop(svc *service.Service, picks []jobPick, spec TrafficSpec) ([]string, error) {
	workers := spec.Closed
	if workers <= 0 {
		workers = 2 * svc.Slots()
	}
	if workers > len(picks) {
		workers = len(picks)
	}
	next := make(chan jobPick, len(picks))
	for _, p := range picks {
		next <- p
	}
	close(next)

	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for p := range next {
				_, err := svc.Submit(service.Spec{
					ID:             p.id,
					Workload:       p.workload,
					Class:          p.class,
					Timeout:        spec.Timeout,
					DeadlineCycles: spec.DeadlineCycles,
				})
				if err != nil {
					errc <- fmt.Errorf("bench: submit %s: %w", p.id, err)
					return
				}
				done, err := svc.Done(p.id)
				if err != nil {
					errc <- err
					return
				}
				<-done
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	accepted := make([]string, len(picks))
	for i, p := range picks {
		accepted[i] = p.id
	}
	return accepted, nil
}

func isQueueFull(err error) bool {
	return errors.Is(err, service.ErrQueueFull)
}

// percentile is the exact nearest-rank percentile of the sample; it
// sorts a copy and returns 0 for an empty sample.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// String renders the run as the EXPERIMENTS.md table row body.
func (r *LoadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted %d, accepted %d, rejected %d", r.Submitted, r.Accepted, r.RejectedFull)
	keys := make([]string, 0, len(r.States))
	for k := range r.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, ", %s %d", k, r.States[k])
	}
	fmt.Fprintf(&b, "; %.2f jobs/s, p50 %v p95 %v p99 %v",
		r.Throughput, r.P50.Round(time.Millisecond),
		r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	return b.String()
}

// ServiceOverloadReport is the EXPERIMENTS.md daemon experiment:
// measure the sustainable rate with a closed loop on a 4×4 fabric
// (2 VM slots), then drive a seeded bursty open-loop flood at 2× that
// rate into a deliberately small queue. The report shows both runs;
// the claim under test is that overload degrades structurally — sheds
// and 429s, bounded queue, every admitted job terminal — rather than
// by crash or unbounded backlog.
func ServiceOverloadReport(closedJobs, openJobs int) (string, error) {
	cfg := service.Config{Width: 4, Height: 4, QueueCap: 4}
	closed, err := RunServiceLoad(cfg, TrafficSpec{Seed: 1, Jobs: closedJobs})
	if err != nil {
		return "", fmt.Errorf("closed loop: %w", err)
	}
	sustainable := closed.Throughput
	open, err := RunServiceLoad(cfg, TrafficSpec{
		Seed:        42,
		Jobs:        openJobs,
		Rate:        2 * sustainable,
		BurstFactor: 4,
		BurstEvery:  8,
		BurstLen:    4,
		Timeout:     30 * time.Second,
		Mix:         []service.Class{service.ClassLow, service.ClassNormal, service.ClassHigh},
	})
	if err != nil {
		return "", fmt.Errorf("open loop at 2x: %w", err)
	}
	terminal := 0
	for _, n := range open.States {
		terminal += n
	}
	if terminal != open.Accepted {
		return "", fmt.Errorf("accounting hole: %d admitted, %d terminal", open.Accepted, terminal)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "| run | offered | accepted | 429s | shed | finished | jobs/s | p50 | p95 | p99 |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|\n")
	row := func(name string, r *LoadResult) {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %.1f | %v | %v | %v |\n",
			name, r.Submitted, r.Accepted, r.RejectedFull,
			r.States[service.StateShed.String()], r.Finished, r.Throughput,
			r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond),
			r.P99.Round(time.Millisecond))
	}
	row("closed loop (capacity probe)", closed)
	row(fmt.Sprintf("open loop @ 2x (%.0f/s, 4x bursts)", 2*sustainable), open)
	return b.String(), nil
}

// ServiceThroughputBench is the simbench entry: a closed-loop run of
// short gzip jobs over a 4×4 fabric (2 VM slots), reporting mean
// seconds per finished job. Wall-clock, so BENCH_sim.json gates it
// with a generous time tolerance.
func ServiceThroughputBench(jobs int) (secPerJob float64, res *LoadResult, err error) {
	if jobs <= 0 {
		jobs = 8
	}
	res, err = RunServiceLoad(service.Config{
		Width:    4,
		Height:   4,
		QueueCap: jobs,
	}, TrafficSpec{
		Seed: 1,
		Jobs: jobs,
	})
	if err != nil {
		return 0, nil, err
	}
	if res.Finished != jobs {
		return 0, res, fmt.Errorf("bench: %d of %d closed-loop jobs finished", res.Finished, jobs)
	}
	return res.Wall.Seconds() / float64(res.Finished), res, nil
}
