package bench

import (
	"testing"
	"time"

	"tilevm/internal/service"
)

func TestDrawPicksDeterministic(t *testing.T) {
	spec := TrafficSpec{
		Seed: 7, Jobs: 50, Rate: 100,
		BurstFactor: 4, BurstEvery: 10, BurstLen: 5,
		Workloads: []string{"164.gzip", "181.mcf"},
		Mix:       []service.Class{service.ClassLow, service.ClassNormal, service.ClassHigh},
	}
	a, b := drawPicks(spec), drawPicks(spec)
	if len(a) != 50 {
		t.Fatalf("drew %d picks", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Bursty picks compress the mean gap: arrivals 11..15 run at 4×
	// the base rate, so their gaps should on average undercut the
	// overall mean. Check only the structural property that some gap
	// variation exists and all gaps are non-negative.
	for i, p := range a {
		if p.gap < 0 {
			t.Fatalf("pick %d has negative gap %v", i, p.gap)
		}
	}
}

func TestPercentileExact(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 3}, {0.95, 5}, {0.99, 5}, {0.20, 1}, {1.0, 5}} {
		if got := percentile(lats, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

// TestClosedLoopLoad runs a small closed-loop load over one real VM
// slot: every job must finish, and the aggregate must account for
// every submission.
func TestClosedLoopLoad(t *testing.T) {
	res, err := RunServiceLoad(service.Config{
		Width: 4, Height: 2, QueueCap: 8,
	}, TrafficSpec{
		Seed: 1, Jobs: 3, Closed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Finished != 3 || res.RejectedFull != 0 {
		t.Fatalf("closed loop: %+v", res)
	}
	if res.States[service.StateFinished.String()] != 3 {
		t.Errorf("states = %v", res.States)
	}
	if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 {
		t.Errorf("latency percentiles disordered: p50 %v p95 %v p99 %v", res.P50, res.P95, res.P99)
	}
	if res.HostInsts == 0 {
		t.Error("finished jobs retired no host instructions")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v", res.Throughput)
	}
	t.Log(res)
}

// TestOpenLoopOverload floods a tiny queue at an arrival rate far
// beyond one slot's capacity: the service must stay up, keep memory
// bounded (queue cap + retention), and resolve every admitted job to
// a terminal state — with the overflow surfacing as structured
// rejections or sheds, never a crash.
func TestOpenLoopOverload(t *testing.T) {
	res, err := RunServiceLoad(service.Config{
		Width: 4, Height: 2, QueueCap: 2,
	}, TrafficSpec{
		Seed: 42, Jobs: 12, Rate: 2000,
		BurstFactor: 4, BurstEvery: 4, BurstLen: 2,
		Mix: []service.Class{service.ClassLow, service.ClassNormal, service.ClassHigh},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.RejectedFull != res.Submitted {
		t.Fatalf("accounting hole: %+v", res)
	}
	terminal := 0
	for _, n := range res.States {
		terminal += n
	}
	if terminal != res.Accepted {
		t.Fatalf("%d admitted but %d terminal: %v", res.Accepted, terminal, res.States)
	}
	// At 2000 jobs/s against one slot, overload must manifest.
	if res.RejectedFull == 0 && res.States[service.StateShed.String()] == 0 {
		t.Errorf("no rejections or sheds under 2000/s flood: %+v", res)
	}
	if res.Finished == 0 {
		t.Errorf("overload starved all jobs: %v", res.States)
	}
	t.Log(res)
}

// TestServiceOverloadExperiment regenerates the EXPERIMENTS.md daemon
// table: a closed-loop capacity probe, then a seeded bursty open-loop
// flood at 2× the measured sustainable rate.
func TestServiceOverloadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	table, err := ServiceOverloadReport(8, 48)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + table)
}

func TestServiceThroughputBench(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bench")
	}
	sec, res, err := ServiceThroughputBench(4)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("seconds per job = %v", sec)
	}
	t.Logf("%.3fs/job over %d jobs (%s)", sec, res.Finished, res)
}
