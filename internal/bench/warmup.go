package bench

import (
	"fmt"

	"tilevm/internal/core"
)

// WarmupInsts is the cold-start probe point: virtual cycles from guest
// arrival to the first 10k retired host instructions.
const WarmupInsts = 10_000

// WarmupWorkload is the guest the warmup bench measures.
const WarmupWorkload = "164.gzip"

// WarmupResult compares tier-0 cold start against the optimizing-only
// pipeline. All values are deterministic virtual cycles, not wall
// clock, so the regression gate can hold them to a tight tolerance.
type WarmupResult struct {
	Workload string `json:"workload"`
	Insts    uint64 `json:"insts"`

	// Default configuration (run-ahead speculation on): tier-0 serves
	// the demand misses speculation has not covered yet.
	Tier0Cycles uint64  `json:"tier0_cycles"`
	OptCycles   uint64  `json:"opt_cycles"`
	Speedup     float64 `json:"speedup"` // OptCycles / Tier0Cycles

	// The paper's base configuration (no speculation): every
	// translation is demand work, so tier-0 carries the whole cold
	// path and the latency win is largest.
	Tier0CyclesNoSpec uint64  `json:"tier0_cycles_nospec"`
	OptCyclesNoSpec   uint64  `json:"opt_cycles_nospec"`
	SpeedupNoSpec     float64 `json:"speedup_nospec"`
}

// WarmupBench measures guest arrival → first WarmupInsts retired host
// instructions with the template tier on and off, under both the
// default (speculative) and the paper's base (non-speculative)
// configuration.
func (s *Suite) WarmupBench() (*WarmupResult, error) {
	img := s.image(WarmupWorkload)
	warm := func(tier0, spec bool) (uint64, error) {
		cfg := core.DefaultConfig()
		cfg.Tier0 = tier0
		cfg.Speculative = spec
		cfg.WarmupInsts = WarmupInsts
		r, err := core.Run(img, cfg)
		if err != nil {
			return 0, fmt.Errorf("warmup (tier0=%v spec=%v): %w", tier0, spec, err)
		}
		if r.M.WarmupCycles == 0 {
			return 0, fmt.Errorf("warmup (tier0=%v spec=%v): probe never fired", tier0, spec)
		}
		return r.M.WarmupCycles, nil
	}
	out := &WarmupResult{Workload: WarmupWorkload, Insts: WarmupInsts}
	var err error
	if out.Tier0Cycles, err = warm(true, true); err != nil {
		return nil, err
	}
	if out.OptCycles, err = warm(false, true); err != nil {
		return nil, err
	}
	if out.Tier0CyclesNoSpec, err = warm(true, false); err != nil {
		return nil, err
	}
	if out.OptCyclesNoSpec, err = warm(false, false); err != nil {
		return nil, err
	}
	out.Speedup = float64(out.OptCycles) / float64(out.Tier0Cycles)
	out.SpeedupNoSpec = float64(out.OptCyclesNoSpec) / float64(out.Tier0CyclesNoSpec)
	return out, nil
}
