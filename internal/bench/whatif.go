package bench

import (
	"fmt"
	"strings"

	"tilevm/internal/core"
)

// Hardware what-if analysis (paper §4.5 and §5): the paper identifies
// the architectural deficiencies of the all-software approach — no
// MMU, so every guest load pays a 4-cycle software translation
// occupancy; and no hardware instruction cache, so the lowest-level
// code cache is capped at the 32KB tile instruction memory and
// chaining cannot span it. This experiment re-runs the suite with
// those pieces of hardware modeled, quantifying the §4.5 predictions:
// an MMU "would primarily reduce the cost of an aligned L1 cache hit
// to one cycle", and a hardware I-cache "could be large enough to hold
// the instruction working set" with chaining throughout.

// hwMMU models the guest-TLB load/store hardware of §5.
func hwMMU(c *core.Config) {
	c.Params.GuestL1HitOcc = 1
	c.Params.GuestL1HitLat = 3
	c.Params.GuestStoreOcc = 1
	c.Params.MMULookupOcc = 4 // hardware lookup at the directory tile
	c.Params.TLBMissOcc = 20
}

// hwICache models a hardware instruction cache: the L1 code cache
// becomes a 512KB virtual space (tags in hardware, backing in DRAM),
// large enough for every working set, with hardware-assisted fills.
func hwICache(c *core.Config) {
	c.Params.IMemBytes = 512 * 1024
	c.Params.L1CopyWordOcc = 1
	c.Params.L1LookupOcc = 4
}

// HardwareWhatIf runs the suite under the §4.5 hardware variants.
func (s *Suite) HardwareWhatIf() (*Figure, error) {
	configs := []namedConfig{
		{"all software (paper)", with()},
		{"+ hardware MMU", with(hwMMU)},
		{"+ hardware I-cache", with(hwICache)},
		{"+ both", with(hwMMU, hwICache)},
	}
	series, err := s.sweep(configs, slowdownMetric)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:       "What-if",
		Title:      "§4.5 hardware-assist analysis: MMU and hardware I-cache",
		Metric:     "slowdown vs Pentium III (lower is better)",
		Benchmarks: s.Benchmarks(),
		Series:     series,
		Notes: "paper predicts the MMU removes most of the 3.9x memory factor and the " +
			"I-cache removes the high-end code-cache penalty (gcc/crafty/vortex)",
	}, nil
}

// Utilization reports per-tile busy fractions under the default
// configuration — the congestion evidence behind Figure 6's analysis
// (the manager tile saturates on the high-slowdown benchmarks).
func (s *Suite) Utilization(benchName string) (string, error) {
	r, err := s.Run(benchName, "default", with())
	if err != nil {
		return "", err
	}
	roles := map[int]string{
		0: "syscall", 4: "manager", 5: "exec", 6: "mmu",
		1: "l1.5", 9: "l1.5", 10: "dbank",
		2: "dbank", 14: "dbank", 7: "dbank",
		3: "slave", 8: "slave", 11: "slave", 12: "slave", 13: "slave", 15: "slave",
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tile utilization, %s, default config (%d cycles)\n", benchName, r.Cycles)
	for tile, busy := range r.TileBusy {
		fmt.Fprintf(&b, "  tile %2d  %-8s %6.1f%%\n",
			tile, roles[tile], 100*float64(busy)/float64(r.Cycles))
	}
	return b.String(), nil
}
