// Package cachesim provides a set-associative, write-back, LRU cache
// timing model. It tracks tags and dirty bits only (no data): the
// simulated machines keep backing data in flat guest memory, and the
// caches decide what each access costs. The model is shared by the Raw
// tile data caches, the L2 data-cache bank tiles, and the Pentium III
// baseline hierarchy.
package cachesim

import "fmt"

type line struct {
	tag   uint32
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is one level of set-associative cache.
type Cache struct {
	sets      int
	ways      int
	lineBytes int
	setShift  uint
	lineShift uint
	lines     []line // sets*ways, way-major within set
	stamp     uint64

	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache of the given total size, associativity, and line
// size. Size must be a multiple of ways*lineBytes and all parameters
// powers of two.
func New(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cachesim: bad geometry %d/%d/%d", sizeBytes, ways, lineBytes))
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets == 0 || sets&(sets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cachesim: non-power-of-two geometry: %d sets, %d-byte lines", sets, lineBytes))
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		lineShift: log2(lineBytes),
		setShift:  log2(lineBytes) + log2(sets),
		lines:     make([]line, sets*ways),
	}
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Result describes the outcome of one access.
type Result struct {
	Hit         bool
	WritebackOf uint32 // line address written back, if Writeback
	Writeback   bool   // a dirty line was evicted
	LineAddr    uint32 // line-aligned address of the accessed line
}

// Access touches addr. write marks the line dirty. On a miss the line is
// filled (allocate-on-write policy) and the LRU victim evicted.
func (c *Cache) Access(addr uint32, write bool) Result {
	c.Accesses++
	c.stamp++
	lineAddr := addr &^ uint32(c.lineBytes-1)
	set := int(addr>>c.lineShift) & (c.sets - 1)
	tag := addr >> c.setShift
	base := set * c.ways

	victim := base
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			l.used = c.stamp
			if write {
				l.dirty = true
			}
			return Result{Hit: true, LineAddr: lineAddr}
		}
		if !c.lines[victim].valid {
			continue // keep first invalid victim
		}
		if !l.valid || l.used < c.lines[victim].used {
			victim = i
		}
	}

	c.Misses++
	res := Result{LineAddr: lineAddr}
	v := &c.lines[victim]
	if v.valid {
		c.Evictions++
		if v.dirty {
			res.Writeback = true
			res.WritebackOf = c.victimAddr(set, v.tag)
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, used: c.stamp}
	return res
}

// Contains reports whether addr's line is resident, without touching
// LRU state or counters.
func (c *Cache) Contains(addr uint32) bool {
	set := int(addr>>c.lineShift) & (c.sets - 1)
	tag := addr >> c.setShift
	for i := set * c.ways; i < (set+1)*c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) victimAddr(set int, tag uint32) uint32 {
	return tag<<c.setShift | uint32(set)<<c.lineShift
}

// FlushAll invalidates every line and returns the number of dirty lines
// that required writeback (the reconfiguration flush cost driver).
func (c *Cache) FlushAll() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

// DirtyLines counts currently dirty lines without modifying state.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return n
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineBytes }

// MissRate returns misses/accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears the counters but keeps cache contents.
func (c *Cache) ResetStats() { c.Accesses, c.Misses, c.Evictions = 0, 0, 0 }

// LineState is one cache line in an exported snapshot.
type LineState struct {
	Tag   uint32
	Valid bool
	Dirty bool
	Used  uint64
}

// State is a restorable snapshot of a cache: full tag/LRU/dirty
// contents plus counters. The geometry itself is not captured — a
// snapshot can only be imported into a cache of identical geometry.
type State struct {
	Lines     []LineState
	Stamp     uint64
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// Export snapshots the cache contents and counters.
func (c *Cache) Export() State {
	s := State{
		Lines:     make([]LineState, len(c.lines)),
		Stamp:     c.stamp,
		Accesses:  c.Accesses,
		Misses:    c.Misses,
		Evictions: c.Evictions,
	}
	for i, l := range c.lines {
		s.Lines[i] = LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, Used: l.used}
	}
	return s
}

// Import restores a snapshot taken from a cache of the same geometry.
func (c *Cache) Import(s State) error {
	if len(s.Lines) != len(c.lines) {
		return fmt.Errorf("cachesim: snapshot has %d lines, cache has %d", len(s.Lines), len(c.lines))
	}
	for i, l := range s.Lines {
		c.lines[i] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, used: l.Used}
	}
	c.stamp = s.Stamp
	c.Accesses, c.Misses, c.Evictions = s.Accesses, s.Misses, s.Evictions
	return nil
}
