package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHitAfterFill(t *testing.T) {
	c := New(1024, 2, 32)
	if r := c.Access(0x100, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x11c, false); !r.Hit {
		t.Error("same-line access missed")
	}
	if r := c.Access(0x120, false); r.Hit {
		t.Error("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 32B lines, 2 sets (128 bytes total).
	c := New(128, 2, 32)
	// Three lines mapping to set 0: addresses 0, 64, 128 (set stride 64).
	c.Access(0, false)
	c.Access(64, false)
	c.Access(0, false)   // touch 0, making 64 the LRU victim
	c.Access(128, false) // must evict 64
	if !c.Contains(0) {
		t.Error("line 0 evicted, expected LRU to keep it")
	}
	if c.Contains(64) {
		t.Error("line 64 should have been evicted")
	}
	if !c.Contains(128) {
		t.Error("line 128 not resident")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(128, 2, 32)
	c.Access(0, true) // dirty
	c.Access(64, false)
	c.Access(128, false) // evicts 0 (LRU), dirty → writeback
	found := false
	// Re-run deterministically to capture the result.
	c2 := New(128, 2, 32)
	c2.Access(0, true)
	c2.Access(64, false)
	r := c2.Access(128, false)
	if r.Writeback && r.WritebackOf == 0 {
		found = true
	}
	if !found {
		t.Errorf("expected writeback of line 0, got %+v", r)
	}
	// Clean eviction: no writeback.
	c3 := New(128, 2, 32)
	c3.Access(0, false)
	c3.Access(64, false)
	if r := c3.Access(128, false); r.Writeback {
		t.Error("clean eviction reported writeback")
	}
}

func TestFlushAll(t *testing.T) {
	c := New(1024, 2, 32)
	c.Access(0, true)
	c.Access(32, true)
	c.Access(64, false)
	if got := c.DirtyLines(); got != 2 {
		t.Errorf("DirtyLines = %d, want 2", got)
	}
	if got := c.FlushAll(); got != 2 {
		t.Errorf("FlushAll = %d, want 2", got)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Error("lines survive flush")
	}
	if got := c.FlushAll(); got != 0 {
		t.Errorf("second FlushAll = %d, want 0", got)
	}
}

func TestStats(t *testing.T) {
	c := New(1024, 4, 32)
	for i := 0; i < 10; i++ {
		c.Access(uint32(i*32), false)
	}
	for i := 0; i < 10; i++ {
		c.Access(uint32(i*32), false)
	}
	if c.Accesses != 20 || c.Misses != 10 {
		t.Errorf("stats = %d/%d, want 20/10", c.Accesses, c.Misses)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
	c.ResetStats()
	if c.Accesses != 0 || c.MissRate() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to the cache size must stop missing after the
	// first pass (fully-associative behaviour is not required, but a
	// power-of-two sweep maps uniformly).
	c := New(4096, 4, 32)
	for pass := 0; pass < 3; pass++ {
		for a := uint32(0); a < 4096; a += 32 {
			c.Access(a, false)
		}
	}
	if c.Misses != 4096/32 {
		t.Errorf("misses = %d, want %d (cold only)", c.Misses, 4096/32)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Working set 2× capacity with LRU and a sequential sweep misses
	// every access after warmup.
	c := New(1024, 2, 32)
	var missesLastPass uint64
	for pass := 0; pass < 4; pass++ {
		before := c.Misses
		for a := uint32(0); a < 2048; a += 32 {
			c.Access(a, false)
		}
		missesLastPass = c.Misses - before
	}
	if missesLastPass != 2048/32 {
		t.Errorf("last-pass misses = %d, want all %d", missesLastPass, 2048/32)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(128, 2, 32)
	c.Access(0, false)
	c.Access(64, false)
	for i := 0; i < 10; i++ {
		c.Contains(64) // must not refresh LRU
	}
	c.Access(0, false)
	c.Access(128, false) // LRU victim must still be 64
	if c.Contains(64) {
		t.Error("Contains refreshed LRU state")
	}
}

func TestPropertyContainsAfterAccess(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(2048, 2, 64)
		for i := 0; i < 200; i++ {
			a := uint32(r.Intn(1 << 16))
			c.Access(a, r.Intn(2) == 0)
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDirtyCountMatchesWritebacks(t *testing.T) {
	// Invariant: dirty lines created == writebacks observed + dirty
	// lines still resident. Every write dirties exactly one line; a line
	// stays dirty until written back (eviction) or flushed.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(512, 2, 32)
		writebacks := 0
		dirtied := map[uint32]bool{}
		for i := 0; i < 500; i++ {
			a := uint32(r.Intn(1 << 13))
			res := c.Access(a, r.Intn(3) == 0)
			if r.Intn(3) == 0 {
				dirtied[res.LineAddr] = true
			}
			if res.Writeback {
				writebacks++
			}
		}
		return writebacks+c.DirtyLines() <= 500 // sanity: bounded by writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 32}, {1024, 3, 32}, {100, 2, 24}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", g)
				}
			}()
			New(g[0], g[1], g[2])
		}()
	}
}
