package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"reflect"
	"sort"

	"tilevm/internal/cachesim"
	"tilevm/internal/guest"
	"tilevm/internal/mmu"
)

// Binary format: a 4-byte magic, a fixed-width little-endian version,
// a uvarint-encoded body, and a trailing CRC32 (IEEE) over everything
// before it. The encoding is canonical — maps are emitted in sorted key
// order — so encode(decode(encode(s))) == encode(s) byte for byte.
const (
	stateMagic  = "TVCK"
	recordMagic = "TVRC"
	// codecVer 2 added the tiered-translation section (Tier0PCs, Hot)
	// and the tier-0 metrics counters.
	codecVer = 2
)

type writer struct {
	buf []byte
}

func (w *writer) u64(v uint64)  { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) u32(v uint32)  { w.u64(uint64(v)) }
func (w *writer) i64(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) b(v bool)      { w.buf = append(w.buf, boolByte(v)) }
func (w *writer) raw(p []byte)  { w.buf = append(w.buf, p...) }
func (w *writer) blob(p []byte) { w.u64(uint64(len(p))); w.raw(p) }
func (w *writer) str(s string)  { w.blob([]byte(s)) }

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// reader is the bounds-checked decoder. Every length and count is
// validated against the remaining input before allocation, so a
// corrupt or adversarial (fuzzed) buffer cannot force huge
// allocations; the first malformed field latches err and subsequent
// reads return zero values.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("checkpoint: truncated uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) u32() uint32 {
	v := r.u64()
	if v > 0xffffffff {
		r.fail("checkpoint: uvarint %d overflows uint32", v)
		return 0
	}
	return uint32(v)
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("checkpoint: truncated varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) b() bool {
	if r.err != nil || r.remaining() < 1 {
		r.fail("checkpoint: truncated bool")
		return false
	}
	v := r.buf[r.off]
	r.off++
	if v > 1 {
		r.fail("checkpoint: bad bool byte %d", v)
		return false
	}
	return v == 1
}

// count reads an element count for a sequence whose elements occupy at
// least minElemBytes each, rejecting counts the remaining input cannot
// possibly hold.
func (r *reader) count(minElemBytes int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.remaining()/minElemBytes) {
		r.fail("checkpoint: count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

func (r *reader) blob() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) str() string { return string(r.blob()) }

// putUints/getUints encode a struct of uint64 counter fields
// (metrics.Set, fault.Counts) by reflection, prefixed with the field
// count so older decoders reject newer layouts cleanly.
func putUints(w *writer, v any) {
	rv := reflect.ValueOf(v).Elem()
	w.u64(uint64(rv.NumField()))
	for i := 0; i < rv.NumField(); i++ {
		w.u64(rv.Field(i).Uint())
	}
}

func getUints(r *reader, v any) {
	rv := reflect.ValueOf(v).Elem()
	n := r.count(1)
	if r.err != nil {
		return
	}
	if n != rv.NumField() {
		r.fail("checkpoint: %s has %d fields, input has %d", rv.Type(), rv.NumField(), n)
		return
	}
	for i := 0; i < n; i++ {
		rv.Field(i).SetUint(r.u64())
	}
}

func putCache(w *writer, s *cachesim.State) {
	w.u64(uint64(len(s.Lines)))
	for _, l := range s.Lines {
		w.u32(l.Tag)
		w.b(l.Valid)
		w.b(l.Dirty)
		w.u64(l.Used)
	}
	w.u64(s.Stamp)
	w.u64(s.Accesses)
	w.u64(s.Misses)
	w.u64(s.Evictions)
}

func getCache(r *reader, s *cachesim.State) {
	n := r.count(4)
	if r.err != nil {
		return
	}
	s.Lines = make([]cachesim.LineState, n)
	for i := range s.Lines {
		s.Lines[i] = cachesim.LineState{Tag: r.u32(), Valid: r.b(), Dirty: r.b(), Used: r.u64()}
	}
	s.Stamp = r.u64()
	s.Accesses = r.u64()
	s.Misses = r.u64()
	s.Evictions = r.u64()
}

func putU32s(w *writer, vs []uint32) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u32(v)
	}
}

func getU32s(r *reader) []uint32 {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

// EncodeState serializes a snapshot into the versioned, checksummed
// binary format.
func EncodeState(s *State) []byte {
	w := &writer{buf: make([]byte, 0, 1024)}
	w.raw([]byte(stateMagic))
	w.buf = binary.LittleEndian.AppendUint16(w.buf, codecVer)

	w.u64(s.Seq)
	w.u64(s.Cycles)

	for _, reg := range s.CPU.R {
		w.u32(reg)
	}
	w.u32(s.CPU.Flags)
	w.u32(s.CPU.PC)

	w.b(s.Kern.Exited)
	w.i64(int64(s.Kern.ExitCode))
	w.blob(s.Kern.Stdout)
	w.blob(s.Kern.Stdin)
	w.i64(s.Kern.StdinOff)
	w.u32(s.Kern.Brk)
	w.u32(s.Kern.MmapTop)
	w.u32(s.Kern.Clock)
	w.u64(s.Kern.Calls)

	// Memory image, pages in index order. Shared (incremental) pages
	// are written in full: the encoded snapshot is self-contained.
	if s.Mem == nil {
		w.u64(0)
	} else {
		idxs := make([]uint32, 0, len(s.Mem.Pages))
		for idx := range s.Mem.Pages {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		w.u64(uint64(len(idxs)))
		for _, idx := range idxs {
			w.u32(idx)
			w.raw(s.Mem.Pages[idx])
		}
	}

	putU32s(w, s.MMU.Page)
	putU32s(w, s.MMU.Frame)
	w.u64(uint64(len(s.MMU.Used)))
	for _, v := range s.MMU.Used {
		w.u64(v)
	}
	w.u64(uint64(len(s.MMU.Valid)))
	for _, v := range s.MMU.Valid {
		w.b(v)
	}
	w.u64(s.MMU.Stamp)
	w.u64(s.MMU.Lookups)
	w.u64(s.MMU.Misses)
	w.u64(s.MMU.Flushes)
	w.u64(uint64(len(s.MMU.PT)))
	for _, e := range s.MMU.PT {
		w.u32(e.VPN)
		w.u32(e.Frame)
	}
	w.u32(s.MMU.NextFrame)
	w.u64(s.MMU.Walks)

	putCache(w, &s.DL1)

	putU32s(w, s.L1.PCs)
	w.u64(s.L1.Lookups)
	w.u64(s.L1.Hits)
	w.u64(s.L1.Flushes)
	w.u64(s.L1.Chains)

	putU32s(w, s.L2C.PCs)
	w.u64(s.L2C.Accesses)
	w.u64(s.L2C.Misses)
	w.u64(s.L2C.Stores)

	w.u64(uint64(len(s.Queues)))
	for _, q := range s.Queues {
		w.u32(q.PC)
		w.i64(int64(q.Depth))
	}
	putU32s(w, s.Spec)
	putU32s(w, s.Bad)

	w.u64(uint64(len(s.Banks)))
	for i := range s.Banks {
		b := &s.Banks[i]
		w.i64(int64(b.Tile))
		putCache(w, &b.Cache)
		w.u64(b.Requests)
		w.u64(b.Misses)
		w.u64(b.Flushes)
		w.u64(b.Writeback)
	}

	w.u64(s.SMC.Gen)
	putU32s(w, s.SMC.CodePages)
	w.u64(uint64(len(s.SMC.Inval)))
	for _, pi := range s.SMC.Inval {
		w.u32(pi.Page)
		w.u64(pi.Gen)
	}

	putU32s(w, s.Tier0PCs)
	w.u64(uint64(len(s.Hot)))
	for _, h := range s.Hot {
		w.u32(h.PC)
		w.u64(h.Insts)
	}

	putUints(w, &s.Metrics)
	putUints(w, &s.Faults)

	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// DecodeState parses a snapshot, validating the magic, version,
// checksum, and every length field.
func DecodeState(data []byte) (*State, error) {
	body, err := checkFrame(data, stateMagic)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}

	s := &State{}
	s.Seq = r.u64()
	s.Cycles = r.u64()

	for i := range s.CPU.R {
		s.CPU.R[i] = r.u32()
	}
	s.CPU.Flags = r.u32()
	s.CPU.PC = r.u32()

	s.Kern.Exited = r.b()
	s.Kern.ExitCode = int32(r.i64())
	s.Kern.Stdout = r.blob()
	s.Kern.Stdin = r.blob()
	s.Kern.StdinOff = r.i64()
	s.Kern.Brk = r.u32()
	s.Kern.MmapTop = r.u32()
	s.Kern.Clock = r.u32()
	s.Kern.Calls = r.u64()

	nPages := r.count(guest.PageBytes + 1)
	s.Mem = &guest.MemImage{Pages: make(map[uint32][]byte, nPages)}
	for i := 0; i < nPages; i++ {
		idx := r.u32()
		if r.err != nil || r.remaining() < guest.PageBytes {
			r.fail("checkpoint: truncated memory page")
			break
		}
		page := make([]byte, guest.PageBytes)
		copy(page, r.buf[r.off:])
		r.off += guest.PageBytes
		if _, dup := s.Mem.Pages[idx]; dup {
			r.fail("checkpoint: duplicate memory page %d", idx)
			break
		}
		s.Mem.Pages[idx] = page
	}

	s.MMU.Page = getU32s(r)
	s.MMU.Frame = getU32s(r)
	if n := r.count(1); r.err == nil {
		s.MMU.Used = make([]uint64, n)
		for i := range s.MMU.Used {
			s.MMU.Used[i] = r.u64()
		}
	}
	if n := r.count(1); r.err == nil {
		s.MMU.Valid = make([]bool, n)
		for i := range s.MMU.Valid {
			s.MMU.Valid[i] = r.b()
		}
	}
	s.MMU.Stamp = r.u64()
	s.MMU.Lookups = r.u64()
	s.MMU.Misses = r.u64()
	s.MMU.Flushes = r.u64()
	if n := r.count(2); r.err == nil {
		s.MMU.PT = make([]mmu.PTEntry, n)
		for i := range s.MMU.PT {
			s.MMU.PT[i] = mmu.PTEntry{VPN: r.u32(), Frame: r.u32()}
		}
	}
	s.MMU.NextFrame = r.u32()
	s.MMU.Walks = r.u64()

	getCache(r, &s.DL1)

	s.L1.PCs = getU32s(r)
	s.L1.Lookups = r.u64()
	s.L1.Hits = r.u64()
	s.L1.Flushes = r.u64()
	s.L1.Chains = r.u64()

	s.L2C.PCs = getU32s(r)
	s.L2C.Accesses = r.u64()
	s.L2C.Misses = r.u64()
	s.L2C.Stores = r.u64()

	if n := r.count(2); r.err == nil {
		s.Queues = make([]QueuedPC, n)
		for i := range s.Queues {
			s.Queues[i] = QueuedPC{PC: r.u32(), Depth: int32(r.i64())}
		}
	}
	s.Spec = getU32s(r)
	s.Bad = getU32s(r)

	if n := r.count(8); r.err == nil {
		s.Banks = make([]BankState, n)
		for i := range s.Banks {
			b := &s.Banks[i]
			b.Tile = int32(r.i64())
			getCache(r, &b.Cache)
			b.Requests = r.u64()
			b.Misses = r.u64()
			b.Flushes = r.u64()
			b.Writeback = r.u64()
		}
	}

	s.SMC.Gen = r.u64()
	s.SMC.CodePages = getU32s(r)
	if n := r.count(2); r.err == nil {
		s.SMC.Inval = make([]PageInval, n)
		for i := range s.SMC.Inval {
			s.SMC.Inval[i] = PageInval{Page: r.u32(), Gen: r.u64()}
		}
	}

	s.Tier0PCs = getU32s(r)
	if n := r.count(2); r.err == nil {
		s.Hot = make([]HotPC, n)
		for i := range s.Hot {
			s.Hot[i] = HotPC{PC: r.u32(), Insts: r.u64()}
		}
	}

	getUints(r, &s.Metrics)
	getUints(r, &s.Faults)

	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", r.remaining())
	}
	return s, nil
}

// checkFrame validates magic, version and the trailing CRC32, returning
// the body between the header and the checksum.
func checkFrame(data []byte, magic string) ([]byte, error) {
	hdr := len(magic) + 2
	if len(data) < hdr+4 {
		return nil, fmt.Errorf("checkpoint: input too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != codecVer {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", v, codecVer)
	}
	payload := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (got %#x, want %#x)", got, want)
	}
	return payload[hdr:], nil
}
