package checkpoint

import (
	"bytes"
	"testing"

	"tilevm/internal/cachesim"
	"tilevm/internal/guest"
	"tilevm/internal/mmu"
)

// sampleState builds a representative snapshot exercising every section
// of the encoding: sparse memory pages, TLB and page-table entries,
// cache lines, code-cache PC lists, queued work, banks, and SMC maps.
func sampleState() *State {
	page := func(fill byte) []byte {
		p := make([]byte, guest.PageBytes)
		for i := range p {
			p[i] = fill + byte(i)
		}
		return p
	}
	s := &State{
		Seq:    3,
		Cycles: 314_159,
		CPU:    guest.CPU{R: [8]uint32{1, 2, 3, 4, 5, 6, 7, 8}, Flags: 0x246, PC: 0x80481a0},
		Kern: guest.KernelState{
			Exited:   false,
			ExitCode: 0,
			Stdout:   []byte("hello from the guest\n"),
			Stdin:    []byte("input"),
			StdinOff: 2,
			Brk:      0x0900_0000,
			MmapTop:  0xbf00_0000,
			Clock:    12,
			Calls:    34,
		},
		Mem: &guest.MemImage{Pages: map[uint32][]byte{
			0:      page(0x11),
			7:      page(0x22),
			0x8048: page(0x33),
		}},
		MMU: mmu.State{
			Page:      []uint32{1, 2, 3},
			Frame:     []uint32{10, 20, 30},
			Used:      []uint64{5, 6, 7},
			Valid:     []bool{true, false, true},
			Stamp:     8,
			Lookups:   100,
			Misses:    9,
			Flushes:   1,
			PT:        []mmu.PTEntry{{VPN: 4, Frame: 40}, {VPN: 5, Frame: 50}},
			NextFrame: 51,
			Walks:     9,
		},
		DL1: cachesim.State{
			Lines: []cachesim.LineState{
				{Tag: 0x1000, Valid: true, Dirty: true, Used: 77},
				{Tag: 0, Valid: false, Dirty: false, Used: 0},
			},
			Stamp: 78, Accesses: 1000, Misses: 50, Evictions: 12,
		},
		L1:     CodeL1State{PCs: []uint32{0x8048000, 0x8048020}, Lookups: 5000, Hits: 4900, Flushes: 2, Chains: 40},
		L2C:    CodeL2State{PCs: []uint32{0x8048000, 0x8048020, 0x8048040}, Accesses: 600, Misses: 30, Stores: 90},
		Queues: []QueuedPC{{PC: 0x8048060, Depth: 1}, {PC: 0x8048080, Depth: -2}},
		Spec:   []uint32{0x80480a0},
		Bad:    []uint32{0xdeadbeef},
		Banks: []BankState{{
			Tile: 10,
			Cache: cachesim.State{
				Lines: []cachesim.LineState{{Tag: 0x42, Valid: true, Dirty: false, Used: 3}},
				Stamp: 4, Accesses: 200, Misses: 20, Evictions: 2,
			},
			Requests: 200, Misses: 20, Flushes: 1, Writeback: 7,
		}},
		SMC: SMCState{
			Gen:       6,
			CodePages: []uint32{0x8048},
			Inval:     []PageInval{{Page: 0x8048, Gen: 5}},
		},
		Tier0PCs: []uint32{0x8048020},
		Hot:      []HotPC{{PC: 0x8048000, Insts: 9_999}},
	}
	s.Metrics.BlockDispatches = 123_456
	s.Metrics.HostInsts = 789_012
	s.Faults.Fails = 4
	return s
}

// TestStateRoundTrip pins the canonical-encoding contract:
// encode → decode → encode is byte-identical, and the decoded state
// re-encodes every section faithfully.
func TestStateRoundTrip(t *testing.T) {
	s := sampleState()
	enc1 := EncodeState(s)
	dec, err := DecodeState(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := EncodeState(dec)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode(decode(encode(s))) differs: %d vs %d bytes", len(enc1), len(enc2))
	}
	if dec.Seq != s.Seq || dec.Cycles != s.Cycles || dec.CPU != s.CPU {
		t.Fatalf("core fields did not survive: %+v", dec)
	}
	if len(dec.Mem.Pages) != len(s.Mem.Pages) {
		t.Fatalf("memory pages: got %d, want %d", len(dec.Mem.Pages), len(s.Mem.Pages))
	}
	for idx, p := range s.Mem.Pages {
		if !bytes.Equal(dec.Mem.Pages[idx], p) {
			t.Fatalf("memory page %d content differs", idx)
		}
	}
	if dec.Metrics != s.Metrics || dec.Faults != s.Faults {
		t.Fatal("counter sections did not survive")
	}
}

// TestStateDecodeRejectsCorruption: every single-bit flip of a valid
// encoding must be rejected (the CRC covers the whole frame), and
// truncations must fail cleanly.
func TestStateDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeState(sampleState())
	for off := 0; off < len(enc); off += 97 {
		bad := bytes.Clone(enc)
		bad[off] ^= 0x10
		if _, err := DecodeState(bad); err == nil {
			t.Fatalf("decode accepted a bit flip at offset %d", off)
		}
	}
	for _, n := range []int{0, 3, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeState(enc[:n]); err == nil {
			t.Fatalf("decode accepted a truncation to %d bytes", n)
		}
	}
}

// TestRecordRoundTrip: the record codec is canonical too.
func TestRecordRoundTrip(t *testing.T) {
	rec := &Record{
		Config: RecordConfig{
			Workload: "181.mcf", Slaves: 6, Speculative: true, L15Banks: 2,
			MemBanks: 4, Optimize: true, MorphThreshold: 5,
			FaultPlan: "fail:7@150000", FaultSeed: 42, FaultRecovery: true,
			Recovery: 1, CheckpointInterval: 100_000,
		},
		Events: []Event{
			{Cycle: 100, Kind: EvCheckpoint, A: 0, B: 12},
			{Cycle: 250, Kind: EvSyscall, A: 4, B: 1},
			{Cycle: 900, Kind: EvFinal, A: 0, B: 0xabcdef},
		},
		Final: RecordFinal{Cycles: 900, ExitCode: 10, StateHash: 0xabcdef},
	}
	enc1 := rec.Encode()
	dec, err := DecodeRecord(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, dec.Encode()) {
		t.Fatal("encode(decode(encode(rec))) differs")
	}
	if dec.Config != rec.Config || dec.Final != rec.Final || len(dec.Events) != len(rec.Events) {
		t.Fatalf("record did not survive the round trip: %+v", dec)
	}
}

// FuzzCheckpointDecode hammers the snapshot decoder with mutated
// inputs: it must never panic or over-allocate, and anything it does
// accept must re-encode canonically.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a page-free snapshot: guest pages are 64 KiB each, and a
	// multi-page seed slows mutation to a crawl without adding coverage.
	small := sampleState()
	small.Mem = nil
	f.Add(EncodeState(small))
	f.Add(EncodeState(&State{}))
	f.Add([]byte("TVCK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeState(data)
		if err != nil {
			return
		}
		enc := EncodeState(s)
		s2, err := DecodeState(enc)
		if err != nil {
			t.Fatalf("re-encoding of an accepted input does not decode: %v", err)
		}
		if !bytes.Equal(enc, EncodeState(s2)) {
			t.Fatal("accepted input is not canonical under re-encoding")
		}
	})
}

// FuzzRecordDecode does the same for the record codec.
func FuzzRecordDecode(f *testing.F) {
	rec := &Record{
		Config: RecordConfig{Workload: "164.gzip", Slaves: 6},
		Events: []Event{{Cycle: 1, Kind: EvFault, A: 2, B: 3}},
		Final:  RecordFinal{Cycles: 1},
	}
	f.Add(rec.Encode())
	f.Add((&Record{}).Encode())
	f.Add([]byte("TVRC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc := r.Encode()
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoding of an accepted record does not decode: %v", err)
		}
		if !bytes.Equal(enc, r2.Encode()) {
			t.Fatal("accepted record is not canonical under re-encoding")
		}
	})
}
