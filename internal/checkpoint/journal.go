package checkpoint

// EventKind classifies journal events. The journal records every
// source of nondeterminism-relevant history in a run: because the
// simulation itself is deterministic given (config, fault plan, seed),
// the journal is pure *output* — replay re-runs the simulation and
// compares journals rather than feeding events back in.
type EventKind uint8

const (
	// EvCheckpoint: A = snapshot sequence number, B = pages captured.
	EvCheckpoint EventKind = iota + 1
	// EvSyscall: A = syscall number, B = return value (EAX). The
	// guest-visible event stream; divergence here means the recovered
	// run's architectural history differs from the reference.
	EvSyscall
	// EvFault: A = fault.Kind, B = tile.
	EvFault
	// EvExcise: A = tile excised, B = 1 if the excision triggered a
	// rollback instead of in-place recovery.
	EvExcise
	// EvRollback: A = dead tile, B = checkpoint cycle restored to.
	EvRollback
	// EvFinal: A = exit code, B = final state hash.
	EvFinal
)

func (k EventKind) String() string {
	switch k {
	case EvCheckpoint:
		return "checkpoint"
	case EvSyscall:
		return "syscall"
	case EvFault:
		return "fault"
	case EvExcise:
		return "excise"
	case EvRollback:
		return "rollback"
	case EvFinal:
		return "final"
	}
	return "unknown"
}

// Event is one journal entry.
type Event struct {
	Cycle uint64
	Kind  EventKind
	A, B  uint64
}

// Journal accumulates events in simulation order. A nil *Journal is a
// valid sink that records nothing, so instrumented code never needs a
// nil check.
type Journal struct {
	Events []Event
}

// Add appends an event.
func (j *Journal) Add(kind EventKind, cycle, a, b uint64) {
	if j == nil {
		return
	}
	j.Events = append(j.Events, Event{Cycle: cycle, Kind: kind, A: a, B: b})
}

// Filter returns the events of the given kinds, in order.
func Filter(evs []Event, kinds ...EventKind) []Event {
	want := map[EventKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range evs {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// FirstDivergence bisects to the first index at which the two event
// streams differ, or -1 if they are identical. It binary-searches the
// longest common prefix over precomputed rolling hashes, so comparing
// two multi-million-event journals does O(n) hashing once and O(log n)
// probes — the "bisect to first divergent event" primitive behind
// tilevm -replay-diff.
func FirstDivergence(a, b []Event) int {
	ha, hb := prefixHashes(a), prefixHashes(b)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	// Invariant: prefixes of length lo are equal, length hi+1 are not
	// (or hi == n). Find the longest equal prefix.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ha[mid] == hb[mid] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo == len(a) && lo == len(b) {
		return -1
	}
	return lo
}

// prefixHashes returns h[i] = hash of evs[:i].
func prefixHashes(evs []Event) []uint64 {
	out := make([]uint64, len(evs)+1)
	h := hashInit()
	out[0] = h
	for i, e := range evs {
		h = hashU64(h, e.Cycle)
		h = hashU64(h, uint64(e.Kind))
		h = hashU64(h, e.A)
		h = hashU64(h, e.B)
		out[i+1] = h
	}
	return out
}
