package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// RecordConfig is the complete set of inputs that determine a run.
// The simulation is deterministic, so re-running with these inputs
// reproduces the recorded run bit for bit; everything else in the
// Record is for verification.
type RecordConfig struct {
	Workload  string // named synthetic workload, or
	ImagePath string // path to a guest image file

	Slaves         int
	Speculative    bool
	L15Banks       int
	MemBanks       int
	Optimize       bool
	Morph          bool
	MorphThreshold int
	MaxCycles      uint64

	FaultPlan     string // fault.Plan.String() round-trippable form
	FaultSeed     uint64
	FaultRecovery bool

	Recovery           uint8 // core.RecoveryMode
	CheckpointInterval uint64
}

// RecordFinal is the recorded run's outcome, compared against replay.
type RecordFinal struct {
	Cycles    uint64
	ExitCode  int32
	StateHash uint64
}

// Record is a recorded run: the inputs, the event journal, and the
// outcome.
type Record struct {
	Config RecordConfig
	Events []Event
	Final  RecordFinal
}

// Encode serializes the record with the same framing as snapshots.
func (rec *Record) Encode() []byte {
	w := &writer{buf: make([]byte, 0, 256+16*len(rec.Events))}
	w.raw([]byte(recordMagic))
	w.buf = binary.LittleEndian.AppendUint16(w.buf, codecVer)

	c := &rec.Config
	w.str(c.Workload)
	w.str(c.ImagePath)
	w.i64(int64(c.Slaves))
	w.b(c.Speculative)
	w.i64(int64(c.L15Banks))
	w.i64(int64(c.MemBanks))
	w.b(c.Optimize)
	w.b(c.Morph)
	w.i64(int64(c.MorphThreshold))
	w.u64(c.MaxCycles)
	w.str(c.FaultPlan)
	w.u64(c.FaultSeed)
	w.b(c.FaultRecovery)
	w.u64(uint64(c.Recovery))
	w.u64(c.CheckpointInterval)

	w.u64(uint64(len(rec.Events)))
	for _, e := range rec.Events {
		w.u64(e.Cycle)
		w.u64(uint64(e.Kind))
		w.u64(e.A)
		w.u64(e.B)
	}

	w.u64(rec.Final.Cycles)
	w.i64(int64(rec.Final.ExitCode))
	w.u64(rec.Final.StateHash)

	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// DecodeRecord parses a record, validating framing and lengths.
func DecodeRecord(data []byte) (*Record, error) {
	body, err := checkFrame(data, recordMagic)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}

	rec := &Record{}
	c := &rec.Config
	c.Workload = r.str()
	c.ImagePath = r.str()
	c.Slaves = int(r.i64())
	c.Speculative = r.b()
	c.L15Banks = int(r.i64())
	c.MemBanks = int(r.i64())
	c.Optimize = r.b()
	c.Morph = r.b()
	c.MorphThreshold = int(r.i64())
	c.MaxCycles = r.u64()
	c.FaultPlan = r.str()
	c.FaultSeed = r.u64()
	c.FaultRecovery = r.b()
	c.Recovery = uint8(r.u64())
	c.CheckpointInterval = r.u64()

	if n := r.count(4); r.err == nil {
		rec.Events = make([]Event, n)
		for i := range rec.Events {
			rec.Events[i] = Event{Cycle: r.u64(), Kind: EventKind(r.u64()), A: r.u64(), B: r.u64()}
		}
	}

	rec.Final.Cycles = r.u64()
	rec.Final.ExitCode = int32(r.i64())
	rec.Final.StateHash = r.u64()

	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", r.remaining())
	}
	return rec, nil
}

// WriteRecordFile writes the record to a file.
func WriteRecordFile(path string, rec *Record) error {
	return os.WriteFile(path, rec.Encode(), 0o644)
}

// ReadRecordFile loads a record from a file.
func ReadRecordFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRecord(data)
}
