// Package checkpoint implements whole-virtual-architecture snapshots of
// the simulated machine and the deterministic event journal built on
// top of them.
//
// A State captures everything needed to re-execute from a point in
// virtual time: the guest-visible machine (memory image, registers,
// kernel state), the timing-model state that must survive exactly
// (MMU/TLB contents, the exec tile's data cache), and the code caches
// in *generative* form — translation is a pure function of guest
// memory, so the L2 code cache is recorded as its ordered entry PCs and
// rebuilt by re-translating, and the L1 arena (including chain patches)
// is reproduced by re-inserting those translations in arena order.
// In-flight messages are deliberately not captured: restoring drops
// them, which is exactly the lost-message scenario the machine's
// retry/heartbeat/watchdog protocols already recover from.
//
// Capture is incremental: guest pages unwritten since the previous
// snapshot share its backing (see guest.Memory.Capture), and capturing
// charges no virtual cycles, so checkpointing never distorts cycle
// accounting. The modeled restore cost is charged at rollback time
// instead (raw.Params.RollbackFixedOcc/RollbackPerPageOcc).
package checkpoint

import (
	"tilevm/internal/cachesim"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/metrics"
	"tilevm/internal/mmu"
)

// QueuedPC is one pending translation in the manager's priority
// buckets (or in flight to a slave) at capture time.
type QueuedPC struct {
	PC    uint32
	Depth int32
}

// BankState is one L2 data bank's tag/dirty contents and counters.
// Banks are captured for format completeness but never restored:
// rollback always re-morphs to a changed topology, which re-interleaves
// lines across banks, and dirty bank lines carry no functional state
// (guest data lives in the flat memory image).
type BankState struct {
	Tile      int32
	Cache     cachesim.State
	Requests  uint64
	Misses    uint64
	Flushes   uint64
	Writeback uint64
}

// CodeL1State records the exec tile's L1 code cache as ordered entry
// PCs plus counters.
type CodeL1State struct {
	PCs     []uint32
	Lookups uint64
	Hits    uint64
	Flushes uint64
	Chains  uint64
}

// CodeL2State records the manager's L2 code cache the same way.
type CodeL2State struct {
	PCs      []uint32
	Accesses uint64
	Misses   uint64
	Stores   uint64
}

// PageInval is one entry of the self-modifying-code invalidation map.
type PageInval struct {
	Page uint32
	Gen  uint64
}

// SMCState captures the engine's self-modifying-code bookkeeping.
type SMCState struct {
	Gen       uint64
	CodePages []uint32
	Inval     []PageInval
}

// HotPC is one exec-tile block-hotness counter at capture time (tiered
// translation's promotion state).
type HotPC struct {
	PC    uint32
	Insts uint64
}

// State is one whole-machine snapshot.
type State struct {
	Seq    uint64 // capture sequence number within the run
	Cycles uint64 // virtual time of the capture

	CPU  guest.CPU
	Kern guest.KernelState
	Mem  *guest.MemImage

	MMU mmu.State
	DL1 cachesim.State
	L1  CodeL1State
	L2C CodeL2State

	Queues []QueuedPC // manager work queue + in-flight translations
	Spec   []uint32   // speculatively-stored PCs not yet demanded
	Bad    []uint32   // PCs whose translation failed

	Banks []BankState
	SMC   SMCState

	// Tiered-translation promotion state (empty unless tier-0 is on):
	// Tier0PCs lists the L2 code cache entries that are template-tier
	// translations (everything else restores as the optimizing tier),
	// and Hot carries the exec tile's retired-instruction counters so
	// pending promotions re-arm deterministically after a restore.
	Tier0PCs []uint32
	Hot      []HotPC

	Metrics metrics.Set
	Faults  fault.Counts
}

// Checkpointer owns the capture cadence and the incremental-capture
// chain for one run. It survives rollback: the same Checkpointer is
// handed to each re-execution attempt so Last always names the newest
// snapshot.
type Checkpointer struct {
	Interval uint64

	next uint64
	seq  uint64
	prev *guest.MemImage
	last *State
}

// NewCheckpointer returns a checkpointer that captures every interval
// cycles (the first capture is due at interval, not at 0).
func NewCheckpointer(interval uint64) *Checkpointer {
	return &Checkpointer{Interval: interval, next: interval}
}

// Due reports whether a capture should be taken at the given cycle.
func (c *Checkpointer) Due(now uint64) bool {
	return c != nil && now >= c.next
}

// Capture finalizes a snapshot the engine has filled in: it assigns the
// sequence number, snapshots memory incrementally against the previous
// capture, and advances the cadence.
func (c *Checkpointer) Capture(s *State, mem *guest.Memory, now uint64) {
	s.Seq = c.seq
	c.seq++
	s.Cycles = now
	s.Mem = mem.Capture(c.prev)
	c.prev = s.Mem
	c.last = s
	c.next = now + c.Interval
}

// Last returns the newest snapshot, or nil if none has been taken.
func (c *Checkpointer) Last() *State {
	if c == nil {
		return nil
	}
	return c.last
}

// Rearm resets the incremental-capture chain after a rollback: the
// restored run owns a fresh Memory, whose pages cannot be shared
// against the old chain, so the next capture must be a full one.
func (c *Checkpointer) Rearm() {
	if c != nil {
		c.prev = nil
	}
}

// FinalHash condenses the guest-visible final state of a run —
// registers, flags, PC, exit status, stdout, and the memory content
// hash — into one value. Two runs with equal FinalHash ended in
// bit-identical guest-visible states (up to hash collision); rollback
// recovery's acceptance bar is FinalHash equality with the fault-free
// run.
func FinalHash(p *guest.Process) uint64 {
	h := hashInit()
	for _, r := range p.R {
		h = hashU64(h, uint64(r))
	}
	h = hashU64(h, uint64(p.Flags))
	h = hashU64(h, uint64(p.PC))
	h = hashU64(h, boolU64(p.Kern.Exited))
	h = hashU64(h, uint64(uint32(p.Kern.ExitCode)))
	for _, b := range p.Kern.Stdout.Bytes() {
		h = hashU64(h, uint64(b))
	}
	h = hashU64(h, p.Mem.Hash())
	return h
}

func hashInit() uint64 { return 14695981039346656037 }

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
