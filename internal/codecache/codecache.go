// Package codecache implements the three-level code cache hierarchy of
// the translation system (paper §3.2, Figure 3):
//
//   - L1: the execution tile's 32KB software-managed instruction
//     memory. Blocks are copied in with a tight-packing allocator that
//     flushes wholesale when full; direct branches are chained (CHAIN
//     sites patched to jumps) only at this level, because only here is
//     a block's absolute position known.
//   - L1.5: one or two banked tiles holding translated blocks close to
//     the execution tile (64KB per bank), FIFO-evicted.
//   - L2: the manager tile's map over a 105MB code store in off-chip
//     DRAM.
//
// These are pure data structures plus accounting; the tile kernels in
// internal/core charge the modeled cycle costs.
package codecache

import (
	"sort"

	"tilevm/internal/rawisa"
	"tilevm/internal/translate"
)

// L1 is the execution tile's code cache: a flat arena of decoded host
// instructions indexed by position, with an entry map from guest PC.
type L1 struct {
	capacity int
	arena    []rawisa.Inst
	bytes    int
	entry    map[uint32]int
	// pending maps guest targets to arena indices of unpatched CHAIN
	// instructions waiting for that target to become resident.
	pending map[uint32][]int

	Lookups uint64
	Hits    uint64
	Flushes uint64
	Chains  uint64

	// NoChain leaves CHAIN sites unpatched (ablation).
	NoChain bool
}

// NewL1 builds an L1 code cache with the given byte capacity.
func NewL1(capacityBytes int) *L1 {
	l := &L1{capacity: capacityBytes}
	l.reset()
	return l
}

func (l *L1) reset() {
	l.arena = l.arena[:0]
	l.bytes = 0
	l.entry = make(map[uint32]int)
	l.pending = make(map[uint32][]int)
}

// Arena exposes the instruction arena for the execution engine.
func (l *L1) Arena() []rawisa.Inst { return l.arena }

// Bytes returns the occupied size.
func (l *L1) Bytes() int { return l.bytes }

// Lookup finds the arena index for a guest PC.
func (l *L1) Lookup(pc uint32) (int, bool) {
	l.Lookups++
	idx, ok := l.entry[pc]
	if ok {
		l.Hits++
	}
	return idx, ok
}

// InsertStats reports the work done by an insert, for cycle charging.
type InsertStats struct {
	CopiedWords int
	Patches     int
	Flushed     bool
	// Patched lists the arena indices rewritten in place by chaining
	// (CHAIN→J), so callers mirroring the arena (a rawexec.Program)
	// can re-predecode exactly those sites instead of rescanning.
	Patched []int
}

// Insert copies a translated block into the arena (flushing first if it
// does not fit), records its entry, and performs chaining in both
// directions: the new block's CHAIN sites are patched if their targets
// are resident, and resident blocks' pending CHAIN sites to this block
// are patched.
func (l *L1) Insert(pc uint32, code []rawisa.Inst) (int, InsertStats) {
	var st InsertStats
	sz := rawisa.CodeBytes(code)
	if l.bytes+sz > l.capacity {
		// Tight packing with wholesale flush, as in the prototype.
		l.reset()
		l.Flushes++
		st.Flushed = true
	}
	idx := len(l.arena)
	l.arena = append(l.arena, code...)
	l.bytes += sz
	l.entry[pc] = idx
	st.CopiedWords = sz / 4
	if l.NoChain {
		return idx, st
	}

	// Outgoing chaining: patch this block's CHAIN sites whose targets
	// are already resident.
	for i := idx; i < len(l.arena); i++ {
		if l.arena[i].Op == rawisa.CHAIN {
			target := l.arena[i].Target
			if tidx, ok := l.entry[target]; ok {
				l.arena[i] = rawisa.Inst{Op: rawisa.J, Target: uint32(tidx)}
				l.Chains++
				st.Patches++
				st.Patched = append(st.Patched, i)
			} else {
				l.pending[target] = append(l.pending[target], i)
			}
		}
	}
	// Incoming chaining: resident blocks waiting for this PC.
	if sites, ok := l.pending[pc]; ok {
		for _, i := range sites {
			l.arena[i] = rawisa.Inst{Op: rawisa.J, Target: uint32(idx)}
			l.Chains++
			st.Patches++
			st.Patched = append(st.Patched, i)
		}
		delete(l.pending, pc)
	}
	return idx, st
}

// Contains reports residence without counting a lookup.
func (l *L1) Contains(pc uint32) bool {
	_, ok := l.entry[pc]
	return ok
}

// EntryPCs returns the resident blocks' guest PCs in arena (insertion)
// order. Re-inserting the same translations in this order reproduces
// the arena layout and chain patches exactly, which is how checkpoint
// restore rebuilds the L1 without snapshotting host code.
func (l *L1) EntryPCs() []uint32 {
	type ent struct {
		pc  uint32
		idx int
	}
	ents := make([]ent, 0, len(l.entry))
	for pc, idx := range l.entry {
		ents = append(ents, ent{pc, idx})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].idx < ents[j].idx })
	pcs := make([]uint32, len(ents))
	for i, e := range ents {
		pcs[i] = e.pc
	}
	return pcs
}

// PCForIndex maps an arena index back to the guest PC of the block
// entered there (used to resolve chained jumps when execution must be
// interrupted, e.g. on self-modifying-code invalidation).
func (l *L1) PCForIndex(idx int) (uint32, bool) {
	for pc, i := range l.entry {
		if i == idx {
			return pc, true
		}
	}
	return 0, false
}

// Flush empties the cache (self-modifying-code invalidation).
func (l *L1) Flush() {
	l.reset()
	l.Flushes++
}

// L15 is one bank of the intermediate code cache: translated blocks in
// relocatable form, FIFO eviction.
type L15 struct {
	capacity int
	bytes    int
	blocks   map[uint32]*translate.Result
	order    []uint32

	Lookups uint64
	Hits    uint64
}

// NewL15 builds a bank with the given capacity.
func NewL15(capacityBytes int) *L15 {
	return &L15{capacity: capacityBytes, blocks: make(map[uint32]*translate.Result)}
}

// Lookup returns the cached block for a guest PC.
func (c *L15) Lookup(pc uint32) (*translate.Result, bool) {
	c.Lookups++
	b, ok := c.blocks[pc]
	if ok {
		c.Hits++
	}
	return b, ok
}

// Insert stores a block, evicting oldest entries to fit. Blocks larger
// than the bank are not cached.
func (c *L15) Insert(pc uint32, b *translate.Result) {
	if b.CodeBytes > c.capacity {
		return
	}
	if _, dup := c.blocks[pc]; dup {
		return
	}
	for c.bytes+b.CodeBytes > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if vb, ok := c.blocks[victim]; ok {
			c.bytes -= vb.CodeBytes
			delete(c.blocks, victim)
		}
	}
	c.blocks[pc] = b
	c.bytes += b.CodeBytes
	c.order = append(c.order, pc)
}

// Bytes returns current occupancy.
func (c *L15) Bytes() int { return c.bytes }

// Flush empties the bank (self-modifying-code invalidation).
func (c *L15) Flush() {
	c.blocks = make(map[uint32]*translate.Result)
	c.order = c.order[:0]
	c.bytes = 0
}

// L2 is the manager's code cache over DRAM.
type L2 struct {
	capacity int
	bytes    int
	blocks   map[uint32]*translate.Result
	order    []uint32

	Accesses uint64
	Misses   uint64
	Stores   uint64
}

// NewL2 builds the DRAM code cache.
func NewL2(capacityBytes int) *L2 {
	return &L2{capacity: capacityBytes, blocks: make(map[uint32]*translate.Result)}
}

// Lookup consults the cache, counting an access.
func (c *L2) Lookup(pc uint32) (*translate.Result, bool) {
	c.Accesses++
	b, ok := c.blocks[pc]
	if !ok {
		c.Misses++
	}
	return b, ok
}

// Contains probes without counting (used by the speculation queues to
// dedup work).
func (c *L2) Contains(pc uint32) bool {
	_, ok := c.blocks[pc]
	return ok
}

// Insert stores a translated block, FIFO-evicting if the DRAM budget is
// exceeded (does not happen at our workload scales, but the bound is
// real in the prototype: 105MB).
func (c *L2) Insert(pc uint32, b *translate.Result) {
	if _, dup := c.blocks[pc]; dup {
		return
	}
	for c.bytes+b.CodeBytes > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if vb, ok := c.blocks[victim]; ok {
			c.bytes -= vb.CodeBytes
			delete(c.blocks, victim)
		}
	}
	c.blocks[pc] = b
	c.bytes += b.CodeBytes
	c.order = append(c.order, pc)
	c.Stores++
}

// Replace swaps in a new translation for a resident PC, adjusting the
// byte accounting but keeping the entry's FIFO position (tier-up
// installs a promoted block over its tier-0 version in place). A
// non-resident PC falls through to Insert.
func (c *L2) Replace(pc uint32, b *translate.Result) {
	old, ok := c.blocks[pc]
	if !ok {
		c.Insert(pc, b)
		return
	}
	c.bytes += b.CodeBytes - old.CodeBytes
	c.blocks[pc] = b
	c.Stores++
}

// Bytes returns current occupancy.
func (c *L2) Bytes() int { return c.bytes }

// Len returns the number of cached blocks.
func (c *L2) Len() int { return len(c.blocks) }

// OrderedPCs returns the resident blocks' guest PCs in insertion
// order, for checkpoint capture: restore re-translates and re-inserts
// in this order, reproducing FIFO eviction state.
func (c *L2) OrderedPCs() []uint32 {
	pcs := make([]uint32, 0, len(c.blocks))
	for _, pc := range c.order {
		if _, ok := c.blocks[pc]; ok {
			pcs = append(pcs, pc)
		}
	}
	return pcs
}

// RemoveOverlapping drops every block whose guest byte range
// intersects [lo, hi) and returns the removed entry PCs
// (self-modifying-code invalidation).
func (c *L2) RemoveOverlapping(lo, hi uint32) []uint32 {
	var removed []uint32
	for pc, b := range c.blocks {
		if pc < hi && pc+b.GuestLen > lo {
			c.bytes -= b.CodeBytes
			delete(c.blocks, pc)
			removed = append(removed, pc)
		}
	}
	if len(removed) > 0 {
		kept := c.order[:0]
		for _, pc := range c.order {
			if _, ok := c.blocks[pc]; ok {
				kept = append(kept, pc)
			}
		}
		c.order = kept
	}
	return removed
}
