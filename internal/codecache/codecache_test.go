package codecache

import (
	"testing"

	"tilevm/internal/rawisa"
	"tilevm/internal/translate"
)

// block builds a code sequence of roughly n instructions ending in a
// CHAIN to the given target.
func block(n int, chainTo uint32) []rawisa.Inst {
	code := make([]rawisa.Inst, 0, n+1)
	for i := 0; i < n; i++ {
		code = append(code, rawisa.Inst{Op: rawisa.ADDI, Rd: 1, Rs: 1, Imm: int32(i)})
	}
	code = append(code, rawisa.Inst{Op: rawisa.CHAIN, Target: chainTo})
	return code
}

func TestL1InsertAndLookup(t *testing.T) {
	l1 := NewL1(1024)
	idx, st := l1.Insert(0x100, block(4, 0x200))
	if st.Flushed || st.CopiedWords == 0 {
		t.Errorf("insert stats: %+v", st)
	}
	got, ok := l1.Lookup(0x100)
	if !ok || got != idx {
		t.Errorf("Lookup = %d,%v", got, ok)
	}
	if _, ok := l1.Lookup(0x999); ok {
		t.Error("phantom hit")
	}
	if l1.Lookups != 2 || l1.Hits != 1 {
		t.Errorf("counters: %d/%d", l1.Lookups, l1.Hits)
	}
}

func TestL1ChainingBothDirections(t *testing.T) {
	l1 := NewL1(4096)
	// A chains to B (not yet resident).
	aIdx, st := l1.Insert(0xA, block(2, 0xB))
	if st.Patches != 0 {
		t.Errorf("premature patch")
	}
	// B arrives, chains back to A (resident): both directions patch.
	bIdx, st := l1.Insert(0xB, block(2, 0xA))
	if st.Patches != 2 {
		t.Errorf("patches = %d, want 2 (incoming + outgoing)", st.Patches)
	}
	arena := l1.Arena()
	// A's CHAIN site must now be a J to B's index.
	foundAtoB := false
	for i := aIdx; i < bIdx; i++ {
		if arena[i].Op == rawisa.J && arena[i].Target == uint32(bIdx) {
			foundAtoB = true
		}
	}
	if !foundAtoB {
		t.Error("A→B chain not patched")
	}
	// B's CHAIN site points back at A.
	foundBtoA := false
	for i := bIdx; i < len(arena); i++ {
		if arena[i].Op == rawisa.J && arena[i].Target == uint32(aIdx) {
			foundBtoA = true
		}
	}
	if !foundBtoA {
		t.Error("B→A chain not patched")
	}
}

func TestL1NoChainAblation(t *testing.T) {
	l1 := NewL1(4096)
	l1.NoChain = true
	l1.Insert(0xA, block(2, 0xB))
	_, st := l1.Insert(0xB, block(2, 0xA))
	if st.Patches != 0 || l1.Chains != 0 {
		t.Error("NoChain still patched")
	}
}

func TestL1FlushWhenFull(t *testing.T) {
	l1 := NewL1(200) // tiny: a 5-inst block is 6 words = 24+8 bytes
	var flushed bool
	for i := 0; i < 10; i++ {
		_, st := l1.Insert(uint32(0x100+i*16), block(5, 0))
		flushed = flushed || st.Flushed
	}
	if !flushed {
		t.Error("cache never flushed")
	}
	if l1.Flushes == 0 {
		t.Error("flush counter zero")
	}
	// Old entries are gone after the flush.
	if _, ok := l1.Lookup(0x100); ok {
		t.Error("pre-flush entry survived")
	}
}

func res(pc uint32, n int) *translate.Result {
	code := block(n, pc+64)
	return &translate.Result{
		Code:      code,
		CodeBytes: rawisa.CodeBytes(code),
	}
}

func TestL15FIFOEviction(t *testing.T) {
	bank := NewL15(200)
	for i := 0; i < 6; i++ {
		bank.Insert(uint32(i), res(uint32(i), 10)) // 48 bytes each
	}
	// Early entries must have been evicted, later ones present.
	if _, ok := bank.Lookup(0); ok {
		t.Error("oldest entry survived")
	}
	if _, ok := bank.Lookup(5); !ok {
		t.Error("newest entry evicted")
	}
	if bank.Bytes() > 200 {
		t.Errorf("over capacity: %d", bank.Bytes())
	}
}

func TestL15OversizedBlockNotCached(t *testing.T) {
	bank := NewL15(100)
	bank.Insert(1, res(1, 100))
	if _, ok := bank.Lookup(1); ok {
		t.Error("oversized block cached")
	}
}

func TestL15DuplicateInsert(t *testing.T) {
	bank := NewL15(1000)
	r := res(1, 10)
	bank.Insert(1, r)
	bank.Insert(1, r)
	if bank.Bytes() != r.CodeBytes {
		t.Errorf("duplicate insert double-counted: %d", bank.Bytes())
	}
}

func TestL2AccountingAndEviction(t *testing.T) {
	l2 := NewL2(500)
	for i := 0; i < 20; i++ {
		l2.Insert(uint32(i), res(uint32(i), 10))
	}
	if l2.Bytes() > 500 {
		t.Errorf("over budget: %d", l2.Bytes())
	}
	if _, ok := l2.Lookup(19); !ok {
		t.Error("latest block missing")
	}
	if l2.Accesses != 1 {
		t.Errorf("accesses = %d", l2.Accesses)
	}
	if _, ok := l2.Lookup(0); ok {
		t.Error("oldest block survived eviction")
	}
	if l2.Misses != 1 {
		t.Errorf("misses = %d", l2.Misses)
	}
	if l2.Contains(0) {
		t.Error("Contains inconsistent with Lookup")
	}
}

func TestL2LargeCapacityHoldsEverything(t *testing.T) {
	l2 := NewL2(105 * 1024 * 1024)
	for i := 0; i < 1000; i++ {
		l2.Insert(uint32(i*64), res(uint32(i*64), 20))
	}
	if l2.Len() != 1000 {
		t.Errorf("Len = %d", l2.Len())
	}
	for i := 0; i < 1000; i += 97 {
		if !l2.Contains(uint32(i * 64)) {
			t.Errorf("block %d missing", i)
		}
	}
}

func TestL1ArenaIndicesStableWithinGeneration(t *testing.T) {
	l1 := NewL1(1 << 20)
	var idxs []int
	for i := 0; i < 50; i++ {
		idx, _ := l1.Insert(uint32(i), block(3, 0xffffffff))
		idxs = append(idxs, idx)
	}
	for i, want := range idxs {
		got, ok := l1.Lookup(uint32(i))
		if !ok || got != want {
			t.Fatalf("entry %d moved: %d -> %d (%v)", i, want, got, ok)
		}
	}
}
