// Package codegen finalizes IR blocks into executable host code: it
// maps virtual registers onto the host temporary registers with a
// linear-scan allocator and resolves symbolic branch labels to relative
// instruction offsets.
//
// IR control flow within a block only branches forward, so positional
// live ranges ([definition, last use] by instruction index) are exact
// and linear scan is optimal-enough. Rather than spilling under
// pressure, the allocator reports ErrRegPressure and the translator
// retries with a smaller block — the same strategy real DBTs use when
// a superblock does not fit the scratch register budget.
package codegen

import (
	"errors"
	"fmt"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

// ErrRegPressure reports that a block needs more live temporaries than
// the host has; retry translation with a smaller block.
var ErrRegPressure = errors.New("codegen: out of host temporary registers")

// tempPool is the set of host registers available for temporaries.
var tempPool = func() []uint8 {
	var regs []uint8
	for r := rawisa.RegTmp0; r <= rawisa.RegTmpN; r++ {
		regs = append(regs, uint8(r))
	}
	return regs
}()

// NumTemps is the number of allocatable temporary registers.
var NumTemps = len(tempPool)

// regUses returns the registers an instruction reads.
func regUses(in rawisa.Inst) (uses [2]uint8, n int) {
	switch in.Op {
	case rawisa.NOP, rawisa.LUI, rawisa.SYSC, rawisa.EXITI, rawisa.CHAIN,
		rawisa.ASSIST, rawisa.J, rawisa.JAL, rawisa.MFHI, rawisa.MFLO:
		return
	case rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR, rawisa.XOR,
		rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL, rawisa.SRL,
		rawisa.SRA, rawisa.MULT, rawisa.MULTU, rawisa.DIV, rawisa.DIVU,
		rawisa.BEQ, rawisa.BNE, rawisa.SW,
		rawisa.GSB, rawisa.GSH, rawisa.GSW:
		uses[0], uses[1] = in.Rs, in.Rt
		n = 2
		return
	default:
		// I-format ALU, loads, single-register branches, JR, EXITR.
		uses[0] = in.Rs
		n = 1
		return
	}
}

// regDef returns the register an instruction writes, or 0 (the
// hardwired zero register, meaning "no def").
func regDef(in rawisa.Inst) uint8 {
	switch in.Op {
	case rawisa.LUI, rawisa.ADDI, rawisa.ANDI, rawisa.ORI, rawisa.XORI,
		rawisa.SLTI, rawisa.SLTIU, rawisa.SLLI, rawisa.SRLI, rawisa.SRAI,
		rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR, rawisa.XOR,
		rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL, rawisa.SRL,
		rawisa.SRA, rawisa.MFHI, rawisa.MFLO, rawisa.LW,
		rawisa.GLB, rawisa.GLBU, rawisa.GLH, rawisa.GLHU, rawisa.GLW:
		return in.Rd
	}
	return 0
}

// Finalize allocates registers and resolves labels, returning
// executable host code. The input block is not modified.
func Finalize(b *ir.Block) ([]rawisa.Inst, error) {
	lastUse := make(map[uint8]int)
	for i, in := range b.Code {
		uses, n := regUses(in.Inst)
		for k := 0; k < n; k++ {
			if uses[k] >= ir.FirstVReg {
				lastUse[uses[k]] = i
			}
		}
		// A def with no later use still occupies its register at the
		// defining instruction.
		if d := regDef(in.Inst); d >= ir.FirstVReg {
			if _, seen := lastUse[d]; !seen {
				lastUse[d] = i
			}
		}
	}

	assign := make(map[uint8]uint8) // vreg -> phys
	var free []uint8
	free = append(free, tempPool...)
	inUse := make(map[uint8]uint8) // phys -> vreg

	expire := func(pos int) {
		for phys, v := range inUse {
			if lastUse[v] < pos {
				delete(inUse, phys)
				free = append(free, phys)
			}
		}
	}

	mapReg := func(r uint8, pos int, isDef bool) (uint8, error) {
		if r < ir.FirstVReg {
			return r, nil
		}
		if phys, ok := assign[r]; ok {
			if v, busy := inUse[phys]; busy && v == r {
				return phys, nil
			}
			// Register was freed and the vreg is being redefined.
			if !isDef {
				return 0, fmt.Errorf("codegen: use of dead vreg %d at %d", r, pos)
			}
		}
		if !isDef {
			return 0, fmt.Errorf("codegen: use of undefined vreg %d at %d", r, pos)
		}
		if len(free) == 0 {
			return 0, ErrRegPressure
		}
		// Deterministic: take the lowest-numbered free register.
		best := 0
		for i := range free {
			if free[i] < free[best] {
				best = i
			}
		}
		phys := free[best]
		free = append(free[:best], free[best+1:]...)
		assign[r] = phys
		inUse[phys] = r
		return phys, nil
	}

	out := make([]rawisa.Inst, len(b.Code))
	for i, in := range b.Code {
		expire(i)
		host := in.Inst
		uses, n := regUses(host)
		for k := 0; k < n; k++ {
			mapped, err := mapReg(uses[k], i, false)
			if err != nil {
				return nil, err
			}
			if k == 0 {
				host.Rs = mapped
			} else {
				host.Rt = mapped
			}
		}
		// Re-fetch non-use fields untouched: for ops where Rs/Rt are not
		// uses (e.g. MFHI), the loop above did not run for them.
		if d := regDef(in.Inst); d != 0 {
			mapped, err := mapReg(d, i, true)
			if err != nil {
				return nil, err
			}
			host.Rd = mapped
			// Extend in-use through this position even if never used
			// again (lastUse defaulted to the def position).
		}
		out[i] = host
	}

	// Resolve labels to relative instruction offsets (counted in
	// instructions from the instruction after the branch).
	for i := range out {
		switch out[i].Op {
		case rawisa.BEQ, rawisa.BNE, rawisa.BLEZ, rawisa.BGTZ, rawisa.BLTZ, rawisa.BGEZ:
			label := b.Code[i].Label
			if label == ir.NoLabel {
				return nil, fmt.Errorf("codegen: branch without label at %d", i)
			}
			target := b.LabelPos[label]
			out[i].Imm = int32(target - (i + 1))
		}
	}
	return out, nil
}
