package codegen

import (
	"errors"
	"testing"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

func build(t *testing.T, f func(b *ir.Builder)) *ir.Block {
	t.Helper()
	b := ir.NewBuilder(0x1000)
	f(b)
	blk, err := b.Finish(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func TestFinalizeMapsVRegs(t *testing.T) {
	blk := build(t, func(b *ir.Builder) {
		v1 := b.VReg()
		v2 := b.VReg()
		b.LoadImm(v1, 5)
		b.OpI(rawisa.ADDI, v2, v1, 1)
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v2)
		b.ExitImm(0x1004)
	})
	code, err := Finalize(blk)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range code {
		for _, r := range []uint8{in.Rd, in.Rs, in.Rt} {
			if r >= ir.FirstVReg {
				t.Errorf("inst %d still has virtual register %d: %v", i, r, in)
			}
		}
	}
}

func TestFinalizeReusesRegisters(t *testing.T) {
	// Sequential short-lived temps must recycle the same host register.
	blk := build(t, func(b *ir.Builder) {
		for i := 0; i < 40; i++ {
			v := b.VReg()
			b.LoadImm(v, uint32(i))
			b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		}
		b.ExitImm(0)
	})
	code, err := Finalize(blk)
	if err != nil {
		t.Fatal(err)
	}
	used := map[uint8]bool{}
	for _, in := range code {
		if d := regDef(in); d >= uint8(rawisa.RegTmp0) && d <= uint8(rawisa.RegTmpN) {
			used[d] = true
		}
	}
	if len(used) > 2 {
		t.Errorf("40 sequential temps used %d host registers", len(used))
	}
}

func TestFinalizePressureError(t *testing.T) {
	// More simultaneously-live temps than the pool has.
	blk := build(t, func(b *ir.Builder) {
		var regs []uint8
		for i := 0; i < NumTemps+2; i++ {
			v := b.VReg()
			b.LoadImm(v, uint32(i))
			regs = append(regs, v)
		}
		// Use them all at the end so every range spans the block.
		for _, v := range regs {
			b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		}
		b.ExitImm(0)
	})
	_, err := Finalize(blk)
	if !errors.Is(err, ErrRegPressure) {
		t.Fatalf("err = %v, want ErrRegPressure", err)
	}
}

func TestFinalizeResolvesBranches(t *testing.T) {
	blk := build(t, func(b *ir.Builder) {
		l := b.NewLabel()
		b.EmitBranch(rawisa.Inst{Op: rawisa.BNE, Rs: rawisa.RegEAX, Rt: 0}, l)
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEBX, 1)
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEBX, 2)
		b.Bind(l)
		b.ExitImm(0)
	})
	code, err := Finalize(blk)
	if err != nil {
		t.Fatal(err)
	}
	if code[0].Op != rawisa.BNE || code[0].Imm != 2 {
		t.Errorf("branch offset = %d, want 2 (%v)", code[0].Imm, code[0])
	}
}

func TestFinalizeKeepsPhysicalRegisters(t *testing.T) {
	blk := build(t, func(b *ir.Builder) {
		b.OpI(rawisa.ADDI, rawisa.RegESP, rawisa.RegESP, -4)
		b.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: rawisa.RegESP, Rt: rawisa.RegEAX})
		b.ExitImm(0)
	})
	code, err := Finalize(blk)
	if err != nil {
		t.Fatal(err)
	}
	if code[0].Rd != rawisa.RegESP || code[1].Rs != rawisa.RegESP || code[1].Rt != rawisa.RegEAX {
		t.Errorf("physical registers remapped: %v %v", code[0], code[1])
	}
}

func TestFinalizeDeterministic(t *testing.T) {
	mk := func() []rawisa.Inst {
		blk := build(t, func(b *ir.Builder) {
			var vs []uint8
			for i := 0; i < 8; i++ {
				v := b.VReg()
				b.LoadImm(v, uint32(i*3))
				vs = append(vs, v)
			}
			for _, v := range vs {
				b.Op3(rawisa.XOR, rawisa.RegEAX, rawisa.RegEAX, v)
			}
			b.ExitImm(0)
		})
		code, err := Finalize(blk)
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic allocation at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
