// Package core wires the parallel dynamic binary translation engine
// onto the simulated Raw machine: the runtime-execution tile kernel
// (dispatch loop + L1 code cache + tile data cache), the manager tile
// (L2 code cache, speculative translation queues, dynamic
// reconfiguration), translation slave tiles, banked L1.5 code cache
// tiles, the MMU/TLB tile, L2 data cache bank tiles, and the syscall
// proxy tile — the block diagram of the paper's Figure 3.
package core

import (
	"fmt"
	"io"

	"tilevm/internal/checkpoint"
	"tilevm/internal/fault"
	"tilevm/internal/raw"
	"tilevm/internal/trace"
)

// RecoveryMode selects how the manager handles a dead worker whose
// excision would lose state.
type RecoveryMode uint8

const (
	// RecoverExcise morphs around the failure in place: the dead tile
	// is cut out of the virtual architecture and any dirty lines in a
	// dead bank are lost (counted as WritebacksLost). This is PR 1's
	// lossy behavior and the default.
	RecoverExcise RecoveryMode = iota
	// RecoverRollback restores the last checkpoint when excision would
	// lose writebacks, re-morphs to the surviving topology and
	// re-executes, so the guest-visible final state is bit-identical to
	// a fault-free run.
	RecoverRollback
)

// ParseRecoveryMode parses the -recovery flag values.
func ParseRecoveryMode(s string) (RecoveryMode, error) {
	switch s {
	case "", "excise":
		return RecoverExcise, nil
	case "rollback":
		return RecoverRollback, nil
	}
	return 0, fmt.Errorf("core: unknown recovery mode %q (want excise or rollback)", s)
}

func (m RecoveryMode) String() string {
	if m == RecoverRollback {
		return "rollback"
	}
	return "excise"
}

// Config selects a virtual architecture: how the 16 tiles are
// provisioned between functions. The paper's experiments sweep these
// knobs (Figures 4, 5, 8, 9, 10).
type Config struct {
	Params raw.Params

	// Slaves is the number of translation slave tiles (1..9).
	Slaves int
	// Speculative enables run-ahead translation; false is the paper's
	// "conservative translator" baseline.
	Speculative bool
	// L15Banks is the number of L1.5 code cache bank tiles (0, 1, 2).
	L15Banks int
	// MemBanks is the number of L2 data cache bank tiles (1 or 4).
	MemBanks int
	// Optimize runs the optimizer on every translated block.
	Optimize bool
	// ConservativeFlags disables cross-block dead-flag elimination.
	ConservativeFlags bool

	// Tier0 enables the IR-less template translation tier: blocks in
	// the templated subset are first translated by the cheap tier-0
	// path and re-translated by the optimizing tier once hot (tier-up).
	Tier0 bool
	// TierUpThreshold is the retired-host-instruction count at which a
	// tier-0 block is promoted to the optimizing tier (0 = default).
	TierUpThreshold uint64
	// WarmupInsts, when nonzero, arms the warmup probe: the cycle at
	// which the exec tile has retired this many host instructions is
	// recorded in metrics.WarmupCycles (the cold-start metric).
	WarmupInsts uint64

	// Morph enables dynamic reconfiguration between (1 mem / 9 trans)
	// and (4 mem / 6 trans); Slaves/MemBanks then give the *initial*
	// configuration (normally 6/4).
	Morph bool
	// MorphThreshold is the translation-queue length above which the
	// manager reconfigures toward translators (paper values: 15, 0, 5).
	MorphThreshold int
	// MorphMinInterval is the hysteresis: minimum cycles between
	// reconfigurations.
	MorphMinInterval uint64

	// Ablation knobs (not part of the paper's sweeps; used by the
	// beyond-the-paper ablation benches).
	//
	// NoChain disables direct-branch chaining in the L1 code cache.
	NoChain bool
	// NoReturnPredictor disables the call-return low-priority queue.
	NoReturnPredictor bool
	// FIFOSpec collapses the prioritized speculation queues to FIFO.
	FIFOSpec bool

	// Fault, if non-nil and non-empty, installs a deterministic seeded
	// fault plan (see internal/fault): tile fail-stops and stalls,
	// message drop/delay/corruption, DRAM read errors. With Fault nil
	// (or empty) no fault code path runs and the machine is bit-identical
	// to a fault-free build.
	Fault *fault.Plan
	// FaultRecovery arms the recovery protocol alongside the fault plan:
	// worker heartbeats, watchdogged request/reply round trips with
	// retry-and-backoff on the execution tile, and manager-driven
	// excision of dead tiles through the morph/flush/remap path. With it
	// false the faults are injected but nothing defends against them —
	// useful for demonstrating the failure mode (typically a diagnosed
	// deadlock).
	FaultRecovery bool

	// Recovery selects lossy excision (default) or checkpoint rollback
	// when a dead bank holds dirty lines. Rollback implies periodic
	// checkpointing and requires FaultRecovery (the detectors).
	Recovery RecoveryMode
	// CheckpointInterval is the capture period in cycles. 0 means
	// checkpointing off, unless Recovery is RecoverRollback, in which
	// case it defaults to DefaultCheckpointInterval.
	CheckpointInterval uint64
	// Journal, if non-nil, receives the run's deterministic event
	// stream (checkpoints, syscalls, injected faults, excisions,
	// rollbacks, final state) for record-replay.
	Journal *checkpoint.Journal

	// MaxCycles is the simulation watchdog (0 = default).
	MaxCycles uint64

	// MaxBlockExecs bounds dispatch-loop iterations (0 = unlimited);
	// used by tests.
	MaxBlockExecs uint64

	// Tracer, if non-nil, records the run's virtual-time timeline (see
	// internal/trace): spans and instants for block dispatch, the code
	// cache hierarchy, the translation pipeline, the memory system, and
	// morph/fault/rollback events, each attributed to its tile, plus
	// interval samples when the tracer was built with a sample window
	// (core.NewTracer). Tracing charges zero virtual cycles and uses
	// only virtual timestamps, so a traced run is cycle-identical to an
	// untraced one; with Tracer nil no tracing code path allocates.
	// Under rollback recovery the tracer spans attempts: events from an
	// aborted attempt stay on the timeline, so the rollback itself is
	// visible.
	Tracer *trace.Tracer

	// DispatchLog, if non-nil, receives one line per dispatch-loop
	// iteration (virtual cycle, guest PC, code-cache level that
	// supplied the block), up to DispatchLogLimit lines (0 = 1000) —
	// a lightweight text alternative to Tracer.
	DispatchLog      io.Writer
	DispatchLogLimit int

	// Interrupt, if non-nil, lets a host goroutine cancel the run from
	// outside virtual time (wall-clock timeouts, operator cancels): the
	// run stops between event dispatches and returns an error matching
	// core.Interrupted. Partial results are returned alongside it.
	Interrupt *InterruptHandle

	// PanicAtDispatch is a robustness-test hook: when nonzero, the exec
	// tile kernel panics at that dispatch-loop iteration. It exists to
	// prove the panic-containment boundary (sim.PanicError →
	// core.InternalError → a structured job failure in tilevmd) end to
	// end, with the panic raised from a real tile kernel deep inside
	// the simulation rather than a stub.
	PanicAtDispatch uint64

	// SimWorkers is the simulation event-loop worker count. 0 or 1 (the
	// default) runs the serial scheduler. Above 1, a fleet run
	// (RunFleet) shards the fabric by VM slot and runs slot sub-loops
	// on that many host goroutines under conservative-lookahead
	// synchronization, with bit-identical results at any worker count.
	// Sharding applies only to fleet runs that neither lend tiles, nor
	// inject faults, nor trace, nor log dispatches (those paths need
	// cross-slot coupling the shard boundary does not carry); any other
	// run — including every single-VM core.Run — silently uses the
	// serial loop, so the flag is always safe to set.
	SimWorkers int
}

// DefaultConfig is the paper's headline configuration: 6 speculative
// translators, 2-bank L1.5, 4 memory banks, optimization on.
func DefaultConfig() Config {
	return Config{
		Params:           raw.DefaultParams(),
		Slaves:           6,
		Speculative:      true,
		L15Banks:         2,
		MemBanks:         4,
		Optimize:         true,
		MorphThreshold:   5,
		MorphMinInterval: 20_000,
		FaultRecovery:    true,
	}
}

// Fixed tile placement on the 4×4 grid (see DESIGN.md): the execution
// tile sits centrally with the L1.5 banks, manager, and MMU adjacent,
// matching the paper's explicit attention to on-chip layout.
const (
	tileSys     = 0
	tileExec    = 5
	tileManager = 4
	tileMMU     = 6
)

var (
	tilesL15        = []int{1, 9}
	tilePermBank    = 10
	tilesSwitchable = []int{2, 14, 7}
	tilesPermSlave  = []int{3, 8, 11, 12, 13, 15}
)

// placement is the resolved tile role assignment. The service-tile
// fields default to the single-VM constants; the multi-VM runner
// (multivm.go) builds placements over disjoint tile subsets.
type placement struct {
	sys     int
	exec    int
	manager int
	mmu     int
	l15     []int // L1.5 bank tiles in bank order
	banks   []int // L2 data bank tiles in bank order (initial)
	slaves  []int // translation slave tiles (initial)
	// switchable lists the tiles the morph controller retargets.
	switchable []int
	// switchIsBank records the initial role of each switchable tile.
	switchIsBank map[int]bool
	idle         []int
}

// DefaultCheckpointInterval is the capture period armed automatically
// with rollback recovery: frequent enough that re-execution after a
// fault is bounded, sparse enough that host-side capture cost stays
// small. (Capture charges no virtual cycles either way.)
const DefaultCheckpointInterval = 100_000

// DefaultTierUpThreshold is the promotion threshold used when Tier0 is
// enabled without an explicit TierUpThreshold: a block (plus whatever
// chains off its entry) must retire this many host instructions before
// the optimizing tier re-translates it.
const DefaultTierUpThreshold = 10_000

// dropDead removes dead tiles from the role lists, for a rollback
// re-execution attempt: the dead tiles are not spawned at all, and the
// restored machine starts directly in the surviving topology.
func (p *placement) dropDead(dead []int) {
	isDead := make(map[int]bool, len(dead))
	for _, t := range dead {
		isDead[t] = true
	}
	filter := func(ts []int) []int {
		kept := ts[:0]
		for _, t := range ts {
			if !isDead[t] {
				kept = append(kept, t)
			}
		}
		return kept
	}
	p.slaves = filter(append([]int(nil), p.slaves...))
	p.banks = filter(append([]int(nil), p.banks...))
	p.switchable = filter(append([]int(nil), p.switchable...))
}

// place resolves the config to tile assignments.
func place(cfg *Config) (placement, error) {
	p := placement{
		sys:        tileSys,
		exec:       tileExec,
		manager:    tileManager,
		mmu:        tileMMU,
		switchable: tilesSwitchable,
	}
	if cfg.Slaves < 1 || cfg.Slaves > len(tilesPermSlave)+len(tilesSwitchable) {
		return p, fmt.Errorf("core: %d slaves out of range", cfg.Slaves)
	}
	if cfg.L15Banks < 0 || cfg.L15Banks > len(tilesL15) {
		return p, fmt.Errorf("core: %d L1.5 banks out of range", cfg.L15Banks)
	}
	if cfg.MemBanks < 1 || cfg.MemBanks > 1+len(tilesSwitchable) {
		return p, fmt.Errorf("core: %d memory banks out of range", cfg.MemBanks)
	}
	extraSlaves := cfg.Slaves - len(tilesPermSlave)
	if extraSlaves < 0 {
		extraSlaves = 0
	}
	extraBanks := cfg.MemBanks - 1
	if extraSlaves+extraBanks > len(tilesSwitchable) {
		return p, fmt.Errorf("core: %d slaves and %d memory banks exceed the switchable tile pool",
			cfg.Slaves, cfg.MemBanks)
	}
	if cfg.Morph && (cfg.Slaves != 6 || cfg.MemBanks != 4) {
		return p, fmt.Errorf("core: morphing requires the 6-slave/4-bank initial configuration")
	}

	p.l15 = append(p.l15, tilesL15[:cfg.L15Banks]...)
	p.switchIsBank = map[int]bool{}

	if cfg.Morph {
		// Dynamic reconfiguration begins translation-heavy: "when a
		// program begins, the program has not been translated yet,
		// thus most of the silicon resources should be dedicated to
		// translation" (§2.3). The controller hands the switchable
		// tiles to the memory system once the queues drain.
		extraSlaves, extraBanks = len(tilesSwitchable), 0
	}

	n := cfg.Slaves
	if n > len(tilesPermSlave) {
		n = len(tilesPermSlave)
	}
	p.slaves = append(p.slaves, tilesPermSlave[:n]...)
	for i := 0; i < extraSlaves; i++ {
		p.slaves = append(p.slaves, tilesSwitchable[i])
		p.switchIsBank[tilesSwitchable[i]] = false
	}

	p.banks = []int{tilePermBank}
	for i := 0; i < extraBanks; i++ {
		t := tilesSwitchable[len(tilesSwitchable)-1-i]
		p.banks = append(p.banks, t)
		p.switchIsBank[t] = true
	}

	used := map[int]bool{p.sys: true, p.exec: true, p.manager: true, p.mmu: true}
	for _, t := range p.l15 {
		used[t] = true
	}
	for _, t := range p.slaves {
		used[t] = true
	}
	for _, t := range p.banks {
		used[t] = true
	}
	for t := 0; t < 16; t++ {
		if !used[t] {
			p.idle = append(p.idle, t)
		}
	}
	return p, nil
}

// validateFaultPlan rejects fault plans the recovery protocol cannot
// survive: fail-stops are only meaningful on worker tiles (translation
// slaves and data banks — the redundant, excisable resources of the
// virtual architecture; the exec, manager, MMU, L1.5, and syscall tiles
// are single points of service), at least one slave and one bank must
// outlive the plan, and fail-stops compose with morphing only trivially
// (morphing retargets the same switchable tiles recovery excises).
func validateFaultPlan(pl *placement, cfg *Config) error {
	if cfg.Fault == nil || len(cfg.Fault.Fails) == 0 {
		return nil
	}
	if cfg.Morph {
		return fmt.Errorf("core: tile fail-stops and morphing are mutually exclusive")
	}
	worker := map[int]bool{}
	for _, t := range pl.slaves {
		worker[t] = true
	}
	for _, t := range pl.banks {
		worker[t] = true
	}
	dead := map[int]bool{}
	for _, f := range cfg.Fault.Fails {
		if !worker[f.Tile] {
			return fmt.Errorf("core: fault plan fail-stops tile %d, which is not a worker (slave/bank) tile", f.Tile)
		}
		dead[f.Tile] = true
	}
	liveSlaves, liveBanks := 0, 0
	for _, t := range pl.slaves {
		if !dead[t] {
			liveSlaves++
		}
	}
	for _, t := range pl.banks {
		if !dead[t] {
			liveBanks++
		}
	}
	if liveSlaves == 0 || liveBanks == 0 {
		return fmt.Errorf("core: fault plan leaves %d live slaves and %d live banks; need at least one of each",
			liveSlaves, liveBanks)
	}
	return nil
}

// l15BankFor selects the L1.5 bank servicing a guest PC. The exec tile
// and the manager must agree on this mapping.
func l15BankFor(pc uint32, banks int) int {
	if banks <= 1 {
		return 0
	}
	return int(pc>>6) % banks
}
