package core

import (
	"reflect"
	"strings"
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/raw"
	"tilevm/internal/workload"
)

// Elastic-morphing and planner battery (ISSUE 10 satellites): a guest's
// architectural fingerprint must not depend on whether its slots came
// from the fixed carver or the cost-model planner, nor on whole-tile
// grow/shrink morphs happening around (or under) it mid-run.

func profilesFor(t *testing.T, names ...string) []GuestProfile {
	t.Helper()
	out := make([]GuestProfile, len(names))
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		out[i] = ProfileFromWorkload(p)
	}
	return out
}

// TestFleetInvarianceUnderPlanner re-runs the invariance battery's core
// property with the placement planner driving the carve: grown slots
// (undersubscribed fabrics), heterogeneous profile-driven role splits,
// and oversubscribed hand-off churn all preserve solo fingerprints.
func TestFleetInvarianceUnderPlanner(t *testing.T) {
	names := []string{"164.gzip", "181.mcf", "176.gcc", "164.gzip"}
	imgs := fleetImgs(t, names...)
	solo := soloFingerprints(t, imgs)
	profiles := profilesFor(t, names...)

	hostings := []struct {
		name string
		w, h int
		fc   FleetConfig
	}{
		{"8x8/planner/grown", 8, 8, FleetConfig{Planner: true}},
		{"8x8/planner/profiles", 8, 8, FleetConfig{Planner: true, Profiles: profiles}},
		{"4x4/planner/oversub", 4, 4, FleetConfig{Planner: true}},
		{"8x8/planner/2slots", 8, 8, FleetConfig{Planner: true, MaxSlots: 2}},
	}
	for _, hc := range hostings {
		fr, err := RunFleet(imgs, fleetCfg(hc.w, hc.h), hc.fc)
		if err != nil {
			t.Fatalf("%s: %v", hc.name, err)
		}
		checkFleetInvariance(t, hc.name, fr, imgs, solo)
	}
}

// TestFleetInvarianceUnderElasticMorph oversubscribes a two-slot carve
// so slots go idle at staggered times: the early-finishing slot donates
// its service tiles to the still-running peer (a mid-run grow under a
// live guest), which must not perturb any guest's fingerprint.
func TestFleetInvarianceUnderElasticMorph(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf")
	solo := soloFingerprints(t, imgs)

	for _, hc := range []struct {
		name string
		fc   FleetConfig
	}{
		{"4x4/elastic", FleetConfig{Elastic: true}},
		{"8x8/2slots/elastic", FleetConfig{Elastic: true, MaxSlots: 2}},
		{"8x8/2slots/planner+elastic", FleetConfig{Elastic: true, Planner: true, MaxSlots: 2}},
	} {
		w := 4
		if hc.fc.MaxSlots == 2 {
			w = 8
		}
		fr, err := RunFleet(imgs, fleetCfg(w, w), hc.fc)
		if err != nil {
			t.Fatalf("%s: %v", hc.name, err)
		}
		checkFleetInvariance(t, hc.name, fr, imgs, solo)
		if fr.Fleet.ElasticGrows == 0 {
			t.Errorf("%s: no elastic grow happened — the morph path went untested", hc.name)
		}
	}
}

// TestElasticSerialFallbackParity pins the determinism contract from
// the ISSUE: elastic runs force the serial event loop, so any requested
// -sim-workers count must produce a byte-identical FleetResult.
func TestElasticSerialFallbackParity(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf")
	run := func(workers int) *FleetResult {
		cfg := fleetCfg(8, 8)
		cfg.SimWorkers = workers
		fr, err := RunFleet(imgs, cfg, FleetConfig{Elastic: true, Planner: true, MaxSlots: 2})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("SimWorkers=%d diverged from the serial elastic run", workers)
		}
	}
}

// TestElasticGrowShrinkCycle drives one full donate→reclaim round trip
// under fault injection and rollback recovery: a slave fail-stop
// quarantines slot 0 and re-queues its guest with a long backoff; slot
// 1 goes idle first, donates its tiles to the long-running slot 2, then
// reclaims them when the retried guest's release cycle arrives and runs
// it to completion from its checkpoint. Both morph counters must fire,
// every guest must finish with its solo fingerprint, and repeated runs
// must be byte-identical.
func TestElasticGrowShrinkCycle(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "164.gzip", "176.gcc")
	layout, err := FleetSlotLayout(func() raw.Params {
		p := raw.DefaultParams()
		p.Width, p.Height = 8, 8
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *FleetResult {
		cfg := fleetCfg(8, 8)
		cfg.SimWorkers = workers
		cfg.Recovery = RecoverRollback
		cfg.Fault = &fault.Plan{Seed: 11, Fails: []fault.TileFail{
			{Tile: layout[0].Slaves[0], Cycle: 500_000},
		}}
		fr, err := RunFleet(imgs, cfg, FleetConfig{
			Elastic: true, MaxSlots: 3,
			RetryBackoff: 3_000_000, RetrySeed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a := run(1)
	if !reflect.DeepEqual(a, run(1)) {
		t.Error("elastic fault run not deterministic across repeats")
	}
	if !reflect.DeepEqual(a, run(4)) {
		t.Error("elastic fault run diverges under -sim-workers (serial fallback broken)")
	}
	if a.Fleet.ElasticGrows == 0 || a.Fleet.ElasticShrinks == 0 {
		t.Fatalf("morph counters %+v: want at least one grow and one shrink", a.Fleet)
	}
	if a.Fleet.SlotsQuarantined != 1 || a.Fleet.GuestsRetried != 1 {
		t.Fatalf("fleet counters %+v: want 1 quarantine, 1 retry", a.Fleet)
	}
	solo := soloFingerprints(t, imgs)
	for gi, g := range a.Guests {
		if g.Status != GuestFinished || g.Result == nil {
			t.Fatalf("guest %d = %v (%v), want finished", gi, g.Status, g.Err)
		}
		if got, want := fingerprint(g.Result), solo[imgs[gi]]; got != want {
			t.Errorf("guest %d fingerprint diverged\n got %+v\nwant %+v", gi, got, want)
		}
	}
	g0 := a.Guests[0]
	if g0.Attempts != 2 {
		t.Errorf("guest 0 ran %d attempts, want 2", g0.Attempts)
	}
	if g0.Result.M.Rollbacks != 1 {
		t.Errorf("guest 0 recorded %d rollbacks, want 1 (retry must restore from checkpoint)", g0.Result.M.Rollbacks)
	}
}

// TestElasticLendMutuallyExclusive pins the config validation: both
// features move slaves between VMs and cannot share a fabric.
func TestElasticLendMutuallyExclusive(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "164.gzip")
	_, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Elastic: true, Lend: true})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
	if _, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Profiles: []GuestProfile{{}, {}}}); err == nil ||
		!strings.Contains(err.Error(), "require the placement Planner") {
		t.Fatalf("want profiles-require-planner error, got %v", err)
	}
}
