package core

import (
	"fmt"

	"tilevm/internal/dcache"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/metrics"
	"tilevm/internal/raw"
	"tilevm/internal/translate"
)

// Result is the outcome of running a guest image on the machine.
type Result struct {
	Cycles   uint64
	ExitCode int32
	Stdout   string
	M        metrics.Set
	// TileBusy is the per-tile busy-cycle count (index = tile id);
	// divide by Cycles for utilization.
	TileBusy []uint64
}

// engine is the shared state of one run. The discrete-event simulator
// executes exactly one tile kernel at a time, so this state needs no
// locking.
type engine struct {
	cfg   Config
	pl    placement
	m     *raw.Machine
	proc  *guest.Process
	tr    *translate.Translator
	stats metrics.Set

	execErr    error
	stopCycles uint64
	mgr        *managerState
	pool       msgPool
	// onExit, when set, replaces the default Stop() at guest exit
	// (multi-VM coordination).
	onExit func(*raw.TileCtx)
	// peerMgr is the other VM's manager tile in multi-VM mode (-1 when
	// single-VM); lend enables cross-VM slave lending.
	peerMgr int
	lend    bool

	// Self-modifying-code tracking (single-threaded in virtual time,
	// shared between the execution tile's detector and the manager's
	// page registry).
	codePages map[uint32]bool   // 4KB pages holding translated code
	pageInval map[uint32]uint64 // page -> SMC generation of last invalidation
	smcGen    uint64

	// Fault injection. inj is non-nil only when cfg.Fault is a
	// non-empty plan; robust additionally requires cfg.FaultRecovery
	// and arms every watchdog/heartbeat/retry code path. With inj nil
	// none of those paths execute, so fault-free runs stay
	// bit-identical to the pre-fault engine.
	inj    *fault.Injector
	robust bool
	// codeSeq numbers the execution tile's demand code requests in
	// robust mode (fresh Seq per attempt, including retries).
	codeSeq uint64
	// bankOf lets the manager account a dead bank's dirty lines
	// (writeback-loss) at excision time; registered by each worker in
	// robust mode. Single-threaded in virtual time like the rest.
	bankOf map[int]*dcache.Bank
}

// Run executes a guest image under the given virtual architecture
// configuration and returns cycle counts and metrics.
func Run(img *guest.Image, cfg Config) (*Result, error) {
	pl, err := place(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000_000
	}

	e := &engine{
		cfg:     cfg,
		pl:      pl,
		m:       raw.NewMachine(cfg.Params),
		peerMgr: -1,
		proc:    guest.Load(img),
		tr: translate.New(translate.Options{
			Optimize:          cfg.Optimize,
			ConservativeFlags: cfg.ConservativeFlags,
		}),
		codePages: map[uint32]bool{},
		pageInval: map[uint32]uint64{},
	}
	e.m.Sim.SetLimit(cfg.MaxCycles)

	if !cfg.Fault.Empty() {
		if err := validateFaultPlan(&pl, &cfg); err != nil {
			return nil, err
		}
		e.inj = fault.NewInjector(cfg.Fault)
		e.m.Faults = e.inj
		e.robust = cfg.FaultRecovery
		e.bankOf = map[int]*dcache.Bank{}
	}

	e.spawn()

	simErr := e.m.Run()

	if e.stopCycles == 0 {
		e.stopCycles = e.m.Sim.Now()
	}
	e.stats.Cycles = e.stopCycles
	if e.mgr != nil {
		e.stats.L2CAccess = e.mgr.l2.Accesses
		e.stats.L2CMisses = e.mgr.l2.Misses
		e.stats.SpecWasted = uint64(len(e.mgr.specStored))
	}
	if e.inj != nil {
		fc := e.inj.Counts()
		e.stats.FaultsInjected = fc.Total()
		e.stats.MsgsDropped = fc.Drops
		e.stats.MsgsDelayed = fc.Delays
		e.stats.MsgsCorrupted = fc.Corruptions
		e.stats.DRAMErrors = fc.DRAMErrors
		e.stats.TileFails = fc.Fails
		e.stats.TileStalls = fc.Stalls
	}
	res := &Result{
		Cycles:   e.stopCycles,
		ExitCode: e.proc.Kern.ExitCode,
		Stdout:   e.proc.Kern.Stdout.String(),
		M:        e.stats,
		TileBusy: e.m.BusyCycles(),
	}
	// Partial results are returned alongside the error so callers can
	// diagnose watchdog/abort conditions.
	if simErr != nil {
		return res, fmt.Errorf("core: simulation failed: %w", simErr)
	}
	if e.execErr != nil {
		return res, fmt.Errorf("core: guest execution failed: %w", e.execErr)
	}
	return res, nil
}

// spawn registers this engine's tile kernels on the machine.
func (e *engine) spawn() {
	e.m.SpawnTile(e.pl.exec, "exec", e.execKernel)
	e.m.SpawnTile(e.pl.manager, "manager", e.managerKernel)
	e.m.SpawnTile(e.pl.mmu, "mmu", e.mmuKernel)
	e.m.SpawnTile(e.pl.sys, "syscall", e.sysKernel)
	for _, t := range e.pl.l15 {
		e.m.SpawnTile(t, "l15", e.l15Kernel)
	}
	spawned := map[int]bool{}
	for _, t := range e.pl.slaves {
		e.m.SpawnTile(t, "worker", e.workerBody(roleSlave))
		spawned[t] = true
	}
	for _, t := range e.pl.banks {
		if !spawned[t] {
			e.m.SpawnTile(t, "worker", e.workerBody(roleBank))
		}
	}
}

// tileClock adapts a tile context to the execution engine's Clock.
type tileClock struct{ c *raw.TileCtx }

func (t tileClock) Now() uint64   { return t.c.Now() }
func (t tileClock) Tick(d uint64) { t.c.Tick(d) }
