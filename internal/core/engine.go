package core

import (
	"errors"
	"fmt"

	"tilevm/internal/checkpoint"
	"tilevm/internal/dcache"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/metrics"
	"tilevm/internal/mmu"
	"tilevm/internal/raw"
	"tilevm/internal/sim"
	"tilevm/internal/translate"
)

// Result is the outcome of running a guest image on the machine.
type Result struct {
	Cycles   uint64
	ExitCode int32
	Stdout   string
	M        metrics.Set
	// StateHash condenses the guest-visible final state (registers,
	// flags, PC, exit status, stdout, memory contents); two runs with
	// equal hashes ended bit-identically.
	StateHash uint64
	// TileBusy is the per-tile busy-cycle count (index = tile id);
	// divide by Cycles for utilization. After a rollback it covers the
	// final attempt only.
	TileBusy []uint64
}

// engine is the shared state of one run. The discrete-event simulator
// executes exactly one tile kernel at a time, so this state needs no
// locking.
type engine struct {
	cfg   Config
	pl    placement
	m     *raw.Machine
	proc  *guest.Process
	tr    *translate.Translator
	stats metrics.Set

	execErr    error
	stopCycles uint64
	mgr        *managerState
	pool       msgPool
	// onExit, when set, replaces the default Stop() at guest exit
	// (multi-VM coordination).
	onExit func(*raw.TileCtx)
	// peers lists the other VMs' manager tiles in fleet mode (empty when
	// single-VM); lend enables cross-VM slave lending. homeMgr maps
	// every fleet slave tile to its home manager so a draining manager
	// can send borrowed slaves back where they belong; vmLabel tags this
	// engine's trace rows with its guest index.
	peers   []int
	lend    bool
	homeMgr map[int]int
	vmLabel string
	// Fleet fault-tolerance hooks (all zero/nil outside fleet-fault
	// mode, so the paths they gate never run and fault-free fleets stay
	// bit-identical to the pre-policy scheduler). cancelled marks this
	// engine's guest as aborted (quarantine or deadline): the exec
	// kernel breaks out of its dispatch loop and the manager stops
	// broadcasting for help. trackWork extends the robust-only
	// outstanding-work bookkeeping to non-robust fleet engines so the
	// supervisor can re-queue work stranded on a quarantined slave — the
	// bookkeeping is host-side only, invisible on the network. fleetDead
	// is the fleet-wide set of fail-stopped tiles, shared by every
	// engine; managers consult it before parking a returned slave.
	cancelled bool
	trackWork bool
	fleetDead map[int]bool
	// elastic is the fleet-wide elastic-morphing ledger (nil outside
	// elastic fleet mode), shared by every engine like fleetDead so it
	// survives slot epoch changes; the manager consults it to release
	// donated tiles back to their owner slot.
	elastic *elasticState

	// Self-modifying-code tracking (single-threaded in virtual time,
	// shared between the execution tile's detector and the manager's
	// page registry).
	codePages map[uint32]bool   // 4KB pages holding translated code
	pageInval map[uint32]uint64 // page -> SMC generation of last invalidation
	smcGen    uint64

	// Tiered-translation promotion state (consulted only when
	// cfg.Tier0; host-side and single-threaded in virtual time, shared
	// between the exec tile and the manager like the SMC registry).
	// hot accumulates retired host instructions per dispatched entry
	// PC; promoSent latches fired promotion requests; tier0Blk tracks
	// which installed blocks came from the template tier; promoGen
	// counts settled promotions (the exec tile flushes its chained L1
	// arena when it changes), and promoFresh marks just-promoted PCs
	// the exec tile must refetch from the manager, past any L1.5 bank
	// still holding the tier-0 copy.
	hot        map[uint32]uint64
	promoSent  map[uint32]bool
	tier0Blk   map[uint32]bool
	promoFresh map[uint32]bool
	promoGen   uint64

	// Fault injection. inj is non-nil only when cfg.Fault is a
	// non-empty plan; robust additionally requires cfg.FaultRecovery
	// and arms every watchdog/heartbeat/retry code path. With inj nil
	// none of those paths execute, so fault-free runs stay
	// bit-identical to the pre-fault engine.
	inj    *fault.Injector
	robust bool
	// codeSeq numbers the execution tile's demand code requests in
	// robust mode (fresh Seq per attempt, including retries).
	codeSeq uint64
	// bankOf lets the manager account a dead bank's dirty lines
	// (writeback-loss) at excision time; registered by each worker in
	// robust mode. Single-threaded in virtual time like the rest.
	bankOf map[int]*dcache.Bank

	// Checkpoint/rollback state. ck drives the capture cadence (nil
	// when checkpointing is off); restore is the snapshot this attempt
	// re-executes from (nil on the first attempt); restoreBlocks holds
	// the re-translated code cache contents for the restore; rollback
	// is set by the manager when a dead bank's dirty lines demand a
	// rollback instead of a lossy excision, and aborts the attempt.
	ck            *checkpoint.Checkpointer
	restore       *checkpoint.State
	restoreBlocks map[uint32]*translate.Result
	rollback      *rollbackReq
	// mmuLive is the MMU tile kernel's live state, registered so the
	// exec-tile capture can snapshot it.
	mmuLive *mmu.MMU
}

// rollbackReq records a manager-detected failure that requires
// rollback: the dead tile and the detection cycle.
type rollbackReq struct {
	tile   int
	detect uint64
}

// rollbackStats carries accounting across re-execution attempts: the
// restored metrics snapshot predates the rollback, so these totals are
// re-applied at the start of every attempt.
type rollbackStats struct {
	rollbacks uint64
	reexec    uint64 // checkpoint-to-detection cycles re-executed
	penalty   uint64 // modeled restore cost charged
	faults    fault.Counts
	recycled  uint64 // pool recycle count from aborted attempts
}

// maxRollbackAttempts bounds re-execution; a plan with more distinct
// worker failures than this is rejected by validateFaultPlan anyway.
const maxRollbackAttempts = 16

// jadd appends to the run's journal, if one is configured.
func (e *engine) jadd(kind checkpoint.EventKind, cycle, a, b uint64) {
	e.cfg.Journal.Add(kind, cycle, a, b)
}

// Run executes a guest image under the given virtual architecture
// configuration and returns cycle counts and metrics.
//
// With rollback recovery armed, Run is an attempt loop: goroutine
// stacks cannot be snapshotted, so "rollback" means aborting the
// simulation, building a fresh machine seeded from the last checkpoint
// (with the dead tile removed from the placement), and re-running on
// the same absolute timeline via sim.SetStart. Checkpoints are captured
// at the exec tile's dispatch boundary, where no request is
// outstanding; in-flight messages are dropped by the restore, which is
// exactly the lost-message case the retry/heartbeat protocols recover
// from.
func Run(img *guest.Image, cfg Config) (*Result, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000_000
	}
	if cfg.Recovery == RecoverRollback {
		if cfg.CheckpointInterval == 0 {
			cfg.CheckpointInterval = DefaultCheckpointInterval
		}
		if !cfg.Fault.Empty() && !cfg.FaultRecovery {
			return nil, fmt.Errorf("core: rollback recovery requires fault recovery (the failure detectors)")
		}
	}
	var ck *checkpoint.Checkpointer
	if cfg.CheckpointInterval > 0 {
		ck = checkpoint.NewCheckpointer(cfg.CheckpointInterval)
	}

	var (
		dead  []int
		start uint64
		extra rollbackStats
	)
	for attempt := 0; ; attempt++ {
		res, rb, err := runAttempt(img, cfg, ck, dead, start, extra)
		if rb == nil {
			return res, err
		}
		if attempt+1 >= maxRollbackAttempts {
			return res, fmt.Errorf("core: rollback recovery exceeded %d attempts", maxRollbackAttempts)
		}
		dead = append(dead, rb.tile)
		restore := ck.Last()
		var target, pages uint64
		if restore != nil {
			target = restore.Cycles
			pages = uint64(len(restore.Mem.Pages))
		}
		penalty := cfg.Params.RollbackFixedOcc + pages*cfg.Params.RollbackPerPageOcc
		start = rb.detect + penalty
		extra.rollbacks++
		extra.reexec += rb.detect - target
		extra.penalty += penalty
		extra.faults = addCounts(extra.faults, rb.counts)
		extra.recycled += rb.recycled
		ck.Rearm()
		cfg.Journal.Add(checkpoint.EvRollback, start, uint64(rb.tile), target)
		cfg.Tracer.Instant(rb.tile, "rollback", start, "restore_to", target, "dead_tile", uint64(rb.tile))
	}
}

// addCounts sums fault tallies across re-execution attempts. Faults
// injected before a rollback really happened in simulation, so the
// final metrics report the cumulative count.
func addCounts(a, b fault.Counts) fault.Counts {
	return fault.Counts{
		Drops:       a.Drops + b.Drops,
		Delays:      a.Delays + b.Delays,
		Corruptions: a.Corruptions + b.Corruptions,
		Stalls:      a.Stalls + b.Stalls,
		Fails:       a.Fails + b.Fails,
		DRAMErrors:  a.DRAMErrors + b.DRAMErrors,
	}
}

// abortedAttempt extends rollbackReq with the aborted attempt's
// carried accounting.
type abortedAttempt struct {
	rollbackReq
	counts   fault.Counts
	recycled uint64
}

// runAttempt performs one full simulation. It returns a non-nil
// abortedAttempt when the manager requested a rollback; the caller
// re-invokes with the dead tile excluded and the clock advanced.
func runAttempt(img *guest.Image, cfg Config, ck *checkpoint.Checkpointer,
	dead []int, start uint64, extra rollbackStats) (*Result, *abortedAttempt, error) {

	pl, err := place(&cfg)
	if err != nil {
		return nil, nil, err
	}
	restore := ck.Last()
	plan := cfg.Fault
	if len(dead) > 0 {
		pl.dropDead(dead)
		if len(pl.slaves) == 0 || len(pl.banks) == 0 {
			return nil, nil, fmt.Errorf("core: rollback left %d slaves and %d banks; need at least one of each",
				len(pl.slaves), len(pl.banks))
		}
		// Dead tiles are not spawned, so their fail clauses must not
		// re-fire (and re-count) during re-execution.
		plan = plan.WithoutFails(dead)
		cfg.Fault = plan
	} else {
		// First attempt: run from the image, not from a snapshot.
		restore = nil
	}

	e := &engine{
		cfg:  cfg,
		pl:   pl,
		m:    raw.NewMachine(cfg.Params),
		proc: guest.Load(img),
		tr: translate.New(translate.Options{
			Optimize:          cfg.Optimize,
			ConservativeFlags: cfg.ConservativeFlags,
		}),
		codePages: map[uint32]bool{},
		pageInval: map[uint32]uint64{},
		ck:        ck,
		restore:   restore,
	}
	e.initTierState()
	e.m.Sim.SetLimit(cfg.MaxCycles)
	cfg.Interrupt.bind(e.m.Sim)
	if start > 0 {
		e.m.Sim.SetStart(start)
	}
	e.m.SetTracer(cfg.Tracer)
	e.registerTraceProcs()

	if !cfg.Fault.Empty() {
		if err := validateFaultPlan(&pl, &cfg); err != nil {
			return nil, nil, err
		}
		e.inj = fault.NewInjector(cfg.Fault)
		e.m.Faults = e.inj
		e.robust = cfg.FaultRecovery
		e.bankOf = map[int]*dcache.Bank{}
		if cfg.Journal != nil || cfg.Tracer != nil {
			e.inj.Observe = func(kind fault.Kind, tile int, now uint64) {
				e.jadd(checkpoint.EvFault, now, uint64(kind), uint64(tile))
				e.trc().Instant(tile, "fault", now, "kind", uint64(kind), "", 0)
			}
		}
		// Dropped messages never enter a port queue, so the sender
		// holds the only reference and pooled payloads recycle
		// immediately at the send site.
		e.m.OnDrop = e.recycleFaulty
	}

	if restore != nil {
		e.applyRestore(restore)
	}
	e.stats.Rollbacks = extra.rollbacks
	e.stats.ReexecCycles = extra.reexec
	e.stats.RollbackCycles = extra.penalty

	e.spawn()

	simErr := e.m.Run()

	if e.rollback != nil {
		// The attempt is abandoned wholesale; only the fault tallies
		// survive into the accounting of the final attempt.
		return nil, &abortedAttempt{
			rollbackReq: *e.rollback,
			counts:      e.inj.Counts(),
			recycled:    e.pool.Recycled,
		}, nil
	}

	if e.stopCycles == 0 {
		e.stopCycles = e.m.Sim.Now()
	}
	e.stats.Cycles = e.stopCycles
	if e.mgr != nil {
		e.stats.L2CAccess = e.mgr.l2.Accesses
		e.stats.L2CMisses = e.mgr.l2.Misses
		e.stats.SpecWasted = uint64(len(e.mgr.specStored))
	}
	if e.inj != nil {
		fc := addCounts(extra.faults, e.inj.Counts())
		e.stats.FaultsInjected = fc.Total()
		e.stats.MsgsDropped = fc.Drops
		e.stats.MsgsDelayed = fc.Delays
		e.stats.MsgsCorrupted = fc.Corruptions
		e.stats.DRAMErrors = fc.DRAMErrors
		e.stats.TileFails = fc.Fails
		e.stats.TileStalls = fc.Stalls
	}
	e.stats.FaultMsgsRecycled = extra.recycled + e.pool.Recycled
	res := &Result{
		Cycles:    e.stopCycles,
		ExitCode:  e.proc.Kern.ExitCode,
		Stdout:    e.proc.Kern.Stdout.String(),
		M:         e.stats,
		StateHash: checkpoint.FinalHash(e.proc),
		TileBusy:  e.m.BusyCycles(),
	}
	e.jadd(checkpoint.EvFinal, e.stopCycles, uint64(uint32(res.ExitCode)), res.StateHash)
	// Partial results are returned alongside the error so callers can
	// diagnose watchdog/abort conditions.
	if simErr != nil {
		var perr *sim.PanicError
		if errors.As(simErr, &perr) {
			// A panicking tile kernel becomes a structured InternalError:
			// single-machine runs have exactly one guest to blame.
			ie := internalFromSim(perr)
			ie.Guest, ie.Slot = 0, 0
			return res, nil, ie
		}
		return res, nil, fmt.Errorf("core: simulation failed: %w", simErr)
	}
	if e.execErr != nil {
		return res, nil, fmt.Errorf("core: guest execution failed: %w", e.execErr)
	}
	return res, nil, nil
}

// spawn registers this engine's tile kernels on the machine.
func (e *engine) spawn() {
	e.m.SpawnTile(e.pl.exec, "exec", e.execKernel)
	e.m.SpawnTile(e.pl.manager, "manager", e.managerKernel)
	e.m.SpawnTile(e.pl.mmu, "mmu", e.mmuKernel)
	e.m.SpawnTile(e.pl.sys, "syscall", e.sysKernel)
	for _, t := range e.pl.l15 {
		e.m.SpawnTile(t, "l15", e.l15Kernel)
	}
	spawned := map[int]bool{}
	for _, t := range e.pl.slaves {
		e.m.SpawnTile(t, "worker", e.workerBody(roleSlave))
		spawned[t] = true
	}
	for _, t := range e.pl.banks {
		if !spawned[t] {
			e.m.SpawnTile(t, "worker", e.workerBody(roleBank))
		}
	}
}

// initTierState allocates the tier-0 promotion maps (cheap enough to
// do unconditionally; every path consulting them is gated on cfg.Tier0).
func (e *engine) initTierState() {
	e.hot = map[uint32]uint64{}
	e.promoSent = map[uint32]bool{}
	e.tier0Blk = map[uint32]bool{}
	e.promoFresh = map[uint32]bool{}
}

// tierUpThreshold resolves the promotion threshold, applying the
// default when the config leaves it zero.
func (e *engine) tierUpThreshold() uint64 {
	if e.cfg.TierUpThreshold > 0 {
		return e.cfg.TierUpThreshold
	}
	return DefaultTierUpThreshold
}

// tileClock adapts a tile context to the execution engine's Clock.
type tileClock struct{ c *raw.TileCtx }

func (t tileClock) Now() uint64   { return t.c.Now() }
func (t tileClock) Tick(d uint64) { t.c.Tick(d) }
