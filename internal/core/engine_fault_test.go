package core

import (
	"errors"
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/sim"
)

// TestFaultEmptyPlanIsNoOp: installing an empty fault plan must leave
// the run bit-identical to a run with no plan at all — cycle count and
// the full metrics set compare equal.
func TestFaultEmptyPlanIsNoOp(t *testing.T) {
	img := sumLoop(2000)
	run := func(plan *fault.Plan) *Result {
		cfg := DefaultConfig()
		cfg.MaxCycles = 500_000_000
		cfg.Fault = plan
		res, err := Run(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	empty := run(&fault.Plan{})
	if bare.Cycles != empty.Cycles {
		t.Errorf("cycles differ: %d vs %d", bare.Cycles, empty.Cycles)
	}
	if bare.M != empty.M {
		t.Errorf("metrics differ:\nnil plan: %+v\nempty plan: %+v", bare.M, empty.M)
	}
}

// TestFaultDeterminism: the same workload under the same fault seed
// must reproduce bit-for-bit — identical cycles and identical metrics,
// including the fault and recovery counters.
func TestFaultDeterminism(t *testing.T) {
	img := sumLoop(4000)
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.MaxCycles = 2_000_000_000
		cfg.Fault = &fault.Plan{
			Seed:        42,
			DropProb:    0.01,
			DelayProb:   0.02,
			DelayCycles: 400,
			CorruptProb: 0.01,
			DRAMProb:    0.05,
			Stalls:      []fault.TileStall{{Tile: 6, Cycle: 30_000, Dur: 5_000}},
		}
		res, err := Run(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical seeded runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.M != b.M {
		t.Errorf("metrics differ across identical seeded runs:\n%+v\n%+v", a.M, b.M)
	}
	if a.M.FaultsInjected == 0 {
		t.Error("no faults injected by a probabilistic plan")
	}
	// A different seed must produce a different fault schedule (the
	// counters are the cheapest witness).
	cfg := DefaultConfig()
	cfg.MaxCycles = 2_000_000_000
	cfg.Fault = &fault.Plan{Seed: 43, DropProb: 0.01, DelayProb: 0.02, DelayCycles: 400,
		CorruptProb: 0.01, DRAMProb: 0.05,
		Stalls: []fault.TileStall{{Tile: 6, Cycle: 30_000, Dur: 5_000}}}
	c, err := Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles && c.M == a.M {
		t.Error("different seeds produced identical runs")
	}
}

// TestFaultChaosRecovers: probabilistic drop/delay/corrupt/DRAM faults
// on every message class, with recovery armed, must still produce the
// architecturally correct result — every protocol leg has a watchdog
// or is idempotent/deduplicated.
func TestFaultChaosRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 4_000_000_000
	cfg.Fault = &fault.Plan{
		Seed:        7,
		DropProb:    0.01,
		DelayProb:   0.02,
		DelayCycles: 1_000,
		CorruptProb: 0.01,
		DRAMProb:    0.05,
	}
	res := checkAgainstReference(t, sumLoop(2000), cfg)
	if res.M.MsgsDropped == 0 {
		t.Error("chaos plan dropped nothing")
	}
	if res.M.Retries == 0 {
		t.Error("dropped messages but no retries recorded")
	}
}

// TestFaultSurvivesSlaveAndBankKill is the headline recovery scenario:
// fail-stop one translation slave and one L2 data bank mid-run. The
// machine must detect both deaths, excise the tiles (re-queueing the
// dead slave's work, redistributing the dead bank's address fraction),
// and still produce the architecturally correct result.
func TestFaultSurvivesSlaveAndBankKill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 4_000_000_000
	cfg.Fault = &fault.Plan{
		Fails: []fault.TileFail{
			{Tile: 8, Cycle: 100_000},   // a permanent translation slave
			{Tile: 7, Cycle: 1_200_000}, // a switchable tile serving as bank
		},
	}
	res := checkAgainstReference(t, sumLoop(20000), cfg)
	if res.M.TileFails != 2 {
		t.Errorf("TileFails = %d, want 2", res.M.TileFails)
	}
	if res.M.RoleRemaps < 2 {
		t.Errorf("RoleRemaps = %d, want >= 2 (slave and bank excision)", res.M.RoleRemaps)
	}
	if res.M.Retries == 0 {
		t.Error("no retries despite a dead bank servicing live addresses")
	}
	if res.M.RecoveryCycles == 0 {
		t.Error("bank excision recorded no recovery latency")
	}
	if res.M.WritebacksLost == 0 {
		t.Error("dead bank held no dirty lines (writeback-loss accounting silent)")
	}
}

// TestFaultWithoutRecoveryDeadlocksWithDiagnostic: the same bank kill
// with recovery disarmed must end in a diagnosed deadlock — the run
// terminates (no hang) and the error names each blocked tile kernel
// and the port it is waiting on.
func TestFaultWithoutRecoveryDeadlocksWithDiagnostic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 4_000_000_000
	cfg.FaultRecovery = false
	// Without speculation the translation pipeline goes idle once the
	// execution tile blocks, so quiescence (and the deadlock report) is
	// reached quickly instead of after the run-ahead walker drains.
	cfg.Speculative = false
	cfg.Fault = &fault.Plan{
		Fails: []fault.TileFail{{Tile: 7, Cycle: 50_000}},
	}
	_, err := Run(sumLoop(20000), cfg)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want a *sim.DeadlockError", err)
	}
	if len(dl.Blocked) == 0 {
		t.Fatal("deadlock report lists no blocked processes")
	}
	foundExec := false
	for _, b := range dl.Blocked {
		if b.Proc == "exec@5" && b.Port == "tile5.in" {
			foundExec = true
		}
	}
	if !foundExec {
		t.Errorf("execution tile missing from deadlock report: %+v", dl.Blocked)
	}
}

// TestFaultPlanValidation: fail-stops outside the excisable worker set,
// plans that leave no survivors, and fail-stop+morph combinations are
// rejected up front.
func TestFaultPlanValidation(t *testing.T) {
	img := sumLoop(10)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"exec tile", func(c *Config) {
			c.Fault = &fault.Plan{Fails: []fault.TileFail{{Tile: 5, Cycle: 100}}}
		}},
		{"manager tile", func(c *Config) {
			c.Fault = &fault.Plan{Fails: []fault.TileFail{{Tile: 4, Cycle: 100}}}
		}},
		{"all banks", func(c *Config) {
			c.Fault = &fault.Plan{Fails: []fault.TileFail{
				{Tile: 10, Cycle: 100}, {Tile: 7, Cycle: 100},
				{Tile: 14, Cycle: 100}, {Tile: 2, Cycle: 100}}}
		}},
		{"morph+fail", func(c *Config) {
			c.Morph = true
			c.Fault = &fault.Plan{Fails: []fault.TileFail{{Tile: 7, Cycle: 100}}}
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := Run(img, cfg); err == nil {
			t.Errorf("%s: invalid fault plan accepted", tc.name)
		}
	}
}
