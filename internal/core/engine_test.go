package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
	"tilevm/internal/x86interp"
)

func image(build func(a *x86.Asm)) *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	build(a)
	return &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
}

func exitWith(a *x86.Asm) {
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
}

// sumLoop computes sum 1..n with some memory traffic.
func sumLoop(n uint32) *guest.Image {
	return image(func(a *x86.Asm) {
		a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
		a.MovRegImm(x86.EBX, 0)
		a.MovRegImm(x86.ECX, n)
		a.Label("loop")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.MovMemReg(x86.MemIdx(x86.ESI, x86.ECX, 4, 0), x86.EBX)
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.MemIdx(x86.ESI, x86.ECX, 4, 0))
		a.ALU(x86.SUB, x86.RegOp(x86.EBX, 4), x86.MemIdx(x86.ESI, x86.ECX, 4, 0))
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.MemIdx(x86.ESI, x86.ECX, 4, 0))
		a.ALU(x86.SUB, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "loop")
		exitWith(a)
	})
}

// checkAgainstReference runs img on the machine under cfg and verifies
// exit status and registers against the reference interpreter.
func checkAgainstReference(t *testing.T, img *guest.Image, cfg Config) *Result {
	t.Helper()
	ref := guest.Load(img)
	if exited, err := x86interp.New(ref).Run(20_000_000); err != nil || !exited {
		t.Fatalf("reference: err=%v exited=%v", err, exited)
	}
	res, err := Run(img, cfg)
	if err != nil {
		t.Fatalf("machine run: %v", err)
	}
	if res.ExitCode != ref.Kern.ExitCode {
		t.Errorf("exit code %d, want %d", res.ExitCode, ref.Kern.ExitCode)
	}
	if res.Stdout != ref.Kern.Stdout.String() {
		t.Errorf("stdout %q, want %q", res.Stdout, ref.Kern.Stdout.String())
	}
	if res.Cycles == 0 {
		t.Error("zero cycle count")
	}
	return res
}

func TestMachineRunsSimpleLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 500_000_000
	res := checkAgainstReference(t, sumLoop(2000), cfg)
	if res.M.Translations == 0 || res.M.L2CAccess == 0 {
		t.Errorf("metrics not collected: %+v", res.M)
	}
}

func TestMachineAllStaticConfigs(t *testing.T) {
	img := sumLoop(500)
	for _, c := range []struct {
		name string
		mut  func(*Config)
	}{
		{"conservative-1", func(c *Config) { c.Slaves = 1; c.Speculative = false }},
		{"spec-1", func(c *Config) { c.Slaves = 1 }},
		{"spec-2", func(c *Config) { c.Slaves = 2 }},
		{"spec-4", func(c *Config) { c.Slaves = 4 }},
		{"spec-6", func(c *Config) { c.Slaves = 6 }},
		{"spec-9", func(c *Config) { c.Slaves = 9; c.MemBanks = 1 }},
		{"no-l15", func(c *Config) { c.L15Banks = 0 }},
		{"l15-1", func(c *Config) { c.L15Banks = 1 }},
		{"no-opt", func(c *Config) { c.Optimize = false; c.ConservativeFlags = true }},
		{"1-bank", func(c *Config) { c.MemBanks = 1 }},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxCycles = 500_000_000
			c.mut(&cfg)
			checkAgainstReference(t, img, cfg)
		})
	}
}

func TestMachineMorphing(t *testing.T) {
	for _, thr := range []int{0, 5, 15} {
		thr := thr
		t.Run(fmt.Sprintf("threshold%d", thr), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Morph = true
			cfg.MorphThreshold = thr
			cfg.MorphMinInterval = 5_000
			cfg.MaxCycles = 500_000_000
			res := checkAgainstReference(t, sumLoop(2000), cfg)
			t.Logf("reconfigs=%d flushLines=%d cycles=%d",
				res.M.Reconfigs, res.M.MorphFlushLines, res.Cycles)
		})
	}
}

func TestMachineFunctionCallsAndMemory(t *testing.T) {
	img := image(func(a *x86.Asm) {
		a.PushImm(8)
		a.Call("fib")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.MovRegReg(x86.EBX, x86.EAX)
		exitWith(a)
		a.Label("fib")
		a.Push(x86.EBP)
		a.MovRegReg(x86.EBP, x86.ESP)
		a.MovRegMem(x86.EAX, x86.Mem(x86.EBP, 8))
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(2, 4))
		a.Jcc(x86.CondL, "ret")
		a.DecReg(x86.EAX)
		a.Push(x86.EAX)
		a.Call("fib")
		a.MovRegReg(x86.ECX, x86.EAX)
		a.MovRegMem(x86.EAX, x86.Mem(x86.ESP, 0))
		a.DecReg(x86.EAX)
		a.Push(x86.ECX)
		a.Push(x86.EAX)
		a.Call("fib")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.Pop(x86.ECX)
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.ALU(x86.ADD, x86.RegOp(x86.EAX, 4), x86.RegOp(x86.ECX, 4))
		a.Label("ret")
		a.Pop(x86.EBP)
		a.Ret()
	})
	cfg := DefaultConfig()
	cfg.MaxCycles = 500_000_000
	res := checkAgainstReference(t, img, cfg)
	if res.ExitCode != 21 { // fib(8)
		t.Errorf("fib(8) = %d, want 21", res.ExitCode)
	}
}

func TestMachineSpeculationReducesDemandMisses(t *testing.T) {
	// A long-running warm-up loop followed by a long chain of distinct
	// blocks: while the execution tile spins in the loop, speculative
	// translators run ahead down the fallthrough chain (Figure 1's
	// overlap), so the chain executes without demand misses.
	img := image(func(a *x86.Asm) {
		a.MovRegImm(x86.ECX, 20000)
		a.MovRegImm(x86.EBX, 0)
		a.Label("spin")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.ImmOp(0x55, 4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "spin")
		for i := 0; i < 200; i++ {
			a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(int32(i), 4))
			a.Jmp(fmt.Sprintf("b%d", i)) // block boundary
			a.Label(fmt.Sprintf("b%d", i))
		}
		exitWith(a)
	})
	run := func(slaves int, spec bool) *Result {
		cfg := DefaultConfig()
		cfg.Slaves = slaves
		cfg.Speculative = spec
		cfg.MaxCycles = 500_000_000
		res, err := Run(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	conservative := run(1, false)
	spec6 := run(6, true)
	if spec6.M.DemandMisses >= conservative.M.DemandMisses {
		t.Errorf("speculation did not reduce demand misses: %d vs %d",
			spec6.M.DemandMisses, conservative.M.DemandMisses)
	}
	if spec6.Cycles >= conservative.Cycles {
		t.Errorf("speculation did not speed up a translation-bound run: %d vs %d cycles",
			spec6.Cycles, conservative.Cycles)
	}
}

func TestMachineChainingKeepsHotLoopInL1(t *testing.T) {
	res := checkAgainstReference(t, sumLoop(5000), DefaultConfig())
	// A tight loop must be dispatched once and then chained: block
	// dispatches should be far below iteration count.
	if res.M.BlockDispatches > 1000 {
		t.Errorf("hot loop not chained: %d dispatches", res.M.BlockDispatches)
	}
	if res.M.Chains == 0 {
		t.Error("no chain patches recorded")
	}
}

func TestPlacementValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Slaves = 0 },
		func(c *Config) { c.Slaves = 10 },
		func(c *Config) { c.Slaves = 9; c.MemBanks = 4 },
		func(c *Config) { c.L15Banks = 3 },
		func(c *Config) { c.MemBanks = 0 },
		func(c *Config) { c.Morph = true; c.Slaves = 9; c.MemBanks = 1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := place(&cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := DefaultConfig()
	pl, err := place(&good)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if len(pl.slaves) != 6 || len(pl.banks) != 4 || len(pl.l15) != 2 {
		t.Errorf("placement = %+v", pl)
	}
	// Roles must be disjoint.
	seen := map[int]bool{tileSys: true, tileExec: true, tileManager: true, tileMMU: true}
	for _, lists := range [][]int{pl.slaves, pl.banks, pl.l15} {
		for _, tile := range lists {
			if seen[tile] {
				t.Errorf("tile %d assigned twice", tile)
			}
			seen[tile] = true
		}
	}
}

// TestMachineSelfModifyingCode patches an instruction's immediate at
// runtime, inside a hot chained loop, and checks the machine both
// produces the reference result and records the invalidation.
func TestMachineSelfModifyingCode(t *testing.T) {
	build := func(patchAddr uint32) *x86.Asm {
		a := x86.NewAsm(guest.DefaultCodeBase)
		a.MovRegImm(x86.EDX, 0)
		a.MovRegImm(x86.EDI, 0)
		a.Label("top")
		a.Label("patch")
		a.MovRegImm(x86.EBX, 5) // imm at patch+1
		a.ALU(x86.ADD, x86.RegOp(x86.EDI, 4), x86.RegOp(x86.EBX, 4))
		a.ALU(x86.CMP, x86.RegOp(x86.EDX, 4), x86.ImmOp(10, 4))
		a.Jcc(x86.CondE, "done")
		a.IncReg(x86.EDX)
		a.ALU(x86.CMP, x86.RegOp(x86.EDX, 4), x86.ImmOp(5, 4))
		a.Jcc(x86.CondNE, "top")
		// Halfway through: patch the immediate from 5 to 7.
		a.MovRegImm(x86.ESI, patchAddr+1)
		a.MovRegImm(x86.EAX, 7)
		a.MovMemReg8(x86.Mem(x86.ESI, 0), x86.EAX)
		a.Jmp("top")
		a.Label("done")
		a.MovRegReg(x86.EBX, x86.EDI)
		exitWith(a)
		a.Bytes()
		return a
	}
	p1 := build(0)
	a := build(p1.LabelAddr("patch"))
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}

	res := checkAgainstReference(t, img, DefaultConfig())
	if res.M.SMCInvalidations == 0 {
		t.Error("no SMC invalidation recorded")
	}
	// 6 iterations at 5 (edx 0..5), then 5 at 7 (edx 6..10): 30+35? The
	// reference interpreter defines truth; just confirm the new value
	// was observed (exit != 11*5).
	if res.ExitCode == 55 {
		t.Error("patched immediate never took effect (stale translation executed)")
	}
}

// TestMachineRandomDifferential pushes seeded random programs through
// the full machine (all tile kernels, caches, assists, SMC detection)
// and compares final state with the reference interpreter — the
// machine-level counterpart of the flat differential suite in
// internal/translate.
func TestMachineRandomDifferential(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			img := randomMachineProgram(seed, 150)
			ref := guest.Load(img)
			if exited, err := x86interp.New(ref).Run(5_000_000); err != nil || !exited {
				t.Fatalf("reference: %v exited=%v", err, exited)
			}
			cfg := DefaultConfig()
			cfg.MaxCycles = 1_000_000_000
			res, err := Run(img, cfg)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}
			if res.ExitCode != ref.Kern.ExitCode {
				t.Errorf("exit %d, want %d", res.ExitCode, ref.Kern.ExitCode)
			}
		})
	}
}

// randomMachineProgram mirrors the translate package's generator with
// loops added so blocks chain and re-execute on the machine.
func randomMachineProgram(seed int64, n int) *guest.Image {
	r := rand.New(rand.NewSource(seed))
	a := x86.NewAsm(guest.DefaultCodeBase)
	// EBP anchors the loop-counter frame and ESI the data region;
	// everything else is scratch.
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.EDI}
	reg := func() x86.Reg { return regs[r.Intn(len(regs))] }
	a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
	for _, rg := range regs {
		a.MovRegImm(rg, r.Uint32())
	}
	// Outer loop in a stack slot so all scratch registers stay free.
	a.Push(x86.EBP)
	a.MovRegReg(x86.EBP, x86.ESP)
	a.ALU(x86.SUB, x86.RegOp(x86.ESP, 4), x86.ImmOp(16, 4))
	a.MovMemImm(x86.Mem(x86.EBP, -4), 40)
	a.Label("outer")
	aluOps := []x86.Op{x86.ADD, x86.SUB, x86.ADC, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP}
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			op := aluOps[r.Intn(len(aluOps))]
			if r.Intn(2) == 0 {
				a.ALU(op, x86.RegOp(reg(), 4), x86.RegOp(reg(), 4))
			} else {
				a.ALU(op, x86.RegOp(reg(), 4), x86.ImmOp(int32(r.Uint32()), 4))
			}
		case 3:
			a.MovMemReg(x86.Mem(x86.ESI, int32(r.Intn(2048))*4), reg())
		case 4:
			a.MovRegMem(reg(), x86.Mem(x86.ESI, int32(r.Intn(2048))*4))
		case 5:
			ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR, x86.RCL, x86.RCR}
			a.ShiftImm(ops[r.Intn(len(ops))], x86.RegOp(reg(), 4), uint8(1+r.Intn(31)))
		case 6:
			a.Setcc(x86.Cond(r.Intn(16)), x86.RegOp(reg(), 1))
		case 7:
			a.IMulRegRMImm(reg(), x86.RegOp(reg(), 4), int32(r.Intn(4096))-2048)
		case 8: // short forward branch: both paths converge
			lbl := fmt.Sprintf("skip%d", i)
			a.TestImm(x86.RegOp(reg(), 4), 1)
			a.Jcc(x86.CondNE, lbl)
			a.ALU(x86.XOR, x86.RegOp(reg(), 4), x86.ImmOp(int32(r.Uint32()), 4))
			a.Label(lbl)
		case 9:
			ops := []x86.Op{x86.BT, x86.BTS, x86.BTR, x86.BTC}
			a.BtImm(ops[r.Intn(4)], x86.RegOp(reg(), 4), uint8(r.Intn(32)))
		}
	}
	a.Raw(0xFF, 0x4D, 0xFC) // dec dword [ebp-4]
	a.Jcc(x86.CondNE, "outer")
	a.Leave()
	for _, rg := range regs {
		if rg != x86.EBX {
			a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.RegOp(rg, 4))
		}
	}
	a.ALU(x86.AND, x86.RegOp(x86.EBX, 4), x86.ImmOp(0x7f, 4))
	exitWith(a)
	return &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
}

func TestMorphingActuallyReconfigures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Morph = true
	cfg.MorphThreshold = 0
	cfg.MorphMinInterval = 2_000
	res := checkAgainstReference(t, sumLoop(3000), cfg)
	if res.M.Reconfigs == 0 {
		t.Error("threshold-0 morphing never reconfigured")
	}
	// Threshold 0 must reconfigure at least as often as threshold 15.
	cfg15 := cfg
	cfg15.MorphThreshold = 15
	res15 := checkAgainstReference(t, sumLoop(3000), cfg15)
	if res15.M.Reconfigs > res.M.Reconfigs {
		t.Errorf("threshold 15 reconfigured more than threshold 0 (%d vs %d)",
			res15.M.Reconfigs, res.M.Reconfigs)
	}
}
