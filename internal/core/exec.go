package core

import (
	"fmt"

	"tilevm/internal/cachesim"
	"tilevm/internal/codecache"
	"tilevm/internal/raw"
	"tilevm/internal/rawexec"
	"tilevm/internal/translate"
	"tilevm/internal/x86interp"
)

// execKernel is the runtime-execution tile: the dispatch loop, the L1
// code cache in the tile's instruction memory, the tile data cache, and
// the translated-code execution engine.
func (e *engine) execKernel(c *raw.TileCtx) {
	P := e.cfg.Params
	l1 := codecache.NewL1(P.IMemBytes)
	l1.NoChain = e.cfg.NoChain
	env := &execEnv{
		e:      e,
		c:      c,
		dl1:    cachesim.New(P.DCacheBytes, P.DCacheWays, P.DCacheLine),
		interp: x86interp.New(e.proc),
	}
	if e.restore != nil {
		e.restoreExecCaches(l1, env)
	}
	cpu := &rawexec.CPU{}
	cpu.LoadGuest(&e.proc.CPU)
	// prog mirrors the L1 arena in predecoded form so block dispatch
	// does not re-decode host instructions every visit. progFlushes
	// tracks l1.Flushes to catch both insert-time and SMC flushes.
	prog := &rawexec.Program{}
	progFlushes := l1.Flushes
	pc := e.proc.PC
	logLimit := e.cfg.DispatchLogLimit
	if logLimit == 0 {
		logLimit = 1000
	}
	logged := 0
	trc := e.trc()
	lastPromoGen := e.promoGen

	for {
		// A fleet supervisor cancels a guest (deadline exceeded, slot
		// quarantined) by setting cancelled; the dispatch boundary is the
		// one point where no request is in flight, so breaking here
		// strands nothing on the network.
		if e.cancelled {
			break
		}
		// A settled promotion invalidates the L1 arena wholesale:
		// chaining precludes removing one entry, and the stale tier-0
		// code may be reached through patched jumps. Hot blocks refetch
		// their promoted copies on the next dispatch. Checked before
		// capture so a snapshot never records an arena the promoted L2
		// contents cannot regenerate.
		if e.promoGen != lastPromoGen {
			lastPromoGen = e.promoGen
			l1.Flush()
		}
		// Checkpoint at the dispatch boundary: the one point where the
		// guest has no request in flight, so a snapshot here plus the
		// service tiles' own state is the whole machine. The live
		// register file is stored back first — the dispatch loop owns it
		// between blocks, and e.proc.CPU is stale until loop exit.
		if e.ck.Due(c.Now()) && e.mgr != nil && e.mmuLive != nil {
			cpu.StoreGuest(&e.proc.CPU)
			e.proc.PC = pc
			e.capture(c, l1, env)
		}
		e.stats.BlockDispatches++
		if e.cfg.PanicAtDispatch != 0 && e.stats.BlockDispatches == e.cfg.PanicAtDispatch {
			panic(fmt.Sprintf("injected test panic at dispatch %d (guest pc %#x)",
				e.stats.BlockDispatches, pc))
		}
		tDisp := c.Now()
		c.Tick(P.DispatchOcc + P.L1LookupOcc)
		source := "L1"
		var patched []int
		idx, ok := l1.Lookup(pc)
		l1hit := uint64(1)
		if !ok {
			l1hit = 0
			source = "L1.5/L2"
			res := e.fetchBlock(c, pc)
			if res == nil {
				e.execErr = fmt.Errorf("guest jumped to untranslatable code at %#x", pc)
				break
			}
			if e.cfg.Tier0 {
				if res.Tier == translate.TierTemplate {
					e.tier0Blk[pc] = true
				} else {
					delete(e.tier0Blk, pc)
				}
			}
			var st codecache.InsertStats
			idx, st = l1.Insert(pc, res.Code)
			c.Tick(uint64(st.CopiedWords)*P.L1CopyWordOcc +
				uint64(st.Patches)*P.L1ChainPatchOcc)
			patched = st.Patched
		}
		trc.Count(tsDispatches, tDisp, 1)
		trc.Count(tsL1Lookups, tDisp, 1)
		trc.Count(tsL1Hits, tDisp, l1hit)
		trc.Span(c.Tile, "dispatch", tDisp, c.Now(), "pc", uint64(pc), "l1_hit", l1hit)
		if e.cfg.DispatchLog != nil && logged < logLimit {
			fmt.Fprintf(e.cfg.DispatchLog, "%12d dispatch pc=%08x from=%s\n", c.Now(), pc, source)
			logged++
			if logged == logLimit {
				fmt.Fprintf(e.cfg.DispatchLog, "... dispatch log limit reached\n")
			}
		}
		if l1.Flushes != progFlushes {
			prog.Reset()
			progFlushes = l1.Flushes
		}
		prog.Repatch(l1.Arena(), patched)
		prog.Sync(l1.Arena())
		tExec := c.Now()
		exit, err := prog.Exec(cpu, idx, tileClock{c}, env, 0)
		trc.Span(c.Tile, "exec", tExec, c.Now(), "pc", uint64(pc), "insts", exit.Insts)
		e.stats.HostInsts += exit.Insts
		if e.cfg.WarmupInsts > 0 && e.stats.WarmupCycles == 0 && e.stats.HostInsts >= e.cfg.WarmupInsts {
			e.stats.WarmupCycles = c.Now()
			trc.Instant(c.Tile, "warmup", c.Now(), "insts", e.stats.HostInsts, "", 0)
		}
		if e.cfg.Tier0 {
			e.noteHot(c, pc, exit.Insts)
		}
		if err != nil {
			e.execErr = fmt.Errorf("at guest block %#x: %w", pc, err)
			break
		}
		if env.exited {
			break
		}
		pc = exit.NextPC
		if exit.Interrupted {
			// A suppressed chained jump: resolve the target block's
			// guest PC before the L1 flush destroys the mapping.
			resolved, ok := l1.PCForIndex(exit.ChainIdx)
			if !ok {
				e.execErr = fmt.Errorf("unresolvable chain target %d during SMC invalidation", exit.ChainIdx)
				break
			}
			pc = resolved
		}
		if env.smcPending {
			e.smcInvalidate(c, env, l1)
		}
		if e.cfg.MaxBlockExecs != 0 && e.stats.BlockDispatches >= e.cfg.MaxBlockExecs {
			e.execErr = fmt.Errorf("block-dispatch budget exhausted at %#x", pc)
			break
		}
	}

	cpu.StoreGuest(&e.proc.CPU)
	// Pin the architectural PC to the dispatch-loop exit point:
	// otherwise proc.PC holds whatever the last assist (or checkpoint
	// capture) left there, which is timing-dependent — and the final
	// state hash must depend only on guest-architectural history.
	e.proc.PC = pc
	e.stats.L1CLookups = l1.Lookups
	e.stats.L1CHits = l1.Hits
	e.stats.L1CFlushes = l1.Flushes
	e.stats.Chains = l1.Chains
	e.stats.DL1Accesses = env.dl1.Accesses
	e.stats.DL1Misses = env.dl1.Misses
	e.stopCycles = c.Now()
	if e.onExit != nil {
		e.onExit(c)
	} else {
		c.Stop()
	}
}

// noteHot accumulates retired-instruction hotness against the entry PC
// of the dispatched block (chained successors execute under the entry's
// account — the whole chain is flushed as a unit when a promotion
// settles) and fires a promotion request once a tier-0 block crosses
// the tier-up threshold. The request is fire-and-forget: the manager's
// guards make duplicates and stale requests harmless.
func (e *engine) noteHot(c *raw.TileCtx, pc uint32, insts uint64) {
	e.hot[pc] += insts
	if e.promoSent[pc] || !e.tier0Blk[pc] || e.hot[pc] < e.tierUpThreshold() {
		return
	}
	e.promoSent[pc] = true
	e.trc().Instant(c.Tile, "tier_up", c.Now(), "pc", uint64(pc), "insts", e.hot[pc])
	c.Send(e.pl.manager, promoteReq{PC: pc}, wordsCtl)
}

// rpc is the execution tile's robust request/reply primitive (used
// only in fault-recovery mode): send issues (or re-issues) the
// request, match inspects each incoming payload and returns the reply
// value when it is the one being waited for. On watchdog expiry the
// request is re-sent with exponential backoff, capped at
// RetryBackoffMax — the execution tile cannot make progress without
// the reply, so it retries forever; a lost service tile is the
// manager's problem to excise, after which a retry lands on a live
// one. Unmatched payloads (stale replies to earlier attempts,
// corrupted messages) are discarded.
func (e *engine) rpc(c *raw.TileCtx, send func(attempt int), match func(any) (any, bool)) any {
	P := e.cfg.Params
	send(0)
	backoff := P.NetWatchdog
	deadline := c.Now() + backoff
	for attempt := 1; ; {
		msg, ok := c.RecvDeadline(deadline)
		if !ok {
			e.stats.Timeouts++
			e.stats.Retries++
			send(attempt)
			attempt++
			if backoff < P.RetryBackoffMax {
				backoff *= 2
				if backoff > P.RetryBackoffMax {
					backoff = P.RetryBackoffMax
				}
			}
			deadline = c.Now() + backoff
			continue
		}
		if cm, ok := msg.Payload.(raw.Corrupted); ok {
			// The wrapper's single consumption point on this tile: only
			// now is the pooled payload unaliased and safe to recycle.
			e.recycleFaulty(cm.Payload)
			continue
		}
		if v, done := match(msg.Payload); done {
			return v
		}
	}
}

// smcInvalidate performs the self-modifying-code invalidation protocol
// (paper §5: the prototype detects writes to pages containing
// translated code): flush the local L1 code cache, tell the manager to
// drop overlapping L2 translations, flush the L1.5 banks, and wait for
// the acknowledgments.
func (e *engine) smcInvalidate(c *raw.TileCtx, env *execEnv, l1 *codecache.L1) {
	e.stats.SMCInvalidations++
	t0 := c.Now()
	inval := smcInval{Lo: env.smcLo, Hi: env.smcHi}
	if e.robust {
		e.smcInvalRobust(c, inval)
	} else {
		targets := 1 + len(e.pl.l15)
		c.Send(e.pl.manager, inval, wordsCtl)
		for _, bankTile := range e.pl.l15 {
			c.Send(bankTile, inval, wordsCtl)
		}
		for acks := 0; acks < targets; {
			msg := c.Recv()
			if _, ok := msg.Payload.(smcAck); ok {
				acks++
			}
		}
	}
	l1.Flush()
	env.smcPending = false
	if e.cfg.Tier0 {
		// Coarse but rare: the overwritten blocks' identities are gone
		// from the manager's registry too, so hotness restarts from
		// zero. A duplicate promotion request after the reset is
		// rejected by the manager's tier guard.
		e.initTierState()
	}
	e.trc().Span(c.Tile, "smc_inval", t0, c.Now(), "lo", uint64(inval.Lo), "hi", uint64(inval.Hi))
}

// b2u converts a bool to a trace-arg scalar.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// smcInvalRobust runs the invalidation handshake with per-target ack
// tracking and selective resend on watchdog expiry. Re-invalidating a
// range is idempotent at every receiver (the manager conservatively
// bumps the SMC generation again; an L1.5 bank re-flushes an already
// empty bank), so a duplicated inval caused by a delayed ack is
// harmless.
func (e *engine) smcInvalRobust(c *raw.TileCtx, inval smcInval) {
	P := e.cfg.Params
	targets := append([]int{e.pl.manager}, e.pl.l15...)
	acked := map[int]bool{}
	send := func() {
		for _, t := range targets {
			if !acked[t] {
				c.Send(t, inval, wordsCtl)
			}
		}
	}
	send()
	backoff := P.NetWatchdog
	deadline := c.Now() + backoff
	for len(acked) < len(targets) {
		msg, ok := c.RecvDeadline(deadline)
		if !ok {
			e.stats.Timeouts++
			e.stats.Retries++
			send()
			if backoff < P.RetryBackoffMax {
				backoff *= 2
				if backoff > P.RetryBackoffMax {
					backoff = P.RetryBackoffMax
				}
			}
			deadline = c.Now() + backoff
			continue
		}
		if _, isAck := msg.Payload.(smcAck); isAck {
			acked[msg.From] = true
		}
	}
}

// fetchBlock requests a translated block through the code cache
// hierarchy, blocking until it arrives. In fault-recovery mode the
// wait is watchdogged and the request re-sent under a fresh sequence
// number; a stale response for a different PC (possible only after a
// retry) is discarded rather than treated as a protocol violation.
func (e *engine) fetchBlock(c *raw.TileCtx, pc uint32) *translate.Result {
	t0 := c.Now()
	target := e.pl.manager
	if n := len(e.pl.l15); n > 0 {
		target = e.pl.l15[l15BankFor(pc, n)]
	}
	if e.promoFresh[pc] {
		// Just promoted: fetch from the manager directly so an L1.5
		// bank whose flush is still in flight cannot serve the stale
		// tier-0 copy.
		target = e.pl.manager
		delete(e.promoFresh, pc)
	}
	if e.robust {
		out := e.rpc(c, func(int) {
			e.codeSeq++
			c.Send(target, codeReq{PC: pc, ReplyTo: e.pl.exec, FillBank: -1, Seq: e.codeSeq}, wordsCodeReq)
		}, func(payload any) (any, bool) {
			if r, ok := payload.(codeResp); ok && r.PC == pc {
				return r.Res, true
			}
			return nil, false
		})
		e.trc().Span(c.Tile, "fetch", t0, c.Now(), "pc", uint64(pc), "", 0)
		return out.(*translate.Result)
	}
	c.Send(target, codeReq{PC: pc, ReplyTo: e.pl.exec, FillBank: -1}, wordsCodeReq)
	for {
		msg := c.Recv()
		if r, ok := msg.Payload.(codeResp); ok {
			if r.PC != pc {
				e.execErr = fmt.Errorf("code response for %#x while waiting for %#x", r.PC, pc)
				return nil
			}
			e.trc().Span(c.Tile, "fetch", t0, c.Now(), "pc", uint64(pc), "", 0)
			return r.Res
		}
		// No other message types target a waiting execution tile.
	}
}

// execEnv implements rawexec.Env on the simulated machine: the tile
// data cache backed by the pipelined MMU → L2-bank memory system.
type execEnv struct {
	e      *engine
	c      *raw.TileCtx
	dl1    *cachesim.Cache
	interp *x86interp.Interp
	memID  uint64
	sysID  uint64
	exited bool

	// Self-modifying-code detection: a store into a translated code
	// page sets smcPending and accumulates the dirty byte range; the
	// dispatch loop performs the invalidation protocol at the next
	// block boundary.
	smcPending bool
	smcLo      uint32
	smcHi      uint32
}

// checkSMC detects stores into translated code pages.
func (v *execEnv) checkSMC(addr uint32, size uint8) {
	for pg := addr >> 12; pg <= (addr+uint32(size)-1)>>12; pg++ {
		if v.e.codePages[pg] {
			if !v.smcPending {
				v.smcPending = true
				v.smcLo, v.smcHi = addr, addr+uint32(size)
			} else {
				if addr < v.smcLo {
					v.smcLo = addr
				}
				if addr+uint32(size) > v.smcHi {
					v.smcHi = addr + uint32(size)
				}
			}
			return
		}
	}
}

// touch charges a guest data access: tile D-cache hit or a round trip
// through the MMU and bank tiles. It returns true on a D-cache hit.
func (v *execEnv) touch(addr uint32, write bool) bool {
	P := v.e.cfg.Params
	if write {
		v.c.Tick(P.GuestStoreOcc)
	} else {
		v.c.Tick(P.GuestL1HitOcc)
	}
	res := v.dl1.Access(addr, write)
	v.e.trc().Count(tsDL1Accesses, v.c.Now(), 1)
	if res.Hit {
		return true
	}
	v.e.trc().Count(tsDL1Misses, v.c.Now(), 1)
	tMiss := v.c.Now()
	if res.Writeback {
		// Posted writeback of the dirty victim; no reply needed.
		wb := v.e.pool.newReq()
		*wb = memReq{Addr: res.WritebackOf, Write: true, ReplyTo: -1}
		v.c.Send(v.e.pl.mmu, wb, wordsMemReq+8)
	}
	// Line fill round trip. Reads are idempotent, so in robust mode a
	// retry carries a fresh ID and any late reply to an earlier attempt
	// is discarded by the ID match.
	v.memID++
	id := v.memID
	if v.e.robust {
		v.e.rpc(v.c, func(attempt int) {
			if attempt > 0 {
				v.memID++
				id = v.memID
			}
			rq := v.e.pool.newReq()
			*rq = memReq{Addr: res.LineAddr, Write: false, ReplyTo: v.e.pl.exec, ID: id}
			v.c.Send(v.e.pl.mmu, rq, wordsMemReq)
		}, func(payload any) (any, bool) {
			r, ok := payload.(*memResp)
			if !ok {
				return nil, false
			}
			// Consumed whether it matches or not: a stale reply to a
			// superseded attempt dies here.
			match := r.ID == id
			v.e.pool.freeResp(r)
			return nil, match
		})
		v.e.trc().Span(v.c.Tile, "memfill", tMiss, v.c.Now(), "addr", uint64(res.LineAddr), "", 0)
		return false
	}
	rq := v.e.pool.newReq()
	*rq = memReq{Addr: res.LineAddr, Write: false, ReplyTo: v.e.pl.exec, ID: id}
	v.c.Send(v.e.pl.mmu, rq, wordsMemReq)
	for {
		msg := v.c.Recv()
		if cm, ok := msg.Payload.(raw.Corrupted); ok {
			v.e.recycleFaulty(cm.Payload)
			continue
		}
		if r, ok := msg.Payload.(*memResp); ok && r.ID == id {
			v.e.pool.freeResp(r)
			v.e.trc().Span(v.c.Tile, "memfill", tMiss, v.c.Now(), "addr", uint64(res.LineAddr), "", 0)
			return false
		}
	}
}

// GuestLoad implements rawexec.Env.
func (v *execEnv) GuestLoad(addr uint32, size uint8, signed bool) (uint32, uint64) {
	hit := v.touch(addr, false)
	val := v.e.proc.Mem.ReadN(addr, size)
	if signed && size != 4 {
		shift := 32 - uint(size)*8
		val = uint32(int32(val<<shift) >> shift)
	}
	ready := v.c.Now()
	if hit {
		// Latency 6 vs occupancy 4 (Figure 11): the value arrives two
		// cycles after the issue slot frees.
		ready += v.e.cfg.Params.GuestL1HitLat - v.e.cfg.Params.GuestL1HitOcc
	}
	return val, ready
}

// GuestStore implements rawexec.Env.
func (v *execEnv) GuestStore(addr uint32, val uint32, size uint8) {
	v.touch(addr, true)
	v.e.proc.Mem.WriteN(addr, val, size)
	v.checkSMC(addr, size)
}

// Syscall implements rawexec.Env: proxy to the syscall tile. Syscalls
// are not idempotent, so the robust path is an at-most-once RPC: every
// attempt carries the same ID and the syscall tile deduplicates,
// replaying the cached response when a retry races a slow original.
func (v *execEnv) Syscall(cpu *rawexec.CPU) {
	v.e.stats.Syscalls++
	tSys := v.c.Now()
	var req sysReq
	copy(req.Regs[:], cpu.R[:10])
	if v.e.robust {
		v.sysID++
		req.ID = v.sysID
		out := v.e.rpc(v.c, func(int) {
			v.c.Send(v.e.pl.sys, req, wordsSys)
		}, func(payload any) (any, bool) {
			if r, ok := payload.(sysResp); ok && r.ID == req.ID {
				return r, true
			}
			return nil, false
		})
		r := out.(sysResp)
		copy(cpu.R[1:10], r.Regs[1:10])
		v.exited = r.Exited
		v.e.trc().Span(v.c.Tile, "syscall", tSys, v.c.Now(), "exited", b2u(r.Exited), "", 0)
		return
	}
	v.c.Send(v.e.pl.sys, req, wordsSys)
	for {
		msg := v.c.Recv()
		if r, ok := msg.Payload.(sysResp); ok {
			copy(cpu.R[1:10], r.Regs[1:10])
			v.exited = r.Exited
			v.e.trc().Span(v.c.Tile, "syscall", tSys, v.c.Now(), "exited", b2u(r.Exited), "", 0)
			return
		}
	}
}

// Assist implements rawexec.Env: interpreter fallback on the execution
// tile, with the instruction's memory traffic routed through the
// normal guest-memory path so the cache and bank state stay truthful.
func (v *execEnv) Assist(guestPC uint32, cpu *rawexec.CPU) error {
	v.e.stats.Assists++
	v.e.trc().Instant(v.c.Tile, "assist", v.c.Now(), "pc", uint64(guestPC), "", 0)
	v.c.Tick(v.e.cfg.Params.AssistOcc)
	cpu.StoreGuest(&v.e.proc.CPU)
	v.e.proc.PC = guestPC
	v.interp.OnMem = func(addr uint32, size uint8, write bool) {
		v.touch(addr, write)
		if write {
			v.checkSMC(addr, size)
		}
	}
	err := v.interp.Step()
	v.interp.OnMem = nil
	if err != nil {
		return err
	}
	cpu.LoadGuest(&v.e.proc.CPU)
	return nil
}

// Stopped implements rawexec.Env.
func (v *execEnv) Stopped() bool { return v.exited }

// Interrupted implements rawexec.Env.
func (v *execEnv) Interrupted() bool { return v.smcPending }

var _ rawexec.Env = (*execEnv)(nil)
