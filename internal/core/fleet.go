package core

import (
	"fmt"

	"tilevm/internal/checkpoint"
	"tilevm/internal/guest"
	"tilevm/internal/raw"
	"tilevm/internal/translate"
)

// Fleet mode realizes the paper's §5 vision at scale: "a large tiled
// fabric running many virtual x86's all at the same time". The fabric
// is carved into complete 8-tile VM slots (placement.go); N guest
// images are admitted to the slots in order, queueing when N exceeds
// the slot count, and a slot whose guest exits is handed the next
// queued guest. With lending enabled, a manager whose translation
// queues are empty offers idle slaves to whichever VM fleet-wide
// reported the most backed-up queue.
//
// Admission reuses the running tile kernels rather than spawning new
// ones (the simulator forbids spawning after Run starts): every
// service kernel is wrapped in a loop re-binding it to the slot's
// current engine, and the exec tile coordinates the epoch change with
// a two-phase vmSwitch handshake — first the manager drains its
// in-flight translations, then the remaining service tiles flush and
// ack — so no state or message of a finished guest can leak into its
// successor.

// FleetConfig selects fleet-level policy knobs.
type FleetConfig struct {
	// Lend enables cross-VM slave lending: a manager with parked slaves
	// and empty queues grants one to the most-backed-up requesting peer.
	Lend bool
	// MaxSlots caps the number of carved VM slots (0 = as many slots as
	// fit the fabric, never more than the number of guests).
	MaxSlots int
}

// GuestResult is one guest's outcome within a fleet run.
type GuestResult struct {
	// Result is nil only when the simulation aborted before the guest
	// was admitted to a slot.
	*Result
	// Slot is the VM slot index the guest ran in (-1 if never admitted).
	Slot int
	// Admitted and Finished are the virtual cycles at which the guest
	// was bound to its slot and at which it exited. The first S guests
	// start at cycle 0; queued guests are admitted when a slot frees.
	Admitted uint64
	Finished uint64
}

// FleetResult is the outcome of a fleet run.
type FleetResult struct {
	// Guests is index-aligned with the imgs argument of RunFleet.
	Guests []*GuestResult
	// Slots is the number of VM slots carved from the fabric.
	Slots int
	// Makespan is the virtual time at which the last guest finished.
	Makespan uint64
	// TileBusy is the shared fabric's per-tile busy counters.
	TileBusy []uint64
	// Utilization is sum(TileBusy) / (tiles × Makespan).
	Utilization float64
}

// slotHost is a slot's mutable binding to its current guest engine;
// the wrapped tile kernels re-read it after every vmSwitch epoch.
type slotHost struct {
	cur   *engine
	guest int
}

// fleetRun is the host-side fleet scheduler state. The discrete-event
// simulator runs one tile kernel at a time, so it needs no locking.
type fleetRun struct {
	cfg   Config
	fc    FleetConfig
	m     *raw.Machine
	imgs  []*guest.Image
	slots []placement
	hosts []*slotHost

	// peers[si] is the other slots' manager tiles; homeMgr maps each
	// slave tile to its home manager (for returning borrowed slaves).
	peers   [][]int
	homeMgr map[int]int

	// Per-guest bookkeeping, index-aligned with imgs.
	engines  []*engine
	slotOf   []int
	admitted []uint64
	finished []uint64

	next      int // next guest index awaiting admission
	remaining int // guests not yet exited; 0 stops the simulation
}

// RunFleet executes N guests as a fleet of virtual machines sharing
// one fabric. cfg supplies timing parameters, the fabric size
// (cfg.Params.Width×Height), and translator options; per-VM tile
// counts are fixed by the slot shape. Results are deterministic:
// repeated runs are byte-identical, and each guest's final state hash
// equals its solo-run hash regardless of slot assignment or lending.
func RunFleet(imgs []*guest.Image, cfg Config, fc FleetConfig) (*FleetResult, error) {
	if len(imgs) == 0 {
		return nil, fmt.Errorf("core: fleet mode needs at least one guest")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000_000
	}
	if cfg.Morph {
		return nil, fmt.Errorf("core: intra-VM morphing and fleet mode are mutually exclusive")
	}
	if !cfg.Fault.Empty() {
		return nil, fmt.Errorf("core: fault injection is not supported in fleet mode")
	}
	if cfg.Recovery == RecoverRollback || cfg.CheckpointInterval > 0 {
		return nil, fmt.Errorf("core: checkpoint/rollback recovery is not supported in fleet mode")
	}
	if cfg.Journal != nil {
		return nil, fmt.Errorf("core: record-replay is not supported in fleet mode")
	}
	slots, err := carveFabric(cfg.Params, 0)
	if err != nil {
		return nil, err
	}
	if fc.MaxSlots > 0 {
		if fc.MaxSlots > len(slots) {
			return nil, fmt.Errorf("core: %d VM slots requested but the %d×%d fabric fits only %d",
				fc.MaxSlots, cfg.Params.Width, cfg.Params.Height, len(slots))
		}
		slots = slots[:fc.MaxSlots]
	}
	if len(slots) > len(imgs) {
		slots = slots[:len(imgs)]
	}

	fl := &fleetRun{
		cfg:       cfg,
		fc:        fc,
		m:         raw.NewMachine(cfg.Params),
		imgs:      imgs,
		slots:     slots,
		hosts:     make([]*slotHost, len(slots)),
		peers:     make([][]int, len(slots)),
		homeMgr:   map[int]int{},
		engines:   make([]*engine, len(imgs)),
		slotOf:    make([]int, len(imgs)),
		admitted:  make([]uint64, len(imgs)),
		finished:  make([]uint64, len(imgs)),
		remaining: len(imgs),
	}
	fl.m.Sim.SetLimit(cfg.MaxCycles)
	fl.m.SetTracer(cfg.Tracer)
	for gi := range fl.slotOf {
		fl.slotOf[gi] = -1
	}
	for si, pl := range slots {
		for _, s := range pl.slaves {
			fl.homeMgr[s] = pl.manager
		}
		for sj, pj := range slots {
			if sj != si {
				fl.peers[si] = append(fl.peers[si], pj.manager)
			}
		}
	}
	// Initial admission: guest i takes slot i.
	for si := range slots {
		fl.hosts[si] = &slotHost{cur: fl.newEngine(si, si), guest: si}
	}
	fl.next = len(slots)
	fl.spawnSlots()

	simErr := fl.m.Run()

	res := fl.collect()
	if simErr != nil {
		return res, fmt.Errorf("core: fleet simulation failed: %w", simErr)
	}
	for gi, e := range fl.engines {
		if e != nil && e.execErr != nil {
			return res, fmt.Errorf("core: guest %d failed: %w", gi, e.execErr)
		}
	}
	return res, nil
}

// newEngine builds the engine binding guest gi to slot si.
func (fl *fleetRun) newEngine(gi, si int) *engine {
	e := &engine{
		cfg:  fl.cfg,
		pl:   fl.slots[si],
		m:    fl.m,
		proc: guest.Load(fl.imgs[gi]),
		tr: translate.New(translate.Options{
			Optimize:          fl.cfg.Optimize,
			ConservativeFlags: fl.cfg.ConservativeFlags,
		}),
		codePages: map[uint32]bool{},
		pageInval: map[uint32]uint64{},
		peers:     fl.peers[si],
		lend:      fl.fc.Lend,
		homeMgr:   fl.homeMgr,
		vmLabel:   fmt.Sprintf("vm%d", gi),
	}
	e.onExit = func(c *raw.TileCtx) {
		fl.remaining--
		if fl.remaining == 0 {
			c.Stop()
		}
	}
	e.registerTraceProcs()
	fl.engines[gi] = e
	fl.slotOf[gi] = si
	return e
}

// spawnSlots registers every slot's tile kernels, each wrapped in a
// loop that re-binds it to the slot's current engine after a vmSwitch.
func (fl *fleetRun) spawnSlots() {
	for si := range fl.slots {
		pl := fl.slots[si]
		h := fl.hosts[si]
		fl.m.SpawnTile(pl.exec, "exec", func(c *raw.TileCtx) {
			for {
				e := h.cur
				e.execKernel(c)
				fl.finished[h.guest] = e.stopCycles
				if fl.next >= len(fl.imgs) {
					// No queued guest: leave the slot's service tiles
					// running under the finished epoch so its parked
					// slaves keep serving the surviving VMs.
					return
				}
				gi := fl.next
				fl.next++
				h.cur = fl.newEngine(gi, si)
				h.guest = gi
				fl.admitted[gi] = c.Now()
				fl.handoff(c, pl)
			}
		})
		fl.m.SpawnTile(pl.manager, "manager", func(c *raw.TileCtx) {
			for {
				h.cur.managerKernel(c)
			}
		})
		fl.m.SpawnTile(pl.mmu, "mmu", func(c *raw.TileCtx) {
			for {
				h.cur.mmuKernel(c)
			}
		})
		fl.m.SpawnTile(pl.sys, "syscall", func(c *raw.TileCtx) {
			for {
				h.cur.sysKernel(c)
			}
		})
		for _, t := range pl.l15 {
			fl.m.SpawnTile(t, "l15", func(c *raw.TileCtx) {
				for {
					h.cur.l15Kernel(c)
				}
			})
		}
		for _, t := range pl.slaves {
			fl.m.SpawnTile(t, "worker", func(c *raw.TileCtx) {
				for {
					h.cur.workerBody(roleSlave)(c)
				}
			})
		}
		for _, t := range pl.banks {
			fl.m.SpawnTile(t, "worker", func(c *raw.TileCtx) {
				for {
					h.cur.workerBody(roleBank)(c)
				}
			})
		}
	}
}

// handoff rebinds a slot's service tiles to the next guest's engine.
// Phase 1 quiesces the manager: its in-flight translations complete
// (and are discarded) inside drainForSwitch, so no stale transDone can
// reach the new epoch. Phase 2 resets the remaining service tiles —
// workers flush their data banks (charged like a morph flush) and
// slaves re-register with the new manager when their kernels restart.
// The exec tile owns the handshake; it resumes dispatching only after
// every service tile has acked.
func (fl *fleetRun) handoff(c *raw.TileCtx, pl placement) {
	c.Send(pl.manager, vmSwitch{}, wordsCtl)
	waitSwitchAcks(c, 1)
	targets := []int{pl.mmu, pl.sys}
	targets = append(targets, pl.l15...)
	targets = append(targets, pl.slaves...)
	targets = append(targets, pl.banks...)
	for _, t := range targets {
		c.Send(t, vmSwitch{}, wordsCtl)
	}
	waitSwitchAcks(c, len(targets))
}

// waitSwitchAcks blocks until n switchAck messages arrive. Nothing
// else targets an exec tile between guests, but stray payloads are
// tolerated and skipped.
func waitSwitchAcks(c *raw.TileCtx, n int) {
	for n > 0 {
		if _, ok := c.Recv().Payload.(switchAck); ok {
			n--
		}
	}
}

// collect assembles the fleet result after the simulation ends.
func (fl *fleetRun) collect() *FleetResult {
	res := &FleetResult{
		Guests:   make([]*GuestResult, len(fl.imgs)),
		Slots:    len(fl.slots),
		TileBusy: fl.m.BusyCycles(),
	}
	for gi := range fl.imgs {
		gr := &GuestResult{Slot: fl.slotOf[gi]}
		res.Guests[gi] = gr
		e := fl.engines[gi]
		if e == nil {
			continue // simulation aborted before this guest was admitted
		}
		e.stats.Cycles = e.stopCycles
		if e.mgr != nil {
			e.stats.L2CAccess = e.mgr.l2.Accesses
			e.stats.L2CMisses = e.mgr.l2.Misses
			e.stats.SpecWasted = uint64(len(e.mgr.specStored))
		}
		gr.Result = &Result{
			Cycles:    e.stopCycles,
			ExitCode:  e.proc.Kern.ExitCode,
			Stdout:    e.proc.Kern.Stdout.String(),
			M:         e.stats,
			StateHash: checkpoint.FinalHash(e.proc),
		}
		gr.Admitted = fl.admitted[gi]
		gr.Finished = fl.finished[gi]
		if gr.Finished > res.Makespan {
			res.Makespan = gr.Finished
		}
	}
	if res.Makespan > 0 && len(res.TileBusy) > 0 {
		var busy uint64
		for _, b := range res.TileBusy {
			busy += b
		}
		res.Utilization = float64(busy) / (float64(len(res.TileBusy)) * float64(res.Makespan))
	}
	return res
}
