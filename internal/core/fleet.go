package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"tilevm/internal/checkpoint"
	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/metrics"
	"tilevm/internal/raw"
	"tilevm/internal/sim"
	"tilevm/internal/translate"
)

// Fleet mode realizes the paper's §5 vision at scale: "a large tiled
// fabric running many virtual x86's all at the same time". The fabric
// is carved into complete 8-tile VM slots (placement.go); N guest
// images are admitted to the slots in order, queueing when N exceeds
// the slot count, and a slot whose guest exits is handed the next
// queued guest. With lending enabled, a manager whose translation
// queues are empty offers idle slaves to whichever VM fleet-wide
// reported the most backed-up queue.
//
// Admission reuses the running tile kernels rather than spawning new
// ones (the simulator forbids spawning after Run starts): every
// service kernel is wrapped in a loop re-binding it to the slot's
// current engine, and the exec tile coordinates the epoch change with
// a two-phase vmSwitch handshake — first the manager drains its
// in-flight translations, then the remaining service tiles flush and
// ack — so no state or message of a finished guest can leak into its
// successor.
//
// A fleet run may additionally carry a fail-stop fault plan and
// per-guest deadlines; the policy layer that turns tile failures into
// slot quarantines, guest retries, and deadline cancellations lives in
// fleetpolicy.go.

// FleetConfig selects fleet-level policy knobs.
type FleetConfig struct {
	// Lend enables cross-VM slave lending: a manager with parked slaves
	// and empty queues grants one to the most-backed-up requesting peer.
	Lend bool
	// MaxSlots caps the number of carved VM slots (0 = as many slots as
	// fit the fabric, never more than the number of guests).
	MaxSlots int
	// Planner replaces the fixed 4×2/2×4 carve with the cost-model
	// placement planner (planner.go): slot shapes grow with the
	// fabric-to-guest ratio, and each slot's slave/bank split follows
	// its guest's profile. Capacity is unchanged — the planner's base
	// tier is the fixed carve, so a fleet that fits without the planner
	// fits with it.
	Planner bool
	// Profiles optionally supplies per-guest cost models for the
	// planner, index-aligned with imgs (zero entries take the default
	// profile; length must be zero or len(imgs)). Requires Planner.
	// Slot i is shaped from Profiles[i] because initial admission binds
	// guest i to slot i.
	Profiles []GuestProfile
	// Elastic lets running VMs grow and shrink by whole tiles: a slot
	// with no admissible next guest donates its service tiles to busy
	// peers (they self-register as extra translation slaves) and
	// reclaims them before its next admission. Mutually exclusive with
	// Lend — both move slaves between VMs and would fight over the same
	// tiles.
	Elastic bool

	// MaxAttempts caps how many times one guest may be admitted to a
	// slot (first run plus retries after quarantines). 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the base re-admission delay in virtual cycles
	// after a guest's slot is quarantined; the actual delay grows
	// exponentially with the attempt count plus a seeded jitter
	// (retryBackoff). 0 means DefaultRetryBackoff.
	RetryBackoff uint64
	// RetrySeed seeds the deterministic backoff jitter.
	RetrySeed uint64
	// Deadline, when nonzero, is an absolute virtual-cycle deadline
	// applied to every guest: a guest not finished by then is cancelled
	// and reported with a DeadlineError.
	Deadline uint64
	// Deadlines optionally overrides Deadline per guest (index-aligned
	// with imgs; 0 entries fall back to Deadline). Length must be zero
	// or len(imgs).
	Deadlines []uint64
}

// GuestResult is one guest's outcome within a fleet run.
type GuestResult struct {
	// Result is nil when the guest produced no final state: it was never
	// admitted to a slot, or it ended GuestAborted / GuestDeadlineExceeded.
	*Result
	// Status is the guest's terminal disposition; Err carries the
	// structured DeadlineError or AbortError when Status is a failure.
	Status GuestStatus
	Err    error
	// Attempts counts admissions (0 if the guest was never admitted).
	Attempts int
	// Slot is the VM slot index the guest last ran in (-1 if never
	// admitted).
	Slot int
	// Admitted and Finished are the virtual cycles at which the guest
	// was (last) bound to its slot and at which it exited. The first S
	// guests start at cycle 0; queued guests are admitted when a slot
	// frees.
	Admitted uint64
	Finished uint64
}

// FleetResult is the outcome of a fleet run.
type FleetResult struct {
	// Guests is index-aligned with the imgs argument of RunFleet.
	Guests []*GuestResult
	// Slots is the number of VM slots carved from the fabric.
	Slots int
	// Makespan is the virtual time at which the last guest finished.
	Makespan uint64
	// TileBusy is the shared fabric's per-tile busy counters.
	TileBusy []uint64
	// Utilization is sum(TileBusy) / (tiles × Makespan).
	Utilization float64
	// Fleet is the fleet-level policy counter set (all zero on a
	// fault-free, deadline-free run).
	Fleet metrics.FleetSet
}

// guestPhase is a guest's scheduling state inside the fleet run. The
// zero value is phaseQueued so the admission queue needs no explicit
// initialization.
type guestPhase uint8

const (
	phaseQueued guestPhase = iota
	phaseRunning
	phaseFinished
	phaseAborted
	phaseDeadline
	phaseInternal
)

// pendingGuest is one admission-queue entry: guest gi becomes eligible
// at virtual cycle release (0 = immediately).
type pendingGuest struct {
	gi      int
	release uint64
}

// slotHost is a slot's mutable binding to its current guest engine;
// the wrapped tile kernels re-read it after every vmSwitch epoch.
type slotHost struct {
	cur   *engine
	guest int
	// quarantined marks the slot excised from the carve; procs holds the
	// slot tiles' simulator processes so the supervisor can daemon-mark
	// them at quarantine time.
	quarantined bool
	procs       []*sim.Proc
	// Elastic-morphing state (nil unless FleetConfig.Elastic). extra
	// lists tiles donated into this slot, serving its current engine as
	// additional translation slaves; donated lists the tiles this slot
	// has donated out (still listed after a quarantine rescue idles
	// them, so the slot never double-donates).
	extra   []int
	donated []int
}

// removeExtra drops one donated-in tile from the slot's extra list.
func (h *slotHost) removeExtra(t int) {
	kept := h.extra[:0]
	for _, x := range h.extra {
		if x != t {
			kept = append(kept, x)
		}
	}
	h.extra = kept
}

// tileRedirect retargets one donated tile's slot wrapper: while an
// entry exists the tile serves the target slot's current engine as an
// extra translation slave (idle false), or idles awaiting its owner's
// next handoff (idle true).
type tileRedirect struct {
	to   *slotHost
	idle bool
}

// elasticState is the fleet-wide elastic-morphing ledger, shared by
// every engine (like fleetDead) so it survives slot epoch changes and
// quarantines.
type elasticState struct {
	// reclaim maps a donated tile to the owner exec tile awaiting its
	// reclaimDone. Entry deletion (commit) is the single release point:
	// whichever party — the target's manager, the tile's own slot
	// wrapper, or the quarantine rescue — finds the entry first commits
	// it and generates exactly one reclaimDone; latecomers find it gone
	// and do nothing.
	reclaim map[int]int
	// donatedAt maps a donated tile to the slot index it serves; the
	// entry lives until the tile's reclaim commits (or a quarantine
	// rescues it), so a concurrent handoff still sweeps the tile.
	donatedAt map[int]int
	hosts     []*slotHost
}

// commit removes tile t's pending-reclaim entry and drops t from its
// target slot's extra list. It returns the owner exec tile to notify,
// or false when no reclaim is pending (or another party already
// committed).
func (es *elasticState) commit(t int) (int, bool) {
	owner, ok := es.reclaim[t]
	if !ok {
		return -1, false
	}
	delete(es.reclaim, t)
	if ti, found := es.donatedAt[t]; found {
		es.hosts[ti].removeExtra(t)
	}
	return owner, true
}

// fleetRun is the host-side fleet scheduler state. The discrete-event
// simulator runs one tile kernel at a time, so it needs no locking.
type fleetRun struct {
	cfg   Config
	fc    FleetConfig
	m     *raw.Machine
	imgs  []*guest.Image
	slots []placement
	hosts []*slotHost

	// peers[si] is the other slots' manager tiles; homeMgr maps each
	// slave tile to its home manager (for returning borrowed slaves).
	peers   [][]int
	homeMgr map[int]int

	// Per-guest bookkeeping, index-aligned with imgs.
	engines  []*engine
	slotOf   []int
	admitted []uint64
	finished []uint64
	attempts []int
	phase    []guestPhase
	errs     []error
	deadline []uint64 // effective per-guest deadline (0 = none)
	cks      []*checkpoint.Checkpointer

	// Admission queue: guests waiting for a slot, in admission order.
	queue []pendingGuest

	// Fault-policy state (fleetpolicy.go). plan is non-nil only when the
	// fault plan has fail-stop clauses; horizon is the last fail cycle
	// (idle slots must stay alive until then — a quarantine may still
	// re-queue a guest). dead and slotQuarantined record excised tiles
	// and slots; slotIdx maps every carved tile to its slot.
	plan            *fault.Plan
	horizon         uint64
	dead            map[int]bool
	slotQuarantined map[int]bool
	slotIdx         map[int]int
	events          []uint64
	maxAttempts     int
	backoffBase     uint64
	fleet           metrics.FleetSet

	// Elastic-morphing state (nil/zero unless fc.Elastic). redirect
	// retargets donated tiles' slot wrappers; rotor round-robins
	// donations over running peers so no single slot hoards them.
	elastic  *elasticState
	redirect map[int]*tileRedirect
	rotor    int

	remaining int // guests not yet terminal; 0 stops the simulation
}

// RunFleet executes N guests as a fleet of virtual machines sharing
// one fabric. cfg supplies timing parameters, the fabric size
// (cfg.Params.Width×Height), and translator options; per-VM tile
// counts are fixed by the slot shape. Results are deterministic:
// repeated runs are byte-identical, and each guest's final state hash
// equals its solo-run hash regardless of slot assignment or lending.
//
// cfg.Fault may carry a fail-stop/stall plan (validateFleetFaultPlan);
// fail-stops quarantine the slot they hit and the victim guest is
// retried per fc's policy knobs. With cfg.Recovery==RecoverRollback
// (or CheckpointInterval set) guests checkpoint at their dispatch
// boundary and a retry resumes from the latest snapshot instead of the
// image.
func RunFleet(imgs []*guest.Image, cfg Config, fc FleetConfig) (res *FleetResult, err error) {
	// Panic containment, host side: tile-kernel panics are already
	// converted to sim.PanicError by the event loop, and this boundary
	// catches everything else (carving, admission bookkeeping, result
	// collection), so a caller holding a fleet of other work — the
	// tilevmd scheduler — can never be taken down by one batch.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, internalFromPanic(r, debug.Stack())
		}
	}()
	if len(imgs) == 0 {
		return nil, fmt.Errorf("core: fleet mode needs at least one guest")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000_000
	}
	if cfg.Morph {
		return nil, fmt.Errorf("core: intra-VM morphing and fleet mode are mutually exclusive")
	}
	if cfg.Journal != nil {
		return nil, fmt.Errorf("core: record-replay is not supported in fleet mode")
	}
	if fc.MaxAttempts < 0 {
		return nil, fmt.Errorf("core: fleet MaxAttempts must be non-negative, got %d", fc.MaxAttempts)
	}
	if len(fc.Deadlines) != 0 && len(fc.Deadlines) != len(imgs) {
		return nil, fmt.Errorf("core: %d per-guest deadlines for %d guests (need none or one per guest)",
			len(fc.Deadlines), len(imgs))
	}
	if len(fc.Profiles) != 0 && !fc.Planner {
		return nil, fmt.Errorf("core: fleet guest Profiles require the placement Planner")
	}
	if len(fc.Profiles) != 0 && len(fc.Profiles) != len(imgs) {
		return nil, fmt.Errorf("core: %d guest profiles for %d guests (need none or one per guest)",
			len(fc.Profiles), len(imgs))
	}
	if fc.Elastic && fc.Lend {
		return nil, fmt.Errorf("core: elastic morphing and slave lending are mutually exclusive (both move slaves between VMs)")
	}
	if cfg.Recovery == RecoverRollback && cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	slots, err := carveFabric(cfg.Params, 0)
	if err != nil {
		return nil, err
	}
	if fc.MaxSlots > 0 {
		if fc.MaxSlots > len(slots) {
			return nil, fmt.Errorf("core: %d VM slots requested but the %d×%d fabric fits only %d",
				fc.MaxSlots, cfg.Params.Width, cfg.Params.Height, len(slots))
		}
		slots = slots[:fc.MaxSlots]
	}
	if len(slots) > len(imgs) {
		slots = slots[:len(imgs)]
	}
	if fc.Planner {
		// Re-carve with the planner at the slot count the fixed carve
		// settled on, so MaxSlots and capacity semantics are identical;
		// the planner only changes shapes and role splits.
		slots, err = planFabric(cfg.Params, fc.Profiles, len(slots))
		if err != nil {
			return nil, err
		}
	}
	if !cfg.Fault.Empty() {
		if err := validateFleetFaultPlan(cfg.Fault, slots, cfg.Params); err != nil {
			return nil, err
		}
	}

	fl := &fleetRun{
		cfg:             cfg,
		fc:              fc,
		m:               raw.NewMachine(cfg.Params),
		imgs:            imgs,
		slots:           slots,
		hosts:           make([]*slotHost, len(slots)),
		peers:           make([][]int, len(slots)),
		homeMgr:         map[int]int{},
		engines:         make([]*engine, len(imgs)),
		slotOf:          make([]int, len(imgs)),
		admitted:        make([]uint64, len(imgs)),
		finished:        make([]uint64, len(imgs)),
		attempts:        make([]int, len(imgs)),
		phase:           make([]guestPhase, len(imgs)),
		errs:            make([]error, len(imgs)),
		deadline:        make([]uint64, len(imgs)),
		slotQuarantined: map[int]bool{},
		slotIdx:         slotIndexOf(slots),
		maxAttempts:     fc.MaxAttempts,
		backoffBase:     fc.RetryBackoff,
		remaining:       len(imgs),
	}
	if fl.maxAttempts == 0 {
		fl.maxAttempts = DefaultMaxAttempts
	}
	if fl.backoffBase == 0 {
		fl.backoffBase = DefaultRetryBackoff
	}
	if fc.Elastic {
		fl.elastic = &elasticState{reclaim: map[int]int{}, donatedAt: map[int]int{}, hosts: fl.hosts}
		fl.redirect = map[int]*tileRedirect{}
	}
	for gi := range fl.deadline {
		fl.deadline[gi] = fc.Deadline
		if len(fc.Deadlines) > 0 && fc.Deadlines[gi] > 0 {
			fl.deadline[gi] = fc.Deadlines[gi]
		}
		if fl.deadline[gi] > 0 {
			fl.fleet.DeadlineTotal++
		}
	}
	if !cfg.Fault.Empty() && len(cfg.Fault.Fails) > 0 {
		// fl.dead non-nil switches the engines into fleet-fault mode
		// (trackWork bookkeeping, fleetDead guards); it stays nil — and
		// those paths provably never run — on fail-free plans.
		fl.plan = fl.cfg.Fault
		fl.dead = map[int]bool{}
		for _, f := range fl.plan.Fails {
			if f.Cycle > fl.horizon {
				fl.horizon = f.Cycle
			}
		}
	}
	if !cfg.Fault.Empty() {
		inj := fault.NewInjector(cfg.Fault)
		fl.m.Faults = inj
		if cfg.Tracer != nil {
			inj.Observe = func(kind fault.Kind, tile int, now uint64) {
				cfg.Tracer.Instant(tile, "fault", now, "kind", uint64(kind), "", 0)
			}
		}
	}
	if cfg.CheckpointInterval > 0 {
		fl.cks = make([]*checkpoint.Checkpointer, len(imgs))
		for gi := range fl.cks {
			fl.cks[gi] = checkpoint.NewCheckpointer(cfg.CheckpointInterval)
		}
	}
	fl.m.Sim.SetLimit(cfg.MaxCycles)
	cfg.Interrupt.bind(fl.m.Sim)
	fl.m.SetTracer(cfg.Tracer)
	for gi := range fl.slotOf {
		fl.slotOf[gi] = -1
	}
	for si, pl := range slots {
		for _, s := range pl.slaves {
			fl.homeMgr[s] = pl.manager
		}
		for sj, pj := range slots {
			if sj != si {
				fl.peers[si] = append(fl.peers[si], pj.manager)
			}
		}
	}
	// Initial admission: guest i takes slot i; the rest queue in order.
	for si := range slots {
		fl.hosts[si] = &slotHost{cur: fl.newEngine(si, si), guest: si}
		fl.attempts[si] = 1
		fl.phase[si] = phaseRunning
	}
	for gi := len(slots); gi < len(imgs); gi++ {
		fl.queue = append(fl.queue, pendingGuest{gi: gi})
	}
	fl.spawnSlots()
	// The supervisor is spawned last — after every tile kernel — so at a
	// shared cycle it observes the tiles' work before acting: a guest
	// finishing exactly at a fail or deadline cycle has already finished.
	// With no fail-stops and no deadlines there are no events and no
	// supervisor: the run is bit-identical to the policy-free scheduler.
	fl.events = fl.policyEvents()
	if len(fl.events) > 0 {
		fl.m.Sim.Spawn("fleet-supervisor", fl.supervise)
	}
	// Parallel engine: shard the fabric by VM slot when the run is
	// slot-isolated. Lending, fault injection, policy events, tracing,
	// and dispatch logging all couple slots (or a shared sink) across
	// the shard boundary, so any of them keeps the serial loop; the
	// parallel engine is bit-identical, not merely equivalent, so the
	// fallback is an implementation detail rather than a semantic one.
	if cfg.SimWorkers > 1 && len(slots) > 1 && !fc.Lend && !fc.Elastic &&
		cfg.Fault.Empty() && cfg.Tracer == nil && cfg.DispatchLog == nil &&
		len(fl.events) == 0 {
		fl.shardSlots(cfg.SimWorkers)
	}

	simErr := fl.m.Run()

	// A tile-kernel panic is attributed to the guest whose slot hosted
	// the panicking process before results are collected, so the victim
	// reports GuestInternalError while finished guests keep their
	// results.
	var ie *InternalError
	var perr *sim.PanicError
	if errors.As(simErr, &perr) {
		ie = fl.attributePanic(perr)
	}
	res = fl.collect()
	if ie != nil {
		return res, ie
	}
	if simErr != nil {
		return res, fmt.Errorf("core: fleet simulation failed: %w", simErr)
	}
	for gi, e := range fl.engines {
		if e != nil && e.execErr != nil && !e.cancelled {
			return res, fmt.Errorf("core: guest %d failed: %w", gi, e.execErr)
		}
	}
	return res, nil
}

// attributePanic maps a sim-level panic onto the fleet: the slot whose
// tile process panicked, and the guest that slot was hosting. The
// victim guest (if it was running) turns terminal with the
// InternalError; every other non-terminal guest stays GuestPending —
// the caller decides whether to re-run them.
func (fl *fleetRun) attributePanic(perr *sim.PanicError) *InternalError {
	ie := internalFromSim(perr)
	for si, h := range fl.hosts {
		for _, p := range h.procs {
			if p.ID() == perr.Pid {
				ie.Slot, ie.Guest = si, h.guest
				if fl.phase[ie.Guest] == phaseRunning {
					fl.phase[ie.Guest] = phaseInternal
					fl.errs[ie.Guest] = ie
				}
				return ie
			}
		}
	}
	return ie
}

// newEngine builds the engine binding guest gi to slot si.
func (fl *fleetRun) newEngine(gi, si int) *engine {
	e := &engine{
		cfg:  fl.cfg,
		pl:   fl.slots[si],
		m:    fl.m,
		proc: guest.Load(fl.imgs[gi]),
		tr: translate.New(translate.Options{
			Optimize:          fl.cfg.Optimize,
			ConservativeFlags: fl.cfg.ConservativeFlags,
		}),
		codePages: map[uint32]bool{},
		pageInval: map[uint32]uint64{},
		peers:     fl.peers[si],
		lend:      fl.fc.Lend,
		homeMgr:   fl.homeMgr,
		vmLabel:   fmt.Sprintf("vm%d", gi),
		trackWork: fl.dead != nil,
		fleetDead: fl.dead,
		elastic:   fl.elastic,
	}
	e.initTierState()
	if fl.cks != nil {
		e.ck = fl.cks[gi]
	}
	e.onExit = func(c *raw.TileCtx) {
		// In a sharded run the fleet bookkeeping below — and the
		// admission path the exec wrapper runs right after — mutates
		// state shared by every slot. Fence blocks until this is
		// provably the globally earliest pending work and holds the
		// other shards until the exec kernel next parks, so the shared
		// state is touched in exact serial cycle order. No-op when the
		// serial loop is running.
		c.P.Fence()
		if e.cancelled {
			// Quarantine or deadline: the supervisor already did this
			// guest's terminal (or re-queue) bookkeeping.
			return
		}
		fl.remaining--
		if fl.remaining == 0 {
			c.Stop()
		}
	}
	e.registerTraceProcs()
	fl.engines[gi] = e
	fl.slotOf[gi] = si
	return e
}

// spawnSlots registers every slot's tile kernels, each wrapped in a
// loop that re-binds it to the slot's current engine after a vmSwitch.
// The slot keeps each tile's process handle so a quarantine can
// daemon-mark the whole slot.
func (fl *fleetRun) spawnSlots() {
	for si := range fl.slots {
		pl := fl.slots[si]
		h := fl.hosts[si]
		add := func(p *sim.Proc) { h.procs = append(h.procs, p) }
		add(fl.m.SpawnTile(pl.exec, "exec", func(c *raw.TileCtx) {
			for {
				e := h.cur
				e.execKernel(c)
				if h.quarantined {
					return
				}
				if !e.cancelled {
					fl.finished[h.guest] = e.stopCycles
					fl.noteFinished(h.guest, e)
				}
				gi, ok := fl.nextGuest(c, h, si)
				if !ok {
					// No queued guest and none can appear: leave the slot's
					// service tiles running under the finished epoch so its
					// parked slaves keep serving the surviving VMs.
					return
				}
				fl.admit(c, h, si, gi)
			}
		}))
		add(fl.m.SpawnTile(pl.manager, "manager", func(c *raw.TileCtx) {
			for {
				h.cur.managerKernel(c)
			}
		}))
		add(fl.m.SpawnTile(pl.mmu, "mmu", func(c *raw.TileCtx) {
			for {
				if fl.runRedirected(c) {
					continue
				}
				h.cur.mmuKernel(c)
			}
		}))
		add(fl.m.SpawnTile(pl.sys, "syscall", func(c *raw.TileCtx) {
			for {
				if fl.runRedirected(c) {
					continue
				}
				h.cur.sysKernel(c)
			}
		}))
		for _, t := range pl.l15 {
			add(fl.m.SpawnTile(t, "l15", func(c *raw.TileCtx) {
				for {
					if fl.runRedirected(c) {
						continue
					}
					h.cur.l15Kernel(c)
				}
			}))
		}
		for _, t := range pl.slaves {
			add(fl.m.SpawnTile(t, "worker", func(c *raw.TileCtx) {
				for {
					if fl.runRedirected(c) {
						continue
					}
					h.cur.workerBody(roleSlave)(c)
				}
			}))
		}
		for _, t := range pl.banks {
			add(fl.m.SpawnTile(t, "worker", func(c *raw.TileCtx) {
				for {
					if fl.runRedirected(c) {
						continue
					}
					h.cur.workerBody(roleBank)(c)
				}
			}))
		}
	}
}

// runRedirected intercepts a service tile's kernel restart when the
// tile has been donated to another slot (elastic morphing): it serves
// the target slot's engine as an extra translation slave, or — once its
// owner has marked it for reclaim — commits the reclaim and idles until
// the owner's next handoff sweeps it back. Reports whether it consumed
// one kernel epoch; false (always, outside elastic mode) means the
// caller runs the tile's home kernel.
func (fl *fleetRun) runRedirected(c *raw.TileCtx) bool {
	r := fl.redirect[c.Tile]
	if r == nil {
		return false
	}
	if r.idle {
		if owner, ok := fl.elastic.commit(c.Tile); ok {
			c.Send(owner, reclaimDone{Tile: c.Tile}, wordsCtl)
		}
		idleKernel(c)
		return true
	}
	r.to.cur.workerBody(roleSlave)(c)
	return true
}

// idleKernel parks a reclaimed tile between VMs: it discards stray
// traffic and waits for the vmSwitch that re-absorbs it into its owner
// slot's next epoch.
func idleKernel(c *raw.TileCtx) {
	for {
		msg := c.Recv()
		if _, ok := msg.Payload.(vmSwitch); ok {
			c.Send(msg.From, switchAck{}, wordsCtl)
			return
		}
	}
}

// donateSlot grows the running peer VMs by this idle slot's tiles:
// every service tile except the exec and manager tiles is redirected,
// round-robin, to a peer slot, where it self-registers as an extra
// translation slave. The manager tile stays home so donated-in tiles
// parked here keep a live service point, and the exec tile keeps
// coordinating admission. Reports whether anything was donated (false
// when no peer VM is running).
func (fl *fleetRun) donateSlot(c *raw.TileCtx, h *slotHost, si int) bool {
	var targets []int
	for ti := range fl.hosts {
		if ti == si || fl.hosts[ti].quarantined {
			continue
		}
		if fl.phase[fl.hosts[ti].guest] == phaseRunning {
			targets = append(targets, ti)
		}
	}
	if len(targets) == 0 {
		return false
	}
	pl := fl.slots[si]
	var tiles []int
	for _, t := range pl.tiles() {
		if t != pl.exec && t != pl.manager {
			tiles = append(tiles, t)
		}
	}
	// Register every redirect before the first vmSwitch can wake a tile,
	// so a woken tile always finds its routing in place.
	for _, t := range tiles {
		ti := targets[fl.rotor%len(targets)]
		fl.rotor++
		th := fl.hosts[ti]
		fl.redirect[t] = &tileRedirect{to: th}
		fl.elastic.donatedAt[t] = ti
		th.extra = append(th.extra, t)
		h.donated = append(h.donated, t)
	}
	fl.fleet.ElasticGrows++
	fl.cfg.Tracer.Instant(pl.exec, "elastic_grow", c.Now(),
		"slot", uint64(si), "tiles", uint64(len(tiles)))
	// Quiesce the manager first (its in-flight translations come back
	// before any slave departs), then cycle the donated tiles — plus any
	// tiles previously donated *into* this slot — through vmSwitch so
	// their wrappers re-read the redirect table.
	c.Send(pl.manager, vmSwitch{}, wordsCtl)
	waitSwitchAcks(c, 1)
	sweep := append(append([]int{}, tiles...), h.extra...)
	for _, t := range sweep {
		c.Send(t, vmSwitch{}, wordsCtl)
	}
	waitSwitchAcks(c, len(sweep))
	return true
}

// reclaimSlot shrinks the peers back: every tile this slot donated out
// is marked for reclaim in the shared ledger, the holding managers are
// nudged to release the ones they have parked, and the exec tile blocks
// until each tile's reclaimDone arrives — from the holding manager, or
// from the tile's own wrapper when it finds the idle redirect first.
// Reports false when the slot was quarantined while waiting.
func (fl *fleetRun) reclaimSlot(c *raw.TileCtx, h *slotHost, si int) bool {
	pl := fl.slots[si]
	want := 0
	var mgrs []int
	byMgr := map[int][]int{}
	for _, t := range h.donated {
		ti, ok := fl.elastic.donatedAt[t]
		if !ok {
			continue // already rescued by a quarantine
		}
		fl.redirect[t].idle = true
		fl.elastic.reclaim[t] = pl.exec
		want++
		mgr := fl.slots[ti].manager
		if _, seen := byMgr[mgr]; !seen {
			mgrs = append(mgrs, mgr)
		}
		byMgr[mgr] = append(byMgr[mgr], t)
	}
	fl.fleet.ElasticShrinks++
	fl.cfg.Tracer.Instant(pl.exec, "elastic_shrink", c.Now(),
		"slot", uint64(si), "tiles", uint64(want))
	for _, mgr := range mgrs {
		c.Send(mgr, reclaim{Tiles: byMgr[mgr]}, wordsCtl)
	}
	for want > 0 {
		if d, ok := c.Recv().Payload.(reclaimDone); ok {
			delete(fl.elastic.donatedAt, d.Tile)
			want--
		}
	}
	for _, t := range h.donated {
		delete(fl.redirect, t)
		delete(fl.elastic.donatedAt, t)
	}
	h.donated = nil
	return !h.quarantined
}

// shardSlots partitions the fleet for the parallel engine: slot si's
// tile processes and inbox ports all land on shard si % workers, so a
// slot never straddles a shard boundary. In the slot-isolated
// configurations that reach here (no lending, no faults, no policy
// events) slots exchange no messages at all, so no sim.Connect links
// are declared: each shard free-runs, and an unexpected cross-slot
// send panics instead of silently racing. The shared admission state
// is serialized by the Fence in onExit.
func (fl *fleetRun) shardSlots(workers int) {
	fl.m.Sim.SetWorkers(workers)
	for si := range fl.slots {
		shard := si % workers
		for _, t := range fl.slots[si].tiles() {
			fl.m.SetTileShard(t, shard)
		}
		for _, p := range fl.hosts[si].procs {
			p.SetShard(shard)
		}
	}
}

// noteFinished records a clean guest exit in the fleet counters.
func (fl *fleetRun) noteFinished(gi int, e *engine) {
	fl.phase[gi] = phaseFinished
	fl.fleet.GuestsFinished++
	fl.fleet.GoodputInsts += e.stats.HostInsts
	if d := fl.deadline[gi]; d > 0 && e.stopCycles <= d {
		fl.fleet.DeadlineMet++
	}
}

// nextGuest hands the slot its next guest: the oldest queue entry
// whose release cycle has passed. When none is eligible yet the slot
// sleeps (pure idle time — no busy accounting, no messages) until the
// earliest future release or fail cycle, because a fail-stop may still
// re-queue a running guest; it retires only when the queue is empty
// and the fault horizon is past, after which no new work can appear.
// On a policy-free run the queue holds only release-0 entries and the
// horizon is 0, so this degrades to the plain FIFO cursor — same
// claims, same cycles, no extra events.
//
// In elastic mode an idle wait turns productive: the slot donates its
// service tiles to the running peers (donateSlot) instead of sleeping
// on them, and reclaims them (reclaimSlot) before admitting the next
// guest. A retiring slot donates too — its tiles help the survivors
// until the run ends.
func (fl *fleetRun) nextGuest(c *raw.TileCtx, h *slotHost, si int) (int, bool) {
	for {
		if h.quarantined {
			return 0, false
		}
		now := c.Now()
		eligible := -1
		for qi, pg := range fl.queue {
			if pg.release <= now {
				eligible = qi
				break
			}
		}
		if eligible >= 0 {
			if len(h.donated) > 0 {
				if !fl.reclaimSlot(c, h, si) {
					return 0, false
				}
				continue
			}
			pg := fl.queue[eligible]
			fl.queue = append(fl.queue[:eligible], fl.queue[eligible+1:]...)
			return pg.gi, true
		}
		if len(fl.queue) == 0 && now > fl.horizon {
			if fl.elastic != nil && len(h.donated) == 0 {
				fl.donateSlot(c, h, si)
			}
			return 0, false
		}
		if fl.elastic != nil && len(h.donated) == 0 && fl.donateSlot(c, h, si) {
			continue
		}
		next := now + 1
		found := false
		cand := func(t uint64) {
			if t > now && (!found || t < next) {
				next, found = t, true
			}
		}
		cand(fl.horizon + 1)
		for _, pg := range fl.queue {
			cand(pg.release)
		}
		if fl.plan != nil {
			for _, f := range fl.plan.Fails {
				cand(f.Cycle)
			}
		}
		c.P.Advance(next - now)
	}
}

// admit binds guest gi to slot si and runs the vmSwitch handoff. A
// re-admission (attempt > 1) restarts the guest from its image — or,
// under rollback recovery, from its latest checkpoint, charging the
// modeled restore penalty.
func (fl *fleetRun) admit(c *raw.TileCtx, h *slotHost, si, gi int) {
	pl := fl.slots[si]
	h.cur = fl.newEngine(gi, si)
	h.guest = gi
	fl.phase[gi] = phaseRunning
	fl.attempts[gi]++
	if fl.attempts[gi] > 1 {
		fl.fleet.GuestsRetried++
		fl.cfg.Tracer.Instant(pl.exec, "fleet_retry", c.Now(),
			"guest", uint64(gi), "attempt", uint64(fl.attempts[gi]))
		fl.restoreForRetry(c, h.cur, gi)
	}
	fl.admitted[gi] = c.Now()
	fl.handoff(c, h, pl)
}

// restoreForRetry rebases a re-admitted guest on its latest checkpoint
// when rollback recovery is on. Either way the guest's checkpointer is
// re-armed: the new attempt owns a fresh Memory, so the next capture
// must be a full snapshot, not an incremental diff against the aborted
// attempt's pages.
func (fl *fleetRun) restoreForRetry(c *raw.TileCtx, e *engine, gi int) {
	if fl.cks == nil {
		return
	}
	ck := fl.cks[gi]
	snap := ck.Last()
	ck.Rearm()
	if fl.cfg.Recovery != RecoverRollback || snap == nil {
		return
	}
	e.restore = snap
	e.applyRestore(snap)
	P := fl.cfg.Params
	penalty := P.RollbackFixedOcc + uint64(len(snap.Mem.Pages))*P.RollbackPerPageOcc
	e.stats.Rollbacks = uint64(fl.attempts[gi] - 1)
	e.stats.RollbackCycles = penalty
	c.Tick(penalty)
	fl.cfg.Tracer.Instant(fl.slots[fl.slotOf[gi]].exec, "rollback", c.Now(),
		"restore_to", snap.Cycles, "guest", uint64(gi))
}

// handoff rebinds a slot's service tiles to the next guest's engine.
// Phase 1 quiesces the manager: its in-flight translations complete
// (and are discarded) inside drainForSwitch, so no stale transDone can
// reach the new epoch. Phase 2 resets the remaining service tiles —
// workers flush their data banks (charged like a morph flush) and
// slaves re-register with the new manager when their kernels restart.
// Tiles donated into this slot (elastic mode) are swept too: a
// stranded one — dropped from a drained epoch's parked pool — either
// re-registers with the new manager or, if its owner marked it for
// reclaim meanwhile, commits the reclaim from its own wrapper. The
// exec tile owns the handshake; it resumes dispatching only after
// every service tile has acked.
func (fl *fleetRun) handoff(c *raw.TileCtx, h *slotHost, pl placement) {
	c.Send(pl.manager, vmSwitch{}, wordsCtl)
	waitSwitchAcks(c, 1)
	targets := []int{pl.mmu, pl.sys}
	targets = append(targets, pl.l15...)
	targets = append(targets, pl.slaves...)
	targets = append(targets, pl.banks...)
	targets = append(targets, h.extra...)
	for _, t := range targets {
		c.Send(t, vmSwitch{}, wordsCtl)
	}
	waitSwitchAcks(c, len(targets))
}

// waitSwitchAcks blocks until n switchAck messages arrive. Nothing
// else targets an exec tile between guests, but stray payloads are
// tolerated and skipped.
func waitSwitchAcks(c *raw.TileCtx, n int) {
	for n > 0 {
		if _, ok := c.Recv().Payload.(switchAck); ok {
			n--
		}
	}
}

// collect assembles the fleet result after the simulation ends.
func (fl *fleetRun) collect() *FleetResult {
	res := &FleetResult{
		Guests:   make([]*GuestResult, len(fl.imgs)),
		Slots:    len(fl.slots),
		TileBusy: fl.m.BusyCycles(),
		Fleet:    fl.fleet,
	}
	for gi := range fl.imgs {
		gr := &GuestResult{
			Slot:     fl.slotOf[gi],
			Attempts: fl.attempts[gi],
			Err:      fl.errs[gi],
		}
		res.Guests[gi] = gr
		switch fl.phase[gi] {
		case phaseFinished:
			gr.Status = GuestFinished
		case phaseAborted:
			gr.Status = GuestAborted
		case phaseDeadline:
			gr.Status = GuestDeadlineExceeded
		case phaseInternal:
			gr.Status = GuestInternalError
		default:
			gr.Status = GuestPending
		}
		e := fl.engines[gi]
		if e == nil {
			continue // never admitted to a slot
		}
		gr.Admitted = fl.admitted[gi]
		gr.Finished = fl.finished[gi]
		if fl.phase[gi] != phaseFinished && fl.phase[gi] != phaseRunning {
			// Aborted or deadline-killed: the engine's state is a
			// mid-flight snapshot of a cancelled attempt, not a result.
			continue
		}
		e.stats.Cycles = e.stopCycles
		if e.mgr != nil {
			e.stats.L2CAccess = e.mgr.l2.Accesses
			e.stats.L2CMisses = e.mgr.l2.Misses
			e.stats.SpecWasted = uint64(len(e.mgr.specStored))
		}
		gr.Result = &Result{
			Cycles:    e.stopCycles,
			ExitCode:  e.proc.Kern.ExitCode,
			Stdout:    e.proc.Kern.Stdout.String(),
			M:         e.stats,
			StateHash: checkpoint.FinalHash(e.proc),
		}
		if gr.Finished > res.Makespan {
			res.Makespan = gr.Finished
		}
	}
	if res.Makespan > 0 && len(res.TileBusy) > 0 {
		var busy uint64
		for _, b := range res.TileBusy {
			busy += b
		}
		res.Utilization = float64(busy) / (float64(len(res.TileBusy)) * float64(res.Makespan))
	}
	return res
}
