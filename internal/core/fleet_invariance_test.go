package core

import (
	"reflect"
	"testing"

	"tilevm/internal/guest"
)

// Invariance battery (ISSUE: the headline test work). A guest's
// architectural outcome must not depend on how it was hosted: solo on
// the default fabric, in a fleet of any size, with or without slave
// lending, with or without tracing, and regardless of which slot it
// landed in. Timing-dependent counters (cycles, cache/TLB misses in
// the shared memory system, translation counts, speculation waste)
// legitimately differ across hostings; everything the guest can
// architecturally observe may not.

// archFingerprint is the timing-independent slice of a guest Result.
// Every field is determined solely by the guest's own instruction
// stream: the exec tile's dispatch loop, its private code/data caches,
// and the syscall kernel (which runs on a logical clock).
type archFingerprint struct {
	StateHash                   uint64
	ExitCode                    int32
	Stdout                      string
	GuestInsts, HostInsts       uint64
	BlockDispatches             uint64
	Syscalls, Assists           uint64
	L1CLookups, L1CHits         uint64
	L1CFlushes, Chains          uint64
	DL1Accesses, DL1Misses      uint64
	SMCInvalidations, L2CStores uint64
}

func fingerprint(r *Result) archFingerprint {
	return archFingerprint{
		StateHash:        r.StateHash,
		ExitCode:         r.ExitCode,
		Stdout:           r.Stdout,
		GuestInsts:       r.M.GuestInsts,
		HostInsts:        r.M.HostInsts,
		BlockDispatches:  r.M.BlockDispatches,
		Syscalls:         r.M.Syscalls,
		Assists:          r.M.Assists,
		L1CLookups:       r.M.L1CLookups,
		L1CHits:          r.M.L1CHits,
		L1CFlushes:       r.M.L1CFlushes,
		Chains:           r.M.Chains,
		DL1Accesses:      r.M.DL1Accesses,
		DL1Misses:        r.M.DL1Misses,
		SMCInvalidations: r.M.SMCInvalidations,
		L2CStores:        r.M.L2CStores,
	}
}

// soloFingerprints runs each distinct image alone on the default 4×4
// fabric and returns its fingerprint, keyed by image pointer.
func soloFingerprints(t *testing.T, imgs []*guest.Image) map[*guest.Image]archFingerprint {
	t.Helper()
	out := map[*guest.Image]archFingerprint{}
	for _, img := range imgs {
		if _, done := out[img]; done {
			continue
		}
		res, err := Run(img, fleetCfg(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		out[img] = fingerprint(res)
	}
	return out
}

func checkFleetInvariance(t *testing.T, label string, fr *FleetResult, imgs []*guest.Image, solo map[*guest.Image]archFingerprint) {
	t.Helper()
	for gi, g := range fr.Guests {
		if g.Result == nil {
			t.Errorf("%s: guest %d never ran", label, gi)
			continue
		}
		if got, want := fingerprint(g.Result), solo[imgs[gi]]; got != want {
			t.Errorf("%s: guest %d fingerprint diverged from solo run\n got %+v\nwant %+v",
				label, gi, got, want)
		}
	}
}

// TestFleetInvarianceAcrossHostings is the battery core: the same four
// guests, hosted six different ways, always produce their solo
// fingerprints — including hostings that force queueing (more guests
// than slots) and hence mid-run slot handoffs.
func TestFleetInvarianceAcrossHostings(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf")
	solo := soloFingerprints(t, imgs)

	hostings := []struct {
		name string
		w, h int
		fc   FleetConfig
	}{
		{"8x8/lend", 8, 8, FleetConfig{Lend: true}},
		{"8x8/nolend", 8, 8, FleetConfig{}},
		{"8x8/2slots/lend", 8, 8, FleetConfig{Lend: true, MaxSlots: 2}},
		{"4x4/lend", 4, 4, FleetConfig{Lend: true}},
		{"4x4/nolend", 4, 4, FleetConfig{}},
		{"4x2/serial", 4, 2, FleetConfig{Lend: true}},
	}
	for _, hc := range hostings {
		fr, err := RunFleet(imgs, fleetCfg(hc.w, hc.h), hc.fc)
		if err != nil {
			t.Fatalf("%s: %v", hc.name, err)
		}
		checkFleetInvariance(t, hc.name, fr, imgs, solo)
	}
}

// TestFleetInvarianceUnderSlotPermutation permutes the admission order
// (and hence the slot assignment) of four guests on a grid with four
// slots: each guest keeps its solo fingerprint no matter which slot it
// lands in or which neighbors it shares the fabric with.
func TestFleetInvarianceUnderSlotPermutation(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf")
	solo := soloFingerprints(t, imgs)

	perms := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
	}
	for _, perm := range perms {
		ordered := make([]*guest.Image, len(perm))
		for pos, gi := range perm {
			ordered[pos] = imgs[gi]
		}
		fr, err := RunFleet(ordered, fleetCfg(8, 8), FleetConfig{Lend: true})
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		checkFleetInvariance(t, "perm", fr, ordered, solo)
		for pos, g := range fr.Guests {
			if g.Slot != pos {
				t.Errorf("perm %v: guest at position %d ran in slot %d, want %d", perm, pos, g.Slot, pos)
			}
		}
	}
}

// TestFleetTracingIsTimingNeutral pins a stronger property than the
// fingerprint: the tracer charges zero virtual cycles, so a traced
// fleet run is byte-identical to the untraced run — every guest's full
// Result (cycles and all shared-fabric counters included), the
// makespan, and the per-tile busy vector.
func TestFleetTracingIsTimingNeutral(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip")
	run := func(traced bool) *FleetResult {
		cfg := fleetCfg(8, 8)
		if traced {
			cfg.Tracer = NewTracerFor(cfg.Params, 50_000)
		}
		fr, err := RunFleet(imgs, cfg, FleetConfig{Lend: true})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	plain, traced := run(false), run(true)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing perturbed the fleet run:\nuntraced %+v\ntraced   %+v", plain, traced)
	}
}

// TestPairMatchesTwoGuestFleet pins the compatibility contract spelled
// out in the ISSUE: RunPair is exactly a two-guest fleet on the
// default grid, byte for byte.
func TestPairMatchesTwoGuestFleet(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf")
	for _, lend := range []bool{false, true} {
		pair, err := RunPair(imgs[0], imgs[1], pairCfg(), lend)
		if err != nil {
			t.Fatalf("lend=%v: %v", lend, err)
		}
		fleet, err := RunFleet(imgs, pairCfg(), FleetConfig{Lend: lend})
		if err != nil {
			t.Fatalf("lend=%v: %v", lend, err)
		}
		if !reflect.DeepEqual(pair.A, fleet.Guests[0].Result) ||
			!reflect.DeepEqual(pair.B, fleet.Guests[1].Result) ||
			pair.Makespan != fleet.Makespan ||
			!reflect.DeepEqual(pair.TileBusy, fleet.TileBusy) {
			t.Errorf("lend=%v: RunPair and two-guest RunFleet disagree", lend)
		}
	}
}
