package core

import (
	"reflect"
	"testing"
)

// runFleetWorkers runs the same fleet at a given worker count and
// returns the full result.
func runFleetWorkers(t *testing.T, w, h, workers int, fc FleetConfig, names ...string) *FleetResult {
	t.Helper()
	cfg := fleetCfg(w, h)
	cfg.SimWorkers = workers
	r, err := RunFleet(fleetImgs(t, names...), cfg, fc)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return r
}

// TestFleetParallelWorkersInvariance is the tentpole gate: the sharded
// engine must produce a byte-identical FleetResult — per-guest cycles,
// exit codes, state hashes, per-tile busy counters, utilization, fleet
// counters — at every worker count. reflect.DeepEqual over the whole
// result covers all of it at once.
func TestFleetParallelWorkersInvariance(t *testing.T) {
	names := []string{"164.gzip", "181.mcf", "164.gzip", "181.mcf"}
	base := runFleetWorkers(t, 8, 8, 1, FleetConfig{}, names...)
	for _, workers := range []int{2, 4, 8} {
		got := runFleetWorkers(t, 8, 8, workers, FleetConfig{}, names...)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: fleet result differs from serial run\nserial:   %+v\nparallel: %+v",
				workers, base, got)
		}
	}
}

// TestFleetParallelOversubscribed exercises the admission queue under
// sharding: more guests than slots, so guest exits trigger fenced
// re-admissions whose global ordering decides which guest lands on
// which slot. Any fence-ordering bug shows up as a different
// slot/timing assignment.
func TestFleetParallelOversubscribed(t *testing.T) {
	names := []string{"164.gzip", "181.mcf", "164.gzip", "181.mcf", "164.gzip"}
	fc := FleetConfig{MaxSlots: 2}
	base := runFleetWorkers(t, 8, 8, 1, fc, names...)
	if base.Fleet.GuestsFinished != uint64(len(names)) {
		t.Fatalf("serial run finished %d of %d guests", base.Fleet.GuestsFinished, len(names))
	}
	for _, workers := range []int{2, 4, 8} {
		got := runFleetWorkers(t, 8, 8, workers, fc, names...)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: oversubscribed fleet result differs from serial run", workers)
		}
	}
}

// TestFleetParallelMatchesSoloHashes ties the parallel engine back to
// the per-guest architectural contract: each guest's final state hash
// under a sharded fleet equals its solo single-VM hash.
func TestFleetParallelMatchesSoloHashes(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip")
	solo := soloFingerprints(t, imgs)
	cfg := fleetCfg(8, 8)
	cfg.SimWorkers = 4
	r, err := RunFleet(imgs, cfg, FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	checkFleetInvariance(t, "workers=4", r, imgs, solo)
}

// TestFleetParallelFallsBackWhenCoupled pins the gating contract:
// configurations that couple slots (here, lending) must run the serial
// loop even with SimWorkers set, and still produce the serial result.
func TestFleetParallelFallsBackWhenCoupled(t *testing.T) {
	names := []string{"164.gzip", "181.mcf"}
	fc := FleetConfig{Lend: true}
	base := runFleetWorkers(t, 8, 8, 1, fc, names...)
	got := runFleetWorkers(t, 8, 8, 8, fc, names...)
	if !reflect.DeepEqual(base, got) {
		t.Errorf("lending fleet with SimWorkers=8 differs from serial run")
	}
}
