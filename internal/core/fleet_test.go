package core

import (
	"reflect"
	"strings"
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/guest"
	"tilevm/internal/raw"
	"tilevm/internal/workload"
)

// fleetCfg is the shared-fabric configuration for fleet tests.
func fleetCfg(w, h int) Config {
	cfg := DefaultConfig()
	cfg.Params.Width = w
	cfg.Params.Height = h
	cfg.MaxCycles = 4_000_000_000
	return cfg
}

// fleetImgs builds guest images by workload name.
func fleetImgs(t *testing.T, names ...string) []*guest.Image {
	t.Helper()
	imgs := make([]*guest.Image, len(names))
	built := map[string]*guest.Image{}
	for i, n := range names {
		img, ok := built[n]
		if !ok {
			p, ok := workload.ByName(n)
			if !ok {
				t.Fatalf("unknown workload %q", n)
			}
			img = p.Build()
			built[n] = img
		}
		imgs[i] = img
	}
	return imgs
}

func TestCarveFabricMatchesPairSplit(t *testing.T) {
	// On the default 4×4 grid the carve must reproduce the original
	// fixed pair split bit for bit, so RunPair-over-RunFleet preserves
	// the pre-fleet placements exactly.
	slots, err := carveFabric(raw.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("carved %d slots from 4×4, want 2", len(slots))
	}
	want := []struct {
		sys, l15, manager, exec, mmu, bank int
		slaves                             []int
	}{
		{0, 1, 4, 5, 6, 7, []int{2, 3}},
		{8, 9, 12, 13, 14, 15, []int{10, 11}},
	}
	for i, w := range want {
		s := slots[i]
		if s.sys != w.sys || s.l15[0] != w.l15 || s.manager != w.manager ||
			s.exec != w.exec || s.mmu != w.mmu || s.banks[0] != w.bank ||
			!reflect.DeepEqual(s.slaves, w.slaves) {
			t.Errorf("slot %d = %+v, want %+v", i, s, w)
		}
	}
}

func TestCarveFabricCounts(t *testing.T) {
	cases := []struct {
		w, h  int
		slots int // 0 = expect error
	}{
		{4, 4, 2},
		{8, 8, 8},
		{16, 16, 32},
		{4, 2, 1},
		{2, 4, 1},
		{6, 4, 3},  // two 4×2 stacked + one 2×4 in the spare column
		{5, 5, 2},  // ragged fit leaves the fifth row/column idle
		{3, 3, 0},  // too small in both orientations
		{2, 2, 0},  // passes the minimum-dimension gate but fits nothing
		{1, 16, 0}, // a 1-wide strip fits neither orientation
		{300, 4, 0},
	}
	for _, tc := range cases {
		p := raw.DefaultParams()
		p.Width, p.Height = tc.w, tc.h
		slots, err := carveFabric(p, 0)
		if tc.slots == 0 {
			if err == nil {
				t.Errorf("%d×%d: carved %d slots, want error", tc.w, tc.h, len(slots))
			}
			continue
		}
		if err != nil {
			t.Errorf("%d×%d: %v", tc.w, tc.h, err)
			continue
		}
		if len(slots) != tc.slots {
			t.Errorf("%d×%d: carved %d slots, want %d", tc.w, tc.h, len(slots), tc.slots)
		}
	}
	// Demanding more slots than fit must fail, not truncate.
	if _, err := carveFabric(raw.DefaultParams(), 3); err == nil {
		t.Error("carveFabric(4×4, 3) succeeded, want error")
	}
}

func TestRunFleetRejectsUnsupportedConfigs(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip")
	base := fleetCfg(4, 4)
	cases := []struct {
		name string
		cfg  func(Config) Config
		fc   FleetConfig
		imgs []*guest.Image
		want string
	}{
		{"no guests", nil, FleetConfig{}, nil, "at least one guest"},
		{"morph", func(c Config) Config { c.Morph = true; return c }, FleetConfig{}, imgs, "morphing"},
		{"probabilistic faults", func(c Config) Config {
			c.Fault = &fault.Plan{Seed: 1, DropProb: 0.01}
			return c
		}, FleetConfig{}, imgs, "fail: and stall: clauses"},
		{"fail outside carve", func(c Config) Config {
			// MaxSlots below truncates the carve to slot 0; tile 8 is in
			// (un-carved) slot 1's territory.
			c.Fault = &fault.Plan{Seed: 1, Fails: []fault.TileFail{{Tile: 8, Cycle: 1000}}}
			return c
		}, FleetConfig{MaxSlots: 1}, imgs, "no carved VM slot"},
		{"fail off fabric", func(c Config) Config {
			c.Fault = &fault.Plan{Seed: 1, Fails: []fault.TileFail{{Tile: 99, Cycle: 1000}}}
			return c
		}, FleetConfig{}, imgs, "outside the"},
		{"fail at cycle zero", func(c Config) Config {
			c.Fault = &fault.Plan{Seed: 1, Fails: []fault.TileFail{{Tile: 3}}}
			return c
		}, FleetConfig{}, imgs, "cycle 0"},
		{"negative max attempts", nil, FleetConfig{MaxAttempts: -1}, imgs, "non-negative"},
		{"deadline count mismatch", nil, FleetConfig{Deadlines: []uint64{1, 2}}, imgs, "per-guest deadlines"},
		{"too many slots", nil, FleetConfig{MaxSlots: 5}, imgs, "fits only"},
		{"tiny fabric", func(c Config) Config { c.Params.Width, c.Params.Height = 3, 3; return c }, FleetConfig{}, imgs, "fits no"},
	}
	for _, tc := range cases {
		cfg := base
		if tc.cfg != nil {
			cfg = tc.cfg(cfg)
		}
		_, err := RunFleet(tc.imgs, cfg, tc.fc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFleetSlots(t *testing.T) {
	p := raw.DefaultParams()
	if n, err := FleetSlots(p); err != nil || n != 2 {
		t.Errorf("FleetSlots(4×4) = %d, %v; want 2, nil", n, err)
	}
	p.Width, p.Height = 3, 2
	if _, err := FleetSlots(p); err == nil {
		t.Error("FleetSlots(3×2) succeeded, want error")
	}
}

// TestFleetQueueAdmission runs three guests through a one-slot fabric:
// arrivals beyond the slot count queue, and each exit re-packs the
// freed slot with the next guest.
func TestFleetQueueAdmission(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip")
	res, err := RunFleet(imgs, fleetCfg(4, 2), FleetConfig{Lend: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 1 {
		t.Fatalf("carved %d slots from 4×2, want 1", res.Slots)
	}
	for gi, g := range res.Guests {
		if g.Result == nil {
			t.Fatalf("guest %d never ran", gi)
		}
		if g.Slot != 0 {
			t.Errorf("guest %d ran in slot %d, want 0", gi, g.Slot)
		}
		checkGuest(t, "fleet", g.Result, imgs[gi])
	}
	// Admissions are sequential on one slot: each guest starts only
	// after its predecessor finished.
	if res.Guests[0].Admitted != 0 {
		t.Errorf("guest 0 admitted at %d, want 0", res.Guests[0].Admitted)
	}
	for gi := 1; gi < len(res.Guests); gi++ {
		prev, cur := res.Guests[gi-1], res.Guests[gi]
		if cur.Admitted < prev.Finished {
			t.Errorf("guest %d admitted at %d before guest %d finished at %d",
				gi, cur.Admitted, gi-1, prev.Finished)
		}
	}
	last := res.Guests[len(res.Guests)-1]
	if res.Makespan != last.Finished || res.Makespan == 0 {
		t.Errorf("makespan %d, want last finish %d", res.Makespan, last.Finished)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
}

// TestFleetDeterministic8x8 pins the acceptance criterion: ≥4 guests
// on an 8×8 fabric produce byte-identical metrics across repeated
// runs.
func TestFleetDeterministic8x8(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf")
	run := func() *FleetResult {
		res, err := RunFleet(imgs, fleetCfg(8, 8), FleetConfig{Lend: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fleet run not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
	if len(a.TileBusy) != 64 {
		t.Errorf("TileBusy covers %d tiles, want 64", len(a.TileBusy))
	}
	if a.Slots != 4 {
		t.Errorf("carved %d slots for 4 guests, want 4 (slots capped at guest count)", a.Slots)
	}
}

// TestFleetQueueWithLendingAcrossHandoffs drives the busiest protocol
// corner: multiple slots, more guests than slots, and lending on, so
// slot handoffs interleave with cross-VM slave traffic.
func TestFleetQueueWithLendingAcrossHandoffs(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip", "181.mcf", "164.gzip", "176.gcc")
	res, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Lend: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 2 {
		t.Fatalf("carved %d slots, want 2", res.Slots)
	}
	for gi, g := range res.Guests {
		if g.Result == nil {
			t.Fatalf("guest %d never ran", gi)
		}
		checkGuest(t, "fleet", g.Result, imgs[gi])
	}
}
