package core

import (
	"fmt"

	"tilevm/internal/fault"
	"tilevm/internal/raw"
	"tilevm/internal/sim"
)

// Fleet-level fault tolerance (DESIGN.md §10). The per-VM recovery
// machinery — excision, heartbeats, rollback — assumes a robust
// protocol stack that fleet slots deliberately do not run: every slot
// service point (manager, exec, MMU, syscall proxy) is a single tile,
// so a fail-stop anywhere in a slot is unrecoverable in place. The
// fleet layer recovers at a coarser grain instead:
//
//   - Slot quarantine: a fail-stop inside a slot excises the whole
//     slot from the carve. Its tiles are daemon-marked (fail-stop
//     semantics: they drain or idle forever without tripping deadlock
//     detection), its guest is aborted, and the lending fabric is
//     repaired so surviving VMs neither wait on nor lend to the dead
//     slot.
//   - Guest retry with deterministic backoff: an aborted guest
//     re-enters the admission queue with an exponential, seeded,
//     virtual-time backoff, restarting from its image — or from its
//     latest checkpoint when rollback recovery is configured — until
//     FleetConfig.MaxAttempts admissions are spent.
//   - Per-guest deadlines: a guest still running (or still queued) at
//     its deadline is cancelled and reported with a DeadlineError.
//
// Everything here runs host-side inside the discrete-event simulation
// (one supervisor process, spawned last so it observes each cycle
// after every tile), so the whole policy is bit-for-bit deterministic
// at a fixed seed. When the fault plan is empty and no deadline is
// set, the supervisor is not spawned and none of these code paths
// run: a policy-free fleet is bit-identical to the pre-policy
// scheduler.

// GuestStatus is a guest's terminal disposition within a fleet run.
type GuestStatus uint8

const (
	// GuestPending: the guest never reached a terminal state — it was
	// still queued or running when the simulation ended (watchdog,
	// deadlock, or an unrelated guest's failure).
	GuestPending GuestStatus = iota
	// GuestFinished: the guest ran to a clean exit.
	GuestFinished
	// GuestAborted: the fleet gave up on the guest — its admissions
	// ran out (MaxAttempts) or the last slot was quarantined.
	GuestAborted
	// GuestDeadlineExceeded: the guest was cancelled at its deadline.
	GuestDeadlineExceeded
	// GuestInternalError: the guest's slot hosted a tile kernel that
	// panicked — a simulator bug (or injected fault), not a guest
	// program error. The panic is preserved in the guest's Err as an
	// *InternalError.
	GuestInternalError
)

func (s GuestStatus) String() string {
	switch s {
	case GuestPending:
		return "pending"
	case GuestFinished:
		return "finished"
	case GuestAborted:
		return "aborted"
	case GuestDeadlineExceeded:
		return "deadline-exceeded"
	case GuestInternalError:
		return "internal-error"
	}
	return fmt.Sprintf("GuestStatus(%d)", uint8(s))
}

// DeadlineError reports a guest cancelled at its virtual-cycle
// deadline.
type DeadlineError struct {
	Guest    int
	Deadline uint64
	Attempts int
	// Running is true when the guest was cancelled mid-run (via the
	// vmSwitch handshake when its slot moved on); false when it was
	// still waiting in the admission queue.
	Running bool
}

func (e *DeadlineError) Error() string {
	state := "queued"
	if e.Running {
		state = "running"
	}
	return fmt.Sprintf("core: guest %d missed its deadline (cycle %d, still %s after %d attempt(s))",
		e.Guest, e.Deadline, state, e.Attempts)
}

// AbortError reports a guest the fleet gave up on after a slot
// quarantine.
type AbortError struct {
	Guest    int
	Attempts int
	Cycle    uint64
	// NoSlots marks an abort forced by the last surviving slot's
	// quarantine rather than the guest's own attempts running out.
	NoSlots bool
}

func (e *AbortError) Error() string {
	if e.NoSlots {
		return fmt.Sprintf("core: guest %d aborted at cycle %d: no surviving VM slots", e.Guest, e.Cycle)
	}
	return fmt.Sprintf("core: guest %d aborted at cycle %d after %d attempt(s)", e.Guest, e.Cycle, e.Attempts)
}

// Fleet retry-policy defaults (FleetConfig zero values).
const (
	// DefaultMaxAttempts is the per-guest admission cap when
	// FleetConfig.MaxAttempts is zero.
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base backoff in virtual cycles when
	// FleetConfig.RetryBackoff is zero.
	DefaultRetryBackoff = 50_000
)

// fleetSplitmix is the splitmix64 output function (a local copy of the
// fault package's unexported seed whitener), used to derive the
// deterministic per-(guest, attempt) backoff jitter.
func fleetSplitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryBackoff is the delay before re-admitting a guest after its
// attempt-th admission was aborted: exponential in the attempt count
// with a seeded jitter in [0, base) so retries of guests aborted by
// the same fault do not re-collide on the same release cycle. Fully
// deterministic: a function of (base, seed, guest, attempt) only.
func retryBackoff(base, seed uint64, gi, attempt int) uint64 {
	d := base << uint(attempt-1)
	if d < base || d > base<<20 { // shift overflow or absurd growth
		d = base << 20
	}
	jitter := fleetSplitmix(seed ^ fleetSplitmix(uint64(gi)<<32|uint64(attempt)))
	return d + jitter%base
}

// validateFleetFaultPlan rejects fault plans the fleet policy layer
// cannot honor. Fleet slots run the lean (non-robust) protocol stack —
// no watchdogs, heartbeats, retries, or at-most-once RPC — so
// probabilistic message faults would wedge a slot rather than exercise
// recovery; only fail-stop and stall clauses are meaningful, and they
// must target tiles inside carved slots (a fault on an uncarved tile
// could never be observed).
func validateFleetFaultPlan(plan *fault.Plan, slots []placement, p raw.Params) error {
	if plan.DropProb > 0 || plan.DelayProb > 0 || plan.CorruptProb > 0 || plan.DRAMProb > 0 {
		return fmt.Errorf("core: fleet fault plans support only fail: and stall: clauses " +
			"(probabilistic message/DRAM faults need the robust protocol stack, which fleet slots do not run)")
	}
	idx := slotIndexOf(slots)
	check := func(kind string, tile int, cycle uint64) error {
		if tile < 0 || tile >= p.Tiles() {
			return fmt.Errorf("core: fleet fault plan %s targets tile %d outside the %d×%d fabric",
				kind, tile, p.Width, p.Height)
		}
		if _, ok := idx[tile]; !ok {
			return fmt.Errorf("core: fleet fault plan %s targets tile %d, which is in no carved VM slot",
				kind, tile)
		}
		if cycle == 0 {
			return fmt.Errorf("core: fleet fault plan %s targets tile %d at cycle 0 (before any guest is admitted)",
				kind, tile)
		}
		return nil
	}
	for _, f := range plan.Fails {
		if err := check("fail", f.Tile, f.Cycle); err != nil {
			return err
		}
	}
	for _, s := range plan.Stalls {
		if err := check("stall", s.Tile, s.Cycle); err != nil {
			return err
		}
	}
	return nil
}

// policyEvents returns the sorted distinct virtual cycles at which the
// supervisor must act: every fail-stop cycle and every effective guest
// deadline.
func (fl *fleetRun) policyEvents() []uint64 {
	set := map[uint64]bool{}
	if fl.plan != nil {
		for _, f := range fl.plan.Fails {
			set[f.Cycle] = true
		}
	}
	for _, d := range fl.deadline {
		if d > 0 {
			set[d] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ { // insertion sort; event lists are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// supervise is the fleet supervisor process body. It is spawned after
// every tile kernel (highest pid), so at each event cycle it runs
// after the tiles: a guest that finishes exactly at a fail or deadline
// cycle finishes first and is left alone. Between events it sleeps;
// it neither sends nor receives unless it is repairing a quarantine,
// so a run whose faults never fire is perturbed only at the cycles
// where they would have.
func (fl *fleetRun) supervise(p *sim.Proc) {
	for _, ev := range fl.events {
		if p.Now() < ev {
			p.Advance(ev - p.Now())
		}
		if fl.remaining == 0 {
			return // everything settled while we slept; Stop already ran
		}
		fl.failsAt(ev)
		fl.deadlinesAt(ev)
		if fl.remaining == 0 {
			p.Stop()
			return
		}
	}
}

// failsAt quarantines every slot hit by a fail-stop at this cycle, in
// slot-carve order, then mass-aborts the queue if no slot survived.
func (fl *fleetRun) failsAt(now uint64) {
	if fl.plan == nil {
		return
	}
	hit := map[int]bool{}
	for _, f := range fl.plan.Fails {
		if f.Cycle != now {
			continue
		}
		if si, ok := fl.slotIdx[f.Tile]; ok {
			hit[si] = true
		}
	}
	for si := range fl.slots { // carve order, deterministic
		if hit[si] {
			fl.quarantineSlot(si, now)
		}
	}
	if len(hit) == 0 {
		return
	}
	live := 0
	for si := range fl.slots {
		if !fl.slotQuarantined[si] {
			live++
		}
	}
	if live > 0 {
		return
	}
	// The whole carve is gone: every queued guest is terminal.
	for gi := range fl.imgs {
		if fl.phase[gi] == phaseQueued {
			fl.phase[gi] = phaseAborted
			fl.errs[gi] = &AbortError{Guest: gi, Attempts: fl.attempts[gi], Cycle: now, NoSlots: true}
			fl.fleet.GuestsAborted++
			fl.remaining--
		}
	}
	fl.queue = nil
}

// quarantineSlot excises slot si from the carve: its tiles leave the
// fleet's worker pool forever, its processes become daemons, its
// running guest is aborted (requeued or terminal), and every surviving
// slot's lending state is repaired so no survivor waits on — or lends
// to — the dead slot.
func (fl *fleetRun) quarantineSlot(si int, now uint64) {
	if fl.slotQuarantined[si] {
		return
	}
	fl.slotQuarantined[si] = true
	fl.fleet.SlotsQuarantined++
	h := fl.hosts[si]
	h.quarantined = true
	pl := fl.slots[si]
	for _, t := range pl.tiles() {
		fl.dead[t] = true
	}
	for _, pr := range h.procs {
		pr.SetDaemon(true)
	}
	e := h.cur
	e.cancelled = true
	fl.cfg.Tracer.Instant(pl.manager, "quarantine", now, "slot", uint64(si), "guest", uint64(h.guest))

	gi := h.guest
	if fl.phase[gi] == phaseRunning {
		fl.abortGuest(gi, now)
	}

	// Foreign slaves parked at the dead manager go home; its deferred
	// help book dies with it (parked is empty or dead from here on, so
	// the grant arm of dispatch can never fire).
	if qm := e.mgr; qm != nil {
		for _, s := range qm.parked {
			if home, ok := fl.homeMgr[s]; ok && home != pl.manager && !fl.dead[s] {
				fl.m.Inbox(home).Send(pl.manager, lendReturn{Slave: s}, now)
			}
		}
		qm.parked = nil
		qm.pendingHelp = map[int]int{}
	}

	if fl.elastic != nil {
		// Donated-in tiles survive their target's death: commit any
		// pending reclaim (forging the reclaimDone the dead slot can no
		// longer generate), idle the rest, and wake them all so their
		// wrappers route them out of the dead VM.
		for _, t := range append([]int(nil), h.extra...) {
			if owner, ok := fl.elastic.commit(t); ok {
				fl.m.Inbox(owner).Send(pl.manager, reclaimDone{Tile: t}, now)
			}
			delete(fl.elastic.donatedAt, t)
			if r := fl.redirect[t]; r != nil {
				r.idle = true
			}
			fl.m.Inbox(t).Send(pl.manager, vmSwitch{}, now)
		}
		h.extra = nil
		// Tiles this slot donated out die with it: pull them from their
		// targets' rosters. They are already marked dead (pl.tiles()
		// covers them), so park() refuses them and repairSlot re-queues
		// any work stranded on them.
		for _, t := range h.donated {
			if ti, ok := fl.elastic.donatedAt[t]; ok {
				fl.hosts[ti].removeExtra(t)
			}
			delete(fl.elastic.donatedAt, t)
			delete(fl.elastic.reclaim, t)
			delete(fl.redirect, t)
		}
		h.donated = nil
	}

	for sj := range fl.slots {
		if sj == si || fl.slotQuarantined[sj] {
			continue
		}
		fl.repairSlot(sj, pl.manager, now)
	}
}

// abortGuest handles the running guest of a slot being quarantined:
// back into the admission queue with backoff if it has admissions
// left, terminal GuestAborted otherwise.
func (fl *fleetRun) abortGuest(gi int, now uint64) {
	if fl.attempts[gi] >= fl.maxAttempts {
		fl.phase[gi] = phaseAborted
		fl.errs[gi] = &AbortError{Guest: gi, Attempts: fl.attempts[gi], Cycle: now}
		fl.fleet.GuestsAborted++
		fl.remaining--
		fl.cfg.Tracer.Instant(fl.slots[fl.slotOf[gi]].exec, "fleet_abort", now,
			"guest", uint64(gi), "attempts", uint64(fl.attempts[gi]))
		return
	}
	release := now + retryBackoff(fl.backoffBase, fl.fc.RetrySeed, gi, fl.attempts[gi])
	fl.queue = append(fl.queue, pendingGuest{gi: gi, release: release})
	fl.phase[gi] = phaseQueued
}

// repairSlot fixes surviving slot sj's lending state after deadMgr's
// slot was quarantined: the dead manager leaves the peer list, the
// broadcast latch resets (a helpReq to the dead manager would
// otherwise never be answered), dead tiles leave the parked pool, and
// work stranded on a dead slave is re-queued. A slotRepair kick makes
// the manager re-run dispatch from its own context.
func (fl *fleetRun) repairSlot(sj, deadMgr int, now uint64) {
	en := fl.hosts[sj].cur
	var peers []int
	for _, pm := range fl.peers[sj] {
		if pm != deadMgr {
			peers = append(peers, pm)
		}
	}
	fl.peers[sj] = peers
	en.peers = peers
	if st := en.mgr; st != nil {
		delete(st.pendingHelp, deadMgr)
		st.helpOut = 0
		kept := st.parked[:0]
		for _, s := range st.parked {
			if !fl.dead[s] {
				kept = append(kept, s)
			}
		}
		st.parked = kept
		for _, t := range sortedKeys(st.outstanding) {
			if !fl.dead[t] {
				continue
			}
			ow := st.outstanding[t]
			delete(st.outstanding, t)
			qe := st.entry(ow.pc)
			qe.inflight = false
			st.push(ow.pc, ow.depth)
		}
	}
	mgr := fl.slots[sj].manager
	fl.m.Inbox(mgr).Send(mgr, slotRepair{}, now)
}

// deadlinesAt cancels every guest whose deadline is this cycle and is
// not yet terminal. A running guest is cancelled mid-run: its exec
// tile breaks at the next dispatch boundary and the slot hands off to
// the next queued guest through the ordinary vmSwitch handshake.
func (fl *fleetRun) deadlinesAt(now uint64) {
	for gi := range fl.imgs {
		if fl.deadline[gi] != now {
			continue
		}
		switch fl.phase[gi] {
		case phaseRunning:
			e := fl.engines[gi]
			e.cancelled = true
			fl.phase[gi] = phaseDeadline
			fl.errs[gi] = &DeadlineError{Guest: gi, Deadline: now, Attempts: fl.attempts[gi], Running: true}
			fl.fleet.GuestsDeadlineExceeded++
			fl.remaining--
			fl.cfg.Tracer.Instant(fl.slots[fl.slotOf[gi]].exec, "deadline", now,
				"guest", uint64(gi), "deadline", now)
		case phaseQueued:
			kept := fl.queue[:0]
			for _, pg := range fl.queue {
				if pg.gi != gi {
					kept = append(kept, pg)
				}
			}
			fl.queue = kept
			fl.phase[gi] = phaseDeadline
			fl.errs[gi] = &DeadlineError{Guest: gi, Deadline: now, Attempts: fl.attempts[gi], Running: false}
			fl.fleet.GuestsDeadlineExceeded++
			fl.remaining--
			fl.cfg.Tracer.Instant(fl.slots[0].exec, "deadline", now, "guest", uint64(gi), "deadline", now)
		}
	}
}
