package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/raw"
)

// Fleet fault-tolerance battery (ISSUE: slot quarantine, guest retry
// with backoff, per-guest deadlines). The two load-bearing properties:
// the policy layer is provably inert when no fault plan and no
// deadline is configured (bit-identity with the policy-free
// scheduler), and under a fail-stop plan every guest reaches a
// deterministic terminal state — finished with its solo fingerprint,
// aborted, or deadline-exceeded — with byte-identical results and
// trace output across repeated runs.

func TestFleetSlotLayoutMatchesCarve(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {4, 2}, {6, 4}, {16, 16}} {
		p := raw.DefaultParams()
		p.Width, p.Height = dims[0], dims[1]
		slots, err := carveFabric(p, 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		layout, err := FleetSlotLayout(p)
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		if len(layout) != len(slots) {
			t.Fatalf("%dx%d: layout has %d slots, carve has %d", dims[0], dims[1], len(layout), len(slots))
		}
		for si, pl := range slots {
			want := FleetSlot{
				Sys: pl.sys, L15: pl.l15, Slaves: pl.slaves,
				Manager: pl.manager, Exec: pl.exec, MMU: pl.mmu, Banks: pl.banks,
			}
			if !reflect.DeepEqual(layout[si], want) {
				t.Errorf("%dx%d slot %d: layout %+v, carve %+v", dims[0], dims[1], si, layout[si], want)
			}
		}
	}
}

// TestFleetPolicyKnobsAreInertWithoutFaults pins the compatibility
// contract: retry/backoff knobs change nothing on a fault-free,
// deadline-free run — the whole FleetResult is byte-identical to a
// default-policy run, queue handoffs included.
func TestFleetPolicyKnobsAreInertWithoutFaults(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip")
	base, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Lend: true})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{
		Lend: true, MaxAttempts: 7, RetryBackoff: 123_456, RetrySeed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, tuned) {
		t.Errorf("retry knobs perturbed a fault-free run:\nbase  %+v\ntuned %+v", base, tuned)
	}
}

// TestFleetSupervisorIsTimingNeutral: an unreachable deadline spawns
// the supervisor process but fires no event before the run ends; every
// guest's Result, the makespan, and the busy vector must match the
// supervisor-free run exactly (the supervisor only sleeps — it injects
// no messages and charges no tile time).
func TestFleetSupervisorIsTimingNeutral(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf", "164.gzip")
	base, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Lend: true})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{Lend: true, Deadline: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Guests, dl.Guests) ||
		base.Makespan != dl.Makespan ||
		!reflect.DeepEqual(base.TileBusy, dl.TileBusy) {
		t.Errorf("supervisor perturbed a run whose deadline never fired")
	}
	if dl.Fleet.DeadlineTotal != 3 || dl.Fleet.DeadlineMet != 3 {
		t.Errorf("deadline accounting = %d/%d, want 3/3", dl.Fleet.DeadlineMet, dl.Fleet.DeadlineTotal)
	}
	if got := dl.Fleet.SLOAttainment(); got != 1 {
		t.Errorf("SLOAttainment = %v, want 1", got)
	}
}

// TestFleetChaosQuarantineRetry is the acceptance scenario: an
// oversubscribed 8×8 fleet (12 guests, 8 slots) under three fail-stop
// faults hitting a manager, a slave, and an exec tile. The run must
// complete with every guest terminal — finished with its solo
// fingerprint or aborted with a structured error — and two runs at the
// same seed must produce byte-identical FleetResults and trace output.
func TestFleetChaosQuarantineRetry(t *testing.T) {
	imgs := fleetImgs(t,
		"164.gzip", "181.mcf", "164.gzip", "181.mcf",
		"164.gzip", "181.mcf", "164.gzip", "181.mcf",
		"164.gzip", "181.mcf", "164.gzip", "164.gzip")
	p := raw.DefaultParams()
	p.Width, p.Height = 8, 8
	layout, err := FleetSlotLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Seed: 7, Fails: []fault.TileFail{
		{Tile: layout[1].Manager, Cycle: 500_000},
		{Tile: layout[3].Slaves[0], Cycle: 700_000},
		{Tile: layout[5].Exec, Cycle: 2_500_000},
	}}
	run := func() (*FleetResult, []byte) {
		cfg := fleetCfg(8, 8)
		cfg.Fault = plan
		cfg.Tracer = NewTracerFor(cfg.Params, 50_000)
		fr, err := RunFleet(imgs, cfg, FleetConfig{Lend: true, RetrySeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Tracer.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return fr, buf.Bytes()
	}
	a, atrace := run()
	b, btrace := run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("chaos run not deterministic across repeats")
	}
	if !bytes.Equal(atrace, btrace) {
		t.Errorf("trace output differs across repeats (%d vs %d bytes)", len(atrace), len(btrace))
	}

	solo := soloFingerprints(t, imgs)
	var finished, aborted int
	for gi, g := range a.Guests {
		switch g.Status {
		case GuestFinished:
			finished++
			if g.Result == nil {
				t.Fatalf("guest %d finished without a Result", gi)
			}
			if got, want := fingerprint(g.Result), solo[imgs[gi]]; got != want {
				t.Errorf("guest %d (attempt %d) fingerprint diverged from solo run\n got %+v\nwant %+v",
					gi, g.Attempts, got, want)
			}
			if g.Err != nil {
				t.Errorf("finished guest %d carries error %v", gi, g.Err)
			}
		case GuestAborted:
			aborted++
			var ae *AbortError
			if !errors.As(g.Err, &ae) {
				t.Errorf("aborted guest %d: Err = %v, want *AbortError", gi, g.Err)
			}
			if g.Result != nil {
				t.Errorf("aborted guest %d has a Result", gi)
			}
		default:
			t.Errorf("guest %d ended %v — not a terminal state for this plan", gi, g.Status)
		}
	}
	if got := a.Fleet.SlotsQuarantined; got != 3 {
		t.Errorf("SlotsQuarantined = %d, want 3", got)
	}
	if a.Fleet.GuestsFinished != uint64(finished) || a.Fleet.GuestsAborted != uint64(aborted) {
		t.Errorf("fleet counters (%d finished, %d aborted) disagree with statuses (%d, %d)",
			a.Fleet.GuestsFinished, a.Fleet.GuestsAborted, finished, aborted)
	}
	if a.Fleet.GuestsRetried == 0 {
		t.Error("three quarantines produced no retries")
	}
	if g := a.Fleet.Goodput(a.Makespan); g <= 0 {
		t.Errorf("goodput = %v, want > 0", g)
	}
}

// TestFleetDeadlineCancelsGuest: a guest that cannot finish by its
// deadline is cancelled mid-run through the vmSwitch machinery and
// reported with a structured DeadlineError; its sibling finishes
// normally and the SLO counters record the miss.
func TestFleetDeadlineCancelsGuest(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf")
	fr, err := RunFleet(imgs, fleetCfg(4, 4), FleetConfig{
		Lend:      true,
		Deadlines: []uint64{0, 2_000_000}, // mcf needs ~3.9M cycles
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := fr.Guests[0]; g.Status != GuestFinished || g.Result == nil {
		t.Errorf("guest 0 = %v (Result nil=%v), want finished", g.Status, g.Result == nil)
	}
	g := fr.Guests[1]
	if g.Status != GuestDeadlineExceeded || g.Result != nil {
		t.Fatalf("guest 1 = %v (Result nil=%v), want deadline-exceeded with nil Result",
			g.Status, g.Result == nil)
	}
	var de *DeadlineError
	if !errors.As(g.Err, &de) {
		t.Fatalf("guest 1 Err = %v, want *DeadlineError", g.Err)
	}
	if de.Guest != 1 || de.Deadline != 2_000_000 || !de.Running || de.Attempts != 1 {
		t.Errorf("DeadlineError = %+v, want guest 1, deadline 2000000, running, 1 attempt", de)
	}
	f := fr.Fleet
	if f.GuestsDeadlineExceeded != 1 || f.DeadlineTotal != 1 || f.DeadlineMet != 0 {
		t.Errorf("deadline counters = %+v, want 1 exceeded of 1 total, 0 met", f)
	}
	if got := f.SLOAttainment(); got != 0 {
		t.Errorf("SLOAttainment = %v, want 0", got)
	}
}

// TestFleetRetryWithRollback: with rollback recovery on, a quarantined
// guest's retry resumes from its latest checkpoint (not the image) and
// still converges to the solo fingerprint.
func TestFleetRetryWithRollback(t *testing.T) {
	imgs := fleetImgs(t, "181.mcf", "164.gzip")
	layout, err := FleetSlotLayout(raw.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *FleetResult {
		cfg := fleetCfg(4, 4)
		cfg.Recovery = RecoverRollback
		cfg.Fault = &fault.Plan{Seed: 3, Fails: []fault.TileFail{
			{Tile: layout[0].Slaves[1], Cycle: 1_000_000},
		}}
		fr, err := RunFleet(imgs, cfg, FleetConfig{Lend: true, RetrySeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a := run()
	if !reflect.DeepEqual(a, run()) {
		t.Error("rollback-retry run not deterministic")
	}
	g := a.Guests[0]
	if g.Status != GuestFinished || g.Result == nil {
		t.Fatalf("guest 0 = %v, want finished after retry", g.Status)
	}
	if g.Attempts != 2 {
		t.Errorf("guest 0 ran %d attempts, want 2", g.Attempts)
	}
	if g.Result.M.Rollbacks != 1 {
		t.Errorf("guest 0 recorded %d rollbacks, want 1 (retry must restore, not restart)", g.Result.M.Rollbacks)
	}
	solo := soloFingerprints(t, imgs)
	if got, want := fingerprint(g.Result), solo[imgs[0]]; got != want {
		t.Errorf("restored guest diverged from solo run\n got %+v\nwant %+v", got, want)
	}
	if a.Fleet.GuestsRetried != 1 || a.Fleet.SlotsQuarantined != 1 {
		t.Errorf("fleet counters %+v, want 1 retry, 1 quarantine", a.Fleet)
	}
}

// TestFleetMaxAttemptsAbort: on a one-slot fabric whose only slot dies,
// the running guest exhausts MaxAttempts=1 and the queued guest is
// aborted with NoSlots — and the simulation still terminates cleanly.
func TestFleetMaxAttemptsAbort(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "164.gzip")
	layout, err := FleetSlotLayout(func() raw.Params {
		p := raw.DefaultParams()
		p.Width, p.Height = 4, 2
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(4, 2)
	cfg.Fault = &fault.Plan{Seed: 5, Fails: []fault.TileFail{
		{Tile: layout[0].Exec, Cycle: 300_000},
	}}
	fr, err := RunFleet(imgs, cfg, FleetConfig{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	g0 := fr.Guests[0]
	var ae *AbortError
	if g0.Status != GuestAborted || !errors.As(g0.Err, &ae) {
		t.Fatalf("guest 0 = %v (%v), want aborted with *AbortError", g0.Status, g0.Err)
	}
	if ae.NoSlots || ae.Attempts != 1 {
		t.Errorf("guest 0 AbortError = %+v, want attempts-exhausted after 1", ae)
	}
	g1 := fr.Guests[1]
	if g1.Status != GuestAborted || !errors.As(g1.Err, &ae) {
		t.Fatalf("guest 1 = %v (%v), want aborted with *AbortError", g1.Status, g1.Err)
	}
	if !ae.NoSlots || g1.Attempts != 0 {
		t.Errorf("guest 1 AbortError = %+v (attempts %d), want no-slots abort of a never-admitted guest",
			ae, g1.Attempts)
	}
	if fr.Fleet.GuestsAborted != 2 || fr.Fleet.SlotsQuarantined != 1 || fr.Fleet.GuestsFinished != 0 {
		t.Errorf("fleet counters %+v, want 2 aborts, 1 quarantine, 0 finished", fr.Fleet)
	}
}

// FuzzQuarantineRecarve throws random fabrics and quarantine masks at
// the carve/excision helpers: surviving slots must never overlap or
// leave the fabric, and a deliberately corrupted carve must be
// reported as an error, never a panic.
func FuzzQuarantineRecarve(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint16(0b101), int16(20), uint32(1000))
	f.Add(uint8(4), uint8(4), uint16(3), int16(-1), uint32(0))
	f.Add(uint8(16), uint8(16), uint16(0xffff), int16(255), uint32(1<<20))
	f.Add(uint8(2), uint8(4), uint16(1), int16(7), uint32(500))
	f.Fuzz(func(t *testing.T, w, h uint8, mask uint16, failTile int16, failCycle uint32) {
		p := raw.DefaultParams()
		p.Width, p.Height = int(w), int(h)
		slots, err := carveFabric(p, 0)
		if err != nil {
			return // fabric fits no slot; nothing to quarantine
		}
		q := map[int]bool{}
		for si := range slots {
			if si < 16 && mask&(1<<si) != 0 {
				q[si] = true
			}
		}
		survivors, err := survivorsAfter(p, slots, q)
		if err != nil {
			t.Fatalf("%dx%d mask %#x: healthy carve rejected: %v", w, h, mask, err)
		}
		seen := map[int]bool{}
		for _, si := range survivors {
			if q[si] {
				t.Fatalf("quarantined slot %d survived", si)
			}
			for _, tile := range slots[si].tiles() {
				if tile < 0 || tile >= p.Tiles() {
					t.Fatalf("slot %d tile %d outside %dx%d fabric", si, tile, w, h)
				}
				if seen[tile] {
					t.Fatalf("tile %d claimed by two surviving slots", tile)
				}
				seen[tile] = true
			}
		}

		// Arbitrary fail clauses must be validated, never panic on.
		plan := &fault.Plan{Seed: 1, Fails: []fault.TileFail{
			{Tile: int(failTile), Cycle: uint64(failCycle)},
		}}
		_ = validateFleetFaultPlan(plan, slots, p)

		// A corrupted carve (duplicated or out-of-bounds slot) must be
		// reported as an error.
		if len(slots) > 1 {
			bad := append([]placement(nil), slots...)
			bad[1] = bad[0]
			if _, err := survivorsAfter(p, bad, nil); err == nil {
				t.Fatal("overlapping slots not detected")
			}
			bad[1] = slots[1]
			bad[1].exec = p.Tiles() + int(mask)
			if _, err := survivorsAfter(p, bad, nil); err == nil {
				t.Fatal("out-of-bounds slot not detected")
			}
		}
	})
}
