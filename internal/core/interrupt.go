package core

import (
	"errors"
	"fmt"
	"sync"

	"tilevm/internal/sim"
)

// Host-side robustness plumbing for callers that keep a simulation on
// a leash — the tilevmd service daemon and the tilevm -timeout flag.
// Everything in this file is wall-clock-world machinery: it never adds
// virtual cycles, and a run that is never interrupted and never
// panics is bit-identical with or without it.

// InterruptHandle lets a host goroutine stop a running (or
// about-to-run) simulation from outside virtual time. Create one,
// place it in Config.Interrupt, and call Interrupt from any goroutine
// — a wall-clock timer, a cancellation RPC, a signal handler. The run
// then returns an error satisfying Interrupted. Calling Interrupt
// before the run starts is safe: the run is cancelled at its first
// event. The handle is single-use, like the run it guards.
type InterruptHandle struct {
	mu      sync.Mutex
	sim     *sim.Simulator
	pending bool
}

// NewInterruptHandle returns an unarmed handle.
func NewInterruptHandle() *InterruptHandle { return &InterruptHandle{} }

// Interrupt requests the bound simulation stop. Idempotent and safe
// from any goroutine at any time.
func (h *InterruptHandle) Interrupt() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.pending = true
	s := h.sim
	h.mu.Unlock()
	if s != nil {
		s.Interrupt()
	}
}

// bind attaches the handle to the simulator about to run, delivering
// any interrupt that raced ahead of the run's start. Rollback
// recovery rebuilds the machine between attempts, so bind may be
// called more than once; the latest simulator wins.
func (h *InterruptHandle) bind(s *sim.Simulator) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sim = s
	pending := h.pending
	h.mu.Unlock()
	if pending {
		s.Interrupt()
	}
}

// Interrupted reports whether err (anywhere in its chain) is the
// structured host-interrupt error a cancelled run returns.
func Interrupted(err error) bool {
	var ierr *sim.InterruptedError
	return errors.As(err, &ierr)
}

// InternalError is the structured form of a panic inside a simulation
// run: the caller-facing promise is that a simulator bug (or a
// deliberately injected one) surfaces as this error — with the victim
// guest attributed and the panicking stack preserved — never as a
// crash of the calling process. The service daemon maps it onto a
// failed job; batch attribution (which service batch was running) is
// the caller's to add.
type InternalError struct {
	// Guest is the index (into the RunFleet imgs slice, or 0 for a
	// single-guest Run) of the guest whose slot hosted the panicking
	// tile kernel; -1 when the panic happened outside any slot (the
	// fleet supervisor, host-side scheduling code).
	Guest int
	// Slot is the VM slot whose tile panicked (-1 when unattributable
	// or not a fleet run).
	Slot int
	// Proc names the simulation process (tile kernel) that panicked;
	// empty for a host-side panic caught at the RunFleet boundary.
	Proc string
	// Cycle is the virtual time of the panic.
	Cycle uint64
	// Value is the stringified panic value.
	Value string
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *InternalError) Error() string {
	who := e.Proc
	if who == "" {
		who = "host"
	}
	if e.Guest >= 0 {
		return fmt.Sprintf("core: internal error in %s at cycle %d (guest %d, slot %d): %s",
			who, e.Cycle, e.Guest, e.Slot, e.Value)
	}
	return fmt.Sprintf("core: internal error in %s at cycle %d: %s", who, e.Cycle, e.Value)
}

// internalFromPanic wraps a panic recovered at a host-side boundary.
func internalFromPanic(r any, stack []byte) *InternalError {
	return &InternalError{
		Guest: -1,
		Slot:  -1,
		Value: fmt.Sprint(r),
		Stack: string(stack),
	}
}

// internalFromSim lifts a sim.PanicError into an InternalError with
// no guest attribution (single-machine runs attribute trivially; the
// fleet attributes by slot).
func internalFromSim(perr *sim.PanicError) *InternalError {
	return &InternalError{
		Guest: -1,
		Slot:  -1,
		Proc:  perr.Proc,
		Cycle: perr.Now,
		Value: perr.Value,
		Stack: perr.Stack,
	}
}
