package core

import (
	"tilevm/internal/checkpoint"
	"tilevm/internal/codecache"
	"tilevm/internal/raw"
	"tilevm/internal/sim"
	"tilevm/internal/translate"
)

// maxSpecDepth is the deepest speculation bucket; the return-predictor
// queue sits one level below it.
const maxSpecDepth = 8

// qEntry tracks one guest PC through the translation pipeline.
type qEntry struct {
	depth    int
	queued   bool
	inflight bool
	done     bool
	bad      bool
	// promote marks a done tier-0 entry re-queued for optimizing
	// re-translation (tier-up); workFor forces tier-1 for it, and
	// handleTransDone installs the result over the template version.
	promote bool
	// tier records which translation tier produced the stored block.
	tier uint8
}

// waiter is a demand requester blocked on a translation.
type waiter struct {
	replyTo  int
	fillBank int
	seq      uint64
}

// outWork is a dispatched translation the manager is watching in
// fault-recovery mode: if no transDone arrives by the deadline the
// work is re-queued (the work or its result was lost, or the slave
// died).
type outWork struct {
	pc       uint32
	depth    int
	deadline uint64
}

// managerState is the manager tile's bookkeeping: the L2 code cache
// map, the prioritized speculative-translation queues, parked slaves,
// and the dynamic reconfiguration controller.
type managerState struct {
	e  *engine
	c  *raw.TileCtx
	l2 *codecache.L2

	entries map[uint32]*qEntry
	buckets [maxSpecDepth + 2][]uint32 // [0] demand … [maxSpecDepth+1] return-predictor
	waiters map[uint32][]waiter
	parked  []int // idle slave tiles
	roles   map[int]roleKind

	specStored map[uint32]bool // speculatively translated, not yet demanded

	// Morphing state.
	transHeavy bool
	lastMorph  uint64

	// Cross-VM lending state (fleet mode). helpOut counts unanswered
	// helpReq broadcasts (a lendSlave clears it, a helpDeny decrements
	// it); pendingHelp records each starved peer's advertised queue
	// depth until this manager has a slave to spare.
	helpOut     int
	pendingHelp map[int]int

	// Fault-recovery state (robust mode only). banksNow is the
	// authoritative current data-bank interleave; lastBeat and
	// outstanding drive the failure detectors. rebankGen/rebankPend
	// implement the acknowledged remap handshake with the MMU tile.
	banksNow       []int
	lastBeat       map[int]uint64
	outstanding    map[int]outWork
	rebankGen      uint64
	rebankPend     bool
	rebankDeadline uint64
	detectAt       uint64 // bank-excision detection time, for recovery latency
}

// managerKernel runs the manager/L2-code-cache tile.
func (e *engine) managerKernel(c *raw.TileCtx) {
	P := e.cfg.Params
	st := &managerState{
		e:           e,
		c:           c,
		l2:          codecache.NewL2(P.L2CodeBytes),
		entries:     map[uint32]*qEntry{},
		waiters:     map[uint32][]waiter{},
		roles:       map[int]roleKind{},
		specStored:  map[uint32]bool{},
		pendingHelp: map[int]int{},
	}
	for _, t := range e.pl.slaves {
		st.roles[t] = roleSlave
	}
	for _, t := range e.pl.banks {
		st.roles[t] = roleBank
	}
	// Morphing starts in the translation-heavy configuration (§2.3).
	st.transHeavy = e.cfg.Morph
	if e.robust {
		st.banksNow = append([]int(nil), e.pl.banks...)
		st.lastBeat = map[int]uint64{}
		st.outstanding = map[int]outWork{}
		// Seed liveness at the current time, not zero: after a rollback
		// the clock resumes mid-run (sim.SetStart), and a zero seed would
		// read as every worker having been silent since cycle 0 — the
		// detector would excise the whole machine on its first tick.
		for _, t := range e.pl.slaves {
			st.lastBeat[t] = c.Now()
		}
		for _, t := range e.pl.banks {
			st.lastBeat[t] = c.Now()
		}
	}
	if e.trackWork && st.outstanding == nil {
		// Fleet fault mode: track dispatched work host-side (no network
		// traffic) so the supervisor can re-queue translations stranded
		// on a quarantined slave. Deadlines are unused — non-robust
		// managers never run the watchdog tick.
		st.outstanding = map[int]outWork{}
	}
	if e.restore != nil {
		e.restoreManager(st)
	}
	if prev := e.mgr; prev != nil && e.elastic != nil && e.restore == nil {
		// Same-engine re-entry: an elastic donation drained this manager
		// while its slot idles between guests. Carry the retired epoch's
		// L2 code cache, pipeline entries, and speculation ledger over so
		// the collected stats are exactly what the drain left behind.
		st.l2 = prev.l2
		st.entries = prev.entries
		st.specStored = prev.specStored
	}
	e.mgr = st

	for {
		var msg sim.Msg
		if e.robust {
			// Bounded wait so the failure detectors run even when the
			// fabric goes quiet (a dead tile produces silence, not
			// messages).
			st.onTick()
			var ok bool
			msg, ok = c.RecvDeadline(c.Now() + P.HeartbeatPeriod)
			if !ok {
				continue
			}
		} else {
			msg = c.Recv()
		}
		switch m := msg.Payload.(type) {
		case codeReq:
			st.handleCodeReq(m)
		case workReq:
			st.handleWorkReq(msg.From)
		case transDone:
			st.handleTransDone(m, msg.From)
		case promoteReq:
			st.handlePromote(m)
		case heartbeat:
			st.handleBeat(msg.From)
		case rebankAck:
			st.handleRebankAck(m)
		case smcInval:
			st.handleSMCInval(m, msg.From)
		case lendSlave:
			// A borrowed (or returning) slave joins the parked pool. A
			// cancelled manager (quarantined slot) sends it home instead:
			// parking it here would strand a healthy tile at a slot that
			// will never dispatch again.
			st.helpOut = 0
			if e.cancelled {
				if home, ok := e.homeMgr[m.Slave]; ok && home != e.pl.manager {
					st.c.Send(home, lendReturn{Slave: m.Slave}, wordsCtl)
				}
			} else {
				st.park(m.Slave)
				st.dispatch()
			}
		case lendReturn:
			st.park(m.Slave)
			st.dispatch()
		case slotRepair:
			// Fleet supervisor repaired this manager's host-side state
			// after a quarantine; re-run dispatch so re-queued work pairs
			// with parked slaves.
			st.dispatch()
		case reclaim:
			st.handleReclaim(m)
		case helpReq:
			st.handleHelp(m, msg.From)
		case helpDeny:
			if st.helpOut > 0 {
				st.helpOut--
			}
		case vmSwitch:
			// Fleet slot handoff: retire this epoch and hand the tile
			// back to the slot wrapper, which restarts the kernel bound
			// to the next guest's engine.
			st.drainForSwitch()
			st.c.Send(msg.From, switchAck{}, wordsCtl)
			return
		}
	}
}

// onTick runs the manager's failure detectors (robust mode only):
// heartbeat timeouts excise dead workers, work watchdogs re-queue
// translations whose results never came back, and an unacknowledged
// rebank is re-sent. All scans iterate tiles in ascending id order so
// recovery decisions are deterministic.
func (st *managerState) onTick() {
	P := st.e.cfg.Params
	now := st.c.Now()
	for t := 0; t < P.Tiles(); t++ {
		role, isWorker := st.roles[t]
		if !isWorker || role == roleDead {
			continue
		}
		if now-st.lastBeat[t] > P.HeartbeatTimeout {
			st.excise(t)
		}
	}
	for t := 0; t < P.Tiles(); t++ {
		ow, ok := st.outstanding[t]
		if !ok || now < ow.deadline {
			continue
		}
		// The work unit or its result was lost (or the slave is slow or
		// dying): hand the translation to someone else. A late duplicate
		// transDone is harmless — handleTransDone is idempotent.
		st.e.stats.Timeouts++
		st.e.stats.Retries++
		delete(st.outstanding, t)
		en := st.entry(ow.pc)
		en.inflight = false
		st.push(ow.pc, ow.depth)
	}
	st.dispatch()
	if st.rebankPend && now >= st.rebankDeadline {
		st.e.stats.Timeouts++
		st.e.stats.Retries++
		st.sendRebank()
	}
}

// handleBeat records a worker's liveness. A heartbeat from a slave the
// manager believes is busy-with-nothing (not parked, no outstanding
// work) doubles as an implicit work request: it means the slave's
// workReq was lost in flight and it is idle waiting for work that will
// never come.
func (st *managerState) handleBeat(from int) {
	role, isWorker := st.roles[from]
	if !isWorker || role == roleDead {
		return
	}
	st.lastBeat[from] = st.c.Now()
	if role != roleSlave {
		return
	}
	if _, busy := st.outstanding[from]; busy {
		return
	}
	for _, s := range st.parked {
		if s == from {
			return
		}
	}
	st.handleWorkReq(from)
}

// handleRebankAck completes the manager↔MMU remap handshake.
func (st *managerState) handleRebankAck(m rebankAck) {
	if m.Gen != st.rebankGen {
		return // stale ack for a superseded rebank
	}
	st.rebankPend = false
	if st.detectAt > 0 {
		st.e.stats.RecoveryCycles += st.c.Now() - st.detectAt
		st.detectAt = 0
	}
}

// excise removes a dead tile from the virtual architecture — the
// morph-around-failure path. A dead slave's in-flight translation is
// re-queued; a dead bank's address fraction is redistributed over the
// survivors: its dirty lines are accounted as lost writebacks, the
// surviving banks are flushed (the interleave function changed, the
// same flush a morph performs), and the MMU is re-pointed at the new
// bank set via the acknowledged rebank handshake.
func (st *managerState) excise(t int) {
	P := st.e.cfg.Params
	role := st.roles[t]
	if st.e.rollback != nil {
		return // attempt already aborting; further excisions are moot
	}
	if role == roleBank && st.e.cfg.Recovery == RecoverRollback {
		if bank := st.e.bankOf[t]; bank != nil && bank.Cache.DirtyLines() > 0 {
			// Excising this bank in place would lose its dirty lines'
			// writebacks. Under rollback recovery we abort the attempt
			// instead: Run restores the last checkpoint, removes the tile
			// from the placement, and re-executes — losslessly.
			st.e.rollback = &rollbackReq{tile: t, detect: st.c.Now()}
			st.e.jadd(checkpoint.EvExcise, st.c.Now(), uint64(t), 1)
			st.e.trc().Instant(st.c.Tile, "excise", st.c.Now(), "tile", uint64(t), "rollback", 1)
			st.roles[t] = roleDead
			st.c.Stop()
			return
		}
	}
	st.e.jadd(checkpoint.EvExcise, st.c.Now(), uint64(t), 0)
	st.e.trc().Instant(st.c.Tile, "excise", st.c.Now(), "tile", uint64(t), "rollback", 0)
	st.roles[t] = roleDead
	st.e.stats.RoleRemaps++
	st.c.Tick(P.RecoveryOcc)

	kept := st.parked[:0]
	for _, s := range st.parked {
		if s != t {
			kept = append(kept, s)
		}
	}
	st.parked = kept

	if ow, ok := st.outstanding[t]; ok {
		delete(st.outstanding, t)
		en := st.entry(ow.pc)
		en.inflight = false
		st.push(ow.pc, ow.depth)
	}
	if role != roleBank {
		st.dispatch()
		return
	}

	if bank := st.e.bankOf[t]; bank != nil {
		st.e.stats.WritebacksLost += uint64(bank.Cache.DirtyLines())
	}
	var live []int
	for _, b := range st.banksNow {
		if b != t {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		// No surviving bank to absorb the address space; leave routing
		// as-is and let the simulation watchdog report the loss.
		return
	}
	st.banksNow = live
	for _, b := range st.banksNow {
		st.c.Send(b, reconfig{Role: roleBank}, wordsCtl)
	}
	st.detectAt = st.c.Now()
	st.sendRebank()
}

// sendRebank (re-)issues the current bank set to the MMU under a fresh
// generation and arms the resend watchdog.
func (st *managerState) sendRebank() {
	st.rebankGen++
	banks := append([]int(nil), st.banksNow...)
	st.c.Send(st.e.pl.mmu, rebank{Banks: banks, Gen: st.rebankGen}, wordsCtl)
	st.rebankPend = true
	st.rebankDeadline = st.c.Now() + st.e.cfg.Params.NetWatchdog
}

// handleHelp services a peer's request for a slave: immediately if one
// is parked and the local queues are drained, otherwise as soon as
// that becomes true (dispatch consults pendingHelp, serving the
// most-backed-up peer first).
func (st *managerState) handleHelp(m helpReq, from int) {
	if st.e.fleetDead != nil && !st.isPeer(from) {
		// The requester's slot was quarantined after it broadcast; a
		// grant would strand the slave at a manager that will never
		// dispatch to it. (fleetDead is nil outside fleet-fault mode, so
		// this guard never runs — and never perturbs — fault-free runs.)
		return
	}
	if len(st.parked) > 0 && st.queuedLen() == 0 {
		slave := st.parked[len(st.parked)-1]
		st.parked = st.parked[:len(st.parked)-1]
		st.c.Send(from, lendSlave{Slave: slave}, wordsCtl)
		return
	}
	st.pendingHelp[from] = m.QLen
}

// park adds a slave to the idle pool, once. Duplicate registrations
// are possible in fleet mode: a slave parked at a foreign manager when
// its home slot switches guests restarts and re-registers with the new
// manager, while the foreign manager may still lend or return the same
// tile.
func (st *managerState) park(slave int) {
	if st.e.fleetDead != nil && st.e.fleetDead[slave] {
		return // fail-stopped tile; a late lend/return must not revive it
	}
	for _, s := range st.parked {
		if s == slave {
			return
		}
	}
	st.parked = append(st.parked, slave)
}

// isPeer reports whether tile is one of this engine's current fleet
// peers (quarantined slots are pruned from the list by the supervisor).
func (st *managerState) isPeer(tile int) bool {
	for _, p := range st.e.peers {
		if p == tile {
			return true
		}
	}
	return false
}

// neediestPeer picks the deferred help request with the deepest
// advertised queue, iterating the static peer list so ties break
// deterministically by peer order.
func (st *managerState) neediestPeer() int {
	best, bestQ := -1, -1
	for _, p := range st.e.peers {
		if q, ok := st.pendingHelp[p]; ok && q > bestQ {
			best, bestQ = p, q
		}
	}
	return best
}

// drainForSwitch retires this manager epoch ahead of a fleet slot
// handoff: deferred help requests are denied (releasing the
// requesters' broadcast latches), borrowed slaves are sent home, and
// the manager blocks until every in-flight translation has come back
// (results are discarded — the guest that wanted them is gone). The
// slot's own slaves are simply dropped from the parked pool: their
// kernels restart on their own vmSwitch and re-register with the next
// manager. All iteration is over slices or the static peer list, so
// message order — and therefore the simulation — stays deterministic.
func (st *managerState) drainForSwitch() {
	for _, p := range st.e.peers {
		if _, ok := st.pendingHelp[p]; ok {
			delete(st.pendingHelp, p)
			st.c.Send(p, helpDeny{}, wordsCtl)
		}
	}
	for _, s := range st.parked {
		if st.e.elastic != nil {
			// Elastic mode: a parked foreign tile was donated in, never
			// lent. Release it now if its owner already wants it back;
			// otherwise just drop it — the next handoff's phase-2 sweep
			// (which includes donated-in tiles) wakes it to re-register
			// with the new epoch's manager.
			st.releaseReclaimed(s)
			continue
		}
		if home, ok := st.e.homeMgr[s]; ok && home != st.e.pl.manager {
			st.c.Send(home, lendReturn{Slave: s}, wordsCtl)
		}
	}
	st.parked = nil
	inflight := 0
	for _, en := range st.entries {
		if en.inflight {
			inflight++
		}
	}
	for inflight > 0 {
		msg := st.c.Recv()
		switch m := msg.Payload.(type) {
		case transDone:
			en := st.entry(m.PC)
			if en.inflight {
				en.inflight = false
				inflight--
				st.e.stats.Translations++
			}
		case lendSlave:
			// A grant answering this epoch's broadcast; pass it home.
			if home, ok := st.e.homeMgr[m.Slave]; ok && home != st.e.pl.manager {
				st.c.Send(home, lendReturn{Slave: m.Slave}, wordsCtl)
			}
		case helpReq:
			st.c.Send(msg.From, helpDeny{}, wordsCtl)
		case workReq:
			// Own slave reporting idle; it re-registers after restart. A
			// donated-in tile is released here if its owner wants it back
			// (no-op outside elastic mode).
			st.releaseReclaimed(msg.From)
		}
	}
}

// handleSMCInval drops translations overlapping an overwritten byte
// range (self-modifying code) and resets their pipeline state so the
// new bytes are retranslated on demand.
func (st *managerState) handleSMCInval(m smcInval, from int) {
	P := st.e.cfg.Params
	st.c.Tick(P.L2CLookupOcc) // page-map walk in the manager's tables
	st.e.smcGen++
	for pg := m.Lo >> 12; pg <= (m.Hi-1)>>12; pg++ {
		st.e.pageInval[pg] = st.e.smcGen
	}
	removed := st.l2.RemoveOverlapping(m.Lo&^0xfff, (m.Hi+0xfff)&^0xfff)
	st.c.Tick(uint64(len(removed)) * P.L2CStoreOcc / 4) // directory updates
	for _, pc := range removed {
		delete(st.entries, pc)
		delete(st.specStored, pc)
	}
	st.c.Send(from, smcAck{}, wordsCtl)
}

func (st *managerState) entry(pc uint32) *qEntry {
	en, ok := st.entries[pc]
	if !ok {
		en = &qEntry{}
		st.entries[pc] = en
	}
	return en
}

// handleCodeReq services a demand request from the execution tile (or
// an L1.5 bank forwarding one).
func (st *managerState) handleCodeReq(m codeReq) {
	P := st.e.cfg.Params
	t0 := st.c.Now()
	st.c.Tick(P.L2CLookupOcc)
	if res, ok := st.l2.Lookup(m.PC); ok {
		words := res.CodeBytes / 4
		st.c.Tick(uint64(words) * P.L2CWordOcc) // DRAM read traffic
		st.e.trc().Span(st.c.Tile, "l2c_lookup", t0, st.c.Now(), "pc", uint64(m.PC), "hit", 1)
		st.respond(m, res)
		delete(st.specStored, m.PC)
		return
	}
	// Miss: the execution tile stalls until a slave translates it.
	st.e.stats.DemandMisses++
	st.e.trc().Count(tsDemandMisses, t0, 1)
	st.e.trc().Span(st.c.Tile, "l2c_lookup", t0, st.c.Now(), "pc", uint64(m.PC), "hit", 0)
	en := st.entry(m.PC)
	if en.bad {
		st.c.Send(m.ReplyTo, codeResp{PC: m.PC, Res: nil}, wordsCtl)
		return
	}
	st.waiters[m.PC] = append(st.waiters[m.PC], waiter{m.ReplyTo, m.FillBank, m.Seq})
	if !en.inflight {
		st.push(m.PC, 0)
	}
	st.dispatch()
	st.morphEval()
	st.traceQueueDepth()
}

// respond delivers a block to the requester and fills the forwarding
// L1.5 bank.
func (st *managerState) respond(m codeReq, res *translate.Result) {
	words := res.CodeBytes / 4
	st.c.Send(m.ReplyTo, codeResp{PC: m.PC, Res: res, Seq: m.Seq}, words)
	if m.FillBank >= 0 {
		st.c.Send(m.FillBank, fill{PC: m.PC, Res: res}, words)
	}
}

// push enqueues a translation request at the given priority bucket
// (lower = more urgent). Re-pushing at a more urgent depth re-files the
// entry.
func (st *managerState) push(pc uint32, depth int) {
	if st.e.cfg.FIFOSpec && depth > 0 {
		depth = 1 // ablation: single speculative FIFO
	}
	if depth > maxSpecDepth+1 {
		depth = maxSpecDepth + 1
	}
	en := st.entry(pc)
	if en.done || en.bad || en.inflight {
		return
	}
	if en.queued && en.depth <= depth {
		return
	}
	en.depth = depth
	en.queued = true
	st.buckets[depth] = append(st.buckets[depth], pc)
	// Guarded: queue-policy tests drive push without a tile context, so
	// st.c is only touched when a tracer is actually attached.
	if t := st.e.trc(); t != nil {
		t.Instant(st.c.Tile, "enqueue", st.c.Now(), "pc", uint64(pc), "depth", uint64(depth))
	}
}

// pop removes the most urgent queued translation.
func (st *managerState) pop() (uint32, int, bool) {
	for d := range st.buckets {
		for len(st.buckets[d]) > 0 {
			pc := st.buckets[d][0]
			st.buckets[d] = st.buckets[d][1:]
			en := st.entry(pc)
			if !en.queued || en.depth != d || en.inflight || en.done || en.bad {
				continue // stale entry superseded by a re-push
			}
			return pc, d, true
		}
	}
	return 0, 0, false
}

// queuedLen counts live queued work (the morphing metric: the length of
// the "blocks to be translated" queues).
func (st *managerState) queuedLen() int {
	n := 0
	for d := range st.buckets {
		for _, pc := range st.buckets[d] {
			en := st.entry(pc)
			if en.queued && en.depth == d && !en.inflight && !en.done && !en.bad {
				n++
			}
		}
	}
	return n
}

// releaseReclaimed checks the elastic reclaim ledger for tile and, when
// its owner wants it back, commits the reclaim: the tile is vmSwitched
// out of this VM (its wrapper finds the idle redirect and parks) and
// the owner's exec tile gets the reclaimDone. Reports whether the tile
// was released; false means no reclaim was pending (or another party
// committed it first) and normal handling should proceed.
func (st *managerState) releaseReclaimed(tile int) bool {
	es := st.e.elastic
	if es == nil {
		return false
	}
	owner, ok := es.commit(tile)
	if !ok {
		return false
	}
	st.c.Send(tile, vmSwitch{}, wordsCtl)
	st.c.Send(owner, reclaimDone{Tile: tile}, wordsCtl)
	return true
}

// handleReclaim releases the listed donated tiles this manager holds
// parked. A busy tile is left alone — its next workReq commits the
// release — and an unknown tile's release happens through its own slot
// wrapper at the next sweep.
func (st *managerState) handleReclaim(m reclaim) {
	wanted := map[int]bool{}
	for _, t := range m.Tiles {
		wanted[t] = true
	}
	kept := st.parked[:0]
	var release []int
	for _, s := range st.parked {
		if wanted[s] {
			release = append(release, s)
		} else {
			kept = append(kept, s)
		}
	}
	st.parked = kept
	for _, s := range release {
		st.releaseReclaimed(s)
	}
}

// handleWorkReq parks an idle slave or hands it work.
func (st *managerState) handleWorkReq(slave int) {
	if st.releaseReclaimed(slave) {
		return
	}
	if st.roles[slave] != roleSlave {
		return // reconfigured (or excised) while the request was in flight
	}
	if st.e.robust {
		// A slave asking for work is not translating: if the manager
		// still counts it busy, the work unit or its transDone was lost
		// in flight. Re-queue immediately — waiting out the work
		// watchdog would be correct but slow, and parking the slave
		// without this would overwrite its outstanding entry, orphaning
		// the translation as permanently "inflight".
		if ow, ok := st.outstanding[slave]; ok {
			st.e.stats.Retries++
			delete(st.outstanding, slave)
			en := st.entry(ow.pc)
			en.inflight = false
			st.push(ow.pc, ow.depth)
		}
		// A delayed workReq can race the heartbeat-implied one; never
		// park a slave twice.
		for _, s := range st.parked {
			if s == slave {
				return
			}
		}
	}
	st.c.Tick(st.e.cfg.Params.TransRequestOcc)
	st.park(slave)
	st.dispatch()
}

// dispatch pairs parked slaves with queued work, then applies the
// cross-VM lending policy: surplus idle slaves flow to the peer, and a
// starved manager asks the peer for help.
func (st *managerState) dispatch() {
	for len(st.parked) > 0 {
		pc, depth, ok := st.pop()
		if !ok {
			break
		}
		slave := st.parked[0]
		st.parked = st.parked[1:]
		en := st.entry(pc)
		en.queued = false
		en.inflight = true
		if st.e.robust || st.e.trackWork {
			st.outstanding[slave] = outWork{pc: pc, depth: depth,
				deadline: st.c.Now() + st.e.cfg.Params.WorkWatchdog}
		}
		st.e.trc().Instant(st.c.Tile, "assign", st.c.Now(), "pc", uint64(pc), "slave", uint64(slave))
		st.c.Send(slave, st.workFor(pc, depth), wordsCtl)
	}
	if !st.e.lend || len(st.e.peers) == 0 {
		return
	}
	// Lending is strictly request-driven (no unsolicited pushes, so idle
	// managers exchange no traffic): satisfy the most-backed-up deferred
	// help request when capacity frees up, and broadcast for help when
	// starved.
	switch {
	case len(st.pendingHelp) > 0 && len(st.parked) > 0 && st.queuedLen() == 0:
		peer := st.neediestPeer()
		slave := st.parked[len(st.parked)-1]
		st.parked = st.parked[:len(st.parked)-1]
		delete(st.pendingHelp, peer)
		st.c.Send(peer, lendSlave{Slave: slave}, wordsCtl)
	case len(st.parked) == 0 && st.queuedLen() > 0 && st.helpOut == 0 && !st.e.cancelled:
		q := st.queuedLen()
		for _, p := range st.e.peers {
			st.c.Send(p, helpReq{QLen: q}, wordsCtl)
		}
		st.helpOut = len(st.e.peers)
	}
}

// workFor builds a work unit carrying this VM's translation context.
// The template tier serves only demand work (depth 0): a demand miss
// stalls the execution tile, so cutting translation latency there is
// the whole point of tier-0, while run-ahead speculation is already
// off the critical path and can afford the optimizing tier's better
// (smaller, faster) code. A promotion re-translate forces the
// optimizing tier.
func (st *managerState) workFor(pc uint32, depth int) work {
	return work{
		PC: pc, Depth: depth, Gen: st.e.smcGen,
		Translator: st.e.tr, Mem: st.e.proc.Mem, Optimize: st.e.cfg.Optimize,
		Tier0: st.e.cfg.Tier0 && depth == 0 && !st.entry(pc).promote,
	}
}

// handlePromote re-queues a hot tier-0 block at demand priority for
// optimizing re-translation (tier-up). Stale and duplicate requests —
// the block was already promoted, invalidated by self-modifying code,
// or a promotion is already in flight — are dropped: the guards make
// the request idempotent, so the execution tile may fire and forget.
func (st *managerState) handlePromote(m promoteReq) {
	en := st.entry(m.PC)
	if !en.done || en.promote || en.tier != translate.TierTemplate || !st.l2.Contains(m.PC) {
		return
	}
	st.c.Tick(st.e.cfg.Params.TransRequestOcc)
	en.promote = true
	en.done = false
	st.push(m.PC, 0)
	st.dispatch()
	st.traceQueueDepth()
}

// staleSMC reports whether a finished translation read bytes that were
// overwritten after the work was dispatched.
func (st *managerState) staleSMC(m transDone) bool {
	if m.Res == nil || m.Gen == st.e.smcGen {
		return false
	}
	lo := m.Res.GuestAddr
	hi := lo + m.Res.GuestLen
	for pg := lo >> 12; pg <= (hi-1)>>12; pg++ {
		if g, ok := st.e.pageInval[pg]; ok && g > m.Gen {
			return true
		}
	}
	return false
}

// handleTransDone stores a finished translation, wakes demand waiters,
// and enqueues speculative successors. It is idempotent so that the
// fault-recovery watchdogs may re-dispatch work whose first result was
// merely slow rather than lost.
func (st *managerState) handleTransDone(m transDone, from int) {
	P := st.e.cfg.Params
	if st.e.robust || st.e.trackWork {
		if ow, ok := st.outstanding[from]; ok && ow.pc == m.PC {
			delete(st.outstanding, from)
		}
	}
	en := st.entry(m.PC)
	en.inflight = false
	st.e.stats.Translations++
	st.e.trc().Count(tsTranslations, st.c.Now(), 1)
	if st.staleSMC(m) {
		// Translated from overwritten bytes: discard. A pending demand
		// waiter re-queues at demand priority; speculative results are
		// simply dropped.
		st.e.trc().Instant(st.c.Tile, "trans_stale", st.c.Now(), "pc", uint64(m.PC), "", 0)
		if _, waiting := st.waiters[m.PC]; waiting {
			st.push(m.PC, 0)
			st.dispatch()
		}
		return
	}
	if m.Res == nil {
		en.bad = true
		st.e.trc().Instant(st.c.Tile, "untranslatable", st.c.Now(), "pc", uint64(m.PC), "", 0)
		for _, w := range st.waiters[m.PC] {
			st.c.Send(w.replyTo, codeResp{PC: m.PC, Res: nil, Seq: w.seq}, wordsCtl)
		}
		delete(st.waiters, m.PC)
		st.dispatch()
		return
	}
	en.done = true
	st.e.stats.TransGuestInsts += uint64(m.Res.NumGuest)
	if m.Res.Tier == translate.TierTemplate {
		st.e.stats.Tier0Installs++
	} else {
		st.e.stats.Tier1Installs++
	}
	wasPromote := en.promote
	en.promote = false
	en.tier = m.Res.Tier
	words := m.Res.CodeBytes / 4
	st.c.Tick(P.L2CStoreOcc + uint64(words)*P.L2CWordOcc)
	if wasPromote {
		// Tier-up settlement: install the optimized block over the
		// tier-0 version in place, flush the L1.5 banks holding the
		// stale copy (their acks are fire-and-forget here), and tell the
		// exec tile so it flushes its chained L1 arena at the next
		// dispatch boundary. promoFresh routes that refetch straight to
		// the manager, past any not-yet-flushed L1.5 bank.
		st.l2.Replace(m.PC, m.Res)
		st.e.stats.Promotions++
		st.e.promoGen++
		st.e.promoFresh[m.PC] = true
		st.e.trc().Instant(st.c.Tile, "promote", st.c.Now(), "pc", uint64(m.PC), "gen", st.e.promoGen)
		for _, bankTile := range st.e.pl.l15 {
			st.c.Send(bankTile, smcInval{Lo: m.Res.GuestAddr, Hi: m.Res.GuestAddr + m.Res.GuestLen}, wordsCtl)
		}
	} else {
		st.l2.Insert(m.PC, m.Res)
	}
	st.e.stats.L2CStores++
	st.e.trc().Instant(st.c.Tile, "install", st.c.Now(), "pc", uint64(m.PC), "depth", uint64(m.Depth))
	for pg := m.Res.GuestAddr >> 12; pg <= (m.Res.GuestAddr+m.Res.GuestLen-1)>>12; pg++ {
		st.e.codePages[pg] = true
	}

	if ws, ok := st.waiters[m.PC]; ok {
		for _, w := range ws {
			st.respond(codeReq{PC: m.PC, ReplyTo: w.replyTo, FillBank: w.fillBank, Seq: w.seq}, m.Res)
		}
		delete(st.waiters, m.PC)
	} else if m.Depth > 0 {
		st.specStored[m.PC] = true
	}

	if st.e.cfg.Speculative {
		st.enqueueSuccessors(m.Res, m.Depth)
	}
	st.dispatch()
	st.morphEval()
	st.traceQueueDepth()
}

// enqueueSuccessors implements speculative parallel translation's
// traversal policy (§2.1): follow direct control flow with static
// branch prediction (backward branches predicted taken), put call
// return sites on the low-priority return-predictor queue, and stop at
// unresolvable indirect jumps.
func (st *managerState) enqueueSuccessors(res *translate.Result, depth int) {
	switch res.Kind {
	case translate.ExitFall:
		st.push(res.Target, depth+1)
	case translate.ExitBranch:
		if res.BackwardTaken {
			st.push(res.Target, depth+1)
			st.push(res.FallTarget, depth+2)
		} else {
			st.push(res.FallTarget, depth+1)
			st.push(res.Target, depth+2)
		}
	case translate.ExitCall:
		st.push(res.Target, depth+1)
		if !st.e.cfg.NoReturnPredictor {
			st.push(res.FallTarget, maxSpecDepth+1) // return predictor
		}
	case translate.ExitIndirect:
		if res.FallTarget != 0 && !st.e.cfg.NoReturnPredictor {
			st.push(res.FallTarget, maxSpecDepth+1)
		}
	case translate.ExitRet:
		// Successor comes through the return predictor at call time.
	}
}

// morphEval is the dynamic reconfiguration controller: it inspects the
// translation queues and trades L2 data cache tiles for translation
// tiles (§2.3, §4.4).
func (st *managerState) morphEval() {
	cfg := &st.e.cfg
	if !cfg.Morph {
		return
	}
	now := st.c.Now()
	if now-st.lastMorph < cfg.MorphMinInterval {
		return
	}
	q := st.queuedLen()
	wantTrans := q > cfg.MorphThreshold
	if wantTrans == st.transHeavy {
		return
	}
	st.transHeavy = wantTrans
	st.lastMorph = now
	st.e.stats.Reconfigs++
	st.e.trc().Instant(st.c.Tile, "morph", now, "to_trans", b2u(wantTrans), "qlen", uint64(q))

	newRole := roleBank
	if wantTrans {
		newRole = roleSlave
	}
	perm := st.e.pl.banks[0]
	for _, t := range st.e.pl.switchable {
		if st.roles[t] == roleDead {
			continue // excised after a suspected fail-stop; leave it out
		}
		st.roles[t] = newRole
		st.c.Send(t, reconfig{Role: newRole}, wordsCtl)
	}
	// The permanent bank must flush too: the interleave function
	// changes with the bank count.
	if st.roles[perm] != roleDead {
		st.c.Send(perm, reconfig{Role: roleBank}, wordsCtl)
	}

	var banks []int
	if st.roles[perm] != roleDead {
		banks = append(banks, perm)
	}
	if !wantTrans {
		for i := len(st.e.pl.switchable) - 1; i >= 0; i-- {
			if t := st.e.pl.switchable[i]; st.roles[t] == roleBank {
				banks = append(banks, t)
			}
		}
	}
	switch {
	case len(banks) == 0:
		// Every candidate bank was excised; keep the previous routing.
	case st.e.robust:
		st.banksNow = banks
		st.sendRebank()
	default:
		st.c.Send(st.e.pl.mmu, rebank{Banks: banks}, wordsCtl)
	}

	// Remove reconfigured tiles from the parked pool.
	kept := st.parked[:0]
	for _, s := range st.parked {
		if st.roles[s] == roleSlave {
			kept = append(kept, s)
		}
	}
	st.parked = kept
}
