package core

import "tilevm/internal/translate"

// Message payloads exchanged on the dynamic network between tile
// kernels. Sizes (in words) are charged at the sending side; the
// constants below approximate the prototype's message formats.

// codeReq asks for the translated block at PC. ReplyTo is the tile the
// block should be delivered to (the execution tile); FillBank, if ≥ 0,
// is the L1.5 bank the manager should also fill on the way back. Seq
// sequence-numbers the requester's demand fetches so retried requests
// under fault injection can be told apart from the original.
type codeReq struct {
	PC       uint32
	ReplyTo  int
	FillBank int
	Seq      uint64
}

// codeResp delivers a translated block (nil if the address is
// untranslatable — the guest jumped to garbage). Seq echoes the
// triggering request's sequence number.
type codeResp struct {
	PC  uint32
	Res *translate.Result
	Seq uint64
}

// fill populates an L1.5 bank in the background.
type fill struct {
	PC  uint32
	Res *translate.Result
}

// workReq is a translation slave asking the manager for work.
type workReq struct{}

// work assigns a translation unit to a slave. Gen snapshots the
// self-modifying-code generation at dispatch so results translated
// from since-overwritten bytes can be discarded. The translator and
// guest memory ride along so a slave lent across virtual machines
// (multi-VM mode, paper §5) translates the requesting VM's code; the
// result goes back to the dispatching manager (the message source).
type work struct {
	PC         uint32
	Depth      int
	Gen        uint64
	Translator *translate.Translator
	Mem        translate.CodeReader
	Optimize   bool
	// Tier0 selects the IR-less template tier for this unit; the
	// manager forces it off when the unit is a promotion re-translate.
	Tier0 bool
}

// promoteReq asks the manager to re-translate a hot tier-0 block with
// the optimizing tier and install the result over the template version
// (tier-up). Sent by the execution tile when a block's retired-
// instruction count crosses the promotion threshold.
type promoteReq struct {
	PC uint32
}

// transDone returns a completed translation (Res nil on decode
// failure).
type transDone struct {
	PC    uint32
	Depth int
	Gen   uint64
	Res   *translate.Result
}

// smcInval announces a guest store into translated code (self-
// modifying code): the receiver drops translations overlapping the
// byte range [Lo, Hi) — the manager surgically, L1.5 banks wholesale —
// and acknowledges with smcAck.
type smcInval struct {
	Lo, Hi uint32
}

// smcAck acknowledges an smcInval.
type smcAck struct{}

// lendSlave transfers an idle translation slave tile to the peer VM's
// manager (multi-VM mode); the peer dispatches its own work to it.
type lendSlave struct {
	Slave int
}

// lendReturn hands a borrowed slave back to its home manager (which
// parks it without immediately re-lending, avoiding ping-pong).
type lendReturn struct {
	Slave int
}

// helpReq asks a peer manager for a slave when the local queues are
// backed up and every local slave is busy or lent out. In fleet mode
// it is broadcast to every peer; QLen advertises the requester's queue
// depth so a lender with one spare slave serves the most-backed-up VM
// first.
type helpReq struct {
	QLen int
}

// helpDeny answers a helpReq that this manager will never honor (it is
// draining for a slot handoff and its deferred-help book dies with the
// epoch); it releases one unit of the requester's broadcast latch so a
// still-starved manager may ask again.
type helpDeny struct{}

// slotRepair kicks a manager's dispatch loop after the fleet
// supervisor repaired its host-side state (re-queued work stranded on
// a quarantined slave, pruned dead peers). It carries no data; the
// manager just re-runs dispatch so repaired queue entries pair with
// parked slaves.
type slotRepair struct{}

// reclaim asks a manager to release the listed donated tiles back to
// their owner slot (elastic fleet morphing). The manager immediately
// releases the tiles it holds parked; a busy tile is released when its
// next workReq arrives, and a tile the manager does not know is left
// alone — its release then happens through the tile's own slot-wrapper
// redirect check.
type reclaim struct {
	Tiles []int
}

// reclaimDone tells a donated tile's owner exec tile that the tile has
// left the target VM and is idling, ready to be re-absorbed at the
// owner's next admission handoff. Exactly one reclaimDone is generated
// per reclaimed tile, by whichever party commits the shared reclaim
// ledger entry first (elasticState.commit).
type reclaimDone struct {
	Tile int
}

// vmSwitch tells a slot's service tile to retire its current VM epoch
// for a fleet slot handoff: the manager drains its in-flight
// translations, workers flush their data banks, and every receiver
// acknowledges with switchAck and returns so the slot wrapper can
// restart the kernel bound to the next guest's engine.
type vmSwitch struct{}

// switchAck acknowledges a vmSwitch to the coordinating exec tile.
type switchAck struct{}

// memReq is a guest data-memory request from the execution tile to the
// MMU tile. Write requests are posted (no reply needed functionally)
// but the execution tile still waits for acknowledgment on line fills.
// memReq/memFwd/memResp are sent as pointers and recycled through the
// engine's msgPool (they dominate message volume); the consuming
// kernel frees them.
type memReq struct {
	Addr    uint32
	Write   bool
	ReplyTo int // -1 for posted writebacks
	ID      uint64
	pooled  bool // double-free guard, owned by msgPool
}

// memFwd is the MMU-translated request forwarded to a data bank.
type memFwd struct {
	PAddr   uint32
	Write   bool
	ReplyTo int
	ID      uint64
	pooled  bool // double-free guard, owned by msgPool
}

// memResp acknowledges a serviced memory request.
type memResp struct {
	ID     uint64
	pooled bool // double-free guard, owned by msgPool
}

// sysReq proxies a guest syscall: the pinned registers r1..r9
// (EAX..EDI + EFLAGS) by host index. ID makes the proxy an
// at-most-once RPC under fault injection: a retried request carries
// the same ID and the syscall tile replays the cached response rather
// than re-executing a non-idempotent syscall.
type sysReq struct {
	Regs [10]uint32
	ID   uint64
}

// sysResp returns the updated registers and exit status. ID echoes the
// request.
type sysResp struct {
	Regs   [10]uint32
	Exited bool
	ID     uint64
}

// roleKind is a switchable tile's current function.
type roleKind uint8

const (
	roleSlave roleKind = iota
	roleBank
	// roleDead marks a tile the manager has excised after a detected
	// fail-stop; it is never dispatched to or routed through again.
	roleDead
)

// reconfig retargets a switchable tile (dynamic virtual architecture
// reconfiguration). BankIndex is the tile's position in the new bank
// interleave when becoming a bank.
type reconfig struct {
	Role roleKind
}

// rebank tells the MMU tile the new data-bank set, in interleave
// order. Gen, when nonzero, requests a rebankAck (fault-recovery
// protocol: the manager resends an unacknowledged rebank so a dropped
// one cannot leave the MMU routing to a dead bank forever).
type rebank struct {
	Banks []int
	Gen   uint64
}

// rebankAck confirms the MMU installed the bank set with this Gen.
type rebankAck struct {
	Gen uint64
}

// heartbeat is a worker tile's periodic liveness beacon to the manager
// (sent only in fault-recovery mode). The manager excises a worker
// whose heartbeats stop arriving.
type heartbeat struct{}

// Approximate message sizes in words for network charging.
const (
	wordsCodeReq = 2
	wordsMemReq  = 2
	wordsMemResp = 1
	wordsSys     = 10
	wordsCtl     = 2
)
