package core

// msgPool recycles the high-rate memory-path messages (memReq, memFwd,
// memResp) so a guest cache miss does not allocate three payloads per
// round trip. The messages are sent as pointers; the consuming kernel
// returns each one after its type switch. No locking is needed: the
// simulator runs exactly one tile kernel at a time, and every handoff
// between kernels is a happens-before edge.
//
// A message that never reaches its consumer — dropped or corrupt-
// wrapped by fault injection, or a stale reply discarded by an ID
// mismatch — simply falls to the garbage collector; the pool only
// loses a reuse opportunity, never correctness. sysReq/sysResp are
// deliberately NOT pooled: the robust syscall tile caches responses
// for at-most-once replay, so their lifetime outlives delivery.
type msgPool struct {
	reqs  []*memReq
	fwds  []*memFwd
	resps []*memResp
}

func (p *msgPool) newReq() *memReq {
	if n := len(p.reqs); n > 0 {
		m := p.reqs[n-1]
		p.reqs = p.reqs[:n-1]
		return m
	}
	return &memReq{}
}

func (p *msgPool) freeReq(m *memReq) { p.reqs = append(p.reqs, m) }

func (p *msgPool) newFwd() *memFwd {
	if n := len(p.fwds); n > 0 {
		m := p.fwds[n-1]
		p.fwds = p.fwds[:n-1]
		return m
	}
	return &memFwd{}
}

func (p *msgPool) freeFwd(m *memFwd) { p.fwds = append(p.fwds, m) }

func (p *msgPool) newResp() *memResp {
	if n := len(p.resps); n > 0 {
		m := p.resps[n-1]
		p.resps = p.resps[:n-1]
		return m
	}
	return &memResp{}
}

func (p *msgPool) freeResp(m *memResp) { p.resps = append(p.resps, m) }
