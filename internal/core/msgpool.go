package core

// msgPool recycles the high-rate memory-path messages (memReq, memFwd,
// memResp) so a guest cache miss does not allocate three payloads per
// round trip. The messages are sent as pointers; the consuming kernel
// returns each one after its type switch. No locking is needed: the
// simulator runs exactly one tile kernel at a time, and every handoff
// between kernels is a happens-before edge.
//
// Fault injection complicates ownership. A *dropped* message never
// enters a port queue, so the sender holds the only reference and the
// payload recycles immediately at the send site (via raw.Machine.OnDrop
// -> engine.recycleFaulty). A *corrupted* message stays aliased by its
// raw.Corrupted wrapper until the receiver consumes the wrapper — it
// must NOT return to the free list before then, or the pool would hand
// out a payload that a queued Corrupted envelope still points at and a
// later retry would race its own ghost. Each consuming kernel therefore
// recycles corrupted payloads at its single consumption point. A stale
// reply discarded by an ID mismatch is freed by the discarding
// consumer, which at that point holds the only reference.
//
// sysReq/sysResp are deliberately NOT pooled: the robust syscall tile
// caches responses for at-most-once replay, so their lifetime outlives
// delivery.
//
// Every free checks a pooled bit and panics on double-free: returning
// the same message twice would let two in-flight uses alias one
// payload, which corrupts simulation results silently — a panic at the
// second free is strictly better.
type msgPool struct {
	reqs  []*memReq
	fwds  []*memFwd
	resps []*memResp

	// Recycled counts payloads reclaimed from the fault path (drops and
	// consumed corruptions) — the messages that previous versions of
	// this pool silently leaked to the garbage collector.
	Recycled uint64
}

func (p *msgPool) newReq() *memReq {
	if n := len(p.reqs); n > 0 {
		m := p.reqs[n-1]
		p.reqs = p.reqs[:n-1]
		m.pooled = false
		return m
	}
	return &memReq{}
}

func (p *msgPool) freeReq(m *memReq) {
	if m.pooled {
		panic("core: double free of pooled memReq")
	}
	m.pooled = true
	p.reqs = append(p.reqs, m)
}

func (p *msgPool) newFwd() *memFwd {
	if n := len(p.fwds); n > 0 {
		m := p.fwds[n-1]
		p.fwds = p.fwds[:n-1]
		m.pooled = false
		return m
	}
	return &memFwd{}
}

func (p *msgPool) freeFwd(m *memFwd) {
	if m.pooled {
		panic("core: double free of pooled memFwd")
	}
	m.pooled = true
	p.fwds = append(p.fwds, m)
}

func (p *msgPool) newResp() *memResp {
	if n := len(p.resps); n > 0 {
		m := p.resps[n-1]
		p.resps = p.resps[:n-1]
		m.pooled = false
		return m
	}
	return &memResp{}
}

func (p *msgPool) freeResp(m *memResp) {
	if m.pooled {
		panic("core: double free of pooled memResp")
	}
	m.pooled = true
	p.resps = append(p.resps, m)
}

// recycleFaulty returns a fault-path payload (dropped at the send site,
// or corrupted and now consumed by its receiver) to the free list.
// Non-pooled payloads (sysReq, control messages, ...) are ignored — the
// fault injector is payload-agnostic, so this must accept anything.
func (e *engine) recycleFaulty(payload any) {
	switch m := payload.(type) {
	case *memReq:
		e.pool.freeReq(m)
	case *memFwd:
		e.pool.freeFwd(m)
	case *memResp:
		e.pool.freeResp(m)
	default:
		return
	}
	e.pool.Recycled++
}
