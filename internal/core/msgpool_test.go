package core

import (
	"testing"

	"tilevm/internal/fault"
)

// TestMsgPoolDoubleFreePanics pins the pool's aliasing guard: returning
// the same payload twice must panic instead of silently handing one
// message to two owners.
func TestMsgPoolDoubleFreePanics(t *testing.T) {
	p := &msgPool{}
	m := p.newResp()
	p.freeResp(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double free of a pooled memResp did not panic")
		}
	}()
	p.freeResp(m)
}

// TestMsgPoolReuseAfterRecycle: a payload recycled through the fault
// path (engine.recycleFaulty) is genuinely reusable, and non-pooled
// payloads are ignored rather than corrupting the free lists.
func TestMsgPoolReuseAfterRecycle(t *testing.T) {
	e := &engine{}
	req := e.pool.newReq()
	e.recycleFaulty(req)
	if e.pool.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", e.pool.Recycled)
	}
	if got := e.pool.newReq(); got != req {
		t.Error("recycled memReq was not reused")
	}
	e.recycleFaulty("not a pooled message")
	e.recycleFaulty(nil)
	if e.pool.Recycled != 1 {
		t.Fatalf("non-pooled payloads bumped Recycled to %d", e.pool.Recycled)
	}
}

// TestCorruptedMsgsRecycled is the regression test for the message-pool
// hazard: under a corruption-heavy fault plan the engine must reclaim
// corrupted memory-path payloads at their consumption points (not at
// the send site, where a queued raw.Corrupted envelope still aliases
// them) — and the run must still produce the architecturally correct
// result.
func TestCorruptedMsgsRecycled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 4_000_000_000
	cfg.Fault = &fault.Plan{
		Seed:        11,
		DropProb:    0.01,
		CorruptProb: 0.05,
	}
	res := checkAgainstReference(t, sumLoop(2000), cfg)
	if res.M.MsgsCorrupted == 0 {
		t.Fatal("corruption-heavy plan corrupted nothing; the test lost its teeth")
	}
	if res.M.FaultMsgsRecycled == 0 {
		t.Error("no corrupted/dropped payloads were recycled back to the message pool")
	}
}
