package core

import (
	"tilevm/internal/guest"
)

// PairResult is the outcome of a two-guest run — the original
// multi-VM mode, now expressed as a two-guest fleet (see fleet.go).
type PairResult struct {
	A, B *Result
	// Makespan is the virtual time at which the second guest finished.
	Makespan uint64
	// TileBusy is the shared fabric's per-tile busy counters.
	TileBusy []uint64
}

// RunPair executes two guests side by side on one fabric. cfg supplies
// the timing parameters and translator options; the per-VM tile counts
// are fixed by the slot shape. lend enables cross-VM slave lending.
// It is a two-guest RunFleet: carving the default 4×4 grid yields the
// same disjoint-halves split the pair mode always used.
func RunPair(imgA, imgB *guest.Image, cfg Config, lend bool) (*PairResult, error) {
	fr, err := RunFleet([]*guest.Image{imgA, imgB}, cfg, FleetConfig{Lend: lend})
	if fr == nil {
		return nil, err
	}
	res := &PairResult{Makespan: fr.Makespan, TileBusy: fr.TileBusy}
	if len(fr.Guests) == 2 {
		res.A = fr.Guests[0].Result
		res.B = fr.Guests[1].Result
	}
	return res, err
}
