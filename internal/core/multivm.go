package core

import (
	"fmt"

	"tilevm/internal/guest"
	"tilevm/internal/raw"
	"tilevm/internal/translate"
)

// Multi-VM mode implements the paper's §5 vision: "a large tiled
// fabric running many virtual x86's all at the same time … If dynamic
// reconfiguration is then applied between virtual x86 processors, the
// virtual processors would compete for resources and this leads to a
// higher utilization of the underlying tiled fabric."
//
// Two complete virtual machines are laid out on disjoint halves of the
// 4×4 grid, each with its own execution tile, manager, MMU, syscall
// proxy, L1.5 bank, data bank, and two translation slaves. With
// lending enabled, a manager whose translation queues are empty offers
// its idle slave tiles to the other VM's manager (and asks for help
// when its own queues back up); when one guest exits, its slaves keep
// serving the survivor — the "shrink the stalled x86" behaviour of §5.

// PairResult is the outcome of a two-guest run.
type PairResult struct {
	A, B *Result
	// Makespan is the virtual time at which the second guest finished.
	Makespan uint64
	// TileBusy is the shared fabric's per-tile busy counters.
	TileBusy []uint64
}

// pairPlacements carves the 4×4 grid into two 8-tile VMs. Layout keeps
// each VM's exec tile adjacent to its manager, MMU, and L1.5 bank.
func pairPlacements() (a, b placement) {
	a = placement{
		sys: 0, l15: []int{1}, exec: 5, manager: 4, mmu: 6,
		slaves: []int{2, 3}, banks: []int{7},
		switchIsBank: map[int]bool{},
	}
	b = placement{
		sys: 8, l15: []int{9}, exec: 13, manager: 12, mmu: 14,
		slaves: []int{10, 11}, banks: []int{15},
		switchIsBank: map[int]bool{},
	}
	return a, b
}

// RunPair executes two guests side by side on one fabric. cfg supplies
// the timing parameters and translator options; the per-VM tile counts
// are fixed by the split. lend enables cross-VM slave lending.
func RunPair(imgA, imgB *guest.Image, cfg Config, lend bool) (*PairResult, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000_000
	}
	if cfg.Morph {
		return nil, fmt.Errorf("core: intra-VM morphing and multi-VM mode are mutually exclusive")
	}
	m := raw.NewMachine(cfg.Params)
	m.Sim.SetLimit(cfg.MaxCycles)

	remaining := 2
	mk := func(img *guest.Image, pl placement, peer int) *engine {
		e := &engine{
			cfg:  cfg,
			pl:   pl,
			m:    m,
			proc: guest.Load(img),
			tr: translate.New(translate.Options{
				Optimize:          cfg.Optimize,
				ConservativeFlags: cfg.ConservativeFlags,
			}),
			codePages: map[uint32]bool{},
			pageInval: map[uint32]uint64{},
			peerMgr:   peer,
			lend:      lend,
		}
		e.onExit = func(c *raw.TileCtx) {
			remaining--
			if remaining == 0 {
				c.Stop()
			}
		}
		return e
	}

	plA, plB := pairPlacements()
	ea := mk(imgA, plA, plB.manager)
	eb := mk(imgB, plB, plA.manager)
	ea.spawn()
	eb.spawn()

	simErr := m.Run()

	collect := func(e *engine) *Result {
		e.stats.Cycles = e.stopCycles
		if e.mgr != nil {
			e.stats.L2CAccess = e.mgr.l2.Accesses
			e.stats.L2CMisses = e.mgr.l2.Misses
			e.stats.SpecWasted = uint64(len(e.mgr.specStored))
		}
		return &Result{
			Cycles:   e.stopCycles,
			ExitCode: e.proc.Kern.ExitCode,
			Stdout:   e.proc.Kern.Stdout.String(),
			M:        e.stats,
		}
	}
	res := &PairResult{A: collect(ea), B: collect(eb), TileBusy: m.BusyCycles()}
	if res.A.Cycles > res.B.Cycles {
		res.Makespan = res.A.Cycles
	} else {
		res.Makespan = res.B.Cycles
	}
	if simErr != nil {
		return res, fmt.Errorf("core: multi-VM simulation failed: %w", simErr)
	}
	if ea.execErr != nil {
		return res, fmt.Errorf("core: guest A failed: %w", ea.execErr)
	}
	if eb.execErr != nil {
		return res, fmt.Errorf("core: guest B failed: %w", eb.execErr)
	}
	return res, nil
}
