package core

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/workload"
	"tilevm/internal/x86interp"
)

// pairCfg is the shared-fabric configuration for multi-VM tests.
func pairCfg() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 2_000_000_000
	return cfg
}

// checkGuest verifies one guest's results against its reference run.
func checkGuest(t *testing.T, label string, res *Result, img *guest.Image) {
	t.Helper()
	ref := guest.Load(img)
	if exited, err := x86interp.New(ref).Run(50_000_000); err != nil || !exited {
		t.Fatalf("%s reference: %v exited=%v", label, err, exited)
	}
	if res.ExitCode != ref.Kern.ExitCode {
		t.Errorf("%s exit code %d, want %d", label, res.ExitCode, ref.Kern.ExitCode)
	}
	if res.Stdout != ref.Kern.Stdout.String() {
		t.Errorf("%s stdout mismatch", label)
	}
}

func TestMultiVMBothGuestsCorrect(t *testing.T) {
	pa, _ := workload.ByName("164.gzip")
	pb, _ := workload.ByName("181.mcf")
	a, b := pa.Build(), pb.Build()
	for _, lend := range []bool{false, true} {
		res, err := RunPair(a, b, pairCfg(), lend)
		if err != nil {
			t.Fatalf("lend=%v: %v", lend, err)
		}
		checkGuest(t, "A", res.A, a)
		checkGuest(t, "B", res.B, b)
		if res.Makespan == 0 || res.Makespan < res.A.Cycles || res.Makespan < res.B.Cycles {
			t.Errorf("lend=%v: makespan %d inconsistent (%d, %d)",
				lend, res.Makespan, res.A.Cycles, res.B.Cycles)
		}
	}
}

func TestMultiVMLendingHelpsAsymmetricPair(t *testing.T) {
	// Guest A is tiny (exits quickly); guest B is translation-bound.
	// With lending, A's slaves join B after A exits (and whenever A's
	// queues are empty), so B must finish sooner.
	pa, _ := workload.ByName("164.gzip")
	pb, _ := workload.ByName("176.gcc")
	a, b := pa.Build(), pb.Build()

	noLend, err := RunPair(a, b, pairCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	lend, err := RunPair(a, b, pairCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	checkGuest(t, "B/nolend", noLend.B, b)
	checkGuest(t, "B/lend", lend.B, b)
	t.Logf("B (gcc) cycles: no lending %d, lending %d (%.1f%% faster)",
		noLend.B.Cycles, lend.B.Cycles,
		100*(1-float64(lend.B.Cycles)/float64(noLend.B.Cycles)))
	if lend.B.Cycles >= noLend.B.Cycles {
		t.Errorf("lending did not speed up the translation-bound guest: %d vs %d",
			lend.B.Cycles, noLend.B.Cycles)
	}
}

func TestMultiVMDisjointPlacement(t *testing.T) {
	slots, err := carveFabric(DefaultConfig().Params, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := slots[0], slots[1]
	seen := map[int]bool{}
	add := func(ts ...int) {
		for _, tile := range ts {
			if seen[tile] {
				t.Fatalf("tile %d assigned twice", tile)
			}
			seen[tile] = true
		}
	}
	for _, pl := range []placement{a, b} {
		add(pl.sys, pl.exec, pl.manager, pl.mmu)
		add(pl.l15...)
		add(pl.slaves...)
		add(pl.banks...)
	}
	if len(seen) != 16 {
		t.Errorf("placements cover %d tiles, want 16", len(seen))
	}
}
