package core

import (
	"fmt"

	"tilevm/internal/raw"
)

// Fleet slot carving: partitioning an arbitrary W×H fabric into
// complete 8-tile virtual machines. Each slot is a 4×2 (or transposed
// 2×4) rectangle holding a full service set — syscall proxy, L1.5
// bank, two translation slaves, manager, execution tile, MMU, and one
// data bank — arranged so the execution tile is adjacent to its
// manager, MMU, and L1.5 bank, the same layout constraint the fixed
// 4×4 pair split encodes (see DESIGN.md §9).
//
//	4×2 slot            2×4 slot
//	sys  l15  slv  slv      sys  mgr
//	mgr  exec mmu  bank     l15  exec
//	                        slv  mmu
//	                        slv  bank

// slotTiles is the number of tiles one carved VM slot occupies.
const slotTiles = 8

// maxFabricDim bounds carving so a hostile Width/Height cannot demand
// an absurd allocation; real experiments use 4×4 through 16×16.
const maxFabricDim = 256

// slotAt builds the placement for a slot anchored at (x0,y0).
func slotAt(p raw.Params, x0, y0 int, horiz bool) placement {
	t := func(dx, dy int) int {
		if !horiz {
			dx, dy = dy, dx
		}
		return p.TileAt(x0+dx, y0+dy)
	}
	return placement{
		sys:     t(0, 0),
		l15:     []int{t(1, 0)},
		slaves:  []int{t(2, 0), t(3, 0)},
		manager: t(0, 1),
		exec:    t(1, 1),
		mmu:     t(2, 1),
		banks:   []int{t(3, 1)},
		// No switchable tiles: fleet slots never morph.
		switchIsBank: map[int]bool{},
	}
}

// carveFabric partitions the fabric into VM slots by a deterministic
// row-major greedy scan, trying the 4×2 orientation before the 2×4 at
// every free anchor. want > 0 demands exactly that many slots (error
// if they do not fit); want == 0 carves as many as fit (error if
// none). On the default 4×4 grid the first two slots reproduce the
// original pair split bit for bit.
func carveFabric(p raw.Params, want int) ([]placement, error) {
	if p.Width < 2 || p.Height < 2 {
		return nil, fmt.Errorf("core: %d×%d fabric cannot host a VM slot (minimum slot is 4×2 tiles)", p.Width, p.Height)
	}
	if p.Width > maxFabricDim || p.Height > maxFabricDim {
		return nil, fmt.Errorf("core: %d×%d fabric exceeds the %d×%d carving limit", p.Width, p.Height, maxFabricDim, maxFabricDim)
	}
	used := make([]bool, p.Tiles())
	fits := func(x0, y0, w, h int) bool {
		if x0+w > p.Width || y0+h > p.Height {
			return false
		}
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				if used[p.TileAt(x0+dx, y0+dy)] {
					return false
				}
			}
		}
		return true
	}
	claim := func(x0, y0, w, h int) {
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				used[p.TileAt(x0+dx, y0+dy)] = true
			}
		}
	}
	var slots []placement
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			if want > 0 && len(slots) == want {
				return slots, nil
			}
			switch {
			case fits(x, y, 4, 2):
				claim(x, y, 4, 2)
				slots = append(slots, slotAt(p, x, y, true))
			case fits(x, y, 2, 4):
				claim(x, y, 2, 4)
				slots = append(slots, slotAt(p, x, y, false))
			}
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("core: %d×%d fabric fits no 4×2 or 2×4 VM slot", p.Width, p.Height)
	}
	if want > 0 && len(slots) < want {
		return nil, fmt.Errorf("core: %d VM slots requested but the %d×%d fabric fits only %d",
			want, p.Width, p.Height, len(slots))
	}
	return slots, nil
}

// FleetSlots reports how many VM slots RunFleet can carve out of the
// fabric — the fleet's concurrency limit. It returns an error when the
// fabric fits none, so CLIs can reject impossible -guests/-grid
// combinations before building any guest image.
func FleetSlots(p raw.Params) (int, error) {
	slots, err := carveFabric(p, 0)
	if err != nil {
		return 0, err
	}
	return len(slots), nil
}
