package core

import (
	"fmt"
	"strings"

	"tilevm/internal/raw"
)

// Fleet slot carving: partitioning an arbitrary W×H fabric into
// complete 8-tile virtual machines. Each slot is a 4×2 (or transposed
// 2×4) rectangle holding a full service set — syscall proxy, L1.5
// bank, two translation slaves, manager, execution tile, MMU, and one
// data bank — arranged so the execution tile is adjacent to its
// manager, MMU, and L1.5 bank, the same layout constraint the fixed
// 4×4 pair split encodes (see DESIGN.md §9).
//
//	4×2 slot            2×4 slot
//	sys  l15  slv  slv      sys  mgr
//	mgr  exec mmu  bank     l15  exec
//	                        slv  mmu
//	                        slv  bank

// slotTiles is the number of tiles one carved VM slot occupies.
const slotTiles = 8

// maxFabricDim bounds carving so a hostile Width/Height cannot demand
// an absurd allocation; real experiments use 4×4 through 16×16.
const maxFabricDim = 256

// NoFitError reports a carve that could not place every requested
// slot. Beyond the headline counts it carries the smallest slot shape
// the carver tried and the tile→slot occupancy map at the point the
// scan gave up, so "why doesn't guest 7 fit on my 10×6?" is answerable
// from the error text alone.
type NoFitError struct {
	Want   int // slots requested
	Placed int // slots the carve managed to place
	SlotW  int // smallest slot shape tried (canonical orientation)
	SlotH  int
	Width  int // fabric dimensions
	Height int
	// Occupied maps tile id → slot index (-1 for free tiles), row-major
	// over the fabric, as of the failed carve.
	Occupied []int
}

// occupancyGlyph renders one slot index for the error's fabric map.
func occupancyGlyph(si int) byte {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	switch {
	case si < 0:
		return '.'
	case si < len(digits):
		return digits[si]
	default:
		return '#'
	}
}

func (e *NoFitError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d VM slots requested but the %d×%d fabric fits only %d (smallest shape tried %d×%d; occupancy, '.'=free):",
		e.Want, e.Width, e.Height, e.Placed, e.SlotW, e.SlotH)
	for y := 0; y < e.Height; y++ {
		b.WriteString("\n  ")
		for x := 0; x < e.Width; x++ {
			i := y*e.Width + x
			if i < len(e.Occupied) {
				b.WriteByte(occupancyGlyph(e.Occupied[i]))
			} else {
				b.WriteByte('?')
			}
		}
	}
	return b.String()
}

// slotAt builds the placement for a slot anchored at (x0,y0).
func slotAt(p raw.Params, x0, y0 int, horiz bool) placement {
	t := func(dx, dy int) int {
		if !horiz {
			dx, dy = dy, dx
		}
		return p.TileAt(x0+dx, y0+dy)
	}
	return placement{
		sys:     t(0, 0),
		l15:     []int{t(1, 0)},
		slaves:  []int{t(2, 0), t(3, 0)},
		manager: t(0, 1),
		exec:    t(1, 1),
		mmu:     t(2, 1),
		banks:   []int{t(3, 1)},
		// No switchable tiles: fleet slots never morph.
		switchIsBank: map[int]bool{},
	}
}

// carveFabric partitions the fabric into VM slots by a deterministic
// row-major greedy scan, trying the 4×2 orientation before the 2×4 at
// every free anchor. want > 0 demands exactly that many slots (error
// if they do not fit); want == 0 carves as many as fit (error if
// none). On the default 4×4 grid the first two slots reproduce the
// original pair split bit for bit.
func carveFabric(p raw.Params, want int) ([]placement, error) {
	if p.Width < 2 || p.Height < 2 {
		return nil, fmt.Errorf("core: %d×%d fabric cannot host a VM slot (minimum slot is 4×2 tiles)", p.Width, p.Height)
	}
	if p.Width > maxFabricDim || p.Height > maxFabricDim {
		return nil, fmt.Errorf("core: %d×%d fabric exceeds the %d×%d carving limit", p.Width, p.Height, maxFabricDim, maxFabricDim)
	}
	occ := make([]int, p.Tiles())
	for i := range occ {
		occ[i] = -1
	}
	fits := func(x0, y0, w, h int) bool {
		if x0+w > p.Width || y0+h > p.Height {
			return false
		}
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				if occ[p.TileAt(x0+dx, y0+dy)] >= 0 {
					return false
				}
			}
		}
		return true
	}
	claim := func(x0, y0, w, h, si int) {
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				occ[p.TileAt(x0+dx, y0+dy)] = si
			}
		}
	}
	var slots []placement
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			if want > 0 && len(slots) == want {
				return slots, nil
			}
			switch {
			case fits(x, y, 4, 2):
				claim(x, y, 4, 2, len(slots))
				slots = append(slots, slotAt(p, x, y, true))
			case fits(x, y, 2, 4):
				claim(x, y, 2, 4, len(slots))
				slots = append(slots, slotAt(p, x, y, false))
			}
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("core: %d×%d fabric fits no 4×2 or 2×4 VM slot", p.Width, p.Height)
	}
	if want > 0 && len(slots) < want {
		return nil, &NoFitError{
			Want: want, Placed: len(slots),
			SlotW: 4, SlotH: 2,
			Width: p.Width, Height: p.Height,
			Occupied: occ,
		}
	}
	return slots, nil
}

// FleetSlots reports how many VM slots RunFleet can carve out of the
// fabric — the fleet's concurrency limit. It returns an error when the
// fabric fits none, so CLIs can reject impossible -guests/-grid
// combinations before building any guest image.
func FleetSlots(p raw.Params) (int, error) {
	slots, err := carveFabric(p, 0)
	if err != nil {
		return 0, err
	}
	return len(slots), nil
}

// tiles lists every tile a placement occupies, in a fixed service-role
// order (sys, l15…, slaves…, manager, exec, mmu, banks…). For a fleet
// slot the list has exactly slotTiles entries and no duplicates.
func (pl *placement) tiles() []int {
	out := []int{pl.sys}
	out = append(out, pl.l15...)
	out = append(out, pl.slaves...)
	out = append(out, pl.manager, pl.exec, pl.mmu)
	out = append(out, pl.banks...)
	return out
}

// FleetSlot is the public shape of one carved VM slot: which tile holds
// each service role. Benchmarks and fault-plan authors use it to aim
// fail clauses at a specific slot's manager or slave without
// hard-coding the carve order.
type FleetSlot struct {
	Sys     int
	L15     []int
	Slaves  []int
	Manager int
	Exec    int
	MMU     int
	Banks   []int
}

// FleetSlotLayout carves the fabric exactly as RunFleet would and
// returns the slot layouts in carve order. It is the read-only twin of
// the internal carve, kept in lockstep by TestFleetSlotLayoutMatchesCarve.
func FleetSlotLayout(p raw.Params) ([]FleetSlot, error) {
	slots, err := carveFabric(p, 0)
	if err != nil {
		return nil, err
	}
	out := make([]FleetSlot, len(slots))
	for i, pl := range slots {
		out[i] = FleetSlot{
			Sys:     pl.sys,
			L15:     append([]int(nil), pl.l15...),
			Slaves:  append([]int(nil), pl.slaves...),
			Manager: pl.manager,
			Exec:    pl.exec,
			MMU:     pl.mmu,
			Banks:   append([]int(nil), pl.banks...),
		}
	}
	return out, nil
}

// slotIndexOf maps every tile of every slot to its slot index, for
// translating a fault plan's tile targets into slot quarantines.
func slotIndexOf(slots []placement) map[int]int {
	m := map[int]int{}
	for si := range slots {
		for _, t := range slots[si].tiles() {
			m[t] = si
		}
	}
	return m
}

// survivorsAfter returns the slot indices not quarantined, in carve
// order. It validates the surviving slots are still disjoint and
// in-bounds — a quarantine only ever removes whole slots, so a
// violation here means the carve itself was corrupted.
func survivorsAfter(p raw.Params, slots []placement, quarantined map[int]bool) ([]int, error) {
	seen := map[int]int{}
	var out []int
	for si := range slots {
		if quarantined[si] {
			continue
		}
		for _, t := range slots[si].tiles() {
			if t < 0 || t >= p.Tiles() {
				return nil, fmt.Errorf("core: slot %d tile %d outside the %d×%d fabric", si, t, p.Width, p.Height)
			}
			if prev, dup := seen[t]; dup {
				return nil, fmt.Errorf("core: slots %d and %d overlap at tile %d", prev, si, t)
			}
			seen[t] = si
		}
		out = append(out, si)
	}
	return out, nil
}
