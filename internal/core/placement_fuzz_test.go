package core

import (
	"testing"

	"tilevm/internal/raw"
)

// slotInvariants checks one carved slot's structural contract: every
// role present exactly once, all tiles in bounds, and the execution
// tile Manhattan-adjacent to its manager, MMU, and L1.5 bank (the
// layout constraint that keeps the hot dispatch round trips to
// single-hop messages).
func slotInvariants(t *testing.T, p raw.Params, si int, pl placement, used map[int]int) {
	t.Helper()
	if len(pl.l15) != 1 || len(pl.slaves) != 2 || len(pl.banks) != 1 {
		t.Fatalf("slot %d role counts wrong: %+v", si, pl)
	}
	tiles := []int{pl.sys, pl.l15[0], pl.slaves[0], pl.slaves[1], pl.manager, pl.exec, pl.mmu, pl.banks[0]}
	for _, tile := range tiles {
		if tile < 0 || tile >= p.Tiles() {
			t.Fatalf("slot %d tile %d out of bounds on %d×%d", si, tile, p.Width, p.Height)
		}
		if prev, clash := used[tile]; clash {
			t.Fatalf("tile %d claimed by slots %d and %d", tile, prev, si)
		}
		used[tile] = si
	}
	adjacent := func(a, b int) bool {
		ax, ay := p.XY(a)
		bx, by := p.XY(b)
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx+dy == 1
	}
	for _, n := range []struct {
		name string
		tile int
	}{{"manager", pl.manager}, {"mmu", pl.mmu}, {"l15", pl.l15[0]}} {
		if !adjacent(pl.exec, n.tile) {
			t.Errorf("slot %d: exec tile %d not adjacent to %s tile %d", si, pl.exec, n.name, n.tile)
		}
	}
}

// FuzzCarveFabric throws arbitrary fabric shapes and slot demands at
// the carver: any input must yield either an error or a set of
// disjoint, in-bounds, role-complete, adjacency-correct slots — never
// a panic — and carving must be deterministic.
//
//	go test ./internal/core -run - -fuzz FuzzCarveFabric -fuzztime 30s
func FuzzCarveFabric(f *testing.F) {
	f.Add(4, 4, 0)
	f.Add(4, 4, 2)
	f.Add(8, 8, 8)
	f.Add(2, 4, 1)
	f.Add(5, 3, 0)
	f.Add(1, 1, 1)
	f.Add(0, -3, 0)
	f.Add(257, 4, 1)
	f.Add(16, 16, 33)
	f.Fuzz(func(t *testing.T, w, h, want int) {
		p := raw.DefaultParams()
		p.Width, p.Height = w, h
		slots, err := carveFabric(p, want)
		if err != nil {
			if len(slots) != 0 {
				t.Fatalf("%d×%d want=%d: error %v alongside %d slots", w, h, want, err, len(slots))
			}
			return
		}
		if len(slots) == 0 || (want > 0 && len(slots) != want) {
			t.Fatalf("%d×%d want=%d: carved %d slots without error", w, h, want, len(slots))
		}
		if len(slots)*slotTiles > p.Tiles() {
			t.Fatalf("%d×%d: %d slots exceed %d tiles", w, h, len(slots), p.Tiles())
		}
		used := map[int]int{}
		for si, pl := range slots {
			slotInvariants(t, p, si, pl, used)
		}
		again, err := carveFabric(p, want)
		if err != nil || len(again) != len(slots) {
			t.Fatalf("%d×%d want=%d: carve not deterministic (%v)", w, h, want, err)
		}
		for si := range slots {
			if slots[si].exec != again[si].exec || slots[si].sys != again[si].sys {
				t.Fatalf("%d×%d want=%d: slot %d differs between carves", w, h, want, si)
			}
		}
	})
}
