package core

import (
	"testing"

	"tilevm/internal/raw"
)

// slotInvariants checks one carved slot's structural contract: every
// role present exactly once, all tiles in bounds, and the execution
// tile Manhattan-adjacent to its manager, MMU, and L1.5 bank (the
// layout constraint that keeps the hot dispatch round trips to
// single-hop messages).
func slotInvariants(t *testing.T, p raw.Params, si int, pl placement, used map[int]int) {
	t.Helper()
	// Role-count contract: exactly one L1.5 bank, at least one
	// translation slave and one data bank (the planner varies the
	// split and the totals, the fixed carver always yields 2+1).
	if len(pl.l15) != 1 || len(pl.slaves) < 1 || len(pl.banks) < 1 {
		t.Fatalf("slot %d role counts wrong: %+v", si, pl)
	}
	tiles := pl.tiles()
	if len(tiles) < slotTiles {
		t.Fatalf("slot %d has only %d tiles, minimum is %d", si, len(tiles), slotTiles)
	}
	for _, tile := range tiles {
		if tile < 0 || tile >= p.Tiles() {
			t.Fatalf("slot %d tile %d out of bounds on %d×%d", si, tile, p.Width, p.Height)
		}
		if prev, clash := used[tile]; clash {
			t.Fatalf("tile %d claimed by slots %d and %d", tile, prev, si)
		}
		used[tile] = si
	}
	adjacent := func(a, b int) bool {
		ax, ay := p.XY(a)
		bx, by := p.XY(b)
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx+dy == 1
	}
	for _, n := range []struct {
		name string
		tile int
	}{{"manager", pl.manager}, {"mmu", pl.mmu}, {"l15", pl.l15[0]}} {
		if !adjacent(pl.exec, n.tile) {
			t.Errorf("slot %d: exec tile %d not adjacent to %s tile %d", si, pl.exec, n.name, n.tile)
		}
	}
}

// FuzzCarveFabric throws arbitrary fabric shapes and slot demands at
// the carver: any input must yield either an error or a set of
// disjoint, in-bounds, role-complete, adjacency-correct slots — never
// a panic — and carving must be deterministic.
//
//	go test ./internal/core -run - -fuzz FuzzCarveFabric -fuzztime 30s
func FuzzCarveFabric(f *testing.F) {
	f.Add(4, 4, 0)
	f.Add(4, 4, 2)
	f.Add(8, 8, 8)
	f.Add(2, 4, 1)
	f.Add(5, 3, 0)
	f.Add(1, 1, 1)
	f.Add(0, -3, 0)
	f.Add(257, 4, 1)
	f.Add(16, 16, 33)
	f.Fuzz(func(t *testing.T, w, h, want int) {
		p := raw.DefaultParams()
		p.Width, p.Height = w, h
		slots, err := carveFabric(p, want)
		if err != nil {
			if len(slots) != 0 {
				t.Fatalf("%d×%d want=%d: error %v alongside %d slots", w, h, want, err, len(slots))
			}
			return
		}
		if len(slots) == 0 || (want > 0 && len(slots) != want) {
			t.Fatalf("%d×%d want=%d: carved %d slots without error", w, h, want, len(slots))
		}
		total := 0
		for si := range slots {
			total += len(slots[si].tiles())
		}
		if total > p.Tiles() {
			t.Fatalf("%d×%d: %d slots occupy %d tiles, fabric has %d", w, h, len(slots), total, p.Tiles())
		}
		used := map[int]int{}
		for si, pl := range slots {
			slotInvariants(t, p, si, pl, used)
		}
		again, err := carveFabric(p, want)
		if err != nil || len(again) != len(slots) {
			t.Fatalf("%d×%d want=%d: carve not deterministic (%v)", w, h, want, err)
		}
		for si := range slots {
			if slots[si].exec != again[si].exec || slots[si].sys != again[si].sys {
				t.Fatalf("%d×%d want=%d: slot %d differs between carves", w, h, want, si)
			}
		}
	})
}

// FuzzPlanFabric drives the cost-model planner with arbitrary fabric
// shapes, slot demands, and guest profile mixes: every outcome must be
// a structured error or a set of disjoint, in-bounds, role-complete,
// adjacency-correct slots — never a panic — and planning must be
// deterministic for a fixed (fabric, profiles, want) triple.
//
//	go test ./internal/core -run - -fuzz FuzzPlanFabric -fuzztime 30s
func FuzzPlanFabric(f *testing.F) {
	f.Add(4, 4, 2, int64(0))
	f.Add(8, 8, 8, int64(1))
	f.Add(8, 8, 4, int64(2))
	f.Add(16, 16, 33, int64(3))
	f.Add(1, 1, 1, int64(4))
	f.Add(0, -3, 1, int64(5))
	f.Add(257, 4, 1, int64(6))
	f.Add(6, 2, 3, int64(7))
	f.Fuzz(func(t *testing.T, w, h, want int, mix int64) {
		p := raw.DefaultParams()
		p.Width, p.Height = w, h
		var profiles []GuestProfile
		if want > 0 && want <= 1024 {
			profiles = make([]GuestProfile, want)
			for i := range profiles {
				// Deterministic per-index weight mix from the fuzzed seed:
				// spans translation-heavy, memory-heavy, and zero profiles.
				v := (mix >> (uint(i%16) * 4)) & 0xf
				profiles[i] = GuestProfile{
					TransWeight: float64(v),
					MemWeight:   float64(15 - v),
				}
			}
		}
		slots, err := planFabric(p, profiles, want)
		if err != nil {
			if len(slots) != 0 {
				t.Fatalf("%d×%d want=%d: error %v alongside %d slots", w, h, want, err, len(slots))
			}
			return
		}
		if want > 0 && len(slots) != want {
			t.Fatalf("%d×%d want=%d: planned %d slots without error", w, h, want, len(slots))
		}
		total := 0
		used := map[int]int{}
		for si, pl := range slots {
			total += len(pl.tiles())
			slotInvariants(t, p, si, pl, used)
		}
		if total > p.Tiles() {
			t.Fatalf("%d×%d: %d slots occupy %d tiles, fabric has %d", w, h, len(slots), total, p.Tiles())
		}
		again, err := planFabric(p, profiles, want)
		if err != nil || len(again) != len(slots) {
			t.Fatalf("%d×%d want=%d: plan not deterministic (%v)", w, h, want, err)
		}
		for si := range slots {
			if !placementEqual(slots[si], again[si]) {
				t.Fatalf("%d×%d want=%d: slot %d differs between plans", w, h, want, si)
			}
		}
	})
}

func placementEqual(a, b placement) bool {
	eq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return a.sys == b.sys && a.manager == b.manager && a.exec == b.exec && a.mmu == b.mmu &&
		eq(a.l15, b.l15) && eq(a.slaves, b.slaves) && eq(a.banks, b.banks)
}
