package core

import (
	"fmt"
	"math"

	"tilevm/internal/raw"
	"tilevm/internal/workload"
)

// Cost-model placement planning (ROADMAP: "Placement as search +
// elastic morphing"). The fixed carver hands every guest the same
// 8-tile 4×2 slot with a hardwired 2-slave/1-bank service split; the
// planner instead searches rectangular slot shapes and sizes under a
// per-guest cost model, so memory-bound guests trade translation
// slaves for L2 data banks, translation-bound guests do the opposite,
// and an undersubscribed fabric grows every slot instead of leaving
// tiles idle. The search is deterministic: same fabric, same guests,
// same profiles → byte-identical carve.

// GuestProfile is the planner's per-guest cost model: the relative
// demand a guest puts on the two elastic service roles. TransWeight
// prices translation-slave bandwidth (code footprint: more functions
// and blocks mean more translation work); MemWeight prices L2
// data-bank capacity and bandwidth (data footprint and access
// intensity). Only the ratio matters. The zero value selects
// defaultGuestProfile.
type GuestProfile struct {
	TransWeight float64
	MemWeight   float64
}

// defaultGuestProfile reproduces the fixed carver's 2-slave/1-bank
// split on an 8-tile slot: with three flexible cells, minimizing
// 2/S + 1/(3−S) lands on S = 2 slaves.
func defaultGuestProfile() GuestProfile {
	return GuestProfile{TransWeight: 2, MemWeight: 1}
}

// zero reports whether the profile is unset (falls back to default).
func (gp GuestProfile) zero() bool {
	return gp.TransWeight == 0 && gp.MemWeight == 0
}

// ProfileFromWorkload derives a cost-model profile from a synthetic
// workload's static parameters — the "fed from workload profiles"
// source; callers with prior-run metrics can construct a GuestProfile
// directly instead. TransWeight scales with the code footprint the
// slaves must translate; MemWeight scales with the data footprint the
// banks must hold, weighted up for access intensity and for
// pointer-chasing (each hop is a dependent L2 round trip, so bank
// count is the paper's Figure 10 lever for those guests). Calibrated
// so 181.mcf (96KB pointer chase overflowing one 32KB bank) classifies
// memory-bound while the code-heavy SpecInt profiles stay
// translation-bound.
func ProfileFromWorkload(p workload.Profile) GuestProfile {
	trans := float64(p.Funcs) * float64(p.BlocksPerFunc) * float64(p.InstsPerBlock)
	mem := float64(p.DataBytes) / 256 * (1 + p.MemFrac)
	if p.PointerChase {
		mem *= 2
	}
	gp := GuestProfile{TransWeight: trans, MemWeight: mem}
	if gp.zero() {
		return defaultGuestProfile()
	}
	return gp
}

// slotShapes is the planner's shape menu, largest first. Every shape
// is at least 3 wide and 2 high in canonical orientation, so the five
// fixed service roles always fit with the execution tile adjacent to
// its manager, MMU, and L1.5 bank. The menu ends with the fixed
// carver's 4×2 base shape, which guarantees the planner can always
// fall back to the fixed carve's capacity.
var slotShapes = []struct{ w, h int }{
	{4, 4}, // 16 tiles: undersubscribed fabrics
	{4, 3}, // 12 tiles
	{3, 3}, // 9 tiles
	{4, 2}, // 8 tiles: the fixed carver's shape
}

// splitRoles picks the slave count for a slot with cells flexible
// tiles by minimizing the cost model TransWeight/S + MemWeight/(cells−S):
// each role's service latency shrinks inversely with the tiles backing
// it, so the optimum balances the guest's two demands. At least one
// slave and one bank always survive. Ties break toward fewer slaves
// (ascending scan, strict improvement) so the split is deterministic.
func splitRoles(cells int, gp GuestProfile) int {
	if gp.zero() {
		gp = defaultGuestProfile()
	}
	best, bestCost := 1, math.Inf(1)
	for s := 1; s <= cells-1; s++ {
		cost := gp.TransWeight/float64(s) + gp.MemWeight/float64(cells-s)
		if cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// planSlotAt builds the placement for a w×h slot anchored at (x0,y0),
// with the slave/bank split chosen by the guest's profile. The five
// fixed roles occupy the same canonical cells as the fixed carver —
// sys (0,0), L1.5 (1,0), manager (0,1), exec (1,1), MMU (2,1) — so the
// exec tile's adjacency constraint holds for every menu shape; the
// remaining cells are flexible, enumerated row-major, first S to
// slaves and the rest to banks. On a 4×2 with the default profile this
// reproduces slotAt bit for bit.
func planSlotAt(p raw.Params, x0, y0, w, h int, gp GuestProfile) placement {
	cw, ch := w, h
	horiz := true
	if cw < ch {
		cw, ch = ch, cw
		horiz = false
	}
	t := func(dx, dy int) int {
		if !horiz {
			dx, dy = dy, dx
		}
		return p.TileAt(x0+dx, y0+dy)
	}
	var flex []int
	for x := 2; x < cw; x++ {
		flex = append(flex, t(x, 0))
	}
	for x := 3; x < cw; x++ {
		flex = append(flex, t(x, 1))
	}
	for y := 2; y < ch; y++ {
		for x := 0; x < cw; x++ {
			flex = append(flex, t(x, y))
		}
	}
	s := splitRoles(len(flex), gp)
	return placement{
		sys:     t(0, 0),
		l15:     []int{t(1, 0)},
		manager: t(0, 1),
		exec:    t(1, 1),
		mmu:     t(2, 1),
		slaves:  append([]int(nil), flex[:s]...),
		banks:   append([]int(nil), flex[s:]...),
		// No switchable tiles: fleet slots morph at whole-tile
		// granularity through the elastic donate/reclaim protocol, not
		// the intra-VM controller.
		switchIsBank: map[int]bool{},
	}
}

// planFabric carves exactly want slots, sized to the fabric: each slot
// gets an area budget of Tiles()/want and the largest menu shape
// within it, degrading shape tier by tier until the carve fits. The
// final tier is the fixed 4×2/2×4 carve, so planFabric succeeds
// whenever carveFabric would have (the caller derives want from the
// fixed carve's capacity). profiles[i] shapes slot i's slave/bank
// split (initial admission binds guest i to slot i); missing or zero
// entries take the default profile.
func planFabric(p raw.Params, profiles []GuestProfile, want int) ([]placement, error) {
	if p.Width < 2 || p.Height < 2 {
		return nil, fmt.Errorf("core: %d×%d fabric cannot host a VM slot (minimum slot is 4×2 tiles)", p.Width, p.Height)
	}
	if p.Width > maxFabricDim || p.Height > maxFabricDim {
		return nil, fmt.Errorf("core: %d×%d fabric exceeds the %d×%d carving limit", p.Width, p.Height, maxFabricDim, maxFabricDim)
	}
	if want < 1 {
		return nil, fmt.Errorf("core: planner asked for %d slots", want)
	}
	budget := p.Tiles() / want
	if budget < slotTiles {
		budget = slotTiles
	}
	first := len(slotShapes) - 1
	for si := 0; si < len(slotShapes); si++ {
		if slotShapes[si].w*slotShapes[si].h <= budget {
			first = si
			break
		}
	}
	var lastErr error
	for maxShape := first; maxShape < len(slotShapes); maxShape++ {
		slots, err := tryPlan(p, profiles, want, maxShape)
		if err == nil {
			return slots, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// tryPlan attempts one carve with shapes from slotShapes[maxShape:]:
// a row-major greedy scan that claims, at each free anchor, the
// largest allowed shape that fits (trying each shape's canonical
// orientation before its transpose, like the fixed carver). Fails with
// a NoFitError when fewer than want slots fit.
func tryPlan(p raw.Params, profiles []GuestProfile, want, maxShape int) ([]placement, error) {
	occ := make([]int, p.Tiles())
	for i := range occ {
		occ[i] = -1
	}
	fits := func(x0, y0, w, h int) bool {
		if x0+w > p.Width || y0+h > p.Height {
			return false
		}
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				if occ[p.TileAt(x0+dx, y0+dy)] >= 0 {
					return false
				}
			}
		}
		return true
	}
	claim := func(x0, y0, w, h, si int) {
		for dy := 0; dy < h; dy++ {
			for dx := 0; dx < w; dx++ {
				occ[p.TileAt(x0+dx, y0+dy)] = si
			}
		}
	}
	profileFor := func(i int) GuestProfile {
		if i < len(profiles) {
			return profiles[i]
		}
		return GuestProfile{}
	}
	var slots []placement
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			if len(slots) == want {
				return slots, nil
			}
			for si := maxShape; si < len(slotShapes); si++ {
				s := slotShapes[si]
				placed := false
				for _, o := range [2][2]int{{s.w, s.h}, {s.h, s.w}} {
					if fits(x, y, o[0], o[1]) {
						claim(x, y, o[0], o[1], len(slots))
						slots = append(slots, planSlotAt(p, x, y, o[0], o[1], profileFor(len(slots))))
						placed = true
						break
					}
				}
				if placed {
					break
				}
			}
		}
	}
	if len(slots) < want {
		base := slotShapes[len(slotShapes)-1]
		return nil, &NoFitError{
			Want: want, Placed: len(slots),
			SlotW: base.w, SlotH: base.h,
			Width: p.Width, Height: p.Height,
			Occupied: occ,
		}
	}
	return slots, nil
}
