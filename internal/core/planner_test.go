package core

import (
	"reflect"
	"strings"
	"testing"

	"tilevm/internal/raw"
	"tilevm/internal/workload"
)

func plannerParams(w, h int) raw.Params {
	p := raw.DefaultParams()
	p.Width, p.Height = w, h
	return p
}

// With no profiles and a fully subscribed fabric the planner's budget
// collapses to the 4×2 base shape and the default profile reproduces
// the fixed carver bit for bit — the compatibility anchor the
// invariance battery builds on.
func TestPlanFabricMatchesCarveAtFullSubscription(t *testing.T) {
	for _, g := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {2, 8}, {6, 4}} {
		p := plannerParams(g[0], g[1])
		fixed, err := carveFabric(p, 0)
		if err != nil {
			t.Fatalf("%dx%d carveFabric: %v", g[0], g[1], err)
		}
		planned, err := planFabric(p, nil, len(fixed))
		if err != nil {
			t.Fatalf("%dx%d planFabric: %v", g[0], g[1], err)
		}
		if !reflect.DeepEqual(planned, fixed) {
			t.Fatalf("%dx%d: planner full-subscription carve diverges from fixed\nplanned: %+v\nfixed:   %+v",
				g[0], g[1], planned, fixed)
		}
	}
}

// An undersubscribed fabric grows every slot: 4 guests on 8×8 should
// get four 4×4 slots covering the whole fabric, not four 4×2 slots
// plus 32 idle tiles.
func TestPlanFabricGrowsUndersubscribedSlots(t *testing.T) {
	p := plannerParams(8, 8)
	slots, err := planFabric(p, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 4 {
		t.Fatalf("got %d slots, want 4", len(slots))
	}
	covered := map[int]bool{}
	for si := range slots {
		ts := slots[si].tiles()
		if len(ts) != 16 {
			t.Fatalf("slot %d has %d tiles, want 16 (4×4)", si, len(ts))
		}
		for _, tile := range ts {
			if covered[tile] {
				t.Fatalf("tile %d claimed twice", tile)
			}
			covered[tile] = true
		}
	}
	if len(covered) != p.Tiles() {
		t.Fatalf("covered %d of %d tiles", len(covered), p.Tiles())
	}
}

// The cost model splits roles per guest: a memory-bound profile (mcf's
// oversized pointer-chase working set) trades a translation slave for
// a second data bank, while a translation-bound profile (gcc's huge
// code footprint) keeps slaves.
func TestPlannerRoleSplitFollowsProfile(t *testing.T) {
	mcfProf, ok := workload.ByName("181.mcf")
	if !ok {
		t.Fatal("181.mcf profile missing")
	}
	gccProf, ok := workload.ByName("176.gcc")
	if !ok {
		t.Fatal("176.gcc profile missing")
	}
	mcf := ProfileFromWorkload(mcfProf)
	gcc := ProfileFromWorkload(gccProf)
	if mcf.MemWeight <= mcf.TransWeight {
		t.Fatalf("181.mcf should classify memory-bound: %+v", mcf)
	}
	if gcc.TransWeight <= gcc.MemWeight {
		t.Fatalf("176.gcc should classify translation-bound: %+v", gcc)
	}

	p := plannerParams(4, 4)
	slots, err := planFabric(p, []GuestProfile{mcf, gcc}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(slots[0].slaves); got != 1 {
		t.Fatalf("mcf slot: %d slaves, want 1 (banks %d)", got, len(slots[0].banks))
	}
	if got := len(slots[0].banks); got != 2 {
		t.Fatalf("mcf slot: %d banks, want 2", got)
	}
	if got := len(slots[1].slaves); got != 2 {
		t.Fatalf("gcc slot: %d slaves, want 2 (banks %d)", got, len(slots[1].banks))
	}
	// Same fabric, heterogeneous slots: geometry identical to the fixed
	// carve, only the flexible-role assignment differs.
	fixed, err := carveFabric(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for si := range slots {
		got := append([]int(nil), slots[si].tiles()...)
		want := append([]int(nil), fixed[si].tiles()...)
		sortInts(got)
		sortInts(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("slot %d occupies different tiles than the fixed carve: %v vs %v", si, got, want)
		}
	}
}

// Every planned slot keeps the invariants the fixed carver guarantees:
// the five fixed roles, exactly one L1.5 bank, at least one slave and
// one bank, and the exec tile adjacent to manager, MMU, and L1.5.
func TestPlanSlotAtLayoutInvariants(t *testing.T) {
	p := plannerParams(16, 16)
	for _, s := range slotShapes {
		for _, horiz := range []bool{true, false} {
			w, h := s.w, s.h
			if !horiz {
				w, h = h, w
			}
			for _, gp := range []GuestProfile{{}, {TransWeight: 1, MemWeight: 10}, {TransWeight: 10, MemWeight: 1}} {
				pl := planSlotAt(p, 0, 0, w, h, gp)
				slotInvariants(t, p, 0, pl, map[int]int{})
				if got := len(pl.tiles()); got != s.w*s.h {
					t.Fatalf("%dx%d: %d tiles, want %d", w, h, got, s.w*s.h)
				}
			}
		}
	}
}

func TestSplitRolesBounds(t *testing.T) {
	for cells := 2; cells <= 12; cells++ {
		for _, gp := range []GuestProfile{{}, {TransWeight: 1e9, MemWeight: 1}, {TransWeight: 1, MemWeight: 1e9}} {
			s := splitRoles(cells, gp)
			if s < 1 || s > cells-1 {
				t.Fatalf("cells=%d profile=%+v: split %d out of bounds", cells, gp, s)
			}
		}
	}
	// Default profile on 3 flexible cells reproduces the fixed
	// 2-slave/1-bank split.
	if s := splitRoles(3, GuestProfile{}); s != 2 {
		t.Fatalf("default split on 3 cells = %d, want 2", s)
	}
}

// The cannot-fit error must name the requested shape, the fabric
// dimensions, and the occupied-slot map, so placement failures are
// debuggable from the message alone.
func TestNoFitErrorIsStructured(t *testing.T) {
	p := plannerParams(6, 2) // fits exactly one 4×2 slot
	_, err := carveFabric(p, 3)
	if err == nil {
		t.Fatal("expected carve failure")
	}
	var nf *NoFitError
	if !asNoFit(err, &nf) {
		t.Fatalf("want *NoFitError, got %T: %v", err, err)
	}
	if nf.Want != 3 || nf.Placed != 1 || nf.Width != 6 || nf.Height != 2 || nf.SlotW != 4 || nf.SlotH != 2 {
		t.Fatalf("unexpected fields: %+v", nf)
	}
	if len(nf.Occupied) != p.Tiles() {
		t.Fatalf("occupancy map has %d entries, want %d", len(nf.Occupied), p.Tiles())
	}
	msg := err.Error()
	for _, want := range []string{
		"3 VM slots requested", // requested count
		"6×2 fabric",           // fabric dimensions
		"fits only 1",          // what actually fit (substring pinned by fleet tests)
		"4×2",                  // shape tried
		"0000..\n  0000..",     // occupancy map: slot 0's 4×2 then two free columns
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}

	// planFabric reports the same structured error.
	_, err = planFabric(p, nil, 3)
	if !asNoFit(err, &nf) {
		t.Fatalf("planFabric: want *NoFitError, got %T: %v", err, err)
	}
	if nf.Want != 3 || nf.Placed != 1 {
		t.Fatalf("planFabric fields: %+v", nf)
	}
}

// planFabric falls back shape tier by shape tier: when the largest
// affordable shape cannot yield the requested slot count, it retries
// with smaller shapes rather than failing.
func TestPlanFabricShapeFallback(t *testing.T) {
	// 6 guests on 8×8: budget 10 selects the 3×3 tier, but a row-major
	// 3×3 carve of an 8×8 wastes edge columns; the carve still must
	// produce all 6 slots (worst case via the 4×2 base tier).
	p := plannerParams(8, 8)
	slots, err := planFabric(p, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 6 {
		t.Fatalf("got %d slots, want 6", len(slots))
	}
	seen := map[int]bool{}
	for si := range slots {
		for _, tile := range slots[si].tiles() {
			if seen[tile] {
				t.Fatalf("tile %d claimed twice", tile)
			}
			seen[tile] = true
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func asNoFit(err error, target **NoFitError) bool {
	nf, ok := err.(*NoFitError)
	if ok {
		*target = nf
	}
	return ok
}
