package core

import "testing"

// qState builds a bare managerState sufficient for queue-policy tests
// (no tile context needed: push/pop/queuedLen touch only bookkeeping).
func qState() *managerState {
	return &managerState{
		e:          &engine{cfg: DefaultConfig()},
		entries:    map[uint32]*qEntry{},
		waiters:    map[uint32][]waiter{},
		roles:      map[int]roleKind{},
		specStored: map[uint32]bool{},
	}
}

func TestQueuePriorityOrdering(t *testing.T) {
	st := qState()
	st.push(0x300, 3)
	st.push(0x100, 1)
	st.push(0x200, 2)
	st.push(0x000, 0) // demand
	want := []uint32{0x000, 0x100, 0x200, 0x300}
	for _, w := range want {
		pc, _, ok := st.pop()
		if !ok || pc != w {
			t.Fatalf("pop = %#x,%v, want %#x", pc, ok, w)
		}
	}
	if _, _, ok := st.pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestQueueDedupAndBoost(t *testing.T) {
	st := qState()
	st.push(0xA, 5)
	st.push(0xA, 7) // worse priority: ignored
	if n := st.queuedLen(); n != 1 {
		t.Fatalf("queuedLen = %d, want 1", n)
	}
	st.push(0xA, 2) // better: re-files
	pc, depth, ok := st.pop()
	if !ok || pc != 0xA || depth != 2 {
		t.Fatalf("pop = %#x depth %d, want 0xA depth 2", pc, depth)
	}
	// The stale depth-5 entry must not resurface.
	if _, _, ok := st.pop(); ok {
		t.Error("stale entry popped")
	}
}

func TestQueueSkipsDoneAndInflight(t *testing.T) {
	st := qState()
	st.push(0xB, 1)
	st.entry(0xB).done = true
	if _, _, ok := st.pop(); ok {
		t.Error("done entry popped")
	}
	st.entries = map[uint32]*qEntry{}
	st.push(0xC, 1)
	st.entry(0xC).inflight = true
	if _, _, ok := st.pop(); ok {
		t.Error("inflight entry popped")
	}
	// And push refuses to re-queue them.
	st.push(0xC, 0)
	if st.queuedLen() != 0 {
		t.Error("inflight entry re-queued")
	}
}

func TestQueueDepthClamping(t *testing.T) {
	st := qState()
	st.push(0xD, 500)
	_, depth, ok := st.pop()
	if !ok || depth != maxSpecDepth+1 {
		t.Errorf("depth = %d, want clamp at %d", depth, maxSpecDepth+1)
	}
}

func TestQueueFIFOSpecAblation(t *testing.T) {
	st := qState()
	st.e.cfg.FIFOSpec = true
	st.push(0x1, 6)
	st.push(0x2, 3)
	st.push(0x3, 8)
	// All speculative work collapses to one FIFO bucket: pop order is
	// push order.
	for _, want := range []uint32{1, 2, 3} {
		pc, depth, ok := st.pop()
		if !ok || pc != want || depth != 1 {
			t.Fatalf("pop = %#x depth %d, want %#x depth 1", pc, depth, want)
		}
	}
	// Demand still preempts.
	st.push(0x4, 5)
	st.push(0x5, 0)
	pc, _, _ := st.pop()
	if pc != 0x5 {
		t.Errorf("demand did not preempt FIFO: got %#x", pc)
	}
}
