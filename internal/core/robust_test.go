package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// Robustness-boundary tests: a panicking tile kernel must surface as a
// structured *InternalError (never crash the host), and a host-side
// interrupt must stop a run promptly with an error satisfying
// Interrupted. Both paths use only deterministic triggers —
// Config.PanicAtDispatch and a pre-armed InterruptHandle — so every
// assertion is exact.

func TestRunPanicBecomesInternalError(t *testing.T) {
	img := fleetImgs(t, "164.gzip")[0]
	cfg := DefaultConfig()
	cfg.PanicAtDispatch = 50

	res, err := Run(img, cfg)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InternalError", err)
	}
	if ie.Guest != 0 || ie.Slot != 0 {
		t.Errorf("attribution = guest %d slot %d, want 0/0", ie.Guest, ie.Slot)
	}
	if !strings.Contains(ie.Value, "injected test panic") {
		t.Errorf("Value = %q, want the injected panic message", ie.Value)
	}
	if ie.Stack == "" {
		t.Error("InternalError carries no stack trace")
	}
	if ie.Proc == "" {
		t.Error("InternalError names no simulation process")
	}
	if res == nil {
		t.Error("panic discarded the partial result")
	}
}

func TestFleetPanicBecomesInternalError(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf")
	cfg := fleetCfg(4, 4)
	cfg.PanicAtDispatch = 50

	run := func() (*FleetResult, *InternalError) {
		res, err := RunFleet(imgs, cfg, FleetConfig{})
		var ie *InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("err = %v, want *InternalError", err)
		}
		return res, ie
	}
	res, ie := run()
	if ie.Guest < 0 || ie.Guest >= len(imgs) || ie.Slot < 0 {
		t.Fatalf("panic unattributed: guest %d slot %d", ie.Guest, ie.Slot)
	}
	if ie.Stack == "" || !strings.Contains(ie.Value, "injected test panic") {
		t.Errorf("InternalError incomplete: value %q, stack %d bytes",
			ie.Value, len(ie.Stack))
	}
	if res == nil {
		t.Fatal("panic discarded the partial fleet result")
	}
	victim := res.Guests[ie.Guest]
	if victim.Status != GuestInternalError {
		t.Errorf("victim guest %d status = %v, want %v",
			ie.Guest, victim.Status, GuestInternalError)
	}
	var verr *InternalError
	if !errors.As(victim.Err, &verr) || verr != ie {
		t.Errorf("victim Err = %v, want the returned InternalError", victim.Err)
	}
	if GuestInternalError.String() != "internal-error" {
		t.Errorf("GuestInternalError.String() = %q", GuestInternalError.String())
	}

	// The containment path is as deterministic as the fault-free run:
	// same victim, same cycle, same results.
	res2, ie2 := run()
	if ie2.Guest != ie.Guest || ie2.Slot != ie.Slot || ie2.Cycle != ie.Cycle {
		t.Errorf("panic attribution not deterministic: %d/%d@%d vs %d/%d@%d",
			ie.Guest, ie.Slot, ie.Cycle, ie2.Guest, ie2.Slot, ie2.Cycle)
	}
	// Stack traces embed goroutine addresses, so compare the results
	// with the victim's error blanked on both sides.
	res.Guests[ie.Guest].Err, res2.Guests[ie2.Guest].Err = nil, nil
	if !reflect.DeepEqual(res, res2) {
		t.Error("partial fleet results differ across identical panicking runs")
	}
}

func TestRunInterruptPreArmed(t *testing.T) {
	img := fleetImgs(t, "164.gzip")[0]
	cfg := DefaultConfig()
	cfg.Interrupt = NewInterruptHandle()
	// Interrupting before the run starts must cancel it at its first
	// event — the cancel-before-run race a wall-clock timeout can hit.
	cfg.Interrupt.Interrupt()

	res, err := Run(img, cfg)
	if !Interrupted(err) {
		t.Fatalf("err = %v, want an interrupted error", err)
	}
	if res == nil {
		t.Error("interrupt discarded the partial result")
	} else if res.Cycles != 0 {
		t.Errorf("pre-armed interrupt ran %d cycles, want 0", res.Cycles)
	}
}

func TestFleetInterruptPreArmed(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf")
	cfg := fleetCfg(4, 4)
	cfg.Interrupt = NewInterruptHandle()
	cfg.Interrupt.Interrupt()

	res, err := RunFleet(imgs, cfg, FleetConfig{})
	if !Interrupted(err) {
		t.Fatalf("err = %v, want an interrupted error", err)
	}
	if res == nil {
		t.Fatal("interrupt discarded the partial fleet result")
	}
	for gi, g := range res.Guests {
		if g.Status == GuestFinished {
			t.Errorf("guest %d finished under a pre-armed interrupt", gi)
		}
	}
}

func TestInterruptHandleNilSafe(t *testing.T) {
	var h *InterruptHandle
	h.Interrupt() // must not panic
	h.bind(nil)
	if Interrupted(nil) {
		t.Error("Interrupted(nil) = true")
	}
	if Interrupted(errors.New("other")) {
		t.Error("Interrupted reports true for an unrelated error")
	}
}
