package core

import (
	"sort"

	"tilevm/internal/checkpoint"
	"tilevm/internal/codecache"
	"tilevm/internal/raw"
	"tilevm/internal/translate"
)

// capture assembles a whole-machine snapshot. It runs on the execution
// tile at a dispatch boundary — the one point in the protocol where the
// guest has no memory request outstanding — and charges no virtual
// cycles: checkpointing must not distort cycle accounting, so the
// modeled cost is charged at restore time instead. The caller has
// already stored the live register file and PC into e.proc.CPU.
//
// Every map walked here is iterated in sorted order so that the
// snapshot (and anything downstream of it: the encoded bytes, the
// journal, a replay) is deterministic.
func (e *engine) capture(c *raw.TileCtx, l1 *codecache.L1, env *execEnv) {
	mgr := e.mgr
	s := &checkpoint.State{
		CPU:  e.proc.CPU,
		Kern: e.proc.Kern.Export(),
		MMU:  e.mmuLive.Export(),
		DL1:  env.dl1.Export(),
		L1: checkpoint.CodeL1State{
			PCs:     l1.EntryPCs(),
			Lookups: l1.Lookups,
			Hits:    l1.Hits,
			Flushes: l1.Flushes,
			Chains:  l1.Chains,
		},
		L2C: checkpoint.CodeL2State{
			PCs:      mgr.l2.OrderedPCs(),
			Accesses: mgr.l2.Accesses,
			Misses:   mgr.l2.Misses,
			Stores:   mgr.l2.Stores,
		},
	}

	// Pending translations: the live priority buckets, then work that is
	// in flight to a slave (the restored machine has fresh slaves, so
	// in-flight work must re-queue at its original depth).
	for d := range mgr.buckets {
		for _, pc := range mgr.buckets[d] {
			en := mgr.entry(pc)
			if en.queued && en.depth == d && !en.inflight && !en.done && !en.bad {
				s.Queues = append(s.Queues, checkpoint.QueuedPC{PC: pc, Depth: int32(d)})
			}
		}
	}
	for _, t := range sortedKeys(mgr.outstanding) {
		ow := mgr.outstanding[t]
		s.Queues = append(s.Queues, checkpoint.QueuedPC{PC: ow.pc, Depth: int32(ow.depth)})
	}

	s.Spec = sortedU32map(mgr.specStored)
	for pc, en := range mgr.entries {
		if en.bad {
			s.Bad = append(s.Bad, pc)
		}
	}
	sort.Slice(s.Bad, func(i, j int) bool { return s.Bad[i] < s.Bad[j] })

	for _, t := range sortedKeys(e.bankOf) {
		b := e.bankOf[t]
		s.Banks = append(s.Banks, checkpoint.BankState{
			Tile:      int32(t),
			Cache:     b.Cache.Export(),
			Requests:  b.Requests,
			Misses:    b.Misses,
			Flushes:   b.Flushes,
			Writeback: b.Writeback,
		})
	}

	s.SMC = checkpoint.SMCState{Gen: e.smcGen, CodePages: sortedU32map(e.codePages)}
	for _, pg := range sortedU32map(e.pageInval) {
		s.SMC.Inval = append(s.SMC.Inval, checkpoint.PageInval{Page: pg, Gen: e.pageInval[pg]})
	}

	if e.cfg.Tier0 {
		// Record which L2 entries are template-tier so the restore's
		// re-translation reproduces each block's tier (a promotion in
		// flight still has the tier-0 block installed, so its tier flag
		// is still TierTemplate). Hotness counters are clamped below
		// the threshold for blocks whose promotion request already
		// fired: promoSent itself is not captured, so the restored run
		// re-arms and re-fires the promotion deterministically.
		for pc, en := range mgr.entries {
			if en.tier == translate.TierTemplate && mgr.l2.Contains(pc) {
				s.Tier0PCs = append(s.Tier0PCs, pc)
			}
		}
		sort.Slice(s.Tier0PCs, func(i, j int) bool { return s.Tier0PCs[i] < s.Tier0PCs[j] })
		thr := e.tierUpThreshold()
		for _, pc := range sortedU32map(e.hot) {
			n := e.hot[pc]
			if e.promoSent[pc] && n >= thr {
				n = thr - 1
			}
			s.Hot = append(s.Hot, checkpoint.HotPC{PC: pc, Insts: n})
		}
	}

	e.stats.Checkpoints++
	s.Metrics = e.stats
	if e.inj != nil {
		s.Faults = e.inj.Counts()
	}
	e.ck.Capture(s, e.proc.Mem, c.Now())
	e.jadd(checkpoint.EvCheckpoint, c.Now(), s.Seq, uint64(len(s.Mem.Pages)))
	e.trc().Instant(c.Tile, "checkpoint", c.Now(), "seq", s.Seq, "pages", uint64(len(s.Mem.Pages)))
}

// applyRestore seeds a fresh engine from a snapshot, before any tile
// kernel runs: the guest-visible machine directly, and the code caches
// generatively — translation is a pure function of the (restored) guest
// memory, so re-translating each recorded PC reproduces the cache
// contents without snapshotting host code bytes.
func (e *engine) applyRestore(s *checkpoint.State) {
	e.proc.Mem.Restore(s.Mem)
	e.proc.CPU = s.CPU
	e.proc.Kern.RestoreState(s.Kern)
	e.stats = s.Metrics

	e.smcGen = s.SMC.Gen
	for _, pg := range s.SMC.CodePages {
		e.codePages[pg] = true
	}
	for _, pi := range s.SMC.Inval {
		e.pageInval[pi.Page] = pi.Gen
	}

	e.restoreBlocks = map[uint32]*translate.Result{}
	tier0 := make(map[uint32]bool, len(s.Tier0PCs))
	for _, pc := range s.Tier0PCs {
		tier0[pc] = true
	}
	for _, pc := range s.L2C.PCs {
		e.retranslate(pc, tier0[pc])
	}
	for _, pc := range s.L1.PCs {
		e.retranslate(pc, tier0[pc])
	}
	for _, h := range s.Hot {
		e.hot[h.PC] = h.Insts
	}
	for pc, res := range e.restoreBlocks {
		if res != nil && res.Tier == translate.TierTemplate {
			e.tier0Blk[pc] = true
		}
	}
}

// retranslate rebuilds one code-cache entry from restored guest memory,
// through the same tier-dispatch helper the slave tiles use so restore
// and the live pipeline can never disagree on which tier produced a
// block. A failure is recorded as a nil block (the entry becomes "bad",
// the same terminal state the live pipeline gives an untranslatable
// PC); it cannot happen for PCs that translated successfully before the
// snapshot, because the memory they were translated from is restored
// bit-identically.
func (e *engine) retranslate(pc uint32, tier0 bool) {
	if _, ok := e.restoreBlocks[pc]; ok {
		return
	}
	res, err := e.tr.TranslateTier(e.proc.Mem, pc, tier0)
	if err != nil {
		res = nil
	}
	e.restoreBlocks[pc] = res
}

// restoreManager rebuilds the manager tile's state from the engine's
// restore snapshot: the L2 code cache (re-inserted in original order so
// capacity behavior reproduces), failed-translation markers, the
// pending-work queues, and the speculative-store set.
func (e *engine) restoreManager(st *managerState) {
	s := e.restore
	for _, pc := range s.L2C.PCs {
		res := e.restoreBlocks[pc]
		en := st.entry(pc)
		if res == nil {
			en.bad = true
			continue
		}
		st.l2.Insert(pc, res)
		en.done = true
		en.tier = res.Tier
		for pg := res.GuestAddr >> 12; pg <= (res.GuestAddr+res.GuestLen-1)>>12; pg++ {
			e.codePages[pg] = true
		}
	}
	st.l2.Accesses = s.L2C.Accesses
	st.l2.Misses = s.L2C.Misses
	st.l2.Stores = s.L2C.Stores
	for _, pc := range s.Bad {
		st.entry(pc).bad = true
	}
	for _, q := range s.Queues {
		st.push(q.PC, int(q.Depth))
	}
	for _, pc := range s.Spec {
		st.specStored[pc] = true
	}
}

// restoreExecCaches rebuilds the execution tile's L1 code cache (by
// re-inserting the recorded PCs in arena order, which also reproduces
// the chain patches) and imports the data-cache tag state. Counters are
// overwritten afterwards so the re-insertion itself leaves no trace.
func (e *engine) restoreExecCaches(l1 *codecache.L1, env *execEnv) {
	s := e.restore
	for _, pc := range s.L1.PCs {
		if res := e.restoreBlocks[pc]; res != nil {
			l1.Insert(pc, res.Code)
		}
	}
	l1.Lookups = s.L1.Lookups
	l1.Hits = s.L1.Hits
	l1.Flushes = s.L1.Flushes
	l1.Chains = s.L1.Chains
	if err := env.dl1.Import(s.DL1); err != nil {
		panic(err) // impossible: cache geometry is fixed by Params
	}
}

// sortedKeys returns a map's int keys in ascending order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sortedU32map returns a map's uint32 keys in ascending order.
func sortedU32map[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
