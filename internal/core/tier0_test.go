package core

import (
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/guest"
)

// Tier-0 battery (ISSUE 9): the IR-less template tier plus
// hotness-driven promotion must change timing only — never the
// architectural outcome — and must make cold start measurably faster.

// tier0Cfg arms the template tier with a low promotion threshold so
// short test workloads exercise the full tier-up protocol. Run-ahead
// speculation is off (the paper's base configuration): tier-0 serves
// demand translations only — speculative work is already off the
// critical path and uses the optimizing tier — so with speculation on,
// few blocks are template-tier and promotion rarely fires.
func tier0Cfg() Config {
	cfg := fleetCfg(4, 4)
	cfg.Speculative = false
	cfg.Tier0 = true
	cfg.TierUpThreshold = 2_000
	return cfg
}

// archOutcome is the guest-visible slice of a Result. Unlike the full
// archFingerprint, host-level counters (HostInsts, dispatches, cache
// traffic) are excluded: tier-0 blocks are shorter-lived and denser in
// dispatches, so those counters legitimately differ across tiers.
type archOutcome struct {
	StateHash uint64
	ExitCode  int32
	Stdout    string
}

func outcome(r *Result) archOutcome {
	return archOutcome{StateHash: r.StateHash, ExitCode: r.ExitCode, Stdout: r.Stdout}
}

// TestTier0PromotionAndInvariance: with tier-0 on, template blocks are
// installed, hot ones are promoted to the optimizing tier, and the
// guest's architectural outcome is bit-identical to a tier-1-only run.
func TestTier0PromotionAndInvariance(t *testing.T) {
	img := fleetImgs(t, "164.gzip")[0]

	base, err := Run(img, fleetCfg(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(img, tier0Cfg())
	if err != nil {
		t.Fatal(err)
	}

	if res.M.Tier0Installs == 0 {
		t.Error("tier-0 enabled but no template blocks installed")
	}
	if res.M.Promotions == 0 {
		t.Error("no hot blocks promoted (threshold 2000 should fire on gzip's inner loops)")
	}
	if res.M.Tier1Installs < res.M.Promotions {
		t.Errorf("Tier1Installs = %d < Promotions = %d (every promotion installs a tier-1 block)",
			res.M.Tier1Installs, res.M.Promotions)
	}
	if got, want := outcome(res), outcome(base); got != want {
		t.Errorf("tier-0 changed the architectural outcome\n got %+v\nwant %+v", got, want)
	}

	// Off by default: the plain config must never touch the tier machinery.
	if base.M.Tier0Installs != 0 || base.M.Promotions != 0 {
		t.Errorf("tier counters nonzero with tier-0 off: %+v", base.M)
	}
}

// TestTier0Determinism: two identical tier-0 runs are bit-identical,
// including cycle counts and every tier counter.
func TestTier0Determinism(t *testing.T) {
	img := fleetImgs(t, "181.mcf")[0]
	run := func() *Result {
		res, err := Run(img, tier0Cfg())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical tier-0 runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.M != b.M {
		t.Errorf("metrics differ across identical tier-0 runs:\n%+v\n%+v", a.M, b.M)
	}
}

// TestTier0WarmupFaster pins the acceptance criterion: arrival → first
// N retired host instructions is measurably faster with the template
// tier than with the optimizing tier alone, both with run-ahead
// speculation (tier-0 covers demand misses) and without it (tier-0
// carries the whole cold path).
func TestTier0WarmupFaster(t *testing.T) {
	img := fleetImgs(t, "164.gzip")[0]
	warm := func(tier0, spec bool) uint64 {
		cfg := fleetCfg(4, 4)
		cfg.Tier0 = tier0
		cfg.Speculative = spec
		cfg.WarmupInsts = 10_000
		res, err := Run(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.M.WarmupCycles == 0 {
			t.Fatalf("warmup probe (tier0=%v spec=%v) never fired", tier0, spec)
		}
		return res.M.WarmupCycles
	}
	for _, spec := range []bool{true, false} {
		t0, opt := warm(true, spec), warm(false, spec)
		if t0 >= opt {
			t.Errorf("spec=%v: tier-0 warmup = %d cycles, optimizing-only = %d; template tier must be faster to first 10k insts",
				spec, t0, opt)
		}
	}
}

// TestFleetInvarianceWithTier0 is the ISSUE's fleet invariance case: a
// guest's StateHash/exit/stdout fingerprint is identical with tier-0
// on vs. off, even hosted in a fleet with slave lending.
func TestFleetInvarianceWithTier0(t *testing.T) {
	imgs := fleetImgs(t, "164.gzip", "181.mcf")

	solo := map[*guest.Image]archOutcome{}
	for _, img := range imgs {
		res, err := Run(img, fleetCfg(4, 4)) // tier-0 OFF
		if err != nil {
			t.Fatal(err)
		}
		solo[img] = outcome(res)
	}

	fr, err := RunFleet(imgs, tier0Cfg(), FleetConfig{Lend: true})
	if err != nil {
		t.Fatal(err)
	}
	promoted := uint64(0)
	for gi, g := range fr.Guests {
		if g.Result == nil {
			t.Fatalf("guest %d never ran", gi)
		}
		if got, want := outcome(g.Result), solo[imgs[gi]]; got != want {
			t.Errorf("guest %d outcome diverged with tier-0 on\n got %+v\nwant %+v", gi, got, want)
		}
		promoted += g.Result.M.Promotions
	}
	if promoted == 0 {
		t.Error("no promotions across the fleet (tier-up never exercised)")
	}
}

// TestTier0RollbackRecovers: kill an L2 bank mid-run with rollback
// recovery armed and tier-0 on. The restore path re-translates tier-0
// blocks as tier-0 (checkpoint Tier0PCs), re-arms pending promotions
// (checkpoint Hot), and still converges to the fault-free outcome.
func TestTier0RollbackRecovers(t *testing.T) {
	img := fleetImgs(t, "181.mcf")[0]

	clean, err := Run(img, tier0Cfg())
	if err != nil {
		t.Fatal(err)
	}

	cfg := tier0Cfg()
	cfg.Recovery = RecoverRollback
	cfg.Fault = &fault.Plan{Fails: []fault.TileFail{
		{Tile: 10, Cycle: 800_000}, // an L2 bank that holds dirty mcf lines by then
	}}
	res, err := Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Rollbacks == 0 {
		t.Fatal("bank kill under rollback recovery recorded no rollback")
	}
	if got, want := outcome(res), outcome(clean); got != want {
		t.Errorf("tier-0 + rollback diverged from fault-free tier-0 run\n got %+v\nwant %+v", got, want)
	}
	if res.M.Tier0Installs == 0 || res.M.Promotions == 0 {
		t.Errorf("tier machinery silent across rollback: %+v", res.M)
	}
}
