package core

import (
	"tilevm/internal/checkpoint"
	"tilevm/internal/codecache"
	"tilevm/internal/dcache"
	"tilevm/internal/mmu"
	"tilevm/internal/raw"
	"tilevm/internal/sim"
	"tilevm/internal/translate"
)

// workerBody returns the kernel for a slave/bank tile. Every worker can
// perform either function (the homogeneity requirement of §2.3);
// reconfig messages switch the role at runtime. A tile that receives a
// memory request while in the slave role (a transient during
// reconfiguration) still services it correctly — the flushed cache just
// misses.
func (e *engine) workerBody(initial roleKind) func(*raw.TileCtx) {
	return func(c *raw.TileCtx) {
		P := e.cfg.Params
		role := initial
		bank := dcache.NewBank(P.L2DBankBytes, P.L2DWays, P.L2DLine)
		if e.robust {
			// Register the bank state so the manager can account lost
			// writebacks if this tile dies, and arm the heartbeat timer.
			e.bankOf[c.Tile] = bank
		}
		nextBeat := c.Now() + P.HeartbeatPeriod
		if role == roleSlave {
			c.Send(e.pl.manager, workReq{}, wordsCtl)
		}
		for {
			var msg sim.Msg
			if e.robust {
				// Beat even when saturated with back-to-back requests:
				// the manager must not mistake a busy tile for a dead
				// one.
				if c.Now() >= nextBeat {
					c.Tick(P.HeartbeatOcc)
					c.Send(e.pl.manager, heartbeat{}, wordsCtl)
					nextBeat = c.Now() + P.HeartbeatPeriod
				}
				var ok bool
				msg, ok = c.RecvDeadline(nextBeat)
				if !ok {
					continue
				}
			} else {
				msg = c.Recv()
			}
			switch m := msg.Payload.(type) {
			case work:
				e.doTranslate(c, m, msg.From)
				if role == roleSlave {
					c.Send(e.pl.manager, workReq{}, wordsCtl)
				}

			case reconfig:
				// Flush on every role change (and on rebank-triggered
				// flushes of the permanent bank): the interleave
				// function or the tile's function changed.
				t0 := c.Now()
				d := bank.Flush()
				e.stats.MorphFlushLines += uint64(d)
				c.Tick(P.MorphFixed + uint64(d)*P.MorphPerLine)
				prev := role
				role = m.Role
				e.trc().Span(c.Tile, "morph_flush", t0, c.Now(), "lines", uint64(d), "to_slave", b2u(role == roleSlave))
				if role == roleSlave && prev != roleSlave {
					c.Send(e.pl.manager, workReq{}, wordsCtl)
				}

			case *memFwd:
				t0 := c.Now()
				c.Tick(P.BankLookupOcc)
				e.stats.L2DRequests++
				e.trc().Count(tsL2DRequests, t0, 1)
				miss, wb := bank.Access(m.PAddr, m.Write)
				if miss {
					e.stats.L2DMisses++
					e.trc().Count(tsL2DMisses, t0, 1)
					c.Tick(P.DRAMLat + P.BankLineFill)
					if e.inj != nil && e.inj.DRAMError(c.Tile, uint64(c.Now())) {
						// Detected ECC error on the fill: retry the DRAM
						// round trip.
						c.Tick(P.DRAMLat)
					}
				}
				if wb {
					c.Tick(P.BankLineFill)
				}
				e.trc().Span(c.Tile, "bank", t0, c.Now(), "addr", uint64(m.PAddr), "dram", b2u(miss))
				if m.ReplyTo >= 0 {
					r := e.pool.newResp()
					r.ID = m.ID
					c.Send(m.ReplyTo, r, wordsMemResp)
				}
				e.pool.freeFwd(m)

			case vmSwitch:
				// Fleet slot handoff: flush the data bank so the next
				// guest cannot see stale lines (charged like a morph
				// flush — the slot's working set changes wholesale),
				// then hand the tile back to the slot wrapper.
				d := bank.Flush()
				e.stats.MorphFlushLines += uint64(d)
				c.Tick(P.MorphFixed + uint64(d)*P.MorphPerLine)
				c.Send(msg.From, switchAck{}, wordsCtl)
				return

			case raw.Corrupted:
				// A corrupted message is discarded here, its single
				// delivery point — only now is the pooled payload
				// unaliased and safe to recycle.
				e.recycleFaulty(m.Payload)
			}
		}
	}
}

// doTranslate performs one translation unit on a slave tile, charging
// the modeled translation occupancy, and reports the result. Tier
// choice goes through translate.TranslateTier — the single dispatch
// point shared with rollback re-translation — so record/replay and
// restore can never disagree on which tier produced a block.
func (e *engine) doTranslate(c *raw.TileCtx, m work, replyTo int) {
	P := e.cfg.Params
	t0 := c.Now()
	res, err := m.Translator.TranslateTier(m.Mem, m.PC, m.Tier0)
	if err != nil {
		c.Tick(P.TransBaseOcc)
		e.trc().Span(c.Tile, "translate", t0, c.Now(), "pc", uint64(m.PC), "depth", uint64(m.Depth))
		c.Send(replyTo, transDone{PC: m.PC, Depth: m.Depth, Gen: m.Gen, Res: nil}, wordsCtl)
		return
	}
	var cost uint64
	if res.Tier == translate.TierTemplate {
		// Template emission: one decode pass, no IR, no regalloc.
		cost = uint64(res.GuestLen)*P.TransFetchOcc + uint64(res.NumGuest)*P.Tier0BaseOcc
	} else {
		cost = uint64(res.GuestLen)*P.TransFetchOcc + uint64(res.NumGuest)*P.TransBaseOcc
		if m.Optimize {
			cost += uint64(res.NumGuest) * P.TransOptOcc
		}
	}
	c.Tick(cost)
	e.trc().Span(c.Tile, "translate", t0, c.Now(), "pc", uint64(m.PC), "depth", uint64(m.Depth))
	c.Send(replyTo, transDone{PC: m.PC, Depth: m.Depth, Gen: m.Gen, Res: res}, res.CodeBytes/4)
}

// l15Kernel runs one bank of the L1.5 code cache.
func (e *engine) l15Kernel(c *raw.TileCtx) {
	P := e.cfg.Params
	bank := codecache.NewL15(P.L15BankBytes)
	for {
		msg := c.Recv()
		switch m := msg.Payload.(type) {
		case codeReq:
			t0 := c.Now()
			c.Tick(P.L15LookupOcc)
			e.stats.L15Lookups++
			e.trc().Count(tsL15Lookups, t0, 1)
			if res, ok := bank.Lookup(m.PC); ok {
				e.stats.L15Hits++
				e.trc().Count(tsL15Hits, t0, 1)
				words := res.CodeBytes / 4
				c.Tick(uint64(words) * P.L15WordOcc)
				e.trc().Span(c.Tile, "l15_lookup", t0, c.Now(), "pc", uint64(m.PC), "hit", 1)
				c.Send(m.ReplyTo, codeResp{PC: m.PC, Res: res}, words)
				continue
			}
			e.trc().Span(c.Tile, "l15_lookup", t0, c.Now(), "pc", uint64(m.PC), "hit", 0)
			m.FillBank = c.Tile
			c.Send(e.pl.manager, m, wordsCodeReq)
		case fill:
			t0 := c.Now()
			c.Tick(uint64(m.Res.CodeBytes/4) * P.L15WordOcc)
			bank.Insert(m.PC, m.Res)
			e.trc().Span(c.Tile, "l15_fill", t0, c.Now(), "pc", uint64(m.PC), "", 0)
		case smcInval:
			// Coarse invalidation: drop the whole bank.
			c.Tick(P.L15LookupOcc)
			bank.Flush()
			e.trc().Instant(c.Tile, "smc_flush", c.Now(), "", 0, "", 0)
			c.Send(msg.From, smcAck{}, wordsCtl)
		case vmSwitch:
			// Fleet slot handoff; the restarted kernel gets a fresh bank.
			c.Send(msg.From, switchAck{}, wordsCtl)
			return
		}
	}
}

// mmuKernel runs the MMU/TLB tile: the first stage of the pipelined
// memory system (Figure 2). It translates guest virtual addresses and
// forwards requests to the bank that owns the physical line.
func (e *engine) mmuKernel(c *raw.TileCtx) {
	P := e.cfg.Params
	m := mmu.New(P.TLBEntries)
	if e.restore != nil {
		if err := m.Import(e.restore.MMU); err != nil {
			panic(err) // impossible: TLB geometry is fixed by Params
		}
	}
	e.mmuLive = m
	banks := append([]int(nil), e.pl.banks...)
	for {
		msg := c.Recv()
		switch req := msg.Payload.(type) {
		case *memReq:
			t0 := c.Now()
			c.Tick(P.MMULookupOcc)
			paddr, miss := m.Translate(req.Addr)
			if miss {
				c.Tick(P.TLBMissOcc)
				e.stats.TLBMisses++
				e.trc().Count(tsTLBMisses, t0, 1)
			}
			e.trc().Span(c.Tile, "mmu", t0, c.Now(), "addr", uint64(req.Addr), "tlb_miss", b2u(miss))
			b := banks[dcache.BankFor(paddr, P.L2DLine, len(banks))]
			local := dcache.LocalAddr(paddr, P.L2DLine, len(banks))
			f := e.pool.newFwd()
			*f = memFwd{PAddr: local, Write: req.Write, ReplyTo: req.ReplyTo, ID: req.ID}
			c.Send(b, f, wordsMemReq)
			e.pool.freeReq(req)
		case rebank:
			banks = append(banks[:0], req.Banks...)
			e.trc().Instant(c.Tile, "rebank", c.Now(), "gen", req.Gen, "banks", uint64(len(banks)))
			if req.Gen > 0 {
				c.Send(msg.From, rebankAck{Gen: req.Gen}, wordsCtl)
			}
		case vmSwitch:
			// Fleet slot handoff; the restarted kernel gets a fresh TLB.
			c.Send(msg.From, switchAck{}, wordsCtl)
			return
		case raw.Corrupted:
			e.recycleFaulty(req.Payload)
		}
	}
}

// sysKernel runs the syscall proxy tile. In fault-recovery mode it
// deduplicates by request ID so a retried (non-idempotent) syscall is
// executed at most once; the cached response is replayed instead.
func (e *engine) sysKernel(c *raw.TileCtx) {
	P := e.cfg.Params
	var done map[uint64]sysResp
	if e.robust {
		done = map[uint64]sysResp{}
	}
	for {
		msg := c.Recv()
		if _, sw := msg.Payload.(vmSwitch); sw {
			// Fleet slot handoff; the next guest proxies to a fresh
			// kernel bound to its own process.
			c.Send(msg.From, switchAck{}, wordsCtl)
			return
		}
		req, ok := msg.Payload.(sysReq)
		if !ok {
			continue
		}
		if e.robust {
			if r, seen := done[req.ID]; seen {
				c.Tick(P.SyscallOcc)
				c.Send(msg.From, r, wordsSys)
				continue
			}
		}
		t0 := c.Now()
		c.Tick(P.SyscallOcc)
		var regs [8]uint32
		for i := 0; i < 8; i++ {
			regs[i] = req.Regs[1+i]
		}
		num := regs[0] // EAX: syscall number before the call, return value after
		e.proc.Kern.Syscall(e.proc.Mem, &regs)
		e.jadd(checkpoint.EvSyscall, uint64(c.Now()), uint64(num), uint64(regs[0]))
		e.trc().Span(c.Tile, "sys", t0, c.Now(), "num", uint64(num), "ret", uint64(regs[0]))
		var resp sysResp
		resp.Regs = req.Regs
		for i := 0; i < 8; i++ {
			resp.Regs[1+i] = regs[i]
		}
		resp.Exited = e.proc.Kern.Exited
		resp.ID = req.ID
		if e.robust {
			done[req.ID] = resp
		}
		c.Send(msg.From, resp, wordsSys)
	}
}
