package core

import (
	"fmt"

	"tilevm/internal/raw"
	"tilevm/internal/trace"
)

// Sampler count series: per-window event counts the engine feeds the
// tracer's interval sampler. Each series is incremented at the same
// site as (or a site provably equivalent to) the matching metrics.Set
// counter, so window sums equal the end-of-run totals — a property the
// tests pin (TestTraceSamplesSumToMetrics).
const (
	tsDispatches   = iota // metrics.BlockDispatches
	tsL1Lookups           // metrics.L1CLookups
	tsL1Hits              // metrics.L1CHits
	tsL15Lookups          // metrics.L15Lookups
	tsL15Hits             // metrics.L15Hits
	tsDemandMisses        // metrics.DemandMisses
	tsTranslations        // metrics.Translations
	tsDL1Accesses         // metrics.DL1Accesses
	tsDL1Misses           // metrics.DL1Misses
	tsL2DRequests         // metrics.L2DRequests
	tsL2DMisses           // metrics.L2DMisses
	tsTLBMisses           // metrics.TLBMisses
	numTraceCounts
)

// Sampler gauge series (window maximum).
const (
	tgTransQueue = iota // manager translation-queue depth
	numTraceGauges
)

// traceCountNames are the CSV column names, aligned with the ts*
// constants.
var traceCountNames = []string{
	"dispatches",
	"l1c_lookups", "l1c_hits",
	"l15_lookups", "l15_hits",
	"demand_misses", "translations",
	"dl1_accesses", "dl1_misses",
	"l2d_requests", "l2d_misses",
	"tlb_misses",
}

var traceGaugeNames = []string{"trans_queue_max"}

// NewTracer builds a tracer with the engine's sampler schema: the
// count series above, the translation-queue gauge, per-tile occupancy
// over the 4×4 grid, and derived hit/miss-rate columns. sampleInterval
// is the window width in cycles; 0 records the event timeline only.
func NewTracer(sampleInterval uint64) *trace.Tracer {
	return NewTracerFor(DefaultConfig().Params, sampleInterval)
}

// NewTracerFor is NewTracer for an arbitrary fabric: the per-tile
// occupancy columns cover p.Tiles() tiles, so fleet runs on larger
// grids trace every slot.
func NewTracerFor(p raw.Params, sampleInterval uint64) *trace.Tracer {
	return trace.New(trace.Options{
		SampleInterval: sampleInterval,
		Tiles:          p.Tiles(),
		Counts:         traceCountNames,
		Gauges:         traceGaugeNames,
		Ratios: []trace.Ratio{
			{Name: "l1c_hit_rate", Num: tsL1Hits, Den: tsL1Lookups},
			{Name: "l15_hit_rate", Num: tsL15Hits, Den: tsL15Lookups},
			{Name: "dl1_miss_rate", Num: tsDL1Misses, Den: tsDL1Accesses},
			{Name: "l2d_miss_rate", Num: tsL2DMisses, Den: tsL2DRequests},
		},
	})
}

// trc is the engine's trace sink (nil when tracing is off; all
// emission methods are no-ops on nil).
func (e *engine) trc() *trace.Tracer { return e.cfg.Tracer }

// registerTraceProcs labels each tile's viewer row with its role and
// grid coordinates, e.g. "tile 5 exec (1,1)". Called once per attempt
// after placement; re-registration after a rollback overwrites the
// labels with the surviving topology's roles.
func (e *engine) registerTraceProcs() {
	t := e.trc()
	if t == nil {
		return
	}
	name := func(tile int, role string) {
		if e.vmLabel != "" {
			role = role + " " + e.vmLabel
		}
		x, y := e.cfg.Params.XY(tile)
		t.SetProcName(tile, fmt.Sprintf("tile %d %s (%d,%d)", tile, role, x, y))
	}
	name(e.pl.sys, "syscall")
	name(e.pl.exec, "exec")
	name(e.pl.manager, "manager")
	name(e.pl.mmu, "mmu")
	for _, tl := range e.pl.l15 {
		name(tl, "l1.5")
	}
	for _, tl := range e.pl.slaves {
		name(tl, "slave")
	}
	for _, tl := range e.pl.banks {
		name(tl, "bank")
	}
	for _, tl := range e.pl.idle {
		name(tl, "idle")
	}
}

// traceQueueDepth emits the manager's translation-queue depth as both
// a viewer counter track and a sampler gauge. queuedLen is an O(queue)
// scan, so callers must hold the non-nil guard (the disabled path must
// not pay for the scan).
func (st *managerState) traceQueueDepth() {
	t := st.e.trc()
	if t == nil {
		return
	}
	n := uint64(st.queuedLen())
	now := st.c.Now()
	t.Counter(st.e.pl.manager, "trans_queue", now, n)
	t.Gauge(tgTransQueue, now, n)
}
