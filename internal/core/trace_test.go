package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"tilevm/internal/trace"
)

// tracedRun executes the sumLoop workload with a tracer attached and
// returns the tracer, the result, and the serialized JSON and CSV.
func tracedRun(t *testing.T, interval uint64) (*trace.Tracer, *Result, []byte, []byte) {
	t.Helper()
	trc := NewTracer(interval)
	cfg := DefaultConfig()
	cfg.Tracer = trc
	res, err := Run(sumLoop(4000), cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	var j, c bytes.Buffer
	if err := trc.WriteJSON(&j); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if trc.Sampling() {
		if err := trc.WriteCSV(&c); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
	}
	return trc, res, j.Bytes(), c.Bytes()
}

// TestTraceDeterministic pins the golden property: two identical runs
// produce byte-identical trace JSON and sampler CSV. Everything in the
// trace is virtual time, so any divergence means wall-clock or map
// iteration leaked into the timeline.
func TestTraceDeterministic(t *testing.T) {
	_, _, j1, c1 := tracedRun(t, 5000)
	_, _, j2, c2 := tracedRun(t, 5000)
	if !bytes.Equal(j1, j2) {
		t.Errorf("trace JSON differs across identical runs (%d vs %d bytes)", len(j1), len(j2))
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("sampler CSV differs across identical runs")
	}
}

// TestTraceJSONShape validates the Chrome trace_event output: it must
// parse, contain at least 4 distinct tile rows (the virtual
// architecture is visible as a grid of processes), and include
// translation and memory-system spans.
func TestTraceJSONShape(t *testing.T) {
	_, _, j, _ := tracedRun(t, 0)
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(j, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	pids := map[int]bool{}
	spans := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		pids[ev.PID] = true
		if ev.Ph == "X" {
			spans[ev.Name] = true
		}
	}
	if len(pids) < 4 {
		t.Errorf("trace shows %d tile rows, want >= 4 (the tiled layout must be visible)", len(pids))
	}
	for _, want := range []string{"translate", "dispatch", "memfill", "mmu", "bank", "l2c_lookup"} {
		if !spans[want] {
			t.Errorf("no %q span in trace", want)
		}
	}
}

// TestTraceSamplesSumToMetrics pins the sampler invariant: each count
// series is incremented at the same site as its metrics.Set counter, so
// window sums must equal the end-of-run totals exactly — and per-tile
// busy totals must equal Result.TileBusy.
func TestTraceSamplesSumToMetrics(t *testing.T) {
	trc, res, _, _ := tracedRun(t, 5000)
	m := res.M
	checks := []struct {
		series int
		name   string
		want   uint64
	}{
		{tsDispatches, "dispatches", m.BlockDispatches},
		{tsL1Lookups, "l1c_lookups", m.L1CLookups},
		{tsL1Hits, "l1c_hits", m.L1CHits},
		{tsL15Lookups, "l15_lookups", m.L15Lookups},
		{tsL15Hits, "l15_hits", m.L15Hits},
		{tsDemandMisses, "demand_misses", m.DemandMisses},
		{tsTranslations, "translations", m.Translations},
		{tsDL1Accesses, "dl1_accesses", m.DL1Accesses},
		{tsDL1Misses, "dl1_misses", m.DL1Misses},
		{tsL2DRequests, "l2d_requests", m.L2DRequests},
		{tsL2DMisses, "l2d_misses", m.L2DMisses},
		{tsTLBMisses, "tlb_misses", m.TLBMisses},
	}
	for _, c := range checks {
		if got := trc.CountTotal(c.series); got != c.want {
			t.Errorf("series %s: window sum %d, metrics say %d", c.name, got, c.want)
		}
	}
	for tile, busy := range res.TileBusy {
		if got := trc.BusyTotal(tile); got != busy {
			t.Errorf("tile %d: sampled busy %d, TileBusy says %d", tile, got, busy)
		}
	}
}

// TestTracerOffIsDefault guards the zero-cost contract at the config
// level: a default config carries no tracer, and a run without one
// still succeeds (every emission site must tolerate the nil sink).
func TestTracerOffIsDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Tracer != nil {
		t.Fatal("DefaultConfig must not attach a tracer")
	}
	if _, err := Run(sumLoop(500), cfg); err != nil {
		t.Fatalf("untraced run: %v", err)
	}
}
