// Package dcache implements an L2 data-cache bank tile's state (paper
// §3.2): a transactor servicing memory requests for a fraction of the
// physical address space. Banks are line-interleaved; when the number
// of banks changes (dynamic reconfiguration), every bank must be
// flushed because the interleaving function changes — that writeback is
// the dominant morphing cost the paper describes.
package dcache

import "tilevm/internal/cachesim"

// Bank is one L2 data cache bank.
type Bank struct {
	Cache *cachesim.Cache

	Requests  uint64
	Misses    uint64
	Flushes   uint64
	Writeback uint64 // lines written back (evictions + flushes)
}

// NewBank builds a bank with the given geometry.
func NewBank(sizeBytes, ways, lineBytes int) *Bank {
	return &Bank{Cache: cachesim.New(sizeBytes, ways, lineBytes)}
}

// Access services one request for a physical address. It reports
// whether the line missed (DRAM fetch needed) and whether a dirty
// victim was written back.
func (b *Bank) Access(paddr uint32, write bool) (miss, writeback bool) {
	b.Requests++
	res := b.Cache.Access(paddr, write)
	if !res.Hit {
		b.Misses++
	}
	if res.Writeback {
		b.Writeback++
	}
	return !res.Hit, res.Writeback
}

// Flush writes back all dirty lines and invalidates the bank,
// returning the number of lines written back.
func (b *Bank) Flush() int {
	dirty := b.Cache.FlushAll()
	b.Flushes++
	b.Writeback += uint64(dirty)
	return dirty
}

// BankFor returns the servicing bank index for a physical address
// under line interleaving across n banks.
func BankFor(paddr uint32, lineBytes, n int) int {
	if n <= 1 {
		return 0
	}
	return int(paddr) / lineBytes % n
}

// LocalAddr maps a physical address to the servicing bank's local
// address space by stripping the interleave bits, so the bank's set
// index uses consecutive lines. Without this a bank would only ever
// touch 1/n of its sets.
func LocalAddr(paddr uint32, lineBytes, n int) uint32 {
	if n <= 1 {
		return paddr
	}
	line := paddr / uint32(lineBytes)
	return line/uint32(n)*uint32(lineBytes) | paddr&uint32(lineBytes-1)
}
