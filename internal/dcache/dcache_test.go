package dcache

import "testing"

func TestBankAccessAndFlush(t *testing.T) {
	b := NewBank(1024, 2, 32)
	miss, wb := b.Access(0x100, true)
	if !miss || wb {
		t.Errorf("cold access: miss=%v wb=%v", miss, wb)
	}
	miss, _ = b.Access(0x100, false)
	if miss {
		t.Error("warm access missed")
	}
	if b.Requests != 2 || b.Misses != 1 {
		t.Errorf("counters: %d/%d", b.Requests, b.Misses)
	}
	if d := b.Flush(); d != 1 {
		t.Errorf("flush wrote back %d lines, want 1", d)
	}
	if b.Flushes != 1 || b.Writeback != 1 {
		t.Errorf("flush counters: %d/%d", b.Flushes, b.Writeback)
	}
}

func TestBankForInterleaving(t *testing.T) {
	// Consecutive lines round-robin across banks.
	for i := 0; i < 16; i++ {
		addr := uint32(i * 32)
		want := i % 4
		if got := BankFor(addr, 32, 4); got != want {
			t.Errorf("BankFor(%#x) = %d, want %d", addr, got, want)
		}
	}
	// Single bank: always 0.
	if BankFor(0x12345678, 32, 1) != 0 {
		t.Error("single bank must be 0")
	}
}

func TestLocalAddrDensity(t *testing.T) {
	// The bank-local addresses of one bank's lines must be contiguous
	// lines (so every set of the bank cache is usable).
	n := 4
	var locals []uint32
	for i := 0; i < 64; i++ {
		addr := uint32(i * 32)
		if BankFor(addr, 32, n) == 2 {
			locals = append(locals, LocalAddr(addr, 32, n))
		}
	}
	for i := 1; i < len(locals); i++ {
		if locals[i]-locals[i-1] != 32 {
			t.Fatalf("bank-local lines not contiguous: %#x -> %#x", locals[i-1], locals[i])
		}
	}
	// Offsets within the line survive.
	if LocalAddr(0x47, 32, 4)&31 != 0x7 {
		t.Error("line offset lost")
	}
	if LocalAddr(0x47, 32, 1) != 0x47 {
		t.Error("single-bank LocalAddr must be identity")
	}
}

func TestBankWorkingSetCapacity(t *testing.T) {
	// A working set equal to bank capacity, addressed through the
	// interleave mapping, must fit (this was the calibration bug:
	// without LocalAddr only 1/4 of the sets were used).
	bank := NewBank(32*1024, 4, 32)
	const banks = 4
	var touched int
	for addr := uint32(0); addr < 128*1024; addr += 32 {
		if BankFor(addr, 32, banks) != 0 {
			continue
		}
		bank.Access(LocalAddr(addr, 32, banks), false)
		touched++
	}
	// Second pass: everything must hit.
	missBefore := bank.Misses
	for addr := uint32(0); addr < 128*1024; addr += 32 {
		if BankFor(addr, 32, banks) != 0 {
			continue
		}
		bank.Access(LocalAddr(addr, 32, banks), false)
	}
	if bank.Misses != missBefore {
		t.Errorf("capacity-fit working set missed %d times on the second pass",
			bank.Misses-missBefore)
	}
	if touched != 1024 {
		t.Errorf("touched %d lines, want 1024", touched)
	}
}
