// Package fault provides deterministic, seeded fault injection for the
// simulated Raw machine. A Plan describes *what* can go wrong — tiles
// that fail-stop or stall at a given cycle, probabilistic message
// drop/delay/corruption on the dynamic network, DRAM read errors on
// data-bank line fills — and an Injector turns the plan into a
// reproducible fault schedule: the injector's own PRNG is consumed in
// simulation-event order, which the discrete-event kernel makes
// deterministic, so the same seed produces the same fault schedule
// bit-for-bit on every run.
//
// The injector is a passive oracle: the simulator and tile kernels ask
// it questions ("does this message survive?", "has this tile failed?")
// at well-defined points, and it answers and counts. When no plan is
// installed the machine contains no fault code path at all, so the
// zero-fault configuration is bit-identical to a build without this
// package.
package fault

// TileFail is a permanent fail-stop: from the given cycle on, the tile
// neither processes nor emits messages (messages addressed to it are
// silently consumed).
type TileFail struct {
	Tile  int
	Cycle uint64
}

// TileStall is a transient fault: the first time the tile is scheduled
// at or after Cycle it loses Dur cycles, then resumes normally.
type TileStall struct {
	Tile  int
	Cycle uint64
	Dur   uint64
}

// Plan is a complete, serializable fault schedule. Probabilities are
// per-event (per dynamic-network message, per DRAM line fill); explicit
// tile faults fire exactly once at their cycle.
type Plan struct {
	Seed uint64

	Fails  []TileFail
	Stalls []TileStall

	// Per-message probabilities on the dynamic network.
	DropProb    float64
	DelayProb   float64
	DelayCycles uint64 // extra latency added to a delayed message
	CorruptProb float64

	// Per-line-fill probability of a DRAM read error on a data bank
	// (modeled as a detected ECC error: the fill is retried, costing an
	// extra DRAM round trip).
	DRAMProb float64
}

// Empty reports whether the plan injects nothing (it is then safe to
// run without an injector at all).
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Fails) == 0 && len(p.Stalls) == 0 &&
		p.DropProb == 0 && p.DelayProb == 0 && p.CorruptProb == 0 && p.DRAMProb == 0)
}

// FailedTiles returns the set of tiles the plan fail-stops.
func (p *Plan) FailedTiles() []int {
	var out []int
	for _, f := range p.Fails {
		out = append(out, f.Tile)
	}
	return out
}

// WithoutFails returns a copy of the plan with the fail-stop clauses
// for the given tiles removed. Rollback recovery re-executes with the
// already-dead tiles excluded from the placement entirely, so their
// fail clauses must not re-fire (and re-count) on the next attempt.
func (p *Plan) WithoutFails(tiles []int) *Plan {
	if p == nil {
		return nil
	}
	dead := make(map[int]bool, len(tiles))
	for _, t := range tiles {
		dead[t] = true
	}
	q := *p
	q.Fails = nil
	for _, f := range p.Fails {
		if !dead[f.Tile] {
			q.Fails = append(q.Fails, f)
		}
	}
	return &q
}

// Kind identifies an injected fault class, for the Observe hook and the
// replay journal.
type Kind uint8

const (
	KindDrop Kind = iota + 1
	KindDelay
	KindCorrupt
	KindStall
	KindFail
	KindDRAM
)

// Verdict is the injector's ruling on one dynamic-network message.
type Verdict struct {
	Drop    bool
	Corrupt bool
	Delay   uint64
}

// Counts tallies the faults actually injected during a run.
type Counts struct {
	Drops       uint64
	Delays      uint64
	Corruptions uint64
	Stalls      uint64
	Fails       uint64
	DRAMErrors  uint64
}

// Total is the total number of injected faults of all kinds.
func (c Counts) Total() uint64 {
	return c.Drops + c.Delays + c.Corruptions + c.Stalls + c.Fails + c.DRAMErrors
}

// Injector evaluates a Plan during a run. It is not safe for
// concurrent use; the discrete-event kernel guarantees the single
// caller the determinism argument needs.
type Injector struct {
	plan   Plan
	rng    uint64
	counts Counts

	failAt map[int]uint64 // tile → fail-stop cycle
	failed map[int]bool   // tile → fail already observed
	stalls map[int][]TileStall

	// Observe, when non-nil, is called once per injected fault with the
	// fault class, the tile it hit (the sending tile for message faults)
	// and the virtual cycle. The record-replay journal hangs off this
	// hook; it must not perturb simulation state.
	Observe func(kind Kind, tile int, now uint64)
}

func (in *Injector) observe(kind Kind, tile int, now uint64) {
	if in.Observe != nil {
		in.Observe(kind, tile, now)
	}
}

// NewInjector builds an injector for the plan. A nil plan yields a nil
// injector, which every hook treats as "no faults".
func NewInjector(p *Plan) *Injector {
	if p.Empty() {
		return nil
	}
	in := &Injector{
		plan:   *p,
		rng:    splitmix(p.Seed ^ 0x9e3779b97f4a7c15),
		failAt: map[int]uint64{},
		failed: map[int]bool{},
		stalls: map[int][]TileStall{},
	}
	if in.rng == 0 {
		in.rng = 1
	}
	for _, f := range p.Fails {
		in.failAt[f.Tile] = f.Cycle
	}
	for _, s := range p.Stalls {
		in.stalls[s.Tile] = append(in.stalls[s.Tile], s)
	}
	return in
}

// splitmix is the splitmix64 output function, used to whiten the seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next advances the xorshift64* PRNG.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return x * 0x2545f4914f6cdd1d
}

// chance draws one uniform variate and compares against p.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(in.next()>>11)/(1<<53) < p
}

// OnMessage rules on one dynamic-network message from tile `from` to
// tile `to`. Exactly the per-message probabilities that are nonzero
// consume PRNG draws, in a fixed order, so disabling one fault class
// does not perturb another class's schedule.
func (in *Injector) OnMessage(from, to int, now uint64) Verdict {
	var v Verdict
	if in.plan.DropProb > 0 && in.chance(in.plan.DropProb) {
		in.counts.Drops++
		in.observe(KindDrop, from, now)
		v.Drop = true
		return v
	}
	if in.plan.CorruptProb > 0 && in.chance(in.plan.CorruptProb) {
		in.counts.Corruptions++
		in.observe(KindCorrupt, from, now)
		v.Corrupt = true
	}
	if in.plan.DelayProb > 0 && in.chance(in.plan.DelayProb) {
		in.counts.Delays++
		in.observe(KindDelay, from, now)
		v.Delay = in.plan.DelayCycles
	}
	return v
}

// FailedAt reports whether the tile has fail-stopped by the given
// cycle. The first true observation per tile is counted.
func (in *Injector) FailedAt(tile int, now uint64) bool {
	at, ok := in.failAt[tile]
	if !ok || now < at {
		return false
	}
	if !in.failed[tile] {
		in.failed[tile] = true
		in.counts.Fails++
		in.observe(KindFail, tile, now)
	}
	return true
}

// FailCycle returns the planned fail-stop cycle for a tile.
func (in *Injector) FailCycle(tile int) (uint64, bool) {
	at, ok := in.failAt[tile]
	return at, ok
}

// StallTake returns (and consumes) the total pending stall duration for
// a tile at the given cycle: each planned stall fires once, the first
// time the tile asks at or after the stall's cycle.
func (in *Injector) StallTake(tile int, now uint64) uint64 {
	pend := in.stalls[tile]
	if len(pend) == 0 {
		return 0
	}
	var d uint64
	kept := pend[:0]
	for _, s := range pend {
		if now >= s.Cycle {
			d += s.Dur
			in.counts.Stalls++
			in.observe(KindStall, tile, now)
		} else {
			kept = append(kept, s)
		}
	}
	in.stalls[tile] = kept
	return d
}

// DRAMError rules on one DRAM line fill at a data bank.
func (in *Injector) DRAMError(tile int, now uint64) bool {
	if in.plan.DRAMProb > 0 && in.chance(in.plan.DRAMProb) {
		in.counts.DRAMErrors++
		in.observe(KindDRAM, tile, now)
		return true
	}
	return false
}

// Counts returns the faults injected so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}
