package fault

import (
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	in := "fail:8@200000,stall:7@50000+20000,drop:0.001,delay:0.002+40,corrupt:0.0005,dram:0.01"
	p, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fails) != 1 || p.Fails[0] != (TileFail{Tile: 8, Cycle: 200000}) {
		t.Errorf("fails = %+v", p.Fails)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (TileStall{Tile: 7, Cycle: 50000, Dur: 20000}) {
		t.Errorf("stalls = %+v", p.Stalls)
	}
	if p.DropProb != 0.001 || p.DelayProb != 0.002 || p.DelayCycles != 40 ||
		p.CorruptProb != 0.0005 || p.DRAMProb != 0.01 {
		t.Errorf("probs = %+v", p)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if back.String() != p.String() {
		t.Errorf("round trip %q != %q", back.String(), p.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"fail:8", "fail:x@1", "stall:1@2", "drop:2", "drop:x", "delay:0.5",
		"frobnicate:1", "fail", "dram:-0.1",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Error("parsed empty plan not Empty")
	}
	if NewInjector(p) != nil {
		t.Error("injector for empty plan should be nil")
	}
	if NewInjector(nil) != nil {
		t.Error("injector for nil plan should be nil")
	}
	var nilInj *Injector
	if nilInj.Counts().Total() != 0 {
		t.Error("nil injector counts nonzero")
	}
}

// TestInjectorDeterminism: the same seed must answer the same query
// sequence identically.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{
		Seed: 42, DropProb: 0.1, DelayProb: 0.2, DelayCycles: 40,
		CorruptProb: 0.05, DRAMProb: 0.15,
		Fails:  []TileFail{{Tile: 3, Cycle: 100}},
		Stalls: []TileStall{{Tile: 5, Cycle: 50, Dur: 7}},
	}
	run := func() ([]Verdict, Counts) {
		in := NewInjector(plan)
		var vs []Verdict
		for i := 0; i < 5000; i++ {
			vs = append(vs, in.OnMessage(i%16, (i+3)%16, uint64(i)))
			in.DRAMError(i%16, uint64(i))
			in.FailedAt(3, uint64(i))
			in.StallTake(5, uint64(i))
		}
		return vs, in.Counts()
	}
	v1, c1 := run()
	v2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverged: %+v vs %+v", c1, c2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, v1[i], v2[i])
		}
	}
	if c1.Drops == 0 || c1.Delays == 0 || c1.Corruptions == 0 || c1.DRAMErrors == 0 {
		t.Errorf("probabilistic faults never fired: %+v", c1)
	}
	if c1.Fails != 1 {
		t.Errorf("fail counted %d times, want 1", c1.Fails)
	}
	if c1.Stalls != 1 {
		t.Errorf("stall counted %d times, want 1", c1.Stalls)
	}
}

// TestSeedChangesSchedule: different seeds must produce different
// fault schedules (with overwhelming probability at these sizes).
func TestSeedChangesSchedule(t *testing.T) {
	drawn := func(seed uint64) []bool {
		in := NewInjector(&Plan{Seed: seed, DropProb: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.OnMessage(0, 1, uint64(i)).Drop)
		}
		return out
	}
	a, b := drawn(1), drawn(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical drop schedules")
	}
}

func TestFailedAtAndStallTake(t *testing.T) {
	in := NewInjector(&Plan{Fails: []TileFail{{Tile: 2, Cycle: 1000}},
		Stalls: []TileStall{{Tile: 2, Cycle: 500, Dur: 99}}})
	if in.FailedAt(2, 999) {
		t.Error("failed before cycle")
	}
	if !in.FailedAt(2, 1000) || !in.FailedAt(2, 2000) {
		t.Error("not failed at/after cycle")
	}
	if in.FailedAt(3, 5000) {
		t.Error("unplanned tile failed")
	}
	if d := in.StallTake(2, 499); d != 0 {
		t.Errorf("stall fired early: %d", d)
	}
	if d := in.StallTake(2, 600); d != 99 {
		t.Errorf("stall = %d, want 99", d)
	}
	if d := in.StallTake(2, 700); d != 0 {
		t.Errorf("stall fired twice: %d", d)
	}
	if c := in.Counts(); c.Fails != 1 || c.Stalls != 1 {
		t.Errorf("counts = %+v", c)
	}
}
