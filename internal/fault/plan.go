package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParsePlan parses the command-line fault-plan syntax: a comma-
// separated list of clauses.
//
//	fail:T@C        tile T fail-stops at cycle C
//	stall:T@C+D     tile T stalls for D cycles at cycle C
//	drop:P          drop each network message with probability P
//	delay:P+D       delay each message with probability P by D cycles
//	corrupt:P       corrupt each message with probability P
//	dram:P          DRAM read error per bank line fill with probability P
//
// Example: "fail:8@200000,stall:7@50000+20000,drop:0.001,delay:0.002+40"
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ",") {
		kind, arg, ok := strings.Cut(strings.TrimSpace(clause), ":")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q: want kind:arg", clause)
		}
		switch kind {
		case "fail":
			tile, cycle, _, err := parseTileAt(arg, false)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			p.Fails = append(p.Fails, TileFail{Tile: tile, Cycle: cycle})
		case "stall":
			tile, cycle, dur, err := parseTileAt(arg, true)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			p.Stalls = append(p.Stalls, TileStall{Tile: tile, Cycle: cycle, Dur: dur})
		case "drop", "corrupt", "dram":
			prob, err := parseProb(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			switch kind {
			case "drop":
				p.DropProb = prob
			case "corrupt":
				p.CorruptProb = prob
			case "dram":
				p.DRAMProb = prob
			}
		case "delay":
			probStr, durStr, ok := strings.Cut(arg, "+")
			if !ok {
				return nil, fmt.Errorf("fault: clause %q: want delay:P+D", clause)
			}
			prob, err := parseProb(probStr)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			dur, err := strconv.ParseUint(durStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: bad delay cycles: %w", clause, err)
			}
			p.DelayProb, p.DelayCycles = prob, dur
		default:
			return nil, fmt.Errorf("fault: unknown clause kind %q", kind)
		}
	}
	return p, nil
}

func parseTileAt(arg string, wantDur bool) (tile int, cycle, dur uint64, err error) {
	tileStr, rest, ok := strings.Cut(arg, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want T@C")
	}
	t, err := strconv.Atoi(tileStr)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad tile: %w", err)
	}
	cycleStr := rest
	if wantDur {
		var durStr string
		cycleStr, durStr, ok = strings.Cut(rest, "+")
		if !ok {
			return 0, 0, 0, fmt.Errorf("want T@C+D")
		}
		if dur, err = strconv.ParseUint(durStr, 10, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad duration: %w", err)
		}
	}
	if cycle, err = strconv.ParseUint(cycleStr, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad cycle: %w", err)
	}
	return t, cycle, dur, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability: %w", err)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

// String renders the plan back into the ParsePlan syntax (seed
// excluded; it travels separately).
func (p *Plan) String() string {
	var parts []string
	fails := append([]TileFail(nil), p.Fails...)
	sort.Slice(fails, func(i, j int) bool {
		if fails[i].Cycle != fails[j].Cycle {
			return fails[i].Cycle < fails[j].Cycle
		}
		return fails[i].Tile < fails[j].Tile
	})
	for _, f := range fails {
		parts = append(parts, fmt.Sprintf("fail:%d@%d", f.Tile, f.Cycle))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall:%d@%d+%d", s.Tile, s.Cycle, s.Dur))
	}
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop:%g", p.DropProb))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay:%g+%d", p.DelayProb, p.DelayCycles))
	}
	if p.CorruptProb > 0 {
		parts = append(parts, fmt.Sprintf("corrupt:%g", p.CorruptProb))
	}
	if p.DRAMProb > 0 {
		parts = append(parts, fmt.Sprintf("dram:%g", p.DRAMProb))
	}
	return strings.Join(parts, ",")
}
