package guest

import (
	"debug/elf"
	"fmt"
	"io"
	"os"
)

// ELF loading. The paper's prototype runs "arbitrary, unmodified,
// userland statically-linked Linux x86 binaries"; this loader maps a
// static ELF32 i386 executable's PT_LOAD segments into an Image so the
// same binaries can be fed to the translator. Dynamic executables and
// interpreters are rejected (as in the prototype).

// LoadELF parses a statically linked ELF32 i386 executable.
func LoadELF(r io.ReaderAt) (*Image, error) {
	f, err := elf.NewFile(r)
	if err != nil {
		return nil, fmt.Errorf("guest: not an ELF executable: %w", err)
	}
	defer f.Close()

	switch {
	case f.Class != elf.ELFCLASS32:
		return nil, fmt.Errorf("guest: ELF class %v not supported (need ELF32)", f.Class)
	case f.Machine != elf.EM_386:
		return nil, fmt.Errorf("guest: ELF machine %v not supported (need EM_386)", f.Machine)
	case f.Data != elf.ELFDATA2LSB:
		return nil, fmt.Errorf("guest: big-endian ELF not supported")
	case f.Type != elf.ET_EXEC:
		return nil, fmt.Errorf("guest: ELF type %v not supported (need ET_EXEC; PIE/dynamic executables are not)", f.Type)
	}

	img := &Image{Entry: uint32(f.Entry)}
	var maxEnd uint32
	loads := 0
	for _, p := range f.Progs {
		switch p.Type {
		case elf.PT_INTERP, elf.PT_DYNAMIC:
			return nil, fmt.Errorf("guest: dynamically linked executables are not supported")
		case elf.PT_LOAD:
		default:
			continue
		}
		loads++
		data := make([]byte, p.Filesz)
		if _, err := io.ReadFull(p.Open(), data); err != nil {
			return nil, fmt.Errorf("guest: reading segment at %#x: %w", p.Vaddr, err)
		}
		// BSS (Memsz > Filesz) needs no explicit zero fill: unmapped
		// guest memory reads as zero.
		addr := uint32(p.Vaddr)
		img.Segments = append(img.Segments, Segment{Addr: addr, Data: data})
		if end := addr + uint32(p.Memsz); end > maxEnd {
			maxEnd = end
		}
		// The executable segment doubles as the code region.
		if p.Flags&elf.PF_X != 0 && img.Code == nil {
			img.CodeBase = addr
			img.Code = data
		}
	}
	if loads == 0 {
		return nil, fmt.Errorf("guest: no PT_LOAD segments")
	}
	if img.Code == nil {
		return nil, fmt.Errorf("guest: no executable segment")
	}
	// Program break starts just past the highest load, page aligned.
	img.HeapBase = (maxEnd + 0xfff) &^ 0xfff

	// Code appears both in img.Code (decoder window base) and as a
	// segment; drop the duplicate segment to avoid double mapping.
	segs := img.Segments[:0]
	for _, s := range img.Segments {
		if s.Addr == img.CodeBase {
			continue
		}
		segs = append(segs, s)
	}
	img.Segments = segs
	return img, nil
}

// LoadELFFile loads an ELF executable from disk.
func LoadELFFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := LoadELF(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	img.Name = path
	return img, nil
}
