package guest

import (
	"bytes"
	"testing"
)

// testImage builds a small image with code and a data segment.
func testImage() *Image {
	return &Image{
		Name:     "elf-test",
		Entry:    DefaultCodeBase,
		CodeBase: DefaultCodeBase,
		// mov eax,1; mov ebx,42; int 0x80
		Code:     []byte{0xB8, 1, 0, 0, 0, 0xBB, 42, 0, 0, 0, 0xCD, 0x80},
		Segments: []Segment{{Addr: 0x0a000000, Data: []byte{1, 2, 3, 4}}},
	}
}

func TestELFRoundTrip(t *testing.T) {
	img := testImage()
	var buf bytes.Buffer
	if err := WriteELF(img, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadELF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != img.Entry || back.CodeBase != img.CodeBase {
		t.Errorf("entry/codebase: %#x/%#x, want %#x/%#x",
			back.Entry, back.CodeBase, img.Entry, img.CodeBase)
	}
	if !bytes.Equal(back.Code, img.Code) {
		t.Errorf("code round trip failed")
	}
	if len(back.Segments) != 1 || back.Segments[0].Addr != 0x0a000000 ||
		!bytes.Equal(back.Segments[0].Data, img.Segments[0].Data) {
		t.Errorf("data segment round trip failed: %+v", back.Segments)
	}
	if back.HeapBase == 0 || back.HeapBase < 0x0a000004 {
		t.Errorf("heap base %#x", back.HeapBase)
	}
}

func TestELFMagicAndHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteELF(testImage(), &buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:4]) != "\x7fELF" {
		t.Fatalf("bad magic % x", b[:4])
	}
	if b[4] != 1 || b[5] != 1 {
		t.Error("not ELF32 LSB")
	}
	// e_type=2 (EXEC), e_machine=3 (386)
	if b[16] != 2 || b[18] != 3 {
		t.Errorf("type/machine: %d/%d", b[16], b[18])
	}
}

func TestELFRejectsGarbage(t *testing.T) {
	if _, err := LoadELF(bytes.NewReader([]byte("not an elf at all..."))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestELFSegmentAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteELF(testImage(), &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadELF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Loading the image into memory must place bytes where the run
	// expects them.
	p := Load(back)
	if p.Mem.Read8(DefaultCodeBase) != 0xB8 {
		t.Error("code not at expected address")
	}
	if p.Mem.Read8(0x0a000003) != 4 {
		t.Error("data not at expected address")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	img := testImage()
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != img.Name || back.Entry != img.Entry ||
		!bytes.Equal(back.Code, img.Code) ||
		len(back.Segments) != 1 || !bytes.Equal(back.Segments[0].Data, img.Segments[0].Data) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestImageFileRejectsTruncation(t *testing.T) {
	img := testImage()
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 3, 8, len(full) / 2, len(full) - 1} {
		if _, err := ReadImage(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated image (%d bytes) accepted", n)
		}
	}
}
