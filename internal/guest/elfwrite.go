package guest

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
)

// WriteELF serializes an Image as a statically linked ELF32 i386
// executable. The synthetic workloads use only genuine Linux int-0x80
// syscalls, so the emitted binaries are real programs: they can be fed
// back through LoadELF, and would run under a 32-bit Linux kernel.
func WriteELF(img *Image, w io.Writer) error {
	const (
		ehSize = 52
		phSize = 32
	)
	type seg struct {
		vaddr uint32
		data  []byte
		flags uint32
	}
	segs := []seg{{img.CodeBase, img.Code, 5 /* R+X */}}
	for _, s := range img.Segments {
		segs = append(segs, seg{s.Addr, s.Data, 6 /* R+W */})
	}

	phoff := uint32(ehSize)
	dataOff := phoff + uint32(len(segs))*phSize
	// Align each segment's file offset to its vaddr modulo 4096, as
	// loaders expect for mmap-style mapping.
	offs := make([]uint32, len(segs))
	cur := dataOff
	for i, s := range segs {
		align := (s.vaddr - cur) & 0xfff
		cur += align
		offs[i] = cur
		cur += uint32(len(s.data))
	}

	var buf bytes.Buffer
	le := binary.LittleEndian
	w32 := func(v uint32) { _ = binary.Write(&buf, le, v) }
	w16 := func(v uint16) { _ = binary.Write(&buf, le, v) }

	// ELF header.
	buf.Write([]byte{0x7f, 'E', 'L', 'F', 1 /*32-bit*/, 1 /*LSB*/, 1 /*version*/, 0})
	buf.Write(make([]byte, 8)) // padding
	w16(2)                     // ET_EXEC
	w16(3)                     // EM_386
	w32(1)                     // EV_CURRENT
	w32(img.Entry)
	w32(phoff)
	w32(0) // shoff: no sections
	w32(0) // flags
	w16(ehSize)
	w16(phSize)
	w16(uint16(len(segs)))
	w16(0) // shentsize
	w16(0) // shnum
	w16(0) // shstrndx

	// Program headers.
	for i, s := range segs {
		w32(1) // PT_LOAD
		w32(offs[i])
		w32(s.vaddr)
		w32(s.vaddr)
		w32(uint32(len(s.data)))
		w32(uint32(len(s.data)))
		w32(s.flags)
		w32(0x1000)
	}

	// Segment payloads with alignment gaps.
	out := buf.Bytes()
	if _, err := w.Write(out); err != nil {
		return err
	}
	cur = dataOff
	for i, s := range segs {
		if gap := offs[i] - cur; gap > 0 {
			if _, err := w.Write(make([]byte, gap)); err != nil {
				return err
			}
			cur += gap
		}
		if _, err := w.Write(s.data); err != nil {
			return err
		}
		cur += uint32(len(s.data))
	}
	return nil
}

// SaveELF writes the image to an ELF executable file.
func SaveELF(img *Image, path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o755)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteELF(img, f); err != nil {
		return err
	}
	return f.Close()
}
