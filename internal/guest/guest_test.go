package guest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tilevm/internal/x86"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write32(0x1000, 0xdeadbeef)
	if got := m.Read32(0x1000); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	if got := m.Read8(0x1000); got != 0xef {
		t.Errorf("little-endian low byte = %#x", got)
	}
	if got := m.Read16(0x1002); got != 0xdead {
		t.Errorf("high half = %#x", got)
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	if m.Read32(0x5000_0000) != 0 || m.Read8(0xffff_fff0) != 0 {
		t.Error("unmapped memory should read zero")
	}
}

func TestMemoryUnalignedAndPageCrossing(t *testing.T) {
	m := NewMemory()
	// Cross a 64KB page boundary.
	addr := uint32(0x1_0000 - 2)
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Errorf("page-crossing Read32 = %#x", got)
	}
	m.Write16(0x1_FFFF, 0xaabb)
	if got := m.Read16(0x1_FFFF); got != 0xaabb {
		t.Errorf("page-crossing Read16 = %#x", got)
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		type w struct {
			addr uint32
			val  uint32
			n    uint8
		}
		var writes []w
		for i := 0; i < 50; i++ {
			sizes := []uint8{1, 2, 4}
			// Use well-separated addresses so writes don't overlap.
			ww := w{uint32(i) * 16, r.Uint32(), sizes[r.Intn(3)]}
			m.WriteN(ww.addr, ww.val, ww.n)
			writes = append(writes, ww)
		}
		for _, ww := range writes {
			if m.ReadN(ww.addr, ww.n) != ww.val&x86.SizeMask(ww.n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCPUSubRegisters(t *testing.T) {
	var c CPU
	c.SetReg(x86.EAX, 0x11223344)
	if c.Reg8(0) != 0x44 { // AL
		t.Errorf("AL = %#x", c.Reg8(0))
	}
	if c.Reg8(4) != 0x33 { // AH
		t.Errorf("AH = %#x", c.Reg8(4))
	}
	c.SetReg8(4, 0xff) // AH
	if c.Reg(x86.EAX) != 0x1122ff44 {
		t.Errorf("EAX after AH write = %#x", c.Reg(x86.EAX))
	}
	c.SetReg16(x86.EAX, 0xbeef)
	if c.Reg(x86.EAX) != 0x1122beef {
		t.Errorf("EAX after AX write = %#x", c.Reg(x86.EAX))
	}
}

func TestLoadSetsUpProcess(t *testing.T) {
	img := &Image{
		Entry:    DefaultCodeBase,
		CodeBase: DefaultCodeBase,
		Code:     []byte{0x90, 0xC3},
		Segments: []Segment{{Addr: 0x0a000000, Data: []byte{1, 2, 3}}},
	}
	p := Load(img)
	if p.PC != DefaultCodeBase {
		t.Errorf("PC = %#x", p.PC)
	}
	if p.Mem.Read8(DefaultCodeBase) != 0x90 {
		t.Error("code not loaded")
	}
	if p.Mem.Read8(0x0a000002) != 3 {
		t.Error("segment not loaded")
	}
	sp := p.Reg(x86.ESP)
	if sp == 0 || sp >= DefaultStackTop {
		t.Errorf("ESP = %#x", sp)
	}
	if p.Mem.Read32(sp) != 0 { // argc
		t.Error("argc != 0")
	}
}

func TestKernelExit(t *testing.T) {
	k := NewKernel(DefaultHeapBase)
	m := NewMemory()
	var r [8]uint32
	r[x86.EAX] = 1
	r[x86.EBX] = 7
	k.Syscall(m, &r)
	if !k.Exited || k.ExitCode != 7 {
		t.Errorf("exit: %v %d", k.Exited, k.ExitCode)
	}
}

func TestKernelWriteAndRead(t *testing.T) {
	k := NewKernel(DefaultHeapBase)
	k.SetStdin([]byte("input"))
	m := NewMemory()
	m.WriteBytes(0x2000, []byte("hello"))
	var r [8]uint32
	r[x86.EAX], r[x86.EBX], r[x86.ECX], r[x86.EDX] = 4, 1, 0x2000, 5
	k.Syscall(m, &r)
	if r[x86.EAX] != 5 || k.Stdout.String() != "hello" {
		t.Errorf("write: ret=%d out=%q", r[x86.EAX], k.Stdout.String())
	}
	r[x86.EAX], r[x86.EBX], r[x86.ECX], r[x86.EDX] = 3, 0, 0x3000, 10
	k.Syscall(m, &r)
	if r[x86.EAX] != 5 || string(m.ReadBytes(0x3000, 5)) != "input" {
		t.Errorf("read: ret=%d", r[x86.EAX])
	}
}

func TestKernelBrkAndMmap(t *testing.T) {
	k := NewKernel(0x0a000000)
	m := NewMemory()
	var r [8]uint32
	r[x86.EAX], r[x86.EBX] = 45, 0
	k.Syscall(m, &r)
	if r[x86.EAX] != 0x0a000000 {
		t.Errorf("brk(0) = %#x", r[x86.EAX])
	}
	r[x86.EAX], r[x86.EBX] = 45, 0x0a010000
	k.Syscall(m, &r)
	if r[x86.EAX] != 0x0a010000 {
		t.Errorf("brk(grow) = %#x", r[x86.EAX])
	}
	// brk shrink is ignored (stays).
	r[x86.EAX], r[x86.EBX] = 45, 0x0a000000
	k.Syscall(m, &r)
	if r[x86.EAX] != 0x0a010000 {
		t.Errorf("brk(shrink) = %#x", r[x86.EAX])
	}
	r[x86.EAX], r[x86.ECX] = 192, 0x5000 // mmap2 length
	k.Syscall(m, &r)
	first := r[x86.EAX]
	r[x86.EAX], r[x86.ECX] = 192, 0x1000
	k.Syscall(m, &r)
	if r[x86.EAX] <= first {
		t.Error("mmap regions overlap")
	}
}

func TestKernelUnknownSyscall(t *testing.T) {
	k := NewKernel(DefaultHeapBase)
	m := NewMemory()
	var r [8]uint32
	r[x86.EAX] = 9999
	k.Syscall(m, &r)
	if int32(r[x86.EAX]) != -38 {
		t.Errorf("unknown syscall = %d, want -38 (ENOSYS)", int32(r[x86.EAX]))
	}
}
