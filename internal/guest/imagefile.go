package guest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Image file format: a minimal container for guest programs, written
// by cmd/wlgen and consumed by cmd/tilevm and cmd/x86run. All fields
// little-endian:
//
//	magic   "TVMI"          4 bytes
//	version uint32          (1)
//	entry   uint32
//	codeBase uint32
//	codeLen uint32          followed by code bytes
//	nameLen uint32          followed by name bytes
//	nsegs   uint32
//	  per segment: addr uint32, len uint32, data
const imageMagic = "TVMI"

// WriteTo serializes the image.
func (img *Image) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(imageMagic)
	le := binary.LittleEndian
	var tmp [4]byte
	put := func(v uint32) {
		le.PutUint32(tmp[:], v)
		buf.Write(tmp[:])
	}
	put(1)
	put(img.Entry)
	put(img.CodeBase)
	put(uint32(len(img.Code)))
	buf.Write(img.Code)
	put(uint32(len(img.Name)))
	buf.WriteString(img.Name)
	put(uint32(len(img.Segments)))
	for _, s := range img.Segments {
		put(s.Addr)
		put(uint32(len(s.Data)))
		buf.Write(s.Data)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadImage parses an image file.
func ReadImage(r io.Reader) (*Image, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4+4*4 || string(data[:4]) != imageMagic {
		return nil, fmt.Errorf("guest: not a TVMI image")
	}
	le := binary.LittleEndian
	pos := 4
	next := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("guest: truncated image")
		}
		v := le.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	take := func(n uint32) ([]byte, error) {
		if uint32(pos)+n > uint32(len(data)) || int(n) < 0 {
			return nil, fmt.Errorf("guest: truncated image payload")
		}
		out := data[pos : pos+int(n)]
		pos += int(n)
		return out, nil
	}

	ver, err := next()
	if err != nil || ver != 1 {
		return nil, fmt.Errorf("guest: unsupported image version")
	}
	img := &Image{}
	if img.Entry, err = next(); err != nil {
		return nil, err
	}
	if img.CodeBase, err = next(); err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	code, err := take(n)
	if err != nil {
		return nil, err
	}
	img.Code = append([]byte(nil), code...)
	if n, err = next(); err != nil {
		return nil, err
	}
	name, err := take(n)
	if err != nil {
		return nil, err
	}
	img.Name = string(name)
	nsegs, err := next()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nsegs; i++ {
		addr, err := next()
		if err != nil {
			return nil, err
		}
		ln, err := next()
		if err != nil {
			return nil, err
		}
		seg, err := take(ln)
		if err != nil {
			return nil, err
		}
		img.Segments = append(img.Segments, Segment{Addr: addr, Data: append([]byte(nil), seg...)})
	}
	return img, nil
}

// SaveImage writes the image to a file.
func SaveImage(img *Image, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := img.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadImageFile reads an image from a file.
func LoadImageFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadImage(f)
}

// LoadAutoFile sniffs the file format — ELF32 executable or TVMI
// image — and loads it with the matching loader.
func LoadAutoFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, err = f.Read(magic[:])
	f.Close()
	if err == nil && string(magic[:]) == "\x7fELF" {
		return LoadELFFile(path)
	}
	return LoadImageFile(path)
}
