// Package guest holds the guest process environment: a sparse 32-bit
// flat memory, the architectural register file, the program image
// loader, and a small Linux int-0x80 syscall surface. Both execution
// paths — the reference x86 interpreter and the parallel translator
// running on the simulated Raw machine — operate on these types, which
// is what makes differential testing possible.
package guest

import "encoding/binary"

const (
	pageShift = 16
	pageSize  = 1 << pageShift
	numPages  = 1 << (32 - pageShift)

	// PageBytes is the page granularity of Capture/Restore snapshots,
	// exported for the checkpoint codec's length validation.
	PageBytes = pageSize
)

// Memory is a sparse little-endian 32-bit address space. Pages are
// allocated on first write; reads of unmapped memory return zero, which
// models fresh anonymous pages (the emulated process has no memory
// protection, matching the paper's userland-only environment).
//
// Each page carries a write generation so Capture can snapshot the
// address space incrementally: only pages written since the previous
// capture are copied; clean pages share the prior snapshot's immutable
// backing.
type Memory struct {
	pages    [numPages]*[pageSize]byte
	writeGen [numPages]uint32
	gen      uint32 // current capture generation; bumped by Capture
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{gen: 1} }

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	idx := addr >> pageShift
	p := m.pages[idx]
	if alloc {
		if p == nil {
			p = new([pageSize]byte)
			m.pages[idx] = p
		}
		m.writeGen[idx] = m.gen
	}
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read16 reads a little-endian 16-bit value (unaligned allowed).
func (m *Memory) Read16(addr uint32) uint16 {
	off := addr & (pageSize - 1)
	if p := m.page(addr, false); p != nil && off+2 <= pageSize {
		return binary.LittleEndian.Uint16(p[off:])
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint32, v uint16) {
	off := addr & (pageSize - 1)
	if off+2 <= pageSize {
		binary.LittleEndian.PutUint16(m.page(addr, true)[off:], v)
		return
	}
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Read32 reads a little-endian 32-bit value (unaligned allowed).
func (m *Memory) Read32(addr uint32) uint32 {
	off := addr & (pageSize - 1)
	if p := m.page(addr, false); p != nil && off+4 <= pageSize {
		return binary.LittleEndian.Uint32(p[off:])
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off+4 <= pageSize {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// ReadN reads an n-byte value (n ∈ {1,2,4}) zero-extended to 32 bits.
func (m *Memory) ReadN(addr uint32, n uint8) uint32 {
	switch n {
	case 1:
		return uint32(m.Read8(addr))
	case 2:
		return uint32(m.Read16(addr))
	default:
		return m.Read32(addr)
	}
}

// WriteN writes the low n bytes (n ∈ {1,2,4}) of v.
func (m *Memory) WriteN(addr uint32, v uint32, n uint8) {
	switch n {
	case 1:
		m.Write8(addr, uint8(v))
	case 2:
		m.Write16(addr, uint16(v))
	default:
		m.Write32(addr, v)
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// WriteBytes copies data into memory at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.Write8(addr+uint32(i), b)
	}
}

// CodeWindow returns up to n bytes of code starting at addr, for the
// instruction decoder. Reads never fault; unmapped bytes are zero.
func (m *Memory) CodeWindow(addr uint32, n int) []byte {
	return m.ReadBytes(addr, n)
}
