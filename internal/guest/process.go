package guest

import (
	"bytes"
	"fmt"

	"tilevm/internal/x86"
)

// Standard layout constants for loaded images (the classic Linux/x86
// static-binary layout).
const (
	DefaultCodeBase = 0x08048000
	DefaultStackTop = 0xbf000000
	DefaultHeapBase = 0x0a000000
	MmapBase        = 0x40000000
)

// Image is a loadable guest program: code, initialized data segments,
// and an entry point. It is the workload generator's output format and
// the loader's input.
type Image struct {
	Entry    uint32
	CodeBase uint32
	Code     []byte
	Segments []Segment // initialized data
	HeapBase uint32    // initial program break; 0 means DefaultHeapBase
	Name     string
}

// Segment is one initialized data region.
type Segment struct {
	Addr uint32
	Data []byte
}

// CPU is the guest architectural register state.
type CPU struct {
	R     [8]uint32 // indexed by x86.Reg
	Flags uint32
	PC    uint32
}

// Reg returns a 32-bit register value.
func (c *CPU) Reg(r x86.Reg) uint32 { return c.R[r&7] }

// SetReg sets a 32-bit register.
func (c *CPU) SetReg(r x86.Reg, v uint32) { c.R[r&7] = v }

// Reg8 reads an 8-bit register (AL..BH numbering).
func (c *CPU) Reg8(r x86.Reg) uint32 {
	if r < 4 {
		return c.R[r] & 0xff
	}
	return c.R[r-4] >> 8 & 0xff
}

// SetReg8 writes an 8-bit register.
func (c *CPU) SetReg8(r x86.Reg, v uint32) {
	if r < 4 {
		c.R[r] = c.R[r]&^uint32(0xff) | v&0xff
	} else {
		c.R[r-4] = c.R[r-4]&^uint32(0xff00) | v&0xff<<8
	}
}

// Reg16 reads a 16-bit register.
func (c *CPU) Reg16(r x86.Reg) uint32 { return c.R[r&7] & 0xffff }

// SetReg16 writes a 16-bit register.
func (c *CPU) SetReg16(r x86.Reg, v uint32) {
	c.R[r&7] = c.R[r&7]&^uint32(0xffff) | v&0xffff
}

// RegSized reads a register at the given operand size.
func (c *CPU) RegSized(r x86.Reg, size uint8) uint32 {
	switch size {
	case 1:
		return c.Reg8(r)
	case 2:
		return c.Reg16(r)
	default:
		return c.Reg(r)
	}
}

// SetRegSized writes a register at the given operand size (32-bit
// writes replace; 8/16-bit writes merge, as on x86).
func (c *CPU) SetRegSized(r x86.Reg, v uint32, size uint8) {
	switch size {
	case 1:
		c.SetReg8(r, v)
	case 2:
		c.SetReg16(r, v)
	default:
		c.SetReg(r, v)
	}
}

// Process is one guest process: its memory, registers, and kernel
// state. Load builds it from an Image.
type Process struct {
	CPU
	Mem  *Memory
	Kern *Kernel
	Name string
}

// Load maps an image and prepares the initial register state: ESP at
// the stack top with a minimal (argc=0, argv=NULL, envp=NULL) frame.
func Load(img *Image) *Process {
	mem := NewMemory()
	mem.WriteBytes(img.CodeBase, img.Code)
	for _, seg := range img.Segments {
		mem.WriteBytes(seg.Addr, seg.Data)
	}
	heap := img.HeapBase
	if heap == 0 {
		heap = DefaultHeapBase
	}
	p := &Process{
		Mem:  mem,
		Kern: NewKernel(heap),
		Name: img.Name,
	}
	p.PC = img.Entry
	sp := uint32(DefaultStackTop)
	// argc / argv NULL / envp NULL.
	sp -= 4
	mem.Write32(sp, 0)
	sp -= 4
	mem.Write32(sp, 0)
	sp -= 4
	mem.Write32(sp, 0)
	p.SetReg(x86.ESP, sp)
	return p
}

// Exited reports whether the process has called exit.
func (p *Process) Exited() bool { return p.Kern.Exited }

// Kernel implements the proxied syscall surface. It is deterministic:
// "time" is a counter, stdin is a fixed buffer.
type Kernel struct {
	Exited   bool
	ExitCode int32
	Stdout   bytes.Buffer
	Stdin    bytes.Reader
	brk      uint32
	mmapTop  uint32
	clock    uint32
	Calls    uint64 // number of syscalls serviced
}

// NewKernel returns a kernel with the program break at heapBase.
func NewKernel(heapBase uint32) *Kernel {
	return &Kernel{brk: heapBase, mmapTop: MmapBase}
}

// SetStdin provides the bytes read(2) will return.
func (k *Kernel) SetStdin(data []byte) { k.Stdin.Reset(data) }

// Linux i386 syscall numbers (the subset we proxy).
const (
	sysExit      = 1
	sysRead      = 3
	sysWrite     = 4
	sysGetpid    = 20
	sysBrk       = 45
	sysIoctl     = 54
	sysMmap      = 90
	sysMunmap    = 91
	sysUname     = 122
	sysMmap2     = 192
	sysExitGroup = 252
	sysTime      = 13
)

const enosys = ^uint32(0) - 37 // -38 (ENOSYS)

// Syscall services an int 0x80 with the given register file, mutating
// memory and registers per the Linux i386 ABI (EAX = number and return
// value; EBX, ECX, EDX = arguments).
func (k *Kernel) Syscall(mem *Memory, r *[8]uint32) {
	k.Calls++
	num := r[x86.EAX]
	a1, a2, a3 := r[x86.EBX], r[x86.ECX], r[x86.EDX]
	switch num {
	case sysExit, sysExitGroup:
		k.Exited = true
		k.ExitCode = int32(a1)
		r[x86.EAX] = 0
	case sysRead:
		if a1 != 0 { // only stdin
			r[x86.EAX] = ^uint32(8) // -EBADF
			return
		}
		buf := make([]byte, a3)
		n, _ := k.Stdin.Read(buf)
		mem.WriteBytes(a2, buf[:n])
		r[x86.EAX] = uint32(n)
	case sysWrite:
		if a1 != 1 && a1 != 2 {
			r[x86.EAX] = ^uint32(8)
			return
		}
		k.Stdout.Write(mem.ReadBytes(a2, int(a3)))
		r[x86.EAX] = a3
	case sysGetpid:
		r[x86.EAX] = 1000
	case sysBrk:
		if a1 != 0 && a1 >= k.brk {
			k.brk = a1
		}
		r[x86.EAX] = k.brk
	case sysIoctl:
		r[x86.EAX] = 0
	case sysMmap, sysMmap2:
		// Anonymous mapping only; length is argument 2.
		length := (a2 + 0xfff) &^ uint32(0xfff)
		addr := k.mmapTop
		k.mmapTop += length
		r[x86.EAX] = addr
	case sysMunmap:
		r[x86.EAX] = 0
	case sysUname:
		mem.WriteBytes(a1, []byte("tilevm\x00"))
		r[x86.EAX] = 0
	case sysTime:
		k.clock++
		if a1 != 0 {
			mem.Write32(a1, k.clock)
		}
		r[x86.EAX] = k.clock
	default:
		r[x86.EAX] = enosys
	}
}

// String summarizes the CPU state, for test failure messages.
func (c *CPU) String() string {
	return fmt.Sprintf(
		"eax=%08x ecx=%08x edx=%08x ebx=%08x esp=%08x ebp=%08x esi=%08x edi=%08x fl=%04x pc=%08x",
		c.R[0], c.R[1], c.R[2], c.R[3], c.R[4], c.R[5], c.R[6], c.R[7], c.Flags, c.PC)
}
