package guest

import (
	"encoding/binary"
	"io"
	"sort"
)

// MemImage is an immutable point-in-time snapshot of a Memory. Pages
// are keyed by page index; each value is a PageBytes-long copy (or a
// slice shared with the previous snapshot when the page was not written
// in between — the copy-on-write side of incremental capture). Callers
// must never mutate the page slices.
type MemImage struct {
	Pages map[uint32][]byte
}

// Capture snapshots the address space. prev is the immediately
// preceding snapshot of the same Memory (nil for a full capture): pages
// not written since prev was taken share its backing instead of being
// copied, so steady-state capture cost is proportional to the write
// working set, not the footprint.
func (m *Memory) Capture(prev *MemImage) *MemImage {
	if m.gen == 0 {
		m.gen = 1
	}
	img := &MemImage{Pages: make(map[uint32][]byte)}
	for idx := range m.pages {
		p := m.pages[idx]
		if p == nil {
			continue
		}
		if prev != nil && m.writeGen[idx] < m.gen {
			if old, ok := prev.Pages[uint32(idx)]; ok {
				img.Pages[uint32(idx)] = old
				continue
			}
		}
		cp := make([]byte, pageSize)
		copy(cp, p[:])
		img.Pages[uint32(idx)] = cp
	}
	m.gen++
	return img
}

// Restore replaces the address space contents with the snapshot. Pages
// are installed as fresh copies so future writes cannot corrupt the
// (shared, immutable) snapshot backing.
func (m *Memory) Restore(img *MemImage) {
	for i := range m.pages {
		m.pages[i] = nil
		m.writeGen[i] = 0
	}
	if m.gen == 0 {
		m.gen = 1
	}
	for idx, data := range img.Pages {
		p := new([pageSize]byte)
		copy(p[:], data)
		m.pages[idx] = p
		m.writeGen[idx] = m.gen
	}
}

// Hash returns a content hash of the address space: FNV-1a over
// (page index, page bytes) in index order, skipping all-zero pages so
// an allocated-but-zero page hashes identically to an unmapped one
// (both read as zero). Memory.Hash and MemImage.Hash agree for a
// snapshot of the same contents.
func (m *Memory) Hash() uint64 {
	h := fnvOffset
	for idx := range m.pages {
		if p := m.pages[idx]; p != nil {
			h = hashPage(h, uint32(idx), p[:])
		}
	}
	return h
}

// Hash returns the same content hash as Memory.Hash computed over the
// snapshot.
func (img *MemImage) Hash() uint64 {
	idxs := make([]uint32, 0, len(img.Pages))
	for idx := range img.Pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	h := fnvOffset
	for _, idx := range idxs {
		h = hashPage(h, idx, img.Pages[idx])
	}
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashPage(h uint64, idx uint32, data []byte) uint64 {
	if allZero(data) {
		return h
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], idx)
	h = fnvBytes(h, hdr[:])
	return fnvBytes(h, data)
}

func fnvBytes(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

func allZero(data []byte) bool {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		if binary.LittleEndian.Uint64(data[i:]) != 0 {
			return false
		}
	}
	for ; i < len(data); i++ {
		if data[i] != 0 {
			return false
		}
	}
	return true
}

// KernelState is a restorable snapshot of the deterministic kernel
// model: syscall-visible state only (the Kernel has no asynchronous
// behavior, so this plus Memory and CPU is the whole guest-visible
// machine state).
type KernelState struct {
	Exited   bool
	ExitCode int32
	Stdout   []byte
	Stdin    []byte // full stdin buffer
	StdinOff int64  // read cursor into Stdin
	Brk      uint32
	MmapTop  uint32
	Clock    uint32
	Calls    uint64
}

// Export snapshots the kernel. The stdin cursor is captured via ReadAt
// so exporting does not disturb the stream position.
func (k *Kernel) Export() KernelState {
	s := KernelState{
		Exited:   k.Exited,
		ExitCode: k.ExitCode,
		Stdout:   append([]byte(nil), k.Stdout.Bytes()...),
		Brk:      k.brk,
		MmapTop:  k.mmapTop,
		Clock:    k.clock,
		Calls:    k.Calls,
	}
	if n := k.Stdin.Size(); n > 0 {
		s.Stdin = make([]byte, n)
		if _, err := k.Stdin.ReadAt(s.Stdin, 0); err != nil && err != io.EOF {
			panic("guest: stdin snapshot: " + err.Error())
		}
		s.StdinOff = n - int64(k.Stdin.Len())
	}
	return s
}

// RestoreState rolls the kernel back to a previously exported snapshot.
func (k *Kernel) RestoreState(s KernelState) {
	k.Exited = s.Exited
	k.ExitCode = s.ExitCode
	k.Stdout.Reset()
	k.Stdout.Write(s.Stdout)
	k.Stdin.Reset(append([]byte(nil), s.Stdin...))
	if s.StdinOff > 0 {
		if _, err := k.Stdin.Seek(s.StdinOff, io.SeekStart); err != nil {
			panic("guest: stdin restore: " + err.Error())
		}
	}
	k.brk = s.Brk
	k.mmapTop = s.MmapTop
	k.clock = s.Clock
	k.Calls = s.Calls
}
