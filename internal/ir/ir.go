// Package ir is the translator's low-level intermediate representation:
// host (Raw) instructions over an infinite set of virtual registers,
// with symbolic branch labels, grouped into single-entry translation
// blocks. The guest architectural registers are pinned to fixed host
// registers (rawisa.RegEAX..RegFlags) and appear directly; temporaries
// are virtual registers ≥ FirstVReg that the register allocator later
// maps onto the host temp registers (with spills to tile-local scratch
// memory if needed).
//
// This is the "MIPS-like IR" of the paper's translation pipeline; the
// "x86-like IR" upstream is the decoded guest instruction stream plus
// flag-liveness annotations (package translate).
package ir

import (
	"fmt"

	"tilevm/internal/rawisa"
)

// FirstVReg is the first virtual register number. Physical registers
// occupy 0..31.
const FirstVReg = 32

// NoLabel marks an instruction with no branch label.
const NoLabel = -1

// Inst is one IR instruction: a host instruction whose register fields
// may name virtual registers and whose branch target is symbolic.
type Inst struct {
	rawisa.Inst
	Label int // branch target label, or NoLabel
}

// Block is a translation unit: the host code for one guest basic block.
type Block struct {
	// GuestAddr is the guest virtual address of the first instruction.
	GuestAddr uint32
	// GuestLen is the number of guest code bytes covered.
	GuestLen uint32
	// NumGuest is the number of guest instructions translated.
	NumGuest int
	// Code is the instruction sequence. Control flow may only go
	// forward or to labels within the block; every path ends in an
	// exit (EXITI/EXITR/CHAIN) or SYSC-terminated exit.
	Code []Inst
	// LabelPos maps label ids to instruction indices (set by Finish).
	LabelPos []int
	// NumVRegs is the number of virtual registers allocated.
	NumVRegs int
}

// Builder constructs a Block.
type Builder struct {
	b         Block
	nextVReg  uint8
	numLabels int
	finished  bool
}

// NewBuilder starts a block at the given guest address.
func NewBuilder(guestAddr uint32) *Builder {
	return &Builder{
		b:        Block{GuestAddr: guestAddr},
		nextVReg: FirstVReg,
	}
}

// VReg allocates a fresh virtual register.
func (bl *Builder) VReg() uint8 {
	if bl.nextVReg == 0 { // wrapped past 255
		panic("ir: virtual register space exhausted; split the block")
	}
	r := bl.nextVReg
	bl.nextVReg++
	return r
}

// VRegsInUse returns the number of virtual registers allocated so far.
func (bl *Builder) VRegsInUse() int { return int(bl.nextVReg) - FirstVReg }

// NewLabel allocates a label to be bound later with Bind.
func (bl *Builder) NewLabel() int {
	id := bl.numLabels
	bl.numLabels++
	return id
}

// Bind attaches a label to the next emitted instruction.
func (bl *Builder) Bind(label int) {
	for len(bl.b.LabelPos) <= label {
		bl.b.LabelPos = append(bl.b.LabelPos, -1)
	}
	if bl.b.LabelPos[label] != -1 {
		panic("ir: label bound twice")
	}
	bl.b.LabelPos[label] = len(bl.b.Code)
}

// Emit appends a non-branching instruction.
func (bl *Builder) Emit(in rawisa.Inst) {
	bl.b.Code = append(bl.b.Code, Inst{Inst: in, Label: NoLabel})
}

// EmitBranch appends a conditional branch to a label.
func (bl *Builder) EmitBranch(in rawisa.Inst, label int) {
	bl.b.Code = append(bl.b.Code, Inst{Inst: in, Label: label})
}

// Common emission helpers.

// Op3 emits a three-register ALU op.
func (bl *Builder) Op3(op rawisa.Op, rd, rs, rt uint8) {
	bl.Emit(rawisa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// OpI emits an immediate ALU op.
func (bl *Builder) OpI(op rawisa.Op, rd, rs uint8, imm int32) {
	bl.Emit(rawisa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Move emits rd = rs.
func (bl *Builder) Move(rd, rs uint8) {
	if rd == rs {
		return
	}
	bl.Op3(rawisa.OR, rd, rs, rawisa.RegZero)
}

// LoadImm emits rd = v using LUI/ORI (or a single instruction when the
// constant fits).
func (bl *Builder) LoadImm(rd uint8, v uint32) {
	switch {
	case v == 0:
		bl.Move(rd, rawisa.RegZero)
	case rawisa.FitsSImm(int32(v)):
		bl.OpI(rawisa.ADDI, rd, rawisa.RegZero, int32(v))
	case v&0xffff == 0:
		bl.OpI(rawisa.LUI, rd, 0, int32(v>>16))
	default:
		bl.OpI(rawisa.LUI, rd, 0, int32(v>>16))
		bl.OpI(rawisa.ORI, rd, rd, int32(v&0xffff))
	}
}

// AddImm emits rd = rs + v, splitting wide constants.
func (bl *Builder) AddImm(rd, rs uint8, v int32) {
	if v == 0 {
		bl.Move(rd, rs)
		return
	}
	if rawisa.FitsSImm(v) {
		bl.OpI(rawisa.ADDI, rd, rs, v)
		return
	}
	t := bl.VReg()
	bl.LoadImm(t, uint32(v))
	bl.Op3(rawisa.ADD, rd, rs, t)
}

// ExitImm emits a non-chainable exit to a literal guest PC.
func (bl *Builder) ExitImm(guestPC uint32) {
	bl.Emit(rawisa.Inst{Op: rawisa.EXITI, Target: guestPC})
}

// Chain emits a chainable direct-branch exit to a guest PC.
func (bl *Builder) Chain(guestPC uint32) {
	bl.Emit(rawisa.Inst{Op: rawisa.CHAIN, Target: guestPC})
}

// ExitReg emits an exit whose next guest PC is in a register.
func (bl *Builder) ExitReg(rs uint8) {
	bl.Emit(rawisa.Inst{Op: rawisa.EXITR, Rs: rs})
}

// Finish validates and returns the block.
func (bl *Builder) Finish(guestLen uint32, numGuest int) (*Block, error) {
	if bl.finished {
		panic("ir: Finish called twice")
	}
	bl.finished = true
	bl.b.GuestLen = guestLen
	bl.b.NumGuest = numGuest
	bl.b.NumVRegs = bl.VRegsInUse()
	if err := bl.b.Validate(); err != nil {
		return nil, err
	}
	return &bl.b, nil
}

// Validate checks structural invariants: all labels bound, branches
// reference valid labels, the block is exit-terminated, and no path
// falls off the end.
func (b *Block) Validate() error {
	if len(b.Code) == 0 {
		return fmt.Errorf("ir: empty block at %#x", b.GuestAddr)
	}
	for i, in := range b.Code {
		switch in.Op {
		case rawisa.BEQ, rawisa.BNE, rawisa.BLEZ, rawisa.BGTZ, rawisa.BLTZ, rawisa.BGEZ:
			if in.Label == NoLabel || in.Label >= len(b.LabelPos) ||
				b.LabelPos[in.Label] < 0 || b.LabelPos[in.Label] >= len(b.Code) {
				return fmt.Errorf("ir: branch at %d has invalid label", i)
			}
		case rawisa.J, rawisa.JAL, rawisa.JR:
			return fmt.Errorf("ir: raw jump at %d not allowed in IR (use exits)", i)
		}
	}
	last := b.Code[len(b.Code)-1]
	if !last.IsBlockEnd() {
		return fmt.Errorf("ir: block at %#x does not end in an exit (%v)", b.GuestAddr, last.Inst)
	}
	return nil
}

// String renders the block for debugging.
func (b *Block) String() string {
	out := fmt.Sprintf("block %#x (%d guest insts, %d bytes):\n", b.GuestAddr, b.NumGuest, b.GuestLen)
	labelAt := map[int][]int{}
	for id, pos := range b.LabelPos {
		labelAt[pos] = append(labelAt[pos], id)
	}
	for i, in := range b.Code {
		for _, l := range labelAt[i] {
			out += fmt.Sprintf("L%d:\n", l)
		}
		if in.Label != NoLabel {
			out += fmt.Sprintf("%4d: %v -> L%d\n", i, in.Inst.Op, in.Label)
			continue
		}
		out += fmt.Sprintf("%4d: %v\n", i, in.Inst)
	}
	return out
}
