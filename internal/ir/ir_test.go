package ir

import (
	"strings"
	"testing"

	"tilevm/internal/rawisa"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0x8048000)
	v1 := b.VReg()
	v2 := b.VReg()
	if v1 < FirstVReg || v2 != v1+1 {
		t.Fatalf("vregs: %d %d", v1, v2)
	}
	b.LoadImm(v1, 0x12345678)
	b.Op3(rawisa.ADD, v2, v1, rawisa.RegEAX)
	b.Move(rawisa.RegEAX, v2)
	b.ExitImm(0x8048005)
	blk, err := b.Finish(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blk.GuestAddr != 0x8048000 || blk.GuestLen != 5 || blk.NumGuest != 1 {
		t.Errorf("metadata: %+v", blk)
	}
	if blk.NumVRegs != 2 {
		t.Errorf("NumVRegs = %d", blk.NumVRegs)
	}
}

func TestLoadImmShapes(t *testing.T) {
	cases := []struct {
		v    uint32
		want int // instruction count
	}{
		{0, 0},          // move from zero folds to nothing for vregs? (OR to self) — emitted as OR
		{42, 1},         // ADDI
		{0x10000, 1},    // LUI only
		{0x12345678, 2}, // LUI+ORI
		{0xffffffff, 1}, // fits signed imm (-1)
	}
	for _, c := range cases {
		b := NewBuilder(0)
		v := b.VReg()
		b.LoadImm(v, c.v)
		n := len(b.b.Code)
		if c.v == 0 {
			if n > 1 {
				t.Errorf("LoadImm(0): %d insts", n)
			}
			continue
		}
		if n != c.want {
			t.Errorf("LoadImm(%#x): %d insts, want %d", c.v, n, c.want)
		}
	}
}

func TestMoveElidesSelf(t *testing.T) {
	b := NewBuilder(0)
	b.Move(5, 5)
	if len(b.b.Code) != 0 {
		t.Error("self-move emitted code")
	}
}

func TestAddImmWide(t *testing.T) {
	b := NewBuilder(0)
	v := b.VReg()
	b.AddImm(v, rawisa.RegEAX, 0x123456) // needs materialization
	b.ExitImm(0)
	blk, err := b.Finish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Must not contain any out-of-range immediates.
	for _, in := range blk.Code {
		switch in.Op {
		case rawisa.ADDI:
			if !rawisa.FitsSImm(in.Imm) {
				t.Errorf("ADDI imm %d out of range", in.Imm)
			}
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	b := NewBuilder(0)
	l := b.NewLabel()
	b.EmitBranch(rawisa.Inst{Op: rawisa.BEQ, Rs: 1, Rt: 0}, l)
	b.OpI(rawisa.ADDI, rawisa.RegEAX, rawisa.RegEAX, 1)
	b.Bind(l)
	b.ExitImm(0x10)
	blk, err := b.Finish(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blk.LabelPos[l] != 2 {
		t.Errorf("label pos = %d, want 2", blk.LabelPos[l])
	}
	s := blk.String()
	if !strings.Contains(s, "L0") {
		t.Errorf("String() missing label:\n%s", s)
	}
}

func TestValidateRejectsBadBlocks(t *testing.T) {
	// No exit at end.
	b := NewBuilder(0)
	b.OpI(rawisa.ADDI, rawisa.RegEAX, rawisa.RegEAX, 1)
	if _, err := b.Finish(1, 1); err == nil {
		t.Error("missing exit accepted")
	}
	// Branch to unbound label.
	b = NewBuilder(0)
	l := b.NewLabel()
	b.EmitBranch(rawisa.Inst{Op: rawisa.BEQ}, l)
	b.ExitImm(0)
	if _, err := b.Finish(1, 1); err == nil {
		t.Error("unbound label accepted")
	}
	// Empty block.
	b = NewBuilder(0)
	if _, err := b.Finish(0, 0); err == nil {
		t.Error("empty block accepted")
	}
	// Raw jump not allowed in IR.
	b = NewBuilder(0)
	b.Emit(rawisa.Inst{Op: rawisa.J, Target: 0})
	if _, err := b.Finish(1, 1); err == nil {
		t.Error("raw J accepted")
	}
}

func TestBindTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double bind did not panic")
		}
	}()
	b := NewBuilder(0)
	l := b.NewLabel()
	b.Bind(l)
	b.ExitImm(0)
	b.Bind(l)
}
