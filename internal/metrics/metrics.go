// Package metrics collects the counters the evaluation reports are
// built from (Figures 4-11). The engine fills a Set at the end of a
// run; the simulation is single-threaded in virtual time, so counters
// need no synchronization.
package metrics

// Set is the full counter set of one run.
type Set struct {
	// Time.
	Cycles uint64

	// Execution.
	BlockDispatches uint64 // dispatch-loop iterations
	HostInsts       uint64 // host instructions retired on the exec tile
	GuestInsts      uint64 // guest instructions (from block metadata)
	Syscalls        uint64
	Assists         uint64

	// Code caches.
	L1CLookups uint64
	L1CHits    uint64
	L1CFlushes uint64
	Chains     uint64
	L15Lookups uint64
	L15Hits    uint64
	L2CAccess  uint64 // manager L2 code cache accesses
	L2CMisses  uint64 // → translations demanded
	L2CStores  uint64

	// Translation.
	Translations    uint64 // blocks translated (including speculative)
	TransGuestInsts uint64 // guest instructions translated
	DemandMisses    uint64 // exec-visible L2 code cache misses
	SpecWasted      uint64 // speculative translations never demanded

	// Tiered translation (all zero unless tier-0 is enabled).
	Tier0Installs uint64 // tier-0 template blocks installed in the L2 code cache
	Tier1Installs uint64 // optimizing-tier blocks installed (including promotions)
	Promotions    uint64 // hot tier-0 blocks re-translated and replaced by tier-1
	WarmupCycles  uint64 // cycle of the Nth retired host instruction (0 = not armed/reached)

	// Data memory.
	DL1Accesses uint64 // guest accesses on the exec tile
	DL1Misses   uint64 // tile D-cache misses → memory system
	L2DRequests uint64
	L2DMisses   uint64 // bank misses → DRAM
	TLBMisses   uint64

	// Reconfiguration.
	Reconfigs       uint64
	MorphFlushLines uint64

	// Self-modifying code.
	SMCInvalidations uint64

	// Fault injection and recovery (all zero on fault-free runs).
	FaultsInjected uint64 // total faults of all kinds actually injected
	MsgsDropped    uint64
	MsgsDelayed    uint64
	MsgsCorrupted  uint64
	DRAMErrors     uint64
	TileFails      uint64 // fail-stops observed
	TileStalls     uint64 // transient stalls charged
	Timeouts       uint64 // watchdog expiries (exec retries + manager deadlines)
	Retries        uint64 // requests re-sent after a timeout
	RoleRemaps     uint64 // dead tiles excised from the virtual architecture
	WritebacksLost uint64 // dirty lines in a bank at the moment it died
	RecoveryCycles uint64 // detection-to-remap latency, summed over excisions

	// Checkpoint/rollback recovery (all zero unless checkpointing is on).
	Checkpoints       uint64 // snapshots captured
	Rollbacks         uint64 // re-executions from a checkpoint
	ReexecCycles      uint64 // cycles between checkpoint and fault detection, re-executed
	RollbackCycles    uint64 // modeled restore cost charged between detection and restart
	FaultMsgsRecycled uint64 // dropped/corrupted pooled messages safely reclaimed
}

// FleetSet is the fleet-level counter set: admission, retry, and
// fault-policy outcomes that have no single-guest equivalent. All
// fields stay zero on a fault-free, deadline-free fleet run.
type FleetSet struct {
	GuestsFinished         uint64 // guests that ran to a clean exit
	GuestsRetried          uint64 // re-admissions after a slot quarantine
	GuestsAborted          uint64 // guests terminal after exhausting MaxAttempts
	GuestsDeadlineExceeded uint64 // guests cancelled at their deadline
	SlotsQuarantined       uint64 // slots excised from the carve
	DeadlineMet            uint64 // finished guests that beat their deadline
	DeadlineTotal          uint64 // guests that had a deadline at all
	GoodputInsts           uint64 // host instructions retired by finished guests
	ElasticGrows           uint64 // idle slots that donated their service tiles to busy peers
	ElasticShrinks         uint64 // slots that reclaimed their donated tiles for a new admission
}

// SLOAttainment is the fraction of deadline-carrying guests that
// finished in time; 1 when no guest had a deadline (vacuously met).
func (f *FleetSet) SLOAttainment() float64 {
	if f.DeadlineTotal == 0 {
		return 1
	}
	return float64(f.DeadlineMet) / float64(f.DeadlineTotal)
}

// Goodput is useful host instructions per cycle of makespan: work
// from aborted or deadline-killed attempts counts for nothing.
func (f *FleetSet) Goodput(makespan uint64) float64 {
	if makespan == 0 {
		return 0
	}
	return float64(f.GoodputInsts) / float64(makespan)
}

// L2CAccessesPerCycle is Figure 6's metric.
func (s *Set) L2CAccessesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.L2CAccess) / float64(s.Cycles)
}

// L2CMissRate is Figure 7's metric: misses per L2 code cache access.
func (s *Set) L2CMissRate() float64 {
	if s.L2CAccess == 0 {
		return 0
	}
	return float64(s.L2CMisses) / float64(s.L2CAccess)
}

// DL1MissRate is the exec-tile data cache miss rate.
func (s *Set) DL1MissRate() float64 {
	if s.DL1Accesses == 0 {
		return 0
	}
	return float64(s.DL1Misses) / float64(s.DL1Accesses)
}

// L15HitRate is the fraction of L1.5 lookups that hit.
func (s *Set) L15HitRate() float64 {
	if s.L15Lookups == 0 {
		return 0
	}
	return float64(s.L15Hits) / float64(s.L15Lookups)
}
