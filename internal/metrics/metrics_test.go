package metrics

import "testing"

func TestDerivedRates(t *testing.T) {
	s := Set{
		Cycles:      1000,
		L2CAccess:   10,
		L2CMisses:   4,
		DL1Accesses: 200,
		DL1Misses:   50,
		L15Lookups:  80,
		L15Hits:     60,
	}
	if got := s.L2CAccessesPerCycle(); got != 0.01 {
		t.Errorf("L2CAccessesPerCycle = %v", got)
	}
	if got := s.L2CMissRate(); got != 0.4 {
		t.Errorf("L2CMissRate = %v", got)
	}
	if got := s.DL1MissRate(); got != 0.25 {
		t.Errorf("DL1MissRate = %v", got)
	}
	if got := s.L15HitRate(); got != 0.75 {
		t.Errorf("L15HitRate = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var s Set
	if s.L2CAccessesPerCycle() != 0 || s.L2CMissRate() != 0 ||
		s.DL1MissRate() != 0 || s.L15HitRate() != 0 {
		t.Error("zero denominators must yield zero, not NaN")
	}
}
