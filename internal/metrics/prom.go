package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Prometheus-text-format registry, hand-rolled so the service daemon
// can expose an industry-standard /metrics endpoint without pulling in
// a client library. Only the small slice of the exposition format the
// daemon needs is implemented: counters, gauges (direct and
// callback-backed), single-label counter vectors, and cumulative
// histograms. WriteText output is deterministic — metrics sorted by
// name, vector children by label value — so scrapes diff cleanly and
// tests can assert on exact text.

// A Registry holds named metrics and renders them in Prometheus text
// exposition format (version 0.0.4). All methods are safe for
// concurrent use; registration of a duplicate name panics, since that
// is a programming error, not an operating condition.
type Registry struct {
	mu   sync.Mutex
	byID map[string]promMetric
}

// promMetric is one registered family: it renders its # HELP/# TYPE
// header and sample lines.
type promMetric interface {
	writeProm(w io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]promMetric{}}
}

func (r *Registry) register(name string, m promMetric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byID[name] = m
}

// WriteText renders every registered metric in Prometheus text
// exposition format, sorted by metric name.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.byID))
	for n := range r.byID {
		names = append(names, n)
	}
	ms := make([]promMetric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.byID[n])
	}
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the registry to a string (convenience for tests and
// logs).
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b) // strings.Builder never errors
	return b.String()
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// A Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) writeProm(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// A Gauge is a float64 that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // math.Float64bits
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeProm(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
	return err
}

// A GaugeFunc samples its value from a callback at scrape time — for
// quantities the owner already tracks (queue depth, jobs in flight).
// The callback must be safe to call from the scraping goroutine.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a callback-backed gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, &GaugeFunc{name: name, help: help, fn: fn})
}

func (g *GaugeFunc) writeProm(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
	return err
}

// A CounterVec is a family of counters keyed by one label.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*atomic.Uint64
}

// NewCounterVec registers and returns a single-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label,
		children: map[string]*atomic.Uint64{}}
	r.register(name, v)
	return v
}

// child returns (creating if needed) the counter for a label value.
func (v *CounterVec) child(value string) *atomic.Uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &atomic.Uint64{}
		v.children[value] = c
	}
	return c
}

// Inc adds one to the counter for the given label value.
func (v *CounterVec) Inc(value string) { v.child(value).Add(1) }

// Add adds n to the counter for the given label value.
func (v *CounterVec) Add(value string, n uint64) { v.child(value).Add(n) }

// Value returns the count for a label value (0 if never touched).
func (v *CounterVec) Value(value string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c.Load()
	}
	return 0
}

// Total sums every child.
func (v *CounterVec) Total() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t uint64
	for _, c := range v.children {
		t += c.Load()
	}
	return t
}

func (v *CounterVec) writeProm(w io.Writer) error {
	if err := writeHeader(w, v.name, v.help, "counter"); err != nil {
		return err
	}
	v.mu.Lock()
	vals := make([]string, 0, len(v.children))
	for lv := range v.children {
		vals = append(vals, lv)
	}
	sort.Strings(vals)
	type sample struct {
		lv string
		n  uint64
	}
	samples := make([]sample, 0, len(vals))
	for _, lv := range vals {
		samples = append(samples, sample{lv, v.children[lv].Load()})
	}
	v.mu.Unlock()
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n",
			v.name, v.label, escapeLabel(s.lv), s.n); err != nil {
			return err
		}
	}
	return nil
}

// A Histogram is a cumulative-bucket histogram with a sum and count,
// rendered with the conventional _bucket/_sum/_count sample names.
// Observations and rendering may race benignly across buckets — each
// individual counter is atomic, and scrapes are point-in-time
// snapshots, the same contract real Prometheus clients offer.
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64 // math.Float64bits, CAS-updated
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &Histogram{name: name, help: help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds))}
	r.register(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) writeProm(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			h.name, formatFloat(ub), cum); err != nil {
			return err
		}
	}
	count := h.count.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, count); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, count)
	return err
}
