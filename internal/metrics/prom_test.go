package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryText pins the exact exposition text: sorted families,
// sorted vector children, histogram bucket/sum/count conventions.
func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("tilevmd_jobs_submitted_total", "Jobs accepted for admission.")
	c.Add(3)
	g := r.NewGauge("tilevmd_queue_depth", "Jobs waiting for a batch.")
	g.Set(2)
	r.NewGaugeFunc("tilevmd_up", "Always 1 while serving.", func() float64 { return 1 })
	v := r.NewCounterVec("tilevmd_jobs_shed_total", "Jobs rejected at admission.", "class")
	v.Inc("low")
	v.Add("high", 2)
	h := r.NewHistogram("tilevmd_job_latency_seconds", "Submit-to-terminal latency.",
		[]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	want := strings.Join([]string{
		"# HELP tilevmd_job_latency_seconds Submit-to-terminal latency.",
		"# TYPE tilevmd_job_latency_seconds histogram",
		`tilevmd_job_latency_seconds_bucket{le="0.1"} 1`,
		`tilevmd_job_latency_seconds_bucket{le="1"} 2`,
		`tilevmd_job_latency_seconds_bucket{le="+Inf"} 3`,
		"tilevmd_job_latency_seconds_sum 5.55",
		"tilevmd_job_latency_seconds_count 3",
		"# HELP tilevmd_jobs_shed_total Jobs rejected at admission.",
		"# TYPE tilevmd_jobs_shed_total counter",
		`tilevmd_jobs_shed_total{class="high"} 2`,
		`tilevmd_jobs_shed_total{class="low"} 1`,
		"# HELP tilevmd_jobs_submitted_total Jobs accepted for admission.",
		"# TYPE tilevmd_jobs_submitted_total counter",
		"tilevmd_jobs_submitted_total 3",
		"# HELP tilevmd_queue_depth Jobs waiting for a batch.",
		"# TYPE tilevmd_queue_depth gauge",
		"tilevmd_queue_depth 2",
		"# HELP tilevmd_up Always 1 while serving.",
		"# TYPE tilevmd_up gauge",
		"tilevmd_up 1",
		"",
	}, "\n")
	if got := r.Text(); got != want {
		t.Errorf("exposition text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Rendering is stable across repeated scrapes.
	if again := r.Text(); again != want {
		t.Error("second scrape differs from the first")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x", "")
}

func TestCounterVecAccessors(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("n", "", "k")
	if v.Value("absent") != 0 {
		t.Error("untouched child not zero")
	}
	v.Inc("a")
	v.Add("b", 4)
	if v.Total() != 5 || v.Value("a") != 1 || v.Value("b") != 4 {
		t.Errorf("counts = total %d, a %d, b %d", v.Total(), v.Value("a"), v.Value("b"))
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc", "h", "k")
	v.Inc("a\"b\\c\nd")
	if got, want := r.Text(), `esc{k="a\"b\\c\nd"} 1`; !strings.Contains(got, want) {
		t.Errorf("escaped sample %q not in:\n%s", want, got)
	}
}

func TestHistogramEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2})
	h.Observe(1) // on-boundary lands in the le="1" bucket
	h.Observe(3) // beyond the last bound: only +Inf and count
	text := r.Text()
	for _, want := range []string{
		`h_bucket{le="1"} 1`, `h_bucket{le="2"} 1`, `h_bucket{le="+Inf"} 2`,
		"h_sum 4", "h_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("descending bounds did not panic")
		}
	}()
	r.NewHistogram("bad", "", []float64{2, 1})
}

// TestConcurrentUpdates drives every metric kind from many goroutines
// under -race and checks the totals.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	v := r.NewCounterVec("v", "", "k")
	h := r.NewHistogram("h", "", []float64{10})
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Set(float64(i))
				v.Inc("k1")
				h.Observe(1)
				_ = r.Text() // concurrent scrapes must be safe
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each || v.Value("k1") != workers*each || h.Count() != workers*each {
		t.Errorf("lost updates: c %d, v %d, h %d", c.Value(), v.Value("k1"), h.Count())
	}
}
