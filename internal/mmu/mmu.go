// Package mmu models the software memory-management unit that runs on
// a dedicated tile (paper §3.2): translation of guest (x86) virtual
// addresses to x86 physical addresses and on to Raw physical addresses,
// with a TLB in tile memory and a two-level page table walked in DRAM
// on a miss.
//
// Frames are allocated sequentially on first touch, so translation is a
// real mapping (not the identity), and the L2 data-cache banks index by
// the translated physical address.
package mmu

import (
	"fmt"
	"sort"
)

const (
	// PageShift is the guest page size (4KB, as on x86).
	PageShift = 12
	PageSize  = 1 << PageShift
)

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement, as maintained in software by the MMU tile.
type TLB struct {
	entries int
	page    []uint32
	frame   []uint32
	used    []uint64
	valid   []bool
	stamp   uint64
	Lookups uint64
	Misses  uint64
	Flushes uint64
}

// NewTLB builds a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	return &TLB{
		entries: entries,
		page:    make([]uint32, entries),
		frame:   make([]uint32, entries),
		used:    make([]uint64, entries),
		valid:   make([]bool, entries),
	}
}

// Lookup searches for a virtual page number; on a hit it returns the
// frame number.
func (t *TLB) Lookup(vpn uint32) (uint32, bool) {
	t.Lookups++
	t.stamp++
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.page[i] == vpn {
			t.used[i] = t.stamp
			return t.frame[i], true
		}
	}
	t.Misses++
	return 0, false
}

// Insert fills an entry (LRU victim).
func (t *TLB) Insert(vpn, frame uint32) {
	victim := 0
	for i := 0; i < t.entries; i++ {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.used[i] < t.used[victim] {
			victim = i
		}
	}
	t.page[victim] = vpn
	t.frame[victim] = frame
	t.used[victim] = t.stamp
	t.valid[victim] = true
}

// Flush invalidates the whole TLB.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.Flushes++
}

// PageTable allocates physical frames on first touch and records the
// virtual→physical mapping (a flat map standing in for the two-level
// table; the walk cost is charged by the MMU tile kernel).
type PageTable struct {
	frames    map[uint32]uint32
	nextFrame uint32
	Walks     uint64
}

// NewPageTable builds an empty table.
func NewPageTable() *PageTable {
	return &PageTable{frames: make(map[uint32]uint32)}
}

// Walk returns the frame for a virtual page, allocating one on first
// touch (anonymous backing, no protection — the prototype's userland
// environment).
func (pt *PageTable) Walk(vpn uint32) uint32 {
	pt.Walks++
	if f, ok := pt.frames[vpn]; ok {
		return f
	}
	f := pt.nextFrame
	pt.nextFrame++
	pt.frames[vpn] = f
	return f
}

// MMU bundles the TLB and page table, exposing the translation the MMU
// tile kernel performs per request.
type MMU struct {
	TLB *TLB
	PT  *PageTable
}

// New builds an MMU with the given TLB size.
func New(tlbEntries int) *MMU {
	return &MMU{TLB: NewTLB(tlbEntries), PT: NewPageTable()}
}

// PTEntry is one virtual-page→frame mapping in an exported snapshot.
type PTEntry struct {
	VPN   uint32
	Frame uint32
}

// State is a restorable snapshot of the MMU: full TLB contents (so a
// restored run re-executes with identical hit/miss timing) and the page
// table as a VPN-sorted slice for deterministic encoding.
type State struct {
	Page    []uint32
	Frame   []uint32
	Used    []uint64
	Valid   []bool
	Stamp   uint64
	Lookups uint64
	Misses  uint64
	Flushes uint64

	PT        []PTEntry
	NextFrame uint32
	Walks     uint64
}

// Export snapshots the MMU.
func (m *MMU) Export() State {
	t := m.TLB
	s := State{
		Page:    append([]uint32(nil), t.page...),
		Frame:   append([]uint32(nil), t.frame...),
		Used:    append([]uint64(nil), t.used...),
		Valid:   append([]bool(nil), t.valid...),
		Stamp:   t.stamp,
		Lookups: t.Lookups,
		Misses:  t.Misses,
		Flushes: t.Flushes,

		NextFrame: m.PT.nextFrame,
		Walks:     m.PT.Walks,
	}
	s.PT = make([]PTEntry, 0, len(m.PT.frames))
	for vpn, f := range m.PT.frames {
		s.PT = append(s.PT, PTEntry{VPN: vpn, Frame: f})
	}
	sort.Slice(s.PT, func(i, j int) bool { return s.PT[i].VPN < s.PT[j].VPN })
	return s
}

// Import restores a snapshot into an MMU with the same TLB size.
func (m *MMU) Import(s State) error {
	t := m.TLB
	if len(s.Page) != t.entries || len(s.Frame) != t.entries ||
		len(s.Used) != t.entries || len(s.Valid) != t.entries {
		return fmt.Errorf("mmu: snapshot has %d TLB entries, MMU has %d", len(s.Page), t.entries)
	}
	copy(t.page, s.Page)
	copy(t.frame, s.Frame)
	copy(t.used, s.Used)
	copy(t.valid, s.Valid)
	t.stamp = s.Stamp
	t.Lookups, t.Misses, t.Flushes = s.Lookups, s.Misses, s.Flushes

	m.PT.frames = make(map[uint32]uint32, len(s.PT))
	for _, e := range s.PT {
		m.PT.frames[e.VPN] = e.Frame
	}
	m.PT.nextFrame = s.NextFrame
	m.PT.Walks = s.Walks
	return nil
}

// Translate maps a guest virtual address to a Raw physical address,
// reporting whether the TLB missed (the kernel charges the walk cost).
func (m *MMU) Translate(vaddr uint32) (paddr uint32, tlbMiss bool) {
	vpn := vaddr >> PageShift
	frame, hit := m.TLB.Lookup(vpn)
	if !hit {
		frame = m.PT.Walk(vpn)
		m.TLB.Insert(vpn, frame)
		tlbMiss = true
	}
	return frame<<PageShift | vaddr&(PageSize-1), tlbMiss
}
