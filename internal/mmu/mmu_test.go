package mmu

import (
	"testing"
	"testing/quick"
)

func TestTranslateConsistency(t *testing.T) {
	m := New(8)
	// Same virtual address always maps to the same physical address.
	p1, miss1 := m.Translate(0x08048123)
	if !miss1 {
		t.Error("first access should miss the TLB")
	}
	p2, miss2 := m.Translate(0x08048123)
	if miss2 {
		t.Error("second access should hit")
	}
	if p1 != p2 {
		t.Errorf("translation changed: %#x vs %#x", p1, p2)
	}
	// Page offset preserved.
	if p1&(PageSize-1) != 0x123 {
		t.Errorf("offset lost: %#x", p1)
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	m := New(64)
	pa, _ := m.Translate(0x1000)
	pb, _ := m.Translate(0x2000)
	if pa>>PageShift == pb>>PageShift {
		t.Error("two pages share a frame")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	m := New(2)
	m.Translate(0x1000)
	m.Translate(0x2000)
	m.Translate(0x1000)                        // refresh page 1
	if _, miss := m.Translate(0x3000); !miss { // evicts page 2
		t.Error("expected miss on new page")
	}
	if _, miss := m.Translate(0x1000); miss {
		t.Error("LRU evicted the recently used page")
	}
	if _, miss := m.Translate(0x2000); !miss {
		t.Error("expected page 2 to have been evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	m := New(4)
	m.Translate(0x1000)
	m.TLB.Flush()
	if _, miss := m.Translate(0x1000); !miss {
		t.Error("flush did not invalidate")
	}
	if m.TLB.Flushes != 1 {
		t.Errorf("flush counter = %d", m.TLB.Flushes)
	}
}

func TestWalkCountsAndStability(t *testing.T) {
	m := New(4)
	for i := 0; i < 100; i++ {
		m.Translate(uint32(i) << PageShift)
	}
	if m.PT.Walks != 100 {
		t.Errorf("walks = %d, want 100", m.PT.Walks)
	}
	// Revisit with a cold TLB: no new frames.
	m.TLB.Flush()
	before := m.PT.Walks
	p1, _ := m.Translate(0)
	if m.PT.Walks != before+1 {
		t.Error("revisit did not walk")
	}
	m.TLB.Flush()
	p2, _ := m.Translate(0)
	if p1 != p2 {
		t.Error("walk result unstable")
	}
}

func TestTranslatePropertyOffsetPreserved(t *testing.T) {
	m := New(64)
	f := func(v uint32) bool {
		p, _ := m.Translate(v)
		return p&(PageSize-1) == v&(PageSize-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
