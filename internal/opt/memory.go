package opt

import (
	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

// Memory-oriented passes: redundant-load elimination (including
// store-to-load forwarding through the same address register) and load
// hoisting to hide the guest-load use latency. Both are part of Run.

// isGuestLoad/isGuestStore classify the memory ops.
func isGuestLoad(op rawisa.Op) bool  { return op.IsGuestLoad() }
func isGuestStore(op rawisa.Op) bool { return op.IsGuestStore() }

// redundantLoads replaces a guest load whose value is already known —
// from an earlier load at the same address register, or from a store
// through the same address register — with a register move. The
// address match is syntactic (same register, not redefined since), so
// no aliasing reasoning is needed: any intervening store, syscall, or
// assist invalidates everything.
func redundantLoads(b *ir.Block) bool {
	targets := labelTargets(b)
	type avail struct {
		op  rawisa.Op // the load op that produced the value
		val uint8     // register holding the loaded/stored value
	}
	table := map[uint8]avail{} // address reg -> available value
	changed := false

	invalidateAll := func() { table = map[uint8]avail{} }
	invalidateReg := func(r uint8) {
		delete(table, r)
		for addr, av := range table {
			if av.val == r {
				delete(table, addr)
			}
		}
	}

	for i := range b.Code {
		if targets[i] {
			invalidateAll()
		}
		in := &b.Code[i]
		switch {
		case isGuestLoad(in.Op):
			if av, ok := table[in.Rs]; ok && av.op == in.Op && av.val != in.Rd {
				// Same op (size+extension) from the same address.
				b.Code[i].Inst = rawisa.Inst{Op: rawisa.OR, Rd: in.Rd, Rs: av.val, Rt: 0}
				changed = true
				invalidateReg(in.Rd)
				continue
			}
			d := in.Rd
			addr := in.Rs
			op := in.Op
			invalidateReg(d)
			if d != addr {
				table[addr] = avail{op: op, val: d}
			}
			continue
		case isGuestStore(in.Op):
			// A store invalidates all remembered loads (no alias
			// analysis) but makes its own value available for
			// forwarding, with the op that a matching-size load uses.
			invalidateAll()
			if fwd, ok := forwardOp(in.Op); ok && in.Rt != 0 {
				table[in.Rs] = avail{op: fwd, val: in.Rt}
			}
			continue
		case in.Op == rawisa.SYSC || in.Op == rawisa.ASSIST:
			invalidateAll()
			continue
		}
		if d := regDef(in.Inst); d != 0 {
			invalidateReg(d)
		}
	}
	return changed
}

// forwardOp returns the load op whose result equals the stored value
// after a store of that width. Only the full-width pairs are safe
// (a GSB stores the low byte, so only a zero-extending byte reload of
// a known-masked value would match — skip the narrow cases).
func forwardOp(store rawisa.Op) (rawisa.Op, bool) {
	if store == rawisa.GSW {
		return rawisa.GLW, true
	}
	return 0, false
}

// hoistLoads moves guest loads earlier past independent pure ALU
// instructions so the in-order pipeline's load-use latency is hidden
// (the paper's translator schedules instructions to hide functional
// unit latencies, §4.5). A load may not cross: a label (branch join),
// a branch, another memory operation, a syscall/assist, a definition
// of its address register, or any instruction touching its destination.
func hoistLoads(b *ir.Block) bool {
	targets := labelTargets(b)
	changed := false
	const maxHoist = 6

	for i := 1; i < len(b.Code); i++ {
		in := b.Code[i]
		if !isGuestLoad(in.Op) {
			continue
		}
		j := i
		for j > 0 && i-j < maxHoist {
			if targets[j] {
				break
			}
			prev := b.Code[j-1]
			if !isPure(prev.Op) || prev.Label != ir.NoLabel {
				break
			}
			uses, n := regUses(prev.Inst)
			blocked := regDef(prev.Inst) == in.Rs || regDef(prev.Inst) == in.Rd
			for k := 0; k < n && !blocked; k++ {
				if uses[k] == in.Rd {
					blocked = true
				}
			}
			if blocked {
				break
			}
			j--
		}
		if j == i {
			continue
		}
		// Rotate the load from position i up to position j.
		copy(b.Code[j+1:i+1], b.Code[j:i])
		b.Code[j] = in
		// Labels never point into (j, i] here (we stop at targets),
		// so no label fixup is needed.
		changed = true
	}
	return changed
}
