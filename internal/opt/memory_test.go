package opt

import (
	"testing"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

func TestRedundantLoadEliminated(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		addr := b.VReg()
		b.LoadImm(addr, 0x2000)
		v1 := b.VReg()
		v2 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v1, Rs: addr})
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v2, Rs: addr}) // redundant
		b.Op3(rawisa.ADD, rawisa.RegEAX, v1, v2)
		b.ExitImm(0)
	})
	Run(blk)
	if n := countOp(blk, rawisa.GLW); n != 1 {
		t.Errorf("loads remaining = %d, want 1:\n%s", n, blk.String())
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		addr := b.VReg()
		b.LoadImm(addr, 0x2000)
		b.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: addr, Rt: rawisa.RegECX})
		v := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v, Rs: addr}) // forwarded
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		b.ExitImm(0)
	})
	Run(blk)
	if n := countOp(blk, rawisa.GLW); n != 0 {
		t.Errorf("forwardable load survived:\n%s", blk.String())
	}
	if n := countOp(blk, rawisa.GSW); n != 1 {
		t.Errorf("store must remain:\n%s", blk.String())
	}
}

func TestStoreInvalidatesLoads(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		a1 := b.VReg()
		a2 := b.VReg()
		b.LoadImm(a1, 0x2000)
		b.LoadImm(a2, 0x3000)
		v1 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v1, Rs: a1})
		b.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: a2, Rt: rawisa.RegECX}) // may alias
		v2 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v2, Rs: a1}) // must reload
		b.Op3(rawisa.ADD, rawisa.RegEAX, v1, v2)
		b.ExitImm(0)
	})
	Run(blk)
	if n := countOp(blk, rawisa.GLW); n != 2 {
		t.Errorf("load across store removed (loads=%d):\n%s", n, blk.String())
	}
}

func TestAddressRedefInvalidates(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		addr := b.VReg()
		b.LoadImm(addr, 0x2000)
		v1 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v1, Rs: addr})
		b.OpI(rawisa.ADDI, addr, addr, 4) // address moves
		v2 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v2, Rs: addr})
		b.Op3(rawisa.ADD, rawisa.RegEAX, v1, v2)
		b.ExitImm(0)
	})
	Run(blk)
	if n := countOp(blk, rawisa.GLW); n != 2 {
		t.Errorf("load after address change removed:\n%s", blk.String())
	}
}

func TestMismatchedWidthNotEliminated(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		addr := b.VReg()
		b.LoadImm(addr, 0x2000)
		v1 := b.VReg()
		v2 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v1, Rs: addr})
		b.Emit(rawisa.Inst{Op: rawisa.GLB, Rd: v2, Rs: addr}) // different op
		b.Op3(rawisa.ADD, rawisa.RegEAX, v1, v2)
		b.ExitImm(0)
	})
	Run(blk)
	if countOp(blk, rawisa.GLB) != 1 {
		t.Errorf("different-width load eliminated:\n%s", blk.String())
	}
}

func TestHoistLoadsAboveALU(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		// Unrelated ALU work, then a load immediately used.
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEBX, 1)
		b.OpI(rawisa.ADDI, rawisa.RegECX, rawisa.RegECX, 2)
		v := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v, Rs: rawisa.RegESI})
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		b.ExitImm(0)
	})
	hoistLoads(blk)
	if !blk.Code[0].Op.IsGuestLoad() {
		t.Errorf("load not hoisted to the top:\n%s", blk.String())
	}
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHoistStopsAtDependency(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		addr := b.VReg()
		b.OpI(rawisa.ADDI, addr, rawisa.RegESI, 8) // defines the address
		v := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v, Rs: addr})
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		b.ExitImm(0)
	})
	hoistLoads(blk)
	if blk.Code[0].Op.IsGuestLoad() {
		t.Errorf("load hoisted above its address computation:\n%s", blk.String())
	}
}

func TestHoistStopsAtLabel(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		skip := b.NewLabel()
		b.EmitBranch(rawisa.Inst{Op: rawisa.BEQ, Rs: rawisa.RegEAX, Rt: 0}, skip)
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEBX, 1)
		b.Bind(skip)
		b.OpI(rawisa.ADDI, rawisa.RegECX, rawisa.RegECX, 1)
		v := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v, Rs: rawisa.RegESI})
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v)
		b.ExitImm(0)
	})
	labelPos := blk.LabelPos[0]
	hoistLoads(blk)
	// The load may rise to the label position but not above it.
	for i := 0; i < labelPos; i++ {
		if blk.Code[i].Op.IsGuestLoad() {
			t.Errorf("load crossed a branch join:\n%s", blk.String())
		}
	}
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
}
