// Package opt implements the translator's optimization passes over IR
// blocks: constant folding and propagation, copy propagation, and dead
// code elimination. The paper applies full optimization to every block
// because translation runs off the critical path on slave tiles
// (§2.1); Figure 8 measures the win, which these passes regenerate.
//
// All passes preserve two invariants: physical registers (pinned guest
// state) are always live out of the block, and instructions with side
// effects (guest memory, syscalls, assists, exits, branches) are never
// removed or reordered.
package opt

import (
	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

// Run applies all passes to the block in place until a fixpoint (at
// most a few iterations; bounded for safety), then hoists loads once
// to hide load-use latency.
func Run(b *ir.Block) {
	for i := 0; i < 4; i++ {
		changed := constFold(b)
		changed = copyProp(b) || changed
		changed = redundantLoads(b) || changed
		changed = deadCode(b) || changed
		if !changed {
			break
		}
	}
	hoistLoads(b)
}

// labelTargets returns the set of instruction indices that are branch
// targets (join points where dataflow facts must be dropped).
func labelTargets(b *ir.Block) map[int]bool {
	t := map[int]bool{}
	for _, pos := range b.LabelPos {
		if pos >= 0 {
			t[pos] = true
		}
	}
	return t
}

// isPure reports whether an op has no effect beyond writing Rd.
func isPure(op rawisa.Op) bool {
	switch op {
	case rawisa.NOP, rawisa.LUI, rawisa.ADDI, rawisa.ANDI, rawisa.ORI,
		rawisa.XORI, rawisa.SLTI, rawisa.SLTIU, rawisa.SLLI, rawisa.SRLI,
		rawisa.SRAI, rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR,
		rawisa.XOR, rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL,
		rawisa.SRL, rawisa.SRA, rawisa.MFHI, rawisa.MFLO:
		return true
	}
	return false
}

// regUses mirrors codegen's use model.
func regUses(in rawisa.Inst) (uses [2]uint8, n int) {
	switch in.Op {
	case rawisa.NOP, rawisa.LUI, rawisa.SYSC, rawisa.EXITI, rawisa.CHAIN,
		rawisa.ASSIST, rawisa.J, rawisa.JAL, rawisa.MFHI, rawisa.MFLO:
		return
	case rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR, rawisa.XOR,
		rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL, rawisa.SRL,
		rawisa.SRA, rawisa.MULT, rawisa.MULTU, rawisa.DIV, rawisa.DIVU,
		rawisa.BEQ, rawisa.BNE, rawisa.SW,
		rawisa.GSB, rawisa.GSH, rawisa.GSW:
		uses[0], uses[1] = in.Rs, in.Rt
		n = 2
		return
	default:
		uses[0] = in.Rs
		n = 1
		return
	}
}

func regDef(in rawisa.Inst) uint8 {
	switch in.Op {
	case rawisa.LUI, rawisa.ADDI, rawisa.ANDI, rawisa.ORI, rawisa.XORI,
		rawisa.SLTI, rawisa.SLTIU, rawisa.SLLI, rawisa.SRLI, rawisa.SRAI,
		rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR, rawisa.XOR,
		rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL, rawisa.SRL,
		rawisa.SRA, rawisa.MFHI, rawisa.MFLO, rawisa.LW,
		rawisa.GLB, rawisa.GLBU, rawisa.GLH, rawisa.GLHU, rawisa.GLW:
		return in.Rd
	}
	return 0
}
