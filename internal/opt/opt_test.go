package opt

import (
	"testing"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

// buildBlock assembles a block from a function.
func buildBlock(t *testing.T, f func(b *ir.Builder)) *ir.Block {
	t.Helper()
	b := ir.NewBuilder(0x1000)
	f(b)
	blk, err := b.Finish(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func countOp(b *ir.Block, op rawisa.Op) int {
	n := 0
	for _, in := range b.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestConstFoldCollapsesChain(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		v1 := b.VReg()
		v2 := b.VReg()
		v3 := b.VReg()
		b.LoadImm(v1, 10)
		b.OpI(rawisa.ADDI, v2, v1, 20)
		b.Op3(rawisa.ADD, v3, v2, v1) // 40, fully constant
		b.Move(rawisa.RegEAX, v3)
		b.ExitImm(0)
	})
	Run(blk)
	// After folding + DCE the block should load 40 into a register and
	// move it to EAX (or fold the whole thing into a single ADDI form).
	found := false
	for _, in := range blk.Code {
		if in.Op == rawisa.ADDI && in.Imm == 40 {
			found = true
		}
	}
	if !found {
		t.Errorf("constant 40 not folded:\n%s", blk.String())
	}
}

func TestDeadCodeRemovesUnusedTemp(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		dead := b.VReg()
		b.LoadImm(dead, 123) // never used
		b.OpI(rawisa.ADDI, rawisa.RegEAX, rawisa.RegEAX, 1)
		b.ExitImm(0)
	})
	before := len(blk.Code)
	Run(blk)
	if len(blk.Code) >= before {
		t.Errorf("dead load not removed (%d -> %d):\n%s", before, len(blk.Code), blk.String())
	}
}

func TestDeadCodeKeepsGuestState(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEBX, 5) // guest reg: live out
		b.ExitImm(0)
	})
	Run(blk)
	if countOp(blk, rawisa.ADDI) != 1 {
		t.Errorf("guest register write removed:\n%s", blk.String())
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		v := b.VReg()
		b.LoadImm(v, 0x2000)
		b.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: v, Rt: rawisa.RegEAX}) // store: must stay
		// Load through a different (runtime) address into a dead reg:
		// not forwardable, and loads are never DCE'd (their cache
		// effects are architectural in the timing model).
		w := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: w, Rs: rawisa.RegESI})
		b.ExitImm(0)
	})
	Run(blk)
	if countOp(blk, rawisa.GSW) != 1 || countOp(blk, rawisa.GLW) != 1 {
		t.Errorf("memory ops removed:\n%s", blk.String())
	}
}

func TestCopyPropRewritesUses(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		v1 := b.VReg()
		v2 := b.VReg()
		b.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: v1, Rs: rawisa.RegESI})
		b.Move(v2, v1) // copy
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, v2)
		b.ExitImm(0)
	})
	Run(blk)
	// The ADD should read v1's register directly and the copy vanish.
	moves := 0
	for _, in := range blk.Code {
		if in.Op == rawisa.OR && in.Rt == 0 && in.Rd >= ir.FirstVReg {
			moves++
		}
	}
	if moves != 0 {
		t.Errorf("copy not propagated away:\n%s", blk.String())
	}
}

func TestImmFormStrengthReduction(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		c := b.VReg()
		b.LoadImm(c, 7)
		b.Op3(rawisa.ADD, rawisa.RegEAX, rawisa.RegEAX, c)
		b.ExitImm(0)
	})
	Run(blk)
	// ADD rx, rx, #7 should become ADDI.
	for _, in := range blk.Code {
		if in.Op == rawisa.ADD {
			t.Errorf("reg-reg add with constant not reduced:\n%s", blk.String())
		}
	}
}

func TestSyscallClobbersFacts(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		b.LoadImm(rawisa.RegEAX, 5)
		b.Emit(rawisa.Inst{Op: rawisa.SYSC})
		// After a syscall EAX is unknown: this ADD must not fold to 10.
		b.OpI(rawisa.ADDI, rawisa.RegEBX, rawisa.RegEAX, 5)
		b.ExitImm(0)
	})
	Run(blk)
	for _, in := range blk.Code {
		if in.Op == rawisa.ADDI && in.Rd == rawisa.RegEBX && in.Rs == rawisa.RegZero {
			t.Errorf("folded across syscall:\n%s", blk.String())
		}
	}
}

func TestBranchTargetsDropFacts(t *testing.T) {
	// A value defined inside a branch-skippable region must not
	// propagate below the join label.
	blk := buildBlock(t, func(b *ir.Builder) {
		skip := b.NewLabel()
		v := b.VReg()
		b.LoadImm(v, 1)
		b.EmitBranch(rawisa.Inst{Op: rawisa.BEQ, Rs: rawisa.RegEAX, Rt: 0}, skip)
		b.LoadImm(v, 2) // conditionally executed redefinition
		b.Bind(skip)
		b.Op3(rawisa.ADD, rawisa.RegEBX, rawisa.RegZero, v)
		b.ExitImm(0)
	})
	Run(blk)
	// EBX must come from v at runtime, not a folded constant.
	for _, in := range blk.Code {
		if in.Op == rawisa.ADDI && in.Rd == rawisa.RegEBX && in.Rs == rawisa.RegZero {
			t.Errorf("folded across branch join:\n%s", blk.String())
		}
	}
	// And both defs of v must survive.
	defs := 0
	for _, in := range blk.Code {
		if in.Op == rawisa.ADDI && in.Rd >= ir.FirstVReg {
			defs++
		}
	}
	if defs < 2 {
		t.Errorf("conditional def removed:\n%s", blk.String())
	}
}

func TestRunIsIdempotent(t *testing.T) {
	blk := buildBlock(t, func(b *ir.Builder) {
		v1 := b.VReg()
		v2 := b.VReg()
		b.LoadImm(v1, 100)
		b.OpI(rawisa.ADDI, v2, v1, 1)
		b.Move(rawisa.RegECX, v2)
		b.ExitImm(0)
	})
	Run(blk)
	n := len(blk.Code)
	Run(blk)
	if len(blk.Code) != n {
		t.Errorf("second Run changed the block: %d -> %d", n, len(blk.Code))
	}
}
