package opt

import (
	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
)

// constFold tracks known register constants forward through the block
// and folds pure ALU results that become fully constant into immediate
// loads (LUI/ORI pairs are re-formed by later simplification in the
// builder idiom: we emit ADDI-from-zero for small values and keep
// LUI+ORI shapes otherwise). Facts are dropped at branch targets.
func constFold(b *ir.Block) bool {
	targets := labelTargets(b)
	known := map[uint8]uint32{0: 0} // register -> constant
	changed := false

	fold := func(in rawisa.Inst) (uint32, bool) {
		val := func(r uint8) (uint32, bool) { v, ok := known[r]; return v, ok }
		switch in.Op {
		case rawisa.LUI:
			return uint32(in.Imm) << 16, true
		case rawisa.ADDI, rawisa.ANDI, rawisa.ORI, rawisa.XORI,
			rawisa.SLTI, rawisa.SLTIU, rawisa.SLLI, rawisa.SRLI, rawisa.SRAI:
			a, ok := val(in.Rs)
			if !ok {
				return 0, false
			}
			switch in.Op {
			case rawisa.ADDI:
				return a + uint32(in.Imm), true
			case rawisa.ANDI:
				return a & uint32(uint16(in.Imm)), true
			case rawisa.ORI:
				return a | uint32(uint16(in.Imm)), true
			case rawisa.XORI:
				return a ^ uint32(uint16(in.Imm)), true
			case rawisa.SLTI:
				if int32(a) < in.Imm {
					return 1, true
				}
				return 0, true
			case rawisa.SLTIU:
				if a < uint32(in.Imm) {
					return 1, true
				}
				return 0, true
			case rawisa.SLLI:
				return a << uint(in.Imm&31), true
			case rawisa.SRLI:
				return a >> uint(in.Imm&31), true
			case rawisa.SRAI:
				return uint32(int32(a) >> uint(in.Imm&31)), true
			}
		case rawisa.ADD, rawisa.SUB, rawisa.AND, rawisa.OR, rawisa.XOR,
			rawisa.NOR, rawisa.SLT, rawisa.SLTU, rawisa.SLL, rawisa.SRL, rawisa.SRA:
			a, okA := val(in.Rs)
			bv, okB := val(in.Rt)
			if !okA || !okB {
				return 0, false
			}
			switch in.Op {
			case rawisa.ADD:
				return a + bv, true
			case rawisa.SUB:
				return a - bv, true
			case rawisa.AND:
				return a & bv, true
			case rawisa.OR:
				return a | bv, true
			case rawisa.XOR:
				return a ^ bv, true
			case rawisa.NOR:
				return ^(a | bv), true
			case rawisa.SLT:
				if int32(a) < int32(bv) {
					return 1, true
				}
				return 0, true
			case rawisa.SLTU:
				if a < bv {
					return 1, true
				}
				return 0, true
			case rawisa.SLL:
				return bv << (a & 31), true
			case rawisa.SRL:
				return bv >> (a & 31), true
			case rawisa.SRA:
				return uint32(int32(bv) >> (a & 31)), true
			}
		}
		return 0, false
	}

	for i := range b.Code {
		if targets[i] {
			known = map[uint8]uint32{0: 0}
		}
		in := &b.Code[i]
		d := regDef(in.Inst)
		if isPure(in.Op) && d != 0 {
			if v, ok := fold(in.Inst); ok {
				known[d] = v
				// Rewrite to the canonical constant-load shape when it
				// saves or simplifies.
				if rawisa.FitsSImm(int32(v)) && (in.Op != rawisa.ADDI || in.Rs != 0) {
					in.Inst = rawisa.Inst{Op: rawisa.ADDI, Rd: d, Imm: int32(v)}
					changed = true
				}
				continue
			}
		}
		// Strength-reduce reg-reg ops with one constant operand into
		// immediate forms.
		if imm, ok := immForm(in.Inst, known); ok {
			in.Inst = imm
			changed = true
		}
		if d != 0 {
			delete(known, d)
			if v, ok := fold(in.Inst); ok && isPure(in.Op) {
				known[d] = v
			}
		}
		if in.Op == rawisa.SYSC || in.Op == rawisa.ASSIST {
			// Syscalls and interpreter assists read and write the
			// pinned guest registers implicitly.
			for r := uint8(1); r < ir.FirstVReg; r++ {
				delete(known, r)
			}
		}
		// HI/LO clobbers don't affect the register constant map.
	}
	return changed
}

// immForm rewrites a reg-reg ALU op whose Rt (or commutable Rs) is a
// known small constant into the immediate form.
func immForm(in rawisa.Inst, known map[uint8]uint32) (rawisa.Inst, bool) {
	type rule struct {
		immOp rawisa.Op
		comm  bool
	}
	rules := map[rawisa.Op]rule{
		rawisa.ADD:  {rawisa.ADDI, true},
		rawisa.AND:  {rawisa.ANDI, true},
		rawisa.OR:   {rawisa.ORI, true},
		rawisa.XOR:  {rawisa.XORI, true},
		rawisa.SLT:  {rawisa.SLTI, false},
		rawisa.SLTU: {rawisa.SLTIU, false},
	}
	r, ok := rules[in.Op]
	if !ok {
		return in, false
	}
	fits := func(op rawisa.Op, v uint32) bool {
		switch op {
		case rawisa.ANDI, rawisa.ORI, rawisa.XORI:
			return v <= rawisa.MaxUImm
		default:
			return rawisa.FitsSImm(int32(v))
		}
	}
	if v, ok := known[in.Rt]; ok && in.Rt != 0 && fits(r.immOp, v) {
		return rawisa.Inst{Op: r.immOp, Rd: in.Rd, Rs: in.Rs, Imm: int32(v)}, true
	}
	if r.comm {
		if v, ok := known[in.Rs]; ok && in.Rs != 0 && fits(r.immOp, v) {
			return rawisa.Inst{Op: r.immOp, Rd: in.Rd, Rs: in.Rt, Imm: int32(v)}, true
		}
	}
	return in, false
}

// copyProp replaces uses of registers that are known copies of other
// registers. Only vreg→reg copies created by `OR rd, rs, r0` and
// `ADDI rd, rs, 0` are tracked; facts drop at branch targets and when
// either side is redefined. Physical guest registers are never
// rewritten as destinations.
func copyProp(b *ir.Block) bool {
	targets := labelTargets(b)
	alias := map[uint8]uint8{} // reg -> source it copies
	changed := false

	invalidate := func(r uint8) {
		delete(alias, r)
		for k, v := range alias {
			if v == r {
				delete(alias, k)
			}
		}
	}

	resolve := func(r uint8) uint8 {
		if src, ok := alias[r]; ok {
			return src
		}
		return r
	}

	for i := range b.Code {
		if targets[i] {
			alias = map[uint8]uint8{}
		}
		in := &b.Code[i]
		// Rewrite uses.
		uses, n := regUses(in.Inst)
		for k := 0; k < n; k++ {
			if src := resolve(uses[k]); src != uses[k] {
				if k == 0 {
					in.Rs = src
				} else {
					in.Rt = src
				}
				changed = true
			}
		}
		d := regDef(in.Inst)
		if d != 0 {
			invalidate(d)
			isCopy := (in.Op == rawisa.OR && in.Rt == 0) ||
				(in.Op == rawisa.ADDI && in.Imm == 0)
			if isCopy && in.Rs != d && in.Rs != 0 {
				alias[d] = resolve(in.Rs)
			}
		}
		if in.Op == rawisa.SYSC || in.Op == rawisa.ASSIST {
			for r := uint8(1); r < ir.FirstVReg; r++ {
				invalidate(r)
			}
		}
	}
	return changed
}

// deadCode removes pure instructions whose destination vreg is never
// subsequently read. Physical registers are always considered live
// (guest state flows out of the block). Label positions are remapped
// after removal.
func deadCode(b *ir.Block) bool {
	n := len(b.Code)
	liveV := make(map[uint8]bool)
	keep := make([]bool, n)

	for i := n - 1; i >= 0; i-- {
		in := b.Code[i]
		d := regDef(in.Inst)
		dead := isPure(in.Op) && d >= ir.FirstVReg && !liveV[d]
		if in.Op == rawisa.NOP {
			dead = true
		}
		if dead {
			continue
		}
		keep[i] = true
		// Note: a kept def does NOT clear liveness. With forward
		// branches a def can be skipped at runtime, so an earlier def
		// of the same vreg may still reach a later use on the branch
		// path; never killing at defs keeps the analysis sound at the
		// cost of retaining the occasional doubly-defined temp.
		uses, un := regUses(in.Inst)
		for k := 0; k < un; k++ {
			if uses[k] >= ir.FirstVReg {
				liveV[uses[k]] = true
			}
		}
	}

	removed := 0
	newPos := make([]int, n+1)
	for i := 0; i < n; i++ {
		newPos[i] = i - removed
		if !keep[i] {
			removed++
		}
	}
	newPos[n] = n - removed
	if removed == 0 {
		return false
	}

	out := b.Code[:0]
	for i, in := range b.Code {
		if keep[i] {
			out = append(out, in)
		}
	}
	b.Code = out
	for li, pos := range b.LabelPos {
		if pos >= 0 {
			b.LabelPos[li] = newPos[pos]
		}
	}
	return true
}
