// Package pentium is the baseline timing model: a Pentium III-class
// three-way out-of-order superscalar reduced to the intrinsics the
// paper itself uses for its §4.5 analysis — realized ILP of 1.3 on
// SpecInt, and a memory hierarchy with (latency, occupancy) of (3, 1)
// for L1 hits, (7, 1) for L2 hits, and (79, 1) for memory, with
// out-of-order overlap hiding part of the miss latency.
//
// The model executes the guest binary functionally on the reference
// interpreter and layers cache simulation over its memory trace.
// Slowdown figures are CyclesOnTranslator / CyclesOnPentiumIII for the
// same binary, as in §4.1.
package pentium

import (
	"fmt"

	"tilevm/internal/cachesim"
	"tilevm/internal/guest"
	"tilevm/internal/x86interp"
)

// Params are the baseline machine's intrinsics.
type Params struct {
	IPC         float64 // sustained non-memory IPC (paper: 1.3)
	L1HitLat    float64
	L2HitLat    float64
	MemLat      float64
	MissOverlap float64 // fraction of miss latency hidden by OoO

	L1Bytes, L1Ways, L1Line int
	L2Bytes, L2Ways, L2Line int
}

// DefaultParams returns the paper's Pentium III intrinsics (Figure 11)
// with the Coppermine cache geometry.
func DefaultParams() Params {
	return Params{
		IPC:         1.3,
		L1HitLat:    1, // occupancy; latency is overlapped by OoO
		L2HitLat:    7,
		MemLat:      79,
		MissOverlap: 0.4,
		L1Bytes:     16 * 1024, L1Ways: 4, L1Line: 32,
		L2Bytes: 256 * 1024, L2Ways: 8, L2Line: 32,
	}
}

// Result is the baseline run outcome.
type Result struct {
	Cycles   uint64
	Insts    uint64
	MemAccs  uint64
	L1Misses uint64
	L2Misses uint64
	ExitCode int32
	Stdout   string
}

// Run executes the image to completion (bounded by maxSteps guest
// instructions; 0 means a large default) and returns modeled cycles.
func Run(img *guest.Image, p Params, maxSteps uint64) (*Result, error) {
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	proc := guest.Load(img)
	it := x86interp.New(proc)

	l1 := cachesim.New(p.L1Bytes, p.L1Ways, p.L1Line)
	l2 := cachesim.New(p.L2Bytes, p.L2Ways, p.L2Line)
	var memAccs, l1Miss, l2Miss uint64
	it.OnMem = func(addr uint32, size uint8, write bool) {
		memAccs++
		if r := l1.Access(addr, write); !r.Hit {
			l1Miss++
			if r2 := l2.Access(r.LineAddr, write); !r2.Hit {
				l2Miss++
			}
		}
	}

	exited, err := it.Run(maxSteps)
	if err != nil {
		return nil, fmt.Errorf("pentium: baseline execution failed: %w", err)
	}
	if !exited {
		return nil, fmt.Errorf("pentium: program did not exit within %d instructions", maxSteps)
	}

	visible := 1 - p.MissOverlap
	cycles := float64(it.Steps)/p.IPC +
		float64(memAccs)*p.L1HitLat +
		float64(l1Miss)*p.L2HitLat*visible +
		float64(l2Miss)*p.MemLat*visible

	return &Result{
		Cycles:   uint64(cycles),
		Insts:    it.Steps,
		MemAccs:  memAccs,
		L1Misses: l1Miss,
		L2Misses: l2Miss,
		ExitCode: proc.Kern.ExitCode,
		Stdout:   proc.Kern.Stdout.String(),
	}, nil
}
