package pentium

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// loop builds a counted loop of n iterations; when maskWords is
// nonzero each iteration stores+loads within a working set of
// (maskWords+1)*4 bytes, wrapping so the set is swept repeatedly.
func loop(n uint32, maskWords uint32) *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
	a.MovRegImm(x86.ECX, n)
	a.Label("l")
	a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
	if maskWords != 0 {
		a.MovRegReg(x86.EDX, x86.ECX)
		a.ALU(x86.AND, x86.RegOp(x86.EDX, 4), x86.ImmOp(int32(maskWords), 4))
		a.MovMemReg(x86.MemIdx(x86.ESI, x86.EDX, 4, 0), x86.EBX)
		a.MovRegMem(x86.EDX, x86.MemIdx(x86.ESI, x86.EDX, 4, 0))
	}
	a.DecReg(x86.ECX)
	a.Jcc(x86.CondNE, "l")
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
	return &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
}

func TestBaselineRunsAndCounts(t *testing.T) {
	r, err := Run(loop(50_000, 1023), DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts == 0 || r.Cycles == 0 {
		t.Fatal("empty result")
	}
	if r.MemAccs < 100_000 {
		t.Errorf("memory accesses = %d, want >= 100000", r.MemAccs)
	}
	// ILP > 1: cycles should be below instruction count for a cache-
	// friendly loop.
	if float64(r.Cycles) > float64(r.Insts)*1.5 {
		t.Errorf("CPI = %.2f, too high for an L1-resident loop",
			float64(r.Cycles)/float64(r.Insts))
	}
}

func TestMissesRaiseCycles(t *testing.T) {
	p := DefaultParams()
	small, err := Run(loop(100_000, 1023), p, 0) // 4KB working set
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(loop(100_000, 131071), p, 0) // 512KB working set
	if err != nil {
		t.Fatal(err)
	}
	cpiSmall := float64(small.Cycles) / float64(small.Insts)
	cpiBig := float64(big.Cycles) / float64(big.Insts)
	if cpiBig <= cpiSmall {
		t.Errorf("big working set CPI %.2f not above small %.2f", cpiBig, cpiSmall)
	}
	if big.L2Misses == 0 {
		t.Error("800KB sweep produced no L2 misses")
	}
}

func TestBudgetEnforced(t *testing.T) {
	if _, err := Run(loop(1_000_000, 0), DefaultParams(), 100); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
