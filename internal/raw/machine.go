// Package raw models the Raw tiled processor: a grid of MIPS-like tiles
// joined by dynamic networks, with software-managed instruction memory,
// per-tile data caches, and shared off-chip DRAM. It layers tile-to-tile
// messaging on the deterministic discrete-event kernel in internal/sim.
package raw

import (
	"fmt"

	"tilevm/internal/fault"
	"tilevm/internal/sim"
	"tilevm/internal/trace"
)

// Machine is one simulated Raw chip.
type Machine struct {
	Params Params
	Sim    *sim.Simulator
	inbox  []*sim.Port
	busy   []uint64

	// Faults, if non-nil, injects the configured fault plan into the
	// dynamic network and the tile scheduler. When nil (the default)
	// no fault code path runs, so a fault-free machine is bit-identical
	// to one built before this field existed.
	Faults *fault.Injector

	// OnDrop, if non-nil, is called with the payload of every message
	// the injector drops at the send site. A dropped message is never
	// enqueued, so at that moment the sender holds the only reference
	// and pooled payloads can be recycled immediately — unlike corrupted
	// messages, which stay aliased by the in-flight Corrupted wrapper
	// until the receiver consumes it.
	OnDrop func(payload any)

	// trc mirrors Sim.Trace for the Tick/Advance hot path (one field
	// load instead of two). Set through SetTracer; nil means tracing
	// off, and every emission below is guarded by a nil test.
	trc *trace.Tracer
}

// Corrupted wraps a payload mangled in flight. The model is a detected
// transmission error: the receiver's network interface flags the CRC
// mismatch and the kernel discards the message, so a corrupted message
// costs its delivery (and any retry by the sender) but never delivers
// wrong data. Kernels discard it by not matching it in their payload
// type switches.
type Corrupted struct{ Payload any }

// NewMachine builds a machine with one inbox port per tile.
func NewMachine(p Params) *Machine {
	m := &Machine{
		Params: p,
		Sim:    sim.New(),
		inbox:  make([]*sim.Port, p.Tiles()),
		busy:   make([]uint64, p.Tiles()),
	}
	for i := range m.inbox {
		m.inbox[i] = m.Sim.NewPort(fmt.Sprintf("tile%d.in", i))
	}
	return m
}

// Inbox returns tile id's message port.
func (m *Machine) Inbox(id int) *sim.Port { return m.inbox[id] }

// SetTileShard assigns tile id's inbox port to a simulation shard.
// Callers partitioning the machine for a sharded run (see sim.Connect)
// must also place the tile's kernel process on the same shard.
func (m *Machine) SetTileShard(id, shard int) { m.inbox[id].SetShard(shard) }

// SetTracer installs a virtual-time tracer on the machine and its
// simulation kernel. Tile busy cycles accrued through Tick/Advance
// feed the tracer's interval sampler (per-tile occupancy per window).
// Safe to call with nil (tracing off, the default).
func (m *Machine) SetTracer(t *trace.Tracer) {
	m.trc = t
	m.Sim.Trace = t
}

// Tracer returns the machine's trace sink (nil when tracing is off).
func (m *Machine) Tracer() *trace.Tracer { return m.trc }

// SpawnTile registers a kernel process for a tile. The body receives a
// TileCtx bound to the tile's inbox and grid position. The returned
// process handle lets host-side supervisors daemon-mark or inspect the
// kernel (fleet quarantine uses this to excuse a dead slot's tiles from
// deadlock detection).
func (m *Machine) SpawnTile(id int, name string, body func(*TileCtx)) *sim.Proc {
	return m.Sim.Spawn(fmt.Sprintf("%s@%d", name, id), func(p *sim.Proc) {
		body(&TileCtx{M: m, Tile: id, P: p})
	})
}

// TileCtx is the execution context of a tile kernel: the process, the
// tile id, and messaging helpers that charge network latency.
type TileCtx struct {
	M    *Machine
	Tile int
	P    *sim.Proc
}

// Send transmits a payload of the given size in words to another tile,
// charging header, per-hop, and serialization latency. The sender's
// accrued local time is the departure time. Under fault injection a
// message may be dropped, delayed, or corrupted in flight.
func (c *TileCtx) Send(to int, payload any, words int) {
	arrival := c.P.Now() + c.M.Params.NetLat(c.Tile, to, words)
	if f := c.M.Faults; f != nil {
		v := f.OnMessage(c.Tile, to, uint64(c.P.Now()))
		if v.Drop {
			if c.M.OnDrop != nil {
				c.M.OnDrop(payload)
			}
			return
		}
		if v.Corrupt {
			payload = Corrupted{Payload: payload}
		}
		arrival += v.Delay
	}
	// Routed through the sending process so that in a sharded
	// simulation a send to a tile of another shard is deferred across
	// the shard boundary (sim.Proc.SendPort); on the same shard — and
	// always in a serial run — this is exactly Port.Send.
	c.P.SendPort(c.M.inbox[to], c.Tile, payload, arrival)
}

// faultCheck applies tile-level faults at a scheduling point: pending
// transient stalls are charged, and a fail-stopped tile drops into a
// permanent inbox-draining loop (fail-stop semantics: messages to a
// dead tile vanish; the dead tile never speaks again). The drain loop
// marks the process as a daemon so a machine idling around a dead tile
// is not misreported as deadlocked.
func (c *TileCtx) faultCheck() {
	f := c.M.Faults
	if f == nil {
		return
	}
	if d := f.StallTake(c.Tile, c.P.Now()); d > 0 {
		c.Advance(d)
	}
	if f.FailedAt(c.Tile, c.P.Now()) {
		c.P.SetDaemon(true)
		inbox := c.M.Inbox(c.Tile)
		for {
			c.P.Recv(inbox)
		}
	}
}

// Recv blocks until a message arrives at this tile.
func (c *TileCtx) Recv() sim.Msg {
	m := c.P.Recv(c.M.Inbox(c.Tile))
	c.faultCheck()
	return m
}

// TryRecv polls the tile inbox without blocking.
func (c *TileCtx) TryRecv() (sim.Msg, bool) { return c.P.TryRecv(c.M.Inbox(c.Tile)) }

// RecvDeadline waits for a message until the deadline.
func (c *TileCtx) RecvDeadline(deadline sim.Time) (sim.Msg, bool) {
	m, ok := c.P.RecvDeadline(c.M.Inbox(c.Tile), deadline)
	c.faultCheck()
	return m, ok
}

// Now returns the tile's local virtual time.
func (c *TileCtx) Now() sim.Time { return c.P.Now() }

// Tick accrues local busy cycles (counted toward the tile's
// utilization). With a tracer installed the cycles also feed the
// per-tile occupancy sampler, attributed to the window containing the
// tile's current local time.
func (c *TileCtx) Tick(d uint64) {
	c.M.busy[c.Tile] += d
	if c.M.trc != nil {
		c.M.trc.Busy(c.Tile, c.P.Now(), d)
	}
	c.P.Tick(d)
}

// Advance accrues d cycles and yields to the scheduler.
func (c *TileCtx) Advance(d uint64) {
	c.M.busy[c.Tile] += d
	if c.M.trc != nil {
		c.M.trc.Busy(c.Tile, c.P.Now(), d)
	}
	c.P.Advance(d)
}

// Sync yields until all accrued local cycles have elapsed.
func (c *TileCtx) Sync() { c.P.Sync() }

// Stop ends the whole machine simulation.
func (c *TileCtx) Stop() { c.P.Stop() }

// BusyCycles returns the per-tile busy-cycle counters (occupied
// cycles, including stalls on in-flight results; waiting on the
// network does not count).
func (m *Machine) BusyCycles() []uint64 {
	out := make([]uint64, len(m.busy))
	copy(out, m.busy)
	return out
}

// Run starts all tile kernels and runs to completion.
func (m *Machine) Run() error { return m.Sim.Run() }
