// Package raw models the Raw tiled processor: a grid of MIPS-like tiles
// joined by dynamic networks, with software-managed instruction memory,
// per-tile data caches, and shared off-chip DRAM. It layers tile-to-tile
// messaging on the deterministic discrete-event kernel in internal/sim.
package raw

import (
	"fmt"

	"tilevm/internal/sim"
)

// Machine is one simulated Raw chip.
type Machine struct {
	Params Params
	Sim    *sim.Simulator
	inbox  []*sim.Port
	busy   []uint64
}

// NewMachine builds a machine with one inbox port per tile.
func NewMachine(p Params) *Machine {
	m := &Machine{
		Params: p,
		Sim:    sim.New(),
		inbox:  make([]*sim.Port, p.Tiles()),
		busy:   make([]uint64, p.Tiles()),
	}
	for i := range m.inbox {
		m.inbox[i] = m.Sim.NewPort(fmt.Sprintf("tile%d.in", i))
	}
	return m
}

// Inbox returns tile id's message port.
func (m *Machine) Inbox(id int) *sim.Port { return m.inbox[id] }

// SpawnTile registers a kernel process for a tile. The body receives a
// TileCtx bound to the tile's inbox and grid position.
func (m *Machine) SpawnTile(id int, name string, body func(*TileCtx)) {
	m.Sim.Spawn(fmt.Sprintf("%s@%d", name, id), func(p *sim.Proc) {
		body(&TileCtx{M: m, Tile: id, P: p})
	})
}

// TileCtx is the execution context of a tile kernel: the process, the
// tile id, and messaging helpers that charge network latency.
type TileCtx struct {
	M    *Machine
	Tile int
	P    *sim.Proc
}

// Send transmits a payload of the given size in words to another tile,
// charging header, per-hop, and serialization latency. The sender's
// accrued local time is the departure time.
func (c *TileCtx) Send(to int, payload any, words int) {
	arrival := c.P.Now() + c.M.Params.NetLat(c.Tile, to, words)
	c.M.inbox[to].Send(c.Tile, payload, arrival)
}

// Recv blocks until a message arrives at this tile.
func (c *TileCtx) Recv() sim.Msg { return c.P.Recv(c.M.Inbox(c.Tile)) }

// TryRecv polls the tile inbox without blocking.
func (c *TileCtx) TryRecv() (sim.Msg, bool) { return c.P.TryRecv(c.M.Inbox(c.Tile)) }

// RecvDeadline waits for a message until the deadline.
func (c *TileCtx) RecvDeadline(deadline sim.Time) (sim.Msg, bool) {
	return c.P.RecvDeadline(c.M.Inbox(c.Tile), deadline)
}

// Now returns the tile's local virtual time.
func (c *TileCtx) Now() sim.Time { return c.P.Now() }

// Tick accrues local busy cycles (counted toward the tile's
// utilization).
func (c *TileCtx) Tick(d uint64) {
	c.M.busy[c.Tile] += d
	c.P.Tick(d)
}

// Advance accrues d cycles and yields to the scheduler.
func (c *TileCtx) Advance(d uint64) {
	c.M.busy[c.Tile] += d
	c.P.Advance(d)
}

// Sync yields until all accrued local cycles have elapsed.
func (c *TileCtx) Sync() { c.P.Sync() }

// Stop ends the whole machine simulation.
func (c *TileCtx) Stop() { c.P.Stop() }

// BusyCycles returns the per-tile busy-cycle counters (occupied
// cycles, including stalls on in-flight results; waiting on the
// network does not count).
func (m *Machine) BusyCycles() []uint64 {
	out := make([]uint64, len(m.busy))
	copy(out, m.busy)
	return out
}

// Run starts all tile kernels and runs to completion.
func (m *Machine) Run() error { return m.Sim.Run() }
