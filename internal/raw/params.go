package raw

// Params collects every timing and capacity constant of the modeled Raw
// machine and of the DBT runtime routines that run on it. The defaults
// reproduce the architecture intrinsics the paper reports (Figure 11)
// and the prototype's structural constants (§3). All latencies and
// occupancies are in cycles.
//
// Latency vs. occupancy: latency is when the result is available to a
// dependent instruction; occupancy is how long the issuing unit is busy
// (cannot issue further work). The emulator's guest-load L1 hit costs
// latency 6 / occupancy 4 because address translation is done in
// software inline (no MMU hardware on Raw).
type Params struct {
	// Grid geometry.
	Width, Height int

	// Network: per-hop wire latency and fixed header cost for a dynamic
	// network message, plus per-word serialization cost.
	NetHopLat    uint64
	NetHeaderLat uint64
	NetWordLat   uint64

	// Per-tile memories.
	IMemBytes   int // software-managed instruction memory (L1 code cache budget)
	DCacheBytes int // hardware-managed data cache
	DCacheWays  int
	DCacheLine  int

	// Guest memory access intrinsics on the execution tile
	// (paper Fig. 11, "Raw Emulator" column).
	GuestL1HitLat uint64 // latency of a guest load hitting the tile D-cache
	GuestL1HitOcc uint64 // occupancy of the same (software translation inline)
	GuestStoreOcc uint64 // occupancy of a guest store hitting the D-cache

	// Pipelined memory system tiles.
	MMULookupOcc  uint64 // MMU/TLB tile service occupancy per request
	TLBMissOcc    uint64 // extra occupancy on a TLB miss (software walk)
	TLBEntries    int
	BankLookupOcc uint64 // L2 data bank tag check + SRAM access
	BankLineFill  uint64 // extra cost to fill a line from DRAM on bank miss
	DRAMLat       uint64 // off-chip DRAM access latency
	L2DBankBytes  int    // capacity of one L2 data cache bank tile
	L2DWays       int
	L2DLine       int

	// Code cache hierarchy.
	L1LookupOcc     uint64 // dispatch-loop hash lookup in the L1 code cache
	L1CopyWordOcc   uint64 // cycles per word to copy a block into I-mem
	L1ChainPatchOcc uint64 // cycles to patch one chain site
	L15BankBytes    int    // capacity of one L1.5 code cache bank
	L15LookupOcc    uint64 // L1.5 bank service occupancy per request
	L15WordOcc      uint64 // per-word transfer occupancy out of an L1.5 bank
	L2CLookupOcc    uint64 // manager tile L2 code cache map lookup
	L2CStoreOcc     uint64 // manager occupancy to store a translated block
	L2CWordOcc      uint64 // per-word DRAM traffic cost for L2 code cache data
	L2CodeBytes     int    // total L2 code cache budget in DRAM (105MB)

	// Translator costs (translation slave tiles).
	TransFetchOcc   uint64 // per guest byte fetched for decode
	TransBaseOcc    uint64 // per guest instruction: decode + IR + codegen
	TransOptOcc     uint64 // additional per guest instruction when optimizing
	Tier0BaseOcc    uint64 // per guest instruction on the IR-less template tier
	TransRequestOcc uint64 // manager bookkeeping per translation request

	// Runtime engine costs.
	DispatchOcc  uint64 // dispatch loop iteration on the execution tile
	AssistOcc    uint64 // fixed cost of an interpreter-assist fallback
	SyscallOcc   uint64 // syscall proxy tile service cost
	ExecUnits    int    // issue width of a tile (1: in-order single issue)
	MorphFixed   uint64 // fixed cost to switch a tile's role
	MorphPerLine uint64 // cost per dirty line written back during a flush

	// Fault-tolerance protocol costs and deadlines (active only when a
	// fault plan is installed with recovery enabled; with faults off no
	// code consults them, preserving bit-identical fault-free runs).
	HeartbeatPeriod  uint64 // cycles between worker-tile heartbeats to the manager
	HeartbeatTimeout uint64 // silence after which the manager declares a worker dead
	NetWatchdog      uint64 // base reply timeout for request/reply round trips
	WorkWatchdog     uint64 // manager deadline for a dispatched translation
	RetryBackoffMax  uint64 // cap on the exponential retry backoff
	HeartbeatOcc     uint64 // worker occupancy to emit one heartbeat
	RecoveryOcc      uint64 // manager bookkeeping to excise a dead tile

	// Rollback recovery: modeled cost to restore the machine from the
	// last checkpoint (fixed protocol overhead plus per guest page
	// reloaded from the DRAM-resident snapshot). Charged as dead time
	// between fault detection and the restart of the re-executed run.
	RollbackFixedOcc   uint64
	RollbackPerPageOcc uint64
}

// DefaultParams returns the modeled Raw prototype: a 4×4 grid with the
// paper's structural constants and Figure 11 intrinsics.
func DefaultParams() Params {
	return Params{
		Width: 4, Height: 4,

		NetHopLat:    1,
		NetHeaderLat: 2,
		NetWordLat:   1,

		IMemBytes:   32 * 1024,
		DCacheBytes: 32 * 1024,
		DCacheWays:  2,
		DCacheLine:  32,

		GuestL1HitLat: 6,
		GuestL1HitOcc: 4,
		GuestStoreOcc: 4,

		MMULookupOcc:  30,
		TLBMissOcc:    40,
		TLBEntries:    64,
		BankLookupOcc: 28,
		BankLineFill:  12,
		DRAMLat:       52,
		L2DBankBytes:  32 * 1024,
		L2DWays:       4,
		L2DLine:       32,

		L1LookupOcc:     20,
		L1CopyWordOcc:   6,
		L1ChainPatchOcc: 6,
		L15BankBytes:    64 * 1024,
		L15LookupOcc:    12,
		L15WordOcc:      3,
		L2CLookupOcc:    40,
		L2CStoreOcc:     40,
		L2CWordOcc:      10,
		L2CodeBytes:     105 * 1024 * 1024,

		TransFetchOcc:   2,
		TransBaseOcc:    60,
		TransOptOcc:     90,
		Tier0BaseOcc:    18,
		TransRequestOcc: 12,

		DispatchOcc:  26,
		AssistOcc:    40,
		SyscallOcc:   200,
		ExecUnits:    1,
		MorphFixed:   500,
		MorphPerLine: 24,

		HeartbeatPeriod:  25_000,
		HeartbeatTimeout: 80_000,
		NetWatchdog:      20_000,
		WorkWatchdog:     120_000,
		RetryBackoffMax:  160_000,
		HeartbeatOcc:     4,
		RecoveryOcc:      500,

		RollbackFixedOcc:   25_000,
		RollbackPerPageOcc: 4_000,
	}
}

// Tiles returns the number of tiles in the grid.
func (p Params) Tiles() int { return p.Width * p.Height }

// XY returns the grid coordinates of tile id.
func (p Params) XY(id int) (x, y int) { return id % p.Width, id / p.Width }

// TileAt returns the tile id at grid coordinates (x, y).
func (p Params) TileAt(x, y int) int { return y*p.Width + x }

// Hops returns the Manhattan distance between two tiles, the hop count
// of a dimension-ordered route on the dynamic network.
func (p Params) Hops(from, to int) uint64 {
	fx, fy := p.XY(from)
	tx, ty := p.XY(to)
	return uint64(abs(fx-tx) + abs(fy-ty))
}

// NetLat returns the modeled network latency for a message of the given
// payload size in words between two tiles.
func (p Params) NetLat(from, to, words int) uint64 {
	return p.NetHeaderLat + p.NetHopLat*p.Hops(from, to) + p.NetWordLat*uint64(words)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
