package raw

import (
	"errors"
	"testing"

	"tilevm/internal/fault"
	"tilevm/internal/sim"
)

func TestGridGeometry(t *testing.T) {
	p := DefaultParams()
	if p.Tiles() != 16 {
		t.Fatalf("tiles = %d", p.Tiles())
	}
	x, y := p.XY(5)
	if x != 1 || y != 1 {
		t.Errorf("XY(5) = %d,%d", x, y)
	}
	if p.TileAt(1, 1) != 5 {
		t.Errorf("TileAt(1,1) = %d", p.TileAt(1, 1))
	}
	for id := 0; id < 16; id++ {
		x, y := p.XY(id)
		if p.TileAt(x, y) != id {
			t.Errorf("XY/TileAt not inverse for %d", id)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {5, 6, 1}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := p.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if p.Hops(c.b, c.a) != c.want {
			t.Errorf("Hops not symmetric for %d,%d", c.a, c.b)
		}
	}
}

func TestNetLatGrowsWithDistanceAndSize(t *testing.T) {
	p := DefaultParams()
	near := p.NetLat(5, 6, 1)
	far := p.NetLat(0, 15, 1)
	if far <= near {
		t.Error("distance does not increase latency")
	}
	small := p.NetLat(5, 6, 1)
	big := p.NetLat(5, 6, 100)
	if big <= small {
		t.Error("payload size does not increase latency")
	}
}

func TestMachineMessaging(t *testing.T) {
	m := NewMachine(DefaultParams())
	got := ""
	m.SpawnTile(0, "sender", func(c *TileCtx) {
		c.Advance(10)
		c.Send(15, "ping", 4)
	})
	m.SpawnTile(15, "receiver", func(c *TileCtx) {
		msg := c.Recv()
		got = msg.Payload.(string)
		if msg.From != 0 {
			t.Errorf("From = %d", msg.From)
		}
		// 10 (sender) + header 2 + 6 hops + 4 words = 22.
		if c.Now() != 22 {
			t.Errorf("arrival at %d, want 22", c.Now())
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("payload = %q", got)
	}
}

// TestFaultDropDeadlocksWithDiagnostic: dropping every message starves
// the receiver, and the run must end in a DeadlockError naming the
// blocked process and its port instead of hanging.
func TestFaultDropDeadlocksWithDiagnostic(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.Faults = fault.NewInjector(&fault.Plan{DropProb: 1.0})
	m.SpawnTile(0, "sender", func(c *TileCtx) {
		c.Send(15, "lost", 4)
	})
	m.SpawnTile(15, "receiver", func(c *TileCtx) {
		c.Recv()
		t.Error("dropped message delivered")
	})
	err := m.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want *sim.DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0].Proc != "receiver@15" || dl.Blocked[0].Port != "tile15.in" {
		t.Errorf("blocked = %+v", dl.Blocked)
	}
	if m.Faults.Counts().Drops != 1 {
		t.Errorf("drops = %d, want 1", m.Faults.Counts().Drops)
	}
}

// TestFaultDelayAddsLatency: a delayed message arrives exactly
// DelayCycles later than the modeled network latency.
func TestFaultDelayAddsLatency(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.Faults = fault.NewInjector(&fault.Plan{DelayProb: 1.0, DelayCycles: 100})
	m.SpawnTile(0, "sender", func(c *TileCtx) {
		c.Advance(10)
		c.Send(15, "slow", 4)
	})
	m.SpawnTile(15, "receiver", func(c *TileCtx) {
		c.Recv()
		// Fault-free arrival is 22 (see TestMachineMessaging).
		if c.Now() != 122 {
			t.Errorf("delayed arrival at %d, want 122", c.Now())
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCorruptionDelivered: corruption wraps the payload in
// Corrupted so kernels discard it by type.
func TestFaultCorruptionDelivered(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.Faults = fault.NewInjector(&fault.Plan{CorruptProb: 1.0})
	m.SpawnTile(0, "sender", func(c *TileCtx) {
		c.Send(15, "garbled", 4)
	})
	m.SpawnTile(15, "receiver", func(c *TileCtx) {
		msg := c.Recv()
		cm, ok := msg.Payload.(Corrupted)
		if !ok {
			t.Errorf("payload = %T, want Corrupted", msg.Payload)
		} else if cm.Payload.(string) != "garbled" {
			t.Errorf("inner payload = %v", cm.Payload)
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFailStopSilencesTile: after its fail cycle a tile consumes
// messages without responding, and is excused from deadlock detection
// as a daemon.
func TestFaultFailStopSilencesTile(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.Faults = fault.NewInjector(&fault.Plan{Fails: []fault.TileFail{{Tile: 1, Cycle: 50}}})
	replies := 0
	m.SpawnTile(1, "server", func(c *TileCtx) {
		for {
			msg := c.Recv()
			c.Send(msg.From, msg.Payload, 1)
		}
	})
	m.SpawnTile(2, "client", func(c *TileCtx) {
		c.Send(1, 1, 1)
		c.Recv()
		replies++
		c.Advance(100) // past the server's fail cycle
		c.Send(1, 2, 1)
		if _, ok := c.RecvDeadline(c.Now() + 1000); ok {
			t.Error("dead server replied")
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if replies != 1 {
		t.Errorf("replies = %d, want 1", replies)
	}
	if m.Faults.Counts().Fails != 1 {
		t.Errorf("fails = %d, want 1", m.Faults.Counts().Fails)
	}
}

// TestFaultStallDelaysService: a transient stall pushes the stalled
// tile's reply back by the stall duration.
func TestFaultStallDelaysService(t *testing.T) {
	serviceAt := func(plan *fault.Plan) sim.Time {
		m := NewMachine(DefaultParams())
		m.Faults = fault.NewInjector(plan)
		var at sim.Time
		m.SpawnTile(1, "server", func(c *TileCtx) {
			c.Recv()
			c.Send(2, "done", 1)
		})
		m.SpawnTile(2, "client", func(c *TileCtx) {
			c.Send(1, "go", 1)
			c.Recv()
			at = c.Now()
			c.Stop()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	// A plan with an irrelevant stall (tile 9) as the fault-free control,
	// so both runs use the same code path.
	clean := serviceAt(&fault.Plan{Stalls: []fault.TileStall{{Tile: 9, Cycle: 0, Dur: 777}}})
	stalled := serviceAt(&fault.Plan{Stalls: []fault.TileStall{{Tile: 1, Cycle: 0, Dur: 777}}})
	if stalled != clean+777 {
		t.Errorf("stalled service at %d, clean at %d, want +777", stalled, clean)
	}
}

func TestMachineRequestReply(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.SpawnTile(1, "server", func(c *TileCtx) {
		for {
			msg := c.Recv()
			c.Tick(5) // service occupancy
			c.Send(msg.From, msg.Payload.(int)*2, 1)
		}
	})
	m.SpawnTile(2, "client", func(c *TileCtx) {
		for i := 1; i <= 3; i++ {
			c.Send(1, i, 1)
			r := c.Recv()
			if r.Payload.(int) != i*2 {
				t.Errorf("reply = %v, want %d", r.Payload, i*2)
			}
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
