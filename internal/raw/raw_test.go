package raw

import (
	"testing"
)

func TestGridGeometry(t *testing.T) {
	p := DefaultParams()
	if p.Tiles() != 16 {
		t.Fatalf("tiles = %d", p.Tiles())
	}
	x, y := p.XY(5)
	if x != 1 || y != 1 {
		t.Errorf("XY(5) = %d,%d", x, y)
	}
	if p.TileAt(1, 1) != 5 {
		t.Errorf("TileAt(1,1) = %d", p.TileAt(1, 1))
	}
	for id := 0; id < 16; id++ {
		x, y := p.XY(id)
		if p.TileAt(x, y) != id {
			t.Errorf("XY/TileAt not inverse for %d", id)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {5, 6, 1}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := p.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if p.Hops(c.b, c.a) != c.want {
			t.Errorf("Hops not symmetric for %d,%d", c.a, c.b)
		}
	}
}

func TestNetLatGrowsWithDistanceAndSize(t *testing.T) {
	p := DefaultParams()
	near := p.NetLat(5, 6, 1)
	far := p.NetLat(0, 15, 1)
	if far <= near {
		t.Error("distance does not increase latency")
	}
	small := p.NetLat(5, 6, 1)
	big := p.NetLat(5, 6, 100)
	if big <= small {
		t.Error("payload size does not increase latency")
	}
}

func TestMachineMessaging(t *testing.T) {
	m := NewMachine(DefaultParams())
	got := ""
	m.SpawnTile(0, "sender", func(c *TileCtx) {
		c.Advance(10)
		c.Send(15, "ping", 4)
	})
	m.SpawnTile(15, "receiver", func(c *TileCtx) {
		msg := c.Recv()
		got = msg.Payload.(string)
		if msg.From != 0 {
			t.Errorf("From = %d", msg.From)
		}
		// 10 (sender) + header 2 + 6 hops + 4 words = 22.
		if c.Now() != 22 {
			t.Errorf("arrival at %d, want 22", c.Now())
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("payload = %q", got)
	}
}

func TestMachineRequestReply(t *testing.T) {
	m := NewMachine(DefaultParams())
	m.SpawnTile(1, "server", func(c *TileCtx) {
		for {
			msg := c.Recv()
			c.Tick(5) // service occupancy
			c.Send(msg.From, msg.Payload.(int)*2, 1)
		}
	})
	m.SpawnTile(2, "client", func(c *TileCtx) {
		for i := 1; i <= 3; i++ {
			c.Send(1, i, 1)
			r := c.Recv()
			if r.Payload.(int) != i*2 {
				t.Errorf("reply = %v, want %d", r.Payload, i*2)
			}
		}
		c.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
