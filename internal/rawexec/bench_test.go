package rawexec

import (
	"testing"

	"tilevm/internal/rawisa"
)

// nopEnv is an Env for pure ALU/branch benchmarks; none of its methods
// are reached by the benchmarked code.
type nopEnv struct{}

func (nopEnv) GuestLoad(addr uint32, size uint8, signed bool) (uint32, uint64) { return 0, 0 }
func (nopEnv) GuestStore(addr uint32, val uint32, size uint8)                  {}
func (nopEnv) Syscall(cpu *CPU)                                                {}
func (nopEnv) Assist(guestPC uint32, cpu *CPU) error                           { return nil }
func (nopEnv) Stopped() bool                                                   { return false }
func (nopEnv) Interrupted() bool                                               { return false }

// countdownLoop is the canonical two-instruction inner loop: decrement
// r1, branch back while nonzero.
var countdownLoop = []rawisa.Inst{
	{Op: rawisa.ADDI, Rd: 1, Rs: 1, Imm: -1},
	{Op: rawisa.BNE, Rs: 1, Rt: 0, Imm: -2},
	{Op: rawisa.EXITI, Target: 0xdead},
}

// BenchmarkInnerLoop measures the predecoded dispatch path on the
// countdown loop: the whole benchmark is one Exec call retiring 2·N
// host instructions.
func BenchmarkInnerLoop(b *testing.B) {
	var p Program
	p.Sync(countdownLoop)
	cpu := &CPU{}
	cpu.R[1] = uint32(b.N)
	clk := &CountClock{}
	b.ReportAllocs()
	b.ResetTimer()
	exit, err := p.Exec(cpu, 0, clk, nopEnv{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	if exit.NextPC != 0xdead {
		b.Fatalf("exit pc %#x", exit.NextPC)
	}
}

// TestProgramRepatchMatchesFullPredecode pins the incremental-update
// contract: Sync over a patched arena plus Repatch of the patched
// indices must equal predecoding the arena from scratch.
func TestProgramRepatchMatchesFullPredecode(t *testing.T) {
	arena := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 1, Imm: 7},
		{Op: rawisa.CHAIN, Target: 0x2000},
		{Op: rawisa.NOP},
	}
	var p Program
	p.Sync(arena)

	// The code cache patches the chain site in place and grows the
	// arena with the target block.
	arena[1] = rawisa.Inst{Op: rawisa.J, Target: 3}
	arena = append(arena, rawisa.Inst{Op: rawisa.EXITI, Target: 0x2000})
	p.Repatch(arena, []int{1})
	p.Sync(arena)

	var fresh Program
	fresh.Sync(arena)
	if len(p.ops) != len(fresh.ops) {
		t.Fatalf("length %d, want %d", len(p.ops), len(fresh.ops))
	}
	for i := range p.ops {
		if p.ops[i] != fresh.ops[i] {
			t.Fatalf("op %d: incremental %+v, fresh %+v", i, p.ops[i], fresh.ops[i])
		}
	}
}
