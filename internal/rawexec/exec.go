// Package rawexec executes translated host code on the
// runtime-execution tile: a functional interpreter for the Raw ISA with
// an in-order single-issue timing model (per-register scoreboard for
// load-use stalls). Guest memory, syscalls, and interpreter assists are
// delegated to an Env so the same engine runs standalone in unit tests
// (flat memory, free timing) and inside the simulated machine (tile
// D-cache, pipelined MMU/L2 messages, virtual time).
package rawexec

import (
	"fmt"

	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
)

// Clock is the execution tile's cycle counter. Inside the machine
// simulation it wraps the tile's sim process; in tests it is a plain
// counter.
type Clock interface {
	Now() uint64
	Tick(d uint64)
}

// CountClock is the trivial Clock used by tests and standalone runs.
type CountClock struct{ T uint64 }

// Now returns the current cycle.
func (c *CountClock) Now() uint64 { return c.T }

// Tick advances the counter.
func (c *CountClock) Tick(d uint64) { c.T += d }

// Env supplies the execution engine's external operations.
type Env interface {
	// GuestLoad reads guest memory, charging issue occupancy on the
	// clock itself and returning the loaded (extended) value along
	// with the absolute cycle at which it is ready for use.
	GuestLoad(addr uint32, size uint8, signed bool) (val uint32, readyAt uint64)
	// GuestStore writes guest memory, charging occupancy internally.
	GuestStore(addr uint32, val uint32, size uint8)
	// Syscall services a guest syscall against the pinned registers.
	Syscall(cpu *CPU)
	// Assist executes one guest instruction via the interpreter
	// fallback and writes the architectural state back.
	Assist(guestPC uint32, cpu *CPU) error
	// Stopped reports that the guest has exited; Exec returns
	// immediately after the syscall that set it (chained successor
	// blocks must not run).
	Stopped() bool
	// Interrupted reports that execution must return to the dispatch
	// loop at the next block boundary (e.g. a store hit a translated
	// code page and the caches must be invalidated). Chained jumps are
	// not followed while it is set.
	Interrupted() bool
}

// scratchWords is the tile-local runtime scratch memory addressable by
// host LW/SW (spill and runtime bookkeeping space).
const scratchWords = 2048

// CPU is the host register state of the execution tile.
type CPU struct {
	R       [rawisa.NumRegs]uint32
	HI, LO  uint32
	ready   [rawisa.NumRegs]uint64
	readyMD uint64 // HI/LO ready time
	Scratch [scratchWords]uint32
}

// LoadGuest pins guest architectural state into the host registers.
func (c *CPU) LoadGuest(g *guest.CPU) {
	for i := 0; i < 8; i++ {
		c.R[rawisa.RegEAX+i] = g.R[i]
	}
	c.R[rawisa.RegFlags] = g.Flags
}

// StoreGuest writes the pinned registers back to guest state.
func (c *CPU) StoreGuest(g *guest.CPU) {
	for i := 0; i < 8; i++ {
		g.R[i] = c.R[rawisa.RegEAX+i]
	}
	g.Flags = c.R[rawisa.RegFlags] & 0xfff
}

// Fault is a host-level execution fault (bad opcode, divide error,
// assist fault).
type Fault struct {
	Index  int
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("rawexec: fault at code index %d: %s", f.Index, f.Reason)
}

// Exit describes why Exec returned.
type Exit struct {
	NextPC uint32 // next guest PC to dispatch
	Insts  uint64 // host instructions retired
	// Interrupted is set when a chained jump was suppressed because
	// the Env reported an interrupt; ChainIdx then holds the arena
	// index the suppressed jump targeted (a block entry) and NextPC is
	// not meaningful until the caller resolves it.
	Interrupted bool
	ChainIdx    int
}

// MulLatency is the result latency of MULT/DIV before MFHI/MFLO.
const MulLatency = 4

// BranchPenalty is the pipeline-refill cost of a taken branch or jump
// on the 8-stage in-order tile (static not-taken prediction).
const BranchPenalty = 2

// Exec runs host code within arena starting at index start until an
// exit instruction. maxInsts bounds execution (0 = unbounded) for
// tests; inside the machine the simulator's time limit is the watchdog.
//
// Exec predecodes the whole arena on every call; callers that dispatch
// repeatedly into a growing arena (the execution tile's block loop)
// should hold a Program and use Sync/Repatch/Program.Exec instead.
func Exec(cpu *CPU, arena []rawisa.Inst, start int, clk Clock, env Env, maxInsts uint64) (Exit, error) {
	var p Program
	p.Sync(arena)
	return p.Exec(cpu, start, clk, env, maxInsts)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
