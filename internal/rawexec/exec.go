// Package rawexec executes translated host code on the
// runtime-execution tile: a functional interpreter for the Raw ISA with
// an in-order single-issue timing model (per-register scoreboard for
// load-use stalls). Guest memory, syscalls, and interpreter assists are
// delegated to an Env so the same engine runs standalone in unit tests
// (flat memory, free timing) and inside the simulated machine (tile
// D-cache, pipelined MMU/L2 messages, virtual time).
package rawexec

import (
	"fmt"

	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
)

// Clock is the execution tile's cycle counter. Inside the machine
// simulation it wraps the tile's sim process; in tests it is a plain
// counter.
type Clock interface {
	Now() uint64
	Tick(d uint64)
}

// CountClock is the trivial Clock used by tests and standalone runs.
type CountClock struct{ T uint64 }

// Now returns the current cycle.
func (c *CountClock) Now() uint64 { return c.T }

// Tick advances the counter.
func (c *CountClock) Tick(d uint64) { c.T += d }

// Env supplies the execution engine's external operations.
type Env interface {
	// GuestLoad reads guest memory, charging issue occupancy on the
	// clock itself and returning the loaded (extended) value along
	// with the absolute cycle at which it is ready for use.
	GuestLoad(addr uint32, size uint8, signed bool) (val uint32, readyAt uint64)
	// GuestStore writes guest memory, charging occupancy internally.
	GuestStore(addr uint32, val uint32, size uint8)
	// Syscall services a guest syscall against the pinned registers.
	Syscall(cpu *CPU)
	// Assist executes one guest instruction via the interpreter
	// fallback and writes the architectural state back.
	Assist(guestPC uint32, cpu *CPU) error
	// Stopped reports that the guest has exited; Exec returns
	// immediately after the syscall that set it (chained successor
	// blocks must not run).
	Stopped() bool
	// Interrupted reports that execution must return to the dispatch
	// loop at the next block boundary (e.g. a store hit a translated
	// code page and the caches must be invalidated). Chained jumps are
	// not followed while it is set.
	Interrupted() bool
}

// scratchWords is the tile-local runtime scratch memory addressable by
// host LW/SW (spill and runtime bookkeeping space).
const scratchWords = 2048

// CPU is the host register state of the execution tile.
type CPU struct {
	R       [rawisa.NumRegs]uint32
	HI, LO  uint32
	ready   [rawisa.NumRegs]uint64
	readyMD uint64 // HI/LO ready time
	Scratch [scratchWords]uint32
}

// LoadGuest pins guest architectural state into the host registers.
func (c *CPU) LoadGuest(g *guest.CPU) {
	for i := 0; i < 8; i++ {
		c.R[rawisa.RegEAX+i] = g.R[i]
	}
	c.R[rawisa.RegFlags] = g.Flags
}

// StoreGuest writes the pinned registers back to guest state.
func (c *CPU) StoreGuest(g *guest.CPU) {
	for i := 0; i < 8; i++ {
		g.R[i] = c.R[rawisa.RegEAX+i]
	}
	g.Flags = c.R[rawisa.RegFlags] & 0xfff
}

// Fault is a host-level execution fault (bad opcode, divide error,
// assist fault).
type Fault struct {
	Index  int
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("rawexec: fault at code index %d: %s", f.Index, f.Reason)
}

// Exit describes why Exec returned.
type Exit struct {
	NextPC uint32 // next guest PC to dispatch
	Insts  uint64 // host instructions retired
	// Interrupted is set when a chained jump was suppressed because
	// the Env reported an interrupt; ChainIdx then holds the arena
	// index the suppressed jump targeted (a block entry) and NextPC is
	// not meaningful until the caller resolves it.
	Interrupted bool
	ChainIdx    int
}

// MulLatency is the result latency of MULT/DIV before MFHI/MFLO.
const MulLatency = 4

// BranchPenalty is the pipeline-refill cost of a taken branch or jump
// on the 8-stage in-order tile (static not-taken prediction).
const BranchPenalty = 2

// Exec runs host code within arena starting at index start until an
// exit instruction. maxInsts bounds execution (0 = unbounded) for
// tests; inside the machine the simulator's time limit is the watchdog.
func Exec(cpu *CPU, arena []rawisa.Inst, start int, clk Clock, env Env, maxInsts uint64) (Exit, error) {
	pcIdx := start
	var insts uint64

	use := func(r uint8) uint32 {
		if t := cpu.ready[r]; t > clk.Now() {
			clk.Tick(t - clk.Now())
		}
		return cpu.R[r]
	}
	def := func(r uint8, v uint32) {
		if r != 0 {
			cpu.R[r] = v
			cpu.ready[r] = 0
		}
	}
	defAt := func(r uint8, v uint32, ready uint64) {
		if r != 0 {
			cpu.R[r] = v
			cpu.ready[r] = ready
		}
	}

	for {
		if pcIdx < 0 || pcIdx >= len(arena) {
			return Exit{}, &Fault{Index: pcIdx, Reason: "execution ran outside code arena"}
		}
		if maxInsts != 0 && insts >= maxInsts {
			return Exit{}, &Fault{Index: pcIdx, Reason: "instruction budget exhausted"}
		}
		in := arena[pcIdx]
		insts++
		clk.Tick(1)
		next := pcIdx + 1

		switch in.Op {
		case rawisa.NOP:
		case rawisa.LUI:
			def(in.Rd, uint32(in.Imm)<<16)
		case rawisa.ADDI:
			def(in.Rd, use(in.Rs)+uint32(in.Imm))
		case rawisa.ANDI:
			def(in.Rd, use(in.Rs)&uint32(uint16(in.Imm)))
		case rawisa.ORI:
			def(in.Rd, use(in.Rs)|uint32(uint16(in.Imm)))
		case rawisa.XORI:
			def(in.Rd, use(in.Rs)^uint32(uint16(in.Imm)))
		case rawisa.SLTI:
			def(in.Rd, b2u(int32(use(in.Rs)) < in.Imm))
		case rawisa.SLTIU:
			def(in.Rd, b2u(use(in.Rs) < uint32(in.Imm)))
		case rawisa.SLLI:
			def(in.Rd, use(in.Rs)<<uint(in.Imm&31))
		case rawisa.SRLI:
			def(in.Rd, use(in.Rs)>>uint(in.Imm&31))
		case rawisa.SRAI:
			def(in.Rd, uint32(int32(use(in.Rs))>>uint(in.Imm&31)))

		case rawisa.ADD:
			def(in.Rd, use(in.Rs)+use(in.Rt))
		case rawisa.SUB:
			def(in.Rd, use(in.Rs)-use(in.Rt))
		case rawisa.AND:
			def(in.Rd, use(in.Rs)&use(in.Rt))
		case rawisa.OR:
			def(in.Rd, use(in.Rs)|use(in.Rt))
		case rawisa.XOR:
			def(in.Rd, use(in.Rs)^use(in.Rt))
		case rawisa.NOR:
			def(in.Rd, ^(use(in.Rs) | use(in.Rt)))
		case rawisa.SLT:
			def(in.Rd, b2u(int32(use(in.Rs)) < int32(use(in.Rt))))
		case rawisa.SLTU:
			def(in.Rd, b2u(use(in.Rs) < use(in.Rt)))
		case rawisa.SLL:
			def(in.Rd, use(in.Rt)<<(use(in.Rs)&31))
		case rawisa.SRL:
			def(in.Rd, use(in.Rt)>>(use(in.Rs)&31))
		case rawisa.SRA:
			def(in.Rd, uint32(int32(use(in.Rt))>>(use(in.Rs)&31)))

		case rawisa.MULT:
			wide := int64(int32(use(in.Rs))) * int64(int32(use(in.Rt)))
			cpu.LO, cpu.HI = uint32(wide), uint32(uint64(wide)>>32)
			cpu.readyMD = clk.Now() + MulLatency
		case rawisa.MULTU:
			wide := uint64(use(in.Rs)) * uint64(use(in.Rt))
			cpu.LO, cpu.HI = uint32(wide), uint32(wide>>32)
			cpu.readyMD = clk.Now() + MulLatency
		case rawisa.DIV:
			d := int32(use(in.Rt))
			n := int32(use(in.Rs))
			if d == 0 {
				return Exit{}, &Fault{Index: pcIdx, Reason: "integer divide by zero"}
			}
			if n == -1<<31 && d == -1 {
				cpu.LO, cpu.HI = uint32(n), 0
			} else {
				cpu.LO, cpu.HI = uint32(n/d), uint32(n%d)
			}
			cpu.readyMD = clk.Now() + MulLatency
		case rawisa.DIVU:
			d := use(in.Rt)
			if d == 0 {
				return Exit{}, &Fault{Index: pcIdx, Reason: "integer divide by zero"}
			}
			n := use(in.Rs)
			cpu.LO, cpu.HI = n/d, n%d
			cpu.readyMD = clk.Now() + MulLatency
		case rawisa.MFHI:
			defAt(in.Rd, cpu.HI, cpu.readyMD)
		case rawisa.MFLO:
			defAt(in.Rd, cpu.LO, cpu.readyMD)

		case rawisa.LW:
			addr := (use(in.Rs) + uint32(in.Imm)) / 4 % scratchWords
			defAt(in.Rd, cpu.Scratch[addr], clk.Now()+2)
		case rawisa.SW:
			addr := (use(in.Rs) + uint32(in.Imm)) / 4 % scratchWords
			cpu.Scratch[addr] = use(in.Rt)

		case rawisa.BEQ:
			if use(in.Rs) == use(in.Rt) {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.BNE:
			if use(in.Rs) != use(in.Rt) {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.BLEZ:
			if int32(use(in.Rs)) <= 0 {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.BGTZ:
			if int32(use(in.Rs)) > 0 {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.BLTZ:
			if int32(use(in.Rs)) < 0 {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.BGEZ:
			if int32(use(in.Rs)) >= 0 {
				next = pcIdx + 1 + int(in.Imm)
				clk.Tick(BranchPenalty)
			}
		case rawisa.J:
			if env.Interrupted() {
				// Do not follow the chain: the target block may have
				// been invalidated. Hand the entry index back to the
				// dispatch loop for resolution.
				return Exit{Interrupted: true, ChainIdx: int(in.Target), Insts: insts}, nil
			}
			next = int(in.Target)
			clk.Tick(BranchPenalty)
		case rawisa.JAL:
			def(rawisa.RegLink, uint32(pcIdx+1))
			next = int(in.Target)
			clk.Tick(BranchPenalty)
		case rawisa.JR:
			next = int(use(in.Rs))
			clk.Tick(BranchPenalty)

		case rawisa.GLB, rawisa.GLBU, rawisa.GLH, rawisa.GLHU, rawisa.GLW:
			addr := use(in.Rs)
			size := uint8(in.Op.GuestAccessBytes())
			signed := in.Op == rawisa.GLB || in.Op == rawisa.GLH
			v, readyAt := env.GuestLoad(addr, size, signed)
			defAt(in.Rd, v, readyAt)
		case rawisa.GSB, rawisa.GSH, rawisa.GSW:
			addr := use(in.Rs)
			v := use(in.Rt)
			env.GuestStore(addr, v, uint8(in.Op.GuestAccessBytes()))

		case rawisa.SYSC:
			env.Syscall(cpu)
			if env.Stopped() {
				return Exit{NextPC: 0, Insts: insts}, nil
			}

		case rawisa.ASSIST:
			if err := env.Assist(in.Target, cpu); err != nil {
				return Exit{}, &Fault{Index: pcIdx, Reason: err.Error()}
			}

		case rawisa.EXITI, rawisa.CHAIN:
			return Exit{NextPC: in.Target, Insts: insts}, nil
		case rawisa.EXITR:
			return Exit{NextPC: use(in.Rs), Insts: insts}, nil

		default:
			return Exit{}, &Fault{Index: pcIdx, Reason: fmt.Sprintf("bad opcode %v", in.Op)}
		}
		pcIdx = next
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
