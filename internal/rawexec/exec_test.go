package rawexec

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
)

// run executes a code fragment with a flat env over an empty process.
func run(t *testing.T, code []rawisa.Inst) (*CPU, *FlatEnv, Exit) {
	t.Helper()
	img := &guest.Image{Entry: 0, CodeBase: 0, Code: []byte{0x90}}
	p := guest.Load(img)
	clk := &CountClock{}
	env := NewFlatEnv(p, clk)
	cpu := &CPU{}
	exit, err := Exec(cpu, code, 0, clk, env, 10000)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return cpu, env, exit
}

func TestALUOps(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 0, Imm: 10},
		{Op: rawisa.ADDI, Rd: 2, Rs: 0, Imm: 3},
		{Op: rawisa.SUB, Rd: 3, Rs: 1, Rt: 2},  // 7
		{Op: rawisa.SLL, Rd: 4, Rs: 2, Rt: 3},  // 7<<3 = 56
		{Op: rawisa.NOR, Rd: 5, Rs: 4, Rt: 0},  // ^56
		{Op: rawisa.SLTU, Rd: 6, Rs: 2, Rt: 1}, // 3 < 10 = 1
		{Op: rawisa.EXITI, Target: 0x42},
	}
	cpu, _, exit := run(t, code)
	if cpu.R[3] != 7 || cpu.R[4] != 56 || cpu.R[5] != ^uint32(56) || cpu.R[6] != 1 {
		t.Errorf("regs: %v", cpu.R[:8])
	}
	if exit.NextPC != 0x42 {
		t.Errorf("NextPC = %#x", exit.NextPC)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 0, Rs: 0, Imm: 99},
		{Op: rawisa.EXITI, Target: 0},
	}
	cpu, _, _ := run(t, code)
	if cpu.R[0] != 0 {
		t.Error("r0 written")
	}
}

func TestMultDiv(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 0, Imm: -5},
		{Op: rawisa.ADDI, Rd: 2, Rs: 0, Imm: 1000},
		{Op: rawisa.MULT, Rs: 1, Rt: 2},
		{Op: rawisa.MFLO, Rd: 3}, // -5000
		{Op: rawisa.MFHI, Rd: 4}, // sign extension
		{Op: rawisa.DIV, Rs: 2, Rt: 1},
		{Op: rawisa.MFLO, Rd: 5}, // 1000/-5 = -200
		{Op: rawisa.EXITI, Target: 0},
	}
	cpu, _, _ := run(t, code)
	if int32(cpu.R[3]) != -5000 || cpu.R[4] != 0xffffffff || int32(cpu.R[5]) != -200 {
		t.Errorf("r3=%d r4=%#x r5=%d", int32(cpu.R[3]), cpu.R[4], int32(cpu.R[5]))
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.DIV, Rs: 1, Rt: 0},
		{Op: rawisa.EXITI, Target: 0},
	}
	img := &guest.Image{Entry: 0, CodeBase: 0, Code: []byte{0x90}}
	p := guest.Load(img)
	clk := &CountClock{}
	cpu := &CPU{}
	if _, err := Exec(cpu, code, 0, clk, NewFlatEnv(p, clk), 100); err == nil {
		t.Error("divide by zero did not fault")
	}
}

func TestBranchesAndChainedJump(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 0, Imm: 3},
		// loop: r2 += r1; r1--; bne r1,0,loop
		{Op: rawisa.ADD, Rd: 2, Rs: 2, Rt: 1},
		{Op: rawisa.ADDI, Rd: 1, Rs: 1, Imm: -1},
		{Op: rawisa.BNE, Rs: 1, Rt: 0, Imm: -3},
		{Op: rawisa.J, Target: 6}, // chained jump over the exit
		{Op: rawisa.EXITI, Target: 0xdead},
		{Op: rawisa.EXITI, Target: 0xbeef},
	}
	cpu, _, exit := run(t, code)
	if cpu.R[2] != 6 {
		t.Errorf("sum = %d", cpu.R[2])
	}
	if exit.NextPC != 0xbeef {
		t.Errorf("chained exit = %#x", exit.NextPC)
	}
}

func TestGuestMemoryOps(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.LUI, Rd: 1, Imm: 0x0a00}, // heap
		{Op: rawisa.ADDI, Rd: 2, Rs: 0, Imm: -2},
		{Op: rawisa.GSW, Rs: 1, Rt: 2},  // [heap] = 0xfffffffe
		{Op: rawisa.GLW, Rd: 3, Rs: 1},  // full word
		{Op: rawisa.GLB, Rd: 4, Rs: 1},  // sign-extended byte
		{Op: rawisa.GLBU, Rd: 5, Rs: 1}, // zero-extended byte
		{Op: rawisa.GLH, Rd: 6, Rs: 1},
		{Op: rawisa.GLHU, Rd: 7, Rs: 1},
		{Op: rawisa.EXITI, Target: 0},
	}
	cpu, env, _ := run(t, code)
	if cpu.R[3] != 0xfffffffe {
		t.Errorf("glw = %#x", cpu.R[3])
	}
	if cpu.R[4] != 0xfffffffe || cpu.R[5] != 0xfe {
		t.Errorf("glb=%#x glbu=%#x", cpu.R[4], cpu.R[5])
	}
	if cpu.R[6] != 0xfffffffe || cpu.R[7] != 0xfffe {
		t.Errorf("glh=%#x glhu=%#x", cpu.R[6], cpu.R[7])
	}
	if env.P.Mem.Read32(0x0a000000) != 0xfffffffe {
		t.Error("store did not reach guest memory")
	}
}

func TestLoadUseStall(t *testing.T) {
	img := &guest.Image{Entry: 0, CodeBase: 0, Code: []byte{0x90}}
	p := guest.Load(img)
	clk := &CountClock{}
	env := NewFlatEnv(p, clk)
	env.LoadLat = 10
	code := []rawisa.Inst{
		{Op: rawisa.GLW, Rd: 2, Rs: 1},
		{Op: rawisa.ADD, Rd: 3, Rs: 2, Rt: 2}, // immediate use: must stall
		{Op: rawisa.EXITI, Target: 0},
	}
	cpu := &CPU{}
	if _, err := Exec(cpu, code, 0, clk, env, 100); err != nil {
		t.Fatal(err)
	}
	// 1 (GLW issue) + 10 (stall to ready) + 1 (ADD) + exit.
	if clk.T < 12 {
		t.Errorf("no load-use stall: %d cycles", clk.T)
	}

	// Independent work between load and use hides the latency.
	clk2 := &CountClock{}
	env2 := NewFlatEnv(p, clk2)
	env2.LoadLat = 10
	var padded []rawisa.Inst
	padded = append(padded, rawisa.Inst{Op: rawisa.GLW, Rd: 2, Rs: 1})
	for i := 0; i < 12; i++ {
		padded = append(padded, rawisa.Inst{Op: rawisa.ADDI, Rd: 4, Rs: 4, Imm: 1})
	}
	padded = append(padded, rawisa.Inst{Op: rawisa.ADD, Rd: 3, Rs: 2, Rt: 2})
	padded = append(padded, rawisa.Inst{Op: rawisa.EXITI})
	cpu2 := &CPU{}
	if _, err := Exec(cpu2, padded, 0, clk2, env2, 100); err != nil {
		t.Fatal(err)
	}
	if clk2.T > 18 {
		t.Errorf("latency not hidden by independent work: %d cycles", clk2.T)
	}
}

func TestScratchMemory(t *testing.T) {
	code := []rawisa.Inst{
		{Op: rawisa.ADDI, Rd: 1, Rs: 0, Imm: 0x77},
		{Op: rawisa.SW, Rs: 0, Rt: 1, Imm: 32},
		{Op: rawisa.LW, Rd: 2, Rs: 0, Imm: 32},
		{Op: rawisa.EXITI, Target: 0},
	}
	cpu, _, _ := run(t, code)
	if cpu.R[2] != 0x77 {
		t.Errorf("scratch round trip = %#x", cpu.R[2])
	}
}

func TestArenaEscapeFaults(t *testing.T) {
	img := &guest.Image{Entry: 0, CodeBase: 0, Code: []byte{0x90}}
	p := guest.Load(img)
	clk := &CountClock{}
	code := []rawisa.Inst{{Op: rawisa.ADDI, Rd: 1, Rs: 0, Imm: 1}} // falls off the end
	cpu := &CPU{}
	if _, err := Exec(cpu, code, 0, clk, NewFlatEnv(p, clk), 100); err == nil {
		t.Error("running off the arena did not fault")
	}
}

func TestInstructionBudget(t *testing.T) {
	img := &guest.Image{Entry: 0, CodeBase: 0, Code: []byte{0x90}}
	p := guest.Load(img)
	clk := &CountClock{}
	code := []rawisa.Inst{
		{Op: rawisa.J, Target: 0}, // infinite loop
	}
	cpu := &CPU{}
	if _, err := Exec(cpu, code, 0, clk, NewFlatEnv(p, clk), 1000); err == nil {
		t.Error("budget exhaustion did not fault")
	}
}

func TestGuestStateRoundTrip(t *testing.T) {
	var g guest.CPU
	for i := range g.R {
		g.R[i] = uint32(i * 0x1111)
	}
	g.Flags = 0x8d5
	var c CPU
	c.LoadGuest(&g)
	var back guest.CPU
	c.StoreGuest(&back)
	if back != g {
		t.Errorf("round trip: %+v != %+v", back, g)
	}
}
