package rawexec

import (
	"fmt"

	"tilevm/internal/guest"
	"tilevm/internal/x86interp"
)

// FlatEnv is an Env over plain guest process state with configurable
// flat memory timing: no MMU pipeline, no cache model. It is used by
// unit/differential tests and by the quickstart example; the machine
// simulation installs its own Env with the pipelined memory system.
type FlatEnv struct {
	P   *guest.Process
	Clk Clock

	// Timing knobs (all may be zero for functional-only runs).
	LoadLat  uint64
	LoadOcc  uint64
	StoreOcc uint64

	// Assists counts interpreter fallbacks; Syscalls counts traps.
	Assists  uint64
	Syscalls uint64

	// Self-modifying-code detection (see RegisterCodePages).
	CodePages  map[uint32]bool
	SMCPending bool

	interp *x86interp.Interp
}

// NewFlatEnv builds a flat environment for a loaded process.
func NewFlatEnv(p *guest.Process, clk Clock) *FlatEnv {
	return &FlatEnv{P: p, Clk: clk, interp: x86interp.New(p)}
}

// GuestLoad implements Env.
func (e *FlatEnv) GuestLoad(addr uint32, size uint8, signed bool) (uint32, uint64) {
	e.Clk.Tick(e.LoadOcc)
	v := e.P.Mem.ReadN(addr, size)
	if signed && size != 4 {
		shift := 32 - uint(size)*8
		v = uint32(int32(v<<shift) >> shift)
	}
	return v, e.Clk.Now() + e.LoadLat
}

// GuestStore implements Env.
func (e *FlatEnv) GuestStore(addr uint32, val uint32, size uint8) {
	e.Clk.Tick(e.StoreOcc)
	e.P.Mem.WriteN(addr, val, size)
	e.checkSMC(addr, size)
}

// Syscall implements Env.
func (e *FlatEnv) Syscall(cpu *CPU) {
	e.Syscalls++
	cpu.StoreGuest(&e.P.CPU)
	e.P.Kern.Syscall(e.P.Mem, &e.P.R)
	cpu.LoadGuest(&e.P.CPU)
}

// Assist implements Env: it executes the single guest instruction at
// guestPC through the reference interpreter and reloads the pinned
// registers.
func (e *FlatEnv) Assist(guestPC uint32, cpu *CPU) error {
	e.Assists++
	cpu.StoreGuest(&e.P.CPU)
	e.P.PC = guestPC
	e.interp.OnMem = func(addr uint32, size uint8, write bool) {
		if write {
			e.checkSMC(addr, size)
		}
	}
	err := e.interp.Step()
	e.interp.OnMem = nil
	if err != nil {
		return err
	}
	if e.P.Kern.Exited {
		// Assisted instructions never invoke the kernel; exit comes
		// through SYSC.
		return fmt.Errorf("rawexec: assist at %#x unexpectedly exited", guestPC)
	}
	cpu.LoadGuest(&e.P.CPU)
	return nil
}

// Stopped implements Env.
func (e *FlatEnv) Stopped() bool { return e.P.Kern.Exited }

// Interrupted implements Env: set when a store hits a registered code
// page (self-modifying code); the caller must drop cached translations
// and clear the flag.
func (e *FlatEnv) Interrupted() bool { return e.SMCPending }

// RegisterCodePages marks the 4KB pages covered by a translated block
// so stores into them raise the SMC interrupt.
func (e *FlatEnv) RegisterCodePages(addr, length uint32) {
	if e.CodePages == nil {
		e.CodePages = make(map[uint32]bool)
	}
	for pg := addr >> 12; pg <= (addr+length-1)>>12; pg++ {
		e.CodePages[pg] = true
	}
}

func (e *FlatEnv) checkSMC(addr uint32, size uint8) {
	if e.CodePages == nil {
		return
	}
	for pg := addr >> 12; pg <= (addr+uint32(size)-1)>>12; pg++ {
		if e.CodePages[pg] {
			e.SMCPending = true
			return
		}
	}
}

var _ Env = (*FlatEnv)(nil)
