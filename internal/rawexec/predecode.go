package rawexec

import (
	"fmt"

	"tilevm/internal/rawisa"
)

// uop is one predecoded host instruction: operands unpacked, immediates
// pre-extended, branch targets resolved to absolute arena indices, and
// guest-access width/signedness precomputed, so the dispatch loop does
// no per-visit re-derivation.
type uop struct {
	op     rawisa.Op
	rd     uint8
	rs     uint8
	rt     uint8
	sz     uint8 // guest access bytes for GL*/GS*
	sgn    bool  // signed guest load
	imm    uint32
	target int32 // absolute arena index for branches and direct jumps
}

// Program is the predecoded form of an L1-arena code block sequence.
// The arena only grows between flushes, so Sync predecodes just the new
// tail; Repatch re-predecodes chain sites the code cache patched in
// place. A Program belongs to one arena: Reset it when the arena is
// flushed.
type Program struct {
	ops []uop
}

// Len returns the number of predecoded instructions.
func (p *Program) Len() int { return len(p.ops) }

// Reset empties the program (the arena was flushed). The backing store
// is kept for reuse.
func (p *Program) Reset() { p.ops = p.ops[:0] }

// Sync extends the program to cover arena, predecoding only
// arena[p.Len():]. The prefix must be unchanged except through Repatch.
func (p *Program) Sync(arena []rawisa.Inst) {
	for i := len(p.ops); i < len(arena); i++ {
		p.ops = append(p.ops, predecode(arena[i], i))
	}
}

// Repatch re-predecodes the given arena indices (chain sites patched
// from CHAIN to J by the code cache).
func (p *Program) Repatch(arena []rawisa.Inst, indices []int) {
	for _, i := range indices {
		if i < len(p.ops) {
			p.ops[i] = predecode(arena[i], i)
		}
	}
}

func predecode(in rawisa.Inst, i int) uop {
	u := uop{op: in.Op, rd: in.Rd, rs: in.Rs, rt: in.Rt, imm: uint32(in.Imm), target: int32(in.Target)}
	switch in.Op {
	case rawisa.LUI:
		u.imm = uint32(in.Imm) << 16
	case rawisa.ANDI, rawisa.ORI, rawisa.XORI:
		u.imm = uint32(uint16(in.Imm))
	case rawisa.SLLI, rawisa.SRLI, rawisa.SRAI:
		u.imm = uint32(in.Imm & 31)
	case rawisa.BEQ, rawisa.BNE, rawisa.BLEZ, rawisa.BGTZ, rawisa.BLTZ, rawisa.BGEZ:
		u.target = int32(i + 1 + int(in.Imm))
	case rawisa.GLB, rawisa.GLBU, rawisa.GLH, rawisa.GLHU, rawisa.GLW:
		u.sz = uint8(in.Op.GuestAccessBytes())
		u.sgn = in.Op == rawisa.GLB || in.Op == rawisa.GLH
	case rawisa.GSB, rawisa.GSH, rawisa.GSW:
		u.sz = uint8(in.Op.GuestAccessBytes())
	}
	return u
}

// Exec runs predecoded host code starting at index start until an exit
// instruction, exactly as the arena-walking Exec but without per-visit
// decode work. Virtual time is accumulated in a local counter and
// flushed to the Clock only at Env calls and block exits, so the
// per-instruction cost is plain integer arithmetic instead of interface
// method dispatch; the flushed totals (and therefore all timing) are
// bit-identical to the unbatched path.
func (p *Program) Exec(cpu *CPU, start int, clk Clock, env Env, maxInsts uint64) (Exit, error) {
	pcIdx := start
	var insts uint64
	ops := p.ops

	// now is the tile's local virtual time; reported is the prefix
	// already pushed to clk. flush() syncs before any external effect.
	now := clk.Now()
	reported := now
	flush := func() {
		if now > reported {
			clk.Tick(now - reported)
			reported = now
		}
	}
	resync := func() {
		now = clk.Now()
		reported = now
	}

	use := func(r uint8) uint32 {
		if t := cpu.ready[r]; t > now {
			now = t
		}
		return cpu.R[r]
	}
	def := func(r uint8, v uint32) {
		if r != 0 {
			cpu.R[r] = v
			cpu.ready[r] = 0
		}
	}
	defAt := func(r uint8, v uint32, ready uint64) {
		if r != 0 {
			cpu.R[r] = v
			cpu.ready[r] = ready
		}
	}

	for {
		if pcIdx < 0 || pcIdx >= len(ops) {
			flush()
			return Exit{}, &Fault{Index: pcIdx, Reason: "execution ran outside code arena"}
		}
		if maxInsts != 0 && insts >= maxInsts {
			flush()
			return Exit{}, &Fault{Index: pcIdx, Reason: "instruction budget exhausted"}
		}
		in := &ops[pcIdx]
		insts++
		now++
		next := pcIdx + 1

		switch in.op {
		case rawisa.NOP:
		case rawisa.LUI:
			def(in.rd, in.imm)
		case rawisa.ADDI:
			def(in.rd, use(in.rs)+in.imm)
		case rawisa.ANDI:
			def(in.rd, use(in.rs)&in.imm)
		case rawisa.ORI:
			def(in.rd, use(in.rs)|in.imm)
		case rawisa.XORI:
			def(in.rd, use(in.rs)^in.imm)
		case rawisa.SLTI:
			def(in.rd, b2u(int32(use(in.rs)) < int32(in.imm)))
		case rawisa.SLTIU:
			def(in.rd, b2u(use(in.rs) < in.imm))
		case rawisa.SLLI:
			def(in.rd, use(in.rs)<<in.imm)
		case rawisa.SRLI:
			def(in.rd, use(in.rs)>>in.imm)
		case rawisa.SRAI:
			def(in.rd, uint32(int32(use(in.rs))>>in.imm))

		case rawisa.ADD:
			def(in.rd, use(in.rs)+use(in.rt))
		case rawisa.SUB:
			def(in.rd, use(in.rs)-use(in.rt))
		case rawisa.AND:
			def(in.rd, use(in.rs)&use(in.rt))
		case rawisa.OR:
			def(in.rd, use(in.rs)|use(in.rt))
		case rawisa.XOR:
			def(in.rd, use(in.rs)^use(in.rt))
		case rawisa.NOR:
			def(in.rd, ^(use(in.rs) | use(in.rt)))
		case rawisa.SLT:
			def(in.rd, b2u(int32(use(in.rs)) < int32(use(in.rt))))
		case rawisa.SLTU:
			def(in.rd, b2u(use(in.rs) < use(in.rt)))
		case rawisa.SLL:
			def(in.rd, use(in.rt)<<(use(in.rs)&31))
		case rawisa.SRL:
			def(in.rd, use(in.rt)>>(use(in.rs)&31))
		case rawisa.SRA:
			def(in.rd, uint32(int32(use(in.rt))>>(use(in.rs)&31)))

		case rawisa.MULT:
			wide := int64(int32(use(in.rs))) * int64(int32(use(in.rt)))
			cpu.LO, cpu.HI = uint32(wide), uint32(uint64(wide)>>32)
			cpu.readyMD = now + MulLatency
		case rawisa.MULTU:
			wide := uint64(use(in.rs)) * uint64(use(in.rt))
			cpu.LO, cpu.HI = uint32(wide), uint32(wide>>32)
			cpu.readyMD = now + MulLatency
		case rawisa.DIV:
			d := int32(use(in.rt))
			n := int32(use(in.rs))
			if d == 0 {
				flush()
				return Exit{}, &Fault{Index: pcIdx, Reason: "integer divide by zero"}
			}
			if n == -1<<31 && d == -1 {
				cpu.LO, cpu.HI = uint32(n), 0
			} else {
				cpu.LO, cpu.HI = uint32(n/d), uint32(n%d)
			}
			cpu.readyMD = now + MulLatency
		case rawisa.DIVU:
			d := use(in.rt)
			if d == 0 {
				flush()
				return Exit{}, &Fault{Index: pcIdx, Reason: "integer divide by zero"}
			}
			n := use(in.rs)
			cpu.LO, cpu.HI = n/d, n%d
			cpu.readyMD = now + MulLatency
		case rawisa.MFHI:
			defAt(in.rd, cpu.HI, cpu.readyMD)
		case rawisa.MFLO:
			defAt(in.rd, cpu.LO, cpu.readyMD)

		case rawisa.LW:
			addr := (use(in.rs) + in.imm) / 4 % scratchWords
			defAt(in.rd, cpu.Scratch[addr], now+2)
		case rawisa.SW:
			addr := (use(in.rs) + in.imm) / 4 % scratchWords
			cpu.Scratch[addr] = use(in.rt)

		case rawisa.BEQ:
			if use(in.rs) == use(in.rt) {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.BNE:
			if use(in.rs) != use(in.rt) {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.BLEZ:
			if int32(use(in.rs)) <= 0 {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.BGTZ:
			if int32(use(in.rs)) > 0 {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.BLTZ:
			if int32(use(in.rs)) < 0 {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.BGEZ:
			if int32(use(in.rs)) >= 0 {
				next = int(in.target)
				now += BranchPenalty
			}
		case rawisa.J:
			if env.Interrupted() {
				// Do not follow the chain: the target block may have
				// been invalidated. Hand the entry index back to the
				// dispatch loop for resolution.
				flush()
				return Exit{Interrupted: true, ChainIdx: int(in.target), Insts: insts}, nil
			}
			next = int(in.target)
			now += BranchPenalty
		case rawisa.JAL:
			def(rawisa.RegLink, uint32(pcIdx+1))
			next = int(in.target)
			now += BranchPenalty
		case rawisa.JR:
			next = int(use(in.rs))
			now += BranchPenalty

		case rawisa.GLB, rawisa.GLBU, rawisa.GLH, rawisa.GLHU, rawisa.GLW:
			addr := use(in.rs)
			flush()
			v, readyAt := env.GuestLoad(addr, in.sz, in.sgn)
			resync()
			defAt(in.rd, v, readyAt)
		case rawisa.GSB, rawisa.GSH, rawisa.GSW:
			addr := use(in.rs)
			v := use(in.rt)
			flush()
			env.GuestStore(addr, v, in.sz)
			resync()

		case rawisa.SYSC:
			flush()
			env.Syscall(cpu)
			if env.Stopped() {
				return Exit{NextPC: 0, Insts: insts}, nil
			}
			resync()

		case rawisa.ASSIST:
			flush()
			if err := env.Assist(uint32(in.target), cpu); err != nil {
				return Exit{}, &Fault{Index: pcIdx, Reason: err.Error()}
			}
			resync()

		case rawisa.EXITI, rawisa.CHAIN:
			flush()
			return Exit{NextPC: uint32(in.target), Insts: insts}, nil
		case rawisa.EXITR:
			next := use(in.rs)
			flush()
			return Exit{NextPC: next, Insts: insts}, nil

		default:
			flush()
			return Exit{}, &Fault{Index: pcIdx, Reason: fmt.Sprintf("bad opcode %v", in.op)}
		}
		pcIdx = next
	}
}
