package rawisa

import "fmt"

// Binary encoding. Instructions are 32-bit words in MIPS-like formats:
//
//	R-format (3-register ALU):  op:6 | rd:5 | rs:5 | rt:5 | 0:11
//	I-format (imm ALU, memory): op:6 | rd:5 | rs:5 | imm:16
//	Branch:                     op:6 | rs:5 | rt:5 | off:16
//	Jump:                       op:6 | target:26
//	EXITI/CHAIN:                op:6 | patched:1 | 0:25  +  guestPC word
//
// Immediates are 16 bits (sign- or zero-extended per op, exactly as the
// mnemonic-level semantics state); the code generator materializes wider
// constants with LUI+ORI pairs, as on MIPS.

// Immediate range limits for the I-format.
const (
	MaxSImm = 1<<15 - 1
	MinSImm = -(1 << 15)
	MaxUImm = 1<<16 - 1
)

// FitsSImm reports whether v fits the signed 16-bit immediate field.
func FitsSImm(v int32) bool { return v >= MinSImm && v <= MaxSImm }

// FitsUImm reports whether v fits the unsigned 16-bit immediate field.
func FitsUImm(v int32) bool { return v >= 0 && v <= MaxUImm }

type encKind int

const (
	encR encKind = iota
	encI         // rd, rs, imm16
	encB         // rs, rt, off16
	encJ         // target26
	encX         // two-word (EXITI/CHAIN)
	encN         // no operands
)

func kindOf(op Op) encKind {
	switch op {
	case NOP, SYSC:
		return encN
	case LUI, ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLLI, SRLI, SRAI,
		LW, GLB, GLBU, GLH, GLHU, GLW:
		return encI
	case SW, GSB, GSH, GSW:
		return encB // rs = base, rt = value, imm = disp
	case ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU, SLL, SRL, SRA,
		MULT, MULTU, DIV, DIVU, MFHI, MFLO, JR, EXITR:
		return encR
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ:
		return encB
	case J, JAL:
		return encJ
	case EXITI, CHAIN, ASSIST:
		return encX
	}
	return encN
}

// Encode appends the binary encoding of in to w and returns the
// extended slice. It panics if an immediate or target does not fit its
// field; the code generator is responsible for staying in range.
func Encode(w []uint32, in Inst) []uint32 {
	op := uint32(in.Op) << 26
	switch kindOf(in.Op) {
	case encN:
		return append(w, op)
	case encR:
		return append(w, op|uint32(in.Rd)<<21|uint32(in.Rs)<<16|uint32(in.Rt)<<11)
	case encI:
		if !FitsSImm(in.Imm) && !FitsUImm(in.Imm) {
			panic(fmt.Sprintf("rawisa: immediate %d out of range in %v", in.Imm, in))
		}
		return append(w, op|uint32(in.Rd)<<21|uint32(in.Rs)<<16|uint32(uint16(in.Imm)))
	case encB:
		if !FitsSImm(in.Imm) {
			panic(fmt.Sprintf("rawisa: branch offset %d out of range in %v", in.Imm, in))
		}
		return append(w, op|uint32(in.Rs)<<21|uint32(in.Rt)<<16|uint32(uint16(in.Imm)))
	case encJ:
		if in.Target >= 1<<26 {
			panic(fmt.Sprintf("rawisa: jump target %#x out of range", in.Target))
		}
		return append(w, op|in.Target)
	case encX:
		return append(w, op, in.Target)
	}
	panic("rawisa: unreachable")
}

// EncodeAll encodes a code sequence.
func EncodeAll(code []Inst) []uint32 {
	w := make([]uint32, 0, len(code)+4)
	for _, in := range code {
		w = Encode(w, in)
	}
	return w
}

// Decode decodes one instruction starting at w[i], returning the
// instruction and the number of words consumed.
func Decode(w []uint32, i int) (Inst, int, error) {
	if i >= len(w) {
		return Inst{}, 0, fmt.Errorf("rawisa: decode past end (%d/%d)", i, len(w))
	}
	word := w[i]
	op := Op(word >> 26)
	if op >= numOps {
		return Inst{}, 0, fmt.Errorf("rawisa: bad opcode %d at word %d", op, i)
	}
	in := Inst{Op: op}
	switch kindOf(op) {
	case encN:
	case encR:
		in.Rd = uint8(word >> 21 & 31)
		in.Rs = uint8(word >> 16 & 31)
		in.Rt = uint8(word >> 11 & 31)
	case encI:
		in.Rd = uint8(word >> 21 & 31)
		in.Rs = uint8(word >> 16 & 31)
		in.Imm = immValue(op, uint16(word))
	case encB:
		in.Rs = uint8(word >> 21 & 31)
		in.Rt = uint8(word >> 16 & 31)
		in.Imm = int32(int16(uint16(word)))
	case encJ:
		in.Target = word & (1<<26 - 1)
	case encX:
		if i+1 >= len(w) {
			return Inst{}, 0, fmt.Errorf("rawisa: truncated two-word op at %d", i)
		}
		in.Target = w[i+1]
		return in, 2, nil
	}
	return in, 1, nil
}

// immValue reproduces the extension convention the assembler-level Inst
// uses: logical ops and LUI carry zero-extended immediates, arithmetic
// and memory ops sign-extended ones, shifts a 5-bit count.
func immValue(op Op, raw uint16) int32 {
	switch op {
	case ANDI, ORI, XORI, LUI:
		return int32(uint32(raw))
	case SLLI, SRLI, SRAI:
		return int32(raw & 31)
	default:
		return int32(int16(raw))
	}
}

// DecodeAll decodes a full code sequence.
func DecodeAll(w []uint32) ([]Inst, error) {
	var out []Inst
	for i := 0; i < len(w); {
		in, n, err := Decode(w, i)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		i += n
	}
	return out, nil
}
