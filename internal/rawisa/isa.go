// Package rawisa defines the host instruction set of the simulated Raw
// tile processor: a MIPS-like 32-bit RISC ISA extended with a small set
// of dynamic-binary-translation pseudo-operations (guest memory access,
// guest syscall, block exit, and chainable direct-branch sites).
//
// The real Raw tile ISA is MIPS-derived; the DBT pseudo-ops stand in for
// instruction sequences (inline software address translation, trap
// stubs) whose cycle costs the execution engine charges explicitly. See
// DESIGN.md §2 for the substitution rationale.
package rawisa

import "fmt"

// NumRegs is the size of the host register file. Register 0 is
// hardwired to zero, as on MIPS.
const NumRegs = 32

// Conventional register assignments used by the code generator. Guest
// x86 architectural state lives pinned in host registers so no state
// save/restore is needed between translated blocks.
const (
	RegZero  = 0  // hardwired zero
	RegEAX   = 1  // guest EAX
	RegECX   = 2  // guest ECX
	RegEDX   = 3  // guest EDX
	RegEBX   = 4  // guest EBX
	RegESP   = 5  // guest ESP
	RegEBP   = 6  // guest EBP
	RegESI   = 7  // guest ESI
	RegEDI   = 8  // guest EDI
	RegFlags = 9  // guest EFLAGS, packed in x86 bit layout
	RegTmp0  = 10 // first allocatable temporary
	RegTmpN  = 24 // last allocatable temporary (inclusive)
	RegAsm   = 25 // assembler/stub scratch
	RegNext  = 26 // next guest PC at block exit
	RegRT0   = 27 // reserved for runtime
	RegRT1   = 28
	RegRT2   = 29
	RegRT3   = 30
	RegLink  = 31 // link register for JAL
)

// Op is a host opcode.
type Op uint8

// Host opcodes. Arithmetic and branch semantics follow MIPS; the guest
// pseudo-ops are documented individually.
const (
	NOP Op = iota

	// Immediate ALU. Imm is sign-extended for ADDI/SLTI, zero-extended
	// for logical ops, and the shift amount for SLLI/SRLI/SRAI.
	LUI  // rd = imm << 16
	ADDI // rd = rs + simm
	ANDI
	ORI
	XORI
	SLTI  // rd = int32(rs) < simm
	SLTIU // rd = uint32(rs) < uint32(simm)
	SLLI
	SRLI
	SRAI

	// Three-register ALU.
	ADD // rd = rs + rt (no overflow trap; MIPS ADDU)
	SUB
	AND
	OR
	XOR
	NOR
	SLT
	SLTU
	SLL // rd = rt << (rs&31)
	SRL
	SRA

	// Multiply/divide write the HI/LO pair; MFHI/MFLO read it.
	MULT
	MULTU
	DIV
	DIVU
	MFHI
	MFLO

	// Host memory: runtime-private scratch/spill storage on the tile
	// (not guest memory). Address is rs+simm.
	LW
	SW

	// Control flow within a translated block (offsets are in
	// instructions, relative to the next instruction).
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ
	J   // absolute instruction index within the L1 code cache
	JAL // J with link; used by runtime stubs
	JR

	// Guest memory access through the software-MMU path. The guest
	// virtual address is in rs (already computed by preceding real
	// instructions); the execution engine charges the software
	// translation occupancy and consults the tile D-cache, going over
	// the network to the MMU and L2 bank tiles on a miss.
	GLB  // rd = sext8(guest[rs])
	GLBU // rd = zext8(guest[rs])
	GLH  // rd = sext16(guest[rs])
	GLHU // rd = zext16(guest[rs])
	GLW  // rd = guest32(guest[rs])
	GSB  // guest[rs] = rt & 0xff
	GSH  // guest[rs] = rt & 0xffff
	GSW  // guest[rs] = rt

	// SYSC traps to the syscall proxy tile. Guest registers carry the
	// Linux int 0x80 ABI (EAX = number, EBX.. = args).
	SYSC

	// EXITI exits the block with the literal next guest PC in Target.
	// EXITR exits with the next guest PC in rs (indirect branches).
	EXITI
	EXITR

	// CHAIN is a patchable direct-branch site carrying the target guest
	// PC in Target. Unpatched it behaves as EXITI; once the target block
	// is resident in the L1 code cache it is patched to behave as J.
	CHAIN

	// ASSIST executes the single guest instruction at Target through
	// the interpreter fallback on the execution tile — the standard DBT
	// slow path for instructions not worth inlining (wide divides,
	// REP-prefixed string ops). The execution engine charges an
	// occupancy that scales with the work performed and routes the
	// instruction's memory traffic through the normal guest-memory
	// path. ASSIST does not end the block.
	ASSIST

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", LUI: "lui", ADDI: "addi", ANDI: "andi", ORI: "ori",
	XORI: "xori", SLTI: "slti", SLTIU: "sltiu", SLLI: "slli",
	SRLI: "srli", SRAI: "srai",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLT: "slt", SLTU: "sltu", SLL: "sll", SRL: "srl", SRA: "sra",
	MULT: "mult", MULTU: "multu", DIV: "div", DIVU: "divu",
	MFHI: "mfhi", MFLO: "mflo",
	LW: "lw", SW: "sw",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz",
	BLTZ: "bltz", BGEZ: "bgez", J: "j", JAL: "jal", JR: "jr",
	GLB: "glb", GLBU: "glbu", GLH: "glh", GLHU: "glhu", GLW: "glw",
	GSB: "gsb", GSH: "gsh", GSW: "gsw",
	SYSC: "sysc", EXITI: "exiti", EXITR: "exitr", CHAIN: "chain",
	ASSIST: "assist",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is a decoded host instruction. Rd/Rs/Rt are register indices;
// Imm is the sign-carrying immediate (ALU immediates, branch offsets,
// host-memory displacements); Target carries a guest PC for
// EXITI/CHAIN and the absolute code-cache index for J/JAL.
type Inst struct {
	Op     Op
	Rd     uint8
	Rs     uint8
	Rt     uint8
	Imm    int32
	Target uint32
}

// Words returns the encoded size of the instruction in 32-bit words.
// EXITI and CHAIN carry a full 32-bit guest PC and occupy two words
// (opcode word + target word); everything else is one word.
func (i Inst) Words() int {
	switch i.Op {
	case EXITI, CHAIN, ASSIST:
		return 2
	}
	return 1
}

// Bytes returns the encoded size in bytes.
func (i Inst) Bytes() int { return i.Words() * 4 }

// CodeBytes returns the encoded size of a code sequence in bytes; this
// is what counts against code-cache capacity budgets.
func CodeBytes(code []Inst) int {
	n := 0
	for _, in := range code {
		n += in.Bytes()
	}
	return n
}

// IsBlockEnd reports whether the instruction unconditionally leaves the
// block (no fallthrough to the next instruction in the sequence).
func (i Inst) IsBlockEnd() bool {
	switch i.Op {
	case J, JR, EXITI, EXITR, CHAIN:
		return true
	}
	return false
}

// IsGuestLoad reports whether the op reads guest memory.
func (o Op) IsGuestLoad() bool {
	switch o {
	case GLB, GLBU, GLH, GLHU, GLW:
		return true
	}
	return false
}

// IsGuestStore reports whether the op writes guest memory.
func (o Op) IsGuestStore() bool {
	switch o {
	case GSB, GSH, GSW:
		return true
	}
	return false
}

// GuestAccessBytes returns the guest-memory access width of a guest
// load/store op, or 0 for other ops.
func (o Op) GuestAccessBytes() int {
	switch o {
	case GLB, GLBU, GSB:
		return 1
	case GLH, GLHU, GSH:
		return 2
	case GLW, GSW:
		return 4
	}
	return 0
}

func (i Inst) String() string {
	switch i.Op {
	case NOP, SYSC:
		return i.Op.String()
	case LUI:
		return fmt.Sprintf("%s r%d, %#x", i.Op, i.Rd, uint32(i.Imm))
	case ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLLI, SRLI, SRAI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU, SLL, SRL, SRA:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	case MULT, MULTU, DIV, DIVU:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rs, i.Rt)
	case MFHI, MFLO:
		return fmt.Sprintf("%s r%d", i.Op, i.Rd)
	case LW, GLB, GLBU, GLH, GLHU, GLW:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs)
	case SW, GSB, GSH, GSW:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rt, i.Imm, i.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s r%d, r%d, %+d", i.Op, i.Rs, i.Rt, i.Imm)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s r%d, %+d", i.Op, i.Rs, i.Imm)
	case J, JAL:
		return fmt.Sprintf("%s %#x", i.Op, i.Target)
	case JR, EXITR:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs)
	case EXITI, CHAIN, ASSIST:
		return fmt.Sprintf("%s guest:%#x", i.Op, i.Target)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d, %#x", i.Op, i.Rd, i.Rs, i.Rt, i.Imm, i.Target)
}

// Disassemble renders a code sequence one instruction per line.
func Disassemble(code []Inst) string {
	out := ""
	for idx, in := range code {
		out += fmt.Sprintf("%4d: %s\n", idx, in.String())
	}
	return out
}
