package rawisa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: ADD, Rd: 1, Rs: 2, Rt: 3}, 1},
		{Inst{Op: LUI, Rd: 1, Imm: 0x1234}, 1},
		{Inst{Op: EXITI, Target: 0x8048000}, 2},
		{Inst{Op: CHAIN, Target: 0x8048000}, 2},
		{Inst{Op: J, Target: 100}, 1},
	}
	for _, c := range cases {
		if got := c.in.Words(); got != c.want {
			t.Errorf("%v.Words() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	code := []Inst{
		{Op: ADDI, Rd: 1, Rs: 1, Imm: 4},
		{Op: CHAIN, Target: 0x1000},
	}
	if got := CodeBytes(code); got != 12 {
		t.Errorf("CodeBytes = %d, want 12", got)
	}
}

func TestBlockEnd(t *testing.T) {
	ends := []Op{J, JR, EXITI, EXITR, CHAIN}
	for _, op := range ends {
		if !(Inst{Op: op}).IsBlockEnd() {
			t.Errorf("%v.IsBlockEnd() = false", op)
		}
	}
	notEnds := []Op{BEQ, BNE, ADD, GLW, SYSC, NOP}
	for _, op := range notEnds {
		if (Inst{Op: op}).IsBlockEnd() {
			t.Errorf("%v.IsBlockEnd() = true", op)
		}
	}
}

func TestGuestAccessClassification(t *testing.T) {
	loads := []Op{GLB, GLBU, GLH, GLHU, GLW}
	for _, op := range loads {
		if !op.IsGuestLoad() || op.IsGuestStore() {
			t.Errorf("%v misclassified", op)
		}
	}
	stores := []Op{GSB, GSH, GSW}
	for _, op := range stores {
		if !op.IsGuestStore() || op.IsGuestLoad() {
			t.Errorf("%v misclassified", op)
		}
	}
	if GLW.GuestAccessBytes() != 4 || GLH.GuestAccessBytes() != 2 || GSB.GuestAccessBytes() != 1 {
		t.Error("GuestAccessBytes wrong")
	}
	if ADD.GuestAccessBytes() != 0 {
		t.Error("ADD should have no guest access width")
	}
}

// randInst generates a random but encodable instruction.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(r.Intn(int(numOps)))
		in := Inst{Op: op}
		switch kindOf(op) {
		case encN:
		case encR:
			in.Rd = uint8(r.Intn(32))
			in.Rs = uint8(r.Intn(32))
			in.Rt = uint8(r.Intn(32))
		case encI:
			in.Rd = uint8(r.Intn(32))
			in.Rs = uint8(r.Intn(32))
			switch op {
			case ANDI, ORI, XORI, LUI:
				in.Imm = int32(r.Intn(MaxUImm + 1))
			case SLLI, SRLI, SRAI:
				in.Imm = int32(r.Intn(32))
			default:
				in.Imm = int32(r.Intn(MaxUImm+1)) + MinSImm
			}
		case encB:
			in.Rs = uint8(r.Intn(32))
			in.Rt = uint8(r.Intn(32))
			in.Imm = int32(r.Intn(MaxUImm+1)) + MinSImm
		case encJ:
			in.Target = uint32(r.Intn(1 << 26))
		case encX:
			in.Target = r.Uint32()
		}
		return in
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		w := Encode(nil, in)
		got, n, err := Decode(w, 0)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if n != len(w) {
			t.Fatalf("Decode consumed %d words, encoded %d", n, len(w))
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeDecodeSequence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var code []Inst
	for i := 0; i < 500; i++ {
		code = append(code, randInst(r))
	}
	w := EncodeAll(code)
	back, err := DecodeAll(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(code) {
		t.Fatalf("decoded %d insts, want %d", len(back), len(code))
	}
	for i := range code {
		if back[i] != code[i] {
			t.Fatalf("inst %d: got %+v, want %+v", i, back[i], code[i])
		}
	}
}

func TestEncodePanicsOnBadImmediate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted out-of-range immediate")
		}
	}()
	Encode(nil, Inst{Op: ADDI, Rd: 1, Rs: 1, Imm: 1 << 20})
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil, 0); err == nil {
		t.Error("Decode past end should fail")
	}
	// Truncated two-word op.
	w := Encode(nil, Inst{Op: EXITI, Target: 5})
	if _, _, err := Decode(w[:1], 0); err == nil {
		t.Error("truncated EXITI should fail")
	}
	// Bad opcode.
	if _, _, err := Decode([]uint32{uint32(numOps) << 26}, 0); err == nil {
		t.Error("bad opcode should fail")
	}
}

func TestDisassembleMentionsOps(t *testing.T) {
	code := []Inst{
		{Op: ADDI, Rd: 1, Rs: 2, Imm: -5},
		{Op: GLW, Rd: 3, Rs: 4},
		{Op: CHAIN, Target: 0x8048123},
	}
	s := Disassemble(code)
	for _, want := range []string{"addi", "glw", "chain", "0x8048123"} {
		if !strings.Contains(s, want) {
			t.Errorf("Disassemble output missing %q:\n%s", want, s)
		}
	}
}

func TestImmSignConventionProperty(t *testing.T) {
	// Property: for every op, encoding then decoding preserves the
	// canonical immediate convention.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		w := Encode(nil, in)
		got, _, err := Decode(w, 0)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
