package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// HTTP/JSON front end. Admission errors map onto statuses a load
// balancer understands: 429 for a full queue (back off and retry),
// 503 while draining (retry elsewhere), 409 for a duplicate id, 404
// for an unknown job, 400 for a malformed request.

// submitRequest is the POST /api/v1/jobs body.
type submitRequest struct {
	ID       string `json:"id,omitempty"`
	Workload string `json:"workload"`
	Class    string `json:"class,omitempty"`
	// TimeoutMS is the wall-clock budget in milliseconds (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineCycles is the virtual-cycle deadline (0 = none).
	DeadlineCycles uint64 `json:"deadline_cycles,omitempty"`
}

// errorResponse is the structured rejection body.
type errorResponse struct {
	Error string `json:"error"`
	// Reason is a stable machine-readable cause: queue_full, draining,
	// duplicate_id, unknown_job, bad_request.
	Reason string `json:"reason"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, reason := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrQueueFull):
		status, reason = http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrDraining):
		status, reason = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrDuplicateID):
		status, reason = http.StatusConflict, "duplicate_id"
	case errors.Is(err, ErrUnknownJob):
		status, reason = http.StatusNotFound, "unknown_job"
	default:
		status, reason = http.StatusBadRequest, "bad_request"
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Reason: reason})
}

// Handler returns the daemon's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	class, err := ParseClass(req.Class)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, fmt.Errorf("service: negative timeout_ms %d", req.TimeoutMS))
		return
	}
	view, err := s.Submit(Spec{
		ID:             req.ID,
		Workload:       req.Workload,
		Class:          class,
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
		DeadlineCycles: req.DeadlineCycles,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	canceled, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"canceled": canceled})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.reg.WriteText(w)
}
