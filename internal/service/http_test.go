package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// doJSON issues a request against the test server and decodes the
// JSON body into out (if non-nil), returning the status code.
func doJSON(t *testing.T, srv *httptest.Server, method, path, body string, out any) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	f := newStub()
	s := newTestService(t, Config{QueueCap: 1, onBatchStart: func([]string) {}}, f)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Probes start healthy and ready.
	if code := doJSON(t, srv, "GET", "/healthz", "", nil); code != 200 {
		t.Errorf("healthz = %d", code)
	}
	if code := doJSON(t, srv, "GET", "/readyz", "", nil); code != 200 {
		t.Errorf("readyz = %d", code)
	}

	// Submit: accepted with an assigned id.
	var view JobView
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"workload":"164.gzip","class":"high","timeout_ms":60000}`, &view); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if view.ID == "" || view.Class != "high" {
		t.Fatalf("submit view = %+v", view)
	}

	// Structured rejections.
	var er errorResponse
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"workload":"no-such"}`, &er); code != http.StatusBadRequest || er.Reason != "bad_request" {
		t.Errorf("bad workload = %d %+v", code, er)
	}
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"workload":"164.gzip","class":"urgent"}`, &er); code != http.StatusBadRequest {
		t.Errorf("bad class = %d %+v", code, er)
	}
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"id":"`+view.ID+`","workload":"164.gzip"}`, &er); code != http.StatusConflict || er.Reason != "duplicate_id" {
		t.Errorf("duplicate = %d %+v", code, er)
	}
	if code := doJSON(t, srv, "GET", "/api/v1/jobs/ghost", "", &er); code != http.StatusNotFound || er.Reason != "unknown_job" {
		t.Errorf("unknown job = %d %+v", code, er)
	}

	// The first job occupies the slot (stub holds it) — fill the
	// 1-deep queue, then overflow: a structured 429, not growth.
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"id":"queued","workload":"164.gzip"}`, nil); code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"workload":"164.gzip"}`, &er); code != http.StatusTooManyRequests || er.Reason != "queue_full" {
		t.Errorf("overflow = %d %+v, want 429 queue_full", code, er)
	}

	// Cancel the queued job over HTTP.
	var cr map[string]bool
	if code := doJSON(t, srv, "POST", "/api/v1/jobs/queued/cancel", "", &cr); code != 200 || !cr["canceled"] {
		t.Errorf("cancel = %d %+v", code, cr)
	}

	// Release the in-flight batch and wait for the first job.
	f.release <- struct{}{}
	done, err := s.Done(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done

	var got JobView
	if code := doJSON(t, srv, "GET", "/api/v1/jobs/"+view.ID, "", &got); code != 200 {
		t.Fatalf("get = %d", code)
	}
	if got.State != StateFinished.String() || got.Result == nil {
		t.Errorf("job view = %+v, want finished with result", got)
	}
	var list []JobView
	if code := doJSON(t, srv, "GET", "/api/v1/jobs", "", &list); code != 200 || len(list) != 2 {
		t.Errorf("list = %d with %d jobs, want 2", code, len(list))
	}

	// Metrics scrape: Prometheus text with the daemon's families.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"tilevmd_jobs_submitted_total 2",
		`tilevmd_jobs_rejected_total{reason="queue_full"} 1`,
		`tilevmd_jobs_terminal_total{state="finished"} 1`,
		"tilevmd_job_latency_seconds_count",
		"tilevmd_up 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Drain flips readiness and closes admission with a 503.
	go s.Drain(context.Background())
	for !s.Draining() {
		runtime.Gosched()
	}
	if code := doJSON(t, srv, "GET", "/readyz", "", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
	if code := doJSON(t, srv, "POST", "/api/v1/jobs",
		`{"workload":"164.gzip"}`, &er); code != http.StatusServiceUnavailable || er.Reason != "draining" {
		t.Errorf("submit while draining = %d %+v, want 503 draining", code, er)
	}
	if code := doJSON(t, srv, "GET", "/healthz", "", nil); code != 200 {
		t.Errorf("healthz while draining = %d, want 200", code)
	}
}
