package service

import (
	"fmt"
	"time"
)

// Class is a job's admission-priority class. Higher-priority classes
// are batched first and, when the queue is full, a higher-class
// arrival may shed a queued lower-class job rather than be rejected.
// The zero value is ClassNormal, so a zero Spec gets the default
// class; priority ordering lives in rank, not in the constant values.
type Class uint8

const (
	// ClassNormal: the default class.
	ClassNormal Class = iota
	// ClassLow: best-effort work, first to be shed under overload.
	ClassLow
	// ClassHigh: latency-sensitive work; never shed by arrivals.
	ClassHigh
	numClasses
)

// rank orders classes by priority: 0 lowest. Queues are indexed by
// rank so scans run lowest-to-highest priority.
func (c Class) rank() int {
	switch c {
	case ClassLow:
		return 0
	case ClassNormal:
		return 1
	case ClassHigh:
		return 2
	}
	return -1
}

func (c Class) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassNormal:
		return "normal"
	case ClassHigh:
		return "high"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ParseClass maps the wire form ("low", "normal", "high"; "" defaults
// to normal) onto a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "normal":
		return ClassNormal, nil
	case "low":
		return ClassLow, nil
	case "high":
		return ClassHigh, nil
	}
	return ClassNormal, fmt.Errorf("service: unknown class %q (want low, normal, or high)", s)
}

// State is a job's lifecycle state. Every state at StateFinished or
// beyond is terminal.
type State uint8

const (
	// StateQueued: admitted, waiting for a batch slot.
	StateQueued State = iota
	// StateRunning: part of the in-flight fleet batch.
	StateRunning
	// StateFinished: the guest ran to a clean exit.
	StateFinished
	// StateFailed: the guest or the simulator failed (abort, internal
	// error, attempts exhausted); Error carries the cause.
	StateFailed
	// StateCanceled: canceled by the client (or a forced drain).
	StateCanceled
	// StateTimedOut: the wall-clock timeout expired before a result.
	StateTimedOut
	// StateDeadline: the virtual-cycle deadline was exceeded.
	StateDeadline
	// StateShed: evicted from a full queue by a higher-class arrival.
	StateShed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateFinished:
		return "finished"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateTimedOut:
		return "timed-out"
	case StateDeadline:
		return "deadline-exceeded"
	case StateShed:
		return "shed"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateFinished }

// Spec is a job submission.
type Spec struct {
	// ID is the client-chosen job id; empty lets the service assign
	// one. IDs are unique across the daemon's lifetime (including
	// already-retired jobs still in the retention window).
	ID string
	// Workload names a built-in workload profile (workload.Names).
	Workload string
	// Class is the admission class.
	Class Class
	// Timeout, when nonzero, is the wall-clock budget measured from
	// admission; a job without a result when it expires reports
	// StateTimedOut. It layers on — and is independent of — the
	// virtual-cycle deadline below.
	Timeout time.Duration
	// DeadlineCycles, when nonzero, is a virtual-cycle deadline
	// enforced inside the simulation (core's DeadlineError path).
	DeadlineCycles uint64
}

// JobResult is the guest-visible outcome of a finished job.
// HostInsts counts instructions retired on the exec tile — the same
// goodput numerator the fleet scheduler uses (core's GoodputInsts).
type JobResult struct {
	Cycles    uint64 `json:"cycles"`
	ExitCode  int32  `json:"exit_code"`
	HostInsts uint64 `json:"host_insts"`
}

// job is the service's record of one submission. All fields past the
// immutable spec are guarded by the owning Service's mutex.
type job struct {
	id       string
	workload string
	class    Class
	timeout  time.Duration
	deadline uint64

	state     State
	attempts  int
	errMsg    string
	result    *JobResult
	cancelReq bool

	submitted time.Time
	expiry    time.Time // zero when timeout is zero
	started   time.Time // first admission to a batch
	finished  time.Time // terminal transition

	// done is closed exactly once, at the terminal transition.
	done chan struct{}
}

// JobView is the wire snapshot of a job.
type JobView struct {
	ID          string     `json:"id"`
	Workload    string     `json:"workload"`
	Class       string     `json:"class"`
	State       string     `json:"state"`
	Attempts    int        `json:"attempts"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// view snapshots the job; the caller holds the service mutex.
func (j *job) view() JobView {
	v := JobView{
		ID:          j.id,
		Workload:    j.workload,
		Class:       j.class.String(),
		State:       j.state.String(),
		Attempts:    j.attempts,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}
