package service

import (
	"time"

	"tilevm/internal/metrics"
)

// svcMetrics is the daemon's Prometheus family set. Counters are
// updated under the service mutex (or from atomic ops); the
// callback-backed gauges take the mutex at scrape time.
type svcMetrics struct {
	reg *metrics.Registry

	submitted *metrics.Counter
	rejected  *metrics.CounterVec // reason: queue_full | draining
	shed      *metrics.CounterVec // class of the shed victim
	terminal  *metrics.CounterVec // terminal state name
	batches   *metrics.Counter
	internal  *metrics.Counter
	latency   *metrics.Histogram
	hostInsts *metrics.Counter
	sloMet    *metrics.Counter
	sloTotal  *metrics.Counter
}

func (s *Service) initMetrics() {
	r := metrics.NewRegistry()
	m := &s.m
	m.reg = r
	m.submitted = r.NewCounter("tilevmd_jobs_submitted_total",
		"Jobs accepted into the admission queue.")
	m.rejected = r.NewCounterVec("tilevmd_jobs_rejected_total",
		"Submissions bounced at admission, by reason.", "reason")
	m.shed = r.NewCounterVec("tilevmd_jobs_shed_total",
		"Queued jobs evicted by higher-class arrivals, by victim class.", "class")
	m.terminal = r.NewCounterVec("tilevmd_jobs_terminal_total",
		"Jobs reaching a terminal state, by state.", "state")
	m.batches = r.NewCounter("tilevmd_batches_total",
		"Fleet batches executed.")
	m.internal = r.NewCounter("tilevmd_batch_internal_errors_total",
		"Batches ending in a contained panic (InternalError).")
	m.latency = r.NewHistogram("tilevmd_job_latency_seconds",
		"Submit-to-terminal latency.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
			0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
	m.hostInsts = r.NewCounter("tilevmd_host_insts_total",
		"Host instructions retired by finished jobs (goodput numerator, matching the fleet's GoodputInsts).")
	m.sloMet = r.NewCounter("tilevmd_slo_met_total",
		"Deadline- or timeout-bearing jobs that finished cleanly.")
	m.sloTotal = r.NewCounter("tilevmd_slo_eligible_total",
		"Jobs submitted with a timeout or virtual deadline.")
	r.NewGaugeFunc("tilevmd_queue_depth",
		"Jobs waiting for a batch slot.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	r.NewGaugeFunc("tilevmd_jobs_running",
		"Jobs in the in-flight batch.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.running))
		})
	r.NewGaugeFunc("tilevmd_slo_attainment",
		"Fraction of SLO-eligible terminal jobs that finished cleanly (1 when none).",
		func() float64 {
			total := m.sloTotal.Value()
			if total == 0 {
				return 1
			}
			return float64(m.sloMet.Value()) / float64(total)
		})
	r.NewGaugeFunc("tilevmd_goodput_insts_per_second",
		"Host instructions retired per wall-clock second since start.",
		func() float64 {
			up := time.Since(s.started).Seconds()
			if up <= 0 {
				return 0
			}
			return float64(m.hostInsts.Value()) / up
		})
	r.NewGaugeFunc("tilevmd_up",
		"1 while the daemon is serving.", func() float64 { return 1 })
}
