// Package service is the long-lived fleet daemon behind cmd/tilevmd:
// a bounded, priority-classed admission queue in front of the
// deterministic fleet engine (core.RunFleet), with overload shedding,
// wall-clock timeouts, cancellation, panic containment, and graceful
// drain. The simulation itself stays the same deterministic engine —
// the service only decides which guests run when, and converts every
// way a batch can end (finish, deadline, timeout, cancel, panic) into
// a structured terminal job state. Overload never grows memory: the
// queue is capped, full-queue arrivals are shed or rejected with a
// structured error, and terminal jobs age out of a capped retention
// window.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tilevm/internal/core"
	"tilevm/internal/guest"
	"tilevm/internal/metrics"
	"tilevm/internal/workload"
)

// Structured admission errors; the HTTP layer maps each to a status.
var (
	// ErrQueueFull rejects an arrival that found the queue at capacity
	// with nothing lower-class to shed (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects arrivals during graceful drain (HTTP 503).
	ErrDraining = errors.New("service: draining, not admitting new jobs")
	// ErrDuplicateID rejects a submission reusing a known id (409).
	ErrDuplicateID = errors.New("service: duplicate job id")
	// ErrUnknownJob reports a lookup/cancel of an id the daemon does
	// not know — never submitted, or aged out of retention (404).
	ErrUnknownJob = errors.New("service: unknown job")
)

// Config parameterizes a Service.
type Config struct {
	// Width, Height are the shared-fabric dimensions (default 8×8).
	Width, Height int
	// QueueCap bounds the admission queue (default 64). The cap is the
	// daemon's overload backstop: beyond it, arrivals shed or bounce.
	QueueCap int
	// Retain bounds how many terminal jobs stay queryable (default
	// 1024); older terminal jobs are forgotten oldest-first.
	Retain int
	// MaxJobAttempts caps how many batches one job may be admitted to
	// before it fails (default 3) — the backstop against a job whose
	// batch keeps dying for reasons not attributed to it.
	MaxJobAttempts int
	// Lend enables cross-VM slave lending inside batches.
	Lend bool
	// Planner carves each batch's slots with the cost-model placement
	// planner (core.FleetConfig.Planner): slot shapes grow when a batch
	// undersubscribes the fabric, and each slot's slave/bank split
	// follows its job's workload profile.
	Planner bool
	// Elastic enables whole-tile elastic morphing inside batches and
	// switches the batcher to oversubscribed batches (batchCap): when
	// the admission queue backs up, a batch carries up to twice the slot
	// count, so slots whose guests finish early donate their tiles to
	// the stragglers instead of idling, and reclaim them when the next
	// queued guest is admitted. Mutually exclusive with Lend.
	Elastic bool
	// SimWorkers is the per-batch simulation worker count (see
	// core.Config.SimWorkers).
	SimWorkers int
	// MaxCycles is the per-batch virtual-cycle watchdog (0 = core
	// fleet-test default of 4e9).
	MaxCycles uint64

	// runFleet substitutes the batch executor in tests (nil = the real
	// core.RunFleet). The scheduler's recover boundary wraps it, so a
	// panicking substitute exercises the daemon's containment path.
	runFleet func([]*guest.Image, core.Config, core.FleetConfig) (*core.FleetResult, error)
	// onBatchStart, when set, is called with the batch's job ids after
	// they turn StateRunning and before the batch executes — a
	// deterministic hook for cancel-while-running tests.
	onBatchStart func(ids []string)
}

func (c *Config) fillDefaults() {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Retain == 0 {
		c.Retain = 1024
	}
	if c.MaxJobAttempts == 0 {
		c.MaxJobAttempts = 3
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 4_000_000_000
	}
}

// Service is the daemon engine: an admission queue, one scheduler
// goroutine feeding fleet batches, and a job store.
type Service struct {
	cfg   Config
	slots int

	mu   sync.Mutex
	cond *sync.Cond // signaled on queue growth and drain
	// queues is indexed by Class.rank(): 0 is the lowest priority.
	queues [numClasses][]*job
	queued int
	jobs   map[string]*job
	// retired is the FIFO of terminal job ids still retained; its
	// length is capped at cfg.Retain.
	retired []string
	nextID  uint64

	// In-flight batch state, for cancel-while-running and forced
	// drain: the handle interrupts the running simulation.
	running map[string]*job
	curIntr *core.InterruptHandle

	draining bool
	drained  chan struct{}

	imgs map[string]*guest.Image // workload name → built image

	m       svcMetrics
	started time.Time
}

// New validates the configuration, carves the fabric (to learn the
// batch width), and starts the scheduler goroutine. The caller must
// eventually call Drain to stop it.
func New(cfg Config) (*Service, error) {
	cfg.fillDefaults()
	if cfg.Elastic && cfg.Lend {
		return nil, fmt.Errorf("service: Elastic and Lend are mutually exclusive (both move slaves between VMs)")
	}
	base := core.DefaultConfig()
	base.Params.Width, base.Params.Height = cfg.Width, cfg.Height
	slots, err := core.FleetSlots(base.Params)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		slots:   slots,
		jobs:    map[string]*job{},
		running: map[string]*job{},
		drained: make(chan struct{}),
		imgs:    map[string]*guest.Image{},
		started: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.initMetrics()
	go s.schedule()
	return s, nil
}

// Slots reports the batch width (VM slots carved from the fabric).
func (s *Service) Slots() int { return s.slots }

// Metrics exposes the Prometheus registry (for /metrics).
func (s *Service) Metrics() *metrics.Registry { return s.m.reg }

// Submit admits a job. On a full queue a strictly lower-class queued
// job is shed to make room; with nothing sheddable the arrival is
// rejected with ErrQueueFull. The returned view snapshots the job at
// admission.
func (s *Service) Submit(sp Spec) (JobView, error) {
	if _, ok := workload.ByName(sp.Workload); !ok {
		return JobView{}, fmt.Errorf("service: unknown workload %q", sp.Workload)
	}
	if sp.Class >= numClasses {
		return JobView{}, fmt.Errorf("service: invalid class %d", sp.Class)
	}
	if sp.Timeout < 0 {
		return JobView{}, fmt.Errorf("service: negative timeout %v", sp.Timeout)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.rejected.Inc("draining")
		return JobView{}, ErrDraining
	}
	id := sp.ID
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("job-%d", s.nextID)
			if _, taken := s.jobs[id]; !taken {
				break
			}
		}
	} else if _, dup := s.jobs[id]; dup {
		return JobView{}, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	if s.queued >= s.cfg.QueueCap && !s.shedForLocked(sp.Class) {
		s.m.rejected.Inc("queue_full")
		return JobView{}, fmt.Errorf("%w (cap %d)", ErrQueueFull, s.cfg.QueueCap)
	}
	j := &job{
		id:        id,
		workload:  sp.Workload,
		class:     sp.Class,
		timeout:   sp.Timeout,
		deadline:  sp.DeadlineCycles,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if j.timeout > 0 {
		j.expiry = j.submitted.Add(j.timeout)
	}
	s.jobs[id] = j
	s.queues[j.class.rank()] = append(s.queues[j.class.rank()], j)
	s.queued++
	s.m.submitted.Inc()
	s.cond.Broadcast()
	return j.view(), nil
}

// shedForLocked makes room for an arrival of class c by evicting the
// newest queued job of the lowest class strictly below c. Reports
// whether a victim was found.
func (s *Service) shedForLocked(c Class) bool {
	for r := 0; r < c.rank(); r++ {
		q := s.queues[r]
		if len(q) == 0 {
			continue
		}
		v := q[len(q)-1]
		s.queues[r] = q[:len(q)-1]
		s.queued--
		s.m.shed.Inc(v.class.String())
		s.finishLocked(v, StateShed,
			fmt.Sprintf("shed at capacity %d by a %s-class arrival", s.cfg.QueueCap, c))
		return true
	}
	return false
}

// Get returns a job snapshot.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.view(), nil
}

// List snapshots every retained job, ordered by submission time.
func (s *Service) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	sortViews(views)
	return views
}

// Done returns a channel closed when the job reaches a terminal
// state (already closed for terminal jobs).
func (s *Service) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.done, nil
}

// Cancel stops a job: a queued job turns StateCanceled immediately; a
// running job has its batch interrupted and turns StateCanceled when
// the batch unwinds. Returns false (with nil error) if the job was
// already terminal.
func (s *Service) Cancel(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch {
	case j.state == StateQueued:
		s.removeQueuedLocked(j)
		s.finishLocked(j, StateCanceled, "canceled before admission")
		return true, nil
	case j.state == StateRunning:
		j.cancelReq = true
		s.curIntr.Interrupt() // nil-safe
		return true, nil
	}
	return false, nil
}

// removeQueuedLocked unlinks a StateQueued job from its class queue.
func (s *Service) removeQueuedLocked(j *job) {
	r := j.class.rank()
	q := s.queues[r]
	for i, cand := range q {
		if cand == j {
			s.queues[r] = append(q[:i:i], q[i+1:]...)
			s.queued--
			return
		}
	}
}

// Drain stops admission and waits until every already-admitted job is
// terminal and the scheduler has exited. If ctx expires first, queued
// jobs are canceled, the in-flight batch is interrupted, and Drain
// returns ctx.Err once the scheduler unwinds.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
	}
	// Forced drain: abandon the queue, interrupt the batch.
	s.mu.Lock()
	for r := range s.queues {
		for _, j := range s.queues[r] {
			s.finishLocked(j, StateCanceled, "canceled by drain deadline")
		}
		s.queues[r] = nil
	}
	s.queued = 0
	for _, j := range s.running {
		j.cancelReq = true
	}
	s.curIntr.Interrupt() // nil-safe
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.drained
	return ctx.Err()
}

// Draining reports whether the service has stopped admitting
// (readiness probe).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// finishLocked moves a job to a terminal state exactly once and
// updates the terminal metrics and the retention window.
func (s *Service) finishLocked(j *job, st State, msg string) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.errMsg = msg
	j.finished = time.Now()
	delete(s.running, j.id)
	close(j.done)
	s.m.terminal.Inc(st.String())
	s.m.latency.Observe(j.finished.Sub(j.submitted).Seconds())
	if j.result != nil {
		s.m.hostInsts.Add(j.result.HostInsts)
	}
	if j.timeout > 0 || j.deadline > 0 {
		s.m.sloTotal.Inc()
		if st == StateFinished {
			s.m.sloMet.Inc()
		}
	}
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.cfg.Retain {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// schedule is the scheduler goroutine: pop a batch, run it, repeat,
// until drained.
func (s *Service) schedule() {
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queued == 0 && s.draining {
			close(s.drained)
			s.mu.Unlock()
			return
		}
		batch := s.popBatchLocked()
		if len(batch) == 0 {
			// Every queued job expired while waiting; loop for more.
			s.mu.Unlock()
			continue
		}
		ids := make([]string, len(batch))
		now := time.Now()
		for i, j := range batch {
			j.state = StateRunning
			j.attempts++
			if j.started.IsZero() {
				j.started = now
			}
			s.running[j.id] = j
			ids[i] = j.id
		}
		intr := core.NewInterruptHandle()
		s.curIntr = intr
		s.mu.Unlock()

		if s.cfg.onBatchStart != nil {
			s.cfg.onBatchStart(ids)
		}
		res, err := s.runBatch(batch, intr)

		s.mu.Lock()
		s.curIntr = nil
		s.settleBatchLocked(batch, res, err)
		s.mu.Unlock()
	}
}

// batchCap is the elastic batching policy hook: how many jobs one
// batch may carry. The baseline is one job per carved slot. With
// Elastic on, a backed-up queue doubles the cap — the surplus jobs
// queue inside the fleet run, where slots whose guests finish early
// grow the stragglers by donating tiles and shrink back to admit the
// queued surplus, instead of the fabric idling between batches.
func (s *Service) batchCap() int {
	if s.cfg.Elastic && s.queued > s.slots {
		return 2 * s.slots
	}
	return s.slots
}

// popBatchLocked removes up to one batch of runnable jobs from the
// queues, highest class first, FIFO within a class. Jobs whose
// wall-clock budget expired while queued turn StateTimedOut here,
// without costing a slot.
func (s *Service) popBatchLocked() []*job {
	now := time.Now()
	limit := s.batchCap()
	var batch []*job
	for r := int(numClasses) - 1; r >= 0; r-- {
		q := s.queues[r]
		kept := q[:0]
		for _, j := range q {
			switch {
			case !j.expiry.IsZero() && now.After(j.expiry):
				s.queued--
				s.finishLocked(j, StateTimedOut,
					fmt.Sprintf("wall-clock timeout %v expired while queued", j.timeout))
			case len(batch) < limit:
				s.queued--
				batch = append(batch, j)
			default:
				kept = append(kept, j)
			}
		}
		// Zero the moved-from tail so retired jobs don't linger in the
		// backing array.
		for i := len(kept); i < len(q); i++ {
			q[i] = nil
		}
		s.queues[r] = kept
	}
	return batch
}

// runBatch executes one fleet batch outside the service lock. The
// recover boundary is the daemon's last line: a panic anywhere in the
// batch path — engine, fleet scheduler, a substitute executor —
// becomes an error settled like any other batch failure, never a
// daemon crash. (Tile-kernel panics are already contained a layer
// down, inside the simulator.)
func (s *Service) runBatch(batch []*job, intr *core.InterruptHandle) (res *core.FleetResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: batch panicked: %v", r)
		}
	}()

	imgs := make([]*guest.Image, len(batch))
	var deadlines []uint64
	for i, j := range batch {
		img, ok := s.imgs[j.workload]
		if !ok {
			p, found := workload.ByName(j.workload)
			if !found {
				return nil, fmt.Errorf("service: unknown workload %q", j.workload)
			}
			img = p.Build()
			s.imgs[j.workload] = img
		}
		imgs[i] = img
		if j.deadline > 0 {
			if deadlines == nil {
				deadlines = make([]uint64, len(batch))
			}
			deadlines[i] = j.deadline
		}
	}

	cfg := core.DefaultConfig()
	cfg.Params.Width, cfg.Params.Height = s.cfg.Width, s.cfg.Height
	cfg.MaxCycles = s.cfg.MaxCycles
	cfg.SimWorkers = s.cfg.SimWorkers
	cfg.Interrupt = intr
	fc := core.FleetConfig{
		Lend: s.cfg.Lend, Deadlines: deadlines,
		Planner: s.cfg.Planner, Elastic: s.cfg.Elastic,
	}
	if s.cfg.Planner {
		fc.Profiles = make([]core.GuestProfile, len(batch))
		for i, j := range batch {
			if p, ok := workload.ByName(j.workload); ok {
				fc.Profiles[i] = core.ProfileFromWorkload(p)
			}
		}
	}

	// One wall-clock timer per batch, armed for the earliest expiry.
	// When it fires, the whole batch is interrupted; settle then times
	// out the expired jobs and requeues the rest.
	var earliest time.Time
	for _, j := range batch {
		if !j.expiry.IsZero() && (earliest.IsZero() || j.expiry.Before(earliest)) {
			earliest = j.expiry
		}
	}
	if !earliest.IsZero() {
		t := time.AfterFunc(time.Until(earliest), intr.Interrupt)
		defer t.Stop()
	}

	run := s.cfg.runFleet
	if run == nil {
		run = core.RunFleet
	}
	s.m.batches.Inc()
	return run(imgs, cfg, fc)
}

// settleBatchLocked converts a finished batch into terminal job
// states and requeues the interrupted survivors.
func (s *Service) settleBatchLocked(batch []*job, res *core.FleetResult, err error) {
	now := time.Now()
	var ie *core.InternalError
	if errors.As(err, &ie) {
		s.m.internal.Inc()
	}
	for i, j := range batch {
		var g *core.GuestResult
		if res != nil && i < len(res.Guests) {
			g = res.Guests[i]
		}
		status := core.GuestPending
		if g != nil {
			status = g.Status
			if g.Result != nil {
				j.result = &JobResult{
					Cycles:    g.Result.Cycles,
					ExitCode:  g.Result.ExitCode,
					HostInsts: g.Result.M.HostInsts,
				}
			}
		}
		switch {
		case j.cancelReq:
			s.finishLocked(j, StateCanceled, "canceled while running")
		case !j.expiry.IsZero() && now.After(j.expiry):
			s.finishLocked(j, StateTimedOut,
				fmt.Sprintf("wall-clock timeout %v expired", j.timeout))
		case status == core.GuestFinished:
			s.finishLocked(j, StateFinished, "")
		case status == core.GuestDeadlineExceeded:
			s.finishLocked(j, StateDeadline, errString(g.Err))
		case status == core.GuestAborted:
			s.finishLocked(j, StateFailed, "fleet gave up: "+errString(g.Err))
		case status == core.GuestInternalError:
			s.finishLocked(j, StateFailed, "internal error: "+errString(g.Err))
		case ie != nil && ie.Guest == i:
			// Attributed panic whose result snapshot was lost.
			s.finishLocked(j, StateFailed, "internal error: "+ie.Error())
		case j.attempts >= s.cfg.MaxJobAttempts:
			cause := "batch ended before the guest finished"
			if err != nil && !core.Interrupted(err) {
				cause = errString(err)
			}
			s.finishLocked(j, StateFailed,
				fmt.Sprintf("gave up after %d attempts: %s", j.attempts, cause))
		default:
			// Collateral of an interrupt, panic, or watchdog aimed at
			// another job: requeue at the front of its class.
			j.state = StateQueued
			j.result = nil
			delete(s.running, j.id)
			r := j.class.rank()
			s.queues[r] = append([]*job{j}, s.queues[r]...)
			s.queued++
		}
	}
}

func errString(err error) string {
	if err == nil {
		return "no error recorded"
	}
	return err.Error()
}

// sortViews orders snapshots by submission time, then id.
func sortViews(views []JobView) {
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && viewLess(views[k], views[k-1]); k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
}

func viewLess(a, b JobView) bool {
	if !a.SubmittedAt.Equal(b.SubmittedAt) {
		return a.SubmittedAt.Before(b.SubmittedAt)
	}
	return a.ID < b.ID
}
