package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"tilevm/internal/core"
	"tilevm/internal/guest"
)

// The battery below is deterministic by construction: tests block on
// per-job Done channels and explicit stub-release channels, never on
// real-time sleeps. The stub executor stands in for core.RunFleet
// where the scenario is about queue mechanics; scenarios about the
// engine boundary (cancel mid-simulation, panic containment inside
// the simulator) run the real engine on a small fabric.

// stubFleet is a controllable batch executor. quit unblocks a held
// batch at test teardown so cleanup's forced drain can finish.
type stubFleet struct {
	release chan struct{} // one receive per batch before returning
	quit    chan struct{}
	panics  bool
}

func newStub() *stubFleet {
	return &stubFleet{release: make(chan struct{}, 8), quit: make(chan struct{})}
}

func (f *stubFleet) run(imgs []*guest.Image, _ core.Config, _ core.FleetConfig) (*core.FleetResult, error) {
	if f.release != nil {
		select {
		case <-f.release:
		case <-f.quit:
		}
	}
	if f.panics {
		panic("stub executor exploded")
	}
	res := &core.FleetResult{Guests: make([]*core.GuestResult, len(imgs)), Slots: len(imgs)}
	for i := range res.Guests {
		res.Guests[i] = &core.GuestResult{
			Status: core.GuestFinished,
			Result: &core.Result{Cycles: 100},
		}
	}
	return res, nil
}

// newTestService builds a one-slot service (4×2 fabric) so admission
// order is fully observable. A non-nil stub is released at teardown
// before the forced drain, so a batch held by the stub can't wedge
// cleanup.
func newTestService(t *testing.T, cfg Config, f *stubFleet) *Service {
	t.Helper()
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 4, 2
	}
	if f != nil {
		cfg.runFleet = f.run
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if f != nil && f.quit != nil {
			close(f.quit)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // forced drain: tests that care drained cleanly already
		s.Drain(ctx)
	})
	return s
}

func await(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	done, err := s.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state", id)
	}
	v, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustSubmit(t *testing.T, s *Service, sp Spec) JobView {
	t.Helper()
	v, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("submit %+v: %v", sp, err)
	}
	return v
}

func TestServiceRunsJobsEndToEnd(t *testing.T) {
	s := newTestService(t, Config{Width: 4, Height: 4}, nil) // 2 slots
	ids := []string{}
	for i := 0; i < 3; i++ {
		v := mustSubmit(t, s, Spec{Workload: "164.gzip"})
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		v := await(t, s, id)
		if v.State != StateFinished.String() {
			t.Fatalf("job %s state %s (%s), want finished", id, v.State, v.Error)
		}
		if v.Result == nil || v.Result.Cycles == 0 {
			t.Errorf("job %s finished with no result", id)
		}
		if v.Attempts != 1 {
			t.Errorf("job %s took %d attempts, want 1", id, v.Attempts)
		}
	}
	if got := s.List(); len(got) != 3 {
		t.Errorf("List returned %d jobs, want 3", len(got))
	}
	text := s.Metrics().Text()
	for _, want := range []string{
		"tilevmd_jobs_submitted_total 3",
		`tilevmd_jobs_terminal_total{state="finished"} 3`,
		"tilevmd_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestDuplicateJobID(t *testing.T) {
	f := newStub()
	s := newTestService(t, Config{}, f)
	mustSubmit(t, s, Spec{ID: "twin", Workload: "164.gzip"})
	if _, err := s.Submit(Spec{ID: "twin", Workload: "164.gzip"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate submit err = %v, want ErrDuplicateID", err)
	}
	f.release <- struct{}{}
	if v := await(t, s, "twin"); v.State != StateFinished.String() {
		t.Errorf("original job state %s, want finished", v.State)
	}
	// A terminal job's id stays taken while retained.
	if _, err := s.Submit(Spec{ID: "twin", Workload: "164.gzip"}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("resubmit of retained id err = %v, want ErrDuplicateID", err)
	}
}

func TestCancelBeforeAdmit(t *testing.T) {
	started := make(chan []string, 8)
	f := newStub()
	s := newTestService(t, Config{
		onBatchStart: func(ids []string) { started <- ids }}, f)

	blocker := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	<-started // blocker occupies the only slot; the stub holds it there
	victim := mustSubmit(t, s, Spec{ID: "victim", Workload: "164.gzip"})

	if ok, err := s.Cancel(victim.ID); err != nil || !ok {
		t.Fatalf("cancel queued job = %v, %v", ok, err)
	}
	v := await(t, s, victim.ID)
	if v.State != StateCanceled.String() || v.Attempts != 0 {
		t.Fatalf("victim state %s after %d attempts, want canceled after 0", v.State, v.Attempts)
	}
	// Canceling a terminal job is a no-op, not an error.
	if ok, err := s.Cancel(victim.ID); err != nil || ok {
		t.Errorf("re-cancel = %v, %v; want false, nil", ok, err)
	}

	f.release <- struct{}{}
	await(t, s, blocker.ID)
	f.release <- struct{}{} // in case anything else was batched (must not be)
	select {
	case ids := <-started:
		t.Fatalf("canceled job still reached a batch: %v", ids)
	default:
	}
}

func TestCancelWhileRunning(t *testing.T) {
	// Real engine: the cancel lands while (or just before) the
	// simulation runs, and must unwind it via the interrupt path.
	var s *Service
	s = newTestService(t, Config{onBatchStart: func(ids []string) {
		for _, id := range ids {
			if id == "victim" {
				if ok, err := s.Cancel(id); err != nil || !ok {
					t.Errorf("cancel running job = %v, %v", ok, err)
				}
			}
		}
	}}, nil)
	mustSubmit(t, s, Spec{ID: "victim", Workload: "164.gzip"})
	v := await(t, s, "victim")
	if v.State != StateCanceled.String() {
		t.Fatalf("state %s (%s), want canceled", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "canceled while running") {
		t.Errorf("error %q does not attribute the running cancel", v.Error)
	}
}

func TestCancelCollateralRequeues(t *testing.T) {
	// Two jobs share a batch on a two-slot fabric; canceling one
	// interrupts the whole simulation, and the innocent survivor must
	// be requeued and finish on its second attempt.
	var s *Service
	canceled := false
	s = newTestService(t, Config{Width: 4, Height: 4, onBatchStart: func(ids []string) {
		if !canceled && len(ids) == 2 {
			canceled = true
			s.Cancel("victim")
		}
	}}, nil)
	mustSubmit(t, s, Spec{ID: "victim", Workload: "164.gzip"})
	mustSubmit(t, s, Spec{ID: "survivor", Workload: "181.mcf"})
	if v := await(t, s, "victim"); v.State != StateCanceled.String() {
		t.Fatalf("victim state %s, want canceled", v.State)
	}
	v := await(t, s, "survivor")
	if v.State != StateFinished.String() {
		t.Fatalf("survivor state %s (%s), want finished", v.State, v.Error)
	}
	if v.Attempts < 2 {
		t.Errorf("survivor finished in %d attempts, want ≥2 (requeued)", v.Attempts)
	}
}

func TestShedAtCapacity(t *testing.T) {
	started := make(chan []string, 8)
	f := newStub()
	s := newTestService(t, Config{QueueCap: 2,
		onBatchStart: func(ids []string) { started <- ids }}, f)

	blocker := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	<-started
	mustSubmit(t, s, Spec{ID: "low-old", Workload: "164.gzip", Class: ClassLow})
	mustSubmit(t, s, Spec{ID: "low-new", Workload: "164.gzip", Class: ClassLow})

	// Queue full: a high-class arrival sheds the newest low-class job.
	mustSubmit(t, s, Spec{ID: "high", Workload: "164.gzip", Class: ClassHigh})
	if v := await(t, s, "low-new"); v.State != StateShed.String() {
		t.Fatalf("low-new state %s, want shed", v.State)
	}
	// Full again: a normal arrival sheds the remaining low-class job.
	mustSubmit(t, s, Spec{ID: "normal", Workload: "164.gzip"})
	if v := await(t, s, "low-old"); v.State != StateShed.String() {
		t.Fatalf("low-old state %s, want shed", v.State)
	}
	// Full with nothing lower-class left: normal bounces off normal…
	if _, err := s.Submit(Spec{Workload: "164.gzip"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit at capacity err = %v, want ErrQueueFull", err)
	}
	// …and low bounces too (shedding never preempts an equal class).
	if _, err := s.Submit(Spec{Workload: "164.gzip", Class: ClassLow}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("low submit at capacity err = %v, want ErrQueueFull", err)
	}

	// Drain the backlog: high runs before normal despite arriving later.
	for i := 0; i < 3; i++ {
		f.release <- struct{}{}
	}
	await(t, s, blocker.ID)
	if v := await(t, s, "high"); v.State != StateFinished.String() {
		t.Fatalf("high state %s, want finished", v.State)
	}
	await(t, s, "normal")
	order := [][]string{<-started, <-started}
	if order[0][0] != "high" || order[1][0] != "normal" {
		t.Errorf("batch order %v, want high before normal", order)
	}

	text := s.Metrics().Text()
	for _, want := range []string{
		`tilevmd_jobs_shed_total{class="low"} 2`,
		`tilevmd_jobs_rejected_total{reason="queue_full"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestDrainWithQueuedJobs(t *testing.T) {
	started := make(chan []string, 8)
	f := newStub()
	s := newTestService(t, Config{
		onBatchStart: func(ids []string) { started <- ids }}, f)

	first := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	<-started
	second := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	third := mustSubmit(t, s, Spec{Workload: "164.gzip"})

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		runtime.Gosched()
	}
	// Admission is closed immediately…
	if _, err := s.Submit(Spec{Workload: "164.gzip"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining err = %v, want ErrDraining", err)
	}
	// …but already-admitted jobs still run to completion.
	for i := 0; i < 3; i++ {
		f.release <- struct{}{}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	for _, id := range []string{first.ID, second.ID, third.ID} {
		if v := await(t, s, id); v.State != StateFinished.String() {
			t.Errorf("job %s state %s after drain, want finished", id, v.State)
		}
	}
	// The scheduler has exited; a second drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain returned %v", err)
	}
}

func TestBatchPanicBecomesJobFailure(t *testing.T) {
	// A panicking batch executor must never unwind the daemon: the
	// recover boundary converts it into attempts, then a structured
	// failure.
	f := &stubFleet{panics: true}
	s := newTestService(t, Config{MaxJobAttempts: 2}, f)
	v := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	got := await(t, s, v.ID)
	if got.State != StateFailed.String() {
		t.Fatalf("state %s, want failed", got.State)
	}
	if got.Attempts != 2 {
		t.Errorf("gave up after %d attempts, want 2", got.Attempts)
	}
	if !strings.Contains(got.Error, "stub executor exploded") {
		t.Errorf("error %q does not carry the panic value", got.Error)
	}
	// The scheduler survived: the next job still runs.
	f.panics, f.release = false, nil
	next := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	if v := await(t, s, next.ID); v.State != StateFinished.String() {
		t.Errorf("post-panic job state %s, want finished", v.State)
	}
}

func TestSimPanicAttributedToVictim(t *testing.T) {
	// Full-stack containment: the panic fires inside a tile kernel of
	// the real simulator (Config.PanicAtDispatch); the victim fails
	// with the internal error, and the daemon keeps serving.
	s := newTestService(t, Config{Width: 4, Height: 4,
		runFleet: func(imgs []*guest.Image, cfg core.Config, fc core.FleetConfig) (*core.FleetResult, error) {
			cfg.PanicAtDispatch = 50
			return core.RunFleet(imgs, cfg, fc)
		}}, nil)
	a := mustSubmit(t, s, Spec{ID: "a", Workload: "164.gzip"})
	b := mustSubmit(t, s, Spec{ID: "b", Workload: "181.mcf"})
	va, vb := await(t, s, a.ID), await(t, s, b.ID)
	failed := 0
	for _, v := range []JobView{va, vb} {
		if v.State != StateFailed.String() {
			t.Fatalf("job %s state %s (%s), want failed", v.ID, v.State, v.Error)
		}
		if strings.Contains(v.Error, "internal error") {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("%d/2 failures carry internal-error attribution", failed)
	}
	if got := s.Metrics(); !strings.Contains(got.Text(), "tilevmd_batch_internal_errors_total") {
		t.Error("internal-error counter missing from metrics")
	}
}

func TestWallTimeoutWhileQueued(t *testing.T) {
	f := newStub()
	started := make(chan []string, 8)
	s := newTestService(t, Config{
		onBatchStart: func(ids []string) { started <- ids }}, f)
	blocker := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	<-started
	// The job's budget is already spent when it is submitted, so it
	// must time out at pop time without ever costing a batch slot.
	v := mustSubmit(t, s, Spec{ID: "late", Workload: "164.gzip", Timeout: time.Nanosecond})
	f.release <- struct{}{}
	got := await(t, s, v.ID)
	if got.State != StateTimedOut.String() || got.Attempts != 0 {
		t.Fatalf("state %s after %d attempts, want timed-out after 0 (%s)",
			got.State, got.Attempts, got.Error)
	}
	f.release <- struct{}{}
	await(t, s, blocker.ID)
	text := s.Metrics().Text()
	if !strings.Contains(text, `tilevmd_jobs_terminal_total{state="timed-out"} 1`) {
		t.Errorf("timeout not counted:\n%s", text)
	}
	if !strings.Contains(text, "tilevmd_slo_eligible_total 1") {
		t.Errorf("timed-out job not SLO-eligible:\n%s", text)
	}
}

func TestWallTimeoutWhileRunning(t *testing.T) {
	// Real engine: the job's budget expires after admission, so the
	// batch timer interrupts the simulation and settle reports the
	// timeout. The expiry is rewritten to the past at batch start —
	// deterministic, no sleeps.
	var s *Service
	s = newTestService(t, Config{onBatchStart: func(ids []string) {
		s.mu.Lock()
		for _, id := range ids {
			s.jobs[id].expiry = time.Now().Add(-time.Second)
		}
		s.mu.Unlock()
	}}, nil)
	v := mustSubmit(t, s, Spec{Workload: "164.gzip", Timeout: time.Hour})
	got := await(t, s, v.ID)
	if got.State != StateTimedOut.String() {
		t.Fatalf("state %s (%s), want timed-out", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (admitted once)", got.Attempts)
	}
}

func TestVirtualDeadlinePropagates(t *testing.T) {
	// A 1-cycle virtual deadline trips core's DeadlineError path.
	s := newTestService(t, Config{}, nil)
	v := mustSubmit(t, s, Spec{Workload: "164.gzip", DeadlineCycles: 1})
	got := await(t, s, v.ID)
	if got.State != StateDeadline.String() {
		t.Fatalf("state %s (%s), want deadline-exceeded", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", got.Error)
	}
}

func TestRetentionCapBoundsMemory(t *testing.T) {
	s := newTestService(t, Config{Retain: 2}, &stubFleet{})
	ids := []string{}
	for i := 0; i < 4; i++ {
		v := mustSubmit(t, s, Spec{Workload: "164.gzip"})
		await(t, s, v.ID)
		ids = append(ids, v.ID)
	}
	// Only the two newest terminal jobs are still queryable.
	for _, id := range ids[:2] {
		if _, err := s.Get(id); !errors.Is(err, ErrUnknownJob) {
			t.Errorf("job %s still retained, want aged out", id)
		}
	}
	for _, id := range ids[2:] {
		if _, err := s.Get(id); err != nil {
			t.Errorf("job %s aged out early: %v", id, err)
		}
	}
	if n := len(s.List()); n != 2 {
		t.Errorf("List holds %d jobs, want 2", n)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{}, &stubFleet{})
	if _, err := s.Submit(Spec{Workload: "no-such-workload"}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown workload err = %v", err)
	}
	if _, err := s.Submit(Spec{Workload: "164.gzip", Timeout: -time.Second}); err == nil ||
		!strings.Contains(err.Error(), "negative timeout") {
		t.Errorf("negative timeout err = %v", err)
	}
	if _, err := s.Submit(Spec{Workload: "164.gzip", Class: Class(9)}); err == nil ||
		!strings.Contains(err.Error(), "invalid class") {
		t.Errorf("bad class err = %v", err)
	}
	if _, err := s.Get("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("get ghost err = %v", err)
	}
	if _, err := s.Cancel("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel ghost err = %v", err)
	}
}

// TestElasticBatchingPolicy pins the elastic policy hook: with Elastic
// on and the queue backed up past the slot count, one batch carries up
// to twice the slots (the surplus queues inside the fleet run, where
// elastic morphs absorb it), and the executor sees FleetConfig.Elastic
// plus planner profiles for every admitted guest. With a short queue
// the batch cap stays at the slot count.
func TestElasticBatchingPolicy(t *testing.T) {
	f := newStub()
	type batchShape struct {
		n, profiles      int
		elastic, planner bool
	}
	shapes := make(chan batchShape, 8)
	started := make(chan []string, 8)
	s := newTestService(t, Config{
		Elastic: true, Planner: true, // 4×2 fabric → 1 slot, elastic cap 2
		onBatchStart: func(ids []string) { started <- ids },
		runFleet: func(imgs []*guest.Image, cfg core.Config, fc core.FleetConfig) (*core.FleetResult, error) {
			shapes <- batchShape{n: len(imgs), profiles: len(fc.Profiles),
				elastic: fc.Elastic, planner: fc.Planner}
			return f.run(imgs, cfg, fc)
		}}, nil)
	t.Cleanup(func() { close(f.quit) }) // after newTestService: runs before its forced drain

	blocker := mustSubmit(t, s, Spec{Workload: "164.gzip"})
	<-started // blocker occupies the only slot; the stub holds it there
	ids := []string{blocker.ID}
	for i := 0; i < 3; i++ {
		ids = append(ids, mustSubmit(t, s, Spec{Workload: "164.gzip"}).ID)
	}
	for i := 0; i < 3; i++ {
		f.release <- struct{}{}
	}
	for _, id := range ids {
		if v := await(t, s, id); v.State != StateFinished.String() {
			t.Fatalf("job %s state %s, want finished", id, v.State)
		}
	}
	// Blocker popped alone; then 3 queued > 1 slot → an oversubscribed
	// batch of 2; then the last job alone once the queue is short again.
	var sizes []int
	for i := 0; i < 3; i++ {
		b := <-shapes
		sizes = append(sizes, b.n)
		if !b.elastic || !b.planner {
			t.Errorf("batch %d flags elastic=%v planner=%v, want both true", i, b.elastic, b.planner)
		}
		if b.profiles != b.n {
			t.Errorf("batch %d carries %d planner profiles for %d guests", i, b.profiles, b.n)
		}
	}
	if want := []int{1, 2, 1}; !intsEqual(sizes, want) {
		t.Errorf("batch sizes %v, want %v (middle batch must oversubscribe)", sizes, want)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServiceElasticLendExclusive pins the config validation at New.
func TestServiceElasticLendExclusive(t *testing.T) {
	if _, err := New(Config{Width: 4, Height: 2, Elastic: true, Lend: true}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}
