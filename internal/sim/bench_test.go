package sim

import "testing"

// BenchmarkEventDispatch measures the scheduler's core loop: one
// process repeatedly advancing virtual time, so every iteration is one
// heap push, one pop, and one goroutine handoff.
func BenchmarkEventDispatch(b *testing.B) {
	s := New()
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdvanceRecvRoundTrip measures the message path: a producer
// advancing and sending, a consumer blocking in Recv, per iteration.
func BenchmarkAdvanceRecvRoundTrip(b *testing.B) {
	s := New()
	pt := s.NewPort("bench")
	payload := &struct{ n int }{}
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
			pt.Send(0, payload, p.Now())
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Recv(pt)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestStaleEventsCompacted drives the supersede-heavy pattern that used
// to accumulate dead wakeups: a consumer parked until a far deadline
// whose sleep is repeatedly superseded by earlier messages. Each
// supersede strands a dead entry at the deadline; without compaction
// the heap grows by one entry per round until virtual time reaches the
// deadline. The lazy-deletion compaction must keep the heap bounded.
func TestStaleEventsCompacted(t *testing.T) {
	const rounds = 1000
	const deadline = Time(1 << 40)
	s := New()
	pt := s.NewPort("p")
	maxLen := 0
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Advance(1)
			pt.Send(0, i, p.Now())
			if n := len(s.shards[0].events.ev); n > maxLen {
				maxLen = n
			}
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if _, ok := p.RecvDeadline(pt, deadline); !ok {
				t.Error("consumer hit deadline")
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Without compaction the heap peaks near `rounds`; with it, dead
	// entries are swept once they exceed half of a ≥64-entry heap.
	if maxLen > 4*compactMinLen {
		t.Fatalf("event heap grew to %d entries; stale wakeups are not being compacted", maxLen)
	}
}
