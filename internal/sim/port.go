package sim

// A Msg is a message in flight or delivered to a Port. Payload is the
// user value; Arrival is the virtual time at which it becomes visible to
// the receiver; From identifies the sender (for tile kernels, a tile
// index) and is available for routing replies.
type Msg struct {
	Payload any
	Arrival Time
	From    int
	seq     uint64
}

// msgHeap is a concrete-typed binary min-heap ordered by (arrival,
// enqueue order). Hand-rolled sift operations avoid the per-message
// interface boxing of container/heap on the network send/recv path.
type msgHeap []Msg

func (h msgHeap) less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Msg) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *msgHeap) pop() Msg {
	q := *h
	m := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = Msg{} // release the payload reference
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return m
}

// A Port is an ordered message queue, the endpoint of a simulated
// network link or hardware FIFO. Messages are delivered in arrival-time
// order (FIFO among equal arrivals). At most one process may block in
// Recv on a port at a time.
//
// A port belongs to a shard (shard 0 unless SetShard moved it). In a
// sharded run, only processes of the same shard may call Recv/TryRecv/
// RecvDeadline or Send directly; processes of other shards must route
// sends through Proc.SendPort, which defers them across the shard
// boundary. Port.Len on a cross-shard port may transiently undercount
// messages still staged at the boundary.
type Port struct {
	sim    *Simulator
	sh     *shard
	name   string
	q      msgHeap
	waiter *Proc
	seq    uint64
}

// NewPort creates a port attached to the simulator, on shard 0.
func (s *Simulator) NewPort(name string) *Port {
	pt := &Port{sim: s, sh: s.shards[0], name: name}
	s.ports = append(s.ports, pt)
	return pt
}

// SetShard assigns the port to shard i. Must be called before Run; the
// receiving process must live on the same shard.
func (pt *Port) SetShard(i int) {
	if pt.sim.started {
		panic("sim: Port.SetShard after Run")
	}
	pt.sh = pt.sim.shard(i)
}

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Len returns the number of queued messages, including ones whose
// arrival time is still in the future.
func (pt *Port) Len() int { return len(pt.q) }

// Send enqueues a message arriving at the given time, waking a blocked
// receiver if necessary. It may be called from any process of the
// port's own shard (the sender's local time is not consulted; compute
// arrival with p.Now() plus the modeled transit latency before
// calling). Send never blocks: link back-pressure is modeled by the
// receiver's service occupancy. In a sharded run, senders that may be
// on a different shard must use Proc.SendPort instead.
func (pt *Port) Send(from int, payload any, arrival Time) {
	pt.seq++
	pt.q.push(Msg{Payload: payload, Arrival: arrival, From: from, seq: pt.seq})
	w := pt.waiter
	if w == nil {
		return
	}
	at := arrival
	if at < pt.sh.now {
		at = pt.sh.now
	}
	switch {
	case w.state == parkBlocked:
		pt.sh.schedule(w, at)
	case w.state == parkRunnable && at < w.wakeAt:
		// The waiter is sleeping until a later message (or a Recv
		// deadline); this message lands earlier, so wake it sooner.
		pt.sh.schedule(w, at)
	}
}

// SendPort sends on a port that may belong to another shard. On the
// port's own shard (and always in a serial run) it is exactly
// Port.Send; across shards the send is deferred and applied by the
// receiving shard in deterministic sender order (see shard.go). The
// pair (sending shard, receiving shard) must have been declared with
// Connect, and arrival must respect the declared lookahead.
func (p *Proc) SendPort(pt *Port, from int, payload any, arrival Time) {
	ps := p.sim.par
	if ps == nil || p.sh == pt.sh {
		pt.Send(from, payload, arrival)
		return
	}
	ps.sendRemote(p, pt, from, payload, arrival)
}

// checkShard guards the receive path in sharded runs: blocking on a
// port of another shard would race that shard's event loop.
func (p *Proc) checkShard(pt *Port) {
	if p.sim.par != nil && p.sh != pt.sh {
		panic("sim: " + p.name + " Recv on port " + pt.name + " of another shard")
	}
}

// Recv blocks the calling process until a message is available (its
// arrival time has been reached), then removes and returns it. Any
// accrued local time is synchronized first.
func (p *Proc) Recv(pt *Port) Msg {
	p.checkShard(pt)
	p.Sync()
	for {
		if len(pt.q) > 0 && pt.q[0].Arrival <= p.sh.now {
			return pt.q.pop()
		}
		if pt.waiter != nil && pt.waiter != p {
			p.abort(&PortConflictError{Port: pt.name, First: pt.waiter.name, Second: p.name})
		}
		pt.waiter = p
		p.blockedOn = pt
		if len(pt.q) > 0 {
			// Earliest message is in the future: sleep until it lands.
			p.sh.schedule(p, pt.q[0].Arrival)
			p.park()
		} else {
			p.block()
		}
		p.blockedOn = nil
		pt.waiter = nil
	}
}

// TryRecv returns a message if one is available now, without blocking.
func (p *Proc) TryRecv(pt *Port) (Msg, bool) {
	p.checkShard(pt)
	p.Sync()
	if len(pt.q) > 0 && pt.q[0].Arrival <= p.sh.now {
		return pt.q.pop(), true
	}
	return Msg{}, false
}

// RecvDeadline blocks until a message is available or virtual time
// reaches the deadline, whichever comes first. The boolean is false on
// timeout. A deadline in the past polls.
func (p *Proc) RecvDeadline(pt *Port, deadline Time) (Msg, bool) {
	p.checkShard(pt)
	p.Sync()
	for {
		if len(pt.q) > 0 && pt.q[0].Arrival <= p.sh.now {
			return pt.q.pop(), true
		}
		if p.sh.now >= deadline {
			return Msg{}, false
		}
		if pt.waiter != nil && pt.waiter != p {
			p.abort(&PortConflictError{Port: pt.name, First: pt.waiter.name, Second: p.name})
		}
		pt.waiter = p
		p.blockedOn = pt
		at := deadline
		if len(pt.q) > 0 && pt.q[0].Arrival < at {
			at = pt.q[0].Arrival
		}
		p.sh.schedule(p, at)
		p.park()
		p.blockedOn = nil
		pt.waiter = nil
	}
}
