package sim

// A Msg is a message in flight or delivered to a Port. Payload is the
// user value; Arrival is the virtual time at which it becomes visible to
// the receiver; From identifies the sender (for tile kernels, a tile
// index) and is available for routing replies.
type Msg struct {
	Payload any
	Arrival Time
	From    int
	seq     uint64
}

// msgHeap is a concrete-typed binary min-heap ordered by (arrival,
// enqueue order). Hand-rolled sift operations avoid the per-message
// interface boxing of container/heap on the network send/recv path.
type msgHeap []Msg

func (h msgHeap) less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Msg) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *msgHeap) pop() Msg {
	q := *h
	m := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = Msg{} // release the payload reference
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return m
}

// A Port is an ordered message queue, the endpoint of a simulated
// network link or hardware FIFO. Messages are delivered in arrival-time
// order (FIFO among equal arrivals). At most one process may block in
// Recv on a port at a time.
type Port struct {
	sim    *Simulator
	name   string
	q      msgHeap
	waiter *Proc
	seq    uint64
}

// NewPort creates a port attached to the simulator.
func (s *Simulator) NewPort(name string) *Port {
	return &Port{sim: s, name: name}
}

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Len returns the number of queued messages, including ones whose
// arrival time is still in the future.
func (pt *Port) Len() int { return len(pt.q) }

// Send enqueues a message arriving at the given time, waking a blocked
// receiver if necessary. It may be called from any process (the sender's
// own local time is not consulted; compute arrival with p.Now() plus the
// modeled transit latency before calling). Send never blocks: link
// back-pressure is modeled by the receiver's service occupancy.
func (pt *Port) Send(from int, payload any, arrival Time) {
	pt.seq++
	pt.q.push(Msg{Payload: payload, Arrival: arrival, From: from, seq: pt.seq})
	w := pt.waiter
	if w == nil {
		return
	}
	at := arrival
	if at < pt.sim.now {
		at = pt.sim.now
	}
	switch {
	case w.state == parkBlocked:
		pt.sim.schedule(w, at)
	case w.state == parkRunnable && at < w.wakeAt:
		// The waiter is sleeping until a later message (or a Recv
		// deadline); this message lands earlier, so wake it sooner.
		pt.sim.schedule(w, at)
	}
}

// Recv blocks the calling process until a message is available (its
// arrival time has been reached), then removes and returns it. Any
// accrued local time is synchronized first.
func (p *Proc) Recv(pt *Port) Msg {
	p.Sync()
	for {
		if len(pt.q) > 0 && pt.q[0].Arrival <= p.sim.now {
			return pt.q.pop()
		}
		if pt.waiter != nil && pt.waiter != p {
			p.abort(&PortConflictError{Port: pt.name, First: pt.waiter.name, Second: p.name})
		}
		pt.waiter = p
		p.blockedOn = pt
		if len(pt.q) > 0 {
			// Earliest message is in the future: sleep until it lands.
			p.sim.schedule(p, pt.q[0].Arrival)
			p.park()
		} else {
			p.block()
		}
		p.blockedOn = nil
		pt.waiter = nil
	}
}

// TryRecv returns a message if one is available now, without blocking.
func (p *Proc) TryRecv(pt *Port) (Msg, bool) {
	p.Sync()
	if len(pt.q) > 0 && pt.q[0].Arrival <= p.sim.now {
		return pt.q.pop(), true
	}
	return Msg{}, false
}

// RecvDeadline blocks until a message is available or virtual time
// reaches the deadline, whichever comes first. The boolean is false on
// timeout. A deadline in the past polls.
func (p *Proc) RecvDeadline(pt *Port, deadline Time) (Msg, bool) {
	p.Sync()
	for {
		if len(pt.q) > 0 && pt.q[0].Arrival <= p.sim.now {
			return pt.q.pop(), true
		}
		if p.sim.now >= deadline {
			return Msg{}, false
		}
		if pt.waiter != nil && pt.waiter != p {
			p.abort(&PortConflictError{Port: pt.name, First: pt.waiter.name, Second: p.name})
		}
		pt.waiter = p
		p.blockedOn = pt
		at := deadline
		if len(pt.q) > 0 && pt.q[0].Arrival < at {
			at = pt.q[0].Arrival
		}
		p.sim.schedule(p, at)
		p.park()
		p.blockedOn = nil
		pt.waiter = nil
	}
}
