package sim

import (
	"strings"
	"testing"
)

// TestPanicBecomesError: a panic inside a process body must surface as
// a structured PanicError from Run — with the process identified and a
// stack captured — instead of crashing the host program, and the other
// processes must be unwound cleanly (no goroutine leak, no hang).
func TestPanicBecomesError(t *testing.T) {
	s := New()
	s.Spawn("victim", func(p *Proc) {
		p.Advance(10)
		panic("injected kernel bug")
	})
	s.Spawn("bystander", func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	err := s.Run()
	var perr *PanicError
	if !errorsAs(err, &perr) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if perr.Proc != "victim" || perr.Pid != 0 {
		t.Errorf("PanicError proc = %q pid %d, want victim/0", perr.Proc, perr.Pid)
	}
	if perr.Now != 10 {
		t.Errorf("PanicError now = %d, want 10", perr.Now)
	}
	if !strings.Contains(perr.Value, "injected kernel bug") {
		t.Errorf("PanicError value = %q, want the panic payload", perr.Value)
	}
	if !strings.Contains(perr.Stack, "robust_test.go") {
		t.Errorf("PanicError stack does not point at the panic site:\n%s", perr.Stack)
	}
}

// TestPanicBecomesErrorSharded: the same containment on the sharded
// event loop, with the panicking process on a non-zero shard.
func TestPanicBecomesErrorSharded(t *testing.T) {
	s := New()
	s.SetWorkers(2)
	a := s.Spawn("a", func(p *Proc) {
		p.Advance(20)
		panic("sharded bug")
	})
	b := s.Spawn("b", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(1)
		}
	})
	a.SetShard(1)
	b.SetShard(0)
	err := s.Run()
	var perr *PanicError
	if !errorsAs(err, &perr) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if perr.Proc != "a" {
		t.Errorf("PanicError proc = %q, want a", perr.Proc)
	}
}

// TestInterruptBeforeRun: an Interrupt issued before Run starts makes
// the run return immediately with an InterruptedError — the
// cancel-before-start race resolves to a cancelled run, not a
// completed one.
func TestInterruptBeforeRun(t *testing.T) {
	s := New()
	ran := false
	s.Spawn("w", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(1)
		}
		ran = true
	})
	s.Interrupt()
	err := s.Run()
	var ierr *InterruptedError
	if !errorsAs(err, &ierr) {
		t.Fatalf("Run = %v, want *InterruptedError", err)
	}
	if ran {
		t.Error("process body ran to completion despite pre-run interrupt")
	}
}

// TestInterruptMidRun: an Interrupt issued from a process (standing in
// for an asynchronous host goroutine — same flag, same path) stops the
// run between event dispatches with an InterruptedError.
func TestInterruptMidRun(t *testing.T) {
	s := New()
	steps := 0
	s.Spawn("w", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(1)
			steps++
			if i == 41 {
				s.Interrupt()
			}
		}
	})
	err := s.Run()
	var ierr *InterruptedError
	if !errorsAs(err, &ierr) {
		t.Fatalf("Run = %v, want *InterruptedError", err)
	}
	if steps > 43 {
		t.Errorf("ran %d steps after the interrupt was requested", steps)
	}
	if ierr.Now < 42 {
		t.Errorf("InterruptedError now = %d, want >= 42", ierr.Now)
	}
}

// TestInterruptSharded: the sharded loop honors Interrupt too.
func TestInterruptSharded(t *testing.T) {
	s := New()
	s.SetWorkers(2)
	a := s.Spawn("a", func(p *Proc) {
		for i := 0; i < 100000; i++ {
			p.Advance(1)
			if i == 10 {
				s.Interrupt()
			}
		}
	})
	b := s.Spawn("b", func(p *Proc) {
		for i := 0; i < 100000; i++ {
			p.Advance(1)
		}
	})
	a.SetShard(0)
	b.SetShard(1)
	err := s.Run()
	var ierr *InterruptedError
	if !errorsAs(err, &ierr) {
		t.Fatalf("Run = %v, want *InterruptedError", err)
	}
}
