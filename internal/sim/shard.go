// Parallel conservative-lookahead engine.
//
// A sharded Simulator partitions its processes and ports into shards,
// each running the same dispatch loop the serial scheduler runs, on its
// own goroutine. Correctness rests on three mechanisms:
//
//   - Conservative lookahead windows. Cross-shard communication must be
//     declared with Connect(from, to, lat): every message sent from a
//     process of shard `from` to a port of shard `to` must arrive at
//     least `lat` cycles after the sender's current dispatch time. Each
//     shard publishes a lower bound on its next dispatch key and may
//     dispatch an event at time t only while t < horizon, where
//     horizon = min over other shards k of (bound_k + dist(k, self))
//     and dist is the all-pairs shortest path over declared links. The
//     triangle inequality makes relayed influence (k wakes j, j sends
//     to us) safe: k's own term already covers it.
//
//   - Deterministic cross-shard delivery. Port.Send from another shard
//     is deferred: the send is recorded with the sender's dispatch key
//     (time, pid, per-proc seq) and applied by the receiving shard, in
//     sender-key order, once the message's arrival time drops below the
//     shard's horizon. A message is applied before any local event at
//     or after its arrival time can be dispatched (see applyBelow), so
//     receivers observe exactly the serial heap contents.
//
//   - Fences. Proc.Fence() blocks the calling process until every other
//     shard's next dispatch key is provably later than the caller's
//     current key, and holds that exclusivity until the process next
//     parks. Code between Fence and the next park therefore runs in
//     global serial key order — the fleet scheduler uses this for its
//     shared admission state. In a serial run Fence is a no-op.
//
// Error paths: a time-limit stop selects the globally minimal
// offending event (identical to serial). Aborts (watchdogs, port
// conflicts) stop the run as fast as possible and report the
// minimum-key abort actually recorded; if several shards were about to
// abort within one lookahead window of each other, the reported error
// may differ from serial's. Fault-free runs are bit-identical.
package sim

import (
	"fmt"
	"sync"
)

// infTime is an unreachable virtual time (no event ever carries it).
const infTime = ^Time(0)

// maxPid is a pid sentinel greater than any real pid, used in bound
// keys that mean "nothing scheduled".
const maxPid = int(^uint(0) >> 1)

// satAdd adds two times, saturating at infTime.
func satAdd(a, b Time) Time {
	if a == infTime || b == infTime || a+b < a {
		return infTime
	}
	return a + b
}

// link is a declared cross-shard communication edge.
type link struct {
	from, to int
	lat      Time
}

// SetWorkers declares the intended worker (shard-loop) count. It does
// not itself shard anything: the simulation runs the parallel engine
// only if processes are actually assigned to more than one shard (see
// Proc.SetShard). SetWorkers(1) — the default — always runs the serial
// loop.
func (s *Simulator) SetWorkers(n int) {
	if s.started {
		panic("sim: SetWorkers after Run")
	}
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Connect declares that processes of shard `from` may send to ports of
// shard `to` with a minimum lookahead of lat cycles: every such send
// must satisfy arrival >= sender dispatch time + lat. Undeclared pairs
// must not communicate at all (SendPort panics). lat must be >= 1;
// zero-latency cross-shard links would collapse the lookahead window
// and with it the parallelism.
func (s *Simulator) Connect(from, to int, lat Time) {
	if s.started {
		panic("sim: Connect after Run")
	}
	if lat < 1 {
		panic("sim: Connect lookahead must be >= 1 cycle")
	}
	if from == to {
		return
	}
	s.shard(from)
	s.shard(to)
	s.links = append(s.links, link{from: from, to: to, lat: lat})
}

// SetShard assigns the process to shard i. Must be called before Run.
func (p *Proc) SetShard(i int) {
	if p.sim.started {
		panic("sim: SetShard after Run")
	}
	p.sh = p.sim.shard(i)
}

// Shard reports the process's shard index.
func (p *Proc) Shard() int { return p.sh.idx }

// sharded reports whether Run should use the parallel engine: a worker
// count above one and at least one process assigned off shard 0.
func (s *Simulator) sharded() bool {
	if s.workers <= 1 {
		return false
	}
	for _, p := range s.procs {
		if p.sh.idx != 0 {
			return true
		}
	}
	return false
}

// xsend is a deferred cross-shard Port.Send: the arguments plus the
// sender's dispatch key (at, pid, seq), which orders application on the
// receiving shard exactly as the serial loop would have executed the
// sends.
type xsend struct {
	pt      *Port
	from    int
	payload any
	arrival Time
	at      Time   // sender's dispatch time when the send executed
	pid     int    // sender's pid
	seq     uint64 // sender's per-proc send counter
}

func xsendLess(a, b *xsend) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pid != b.pid {
		return a.pid < b.pid
	}
	return a.seq < b.seq
}

// parState is the shared coordination state of a sharded run. One
// mutex guards every field here plus the per-shard parallel fields
// (bounds, pending, buf, flags); shards hold it while deciding what to
// do and release it across each dispatch handshake.
type parState struct {
	s    *Simulator
	mu   sync.Mutex
	cond *sync.Cond
	dist [][]Time // dist[a][b]: min summed lookahead a -> b, infTime if disconnected

	fenceBy *Proc // current fence holder, nil if none
	done    bool  // all shards quiet or limit-stalled; loops must exit

	haveAbort bool
	abortAt   Time
	abortPid  int
	abortErr  error
}

func newParState(s *Simulator) *parState {
	ps := &parState{s: s}
	ps.cond = sync.NewCond(&ps.mu)
	n := len(s.shards)
	ps.dist = make([][]Time, n)
	for i := range ps.dist {
		ps.dist[i] = make([]Time, n)
		for j := range ps.dist[i] {
			if i != j {
				ps.dist[i][j] = infTime
			}
		}
	}
	for _, l := range s.links {
		if l.lat < ps.dist[l.from][l.to] {
			ps.dist[l.from][l.to] = l.lat
		}
	}
	// Floyd–Warshall: shards influence each other transitively, so the
	// horizon term for shard k must use the cheapest path, not just the
	// direct edge.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := satAdd(ps.dist[i][k], ps.dist[k][j]); d < ps.dist[i][j] {
					ps.dist[i][j] = d
				}
			}
		}
	}
	return ps
}

// wakeAll wakes every shard loop and fence waiter (used by Stop, which
// may be called from any process).
func (ps *parState) wakeAll() {
	ps.mu.Lock()
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// recordAbort notes a fatal error raised at dispatch key (at, pid),
// keeping the minimum-key abort (the one the serial loop would have
// reached first), and stops the run.
func (ps *parState) recordAbort(at Time, pid int, err error) {
	ps.mu.Lock()
	ps.recordAbortLocked(at, pid, err)
	ps.mu.Unlock()
}

func (ps *parState) recordAbortLocked(at Time, pid int, err error) {
	if !ps.haveAbort || at < ps.abortAt || (at == ps.abortAt && pid < ps.abortPid) {
		ps.haveAbort = true
		ps.abortAt, ps.abortPid, ps.abortErr = at, pid, err
	}
	ps.cond.Broadcast()
}

// horizonFor computes how far sh may advance: the minimum over other
// shards of their published bound plus the shortest declared lookahead
// path to sh. Events strictly below the horizon are safe to dispatch.
func (ps *parState) horizonFor(sh *shard) Time {
	h := infTime
	for _, k := range ps.s.shards {
		if k == sh {
			continue
		}
		if c := satAdd(k.boundAt, ps.dist[k.idx][sh.idx]); c < h {
			h = c
		}
	}
	return h
}

// grantable reports whether a fence with key (at, pid) requested by a
// process of shard self can be granted: every other shard's next
// dispatch key must be provably greater. A shard mid-dispatch at the
// same time cannot be trusted (its running process may still wake a
// smaller pid at that time) unless that process is itself parked in a
// fence wait, in which case its bound is exact.
func (ps *parState) grantable(self *shard, at Time, pid int) bool {
	for _, k := range ps.s.shards {
		if k == self {
			continue
		}
		if k.boundAt < at || (k.boundAt == at && k.boundPid <= pid) {
			return false
		}
		if k.midDispatch && !k.fenceWaiting && k.boundAt == at {
			return false
		}
	}
	return true
}

// noteSchedule is the running-process hook: a local schedule at a key
// below the shard's published mid-dispatch bound must lower the bound
// before any fence could be wrongly granted against the stale value.
func (ps *parState) noteSchedule(sh *shard, at Time, pid int) {
	ps.mu.Lock()
	if at < sh.boundAt || (at == sh.boundAt && pid < sh.boundPid) {
		sh.boundAt, sh.boundPid = at, pid
		ps.cond.Broadcast()
	}
	ps.mu.Unlock()
}

// sendRemote defers a cross-shard Port.Send: validated against the
// declared lookahead, stamped with the sender's dispatch key, and
// queued on the destination shard. The destination's published bound
// is lowered to the arrival time so fences and horizons immediately
// account for the pending wakeup.
func (ps *parState) sendRemote(p *Proc, pt *Port, from int, payload any, arrival Time) {
	src, dst := p.sh, pt.sh
	ps.mu.Lock()
	d := ps.dist[src.idx][dst.idx]
	if d == infTime {
		ps.mu.Unlock()
		panic(fmt.Sprintf("sim: cross-shard send %d->%d on port %q without a declared Connect link", src.idx, dst.idx, pt.name))
	}
	if arrival < satAdd(src.now, d) {
		ps.mu.Unlock()
		panic(fmt.Sprintf("sim: cross-shard send on port %q violates lookahead: arrival %d < now %d + lat %d", pt.name, arrival, src.now, d))
	}
	p.xseq++
	dst.pending = append(dst.pending, xsend{
		pt: pt, from: from, payload: payload, arrival: arrival,
		at: src.now, pid: p.id, seq: p.xseq,
	})
	if arrival < dst.boundAt {
		dst.boundAt, dst.boundPid = arrival, -1
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// Fence blocks the calling process until every other shard has
// provably advanced past the caller's current dispatch key, then holds
// global exclusivity until the process next parks. Between Fence and
// that park, the process is the globally earliest runnable work, so
// reads and writes of cross-shard shared state observe and produce
// exactly the serial order. No-op in a serial run.
func (p *Proc) Fence() {
	ps := p.sim.par
	if ps == nil {
		return
	}
	sh := p.sh
	at, pid := sh.now, p.id
	ps.mu.Lock()
	sh.fenceWaiting = true
	for {
		if p.sim.stopFlag.Load() {
			sh.fenceWaiting = false
			ps.mu.Unlock()
			panic(errKilled{})
		}
		if ps.fenceBy == nil && ps.grantable(sh, at, pid) {
			break
		}
		ps.cond.Wait()
	}
	sh.fenceWaiting = false
	ps.fenceBy = p
	ps.mu.Unlock()
}

// setBound publishes the shard's next-dispatch lower bound, waking the
// other shards when it moves: a bound change shifts their horizons
// (and possibly a fence grant), and a sleeping shard has no other way
// to notice. Callers hold ps.mu.
func (sh *shard) setBound(at Time, pid int) {
	if at != sh.boundAt || pid != sh.boundPid {
		sh.boundAt, sh.boundPid = at, pid
		sh.sim.par.cond.Broadcast()
	}
}

// absorb moves freshly queued cross-shard sends into the shard-owned
// staging buffer, recycling the pending backing array (the xsend pool:
// steady-state cross-shard traffic allocates no queue nodes).
func (sh *shard) absorb() {
	if len(sh.pending) == 0 {
		return
	}
	sh.buf = append(sh.buf, sh.pending...)
	for i := range sh.pending {
		sh.pending[i] = xsend{} // drop payload references
	}
	sh.pending = sh.pending[:0]
}

// applyBelow executes every staged cross-shard send whose arrival lies
// strictly below the horizon, in sender dispatch-key order. Safety: a
// message still unsent by its origin shard k satisfies
// arrival >= bound_k + dist(k, self) >= horizon, so the set applied
// here is exactly the set that can affect dispatches below the
// horizon; and ordering among equal arrivals on one port follows
// sender keys, matching the serial loop's insertion order. Messages at
// or above the horizon stay staged — their arrivals differ from every
// applied message's (they are >= horizon), so deferring them cannot
// perturb port insertion order.
func (sh *shard) applyBelow(h Time) {
	if len(sh.buf) == 0 {
		return
	}
	var batch []xsend
	kept := sh.buf[:0]
	for i := range sh.buf {
		if sh.buf[i].arrival < h {
			batch = append(batch, sh.buf[i])
		} else {
			kept = append(kept, sh.buf[i])
		}
	}
	if len(batch) == 0 {
		return
	}
	for i := len(kept); i < len(sh.buf); i++ {
		sh.buf[i] = xsend{}
	}
	sh.buf = kept
	// Insertion sort: batches are tiny and usually already ordered.
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && xsendLess(&batch[j], &batch[j-1]); j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	for i := range batch {
		x := &batch[i]
		x.pt.Send(x.from, x.payload, x.arrival)
		*x = xsend{}
	}
}

// minStagedArrival returns the earliest arrival among staged messages,
// or infTime if none.
func (sh *shard) minStagedArrival() Time {
	m := infTime
	for i := range sh.buf {
		if sh.buf[i].arrival < m {
			m = sh.buf[i].arrival
		}
	}
	for i := range sh.pending {
		if sh.pending[i].arrival < m {
			m = sh.pending[i].arrival
		}
	}
	return m
}

// loopPar is one shard's event loop: the serial algorithm plus horizon
// waits, staged-message application, and bound publication.
func (sh *shard) loopPar(ps *parState) {
	s := sh.sim
	ps.mu.Lock()
	for {
		if s.stopFlag.Load() || ps.done {
			break
		}
		sh.limitStalled = false
		sh.absorb()
		h := ps.horizonFor(sh)
		sh.applyBelow(h)
		ev, ok := sh.events.peekLive()
		if !ok {
			if m := sh.minStagedArrival(); m != infTime {
				// No local events, but staged messages will create
				// some; the bound is their earliest arrival.
				sh.setBound(m, -1)
				ps.cond.Wait()
				continue
			}
			sh.quiet = true
			sh.setBound(infTime, maxPid)
			if ps.checkDoneLocked() {
				break
			}
			ps.cond.Wait()
			sh.quiet = false
			continue
		}
		if s.limit != 0 && ev.at > s.limit {
			// Serial dispatches every event with at <= limit before the
			// heap surfaces one beyond it, so this shard stalls (rather
			// than stopping the world) until every shard is quiet or
			// likewise stalled; the minimum offending key is recorded
			// for the deterministic error.
			ps.recordAbortLocked(ev.at, ev.pid, &TimeLimitError{Limit: s.limit})
			sh.limitStalled = true
			sh.setBound(ev.at, ev.pid)
			if ps.checkDoneLocked() {
				break
			}
			ps.cond.Wait()
			continue
		}
		if ev.at >= h {
			sh.setBound(ev.at, ev.pid)
			ps.cond.Wait()
			continue
		}
		// Dispatch. The bound is the event's own key; the running
		// process can only create keys at or above it except for
		// same-time smaller-pid wakes, which noteSchedule publishes.
		sh.events.pop()
		sh.setBound(ev.at, ev.pid)
		sh.midDispatch = true
		sh.now = ev.at
		ev.proc.state = parkBlocked
		ps.mu.Unlock()
		ev.proc.resume <- struct{}{}
		<-sh.parked
		ps.mu.Lock()
		sh.midDispatch = false
		if ps.fenceBy != nil && ps.fenceBy.sh == sh {
			ps.fenceBy = nil
		}
		ps.cond.Broadcast()
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// checkDoneLocked detects global completion: every shard is quiet (no
// events, no staged messages) or stalled at the time limit, and no
// fence is held. A mid-dispatch or horizon-waiting shard keeps its
// quiet flag false, so completion cannot be declared early.
func (ps *parState) checkDoneLocked() bool {
	if ps.fenceBy != nil {
		return false
	}
	for _, k := range ps.s.shards {
		if !k.quiet && !k.limitStalled {
			return false
		}
		// The quiet flag is stale-high for a shard that was just handed
		// a cross-shard send and has not reacquired the mutex yet; the
		// pending queue is written under this mutex, so checking it
		// closes that window. (buf is drained before quiet is ever set
		// and only the shard's own loop fills it from pending.)
		if k.quiet && len(k.pending) > 0 {
			return false
		}
	}
	ps.done = true
	ps.cond.Broadcast()
	return true
}

// runSharded is the parallel counterpart of the serial loop in Run.
func (s *Simulator) runSharded() error {
	if s.Trace != nil {
		panic("sim: tracing is not supported in a sharded run")
	}
	ps := newParState(s)
	s.parMu.Lock()
	s.par = ps
	s.parMu.Unlock()
	for _, p := range s.procs {
		go p.run()
	}
	for _, p := range s.procs {
		p.sh.schedule(p, p.sh.now)
	}
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.loopPar(ps)
		}(sh)
	}
	wg.Wait()

	var err error
	ps.mu.Lock()
	if ps.haveAbort {
		err = ps.abortErr
	}
	ps.mu.Unlock()
	if err == nil && s.intrFlag.Load() {
		now := Time(0)
		for _, sh := range s.shards {
			if sh.now > now {
				now = sh.now
			}
		}
		err = &InterruptedError{Now: now}
	}
	if err == nil && !s.stopFlag.Load() {
		now := Time(0)
		for _, sh := range s.shards {
			if sh.now > now {
				now = sh.now
			}
		}
		err = s.deadlockOrNil(now)
	}
	s.kill()
	s.parMu.Lock()
	s.par = nil
	s.parMu.Unlock()
	return err
}
