package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// crossTraffic builds a two-shard workload: two producers on shard 1
// send timestamped messages over declared-lookahead links to a
// consumer on shard 0, which logs every delivery. The consumer also
// exchanges a reply stream back to shard 1, so both link directions
// and the horizon wait are exercised. With workers=1 the exact same
// construction runs on the serial loop, giving the reference logs.
// Each process keeps its own log: per-process observable behavior is
// the engine's invariant (a single globally ordered side-effect log
// across shards would itself need a Fence).
func crossTraffic(workers int) (consumerLog, echoLog []string, err error) {
	const rounds = 200
	const lat = Time(3)
	s := New()
	s.SetWorkers(workers)
	s.Connect(1, 0, lat)
	s.Connect(0, 1, lat)
	in := s.NewPort("consumer.in")
	back := s.NewPort("producer.in")
	back.SetShard(1)
	for pi := 0; pi < 2; pi++ {
		pi := pi
		p := s.Spawn(fmt.Sprintf("producer%d", pi), func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Advance(Time(2 + pi)) // distinct rates interleave the streams
				p.SendPort(in, pi, i, p.Now()+lat)
			}
		})
		p.SetShard(1)
	}
	echo := s.Spawn("echo", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			m := p.Recv(back)
			echoLog = append(echoLog, fmt.Sprintf("echo %v@%d", m.Payload, p.Now()))
		}
	})
	echo.SetShard(1)
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 2*rounds; i++ {
			m := p.Recv(in)
			consumerLog = append(consumerLog, fmt.Sprintf("recv from=%d payload=%v at=%d now=%d", m.From, m.Payload, m.Arrival, p.Now()))
			if i%2 == 0 {
				p.SendPort(back, 0, i, p.Now()+lat)
			}
		}
	})
	err = s.Run()
	return consumerLog, echoLog, err
}

// TestCrossShardDeterminism pins the cross-shard delivery order: the
// consumer's observed message sequence under the parallel engine must
// equal the serial loop's, byte for byte, at several worker counts.
func TestCrossShardDeterminism(t *testing.T) {
	wantC, wantE, err := crossTraffic(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantC) == 0 || len(wantE) == 0 {
		t.Fatal("serial reference produced no log")
	}
	diff := func(workers int, name string, want, got []string) {
		t.Helper()
		if reflect.DeepEqual(want, got) {
			return
		}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("workers=%d: %s log diverges at entry %d:\nserial:   %q\nparallel: %q",
					workers, name, i, want[i], got[i])
			}
		}
		t.Fatalf("workers=%d: parallel %s log is a prefix of serial (%d vs %d entries)",
			workers, name, len(got), len(want))
	}
	for _, workers := range []int{2, 4} {
		gotC, gotE, err := crossTraffic(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		diff(workers, "consumer", wantC, gotC)
		diff(workers, "echo", wantE, gotE)
	}
}

// TestCrossShardLookaheadViolationPanics pins the engine's tripwire: a
// cross-shard send that undercuts the declared lookahead must panic
// rather than silently deliver out of the conservative window.
func TestCrossShardLookaheadViolationPanics(t *testing.T) {
	s := New()
	s.SetWorkers(2)
	s.Connect(1, 0, 10)
	in := s.NewPort("in")
	caught := make(chan any, 1)
	p := s.Spawn("violator", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				caught <- r
				panic(errKilled{}) // unwind as a kill so Run can finish
			}
		}()
		p.Advance(5)
		p.SendPort(in, 0, "too-soon", p.Now()+1) // needs +10
	})
	p.SetShard(1)
	s.Spawn("consumer", func(p *Proc) {
		p.Recv(in)
	})
	_ = s.Run()
	select {
	case r := <-caught:
		if s, ok := r.(string); !ok || len(s) == 0 {
			t.Fatalf("expected lookahead panic message, got %#v", r)
		}
	default:
		t.Fatal("lookahead violation did not panic")
	}
}

// TestFenceSerializesSharedState drives the fleet's fence pattern
// directly: procs on different shards increment a shared counter
// inside Fence-guarded sections at staggered times. The observed
// sequence must be the global virtual-time order, every run.
func TestFenceSerializesSharedState(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var order []int
		s := New()
		s.SetWorkers(4)
		for i := 0; i < 4; i++ {
			i := i
			p := s.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
				// Staggered so the serial order is 3,2,1,0 — the reverse
				// of pid order, catching fences granted by pid accident.
				p.Advance(Time(100 - 10*i))
				p.Fence()
				order = append(order, i)
				p.Advance(1) // park: releases the fence
			})
			p.SetShard(i)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if want := []int{3, 2, 1, 0}; !reflect.DeepEqual(order, want) {
			t.Fatalf("trial %d: fence order %v, want %v", trial, order, want)
		}
	}
}

// TestShardedStopTruncatesCleanly: a Stop from a fenced section must
// end the run without deadlock and without error.
func TestShardedStopTruncatesCleanly(t *testing.T) {
	s := New()
	s.SetWorkers(2)
	s.Spawn("stopper", func(p *Proc) {
		p.Advance(50)
		p.Fence()
		p.Stop()
	})
	idler := s.Spawn("idler", func(p *Proc) {
		p.Advance(10) // finishes well before the stop; shard goes quiet
	})
	idler.SetShard(1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Stopped() {
		t.Fatal("Stop did not latch")
	}
}

// TestShardedTimeLimit: the limit error must fire even though the
// offending event sits on a shard that another shard's horizon cannot
// see, and every event at or below the limit must still dispatch.
func TestShardedTimeLimit(t *testing.T) {
	s := New()
	s.SetWorkers(2)
	s.SetLimit(100)
	var aTicks, bTicks int
	s.Spawn("a", func(p *Proc) {
		for {
			p.Advance(10)
			aTicks++
		}
	})
	b := s.Spawn("b", func(p *Proc) {
		for {
			p.Advance(30)
			bTicks++
		}
	})
	b.SetShard(1)
	err := s.Run()
	if _, ok := err.(*TimeLimitError); !ok {
		t.Fatalf("want TimeLimitError, got %v", err)
	}
	// Serial dispatches everything at or below cycle 100: 10 a-ticks,
	// 3 b-ticks (30, 60, 90).
	if aTicks != 10 || bTicks != 3 {
		t.Fatalf("dispatched a=%d b=%d ticks, want 10 and 3", aTicks, bTicks)
	}
}

// TestShardedDeadlockReport: global quiescence with a blocked process
// must produce the same pid-ordered DeadlockError as the serial loop.
func TestShardedDeadlockReport(t *testing.T) {
	build := func(workers int) error {
		s := New()
		s.SetWorkers(workers)
		never := s.NewPort("never")
		s.Spawn("waiter", func(p *Proc) {
			p.Recv(never)
		})
		other := s.Spawn("worker", func(p *Proc) {
			p.Advance(5)
		})
		if workers > 1 {
			other.SetShard(1)
		}
		return s.Run()
	}
	serial := build(1)
	par := build(2)
	if serial == nil || par == nil {
		t.Fatalf("expected deadlock errors, got serial=%v parallel=%v", serial, par)
	}
	if serial.Error() != par.Error() {
		t.Fatalf("deadlock reports differ:\nserial:   %s\nparallel: %s", serial, par)
	}
}

// TestCompactAfterSetStart is the rollback regression: SetStart moves
// the clock to an absolute restart cycle, so every event the restarted
// machine schedules sits far from zero. The supersede-heavy receive
// pattern must still trigger compaction (heap stays bounded), dispatch
// in exact (time, pid) order, and keep the per-shard seq counter
// strictly monotonic across compactions.
func TestCompactAfterSetStart(t *testing.T) {
	const start = Time(1) << 40
	const rounds = 500
	s := New()
	s.SetStart(start)
	if got := s.Now(); got != start {
		t.Fatalf("Now() = %d after SetStart(%d)", got, start)
	}
	pt := s.NewPort("p")
	maxLen := 0
	var lastSeq uint64
	var dispatches []Time
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Advance(1)
			pt.Send(0, i, p.Now())
			sh := s.shards[0]
			if n := len(sh.events.ev); n > maxLen {
				maxLen = n
			}
			if sh.seq <= lastSeq {
				t.Errorf("round %d: shard seq %d not monotonic (last %d)", i, sh.seq, lastSeq)
			}
			lastSeq = sh.seq
			dispatches = append(dispatches, p.Now())
		}
	})
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			// A far-future deadline parks a wakeup that every message
			// supersedes — the compaction-triggering pattern.
			if _, ok := p.RecvDeadline(pt, start+(1<<20)); !ok {
				t.Error("consumer hit deadline")
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxLen > 4*compactMinLen {
		t.Fatalf("event heap grew to %d entries after SetStart; compaction regressed", maxLen)
	}
	for i, at := range dispatches {
		if at < start {
			t.Fatalf("dispatch %d at cycle %d, before the SetStart origin %d", i, at, start)
		}
		if i > 0 && at < dispatches[i-1] {
			t.Fatalf("dispatch %d at cycle %d ran before cycle %d: order broken", i, at, dispatches[i-1])
		}
	}
}

// TestCompactPreservesPopOrder unit-tests the heap directly: a
// compaction over a mix of live and superseded entries (on an absolute
// SetStart-style timeline) must leave the pop order identical to the
// uncompacted heap's.
func TestCompactPreservesPopOrder(t *testing.T) {
	const start = Time(1) << 32
	mk := func() (*Simulator, []*Proc) {
		s := New()
		var procs []*Proc
		for i := 0; i < 40; i++ {
			procs = append(procs, s.Spawn(fmt.Sprintf("p%d", i), func(*Proc) {}))
		}
		s.SetStart(start)
		return s, procs
	}
	pops := func(s *Simulator, compactFirst bool) []int {
		sh := s.shards[0]
		if compactFirst {
			sh.events.compact()
		}
		var order []int
		for {
			ev, ok := sh.events.peekLive()
			if !ok {
				break
			}
			sh.events.pop()
			ev.proc.state = parkBlocked // retire so peekLive moves on
			order = append(order, ev.pid)
		}
		return order
	}
	build := func(s *Simulator, procs []*Proc) {
		sh := s.shards[0]
		// Half the procs get superseded schedules (dead entries), every
		// proc ends with one live entry at a scrambled absolute time.
		for i, p := range procs {
			sh.schedule(p, start+Time((i*7)%41))
			if i%2 == 0 {
				sh.schedule(p, start+Time((i*13)%37)) // supersedes the first
			}
		}
	}
	sa, pa := mk()
	build(sa, pa)
	want := pops(sa, false)
	sb, pb := mk()
	build(sb, pb)
	got := pops(sb, true)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("compaction changed pop order:\nplain:     %v\ncompacted: %v", want, got)
	}
	if len(want) != len(pa) {
		t.Fatalf("popped %d live events for %d procs", len(want), len(pa))
	}
}
