// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a set of processes, each running in its own goroutine
// but with strictly sequential, deterministic interleaving: exactly one
// process executes at a time, and runnable processes are dispatched in
// (virtual time, process id, enqueue order) order. Processes model tile
// kernels in the Raw machine simulation; they advance virtual time with
// Advance, exchange messages through Ports, and may stop the whole
// simulation with Stop.
//
// Virtual time is measured in cycles (uint64). The kernel never invents
// time: it only moves to timestamps that processes or messages carry, so
// two runs of the same program are bit-for-bit identical.
//
// The kernel can optionally be sharded (see shard.go): processes and
// ports are partitioned into shards, each shard runs its own event
// sub-loop on its own goroutine, and the shards synchronize with
// conservative lookahead windows derived from declared cross-shard
// links. The sharded engine is byte-identical to the serial loop for
// any workload whose cross-shard communication respects the declared
// lookahead; with SetWorkers(1) (the default) the serial loop below
// runs untouched.
package sim

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"tilevm/internal/trace"
)

// Time is a point in virtual time, in cycles.
type Time = uint64

// event is a scheduled wakeup for a process. wake matches the process's
// wakeSeq at scheduling time; a mismatch at dispatch means the event was
// superseded by a later (earlier-in-time) schedule and is skipped.
type event struct {
	at   Time
	pid  int
	seq  uint64
	proc *Proc
	wake uint64
}

// eventHeap is a concrete-typed binary min-heap of events. It replaces
// container/heap so push and pop move events without boxing them into
// interface values (the scheduler's hottest path), and it tracks the
// number of dead (superseded) entries so the heap can be compacted when
// stale wakeups dominate instead of waiting for them to surface at pop.
type eventHeap struct {
	ev   []event
	dead int // superseded entries still in ev
}

// compactMinLen is the heap size below which compaction is not worth
// the re-heapify cost.
const compactMinLen = 64

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pid != b.pid {
		return a.pid < b.pid
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	// Sift up.
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
}

// pop removes and returns the minimum event. Callers must check
// len(h.ev) > 0 first.
func (h *eventHeap) pop() event {
	e := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // drop the *Proc reference
	h.ev = h.ev[:n]
	h.siftDown(0)
	return e
}

// peekLive discards dead entries from the top of the heap and returns
// the minimum live event without removing it.
func (h *eventHeap) peekLive() (event, bool) {
	for len(h.ev) > 0 {
		if h.ev[0].live() {
			return h.ev[0], true
		}
		h.pop()
		h.dead--
	}
	return event{}, false
}

// live reports whether e is still the scheduled wakeup of its process
// (not superseded by a later schedule, and the process still runnable).
func (e *event) live() bool {
	return e.proc.state == parkRunnable && e.wake == e.proc.wakeSeq
}

// compact removes dead entries in place and re-heapifies. Called when
// superseded wakeups exceed half the heap, so heap operations stay
// O(log live) instead of O(log total) and stale entries do not
// accumulate without bound in supersede-heavy phases. Pop order is
// unaffected: at most one live event exists per process, so the
// (at, pid, seq) comparator is a total order on live events and any
// valid heap yields the same pop sequence.
func (h *eventHeap) compact() {
	kept := h.ev[:0]
	for i := range h.ev {
		if h.ev[i].live() {
			kept = append(kept, h.ev[i])
		}
	}
	// Zero the tail so dropped events do not pin their processes.
	for i := len(kept); i < len(h.ev); i++ {
		h.ev[i] = event{}
	}
	h.ev = kept
	h.dead = 0
	for i := len(h.ev)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// shard is one event sub-loop: a clock, an event heap, and the
// processes and ports assigned to it. A serial simulation is exactly
// one shard (index 0) driven by the serial loop in Run; a sharded
// simulation runs each shard's loop on its own goroutine (shard.go).
type shard struct {
	sim    *Simulator
	idx    int
	now    Time
	events eventHeap
	seq    uint64
	parked chan struct{} // signalled by a proc of this shard when it parks or exits

	// Parallel-only fields (guarded by parState.mu; see shard.go).
	boundAt      Time    // lower bound on this shard's next dispatch key
	boundPid     int     // pid refinement of boundAt (-1 = conservative)
	quiet        bool    // no events and no staged messages
	midDispatch  bool    // a process of this shard is currently running
	fenceWaiting bool    // the running process is parked in a Fence wait
	limitStalled bool    // next event exceeds the time limit
	pending      []xsend // cross-shard sends queued by other shards
	buf          []xsend // staged sends awaiting horizon, shard-owned
}

// schedule enqueues a wakeup for p at time at, superseding any
// previously scheduled wakeup.
func (sh *shard) schedule(p *Proc, at Time) {
	if p.state == parkRunnable {
		// The process already has a wakeup in the heap; bumping wakeSeq
		// makes that entry dead until popped or compacted.
		sh.events.dead++
	}
	sh.seq++
	p.wakeSeq++
	p.wakeAt = at
	sh.events.push(event{at: at, pid: p.id, seq: sh.seq, proc: p, wake: p.wakeSeq})
	p.state = parkRunnable
	if n := len(sh.events.ev); n >= compactMinLen && sh.events.dead > n/2 {
		sh.events.compact()
	}
	// In a sharded run, a schedule issued by the currently running
	// process at a key below the shard's published bound (a same-time
	// wake of a smaller pid) must be published before a fence could be
	// granted against the stale bound.
	if par := sh.sim.par; par != nil && sh.midDispatch {
		par.noteSchedule(sh, at, p.id)
	}
}

// Simulator is a deterministic discrete-event scheduler.
type Simulator struct {
	shards   []*shard
	start    Time
	workers  int
	links    []link
	procs    []*Proc
	ports    []*Port
	stopFlag atomic.Bool
	intrFlag atomic.Bool // host-side Interrupt requested
	limit    Time        // 0 means no limit
	started  bool
	abortErr error      // fatal error raised from inside a process
	par      *parState  // non-nil while a sharded Run is active
	parMu    sync.Mutex // guards par for host-side (cross-goroutine) readers

	// Trace, if non-nil, is the run's virtual-time event sink (see
	// internal/trace). The kernel itself stays off the timeline — it
	// only carries the sink so the machine layers above (which know
	// what a process *is*: a tile) can emit spans without a side
	// channel. Exactly one process runs at a time, so emission needs
	// no locking. All trace timestamps are virtual; the tracer adds
	// zero virtual cycles and, when nil, zero cost. Sharded runs must
	// not install a tracer (the sink is a shared append buffer).
	Trace *trace.Tracer
}

// BlockedProc is one entry of a DeadlockError: a process stuck in Recv
// with no way to make progress, and the port it is waiting on.
type BlockedProc struct {
	Proc string
	Port string // empty if the process blocked outside a port Recv
	// Daemon marks a process excused from deadlock detection (a
	// fail-stopped tile draining its inbox); it is reported for
	// diagnosis but does not by itself constitute a deadlock.
	Daemon bool
}

// DeadlockError reports global quiescence with blocked processes: no
// event is pending and at least one non-daemon process is waiting on a
// port. The Blocked list is in process-id order, so the report is
// deterministic.
type DeadlockError struct {
	Now     Time
	Blocked []BlockedProc
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at cycle %d: %d process(es) blocked with no pending events", e.Now, len(e.Blocked))
	for _, p := range e.Blocked {
		port := p.Port
		if port == "" {
			port = "<no port>"
		}
		state := "blocked"
		if p.Daemon {
			state = "failed (daemon)"
		}
		fmt.Fprintf(&b, "\n  %-16s %s on port %s", p.Proc, state, port)
	}
	return b.String()
}

// PortConflictError reports two processes blocking in Recv on the same
// port, a structural misuse of the machine model.
type PortConflictError struct {
	Port   string
	First  string // the process already waiting
	Second string // the process whose Recv detected the conflict
}

func (e *PortConflictError) Error() string {
	return fmt.Sprintf("sim: processes %q and %q both blocked in Recv on port %q",
		e.First, e.Second, e.Port)
}

// TimeLimitError reports that virtual time exceeded the SetLimit
// watchdog.
type TimeLimitError struct{ Limit Time }

func (e *TimeLimitError) Error() string {
	return fmt.Sprintf("sim: time limit %d exceeded", e.Limit)
}

// PanicError reports a panic inside a process body. The kernel
// converts the panic into a structured simulation error instead of
// letting it unwind the host program: the remaining processes are
// killed cleanly and Run returns this error, so a buggy (or
// deliberately sabotaged) tile kernel can never take down a caller
// that has fleets of other work in flight.
type PanicError struct {
	Proc  string // name of the process that panicked
	Pid   int    // its process id (spawn order)
	Now   Time   // the shard clock at dispatch time
	Value string // the recovered panic value, stringified
	Stack string // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q (pid %d) panicked at cycle %d: %s", e.Proc, e.Pid, e.Now, e.Value)
}

// InterruptedError reports a host-side Interrupt: the simulation was
// stopped from outside virtual time (a wall-clock timeout, an
// operator cancellation) rather than by any process.
type InterruptedError struct{ Now Time }

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("sim: interrupted by the host at cycle %d", e.Now)
}

// Interrupt requests a host-side stop. Unlike Stop it may be called
// from any goroutine at any time — before Run, mid-run, or after —
// and the in-flight (or next) Run returns an InterruptedError once
// the currently dispatched process parks. Virtual time never moves
// backwards and no event is half-applied: the interrupt lands between
// event dispatches, exactly like a time-limit stop.
func (s *Simulator) Interrupt() {
	s.intrFlag.Store(true)
	s.stopFlag.Store(true)
	s.parMu.Lock()
	ps := s.par
	s.parMu.Unlock()
	if ps != nil {
		ps.wakeAll()
	}
}

// New returns an empty simulator.
func New() *Simulator {
	s := &Simulator{workers: 1}
	s.shards = []*shard{{sim: s, idx: 0, parked: make(chan struct{})}}
	return s
}

// shard returns (creating as needed) the shard with the given index.
func (s *Simulator) shard(i int) *shard {
	if i < 0 {
		panic("sim: negative shard index")
	}
	for len(s.shards) <= i {
		s.shards = append(s.shards, &shard{
			sim:    s,
			idx:    len(s.shards),
			now:    s.start,
			parked: make(chan struct{}),
		})
	}
	return s.shards[i]
}

// Now returns the current virtual time. Inside a process body, prefer
// Proc.Now, which includes the process's accumulated (not yet synced)
// local cycles. In a sharded run each shard keeps its own clock and
// Now reports shard 0's.
func (s *Simulator) Now() Time { return s.shards[0].now }

// SetLimit aborts the simulation when virtual time reaches t.
// A limit of 0 (the default) means no limit.
func (s *Simulator) SetLimit(t Time) { s.limit = t }

// SetStart moves the simulation clock forward to t before Run. Used by
// rollback recovery: the re-executed machine continues the original
// run's absolute timeline (fault-plan cycles, watchdog deadlines and
// the time limit all stay absolute), so re-executed work shows up
// honestly in the final cycle count.
func (s *Simulator) SetStart(t Time) {
	if s.started {
		panic("sim: SetStart after Run")
	}
	s.start = t
	for _, sh := range s.shards {
		sh.now = t
	}
}

// Stopped reports whether Stop has been called (or the time limit hit).
func (s *Simulator) Stopped() bool { return s.stopFlag.Load() }

// errKilled unwinds a process goroutine when the simulation ends
// before the process body returns.
type errKilled struct{}

// parkKind distinguishes why a process is parked.
type parkKind int

const (
	parkRunnable parkKind = iota // has a wakeup event in the heap
	parkBlocked                  // waiting on a port; no event scheduled
	parkDone                     // process body returned
)

// Proc is a simulation process. All methods must be called from within
// the process's own body function.
type Proc struct {
	sim       *Simulator
	sh        *shard
	id        int
	name      string
	resume    chan struct{}
	state     parkKind
	local     Time // cycles accumulated since last sync
	killed    bool
	body      func(*Proc)
	wakeSeq   uint64
	wakeAt    Time
	xseq      uint64 // cross-shard send counter (shard.go)
	blockedOn *Port  // port this process is blocked in Recv on, if any
	daemon    bool
}

// Spawn registers a new process. The body runs when Run is called.
// Processes are dispatched in id order on ties, and ids are assigned in
// spawn order. New processes start on shard 0; see SetShard.
func (s *Simulator) Spawn(name string, body func(*Proc)) *Proc {
	if s.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		sim:    s,
		sh:     s.shards[0],
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		body:   body,
	}
	s.procs = append(s.procs, p)
	return p
}

// Run executes the simulation until Stop is called, the time limit is
// reached, or no process has a pending event (global quiescence, which
// for a well-formed machine means deadlock and is reported as an error).
func (s *Simulator) Run() error {
	if s.started {
		panic("sim: Run called twice")
	}
	s.started = true
	if s.sharded() {
		return s.runSharded()
	}
	// Serial: everything rides shard 0, whatever shard assignments say.
	sh := s.shards[0]
	for _, p := range s.procs {
		p.sh = sh
	}
	for _, pt := range s.ports {
		pt.sh = sh
	}
	for _, p := range s.procs {
		p := p
		go p.run()
		sh.schedule(p, sh.now)
	}

	var err error
	for len(sh.events.ev) > 0 && !s.stopFlag.Load() {
		ev := sh.events.pop()
		if !ev.live() {
			sh.events.dead--
			continue // superseded or stale event
		}
		if s.limit != 0 && ev.at > s.limit {
			s.stopFlag.Store(true)
			err = &TimeLimitError{Limit: s.limit}
			break
		}
		sh.now = ev.at
		ev.proc.state = parkBlocked // will be updated when it parks
		ev.proc.resume <- struct{}{}
		<-sh.parked
	}
	if s.abortErr != nil && err == nil {
		err = s.abortErr
	}
	if err == nil && s.intrFlag.Load() {
		err = &InterruptedError{Now: sh.now}
	}
	if !s.stopFlag.Load() && len(sh.events.ev) == 0 && err == nil {
		err = s.deadlockOrNil(sh.now)
	}
	s.kill()
	return err
}

// run is a process goroutine: it waits for its first dispatch, executes
// the body, and signals its shard when done (or when killed). A panic
// in the body is contained: it becomes a PanicError aborting the
// simulation, not a host-program crash — the goroutine parks cleanly
// so the event loop (serial or sharded) sees an ordinary exit.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errKilled); ok {
				p.state = parkDone
				p.sh.parked <- struct{}{}
				return
			}
			perr := &PanicError{
				Proc:  p.name,
				Pid:   p.id,
				Now:   p.sh.now,
				Value: fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
			if ps := p.sim.par; ps != nil {
				ps.recordAbort(p.sh.now, p.id, perr)
			} else if p.sim.abortErr == nil {
				p.sim.abortErr = perr
			}
			p.sim.stopFlag.Store(true)
			p.state = parkDone
			p.sh.parked <- struct{}{}
			return
		}
	}()
	// Wait for first dispatch.
	<-p.resume
	if p.killed {
		panic(errKilled{})
	}
	p.body(p)
	p.state = parkDone
	p.sh.parked <- struct{}{}
}

// deadlockOrNil diagnoses global quiescence: fine if every proc is done
// (or a fail-stopped daemon), a DeadlockError otherwise — reported with
// a per-process blocked-port diagnostic, in pid order, instead of
// hanging or panicking.
func (s *Simulator) deadlockOrNil(now Time) error {
	var blocked []BlockedProc
	real := false
	for _, p := range s.procs {
		if p.state != parkBlocked {
			continue
		}
		port := ""
		if p.blockedOn != nil {
			port = p.blockedOn.name
		}
		blocked = append(blocked, BlockedProc{Proc: p.name, Port: port, Daemon: p.daemon})
		if !p.daemon {
			real = true
		}
	}
	if real {
		return &DeadlockError{Now: now, Blocked: blocked}
	}
	return nil
}

// kill unwinds all parked goroutines.
func (s *Simulator) kill() {
	s.stopFlag.Store(true)
	for _, p := range s.procs {
		if p.state == parkDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-p.sh.parked
	}
}

// Stop ends the simulation after the calling process parks.
func (p *Proc) Stop() {
	p.sim.stopFlag.Store(true)
	if ps := p.sim.par; ps != nil {
		ps.wakeAll()
	}
}

// SetDaemon excuses the process from deadlock detection: a daemon
// blocked forever (a fail-stopped tile draining its inbox) is listed
// in the DeadlockError report but does not itself constitute deadlock.
func (p *Proc) SetDaemon(v bool) { p.daemon = v }

// abort raises a fatal simulation error from inside a process body and
// unwinds the calling goroutine. Run returns the error after killing
// the remaining processes.
func (p *Proc) abort(err error) {
	if ps := p.sim.par; ps != nil {
		ps.recordAbort(p.sh.now, p.id, err)
	} else if p.sim.abortErr == nil {
		p.sim.abortErr = err
	}
	p.sim.stopFlag.Store(true)
	panic(errKilled{})
}

// Tracer returns the simulator's trace sink (nil when tracing is off;
// every trace emission method is a no-op on nil).
func (p *Proc) Tracer() *trace.Tracer { return p.sim.Trace }

// ID returns the process id (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current local virtual time, including
// accumulated cycles not yet synchronized with the scheduler.
func (p *Proc) Now() Time { return p.sh.now + p.local }

// Tick accrues d cycles of purely local work without yielding to the
// scheduler. The accrued time becomes visible at the next Advance, Send,
// Recv, or Sync.
func (p *Proc) Tick(d Time) { p.local += d }

// Sync yields to the scheduler until the process's accrued local time
// has elapsed in virtual time. It is a no-op if no time is accrued.
func (p *Proc) Sync() {
	if p.local == 0 {
		return
	}
	d := p.local
	p.local = 0
	p.advance(d)
}

// Advance accrues d cycles and yields until they have elapsed.
func (p *Proc) Advance(d Time) {
	p.local += d
	p.Sync()
}

func (p *Proc) advance(d Time) {
	p.sh.schedule(p, p.sh.now+d)
	p.park()
}

// park hands control back to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.sh.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled{})
	}
}

// block parks with no scheduled wakeup; a Port send must wake it.
func (p *Proc) block() {
	p.state = parkBlocked
	p.park()
}
