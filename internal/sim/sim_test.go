package sim

import (
	"errors"
	"testing"
)

// errorsAs adapts errors.As to the test helpers above.
func errorsAs(err error, target any) bool { return err != nil && errors.As(err, target) }

func TestAdvanceOrdering(t *testing.T) {
	s := New()
	var trace []string
	rec := func(name string, at Time) {
		trace = append(trace, name)
		if s.Now() != at {
			t.Errorf("%s: now = %d, want %d", name, s.Now(), at)
		}
	}
	s.Spawn("a", func(p *Proc) {
		p.Advance(10)
		rec("a10", 10)
		p.Advance(20)
		rec("a30", 30)
	})
	s.Spawn("b", func(p *Proc) {
		p.Advance(5)
		rec("b5", 5)
		p.Advance(20)
		rec("b25", 25)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"b5", "a10", "b25", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestTickAccumulates(t *testing.T) {
	s := New()
	s.Spawn("w", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Tick(3)
		}
		if p.Now() != 300 {
			t.Errorf("local Now = %d, want 300", p.Now())
		}
		p.Sync()
		if s.Now() != 300 {
			t.Errorf("synced Now = %d, want 300", s.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPortDelivery(t *testing.T) {
	s := New()
	pt := s.NewPort("ch")
	s.Spawn("sender", func(p *Proc) {
		p.Advance(10)
		pt.Send(p.ID(), "hello", p.Now()+7)
	})
	s.Spawn("receiver", func(p *Proc) {
		m := p.Recv(pt)
		if m.Payload.(string) != "hello" {
			t.Errorf("payload = %v", m.Payload)
		}
		if p.Now() != 17 {
			t.Errorf("recv at %d, want 17", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPortOrdersByArrival(t *testing.T) {
	s := New()
	pt := s.NewPort("ch")
	s.Spawn("sender", func(p *Proc) {
		// Sent in reverse arrival order.
		pt.Send(p.ID(), 2, 20)
		pt.Send(p.ID(), 1, 10)
		pt.Send(p.ID(), 3, 30)
	})
	s.Spawn("receiver", func(p *Proc) {
		for want := 1; want <= 3; want++ {
			m := p.Recv(pt)
			if m.Payload.(int) != want {
				t.Errorf("got %v, want %d", m.Payload, want)
			}
			if p.Now() != Time(want*10) {
				t.Errorf("arrival %d at %d, want %d", want, p.Now(), want*10)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEarlierMessageSupersedesSleep(t *testing.T) {
	s := New()
	pt := s.NewPort("ch")
	s.Spawn("late", func(p *Proc) {
		pt.Send(p.ID(), "late", 100)
	})
	s.Spawn("early", func(p *Proc) {
		p.Advance(5)
		pt.Send(p.ID(), "early", 20)
	})
	s.Spawn("receiver", func(p *Proc) {
		m := p.Recv(pt)
		if m.Payload.(string) != "early" || p.Now() != 20 {
			t.Errorf("got %v at %d, want early at 20", m.Payload, p.Now())
		}
		m = p.Recv(pt)
		if m.Payload.(string) != "late" || p.Now() != 100 {
			t.Errorf("got %v at %d, want late at 100", m.Payload, p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTryRecv(t *testing.T) {
	s := New()
	pt := s.NewPort("ch")
	s.Spawn("p", func(p *Proc) {
		if _, ok := p.TryRecv(pt); ok {
			t.Error("TryRecv on empty port succeeded")
		}
		pt.Send(p.ID(), 42, p.Now())
		m, ok := p.TryRecv(pt)
		if !ok || m.Payload.(int) != 42 {
			t.Errorf("TryRecv = %v, %v", m, ok)
		}
		pt.Send(p.ID(), 43, p.Now()+10)
		if _, ok := p.TryRecv(pt); ok {
			t.Error("TryRecv returned a future message")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecvDeadline(t *testing.T) {
	s := New()
	pt := s.NewPort("ch")
	s.Spawn("p", func(p *Proc) {
		if _, ok := p.RecvDeadline(pt, 50); ok {
			t.Error("RecvDeadline succeeded with no message")
		}
		if p.Now() != 50 {
			t.Errorf("timeout at %d, want 50", p.Now())
		}
		pt.Send(p.ID(), 1, p.Now()+5)
		m, ok := p.RecvDeadline(pt, 100)
		if !ok || p.Now() != 55 {
			t.Errorf("RecvDeadline = %v,%v at %d; want msg at 55", m, ok, p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStop(t *testing.T) {
	s := New()
	pt := s.NewPort("never")
	ran := false
	s.Spawn("blocker", func(p *Proc) {
		p.Recv(pt) // blocks forever; must be unwound by Stop
		t.Error("blocker resumed")
	})
	s.Spawn("stopper", func(p *Proc) {
		p.Advance(100)
		ran = true
		p.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("stopper did not run")
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	pt := s.NewPort("never")
	s.Spawn("blocker", func(p *Proc) {
		p.Recv(pt)
	})
	if err := s.Run(); err == nil {
		t.Fatal("Run returned nil, want deadlock error")
	}
}

// TestDeadlockReportsBlockedPorts: the deadlock error must carry a
// per-process report of which port each blocked process is waiting on.
func TestDeadlockReportsBlockedPorts(t *testing.T) {
	s := New()
	pa := s.NewPort("tile3.in")
	pb := s.NewPort("tile7.in")
	s.Spawn("exec", func(p *Proc) {
		p.Advance(10)
		p.Recv(pa)
	})
	s.Spawn("bank", func(p *Proc) {
		p.Recv(pb)
	})
	err := s.Run()
	var dl *DeadlockError
	if !errorsAs(err, &dl) {
		t.Fatalf("Run = %v, want *DeadlockError", err)
	}
	if dl.Now != 10 {
		t.Errorf("deadlock at %d, want 10", dl.Now)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked = %+v, want 2 entries", dl.Blocked)
	}
	if dl.Blocked[0].Proc != "exec" || dl.Blocked[0].Port != "tile3.in" {
		t.Errorf("entry 0 = %+v", dl.Blocked[0])
	}
	if dl.Blocked[1].Proc != "bank" || dl.Blocked[1].Port != "tile7.in" {
		t.Errorf("entry 1 = %+v", dl.Blocked[1])
	}
}

// TestDaemonDoesNotDeadlock: a daemon process blocked forever must not
// turn quiescence into a deadlock on its own.
func TestDaemonDoesNotDeadlock(t *testing.T) {
	s := New()
	pt := s.NewPort("dead.in")
	s.Spawn("deadtile", func(p *Proc) {
		p.SetDaemon(true)
		p.Recv(pt)
	})
	s.Spawn("worker", func(p *Proc) {
		p.Advance(100)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run = %v, want nil (only a daemon is blocked)", err)
	}
}

// TestPortConflictIsError: two processes blocking in Recv on one port
// must surface as a PortConflictError from Run, not a panic.
func TestPortConflictIsError(t *testing.T) {
	s := New()
	pt := s.NewPort("shared")
	s.Spawn("first", func(p *Proc) { p.Recv(pt) })
	s.Spawn("second", func(p *Proc) { p.Recv(pt) })
	err := s.Run()
	var pc *PortConflictError
	if !errorsAs(err, &pc) {
		t.Fatalf("Run = %v, want *PortConflictError", err)
	}
	if pc.Port != "shared" || pc.First != "first" || pc.Second != "second" {
		t.Errorf("conflict = %+v", pc)
	}
}

func TestTimeLimitErrorType(t *testing.T) {
	s := New()
	s.SetLimit(50)
	s.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(10)
		}
	})
	err := s.Run()
	var tl *TimeLimitError
	if !errorsAs(err, &tl) || tl.Limit != 50 {
		t.Fatalf("Run = %v, want *TimeLimitError{50}", err)
	}
}

func TestTimeLimit(t *testing.T) {
	s := New()
	s.SetLimit(1000)
	s.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(100)
		}
	})
	if err := s.Run(); err == nil {
		t.Fatal("Run returned nil, want limit error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New()
		pt := s.NewPort("ch")
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn("worker", func(p *Proc) {
				p.Advance(Time(10 + i%3))
				pt.Send(p.ID(), i, p.Now()+Time(i%4))
			})
		}
		s.Spawn("collector", func(p *Proc) {
			for range 8 {
				m := p.Recv(pt)
				order = append(order, m.Payload.(int))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestManyProcessesStress(t *testing.T) {
	s := New()
	pt := s.NewPort("sink")
	const n = 64
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Advance(Time(1 + (i+j)%7))
			}
			pt.Send(p.ID(), i, p.Now())
		})
	}
	got := 0
	s.Spawn("sink", func(p *Proc) {
		for range n {
			p.Recv(pt)
			got++
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != n {
		t.Fatalf("received %d messages, want %d", got, n)
	}
}
