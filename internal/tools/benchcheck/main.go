// Command benchcheck is the perf-regression smoke gate: it re-measures
// the headline simulator benchmarks (the machine_run_gzip micro, the
// serial quick figure suite, the quick fleet fault-tolerance sweep,
// and the sharded-engine parallel_sim fleet) and compares them against
// the recorded trajectory in BENCH_sim.json. A metric that regresses
// beyond its tolerance fails the run. Tolerances are deliberately
// generous — shared CI hosts are noisy — so only a structural
// regression (an accidental O(n²), a lost pooling optimization) trips
// the gate; allocation counts are near-deterministic and get the
// tightest bound.
//
//	benchcheck                      # compare against ./BENCH_sim.json
//	benchcheck -baseline b.json -time-tol 3 -skip-suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tilevm/internal/bench"
	"tilevm/internal/core"
	"tilevm/internal/workload"
)

// baseline mirrors the slice of BENCH_sim.json this gate reads.
type baseline struct {
	HostCPUs int `json:"host_cpus"`
	Micro    map[string]struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	} `json:"micro"`
	QuickSuite struct {
		Serial struct {
			Seconds float64 `json:"seconds"`
		} `json:"serial"`
		FleetFault struct {
			Seconds float64 `json:"seconds"`
		} `json:"fleet_fault"`
	} `json:"quick_suite"`
	ParallelSim *struct {
		ShardedSeconds float64 `json:"sharded_seconds"`
		Speedup        float64 `json:"speedup"`
	} `json:"parallel_sim"`
	ServiceThroughput struct {
		Jobs          int     `json:"jobs"`
		SecondsPerJob float64 `json:"seconds_per_job"`
	} `json:"service_throughput"`
	PlacementSweep *struct {
		Seconds float64 `json:"seconds"`
	} `json:"placement_sweep"`
	Warmup *struct {
		Tier0Cycles uint64 `json:"tier0_cycles"`
		OptCycles   uint64 `json:"opt_cycles"`
	} `json:"warmup"`
}

func loadBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if _, ok := b.Micro["machine_run_gzip"]; !ok {
		return nil, fmt.Errorf("%s: no machine_run_gzip micro entry", path)
	}
	return &b, nil
}

// metric is one baseline-vs-measured comparison. The gate trips when
// measured > baseline × tol; improvements never fail.
type metric struct {
	Name               string
	Baseline, Measured float64
	Tol                float64
}

// evaluate renders each metric's comparison line and collects the
// violations. Metrics with a zero baseline are reported but never
// fail (a fresh baseline file may predate the counter).
func evaluate(ms []metric) (lines, violations []string) {
	for _, m := range ms {
		status := "ok"
		if m.Baseline > 0 && m.Measured > m.Baseline*m.Tol {
			status = "REGRESSED"
			violations = append(violations,
				fmt.Sprintf("%s: %.0f exceeds baseline %.0f × tolerance %.2f", m.Name, m.Measured, m.Baseline, m.Tol))
		}
		ratio := 0.0
		if m.Baseline > 0 {
			ratio = m.Measured / m.Baseline
		}
		lines = append(lines, fmt.Sprintf("%-28s baseline %14.0f  measured %14.0f  (%.2fx, tol %.2fx) %s",
			m.Name, m.Baseline, m.Measured, ratio, m.Tol, status))
	}
	return lines, violations
}

func measureGzipMicro() (nsPerOp, allocsPerOp int64, err error) {
	gz, ok := workload.ByName("164.gzip")
	if !ok {
		return 0, 0, fmt.Errorf("workload 164.gzip missing")
	}
	img := gz.Build()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(img, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r.NsPerOp(), r.AllocsPerOp(), nil
}

func measureQuickSuite() (float64, error) {
	s := bench.NewSuite()
	s.Quick = true
	s.Workers = 1
	start := time.Now()
	figs := []func() (*bench.Figure, error){
		s.Figure4, s.Figure5, s.Figure6, s.Figure7,
		s.Figure8, s.Figure9, s.Figure10,
	}
	for _, f := range figs {
		if _, err := f(); err != nil {
			return 0, err
		}
	}
	if _, err := s.Headline(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// measureFleetFaultSweep times the quick fleet fault-tolerance sweep —
// the faults×policy matrix exercises quarantine, retry, and deadline
// enforcement end to end, so a structural slowdown in the fleet policy
// layer shows up here rather than in the single-machine metrics.
func measureFleetFaultSweep() (float64, error) {
	s := bench.NewSuite()
	s.Quick = true
	start := time.Now()
	if _, err := s.FleetFaultSweep(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func main() {
	var (
		basePath     = flag.String("baseline", "BENCH_sim.json", "recorded trajectory to compare against")
		timeTol      = flag.Float64("time-tol", 2.5, "wall-clock regression tolerance (multiple of baseline)")
		allocTol     = flag.Float64("alloc-tol", 1.25, "allocs/op regression tolerance (multiple of baseline)")
		speedupFloor = flag.Float64("speedup-floor", 1.5, "minimum parallel_sim speedup on hosts with >= 4 CPUs (asserted only there; 1-CPU hosts report skipped)")
		skipSuite    = flag.Bool("skip-suite", false, "skip the quick figure suite (micro only)")
	)
	flag.Parse()

	base, err := loadBaseline(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if base.HostCPUs != 0 && base.HostCPUs != runtime.NumCPU() {
		fmt.Fprintf(os.Stderr, "benchcheck: note: baseline measured on %d CPU(s), this host has %d — wall-clock comparisons are cross-host-class\n",
			base.HostCPUs, runtime.NumCPU())
	}

	fmt.Fprintln(os.Stderr, "benchcheck: measuring machine_run_gzip...")
	ns, allocs, err := measureGzipMicro()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	gz := base.Micro["machine_run_gzip"]
	ms := []metric{
		{"machine_run_gzip ns/op", float64(gz.NsPerOp), float64(ns), *timeTol},
		{"machine_run_gzip allocs/op", float64(gz.AllocsPerOp), float64(allocs), *allocTol},
	}
	if !*skipSuite {
		fmt.Fprintln(os.Stderr, "benchcheck: running quick figure suite (serial)...")
		secs, err := measureQuickSuite()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		ms = append(ms, metric{"quick_suite serial seconds", base.QuickSuite.Serial.Seconds, secs, *timeTol})

		fmt.Fprintln(os.Stderr, "benchcheck: running quick fleet fault-tolerance sweep...")
		ffSecs, err := measureFleetFaultSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		ms = append(ms, metric{"quick_suite fleet_fault seconds", base.QuickSuite.FleetFault.Seconds, ffSecs, *timeTol})

		fmt.Fprintln(os.Stderr, "benchcheck: running sharded fleet (parallel_sim)...")
		simW := runtime.NumCPU()
		if simW < 2 {
			simW = 2 // determinism check still runs on 1-CPU hosts
		}
		fp, err := bench.FleetParallelBench(simW)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if !fp.Identical {
			fmt.Fprintln(os.Stderr, "benchcheck: parallel_sim: sharded fleet result DIVERGED from serial — the engine's bit-for-bit contract is broken")
			os.Exit(1)
		}
		var baseSharded float64
		if base.ParallelSim != nil {
			baseSharded = base.ParallelSim.ShardedSeconds
		}
		ms = append(ms, metric{"parallel_sim sharded seconds", baseSharded, fp.ShardedSeconds, *timeTol})
		// The speedup assertion only means anything with real cores
		// behind the shards: on a 1-CPU host the goroutines time-slice
		// one core and the best possible outcome is ~1x, so the gate
		// reduces to the determinism check above.
		switch {
		case runtime.NumCPU() == 1:
			fmt.Printf("%-28s skipped: 1 CPU (determinism checked, speedup not asserted)\n", "parallel_sim speedup")
		case runtime.NumCPU() >= 4:
			fmt.Printf("%-28s %.2fx at %d workers on %d CPUs (floor %.2fx)\n",
				"parallel_sim speedup", fp.Speedup, fp.Workers, runtime.NumCPU(), *speedupFloor)
			if fp.Speedup < *speedupFloor {
				fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: parallel_sim speedup %.2fx below floor %.2fx on %d CPUs\n",
					fp.Speedup, *speedupFloor, runtime.NumCPU())
				os.Exit(1)
			}
		default:
			fmt.Printf("%-28s %.2fx at %d workers on %d CPUs (floor waived below 4 CPUs)\n",
				"parallel_sim speedup", fp.Speedup, fp.Workers, runtime.NumCPU())
		}

		// Placement sweep: every figure is virtual cycles, so unlike
		// parallel_sim there is no speedup to waive — the determinism
		// check and the planner-beats-fixed assertion hold exactly on
		// any host, 1-CPU included; only the wall clock takes the
		// generous time tolerance.
		fmt.Fprintln(os.Stderr, "benchcheck: running placement sweep (planner vs fixed, oversubscribed fleets)...")
		psw, err := bench.PlacementSweepBench(false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if !psw.Identical {
			fmt.Fprintln(os.Stderr, "benchcheck: placement_sweep: repeated runs DIVERGED — planner/elastic placement broke determinism")
			os.Exit(1)
		}
		for _, g := range psw.Grids {
			if !g.PlannerWins {
				fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: placement_sweep: planner no longer strictly beats fixed shapes on %s (makespan %d vs %d, utilization %.4f vs %.4f)\n",
					g.Grid, g.Planner.Makespan, g.Fixed.Makespan, g.Planner.Utilization, g.Fixed.Utilization)
				os.Exit(1)
			}
			fmt.Printf("%-28s %s cap %d: makespan fixed %d → planner %d (deterministic)\n",
				"placement_sweep", g.Grid, g.MaxSlots, g.Fixed.Makespan, g.Planner.Makespan)
		}
		var basePlacement float64
		if base.PlacementSweep != nil {
			basePlacement = base.PlacementSweep.Seconds
		}
		ms = append(ms, metric{"placement_sweep seconds", basePlacement, psw.Seconds, *timeTol})
	}

	if !*skipSuite {
		// Daemon-layer throughput: re-run at the baseline's job count
		// so seconds/job is comparable. A baseline file predating the
		// counter has Jobs == 0 — evaluate reports but never fails
		// zero-baseline metrics, so old baselines stay green.
		svcJobs := base.ServiceThroughput.Jobs
		if svcJobs <= 0 {
			svcJobs = 8
		}
		fmt.Fprintln(os.Stderr, "benchcheck: running service throughput (closed-loop daemon layer)...")
		secPerJob, _, err := bench.ServiceThroughputBench(svcJobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		// Sub-second values round to 0 in evaluate's %.0f rendering,
		// so gate on milliseconds per job.
		ms = append(ms, metric{"service_throughput ms/job",
			base.ServiceThroughput.SecondsPerJob * 1e3, secPerJob * 1e3, *timeTol})
	}

	// Tiered-translation cold start: deterministic virtual cycles, so
	// the tolerance is tight (the default time tolerance would hide a
	// real cost-model regression). The hard assertion — tier-0 must be
	// faster to the first 10k retired instructions than the optimizing
	// pipeline alone — holds regardless of the baseline's age.
	fmt.Fprintln(os.Stderr, "benchcheck: measuring tier-0 warmup (cold-start cycles)...")
	wres, err := bench.NewSuite().WarmupBench()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if wres.Tier0Cycles >= wres.OptCycles {
		fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: tier-0 warmup %d cycles is not faster than optimizing-only %d\n",
			wres.Tier0Cycles, wres.OptCycles)
		os.Exit(1)
	}
	var baseWarmup float64
	if base.Warmup != nil {
		baseWarmup = float64(base.Warmup.Tier0Cycles)
	}
	ms = append(ms, metric{"warmup tier0 cycles", baseWarmup, float64(wres.Tier0Cycles), 1.10})

	lines, violations := evaluate(ms)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d metrics within tolerance of %s\n", len(ms), *basePath)
}
