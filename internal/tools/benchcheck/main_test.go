package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEvaluate(t *testing.T) {
	lines, violations := evaluate([]metric{
		{"within", 100, 120, 1.5},
		{"improved", 100, 40, 1.5},
		{"regressed", 100, 200, 1.5},
		{"no-baseline", 0, 999, 1.5},
	})
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "regressed") {
		t.Errorf("violations = %v, want exactly the regressed metric", violations)
	}
	if !strings.Contains(lines[2], "REGRESSED") {
		t.Errorf("regressed line not flagged: %q", lines[2])
	}
	for _, i := range []int{0, 1, 3} {
		if strings.Contains(lines[i], "REGRESSED") {
			t.Errorf("line %d wrongly flagged: %q", i, lines[i])
		}
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
		"micro": {"machine_run_gzip": {"ns_per_op": 17000000, "allocs_per_op": 16000}},
		"quick_suite": {"serial": {"seconds": 9.1}}
	}`), 0o644)
	b, err := loadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	gz := b.Micro["machine_run_gzip"]
	if gz.NsPerOp != 17_000_000 || gz.AllocsPerOp != 16_000 || b.QuickSuite.Serial.Seconds != 9.1 {
		t.Errorf("parsed baseline wrong: %+v", b)
	}

	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"micro": {}}`), 0o644)
	if _, err := loadBaseline(empty); err == nil || !strings.Contains(err.Error(), "machine_run_gzip") {
		t.Errorf("baseline without the gzip micro accepted: %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`]`), 0o644)
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := loadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
