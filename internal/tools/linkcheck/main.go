// Command linkcheck verifies relative links in markdown files: every
// [text](target) whose target is not an external URL or a pure anchor
// must name a file or directory that exists, resolved against the
// containing file. Arguments are markdown files or directories (walked
// for *.md). Exits non-zero listing each broken link.
//
//	linkcheck README.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; images share the syntax with a
// leading ! and are checked the same way.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		st, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
	}

	broken, checked := 0, 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; reachability is not checked offline
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-file anchor
			}
			checked++
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "linkcheck: %s: broken link %q (%s)\n", file, m[1], resolved)
				broken++
			}
		}
	}
	fmt.Printf("linkcheck: %d files, %d relative links checked, %d broken\n",
		len(files), checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}
