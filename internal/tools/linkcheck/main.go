// Command linkcheck verifies relative links in markdown files: every
// [text](target) whose target is not an external URL or a pure anchor
// must name a file or directory that exists, resolved against the
// containing file. Arguments are markdown files or directories (walked
// for *.md). Exits non-zero listing each broken link.
//
//	linkcheck README.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; images share the syntax with a
// leading ! and are checked the same way.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// gatherFiles expands the argument list into the markdown files to
// check: file arguments are taken as-is, directory arguments are
// walked for *.md.
func gatherFiles(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// skipTarget reports whether a link target is outside the checker's
// scope: external URLs (reachability is not checked offline) and
// same-file anchors.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:")
}

// checkFile scans one markdown file and returns the number of relative
// links checked plus a description of each broken one.
func checkFile(file string) (checked int, broken []string, err error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return 0, nil, err
	}
	for _, m := range linkRe.FindAllStringSubmatch(string(raw), -1) {
		target := m[1]
		if skipTarget(target) {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // same-file anchor
		}
		checked++
		resolved := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(resolved); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q (%s)", file, m[1], resolved))
		}
	}
	return checked, broken, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	files, err := gatherFiles(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	totalBroken, totalChecked := 0, 0
	for _, file := range files {
		checked, broken, err := checkFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		totalChecked += checked
		totalBroken += len(broken)
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, "linkcheck:", b)
		}
	}
	fmt.Printf("linkcheck: %d files, %d relative links checked, %d broken\n",
		len(files), totalChecked, totalBroken)
	if totalBroken > 0 {
		os.Exit(1)
	}
}
