package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGatherFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"), "")
	write(t, filepath.Join(dir, "sub", "b.md"), "")
	write(t, filepath.Join(dir, "sub", "c.txt"), "")
	write(t, filepath.Join(dir, "d.md"), "")

	files, err := gatherFiles([]string{filepath.Join(dir, "a.md"), filepath.Join(dir, "sub")})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(f))
	}
	sort.Strings(names)
	// a.md given explicitly, b.md found by the walk; c.txt is not
	// markdown and d.md was never named.
	if want := []string{"a.md", "b.md"}; !equalStrings(names, want) {
		t.Errorf("gathered %v, want %v", names, want)
	}

	if _, err := gatherFiles([]string{filepath.Join(dir, "missing.md")}); err == nil {
		t.Error("gatherFiles on a missing path succeeded, want error")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "target.md"), "hi")
	write(t, filepath.Join(dir, "sub", "deep.md"), "hi")
	doc := strings.Join([]string{
		"[ok](target.md)",
		"[ok-dir](sub)",
		"[ok-deep](sub/deep.md)",
		"[ok-anchor](target.md#section)",
		"[self](#section)",
		"[ext](https://example.com/x.md)",
		"[mail](mailto:a@b.c)",
		"![img](missing.png)",
		"[gone](nope.md)",
	}, "\n")
	write(t, filepath.Join(dir, "doc.md"), doc)

	checked, broken, err := checkFile(filepath.Join(dir, "doc.md"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 good relative links + 2 broken; anchors and externals skipped.
	if checked != 6 {
		t.Errorf("checked %d links, want 6", checked)
	}
	if len(broken) != 2 {
		t.Fatalf("found %d broken links (%v), want 2", len(broken), broken)
	}
	if !strings.Contains(broken[0], "missing.png") || !strings.Contains(broken[1], "nope.md") {
		t.Errorf("broken list %v does not name missing.png and nope.md", broken)
	}
}

func TestCheckFileResolvesAgainstContainingDir(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "page.md"), "[up](../root.md)")
	write(t, filepath.Join(dir, "root.md"), "hi")
	checked, broken, err := checkFile(filepath.Join(dir, "docs", "page.md"))
	if err != nil {
		t.Fatal(err)
	}
	if checked != 1 || len(broken) != 0 {
		t.Errorf("checked=%d broken=%v, want 1 and none", checked, broken)
	}
}

func TestSkipTarget(t *testing.T) {
	cases := map[string]bool{
		"https://example.com": true,
		"http://x/y.md":       true,
		"mailto:a@b.c":        true,
		"README.md":           false,
		"../up.md":            false,
		"dir/file.md#frag":    false,
	}
	for target, want := range cases {
		if got := skipTarget(target); got != want {
			t.Errorf("skipTarget(%q) = %v, want %v", target, got, want)
		}
	}
}
