// Command servicesmoke is the tilevmd end-to-end smoke gate: it
// starts a real daemon process on an ephemeral port, submits two
// guests over HTTP, polls them to completion, scrapes /metrics for
// the daemon's families, then sends SIGTERM and asserts a graceful
// drain — every retained job terminal and a clean exit 0.
//
//	go build -o /tmp/tilevmd ./cmd/tilevmd
//	go run ./internal/tools/servicesmoke -bin /tmp/tilevmd
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"
)

var listenRE = regexp.MustCompile(`tilevmd: listening on (\S+)`)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servicesmoke: "+format+"\n", args...)
	os.Exit(1)
}

// getJSON decodes a GET response into out, failing on transport or
// status errors.
func getJSON(base, path string, out any) {
	resp, err := http.Get(base + path)
	if err != nil {
		fail("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fail("GET %s: %d %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		fail("GET %s: bad JSON %q: %v", path, body, err)
	}
}

type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

func main() {
	var (
		bin     = flag.String("bin", "", "path to a built tilevmd binary (required)")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	)
	flag.Parse()
	if *bin == "" {
		fail("-bin is required (build it first: go build -o /tmp/tilevmd ./cmd/tilevmd)")
	}
	deadline := time.Now().Add(*timeout)

	cmd := exec.Command(*bin, "-addr", "127.0.0.1:0", "-grid", "4x4", "-queue-cap", "8", "-v")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fail("start %s: %v", *bin, err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon announces its resolved address; everything else in
	// its output is collected for the post-drain assertions. addr and
	// tail are guarded by mu — the scanner goroutine runs until EOF.
	scanner := bufio.NewScanner(stdout)
	var (
		mu   sync.Mutex
		addr string
		tail bytes.Buffer
	)
	lineCh := make(chan struct{})
	eof := make(chan struct{})
	go func() {
		defer close(eof)
		for scanner.Scan() {
			line := scanner.Text()
			mu.Lock()
			tail.WriteString(line + "\n")
			first := addr == ""
			if m := listenRE.FindStringSubmatch(line); m != nil && first {
				addr = m[1]
			}
			gotAddr := addr != ""
			mu.Unlock()
			if first && gotAddr {
				close(lineCh)
			}
		}
	}()
	select {
	case <-lineCh:
	case <-time.After(10 * time.Second):
	}
	mu.Lock()
	base := "http://" + addr
	early := tail.String()
	mu.Unlock()
	if base == "http://" {
		fail("daemon never announced its listen address:\n%s", early)
	}
	fmt.Printf("servicesmoke: daemon up at %s\n", base)

	// Submit two guests; the 4×4 grid gives 2 VM slots, so they run
	// as one batch.
	ids := make([]string, 0, 2)
	for _, wl := range []string{"164.gzip", "181.mcf"} {
		body := fmt.Sprintf(`{"workload":%q,"timeout_ms":90000}`, wl)
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			fail("submit %s: %v", wl, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			fail("submit %s: %d %s", wl, resp.StatusCode, data)
		}
		var v jobView
		if err := json.Unmarshal(data, &v); err != nil || v.ID == "" {
			fail("submit %s: bad view %s (%v)", wl, data, err)
		}
		ids = append(ids, v.ID)
	}
	fmt.Printf("servicesmoke: submitted %v\n", ids)

	// Poll both jobs to their terminal state.
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				fail("job %s did not finish within %v", id, *timeout)
			}
			var v jobView
			getJSON(base, "/api/v1/jobs/"+id, &v)
			if v.State == "finished" {
				break
			}
			switch v.State {
			case "queued", "running":
				time.Sleep(100 * time.Millisecond)
			default:
				fail("job %s ended %s (%s), want finished", id, v.State, v.Error)
			}
		}
	}
	fmt.Println("servicesmoke: both jobs finished")

	// Scrape /metrics and check the daemon's families are present
	// with the lifecycle we just drove.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fail("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fail("metrics content type %q", ct)
	}
	for _, w := range []string{
		"tilevmd_jobs_submitted_total 2",
		`tilevmd_jobs_terminal_total{state="finished"} 2`,
		"tilevmd_queue_depth 0",
		"tilevmd_job_latency_seconds_count 2",
		"tilevmd_up 1",
	} {
		if !bytes.Contains(metrics, []byte(w)) {
			fail("metrics missing %q:\n%s", w, metrics)
		}
	}
	fmt.Println("servicesmoke: metrics families present")

	// SIGTERM must drain gracefully: exit 0 with the drain banner and
	// both retained jobs reported finished (-v).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("SIGTERM: %v", err)
	}
	waitErr := cmd.Wait()
	<-eof // scanner goroutine has drained all remaining output
	mu.Lock()
	out := tail.String()
	mu.Unlock()
	if waitErr != nil {
		fail("daemon exit after SIGTERM: %v\n%s", waitErr, out)
	}
	if !strings.Contains(out, "tilevmd: drained, exiting") {
		fail("no drain banner in output:\n%s", out)
	}
	for _, id := range ids {
		if !strings.Contains(out, fmt.Sprintf("job %s finished", id)) {
			fail("drain dump missing 'job %s finished':\n%s", id, out)
		}
	}
	fmt.Println("servicesmoke: SIGTERM drained cleanly, exit 0")
}
