// Command tracecheck validates a captured trace for CI: the Chrome
// trace_event JSON must parse, be non-empty, and show the tiled layout
// (at least 4 distinct tile rows with at least one duration span); an
// optional second argument names the sampler CSV, which must have a
// header plus at least one data row. It prints one summary line and
// exits non-zero on any violation.
//
//	tracecheck trace.json [samples.csv]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [samples.csv]")
		os.Exit(2)
	}
	if err := checkJSON(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	if len(os.Args) == 3 {
		if err := checkCSV(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
	}
}

func checkJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("does not parse as trace_event JSON: %v", err)
	}
	pids := map[int]bool{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		pids[ev.PID] = true
		if ev.Ph == "X" {
			spans++
		}
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace is empty")
	}
	if len(pids) < 4 {
		return fmt.Errorf("only %d tile rows, want >= 4 (tiled layout not visible)", len(pids))
	}
	if spans == 0 {
		return fmt.Errorf("no duration spans")
	}
	fmt.Printf("tracecheck: %s ok (%d events, %d spans, %d tile rows)\n",
		path, len(doc.TraceEvents), spans, len(pids))
	return nil
}

func checkCSV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	for sc.Scan() {
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows < 2 {
		return fmt.Errorf("%d lines, want a header plus at least one sample window", rows)
	}
	fmt.Printf("tracecheck: %s ok (%d sample windows)\n", path, rows-1)
	return nil
}
