package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// traceDoc builds a minimal Chrome trace_event document with one
// metadata event, nSpans duration spans spread over nTiles pids, and
// one instant event.
func traceDoc(nTiles, nSpans int) string {
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	b.WriteString(`{"name":"process_name","ph":"M","pid":0}`)
	for i := 0; i < nSpans; i++ {
		b.WriteString(`,{"name":"span","ph":"X","pid":` +
			string(rune('0'+i%nTiles)) + `,"ts":1,"dur":2}`)
	}
	b.WriteString(`,{"name":"tick","ph":"i","pid":0,"ts":9}`)
	b.WriteString(`]}`)
	return b.String()
}

func TestCheckJSONAcceptsTiledTrace(t *testing.T) {
	p := tmpFile(t, "trace.json", traceDoc(5, 8))
	if err := checkJSON(p); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestCheckJSONRejections(t *testing.T) {
	cases := []struct {
		name, content, want string
	}{
		{"not json", "][", "does not parse"},
		{"empty", `{"traceEvents":[]}`, "empty"},
		{"too few tiles", traceDoc(2, 6), "tile rows"},
		{"no spans", `{"traceEvents":[
			{"name":"a","ph":"i","pid":0},{"name":"b","ph":"i","pid":1},
			{"name":"c","ph":"i","pid":2},{"name":"d","ph":"i","pid":3}]}`, "no duration spans"},
	}
	for _, tc := range cases {
		p := tmpFile(t, "trace.json", tc.content)
		err := checkJSON(p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := checkJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCheckCSV(t *testing.T) {
	good := tmpFile(t, "s.csv", "cycle,dispatches\n100,5\n200,7\n")
	if err := checkCSV(good); err != nil {
		t.Errorf("valid CSV rejected: %v", err)
	}
	headerOnly := tmpFile(t, "s.csv", "cycle,dispatches\n")
	if err := checkCSV(headerOnly); err == nil || !strings.Contains(err.Error(), "header") {
		t.Errorf("header-only CSV: err = %v, want sample-window complaint", err)
	}
	if err := checkCSV(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
