package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Sampler aggregates counters into fixed-width virtual-time windows:
// accumulating count series (events per window), per-tile busy cycles
// (occupancy), and max-valued gauges (queue depths). Windows are dense
// from cycle 0, so the CSV rows form a regular time series even across
// quiet stretches.
type Sampler struct {
	interval uint64
	tiles    int
	counts   []string
	gauges   []string
	ratios   []Ratio
	rows     []sampleRow
}

// sampleRow is one window's aggregates: counts, then gauges, then
// per-tile busy cycles, laid out contiguously.
type sampleRow []uint64

func newSampler(o Options) *Sampler {
	return &Sampler{
		interval: o.SampleInterval,
		tiles:    o.Tiles,
		counts:   o.Counts,
		gauges:   o.Gauges,
		ratios:   o.Ratios,
	}
}

// row returns the window row containing ts, growing the dense window
// list as needed.
func (s *Sampler) row(ts uint64) sampleRow {
	w := int(ts / s.interval)
	for len(s.rows) <= w {
		s.rows = append(s.rows, make(sampleRow, len(s.counts)+len(s.gauges)+s.tiles))
	}
	return s.rows[w]
}

func (s *Sampler) count(series int, ts, n uint64) {
	s.row(ts)[series] += n
}

func (s *Sampler) gauge(series int, ts, v uint64) {
	r := s.row(ts)
	if i := len(s.counts) + series; v > r[i] {
		r[i] = v
	}
}

func (s *Sampler) busy(tile int, ts, d uint64) {
	s.row(ts)[len(s.counts)+len(s.gauges)+tile] += d
}

// CountTotal sums a count series over all windows — by construction
// equal to the matching end-of-run counter, which the tests pin.
func (t *Tracer) CountTotal(series int) uint64 {
	if t == nil || t.s == nil {
		return 0
	}
	var sum uint64
	for _, r := range t.s.rows {
		sum += r[series]
	}
	return sum
}

// BusyTotal sums a tile's sampled busy cycles over all windows.
func (t *Tracer) BusyTotal(tile int) uint64 {
	if t == nil || t.s == nil {
		return 0
	}
	var sum uint64
	for _, r := range t.s.rows {
		sum += r[len(t.s.counts)+len(t.s.gauges)+tile]
	}
	return sum
}

// Windows returns the number of sample windows recorded.
func (t *Tracer) Windows() int {
	if t == nil || t.s == nil {
		return 0
	}
	return len(t.s.rows)
}

// WriteCSV writes the interval samples: one row per window, columns
// window_start, every count series, every ratio (num/den within the
// window, 0 when the denominator is 0), every gauge (window max), and
// per-tile occupancy percentages (busy cycles / window width). Output
// is byte-identical across identical runs.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if t == nil || t.s == nil {
		return fmt.Errorf("trace: interval sampling not enabled (SampleInterval == 0)")
	}
	s := t.s
	bw := bufio.NewWriter(w)
	bw.WriteString("window_start")
	for _, name := range s.counts {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	for _, r := range s.ratios {
		bw.WriteByte(',')
		bw.WriteString(r.Name)
	}
	for _, name := range s.gauges {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	for tile := 0; tile < s.tiles; tile++ {
		fmt.Fprintf(bw, ",tile%d_occ_pct", tile)
	}
	bw.WriteByte('\n')

	var buf [24]byte
	for w, r := range s.rows {
		bw.Write(strconv.AppendUint(buf[:0], uint64(w)*s.interval, 10))
		for i := range s.counts {
			bw.WriteByte(',')
			bw.Write(strconv.AppendUint(buf[:0], r[i], 10))
		}
		for _, ra := range s.ratios {
			bw.WriteByte(',')
			if den := r[ra.Den]; den > 0 {
				bw.Write(strconv.AppendFloat(buf[:0], float64(r[ra.Num])/float64(den), 'f', 4, 64))
			} else {
				bw.WriteByte('0')
			}
		}
		for i := range s.gauges {
			bw.WriteByte(',')
			bw.Write(strconv.AppendUint(buf[:0], r[len(s.counts)+i], 10))
		}
		for tile := 0; tile < s.tiles; tile++ {
			busy := r[len(s.counts)+len(s.gauges)+tile]
			bw.WriteByte(',')
			bw.Write(strconv.AppendFloat(buf[:0], 100*float64(busy)/float64(s.interval), 'f', 2, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
