// Package trace records a deterministic timeline of a simulated run in
// virtual cycles: spans (work with a duration), instant events, and
// counter tracks, each attributed to a tile, exported in the Chrome
// trace_event JSON format loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. A companion interval sampler aggregates counters
// into fixed-width virtual-time windows and writes them as CSV.
//
// The tracer is an introspection layer, not part of the machine model:
// it charges no virtual cycles, uses only virtual timestamps (never
// wall clock), and records events in simulation dispatch order, so two
// identical runs produce byte-identical trace files.
//
// Cost when disabled is zero by construction: every emission method is
// safe on a nil *Tracer (a pointer test and return), takes only scalar
// and constant-string arguments (no interface boxing, no varargs slice),
// and therefore allocates nothing on the disabled path. Call sites only
// need an explicit non-nil guard when *computing* an argument is itself
// expensive.
package trace

import (
	"bufio"
	"io"
	"strconv"
)

// Phase values follow the Chrome trace_event format.
const (
	phSpan    = 'X' // complete event: ts + dur
	phInstant = 'i' // instant event
	phCounter = 'C' // counter sample
)

// Event is one timeline entry. PID is the tile id (so the viewer shows
// one row group per tile of the 4×4 grid); all tiles use a single
// thread lane, relying on span nesting (a tile kernel is sequential in
// virtual time, so inner spans are always properly contained).
//
// Up to two key/value arguments ride along as fixed fields; K1 == ""
// means no arguments, K2 == "" means one. Values are unsigned and
// written as JSON numbers.
type Event struct {
	Name string
	Ph   byte
	TS   uint64 // virtual cycle
	Dur  uint64 // span length in cycles (phSpan only)
	PID  int32
	K1   string
	V1   uint64
	K2   string
	V2   uint64
}

// Options configures a Tracer. The count/gauge/ratio series describe
// the sampler schema; they are fixed at construction so that emission
// is an index, not a lookup.
type Options struct {
	// SampleInterval is the sampler window width in cycles; 0 disables
	// interval sampling (the event timeline is always recorded).
	SampleInterval uint64
	// Tiles is the number of tiles whose busy cycles the sampler
	// tracks per window.
	Tiles int
	// Counts names the per-window accumulating series (indexed by
	// position in Tracer.Count).
	Counts []string
	// Gauges names the per-window max-value series (indexed by
	// position in Tracer.Gauge).
	Gauges []string
	// Ratios are derived num/den columns computed at CSV-write time
	// from the count series.
	Ratios []Ratio
}

// Ratio is a derived CSV column: the per-window quotient of two count
// series (a hit rate, a miss rate). An empty window writes 0.
type Ratio struct {
	Name     string
	Num, Den int // indexes into Options.Counts
}

// Tracer collects events and interval samples for one run. The
// simulation executes exactly one tile kernel at a time, so the tracer
// needs no locking; runs executed concurrently (a parallel experiment
// harness) must each own their own Tracer.
type Tracer struct {
	events []Event
	// procName[pid] labels the viewer's process rows; registered once
	// at machine construction.
	procNames map[int32]string
	s         *Sampler
}

// New builds a tracer. The event timeline is always on; the interval
// sampler is armed when o.SampleInterval > 0.
func New(o Options) *Tracer {
	t := &Tracer{procNames: map[int32]string{}}
	if o.SampleInterval > 0 {
		t.s = newSampler(o)
	}
	return t
}

// SetProcName labels a tile's row in the viewer (e.g. "tile 5 exec
// (1,1)"). Later registrations of the same pid win, so a re-built
// machine (rollback re-execution) may re-register freely.
func (t *Tracer) SetProcName(pid int, name string) {
	if t == nil {
		return
	}
	t.procNames[int32(pid)] = name
}

// Span records completed work on a tile: [start, end) in virtual
// cycles. Pass k1 == "" for no arguments.
func (t *Tracer) Span(pid int, name string, start, end uint64, k1 string, v1 uint64, k2 string, v2 uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: name, Ph: phSpan, TS: start, Dur: end - start,
		PID: int32(pid), K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Instant records a point event on a tile.
func (t *Tracer) Instant(pid int, name string, ts uint64, k1 string, v1 uint64, k2 string, v2 uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: name, Ph: phInstant, TS: ts,
		PID: int32(pid), K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Counter records a counter-track sample (rendered as a filled graph
// in the viewer — the translation-queue depth, for instance).
func (t *Tracer) Counter(pid int, name string, ts, v uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: name, Ph: phCounter, TS: ts, PID: int32(pid), K1: name, V1: v,
	})
}

// Count adds n to an accumulating sampler series in the window holding
// ts. A no-op when sampling is off.
func (t *Tracer) Count(series int, ts, n uint64) {
	if t == nil || t.s == nil {
		return
	}
	t.s.count(series, ts, n)
}

// Busy attributes d busy cycles to a tile in the window holding ts.
func (t *Tracer) Busy(tile int, ts, d uint64) {
	if t == nil || t.s == nil {
		return
	}
	t.s.busy(tile, ts, d)
}

// Gauge records an instantaneous value for a gauge series; the window
// keeps the maximum.
func (t *Tracer) Gauge(series int, ts, v uint64) {
	if t == nil || t.s == nil {
		return
	}
	t.s.gauge(series, ts, v)
}

// Sampling reports whether the interval sampler is armed. Use it to
// guard emission sites whose argument computation is itself expensive.
func (t *Tracer) Sampling() bool { return t != nil && t.s != nil }

// Len returns the number of recorded timeline events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded timeline (shared slice; do not mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteJSON writes the timeline in Chrome trace_event format: an object
// with a traceEvents array, one JSON object per line. Timestamps are
// virtual cycles written into the format's microsecond field — the
// viewer's time axis therefore reads directly in cycles.
//
// The encoder is hand-rolled over strconv so that output depends only
// on the recorded events (byte-identical across identical runs) and
// needs no reflection.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	// Process-name metadata first, in pid order, so the viewer labels
	// rows before any event references them.
	for pid := int32(0); int(pid) < 1024; pid++ {
		name, ok := t.procNames[pid]
		if !ok {
			continue
		}
		writeSep(bw, &first)
		bw.WriteString("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":")
		writeUint(bw, uint64(pid))
		bw.WriteString(",\"args\":{\"name\":")
		writeString(bw, name)
		bw.WriteString("}}")
		writeSortIndex(bw, pid)
	}
	buf := make([]byte, 0, 64)
	for i := range t.events {
		writeSep(bw, &first)
		t.events[i].write(bw, buf)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeSortIndex pins the viewer's row order to tile-id order.
func writeSortIndex(bw *bufio.Writer, pid int32) {
	bw.WriteString(",\n{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":")
	writeUint(bw, uint64(pid))
	bw.WriteString(",\"args\":{\"sort_index\":")
	writeUint(bw, uint64(pid))
	bw.WriteString("}}")
}

func writeSep(bw *bufio.Writer, first *bool) {
	if *first {
		*first = false
		return
	}
	bw.WriteString(",\n")
}

func (e *Event) write(bw *bufio.Writer, buf []byte) {
	bw.WriteString("{\"name\":")
	writeString(bw, e.Name)
	bw.WriteString(",\"ph\":\"")
	bw.WriteByte(e.Ph)
	bw.WriteString("\",\"ts\":")
	bw.Write(strconv.AppendUint(buf[:0], e.TS, 10))
	if e.Ph == phSpan {
		bw.WriteString(",\"dur\":")
		bw.Write(strconv.AppendUint(buf[:0], e.Dur, 10))
	}
	bw.WriteString(",\"pid\":")
	bw.Write(strconv.AppendUint(buf[:0], uint64(e.PID), 10))
	bw.WriteString(",\"tid\":0")
	if e.Ph == phInstant {
		bw.WriteString(",\"s\":\"t\"") // thread-scoped instant marker
	}
	if e.K1 != "" {
		bw.WriteString(",\"args\":{")
		writeString(bw, e.K1)
		bw.WriteByte(':')
		bw.Write(strconv.AppendUint(buf[:0], e.V1, 10))
		if e.K2 != "" {
			bw.WriteByte(',')
			writeString(bw, e.K2)
			bw.WriteByte(':')
			bw.Write(strconv.AppendUint(buf[:0], e.V2, 10))
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// writeString writes a JSON string. Trace names are plain ASCII
// identifiers; anything that would need escaping is escaped the
// standard way so the output always parses.
func writeString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString("\\u00")
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

func writeUint(bw *bufio.Writer, v uint64) {
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], v, 10))
}
