package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTracer() *Tracer {
	t := New(Options{
		SampleInterval: 100,
		Tiles:          2,
		Counts:         []string{"lookups", "hits"},
		Gauges:         []string{"queue"},
		Ratios:         []Ratio{{Name: "hit_rate", Num: 1, Den: 0}},
	})
	t.SetProcName(5, "tile 5 exec (1,1)")
	t.SetProcName(4, "tile 4 manager (0,1)")
	t.Span(5, "dispatch", 10, 42, "pc", 0x1000, "hit", 1)
	t.Instant(4, "enqueue", 12, "pc", 0x2000, "depth", 1)
	t.Counter(4, "transQ", 13, 3)
	t.Count(0, 10, 1)
	t.Count(1, 10, 1)
	t.Count(0, 150, 2)
	t.Gauge(0, 20, 7)
	t.Gauge(0, 30, 4) // window keeps the max
	t.Busy(1, 40, 55)
	return t
}

// TestWriteJSONParses checks the exporter emits valid Chrome
// trace_event JSON with the expected shape.
func TestWriteJSONParses(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 proc names × (name + sort index) + 3 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d trace events, want 7", len(doc.TraceEvents))
	}
	var span map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			span = ev
		}
	}
	if span == nil {
		t.Fatal("no complete (X) event in output")
	}
	if span["dur"].(float64) != 32 || span["ts"].(float64) != 10 {
		t.Errorf("span ts/dur = %v/%v, want 10/32", span["ts"], span["dur"])
	}
	args := span["args"].(map[string]any)
	if args["pc"].(float64) != 0x1000 {
		t.Errorf("span arg pc = %v, want %d", args["pc"], 0x1000)
	}
}

// TestWriteJSONDeterministic pins byte-identical output for identical
// event streams.
func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical tracers serialized differently")
	}
}

// TestStringEscaping covers names that need JSON escaping.
func TestStringEscaping(t *testing.T) {
	tr := New(Options{})
	tr.Instant(0, "a\"b\\c\x01", 1, "", 0, "", 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("escaped output does not parse: %v", err)
	}
	if got := doc.TraceEvents[0]["name"]; got != "a\"b\\c\x01" {
		t.Errorf("name round-tripped to %q", got)
	}
}

// TestSamplerAggregation checks window bucketing, gauge max, busy
// attribution, and the CSV shape.
func TestSamplerAggregation(t *testing.T) {
	tr := sampleTracer()
	if got := tr.CountTotal(0); got != 3 {
		t.Errorf("CountTotal(0) = %d, want 3", got)
	}
	if got := tr.BusyTotal(1); got != 55 {
		t.Errorf("BusyTotal(1) = %d, want 55", got)
	}
	if tr.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", tr.Windows())
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2 windows:\n%s", len(lines), buf.String())
	}
	wantHeader := "window_start,lookups,hits,hit_rate,queue,tile0_occ_pct,tile1_occ_pct"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if lines[1] != "0,1,1,1.0000,7,0.00,55.00" {
		t.Errorf("window 0 = %q", lines[1])
	}
	if lines[2] != "100,2,0,0.0000,0,0.00,0.00" {
		t.Errorf("window 1 = %q", lines[2])
	}
}

// TestNilTracerSafe verifies the whole emission surface is a no-op on
// a nil tracer — the disabled path — and allocates nothing.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tr.SetProcName(1, "x")
		tr.Span(1, "s", 0, 10, "a", 1, "b", 2)
		tr.Instant(1, "i", 5, "", 0, "", 0)
		tr.Counter(1, "c", 5, 1)
		tr.Count(0, 5, 1)
		tr.Busy(0, 5, 1)
		tr.Gauge(0, 5, 1)
	})
	if allocs != 0 {
		t.Errorf("nil-tracer emission allocated %.1f times per run, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Windows() != 0 || tr.Sampling() || tr.Events() != nil {
		t.Error("nil tracer reports recorded state")
	}
}

// BenchmarkDisabledEmit measures the per-call cost of the disabled
// path (a nil test and return) — the overhead every instrumented site
// pays on untraced runs.
func BenchmarkDisabledEmit(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Span(5, "dispatch", uint64(i), uint64(i+10), "pc", 1, "", 0)
		tr.Count(0, uint64(i), 1)
	}
}
