package translate

import (
	"fmt"
	"math/rand"
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/rawexec"
	"tilevm/internal/x86"
	"tilevm/internal/x86interp"
)

// runDBT executes a guest image through the translation pipeline with a
// minimal dispatch loop (translate-on-miss, flat memory env). With
// tier0 set, every block goes through the tier-0 template path first,
// falling back to the optimizing pipeline on template misses — the same
// dispatch rule the engine uses.
func runDBT(t *testing.T, img *guest.Image, opts Options, tier0 bool, maxBlocks int) (*guest.Process, error) {
	t.Helper()
	p := guest.Load(img)
	clk := &rawexec.CountClock{}
	env := rawexec.NewFlatEnv(p, clk)
	cpu := &rawexec.CPU{}
	cpu.LoadGuest(&p.CPU)
	tr := New(opts)
	cache := map[uint32]*Result{}
	pc := p.PC
	for i := 0; i < maxBlocks && !p.Kern.Exited; i++ {
		res, ok := cache[pc]
		if !ok {
			var err error
			res, err = tr.TranslateTier(p.Mem, pc, tier0)
			if err != nil {
				return p, err
			}
			cache[pc] = res
			env.RegisterCodePages(res.GuestAddr, res.GuestLen)
		}
		// Keep the interpreter-visible state in sync for assists.
		exit, err := rawexec.Exec(cpu, res.Code, 0, clk, env, 10_000_000)
		if err != nil {
			return p, fmt.Errorf("exec of block %#x: %w\n%s", pc, err, res.Block.Block.String())
		}
		if env.SMCPending {
			// Self-modifying code: drop every cached translation.
			cache = map[uint32]*Result{}
			env.SMCPending = false
		}
		pc = exit.NextPC
	}
	cpu.StoreGuest(&p.CPU)
	p.PC = pc
	if !p.Kern.Exited {
		return p, fmt.Errorf("did not exit after %d blocks (pc=%#x)", maxBlocks, pc)
	}
	return p, nil
}

// differential runs the image on both executors and compares final
// architectural state.
func differential(t *testing.T, img *guest.Image, opts Options, tier0 bool) {
	t.Helper()
	ref := guest.Load(img)
	refIt := x86interp.New(ref)
	if exited, err := refIt.Run(5_000_000); err != nil || !exited {
		t.Fatalf("reference run failed: %v exited=%v (%s)", err, exited, ref.CPU.String())
	}
	got, err := runDBT(t, img, opts, tier0, 500_000)
	if err != nil {
		t.Fatalf("DBT run failed: %v", err)
	}
	if got.Kern.ExitCode != ref.Kern.ExitCode {
		t.Errorf("exit code: DBT %d, ref %d", got.Kern.ExitCode, ref.Kern.ExitCode)
	}
	for r := x86.EAX; r <= x86.EDI; r++ {
		if got.Reg(r) != ref.Reg(r) {
			t.Errorf("%s: DBT %#x, ref %#x", r.Name(4), got.Reg(r), ref.Reg(r))
		}
	}
	if gs, rs := got.Kern.Stdout.String(), ref.Kern.Stdout.String(); gs != rs {
		t.Errorf("stdout: DBT %q, ref %q", gs, rs)
	}
	if t.Failed() {
		t.Logf("DBT state: %s", got.CPU.String())
		t.Logf("ref state: %s", ref.CPU.String())
	}
}

func image(build func(a *x86.Asm)) *guest.Image {
	a := x86.NewAsm(guest.DefaultCodeBase)
	build(a)
	return &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
}

func exitWith(a *x86.Asm) {
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
}

// allOpts runs a subtest under every translation configuration,
// including the tier-0 template path (with its optimizing-tier
// fallback), so the whole corpus exercises both tiers.
func allOpts(t *testing.T, img *guest.Image) {
	for _, cfg := range []struct {
		name  string
		o     Options
		tier0 bool
	}{
		{"opt", Options{Optimize: true}, false},
		{"noopt", Options{}, false},
		{"conservative", Options{ConservativeFlags: true}, false},
		{"opt+conservative", Options{Optimize: true, ConservativeFlags: true}, false},
		{"tier0", Options{Optimize: true}, true},
		{"tier0+conservative", Options{Optimize: true, ConservativeFlags: true}, true},
	} {
		t.Run(cfg.name, func(t *testing.T) { differential(t, img, cfg.o, cfg.tier0) })
	}
}

func TestDiffArithLoop(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EBX, 0)
		a.MovRegImm(x86.ECX, 100)
		a.Label("loop")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.ImmOp(0x5a5a, 4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "loop")
		exitWith(a)
	}))
}

func TestDiffFactorial(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.PushImm(7)
		a.Call("fact")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.MovRegReg(x86.EBX, x86.EAX)
		exitWith(a)
		a.Label("fact")
		a.Push(x86.EBP)
		a.MovRegReg(x86.EBP, x86.ESP)
		a.MovRegMem(x86.EAX, x86.Mem(x86.EBP, 8))
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(1, 4))
		a.Jcc(x86.CondLE, "base")
		a.DecReg(x86.EAX)
		a.Push(x86.EAX)
		a.Call("fact")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.IMulRegRM(x86.EAX, x86.Mem(x86.EBP, 8))
		a.Jmp("done")
		a.Label("base")
		a.MovRegImm(x86.EAX, 1)
		a.Label("done")
		a.Pop(x86.EBP)
		a.Ret()
	}))
}

func TestDiffCarryChains(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		// 64-bit arithmetic with ADC/SBB over several limbs.
		a.MovRegImm(x86.EAX, 0xfffffffe)
		a.MovRegImm(x86.EDX, 0x7fffffff)
		a.ALU(x86.ADD, x86.RegOp(x86.EAX, 4), x86.ImmOp(5, 4))
		a.ALU(x86.ADC, x86.RegOp(x86.EDX, 4), x86.ImmOp(0, 4))
		a.MovRegImm(x86.ESI, 3)
		a.ALU(x86.SUB, x86.RegOp(x86.EAX, 4), x86.RegOp(x86.ESI, 4))
		a.ALU(x86.SBB, x86.RegOp(x86.EDX, 4), x86.ImmOp(0, 4))
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		a.Setcc(x86.CondO, x86.RegOp(x86.ECX, 1))
		exitWith(a)
	}))
}

func TestDiffShifts(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x80000123)
		a.MovRegImm(x86.EBX, 0)
		for _, c := range []uint8{1, 4, 31} {
			a.ShiftImm(x86.SHL, x86.RegOp(x86.EAX, 4), c)
			a.Setcc(x86.CondB, x86.RegOp(x86.EDX, 1)) // capture CF
			a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EDX, 4))
			a.ShiftImm(x86.SAR, x86.RegOp(x86.EAX, 4), c)
			a.Setcc(x86.CondS, x86.RegOp(x86.EDX, 1))
			a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EDX, 4))
		}
		// Shift by CL, including a zero count (flags must survive).
		a.MovRegImm(x86.EAX, 0xdead)
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.RegOp(x86.EAX, 4)) // ZF=1
		a.MovRegImm(x86.ECX, 0)
		a.ShiftCL(x86.SHR, x86.RegOp(x86.EAX, 4))
		a.Setcc(x86.CondE, x86.RegOp(x86.ESI, 1)) // ZF still set
		a.MovRegImm(x86.ECX, 7)
		a.ShiftCL(x86.SHL, x86.RegOp(x86.EAX, 4))
		a.Setcc(x86.CondB, x86.RegOp(x86.EDI, 1))
		exitWith(a)
	}))
}

func TestDiffRotates(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x80000001)
		a.ShiftImm(x86.ROL, x86.RegOp(x86.EAX, 4), 3)
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		a.ShiftImm(x86.ROR, x86.RegOp(x86.EAX, 4), 5)
		a.Setcc(x86.CondB, x86.RegOp(x86.ECX, 1))
		exitWith(a)
	}))
}

func TestDiffMemoryPatterns(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovRegImm(x86.ECX, 64)
		a.MovRegImm(x86.EAX, 12345)
		a.Label("fill")
		a.MovMemReg(x86.MemIdx(x86.ESI, x86.ECX, 4, -4), x86.EAX)
		a.ALU(x86.ADD, x86.RegOp(x86.EAX, 4), x86.ImmOp(7, 4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "fill")
		// Sum it back.
		a.MovRegImm(x86.EBX, 0)
		a.MovRegImm(x86.ECX, 64)
		a.Label("sum")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.MemIdx(x86.ESI, x86.ECX, 4, -4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "sum")
		// Byte and halfword traffic.
		a.MovMemReg8(x86.Mem(x86.ESI, 3), x86.EBX)
		a.Movzx8(x86.EDX, x86.Mem(x86.ESI, 3))
		a.Movsx8(x86.EDI, x86.Mem(x86.ESI, 3))
		exitWith(a)
	}))
}

func TestDiffSubRegisters(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x11223344)
		// AH/AL manipulation: AL += 0xCC (carry into nothing), AH ^= AL.
		a.ALU(x86.ADD, x86.RegOp(x86.EAX, 1), x86.ImmOp(0x7f, 1))
		a.Setcc(x86.CondO, x86.RegOp(x86.EBX, 1))
		// 8-bit reg-to-reg through memory.
		a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
		a.MovMemReg8(x86.Mem(x86.ESI, 0), x86.EAX) // AL
		a.Movzx8(x86.ECX, x86.Mem(x86.ESI, 0))
		exitWith(a)
	}))
}

func TestDiffMulDivAssist(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x10000)
		a.MovRegImm(x86.ECX, 0x30000)
		a.MulRM(x86.RegOp(x86.ECX, 4)) // wide product
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		a.MovRegReg(x86.ESI, x86.EDX)
		a.MovRegImm(x86.ECX, 77777)
		a.DivRM(x86.RegOp(x86.ECX, 4))
		a.MovRegReg(x86.EDI, x86.EDX) // remainder
		// Signed divide via assist.
		a.MovRegImm(x86.EAX, 0)
		a.ALU(x86.SUB, x86.RegOp(x86.EAX, 4), x86.ImmOp(1000000, 4))
		a.Cdq()
		a.MovRegImm(x86.ECX, 3333)
		a.IDivRM(x86.RegOp(x86.ECX, 4))
		exitWith(a)
	}))
}

func TestDiffStringOpsAssist(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		src := uint32(guest.DefaultHeapBase)
		a.Cld()
		a.MovRegImm(x86.EDI, src)
		a.MovRegImm(x86.EAX, 0xa5a5a5a5)
		a.MovRegImm(x86.ECX, 32)
		a.RepStosd()
		a.MovRegImm(x86.ESI, src)
		a.MovRegImm(x86.EDI, src+0x800)
		a.MovRegImm(x86.ECX, 32)
		a.RepMovsd()
		a.MovRegImm(x86.ESI, src+0x800)
		a.MovRegMem(x86.EBX, x86.Mem(x86.ESI, 124))
		exitWith(a)
	}))
}

func TestDiffCmovSetccMatrix(t *testing.T) {
	// Exercise every condition code via CMP + SETcc.
	allOpts(t, image(func(a *x86.Asm) {
		pairs := [][2]uint32{{5, 3}, {3, 5}, {7, 7}, {0x80000000, 1}, {1, 0x80000000}}
		a.MovRegImm(x86.EBX, 0)
		for _, pr := range pairs {
			for c := x86.Cond(0); c < 16; c++ {
				a.MovRegImm(x86.EAX, pr[0])
				a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(int32(pr[1]), 4))
				a.MovRegImm(x86.EDX, 0)
				a.Setcc(c, x86.RegOp(x86.EDX, 1))
				a.ShiftImm(x86.SHL, x86.RegOp(x86.EBX, 4), 1)
				a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EDX, 4))
			}
		}
		exitWith(a)
	}))
}

func TestDiffJumpTable(t *testing.T) {
	build := func(c0, c1, c2 uint32) *x86.Asm {
		a := x86.NewAsm(guest.DefaultCodeBase)
		tbl := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, tbl)
		a.MovMemImm(x86.Mem(x86.ESI, 0), c0)
		a.MovMemImm(x86.Mem(x86.ESI, 4), c1)
		a.MovMemImm(x86.Mem(x86.ESI, 8), c2)
		a.MovRegImm(x86.EBX, 0)
		a.MovRegImm(x86.EDI, 0) // case selector
		a.Label("loop")
		a.JmpMem(x86.MemIdx(x86.ESI, x86.EDI, 4, 0))
		a.Label("case0")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(1, 4))
		a.Jmp("next")
		a.Label("case1")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(100, 4))
		a.Jmp("next")
		a.Label("case2")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(10000, 4))
		a.Label("next")
		a.IncReg(x86.EDI)
		a.ALU(x86.CMP, x86.RegOp(x86.EDI, 4), x86.ImmOp(3, 4))
		a.Jcc(x86.CondL, "loop")
		exitWith(a)
		a.Bytes()
		return a
	}
	p1 := build(0, 0, 0)
	a := build(p1.LabelAddr("case0"), p1.LabelAddr("case1"), p1.LabelAddr("case2"))
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	allOpts(t, img)
}

func TestDiffSyscalls(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		msg := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, msg)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 0x21494821) // "!HI!"
		a.MovRegImm(x86.EAX, 4)
		a.MovRegImm(x86.EBX, 1)
		a.MovRegReg(x86.ECX, x86.ESI)
		a.MovRegImm(x86.EDX, 4)
		a.Int(0x80)
		a.MovRegImm(x86.EAX, 45) // brk(0)
		a.MovRegImm(x86.EBX, 0)
		a.Int(0x80)
		a.MovRegReg(x86.EBX, x86.EAX)
		exitWith(a)
	}))
}

// TestDiffRandomPrograms drives the pipeline with seeded random
// straight-line programs mixing ALU ops, sub-register writes, memory
// traffic, and flag consumers, comparing final state with the
// reference interpreter.
func TestDiffRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			img := randomProgram(seed, 120)
			allOpts(t, img)
		})
	}
}

func randomProgram(seed int64, n int) *guest.Image {
	r := rand.New(rand.NewSource(seed))
	a := x86.NewAsm(guest.DefaultCodeBase)
	// Registers EAX..EDI except ESP are fair game; ESI anchors memory.
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.EBP, x86.EDI}
	reg := func() x86.Reg { return regs[r.Intn(len(regs))] }
	a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
	for _, rg := range regs {
		a.MovRegImm(rg, r.Uint32())
	}
	aluOps := []x86.Op{x86.ADD, x86.SUB, x86.ADC, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP}
	for i := 0; i < n; i++ {
		switch r.Intn(13) {
		case 0, 1, 2, 3: // reg-reg / reg-imm ALU
			op := aluOps[r.Intn(len(aluOps))]
			if r.Intn(2) == 0 {
				a.ALU(op, x86.RegOp(reg(), 4), x86.RegOp(reg(), 4))
			} else {
				a.ALU(op, x86.RegOp(reg(), 4), x86.ImmOp(int32(r.Uint32()), 4))
			}
		case 4: // memory store
			a.MovMemReg(x86.Mem(x86.ESI, int32(r.Intn(1024))*4), reg())
		case 5: // memory load
			a.MovRegMem(reg(), x86.Mem(x86.ESI, int32(r.Intn(1024))*4))
		case 6: // RMW on memory
			a.ALU(x86.ADD, x86.Mem(x86.ESI, int32(r.Intn(1024))*4), x86.RegOp(reg(), 4))
		case 7: // shift
			ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
			a.ShiftImm(ops[r.Intn(len(ops))], x86.RegOp(reg(), 4), uint8(1+r.Intn(31)))
		case 8: // setcc / cmov flag consumers
			c := x86.Cond(r.Intn(16))
			if r.Intn(2) == 0 {
				a.Setcc(c, x86.RegOp(reg(), 1))
			} else {
				a.Cmovcc(c, reg(), x86.RegOp(reg(), 4))
			}
		case 9: // inc/dec/neg/not
			switch r.Intn(4) {
			case 0:
				a.IncReg(reg())
			case 1:
				a.DecReg(reg())
			case 2:
				a.Neg(x86.RegOp(reg(), 4))
			case 3:
				a.Not(x86.RegOp(reg(), 4))
			}
		case 10: // sub-register ops
			if r.Intn(2) == 0 {
				a.ALU(x86.ADD, x86.RegOp(reg(), 1), x86.ImmOp(int32(r.Intn(256)), 1))
			} else {
				a.MovMemReg8(x86.Mem(x86.ESI, int32(r.Intn(4096))), reg())
			}
		case 11: // imul or test
			if r.Intn(2) == 0 {
				a.IMulRegRMImm(reg(), x86.RegOp(reg(), 4), int32(r.Intn(1<<16))-1<<15)
			} else {
				a.Test(x86.RegOp(reg(), 4), reg())
			}
		case 12: // extended ops: bit tests, double shifts, scans, atomics
			switch r.Intn(6) {
			case 0:
				ops := []x86.Op{x86.BT, x86.BTS, x86.BTR, x86.BTC}
				a.BtImm(ops[r.Intn(4)], x86.RegOp(reg(), 4), uint8(r.Intn(32)))
			case 1:
				op := x86.SHLD
				if r.Intn(2) == 0 {
					op = x86.SHRD
				}
				a.ShiftDoubleImm(op, x86.RegOp(reg(), 4), reg(), uint8(1+r.Intn(31)))
			case 2:
				if r.Intn(2) == 0 {
					a.Bsf(reg(), x86.RegOp(reg(), 4))
				} else {
					a.Bsr(reg(), x86.RegOp(reg(), 4))
				}
			case 3:
				a.Xadd(x86.Mem(x86.ESI, int32(r.Intn(1024))*4), reg())
			case 4:
				op := x86.RCL
				if r.Intn(2) == 0 {
					op = x86.RCR
				}
				a.ShiftImm(op, x86.RegOp(reg(), 4), uint8(1+r.Intn(31)))
			case 5:
				a.Cmpxchg(x86.Mem(x86.ESI, int32(r.Intn(1024))*4), reg())
			}
		}
	}
	// Fold all registers into EBX so every difference shows.
	for _, rg := range regs {
		if rg != x86.EBX {
			a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.RegOp(rg, 4))
		}
	}
	exitWith(a)
	return &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
}

// TestDiffSelfModifyingCode overwrites an instruction's immediate and
// re-executes it: the SMC detector must invalidate the stale
// translation so the second pass sees the new bytes (paper §5: the
// prototype detects writes to translated code pages).
func TestDiffSelfModifyingCode(t *testing.T) {
	build := func(patchAddr uint32) *x86.Asm {
		a := x86.NewAsm(guest.DefaultCodeBase)
		a.MovRegImm(x86.EDX, 0)
		a.Label("top")
		a.Label("patch")
		a.MovRegImm(x86.EBX, 1) // B8+3: 5 bytes; imm at patch+1
		a.ALU(x86.CMP, x86.RegOp(x86.EDX, 4), x86.ImmOp(1, 4))
		a.Jcc(x86.CondE, "done")
		a.IncReg(x86.EDX)
		a.MovRegImm(x86.ESI, patchAddr+1)
		a.MovRegImm(x86.EAX, 99)
		a.MovMemReg8(x86.Mem(x86.ESI, 0), x86.EAX) // patch the immediate
		a.Jmp("top")
		a.Label("done")
		exitWith(a)
		a.Bytes()
		return a
	}
	p1 := build(0)
	a := build(p1.LabelAddr("patch"))
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}

	// Reference semantics check: the second pass must see 99.
	ref := guest.Load(img)
	if exited, err := x86interp.New(ref).Run(100000); err != nil || !exited {
		t.Fatalf("reference: %v exited=%v", err, exited)
	}
	if ref.Kern.ExitCode != 99 {
		t.Fatalf("reference exit = %d, want 99 (test program broken)", ref.Kern.ExitCode)
	}
	allOpts(t, img)
}

func TestDiffExtendedOpsBitTest(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x00010004)
		a.MovRegImm(x86.EBX, 0)
		a.BtImm(x86.BT, x86.RegOp(x86.EAX, 4), 2) // CF=1
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		a.BtImm(x86.BTS, x86.RegOp(x86.EAX, 4), 7)
		a.BtImm(x86.BTR, x86.RegOp(x86.EAX, 4), 16)
		a.BtImm(x86.BTC, x86.RegOp(x86.EAX, 4), 31)
		// Register bit offset with wrap.
		a.MovRegImm(x86.ECX, 34) // bit 2 mod 32
		a.BtReg(x86.BT, x86.RegOp(x86.EAX, 4), x86.ECX)
		a.Setcc(x86.CondB, x86.RegOp(x86.EDX, 1))
		// Memory form with bit-string addressing.
		a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
		a.MovMemImm(x86.Mem(x86.ESI, 8), 0x80000000)
		a.MovRegImm(x86.ECX, 95) // word 2, bit 31
		a.BtReg(x86.BTS, x86.Mem(x86.ESI, 0), x86.ECX)
		a.Setcc(x86.CondB, x86.RegOp(x86.EDI, 1))
		exitWith(a)
	}))
}

func TestDiffExtendedOpsShiftDouble(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x12345678)
		a.MovRegImm(x86.EDX, 0x9abcdef0)
		a.ShiftDoubleImm(x86.SHLD, x86.RegOp(x86.EAX, 4), x86.EDX, 12)
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		a.ShiftDoubleImm(x86.SHRD, x86.RegOp(x86.EDX, 4), x86.EAX, 5)
		a.Setcc(x86.CondS, x86.RegOp(x86.ECX, 1))
		// CL forms including a zero count (flags preserved).
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.RegOp(x86.EAX, 4)) // ZF=1
		a.MovRegImm(x86.ECX, 0)
		a.ShiftDoubleCL(x86.SHLD, x86.RegOp(x86.EAX, 4), x86.EDX)
		a.Setcc(x86.CondE, x86.RegOp(x86.ESI, 1)) // still ZF
		a.MovRegImm(x86.ECX, 9)
		a.ShiftDoubleCL(x86.SHRD, x86.RegOp(x86.EAX, 4), x86.EDX)
		exitWith(a)
	}))
}

func TestDiffExtendedOpsBitScan(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x00ff0000)
		a.Bsf(x86.EBX, x86.RegOp(x86.EAX, 4)) // 16
		a.Bsr(x86.ECX, x86.RegOp(x86.EAX, 4)) // 23
		a.MovRegImm(x86.EDX, 0)
		a.MovRegImm(x86.EDI, 0x1234)
		a.Bsf(x86.EDI, x86.RegOp(x86.EDX, 4)) // src 0: ZF, EDI unchanged
		a.Setcc(x86.CondE, x86.RegOp(x86.EDX, 1))
		exitWith(a)
	}))
}

func TestDiffExtendedOpsAtomics(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 100)
		// CMPXCHG success path.
		a.MovRegImm(x86.EAX, 100)
		a.MovRegImm(x86.EBX, 777)
		a.Cmpxchg(x86.Mem(x86.ESI, 0), x86.EBX)
		a.Setcc(x86.CondE, x86.RegOp(x86.ECX, 1))
		// CMPXCHG failure path: EAX reloaded.
		a.MovRegImm(x86.EAX, 5)
		a.Cmpxchg(x86.Mem(x86.ESI, 0), x86.EBX)
		a.Setcc(x86.CondNE, x86.RegOp(x86.EDX, 1))
		// XADD.
		a.MovRegImm(x86.EDI, 11)
		a.Xadd(x86.Mem(x86.ESI, 0), x86.EDI)
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.Mem(x86.ESI, 0))
		exitWith(a)
	}))
}

func TestDiffExtendedOpsRotateCarry(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x80000001)
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.RegOp(x86.EAX, 4)) // CF=0
		a.ShiftImm(x86.RCL, x86.RegOp(x86.EAX, 4), 1)
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1)) // CF from old msb
		a.ShiftImm(x86.RCR, x86.RegOp(x86.EAX, 4), 3)
		a.Setcc(x86.CondB, x86.RegOp(x86.ECX, 1))
		a.MovRegImm(x86.ECX, 5)
		a.ShiftCL(x86.RCL, x86.RegOp(x86.EAX, 4))
		exitWith(a)
	}))
}

func TestDiffExtendedOpsCwdeAndStrings(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x0000ffff)
		a.Cwde() // EAX = -1
		a.MovRegReg(x86.EBX, x86.EAX)
		// REPE CMPSD over equal buffers, then unequal ones.
		base := uint32(guest.DefaultHeapBase)
		a.Cld()
		a.MovRegImm(x86.EDI, base)
		a.MovRegImm(x86.EAX, 0x41414141)
		a.MovRegImm(x86.ECX, 8)
		a.RepStosd()
		a.MovRegImm(x86.EDI, base+0x100)
		a.MovRegImm(x86.ECX, 8)
		a.RepStosd()
		a.MovMemImm(x86.Mem(x86.EDI, -8), 0x42424242) // make word 6 differ
		a.MovRegImm(x86.ESI, base)
		a.MovRegImm(x86.EDI, base+0x100)
		a.MovRegImm(x86.ECX, 8)
		a.RepeCmpsd()
		a.Setcc(x86.CondNE, x86.RegOp(x86.EDX, 1))
		a.MovRegReg(x86.EDI, x86.ECX) // remaining count is architectural
		exitWith(a)
	}))
}

func TestDiffExtendedOpsScasb(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		// strlen via REPNE SCASB.
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 0x6c6c6568) // "hell"
		a.MovMemImm(x86.Mem(x86.ESI, 4), 0x0000006f) // "o\0"
		a.Cld()
		a.MovRegImm(x86.EDI, base)
		a.MovRegImm(x86.EAX, 0)
		a.MovRegImm(x86.ECX, 0xffff)
		a.RepneScasb()
		a.Not(x86.RegOp(x86.ECX, 4))
		a.DecReg(x86.ECX)
		a.MovRegReg(x86.EBX, x86.ECX) // strlen = 5
		exitWith(a)
	}))
}

// TestDiff16BitOps exercises the 0x66 operand-size prefix paths:
// 16-bit arithmetic merges into the low half of the register and flags
// come from 16-bit semantics.
func TestDiff16BitOps(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		// mov ax, 0x8000  (66 B8 00 80)
		a.Raw(0x66, 0xB8, 0x00, 0x80)
		a.MovRegImm(x86.EBX, 0x11110000)
		// add bx, ax  (66 01 C3): 0x0000+0x8000, SF set
		a.Raw(0x66, 0x01, 0xC3)
		a.Setcc(x86.CondS, x86.RegOp(x86.ECX, 1))
		// add ax, ax (66 01 C0): 0x8000+0x8000 = 0 with carry+overflow
		a.Raw(0x66, 0x01, 0xC0)
		a.Setcc(x86.CondB, x86.RegOp(x86.EDX, 1))
		a.Setcc(x86.CondO, x86.RegOp(x86.ESI, 1))
		a.Setcc(x86.CondE, x86.RegOp(x86.EDI, 1))
		// inc/dec at 16 bits (66 40, 66 48) preserve the upper half.
		a.MovRegImm(x86.EAX, 0xABCD0001)
		a.Raw(0x66, 0x48) // dec ax -> 0xABCD0000, ZF
		a.Raw(0x66, 0x48) // dec ax -> 0xABCDFFFF (16-bit wrap)
		exitWith(a)
	}))
}

func TestDiff16BitMemory(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovRegImm(x86.EAX, 0x1234ABCD)
		// mov [esi], ax   (66 89 06)
		a.Raw(0x66, 0x89, 0x06)
		// mov bx, [esi]   (66 8B 1E)
		a.MovRegImm(x86.EBX, 0xFFFF0000)
		a.Raw(0x66, 0x8B, 0x1E)
		// movzx/movsx from the 16-bit cell.
		a.Raw(0x0F, 0xB7, 0x0E) // movzx ecx, word [esi]
		a.Raw(0x0F, 0xBF, 0x16) // movsx edx, word [esi]
		exitWith(a)
	}))
}

func TestDiff16BitShifts(t *testing.T) {
	allOpts(t, image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x5555C001)
		// shl ax, 1 (66 D1 E0): CF from bit 15
		a.Raw(0x66, 0xD1, 0xE0)
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		// sar ax, 4 (66 C1 F8 04)
		a.Raw(0x66, 0xC1, 0xF8, 0x04)
		a.Setcc(x86.CondS, x86.RegOp(x86.ECX, 1))
		// shr ax, 8 (66 C1 E8 08)
		a.Raw(0x66, 0xC1, 0xE8, 0x08)
		exitWith(a)
	}))
}
