package translate

import (
	"errors"

	"tilevm/internal/codegen"
	"tilevm/internal/opt"
	"tilevm/internal/rawisa"
)

// Translation tiers. TierTemplate is the IR-less tier-0 template path
// (tier0.go); TierOptimizing is the full decode → IR → optimize →
// lower pipeline.
const (
	TierTemplate   uint8 = 0
	TierOptimizing uint8 = 1
)

// Result is a fully translated, executable block: finalized host code
// plus the control-flow metadata.
type Result struct {
	*Block
	// Code is the register-allocated, label-resolved host code.
	Code []rawisa.Inst
	// CodeBytes is the encoded size, the unit of code-cache accounting.
	CodeBytes int
	// Optimized records whether the optimizer ran.
	Optimized bool
	// Tier records which translation tier produced the block
	// (TierTemplate or TierOptimizing); the manager's promotion logic
	// and the code caches key off it.
	Tier uint8
}

// TranslateFinal runs the full pipeline: block discovery, flag
// liveness, lowering, optimization (if enabled), and register
// allocation. If the block exceeds the host temporary register budget
// it is retried at smaller sizes, as a real translator splits
// oversized superblocks.
func (t *Translator) TranslateFinal(mem CodeReader, addr uint32) (*Result, error) {
	for _, cap := range []int{MaxBlockInsts, 8, 2, 1} {
		blk, err := t.translate(mem, addr, cap)
		if err != nil {
			return nil, err
		}
		if t.Opts.Optimize {
			opt.Run(blk.Block)
		}
		code, err := codegen.Finalize(blk.Block)
		if errors.Is(err, codegen.ErrRegPressure) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return &Result{
			Block:     blk,
			Code:      code,
			CodeBytes: rawisa.CodeBytes(code),
			Optimized: t.Opts.Optimize,
			Tier:      TierOptimizing,
		}, nil
	}
	return nil, &Error{Addr: addr, Reason: "register pressure irreducible at single-instruction block"}
}
