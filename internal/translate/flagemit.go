package translate

import (
	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
	"tilevm/internal/x86"
)

// Flag materialization: host instruction sequences that compute the
// live EFLAGS bits of an operation and merge them into the packed
// flags register (rawisa.RegFlags, x86 bit layout). Only the bits in
// the live mask are computed; dead bits are left stale, which is what
// dead-flag elimination buys.

const fr = rawisa.RegFlags

// allFlagBits covers every flag bit we ever store (≤ bit 11).
const allFlagBits = 0xfff

// clearFlags emits f &= ^bits (bits confined to the low 12).
func clearFlags(bl *ir.Builder, bits uint32) {
	if bits == 0 {
		return
	}
	bl.OpI(rawisa.ANDI, fr, fr, int32(allFlagBits&^bits))
}

// orFlag emits f |= t where t holds a flag bit already in position.
func orFlag(bl *ir.Builder, t uint8) { bl.Op3(rawisa.OR, fr, fr, t) }

// emitZF computes ZF from a result (already masked to size) and merges it.
func emitZF(bl *ir.Builder, r uint8) {
	t := bl.VReg()
	bl.OpI(rawisa.SLTIU, t, r, 1) // t = (r == 0)
	bl.OpI(rawisa.SLLI, t, t, 6)
	orFlag(bl, t)
}

// emitSF extracts the sign bit of a masked result into flag bit 7.
func emitSF(bl *ir.Builder, r uint8, size uint8) {
	t := bl.VReg()
	switch size {
	case 1:
		bl.OpI(rawisa.ANDI, t, r, 0x80)
	case 2:
		bl.OpI(rawisa.SRLI, t, r, 8)
		bl.OpI(rawisa.ANDI, t, t, 0x80)
	default:
		bl.OpI(rawisa.SRLI, t, r, 24)
		bl.OpI(rawisa.ANDI, t, t, 0x80)
	}
	orFlag(bl, t)
}

// emitPF computes the x86 parity flag (even parity of the low byte)
// into bit 2. This is the most expensive flag; dead-flag elimination
// removes it almost everywhere.
func emitPF(bl *ir.Builder, r uint8) {
	t := bl.VReg()
	u := bl.VReg()
	bl.OpI(rawisa.ANDI, t, r, 0xff)
	bl.OpI(rawisa.SRLI, u, t, 4)
	bl.Op3(rawisa.XOR, t, t, u)
	bl.OpI(rawisa.SRLI, u, t, 2)
	bl.Op3(rawisa.XOR, t, t, u)
	bl.OpI(rawisa.SRLI, u, t, 1)
	bl.Op3(rawisa.XOR, t, t, u)
	bl.OpI(rawisa.XORI, t, t, 1)
	bl.OpI(rawisa.ANDI, t, t, 1)
	bl.OpI(rawisa.SLLI, t, t, 2)
	orFlag(bl, t)
}

// emitAF computes the auxiliary carry (bit 4 of a^b^r; the flag's bit
// position is also 4, so no shift is needed).
func emitAF(bl *ir.Builder, a, b, r uint8) {
	t := bl.VReg()
	bl.Op3(rawisa.XOR, t, a, b)
	bl.Op3(rawisa.XOR, t, t, r)
	bl.OpI(rawisa.ANDI, t, t, 0x10)
	orFlag(bl, t)
}

// emitBit01 merges a 0/1 value at the given flag bit position.
func emitBit01(bl *ir.Builder, t uint8, pos uint) {
	if pos != 0 {
		bl.OpI(rawisa.SLLI, t, t, int32(pos))
	}
	orFlag(bl, t)
}

// arithFlags describes one ALU operation for flag generation.
type arithFlags struct {
	a, b uint8 // operand registers (masked to size for sub-32-bit ops)
	r    uint8 // result, masked to size
	sum  uint8 // unmasked result (sub-32-bit adds/subs); 0 if n/a
	cin  uint8 // carry/borrow-in register (0/1), or 0xff if none
	size uint8
	sub  bool
}

// emitArithFlags materializes the live subset of CF/PF/AF/ZF/SF/OF for
// an addition or subtraction.
func emitArithFlags(bl *ir.Builder, f arithFlags, live uint32) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	clearFlags(bl, live)
	if live&x86.FlagCF != 0 {
		emitCF(bl, f)
	}
	if live&x86.FlagOF != 0 {
		emitOF(bl, f)
	}
	if live&x86.FlagAF != 0 {
		emitAF(bl, f.a, f.b, f.r)
	}
	if live&x86.FlagZF != 0 {
		emitZF(bl, f.r)
	}
	if live&x86.FlagSF != 0 {
		emitSF(bl, f.r, f.size)
	}
	if live&x86.FlagPF != 0 {
		emitPF(bl, f.r)
	}
}

func emitCF(bl *ir.Builder, f arithFlags) {
	t := bl.VReg()
	switch {
	case f.size != 4 && !f.sub:
		// Carry is bit `bits` of the unmasked sum.
		bl.OpI(rawisa.SRLI, t, f.sum, int32(f.size)*8)
		bl.OpI(rawisa.ANDI, t, t, 1)
	case f.size != 4 && f.sub:
		// Borrow: a < b + bin (all values < 2^16, no overflow).
		b := f.b
		if f.cin != 0xff {
			bsum := bl.VReg()
			bl.Op3(rawisa.ADD, bsum, f.b, f.cin)
			b = bsum
		}
		bl.Op3(rawisa.SLTU, t, f.a, b)
	case !f.sub && f.cin == 0xff:
		bl.Op3(rawisa.SLTU, t, f.r, f.a) // r < a unsigned means carry
	case !f.sub:
		// With carry-in: carry out of a+b, or out of (a+b)+cin.
		// f.sum holds a+b (the pre-carry sum) in the 32-bit case.
		t2 := bl.VReg()
		bl.Op3(rawisa.SLTU, t, f.sum, f.a)
		bl.Op3(rawisa.SLTU, t2, f.r, f.sum)
		bl.Op3(rawisa.OR, t, t, t2)
	case f.cin == 0xff:
		bl.Op3(rawisa.SLTU, t, f.a, f.b)
	default:
		// Borrow with borrow-in: (a < b) || (a-b < bin).
		t2 := bl.VReg()
		bl.Op3(rawisa.SLTU, t, f.a, f.b)
		bl.Op3(rawisa.SLTU, t2, f.sum, f.cin) // f.sum = a-b here
		bl.Op3(rawisa.OR, t, t, t2)
	}
	emitBit01(bl, t, 0)
}

func emitOF(bl *ir.Builder, f arithFlags) {
	t := bl.VReg()
	u := bl.VReg()
	if f.sub {
		bl.Op3(rawisa.XOR, t, f.a, f.b)
		bl.Op3(rawisa.XOR, u, f.a, f.r)
	} else {
		bl.Op3(rawisa.XOR, t, f.a, f.r)
		bl.Op3(rawisa.XOR, u, f.b, f.r)
	}
	bl.Op3(rawisa.AND, t, t, u)
	// Move the operand sign bit to flag bit 11.
	switch f.size {
	case 1: // bit 7 → 11
		bl.OpI(rawisa.SLLI, t, t, 4)
		bl.OpI(rawisa.ANDI, t, t, 0x800)
	case 2: // bit 15 → 11
		bl.OpI(rawisa.SRLI, t, t, 4)
		bl.OpI(rawisa.ANDI, t, t, 0x800)
	default: // bit 31 → 11
		bl.OpI(rawisa.SRLI, t, t, 20)
		bl.OpI(rawisa.ANDI, t, t, 0x800)
	}
	orFlag(bl, t)
}

// emitLogicFlags materializes flags for AND/OR/XOR/TEST: CF=OF=AF=0,
// SZP from the result.
func emitLogicFlags(bl *ir.Builder, r uint8, size uint8, live uint32) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	clearFlags(bl, live) // clears CF/OF/AF to their defined zero values
	if live&x86.FlagZF != 0 {
		emitZF(bl, r)
	}
	if live&x86.FlagSF != 0 {
		emitSF(bl, r, size)
	}
	if live&x86.FlagPF != 0 {
		emitPF(bl, r)
	}
}

// emitMulFlags materializes flags after a widening multiply: CF=OF set
// when hiSig (a 0/1 register) is 1; SZP from lo; AF=0.
func emitMulFlags(bl *ir.Builder, lo, hiSig uint8, size uint8, live uint32) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	clearFlags(bl, live)
	if live&(x86.FlagCF|x86.FlagOF) != 0 {
		t := bl.VReg()
		if live&x86.FlagCF != 0 {
			bl.Move(t, hiSig)
			orFlag(bl, t)
		}
		if live&x86.FlagOF != 0 {
			bl.OpI(rawisa.SLLI, t, hiSig, 11)
			orFlag(bl, t)
		}
	}
	if live&x86.FlagZF != 0 {
		emitZF(bl, lo)
	}
	if live&x86.FlagSF != 0 {
		emitSF(bl, lo, size)
	}
	if live&x86.FlagPF != 0 {
		emitPF(bl, lo)
	}
}

// condTest emits code computing a truthy register for the *base*
// (even-numbered) condition of pair c: the returned register is nonzero
// iff the base condition holds. The caller branches on != 0 for even
// conditions and == 0 for odd ones.
func condTest(bl *ir.Builder, c x86.Cond) uint8 {
	t := bl.VReg()
	switch c &^ 1 {
	case x86.CondO:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagOF))
	case x86.CondB:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagCF))
	case x86.CondE:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagZF))
	case x86.CondBE:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagCF|x86.FlagZF))
	case x86.CondS:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagSF))
	case x86.CondP:
		bl.OpI(rawisa.ANDI, t, fr, int32(x86.FlagPF))
	case x86.CondL:
		// SF != OF: align SF (bit 7) with OF (bit 11) and XOR.
		u := bl.VReg()
		bl.OpI(rawisa.SLLI, t, fr, 4)
		bl.OpI(rawisa.ANDI, t, t, 0x800)
		bl.OpI(rawisa.ANDI, u, fr, 0x800)
		bl.Op3(rawisa.XOR, t, t, u)
	case x86.CondLE:
		// ZF || (SF != OF).
		u := bl.VReg()
		bl.OpI(rawisa.SLLI, t, fr, 4)
		bl.OpI(rawisa.ANDI, t, t, 0x800)
		bl.OpI(rawisa.ANDI, u, fr, 0x800)
		bl.Op3(rawisa.XOR, t, t, u)
		bl.OpI(rawisa.ANDI, u, fr, int32(x86.FlagZF))
		bl.Op3(rawisa.OR, t, t, u)
	}
	return t
}
